package mrx

import (
	"mrx/internal/datagen"
	"mrx/internal/workload"
)

// GenerateXMark produces an XMark-like auction-site XML document. Scale 1.0
// yields a graph of about 120,000 nodes, matching the paper's dataset.
func GenerateXMark(scale float64, seed int64) []byte { return datagen.XMark(scale, seed) }

// GenerateNASA produces a NASA-like astronomical-catalog XML document.
// Scale 1.0 yields a graph of about 90,000 nodes, matching the paper's
// dataset; it is deeper, broader, more irregular and more reference-heavy
// than the XMark document.
func GenerateNASA(scale float64, seed int64) []byte { return datagen.NASA(scale, seed) }

// XMarkGraph generates and parses an XMark-like document in one step.
func XMarkGraph(scale float64, seed int64) *Graph { return datagen.XMarkGraph(scale, seed) }

// NASAGraph generates and parses a NASA-like document in one step.
func NASAGraph(scale float64, seed int64) *Graph { return datagen.NASAGraph(scale, seed) }

// CorpusGraph generates a multi-document corpus: docs alternating XMark-
// and NASA-like documents loaded side by side into one graph with one
// weakly-connected component per document — the shape ShardedEngine
// partitions along document lines.
func CorpusGraph(scale float64, seed int64, docs int) (*Graph, error) {
	return datagen.CorpusGraph(scale, seed, docs)
}

// WorkloadOptions configures synthetic query-workload generation.
type WorkloadOptions = workload.Options

// GenerateWorkload samples a query workload the way the paper does:
// enumerate all label paths up to MaxPathLen, then extract random
// subsequences prefixed with //.
func GenerateWorkload(g *Graph, opts WorkloadOptions) []*PathExpr {
	return workload.Generate(g, opts)
}

// DefaultWorkloadOptions mirrors the paper's primary workload: 500 queries,
// paths up to length 9, query length up to 9.
func DefaultWorkloadOptions(seed int64) WorkloadOptions {
	return workload.DefaultOptions(seed)
}

// WorkloadHistogram returns the fraction of queries at each length (the
// data behind the paper's Figures 8 and 9).
func WorkloadHistogram(queries []*PathExpr) []float64 {
	return workload.LengthHistogram(queries)
}

// EnumerateLabelPaths lists every distinct root-anchored label path of
// length up to maxLen in the data graph.
func EnumerateLabelPaths(g *Graph, maxLen int) [][]string {
	return workload.EnumerateLabelPaths(g, maxLen)
}
