package mrx

import (
	"mrx/internal/engine"
)

// Engine serves structural-index queries to many goroutines concurrently
// while the index keeps adapting to the workload, realizing the paper's
// operational loop (Figure 5: serve, extract FUPs, refine, repeat) under
// concurrent load.
//
// Readers never block: Query evaluates against an immutable generation-
// numbered snapshot loaded through an atomic pointer — a FrozenMStar, the
// CSR-flattened map-free view of the M*(k)-index. Refinement (Support)
// clones the mutable twin, refines the private copy, re-freezes only the
// components the refinement touched, and publishes both atomically;
// concurrent Support calls serialize. Validation inside a query fans out
// across a bounded worker pool. See package mrx/internal/engine for the
// full concurrency model.
type Engine = engine.Engine

// EngineOptions configures an Engine: the adaptive index's options and the
// validation worker-pool size (default GOMAXPROCS).
type EngineOptions = engine.Options

// EngineStats is a point-in-time copy of an engine's serving counters:
// queries served, validation work, refinements applied, snapshots
// published, and per-strategy latency histograms.
type EngineStats = engine.StatsSnapshot

// NewEngine creates a concurrent serving engine over g.
func NewEngine(g *Graph, opts EngineOptions) *Engine { return engine.New(g, opts) }
