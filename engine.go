package mrx

import (
	"mrx/internal/adapt"
	"mrx/internal/engine"
)

// Engine serves structural-index queries to many goroutines concurrently
// while the index keeps adapting to the workload, realizing the paper's
// operational loop (Figure 5: serve, extract FUPs, refine, repeat) under
// concurrent load.
//
// Readers never block: Query evaluates against an immutable generation-
// numbered snapshot loaded through an atomic pointer — a FrozenMStar, the
// CSR-flattened map-free view of the M*(k)-index. Refinement (Support)
// clones the mutable twin, refines the private copy, re-freezes only the
// components the refinement touched, and publishes both atomically;
// concurrent Support calls serialize. Validation inside a query fans out
// across a bounded worker pool. See package mrx/internal/engine for the
// full concurrency model.
type Engine = engine.Engine

// EngineOptions configures an Engine: the adaptive index's options and the
// validation worker-pool size (default GOMAXPROCS).
type EngineOptions = engine.Options

// EngineStats is a point-in-time copy of an engine's serving counters:
// queries served, validation work, refinements applied, snapshots
// published, and per-strategy latency histograms.
type EngineStats = engine.StatsSnapshot

// NewEngine creates a concurrent serving engine over g. It fails with a
// wrapped error when opts is plainly invalid (negative parallelism, a
// negative resolution cap, an unknown strategy, or a nonsensical AutoTune
// configuration); zero-valued fields select the documented defaults.
func NewEngine(g *Graph, opts EngineOptions) (*Engine, error) { return engine.New(g, opts) }

// ShardedEngine serves queries over a data graph partitioned into
// shard-local M*(k)-indexes along weakly-connected component boundaries
// (package mrx/internal/shard). Each shard owns an independent snapshot
// behind its own write lock, so refinements on different shards proceed
// concurrently and freezes fan out across a bounded worker pool; queries
// scatter to the shards that can match and gather the disjoint per-shard
// answers into one globally sorted result, identical to the monolithic
// Engine's.
type ShardedEngine = engine.Sharded

// ShardedEngineOptions configures a ShardedEngine: the desired shard count,
// the freeze worker pool, and the same index/validation options as
// EngineOptions.
type ShardedEngineOptions = engine.ShardedOptions

// ShardStats is the per-shard slice of a ShardedEngine's EngineStats.
type ShardStats = engine.ShardStats

// NewShardedEngine creates a sharded serving engine over g. The shard
// count is clamped to the number of weakly-connected components; a
// single-component graph yields one shard and behaves like a monolithic
// Engine.
func NewShardedEngine(g *Graph, opts ShardedEngineOptions) (*ShardedEngine, error) {
	return engine.NewSharded(g, opts)
}

// EnginePersistOptions makes an engine disk-resident
// (EngineOptions.Persist / ShardedEngineOptions.Persist): every published
// generation is atomically republished as a memory-mapped snapshot file and
// served from its trusted zero-copy remapping.
type EnginePersistOptions = engine.PersistOptions

// StaticEngine serves queries from one fixed frozen M*(k) snapshot —
// typically a Snapshot mapped straight off disk — through the same
// interface as the adaptive engines, with no write side at all.
type StaticEngine = engine.Static

// NewStaticEngine builds a read-only serving engine over a frozen view;
// parallelism bounds the validation worker pool (<= 0 means GOMAXPROCS).
func NewStaticEngine(fm *FrozenMStar, parallelism int) (*StaticEngine, error) {
	return engine.NewStatic(fm, parallelism)
}

// AutoTuneConfig configures the engine's online workload tracker and
// adaptive tuner (EngineOptions.AutoTune): a bounded space-saving sketch of
// the hottest canonical path expressions drives epoch-based promotion
// (Support) of sustained-hot FUPs and retirement (Retire) of cooled-off
// ones, with hysteresis and cooldowns damping oscillation.
type AutoTuneConfig = adapt.Config

// AutoTuneSnapshot is the tuner's observable state, carried by
// EngineStats.AutoTune: epoch and action counters, the tracker's current
// hot set, and the last executed tuning plan.
type AutoTuneSnapshot = adapt.Snapshot

// AutoTunePlan is one epoch's tuning decisions with reasons, for
// observability (EngineStats.AutoTune.LastPlan).
type AutoTunePlan = adapt.Plan

// DefaultAutoTuneConfig returns the documented default tuning parameters.
func DefaultAutoTuneConfig() AutoTuneConfig { return adapt.DefaultConfig() }
