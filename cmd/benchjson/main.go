// Command benchjson converts `go test -bench` output into machine-readable
// JSON, for the committed benchmark trajectory under results/. It reads
// benchmark lines from stdin and writes one JSON document to stdout:
//
//	go test -run='^$' -bench=. -benchmem ./... | go run ./cmd/benchjson -label pre-frozen > results/BENCH_2026-08-06.json
//
// Non-benchmark lines (package headers, PASS/ok trailers) pass through to
// stderr so the run stays observable while piping.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the JSON document benchjson emits.
type Report struct {
	Label     string   `json:"label,omitempty"`
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	GoOS      string   `json:"goos"`
	GoArch    string   `json:"goarch"`
	Results   []Result `json:"results"`
}

func main() {
	label := flag.String("label", "", "free-form label recorded in the report (e.g. pre-frozen)")
	flag.Parse()

	rep := Report{
		Label:     *label,
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		r, ok := parseLine(line)
		if !ok {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		rep.Results = append(rep.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write: %v\n", err)
		os.Exit(1)
	}
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkQueryMStarTopDown-8   1203  987654 ns/op  1234 B/op  56 allocs/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp, seen = val, true
		case "MB/s":
			r.MBPerSec = val
		case "B/op":
			r.BytesPerOp = int64(val)
		case "allocs/op":
			r.AllocsPerOp = int64(val)
		}
	}
	return r, seen
}
