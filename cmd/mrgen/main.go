// Command mrgen generates the synthetic datasets used by the experiments:
// XMark-like auction documents and NASA-like astronomical catalogs.
//
// Usage:
//
//	mrgen -dataset xmark -scale 0.1 -seed 1 -o xmark.xml
//	mrgen -dataset nasa -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"mrx"
)

func main() {
	dataset := flag.String("dataset", "xmark", "dataset to generate: xmark or nasa")
	scale := flag.Float64("scale", 0.1, "dataset scale (1.0 = paper size: ~120k/~90k nodes)")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	stats := flag.Bool("stats", false, "print graph statistics instead of the document")
	flag.Parse()

	var doc []byte
	switch *dataset {
	case "xmark":
		doc = mrx.GenerateXMark(*scale, *seed)
	case "nasa":
		doc = mrx.GenerateNASA(*scale, *seed)
	default:
		fmt.Fprintf(os.Stderr, "mrgen: unknown dataset %q (want xmark or nasa)\n", *dataset)
		os.Exit(2)
	}

	if *stats {
		g, err := mrx.LoadXMLBytes(doc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("dataset=%s scale=%g seed=%d\n", *dataset, *scale, *seed)
		fmt.Printf("bytes=%d nodes=%d edges=%d refEdges=%d labels=%d\n",
			len(doc), g.NumNodes(), g.NumEdges(), g.NumRefEdges(), g.NumLabels())
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(doc); err != nil {
		fmt.Fprintf(os.Stderr, "mrgen: %v\n", err)
		os.Exit(1)
	}
}
