// Command mrload replays a drifting path-query workload against a running
// mrserve instance at configured request rates and reports client-observed
// latency quantiles plus the server's shed/coalesce accounting.
//
// Usage:
//
//	mrload -addr 127.0.0.1:8080 -qps 100,400,1600 -duration 5s
//	mrload -addr 127.0.0.1:8080 -qps 200 -report results/serve.json -check
//
// The workload mirrors the difftest drift model: the generated query set is
// split into rotating hot sets, and within each phase most requests
// (-hotfrac) draw from the current hot set while the rest draw uniformly —
// so an adaptive server sees genuinely skewed, shifting traffic, with heavy
// duplication inside a phase (which exercises request coalescing) and
// periodic cold shifts (which exercise adaptation). Each -qps level runs
// open-loop: requests are dispatched on a fixed clock regardless of how
// slowly the server answers, so saturation shows up as queueing and then
// shedding rather than as a politely slowed client.
//
// The report (JSON on stdout, or -report FILE) carries per-level counts
// (sent/ok/shed/errors), client-side p50/p99/p999, and the server /stats
// counter deltas. With -check, mrload exits nonzero unless every level
// completed with at least one served reply and zero transport or 5xx
// errors — the smoke-test contract.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"mrx"
	"mrx/internal/latstat"
	"mrx/internal/loadgen"
	"mrx/internal/netem"
	"mrx/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "mrserve address")
	qpsList := flag.String("qps", "100,400,1600", "comma-separated request rates to replay")
	duration := flag.Duration("duration", 5*time.Second, "wall time per rate level")
	dataset := flag.String("dataset", "xmark", "dataset the server was started with: xmark or nasa")
	scale := flag.Float64("scale", 0.1, "dataset scale the server was started with")
	seed := flag.Int64("seed", 1, "workload seed")
	numQueries := flag.Int("queries", 200, "distinct queries in the workload")
	maxLen := flag.Int("maxlen", 7, "max query length")
	phases := flag.Int("phases", 3, "hot-set rotations per level")
	hotSize := flag.Int("hot", 4, "queries in each hot set")
	hotFrac := flag.Float64("hotfrac", 0.9, "fraction of requests drawn from the hot set")
	maxInflight := flag.Int("max-inflight", 512, "client-side cap on outstanding requests")
	report := flag.String("report", "", "write the JSON report to this file (default stdout)")
	check := flag.Bool("check", false, "exit nonzero unless served > 0 and errors == 0 at every level")
	impLatency := flag.Duration("impair-latency", 0, "netem: one-way latency added to every client connection")
	impJitter := flag.Duration("impair-jitter", 0, "netem: uniform jitter around -impair-latency")
	impLoss := flag.Float64("impair-loss", 0, "netem: per-segment loss probability, modeled as retransmit stalls")
	impBPS := flag.Int("impair-bps", 0, "netem: per-direction bandwidth cap in bytes/sec (0 disables)")
	impChunk := flag.Int("impair-chunk", 0, "netem: max bytes per delivered segment (0 disables chunking)")
	impSeed := flag.Int64("impair-seed", 1, "netem: root seed for the deterministic impairment schedule")
	flag.Parse()

	levels, err := parseQPS(*qpsList)
	if err != nil {
		fail(err)
	}
	queries, err := buildWorkload(*dataset, *scale, *seed, *numQueries, *maxLen)
	if err != nil {
		fail(err)
	}
	impair := netem.Profile{
		Latency: *impLatency, Jitter: *impJitter, LossRate: *impLoss,
		BytesPerSec: *impBPS, ChunkBytes: *impChunk,
	}
	if err := impair.Validate(); err != nil {
		fail(err)
	}
	base := "http://" + *addr
	transport := &http.Transport{MaxIdleConnsPerHost: *maxInflight}
	if !impair.IsZero() {
		// Every client connection dials through the impairment shim, so the
		// offered load reaches the server over the configured bad network.
		dialer := &netem.Dialer{Profile: impair, Seed: *impSeed}
		transport.DialContext = dialer.DialContext
	}
	client := &http.Client{Timeout: 10 * time.Second, Transport: transport}
	if err := waitHealthy(client, base, 5*time.Second); err != nil {
		fail(err)
	}

	rep := Report{
		Addr: *addr, Dataset: *dataset, Scale: *scale, Seed: *seed,
		Queries: len(queries), Phases: *phases, HotSize: *hotSize, HotFrac: *hotFrac,
	}
	if !impair.IsZero() {
		rep.Impairment = &impair
		rep.ImpairSeed = *impSeed
	}
	if sr, err := fetchStats(client, base); err == nil {
		rep.ServerConfig = &sr.Config
	}
	for _, qps := range levels {
		lv, err := runLevel(client, base, queries, levelConfig{
			qps: qps, duration: *duration, phases: *phases, hotSize: *hotSize,
			hotFrac: *hotFrac, maxInflight: *maxInflight, seed: *seed,
		})
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "mrload: %5d qps: sent %d ok %d shed %d dropped %d errors %d  p50 %v p99 %v p999 %v\n",
			qps, lv.Sent, lv.OK, lv.Shed, lv.Dropped, lv.Errors,
			time.Duration(lv.P50Micros)*time.Microsecond,
			time.Duration(lv.P99Micros)*time.Microsecond,
			time.Duration(lv.P999Micros)*time.Microsecond)
		rep.Levels = append(rep.Levels, lv)
	}

	out := os.Stdout
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fail(err)
	}
	if *report != "" {
		fmt.Fprintf(os.Stderr, "mrload: wrote %s\n", *report)
	}

	if *check {
		for _, lv := range rep.Levels {
			if lv.OK == 0 || lv.Errors > 0 {
				fail(fmt.Errorf("check failed at %d qps: ok %d, errors %d", lv.QPS, lv.OK, lv.Errors))
			}
		}
		fmt.Fprintln(os.Stderr, "mrload: check passed")
	}
}

// Report is the full run summary; Levels holds one entry per -qps level.
type Report struct {
	Addr    string  `json:"addr"`
	Dataset string  `json:"dataset"`
	Scale   float64 `json:"scale"`
	Seed    int64   `json:"seed"`
	Queries int     `json:"queries"`
	Phases  int     `json:"phases"`
	HotSize int     `json:"hot_size"`
	HotFrac float64 `json:"hot_frac"`
	// Impairment records the netem profile every client connection dialed
	// through (absent for a clean-network run), and ImpairSeed the root
	// seed of its deterministic schedule — together they are the full
	// recipe for replaying the run's network conditions.
	Impairment *netem.Profile `json:"impairment,omitempty"`
	ImpairSeed int64          `json:"impair_seed,omitempty"`
	// ServerConfig echoes the serving limits the run was shed against.
	ServerConfig *serve.Config `json:"server_config,omitempty"`
	Levels       []Level       `json:"levels"`
}

// Level is one rate level's outcome: client-side counts and latency
// quantiles over successful replies, plus the server counter deltas.
type Level struct {
	QPS        int     `json:"qps"`
	DurationMS int64   `json:"duration_ms"`
	Sent       uint64  `json:"sent"`
	OK         uint64  `json:"ok"`
	Shed       uint64  `json:"shed"`
	Dropped    uint64  `json:"dropped"` // client inflight cap hit; never sent
	Errors     uint64  `json:"errors"`
	MeanMicros int64   `json:"mean_micros"`
	P50Micros  int64   `json:"p50_micros"`
	P99Micros  int64   `json:"p99_micros"`
	P999Micros int64   `json:"p999_micros"`
	MaxMicros  int64   `json:"max_micros"`
	Server     *Server `json:"server,omitempty"`
}

// Server is the /stats counter delta over one level, plus the server-side
// service-latency quantiles from its observation window at level end —
// unlike the client-side quantiles these exclude connection setup, client
// scheduling and queue wait, so they are the numbers the -shed-p99 bound
// actually governs.
type Server struct {
	Served    uint64 `json:"served"`
	Coalesced uint64 `json:"coalesced"`
	Flights   uint64 `json:"flights"`
	Shed      uint64 `json:"shed"`
	Canceled  uint64 `json:"canceled"`
	Errored   uint64 `json:"errored"`
	P50Micros int64  `json:"p50_micros"`
	P99Micros int64  `json:"p99_micros"`
}

type levelConfig struct {
	qps, phases, hotSize, maxInflight int
	duration                          time.Duration
	hotFrac                           float64
	seed                              int64
}

// runLevel replays the workload open-loop at cfg.qps for cfg.duration.
func runLevel(client *http.Client, base string, queries []string, cfg levelConfig) (Level, error) {
	before, err := fetchStats(client, base)
	if err != nil {
		return Level{}, err
	}

	lv := Level{QPS: cfg.qps, DurationMS: cfg.duration.Milliseconds()}
	var hist latstat.Histogram
	var mu sync.Mutex // guards the uint64 counts below
	var wg sync.WaitGroup
	inflight := make(chan struct{}, cfg.maxInflight)
	rng := rand.New(rand.NewSource(cfg.seed*1000 + int64(cfg.qps)))

	send := func(q string) {
		select {
		case inflight <- struct{}{}:
		default:
			lv.Dropped++ // client saturated: open loop refuses to close
			return
		}
		lv.Sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-inflight }()
			t0 := time.Now()
			resp, err := client.Get(base + "/query?q=" + url.QueryEscape(q))
			d := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				lv.Errors++
				return
			}
			resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusOK:
				lv.OK++
				hist.Record(d)
			case resp.StatusCode == http.StatusTooManyRequests:
				lv.Shed++
			default:
				lv.Errors++
			}
		}()
	}

	// The open-loop deficit-batch dispatcher lives in internal/loadgen; it
	// offers cfg.qps×cfg.duration requests regardless of dropped ticker
	// ticks and hands each call its rotating-hot-set phase.
	if _, err := loadgen.Run(nil, loadgen.Config{
		QPS: cfg.qps, Duration: cfg.duration, Phases: cfg.phases,
	}, func(_, phase int) {
		send(pickQuery(rng, queries, phase, cfg.hotSize, cfg.hotFrac))
	}); err != nil {
		return Level{}, err
	}
	wg.Wait()

	sum := hist.Summary()
	lv.MeanMicros = sum.Mean.Microseconds()
	lv.P50Micros = sum.P50.Microseconds()
	lv.P99Micros = sum.P99.Microseconds()
	lv.P999Micros = sum.P999.Microseconds()
	lv.MaxMicros = sum.Max.Microseconds()

	after, err := fetchStats(client, base)
	if err != nil {
		return lv, err
	}
	lv.Server = &Server{
		Served:    after.Counters.Served - before.Counters.Served,
		Coalesced: after.Counters.Coalesced - before.Counters.Coalesced,
		Flights:   after.Counters.Flights - before.Counters.Flights,
		Shed:      after.Counters.Shed - before.Counters.Shed,
		Canceled:  after.Counters.Canceled - before.Counters.Canceled,
		Errored:   after.Counters.Errored - before.Counters.Errored,
		P50Micros: after.Latency.P50.Microseconds(),
		P99Micros: after.Latency.P99.Microseconds(),
	}
	return lv, nil
}

// pickQuery draws from the phase's rotating hot set with probability
// hotFrac, uniformly otherwise — the drift model of the difftest workloads.
func pickQuery(rng *rand.Rand, queries []string, phase, hotSize int, hotFrac float64) string {
	if hotSize > len(queries) {
		hotSize = len(queries)
	}
	if hotSize > 0 && rng.Float64() < hotFrac {
		return queries[(phase*hotSize+rng.Intn(hotSize))%len(queries)]
	}
	return queries[rng.Intn(len(queries))]
}

// buildWorkload regenerates the server's dataset locally and derives the
// query set from it, so client and server agree on the label vocabulary.
func buildWorkload(dataset string, scale float64, seed int64, n, maxLen int) ([]string, error) {
	var g *mrx.Graph
	switch dataset {
	case "xmark":
		g = mrx.XMarkGraph(scale, seed)
	case "nasa":
		g = mrx.NASAGraph(scale, seed)
	default:
		return nil, fmt.Errorf("unknown dataset %q (want xmark or nasa)", dataset)
	}
	es := mrx.GenerateWorkload(g, mrx.WorkloadOptions{
		NumQueries: n, MaxPathLen: maxLen + 2, MaxQueryLen: maxLen, Seed: seed,
	})
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.String()
	}
	return out, nil
}

func fetchStats(client *http.Client, base string) (serve.StatsResponse, error) {
	var sr serve.StatsResponse
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return sr, fmt.Errorf("fetching /stats: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return sr, fmt.Errorf("/stats: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return sr, fmt.Errorf("decoding /stats: %w", err)
	}
	return sr, nil
}

// waitHealthy polls /healthz until the server answers or the budget runs
// out, so mrload can be started alongside mrserve in scripts.
func waitHealthy(client *http.Client, base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %v: %v", base, budget, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// parseQPS parses the -qps flag: comma-separated positive integers.
func parseQPS(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -qps value %q (want e.g. 100,400,1600)", s)
		}
		out = append(out, n)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "mrload: %v\n", err)
	os.Exit(1)
}
