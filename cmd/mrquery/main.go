// Command mrquery loads an XML document, builds a structural index, and
// evaluates simple path expressions, reporting answers and the paper's cost
// metric (index nodes visited + data nodes validated).
//
// Usage:
//
//	mrquery -in doc.xml -index a2 '//people/person' '//item/name'
//	mrquery -in doc.xml -index mstar -refine '//open_auction/bidder'
//	mrquery -in doc.xml -index engine -refine -stats '//person/name'
//	mrquery -in doc.xml -index engine -autotune -stats '//person/name'
//	mrgen -dataset xmark | mrquery -index mk -refine '//person/name'
//
// Index choices: a<k> (e.g. a0, a3), 1index, dk (construct for the given
// queries), dkpromote, mk, mstar, engine (the concurrent serving engine over
// an adaptive M*(k)), ud<k>,<l> (e.g. ud2,2). Every index is served through
// the same mrx.Querier interface. With -refine, adaptive indexes (dkpromote,
// mk, mstar, engine) are refined to support each query before it is
// re-evaluated. Queries may be simple path expressions (//a/b, /a//b) or
// branching expressions (//a[b/c]).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mrx"
)

func main() {
	in := flag.String("in", "", "input XML file (default stdin)")
	indexName := flag.String("index", "a2", "index: a<k>, 1index, dk, dkpromote, mk, mstar, engine, ud<k>,<l>")
	refine := flag.Bool("refine", false, "refine adaptive indexes to support each query")
	autotune := flag.Bool("autotune", false, "let the adaptive tuner discover the hot queries instead of -refine (engine index only)")
	epochs := flag.Int("epochs", 4, "tuning epochs to replay the workload for with -autotune")
	parallel := flag.Int("parallel", 0, "validation workers for -index engine (default GOMAXPROCS)")
	stats := flag.Bool("stats", false, "dump engine serving stats at exit (engine index only)")
	showAnswers := flag.Bool("answers", false, "print the answer node IDs (can be large)")
	maxAnswers := flag.Int("max-answers", 20, "max answer IDs to print with -answers")
	dotOut := flag.String("dot", "", "write the index graph in Graphviz DOT format to this file")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "mrquery: no query given")
		flag.Usage()
		os.Exit(2)
	}

	r := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}
	g, err := mrx.LoadXML(r)
	if err != nil {
		fail(err)
	}
	fmt.Printf("data graph: %d nodes, %d edges (%d references)\n",
		g.NumNodes(), g.NumEdges(), g.NumRefEdges())

	type branching struct{ in, out *mrx.PathExpr }
	var queries []*mrx.PathExpr
	var order []any
	for _, arg := range flag.Args() {
		if strings.ContainsRune(arg, '[') {
			in, out, err := mrx.ParseBranchingPath(arg)
			if err != nil {
				fail(err)
			}
			order = append(order, branching{in, out})
			queries = append(queries, in) // refinement target for -refine
			continue
		}
		q, err := mrx.ParsePath(arg)
		if err != nil {
			fail(err)
		}
		queries = append(queries, q)
		order = append(order, q)
	}

	b := buildIndex(g, *indexName, queries, *refine, *autotune, *parallel)
	if *autotune {
		if b.engine == nil {
			fail(fmt.Errorf("-autotune requires -index engine"))
		}
		// Replay the workload for -epochs tuning epochs: the tracker observes
		// the traffic, and each Step promotes what proved itself hot.
		for epoch := 0; epoch < *epochs; epoch++ {
			for _, q := range queries {
				for i := 0; i < 5; i++ {
					b.engine.Query(q)
				}
			}
			plan := b.engine.Tuner().Step()
			for _, d := range plan.Decisions {
				fmt.Printf("autotune epoch %d: %s %s (%s, applied=%v)\n",
					plan.Epoch, d.Action, d.Key, d.Reason, d.Changed)
			}
		}
		fmt.Printf("autotune: generation %d after %d epochs\n", b.engine.Generation(), *epochs)
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			fail(err)
		}
		if err := b.dot(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Println("wrote", *dotOut)
	}
	for _, item := range order {
		switch q := item.(type) {
		case *mrx.PathExpr:
			res := b.querier.Query(q)
			fmt.Printf("%s: %d answers, cost %d (index %d + validation %d), precise=%v\n",
				q, len(res.Answer), res.Cost.Total(), res.Cost.IndexNodes, res.Cost.DataNodes, res.Precise)
			if *showAnswers {
				printAnswers(res.Answer, *maxAnswers)
			}
		case branching:
			res := b.branching(q.in, q.out)
			fmt.Printf("%s[%s]: %d answers, cost %d (index %d + validation %d), precise=%v\n",
				q.in, q.out, len(res.Answer), res.Cost.Total(), res.Cost.IndexNodes, res.Cost.DataNodes, res.Precise)
			if *showAnswers {
				printAnswers(res.Answer, *maxAnswers)
			}
		}
	}
	if *stats {
		if b.engine == nil {
			fmt.Fprintln(os.Stderr, "mrquery: -stats requires -index engine")
		} else {
			b.engine.Stats().WriteTo(os.Stdout)
		}
	}
}

type branchEval = func(in, out *mrx.PathExpr) mrx.BranchingResult

type dotWriter = func(io.Writer) error

// built bundles the Querier serving the simple-path queries with the
// branching evaluator and DOT writer for the chosen index.
type built struct {
	querier   mrx.Querier
	branching branchEval
	dot       dotWriter
	engine    *mrx.Engine // non-nil for -index engine
}

func buildIndex(g *mrx.Graph, name string, queries []*mrx.PathExpr, refine, autotune bool, parallel int) built {
	dotFor := func(ig *mrx.Index) dotWriter {
		return func(w io.Writer) error { return ig.WriteDOT(w, name, 8) }
	}
	onIndex := func(ig *mrx.Index, downL int) built {
		return built{
			querier: mrx.AsQuerier(ig),
			branching: func(in, out *mrx.PathExpr) mrx.BranchingResult {
				return mrx.QueryIndexBranching(ig, in, out, downL)
			},
			dot: dotFor(ig),
		}
	}
	switch {
	case strings.HasPrefix(name, "ud"):
		var k, l int
		if _, err := fmt.Sscanf(name, "ud%d,%d", &k, &l); err != nil || k < 0 || l < 0 {
			fail(fmt.Errorf("bad UD(k,l) index name %q (want e.g. ud2,2)", name))
		}
		ud := mrx.NewUD(g, k, l)
		report(ud.Index().NumNodes(), ud.Index().NumEdges(), name)
		return built{querier: ud, branching: ud.QueryBranching, dot: dotFor(ud.Index())}
	case name == "engine":
		opts := mrx.EngineOptions{Parallelism: parallel}
		if autotune {
			// Interval 0: mrquery steps epochs itself so runs are
			// deterministic and need no Close.
			cfg := mrx.DefaultAutoTuneConfig()
			en, err := mrx.NewEngine(g, mrx.EngineOptions{Parallelism: parallel, AutoTune: &cfg})
			if err != nil {
				fail(err)
			}
			sz := en.Snapshot().Sizes()
			fmt.Printf("index engine: %d nodes, %d edges (%d components, generation %d)\n",
				sz.Nodes, sz.Edges, sz.Components, en.Generation())
			fine := en.Snapshot().Finest()
			return built{
				querier: en,
				branching: func(in, out *mrx.PathExpr) mrx.BranchingResult {
					return mrx.QueryIndexBranching(fine, in, out, 0)
				},
				dot:    dotFor(fine),
				engine: en,
			}
		}
		en, err := mrx.NewEngine(g, opts)
		if err != nil {
			fail(err)
		}
		if refine {
			for _, q := range queries {
				en.Support(q)
			}
		}
		sz := en.Snapshot().Sizes()
		fmt.Printf("index engine: %d nodes, %d edges (%d components, generation %d)\n",
			sz.Nodes, sz.Edges, sz.Components, en.Generation())
		fine := en.Snapshot().Finest()
		return built{
			querier: en,
			branching: func(in, out *mrx.PathExpr) mrx.BranchingResult {
				return mrx.QueryIndexBranching(fine, in, out, 0)
			},
			dot:    dotFor(fine),
			engine: en,
		}
	case strings.HasPrefix(name, "a"):
		k, err := strconv.Atoi(name[1:])
		if err != nil || k < 0 {
			fail(fmt.Errorf("bad A(k) index name %q", name))
		}
		ig := mrx.BuildAK(g, k)
		report(ig.NumNodes(), ig.NumEdges(), name)
		return onIndex(ig, 0)
	case name == "1index":
		ig, depth := mrx.Build1Index(g)
		fmt.Printf("bisimulation depth: %d\n", depth)
		report(ig.NumNodes(), ig.NumEdges(), name)
		return onIndex(ig, 0)
	case name == "dk":
		ig, err := mrx.BuildDK(g, queries)
		if err != nil {
			fail(err)
		}
		report(ig.NumNodes(), ig.NumEdges(), name)
		return onIndex(ig, 0)
	case name == "dkpromote":
		dk := mrx.NewDKPromote(g)
		if refine {
			for _, q := range queries {
				dk.Support(q)
			}
		}
		report(dk.Index().NumNodes(), dk.Index().NumEdges(), name)
		b := onIndex(dk.Index(), 0)
		b.querier = dk
		return b
	case name == "mk":
		mk := mrx.NewMK(g)
		if refine {
			for _, q := range queries {
				mk.Support(q)
			}
		}
		report(mk.Index().NumNodes(), mk.Index().NumEdges(), name)
		b := onIndex(mk.Index(), 0)
		b.querier = mk
		return b
	case name == "mstar":
		ms := mrx.NewMStar(g)
		if refine {
			for _, q := range queries {
				ms.Support(q)
			}
		}
		sz := ms.Sizes()
		fmt.Printf("index mstar: %d nodes, %d edges (%d components, %d cross-links)\n",
			sz.Nodes, sz.Edges, sz.Components, sz.CrossLinks)
		b := onIndex(ms.Finest(), 0)
		b.querier = ms
		return b
	default:
		fail(fmt.Errorf("unknown index %q", name))
		return built{}
	}
}

func report(nodes, edges int, name string) {
	fmt.Printf("index %s: %d nodes, %d edges\n", name, nodes, edges)
}

func printAnswers(answers []mrx.NodeID, max int) {
	n := len(answers)
	if n > max {
		answers = answers[:max]
	}
	fmt.Printf("  answers: %v", answers)
	if n > len(answers) {
		fmt.Printf(" ... (%d more)", n-len(answers))
	}
	fmt.Println()
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "mrquery: %v\n", err)
	os.Exit(1)
}
