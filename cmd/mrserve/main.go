// Command mrserve serves path-expression queries over HTTP from the
// concurrent adaptive engine: the paper's operational loop (serve, extract
// FUPs, refine, repeat) behind a network front end with single-flight
// request coalescing and latency-aware load shedding.
//
// Usage:
//
//	mrserve -dataset xmark -scale 0.1 -autotune
//	mrserve -dataset corpus -shards 4    # scatter-gather over a sharded engine
//	mrserve -in doc.xml -addr 127.0.0.1:8080 -queue-depth 128 -shed-p99 50ms
//	mrserve -addr 127.0.0.1:0     # pick a free port; the chosen one is printed
//
// Disk-resident serving (see cmd/mrsnap and internal/mmapstore):
//
//	mrserve -graph g.bin -index-file snap.mrx              # full verification
//	mrserve -graph g.bin -index-file snap.mrx -trust-index # O(1) mmap cold start
//	mrserve -dataset xmark -snapshot-dir /var/mrx          # persist every generation
//
// Endpoints:
//
//	GET /query?q=//a/b[&answers=1]   evaluate one path expression (JSON)
//	GET /stats                       serving + engine counters (JSON)
//	GET /healthz                     liveness probe
//
// Overload policy: at most -max-concurrent queries evaluate at once; up to
// -queue-depth more wait, each at most -queue-timeout; beyond that — or
// when the observed p99 exceeds -shed-p99 — requests are shed with
// 429 Too Many Requests and a Retry-After header. Concurrent requests for
// the same canonical expression coalesce into one evaluation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mrx"
	"mrx/internal/query"
	"mrx/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	in := flag.String("in", "", "serve this XML file instead of a generated dataset")
	graphIn := flag.String("graph", "", "load the data graph from this binary graph file (mrsnap -graph-out)")
	indexFile := flag.String("index-file", "", "serve read-only from this memory-mapped snapshot (cmd/mrsnap) instead of building an index")
	trustIndex := flag.Bool("trust-index", false, "skip checksums and the deep structural walk when opening -index-file (O(1) start; only for files you published yourself)")
	snapshotDir := flag.String("snapshot-dir", "", "persist every published engine generation to this directory as memory-mapped snapshots and serve from the mapped views")
	snapshotCompact := flag.Bool("snapshot-compact", false, "delta-compress extent arenas in -snapshot-dir files")
	dataset := flag.String("dataset", "xmark", "generated dataset: xmark, nasa or corpus (multi-document)")
	scale := flag.Float64("scale", 0.1, "generated dataset scale (1.0 = paper size)")
	seed := flag.Int64("seed", 1, "generated dataset seed")
	parallel := flag.Int("parallel", 0, "validation workers per query (default GOMAXPROCS)")
	shards := flag.Int("shards", 0, "serve from a sharded engine with this many shards (0 = monolithic; clamped to the dataset's weak component count)")
	autotune := flag.Bool("autotune", false, "enable online workload tracking and adaptive refinement")
	tuneInterval := flag.Duration("tune-interval", time.Second, "tuning epoch length with -autotune")
	maxConcurrent := flag.Int("max-concurrent", serve.DefaultConfig().MaxConcurrent, "queries evaluating at once")
	queueDepth := flag.Int("queue-depth", serve.DefaultConfig().QueueDepth, "requests allowed to wait for a slot")
	queueTimeout := flag.Duration("queue-timeout", serve.DefaultConfig().QueueTimeout, "max wait for a slot before shedding")
	shedP99 := flag.Duration("shed-p99", 0, "shed queued arrivals when observed p99 exceeds this (0 disables)")
	window := flag.Duration("window", serve.DefaultConfig().Window, "latency observation window for -shed-p99")
	retryAfter := flag.Duration("retry-after", serve.DefaultConfig().RetryAfter, "Retry-After hint on 429 responses")
	readHeaderTimeout := flag.Duration("read-header-timeout", serve.DefaultConfig().ReadHeaderTimeout, "max time a client may take to send its request headers (slow-loris bound)")
	readTimeout := flag.Duration("read-timeout", serve.DefaultConfig().ReadTimeout, "max time to read one whole request")
	writeTimeout := flag.Duration("write-timeout", serve.DefaultConfig().WriteTimeout, "max time to write one whole response (half-open reader bound)")
	idleTimeout := flag.Duration("idle-timeout", serve.DefaultConfig().IdleTimeout, "max keep-alive idle time before a connection is reaped")
	flag.Parse()

	cfg := serve.Config{
		MaxConcurrent:     *maxConcurrent,
		QueueDepth:        *queueDepth,
		QueueTimeout:      *queueTimeout,
		ShedP99:           *shedP99,
		Window:            *window,
		RetryAfter:        *retryAfter,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	// Validate the serving limits before paying for dataset and engine
	// construction; serve.New re-checks below.
	if err := cfg.Validate(); err != nil {
		fail(err)
	}

	g, desc, err := loadGraph(*in, *graphIn, *dataset, *scale, *seed)
	if err != nil {
		fail(err)
	}
	fmt.Printf("mrserve: %s: %d nodes, %d edges (%d references)\n",
		desc, g.NumNodes(), g.NumEdges(), g.NumRefEdges())

	var tune *mrx.AutoTuneConfig
	if *autotune {
		cfg := mrx.DefaultAutoTuneConfig()
		cfg.Interval = *tuneInterval
		tune = &cfg
	}
	var persist *mrx.EnginePersistOptions
	if *snapshotDir != "" {
		persist = &mrx.EnginePersistOptions{Dir: *snapshotDir, Compact: *snapshotCompact}
	}
	// All engines serve through query.ContextQuerier; the serving layer
	// cannot tell them apart. -index-file selects the read-only
	// disk-resident path, -shards the scatter-gather path.
	var (
		backend    query.ContextQuerier
		extraStats func() any
		closeEng   func()
	)
	if *indexFile != "" {
		if *autotune || *shards > 0 || persist != nil {
			fail(fmt.Errorf("-index-file serves a fixed snapshot; it cannot combine with -autotune, -shards or -snapshot-dir"))
		}
		start := time.Now()
		snap, err := mrx.OpenSnapshot(*indexFile, g, mrx.SnapshotOpenOptions{Trusted: *trustIndex})
		if err != nil {
			fail(err)
		}
		mode := "verified"
		if *trustIndex {
			mode = "trusted"
		}
		fmt.Printf("mrserve: mapped %s: %d components, %d bytes, %s open in %v\n",
			*indexFile, snap.FrozenMStar().NumComponents(), snap.SizeBytes(), mode,
			time.Since(start).Round(time.Microsecond))
		en, err := mrx.NewStaticEngine(snap.FrozenMStar(), *parallel)
		if err != nil {
			fail(err)
		}
		backend, extraStats, closeEng = en, func() any { return en.Stats() }, func() { snap.Close() }
	} else if *shards > 0 {
		en, err := mrx.NewShardedEngine(g, mrx.ShardedEngineOptions{
			Shards: *shards, Parallelism: *parallel, AutoTune: tune, Persist: persist,
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("mrserve: sharded engine: %d shards\n", en.NumShards())
		backend, extraStats, closeEng = en, func() any { return en.Stats() }, en.Close
	} else {
		en, err := mrx.NewEngine(g, mrx.EngineOptions{Parallelism: *parallel, AutoTune: tune, Persist: persist})
		if err != nil {
			fail(err)
		}
		backend, extraStats, closeEng = en, func() any { return en.Stats() }, en.Close
	}
	if persist != nil {
		fmt.Printf("mrserve: persisting snapshots to %s\n", *snapshotDir)
	}
	defer closeEng()

	srv, err := serve.New(backend, cfg)
	if err != nil {
		fail(err)
	}
	srv.ExtraStats = extraStats

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	// The actual address, so -addr with port 0 is scriptable.
	fmt.Printf("mrserve: listening on http://%s\n", ln.Addr())

	// HTTPServer applies the configured network timeouts, so a slow-loris
	// header trickle or a client that stops reading its response is cut off
	// instead of pinning a connection goroutine.
	hs := cfg.HTTPServer(srv.Handler())
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "mrserve: %v: shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := hs.Shutdown(ctx)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrserve: shutdown: %v\n", err)
		}
	}

	c := srv.Counters()
	fmt.Printf("mrserve: served %d (%d coalesced into %d evaluations), shed %d, canceled %d, errored %d\n",
		c.Served, c.Coalesced, c.Flights, c.Shed, c.Canceled, c.Errored)
}

// loadGraph builds the data graph from a binary graph file, an XML file, or
// a generated dataset, in that precedence order.
func loadGraph(in, graphIn, dataset string, scale float64, seed int64) (*mrx.Graph, string, error) {
	if graphIn != "" {
		f, err := os.Open(graphIn)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		g, err := mrx.ReadGraph(f)
		if err != nil {
			return nil, "", fmt.Errorf("loading %s: %w", graphIn, err)
		}
		return g, graphIn, nil
	}
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		g, err := mrx.LoadXML(f)
		if err != nil {
			return nil, "", fmt.Errorf("loading %s: %w", in, err)
		}
		return g, in, nil
	}
	desc := fmt.Sprintf("%s scale %g seed %d", dataset, scale, seed)
	switch dataset {
	case "xmark":
		return mrx.XMarkGraph(scale, seed), desc, nil
	case "nasa":
		return mrx.NASAGraph(scale, seed), desc, nil
	case "corpus":
		g, err := mrx.CorpusGraph(scale, seed, 12)
		if err != nil {
			return nil, "", fmt.Errorf("corpus: %w", err)
		}
		return g, desc, nil
	default:
		return nil, "", fmt.Errorf("unknown dataset %q (want xmark, nasa or corpus)", dataset)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "mrserve: %v\n", err)
	os.Exit(1)
}
