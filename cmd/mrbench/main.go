// Command mrbench regenerates the paper's evaluation (He & Yang, ICDE 2004,
// §5): every figure from 8 to 26, plus the ablations this reproduction adds.
//
// Usage:
//
//	mrbench -fig 10                # one figure, scale 0.1 by default
//	mrbench -fig all -scale 1.0    # the full paper at paper-size datasets
//	mrbench -ablation strategies   # M*(k) query-strategy comparison
//	mrbench -list                  # list figure specifications
//
// Output is a text table per figure: the same series the paper plots.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"mrx/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "figure to reproduce: 8..26 or all")
	ablation := flag.String("ablation", "", "ablation to run: strategies, literal, accounting, apex, engine, adapt, shard, mmap")
	readers := flag.String("readers", "1,4,8", "reader-goroutine counts for -ablation engine")
	passes := flag.Int("passes", 2, "workload replays per reader for -ablation engine/shard")
	shards := flag.String("shards", "1,2,4,8", "shard counts for -ablation shard")
	dataset := flag.String("dataset", "xmark", "dataset for ablations: xmark, nasa or corpus (multi-document; required for meaningful -ablation shard)")
	scale := flag.Float64("scale", 0.1, "dataset scale (1.0 = paper size)")
	queries := flag.Int("queries", 500, "workload size (paper: 500)")
	maxQueryLen := flag.Int("maxlen", 9, "max query length for ablations")
	seed := flag.Int64("seed", 1, "workload and dataset seed")
	list := flag.Bool("list", false, "list figure specifications")
	svgDir := flag.String("svg", "", "write figures as SVG charts into this directory instead of printing tables")
	csvDir := flag.String("csv", "", "write figures as CSV data into this directory instead of printing tables")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	if *list {
		for _, f := range experiments.Figures {
			fmt.Printf("fig %2d: %s\n", f.ID, f.Title)
		}
		return
	}

	progress := experiments.Progress(nil)
	if !*quiet {
		start := time.Now()
		progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "[%7.1fs] "+format+"\n",
				append([]any{time.Since(start).Seconds()}, args...)...)
		}
	}
	cfg := experiments.Config{Scale: *scale, NumQueries: *queries, Seed: *seed, GrowthStep: 50}

	switch {
	case *ablation != "":
		runAblation(*ablation, *dataset, cfg, *maxQueryLen, *readers, *shards, *passes, progress)
	case *fig == "all":
		for _, f := range experiments.Figures {
			if err := runOne(f.ID, cfg, *svgDir, *csvDir, progress); err != nil {
				fail(err)
			}
			fmt.Println()
		}
	case *fig != "":
		id, err := strconv.Atoi(*fig)
		if err != nil {
			fail(fmt.Errorf("bad figure %q", *fig))
		}
		if err := runOne(id, cfg, *svgDir, *csvDir, progress); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runOne renders one figure: a text table on stdout, an SVG chart, or a
// CSV data file.
func runOne(id int, cfg experiments.Config, svgDir, csvDir string, progress experiments.Progress) error {
	if svgDir == "" && csvDir == "" {
		return experiments.RunFigure(id, cfg, os.Stdout, progress)
	}
	write := func(dir, ext string, render func(io.Writer) error) error {
		if dir == "" {
			return nil
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(dir, fmt.Sprintf("figure%02d.%s", id, ext))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := render(f); err != nil {
			return err
		}
		fmt.Println("wrote", path)
		return nil
	}
	if err := write(svgDir, "svg", func(w io.Writer) error {
		return experiments.RenderFigureSVG(id, cfg, w, progress)
	}); err != nil {
		return err
	}
	return write(csvDir, "csv", func(w io.Writer) error {
		return experiments.RenderFigureCSV(id, cfg, w, progress)
	})
}

func runAblation(name, dataset string, cfg experiments.Config, maxQueryLen int, readers, shards string, passes int, progress experiments.Progress) {
	ds, err := experiments.LoadDataset(dataset, cfg.Scale, cfg.Seed)
	if err != nil {
		fail(err)
	}
	queries := experiments.NewWorkload(ds, cfg.NumQueries, maxQueryLen, cfg.Seed)
	switch name {
	case "strategies":
		fmt.Printf("M*(k) query strategies on %s (scale %g, %d queries)\n", dataset, cfg.Scale, len(queries))
		experiments.WriteStrategyTable(os.Stdout, experiments.RunStrategies(ds, queries, progress))
	case "literal":
		fmt.Printf("M(k) literal-vs-strict refinement on %s (scale %g, %d queries)\n", dataset, cfg.Scale, len(queries))
		experiments.WriteLiteralTable(os.Stdout, experiments.RunLiteralAblation(ds, queries, progress))
	case "apex":
		unseen := experiments.NewWorkload(ds, cfg.NumQueries, maxQueryLen, cfg.Seed+1000)
		fmt.Printf("APEX-like cache vs M*(k) on %s (scale %g, %d seen + %d unseen queries)\n",
			dataset, cfg.Scale, len(queries), len(unseen))
		experiments.WriteAPEXTable(os.Stdout, experiments.RunAPEXAblation(ds, queries, unseen, progress))
	case "engine":
		counts, err := parseReaderCounts(readers)
		if err != nil {
			fail(err)
		}
		fmt.Printf("concurrent engine serving on %s (scale %g, %d queries, %d passes/reader)\n",
			dataset, cfg.Scale, len(queries), passes)
		res, err := experiments.RunEngineAblation(ds, queries, counts, passes, progress)
		if err != nil {
			fail(err)
		}
		experiments.WriteEngineTable(os.Stdout, res)
	case "shard":
		counts, err := parseReaderCounts(shards)
		if err != nil {
			fail(err)
		}
		rcounts, err := parseReaderCounts(readers)
		if err != nil {
			fail(err)
		}
		// The widest reader count stresses the scatter path hardest; the
		// shard sweep is the variable under study.
		r := rcounts[len(rcounts)-1]
		fmt.Printf("sharded scatter-gather serving on %s (scale %g, %d queries, %d readers, %d passes/reader)\n",
			dataset, cfg.Scale, len(queries), r, passes)
		res, err := experiments.RunShardAblation(ds, queries, counts, r, passes, progress)
		if err != nil {
			fail(err)
		}
		experiments.WriteShardTable(os.Stdout, res)
	case "adapt":
		fmt.Printf("adaptive tuning vs static oracle on %s (scale %g, %d queries)\n",
			dataset, cfg.Scale, len(queries))
		res, err := experiments.RunAdaptAblation(ds, queries, 3, 6, progress)
		if err != nil {
			fail(err)
		}
		experiments.WriteAdaptTable(os.Stdout, res)
	case "mmap":
		// A size sweep, not a single dataset: -scale sets the top; the
		// smaller points put an order of magnitude under it so the flat
		// trusted-open column is visible against the growing heap column.
		scales := []float64{cfg.Scale / 10, cfg.Scale / 3, cfg.Scale}
		fmt.Printf("disk-resident serving (mmap snapshots) on %s (scales %.3g %.3g %.3g, %d queries, %d passes)\n",
			dataset, scales[0], scales[1], scales[2], cfg.NumQueries, passes)
		res, err := experiments.RunMmapAblation(dataset, scales, cfg, maxQueryLen, passes, progress)
		if err != nil {
			fail(err)
		}
		experiments.WriteMmapTable(os.Stdout, res)
	case "accounting":
		row := experiments.RunMStarAccounting(ds, queries, progress)
		fmt.Printf("M*(k) size accounting on %s (scale %g, %d queries)\n", dataset, cfg.Scale, len(queries))
		fmt.Printf("components=%d\n", row.Components)
		fmt.Printf("%-14s %10s %10s\n", "", "nodes", "edges")
		fmt.Printf("%-14s %10d %10d\n", "deduplicated", row.Nodes, row.Edges)
		fmt.Printf("%-14s %10d %10d\n", "logical", row.LogicalNodes, row.LogicalEdges)
		fmt.Printf("cross-links: %d\n", row.CrossLinks)
	default:
		fail(fmt.Errorf("unknown ablation %q (want strategies, literal, accounting, apex, engine, adapt, shard or mmap)", name))
	}
}

// parseReaderCounts parses the -readers flag: comma-separated positive ints.
func parseReaderCounts(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -readers value %q (want e.g. 1,4,8)", s)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "mrbench: %v\n", err)
	os.Exit(1)
}
