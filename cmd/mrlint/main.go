// Command mrlint runs the module's static-analysis suite (internal/analysis)
// over the repository. It is stdlib-only and enforces the project conventions
// described in DESIGN.md, "Static enforcement of invariants" and
// "Interprocedural enforcement":
//
//	nopanic          no panic in library code unless annotated
//	atomicdiscipline atomic fields are never accessed plainly; no lock copies
//	snapshotmut      published snapshot/index state is written only by owners
//	errwrap          store read errors wrap with %w and name the section
//	noleak           goroutines carry a lifecycle signal; no bare time.Sleep
//	hotpathalloc     //mrx:hotpath closures stay allocation-disciplined
//	ctxflow          context flows down from context-bearing roots
//	lifecycle        WaitGroup Add/Done, ticker Stop and cancel retention
//	                 balance across function boundaries
//
// Usage:
//
//	mrlint [-json | -github | -stats] [-baseline file] [packages]
//
// Packages follow the go tool's pattern syntax in its common forms: "./..."
// (the default) loads every package in the module, "./dir/..." a subtree, and
// a directory or import path a single package. Findings print one per line as
//
//	file:line:col: analyzer: message
//
// or, with -json, as a JSON array of {file, line, col, analyzer, message}
// objects, or, with -github, as GitHub Actions workflow commands
// (::error file=F,line=L,col=C::analyzer: message) that the Actions runner
// turns into PR annotations. The exit status is 0 when the module is clean,
// 1 when there are findings, and 2 when loading or type-checking fails.
//
// -stats replaces the finding listing with a JSON summary of per-analyzer
// finding and suppression counts (suppression = a reported finding silenced
// by an allow directive; stale directives count for nothing). -baseline
// compares those suppression counts against a committed ceiling file (see
// lint-suppressions.json at the module root) and fails when any analyzer's
// count grew — growing the ceiling requires editing the committed file,
// which puts the reason in front of a reviewer. Interprocedural analyzers
// see exactly the packages loaded, so baseline checks should run on "./...".
//
// A finding is silenced — deliberately, reviewably — by annotating the line
// (or the line above) with:
//
//	//mrlint:allow <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mrx/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("mrlint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	jsonOut := flags.Bool("json", false, "emit findings as a JSON array")
	githubOut := flags.Bool("github", false, "emit findings as GitHub Actions ::error commands")
	statsOut := flags.Bool("stats", false, "emit per-analyzer finding/suppression counts instead of findings")
	baseline := flags.String("baseline", "", "suppression ceiling `file`; fail when any analyzer's suppression count grew past it")
	flags.Usage = func() {
		fmt.Fprintf(stderr, "usage: mrlint [-json | -github | -stats] [-baseline file] [packages]\n")
		flags.PrintDefaults()
	}
	if err := flags.Parse(argv); err != nil {
		return 2
	}
	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "mrlint: %v\n", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "mrlint: %v\n", err)
		return 2
	}
	module, err := analysis.ModulePath(root)
	if err != nil {
		fmt.Fprintf(stderr, "mrlint: %v\n", err)
		return 2
	}

	pkgs, err := loadPatterns(root, module, cwd, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "mrlint: %v\n", err)
		return 2
	}

	findings, stats := analysis.RunWithStats(pkgs, analysis.DefaultAnalyzers())
	for i := range findings {
		if rel, err := filepath.Rel(cwd, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = rel
		}
	}

	switch {
	case *statsOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(stats); err != nil {
			fmt.Fprintf(stderr, "mrlint: %v\n", err)
			return 2
		}
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "mrlint: %v\n", err)
			return 2
		}
	case *githubOut:
		for _, f := range findings {
			fmt.Fprintf(stdout, "::error file=%s,line=%d,col=%d::%s: %s\n",
				f.File, f.Line, f.Col, f.Analyzer, githubEscape(f.Message))
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}

	code := 0
	if len(findings) > 0 {
		code = 1
	}
	if *baseline != "" {
		if !checkBaseline(*baseline, stats, stderr) {
			code = 1
		}
	}
	return code
}

// githubEscape encodes the characters the Actions runner treats as command
// data delimiters (https://docs.github.com/actions workflow commands).
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// suppressionBaseline is the schema of the committed ceiling file.
type suppressionBaseline struct {
	Comment    string         `json:"comment,omitempty"`
	Suppressed map[string]int `json:"suppressed"`
}

// checkBaseline compares the run's per-analyzer suppression counts against
// the committed ceiling and reports violations to stderr. Counts below the
// ceiling get an advisory nudge (ratchet the file down) but still pass.
func checkBaseline(path string, stats analysis.Stats, stderr io.Writer) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "mrlint: baseline: %v\n", err)
		return false
	}
	var base suppressionBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(stderr, "mrlint: baseline %s: %v\n", path, err)
		return false
	}
	names := make([]string, 0, len(stats.Suppressed)+len(base.Suppressed))
	for name := range stats.Suppressed {
		names = append(names, name)
	}
	for name := range base.Suppressed {
		if _, ok := stats.Suppressed[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	ok := true
	for _, name := range names {
		got, want := stats.Suppressed[name], base.Suppressed[name]
		switch {
		case got > want:
			ok = false
			fmt.Fprintf(stderr, "mrlint: %s suppressions grew: %d > baseline %d; remove the new //mrlint:allow or raise %s with the reason in the same change\n",
				name, got, want, path)
		case got < want:
			fmt.Fprintf(stderr, "mrlint: note: %s suppressions shrank to %d (baseline %d); ratchet %s down\n",
				name, got, want, path)
		}
	}
	return ok
}

// loadPatterns resolves go-tool-style package patterns against the module and
// loads the matching packages, deduplicated, in import path order.
func loadPatterns(root, module, cwd string, patterns []string) ([]*analysis.Package, error) {
	loader := analysis.NewLoader(root, module)
	var all []*analysis.Package // LoadAll result, fetched at most once
	seen := make(map[string]bool)
	var pkgs []*analysis.Package
	add := func(p *analysis.Package) {
		if !seen[p.Path] {
			seen[p.Path] = true
			pkgs = append(pkgs, p)
		}
	}
	for _, pattern := range patterns {
		prefix, recursive, err := resolvePattern(root, module, cwd, pattern)
		if err != nil {
			return nil, err
		}
		if !recursive {
			p, err := loader.Load(prefix)
			if err != nil {
				return nil, err
			}
			add(p)
			continue
		}
		if all == nil {
			if all, err = loader.LoadAll(); err != nil {
				return nil, err
			}
		}
		for _, p := range all {
			if p.Path == prefix || strings.HasPrefix(p.Path, prefix+"/") {
				add(p)
			}
		}
	}
	return pkgs, nil
}

// resolvePattern turns one command line pattern into an import path prefix
// and a flag saying whether it covers the whole subtree ("..." suffix).
// Accepted forms: "./...", "./dir", "./dir/...", "dir", and plain import
// paths like "mrx/internal/store" or "mrx/...".
func resolvePattern(root, module, cwd, pattern string) (prefix string, recursive bool, err error) {
	if rest, ok := strings.CutSuffix(pattern, "..."); ok {
		recursive = true
		pattern = strings.TrimSuffix(rest, "/")
		if pattern == "" || pattern == "." {
			return module, true, nil
		}
	}
	if pattern == module || strings.HasPrefix(pattern, module+"/") {
		return pattern, recursive, nil
	}
	// Treat it as a directory relative to the working directory.
	dir := pattern
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(cwd, dir)
	}
	rel, rerr := filepath.Rel(root, dir)
	if rerr != nil || strings.HasPrefix(rel, "..") {
		return "", false, fmt.Errorf("pattern %q is outside module %s", pattern, module)
	}
	if rel == "." {
		return module, recursive, nil
	}
	return module + "/" + filepath.ToSlash(rel), recursive, nil
}
