// Command mrlint runs the module's static-analysis suite (internal/analysis)
// over the repository. It is stdlib-only and enforces the project conventions
// described in DESIGN.md, "Static enforcement of invariants":
//
//	nopanic          no panic in library code unless annotated
//	atomicdiscipline atomic fields are never accessed plainly; no lock copies
//	snapshotmut      published snapshot/index state is written only by owners
//	errwrap          store read errors wrap with %w and name the section
//	noleak           goroutines carry a lifecycle signal; no bare time.Sleep
//
// Usage:
//
//	mrlint [-json] [packages]
//
// Packages follow the go tool's pattern syntax in its common forms: "./..."
// (the default) loads every package in the module, "./dir/..." a subtree, and
// a directory or import path a single package. Findings print one per line as
//
//	file:line:col: analyzer: message
//
// or, with -json, as a JSON array of {file, line, col, analyzer, message}
// objects. The exit status is 0 when the module is clean, 1 when there are
// findings, and 2 when loading or type-checking fails.
//
// A finding is silenced — deliberately, reviewably — by annotating the line
// (or the line above) with:
//
//	//mrlint:allow <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mrx/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("mrlint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	jsonOut := flags.Bool("json", false, "emit findings as a JSON array")
	flags.Usage = func() {
		fmt.Fprintf(stderr, "usage: mrlint [-json] [packages]\n")
		flags.PrintDefaults()
	}
	if err := flags.Parse(argv); err != nil {
		return 2
	}
	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "mrlint: %v\n", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "mrlint: %v\n", err)
		return 2
	}
	module, err := analysis.ModulePath(root)
	if err != nil {
		fmt.Fprintf(stderr, "mrlint: %v\n", err)
		return 2
	}

	pkgs, err := loadPatterns(root, module, cwd, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "mrlint: %v\n", err)
		return 2
	}

	findings := analysis.Run(pkgs, analysis.DefaultAnalyzers())
	for i := range findings {
		if rel, err := filepath.Rel(cwd, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = rel
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "mrlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// loadPatterns resolves go-tool-style package patterns against the module and
// loads the matching packages, deduplicated, in import path order.
func loadPatterns(root, module, cwd string, patterns []string) ([]*analysis.Package, error) {
	loader := analysis.NewLoader(root, module)
	var all []*analysis.Package // LoadAll result, fetched at most once
	seen := make(map[string]bool)
	var pkgs []*analysis.Package
	add := func(p *analysis.Package) {
		if !seen[p.Path] {
			seen[p.Path] = true
			pkgs = append(pkgs, p)
		}
	}
	for _, pattern := range patterns {
		prefix, recursive, err := resolvePattern(root, module, cwd, pattern)
		if err != nil {
			return nil, err
		}
		if !recursive {
			p, err := loader.Load(prefix)
			if err != nil {
				return nil, err
			}
			add(p)
			continue
		}
		if all == nil {
			if all, err = loader.LoadAll(); err != nil {
				return nil, err
			}
		}
		for _, p := range all {
			if p.Path == prefix || strings.HasPrefix(p.Path, prefix+"/") {
				add(p)
			}
		}
	}
	return pkgs, nil
}

// resolvePattern turns one command line pattern into an import path prefix
// and a flag saying whether it covers the whole subtree ("..." suffix).
// Accepted forms: "./...", "./dir", "./dir/...", "dir", and plain import
// paths like "mrx/internal/store" or "mrx/...".
func resolvePattern(root, module, cwd, pattern string) (prefix string, recursive bool, err error) {
	if rest, ok := strings.CutSuffix(pattern, "..."); ok {
		recursive = true
		pattern = strings.TrimSuffix(rest, "/")
		if pattern == "" || pattern == "." {
			return module, true, nil
		}
	}
	if pattern == module || strings.HasPrefix(pattern, module+"/") {
		return pattern, recursive, nil
	}
	// Treat it as a directory relative to the working directory.
	dir := pattern
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(cwd, dir)
	}
	rel, rerr := filepath.Rel(root, dir)
	if rerr != nil || strings.HasPrefix(rel, "..") {
		return "", false, fmt.Errorf("pattern %q is outside module %s", pattern, module)
	}
	if rel == "." {
		return module, recursive, nil
	}
	return module + "/" + filepath.ToSlash(rel), recursive, nil
}
