package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunCleanModule(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d on the real module\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run should print nothing, got %q", stdout.String())
	}
}

func TestRunSinglePackagePattern(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"../../internal/store"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
}

func TestRunJSONCleanIsEmptyArray(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "../../internal/graph"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	var findings []map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) != 0 {
		t.Errorf("expected empty array, got %v", findings)
	}
}

// writeBadModule creates a throwaway module with one nopanic violation and
// chdirs into it.
func writeBadModule(t *testing.T) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmpmod\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	lib := filepath.Join(dir, "lib")
	if err := os.Mkdir(lib, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package lib\n\nfunc Boom() {\n\tpanic(\"x\")\n}\n"
	if err := os.WriteFile(filepath.Join(lib, "lib.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Chdir(dir)
}

func TestRunReportsFindingsText(t *testing.T) {
	writeBadModule(t)
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 1 {
		t.Fatalf("want exit 1 on a dirty module, got %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "nopanic:") || !strings.Contains(out, "lib.go:4:") {
		t.Errorf("finding not reported as file:line:col: analyzer: message, got %q", out)
	}
}

func TestRunReportsFindingsJSON(t *testing.T) {
	writeBadModule(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json"}, &stdout, &stderr); code != 1 {
		t.Fatalf("want exit 1, got %d\nstderr: %s", code, stderr.String())
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout.String())
	}
	if len(findings) != 1 || findings[0].Analyzer != "nopanic" || findings[0].Line != 4 {
		t.Errorf("unexpected findings: %+v", findings)
	}
}

func TestRunReportsFindingsGitHub(t *testing.T) {
	writeBadModule(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-github"}, &stdout, &stderr); code != 1 {
		t.Fatalf("want exit 1, got %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	want := "::error file=" + filepath.Join("lib", "lib.go") + ",line=4,col="
	if !strings.HasPrefix(out, want) || !strings.Contains(out, "::nopanic: ") {
		t.Errorf("finding not reported as a workflow command, got %q", out)
	}
}

func TestGitHubEscape(t *testing.T) {
	got := githubEscape("50% of\nlines\r")
	if got != "50%25 of%0Alines%0D" {
		t.Errorf("githubEscape = %q", got)
	}
}

// writeSuppressedModule creates a throwaway module whose one nopanic
// violation carries an allow directive, and chdirs into it.
func writeSuppressedModule(t *testing.T) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmpmod\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	lib := filepath.Join(dir, "lib")
	if err := os.Mkdir(lib, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package lib\n\nfunc Boom() {\n\t//mrlint:allow nopanic test fixture\n\tpanic(\"x\")\n}\n"
	if err := os.WriteFile(filepath.Join(lib, "lib.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Chdir(dir)
}

func TestRunStats(t *testing.T) {
	writeSuppressedModule(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-stats"}, &stdout, &stderr); code != 0 {
		t.Fatalf("suppressed module should be clean, exit %d\nstderr: %s", code, stderr.String())
	}
	var stats struct {
		Findings   map[string]int `json:"findings"`
		Suppressed map[string]int `json:"suppressed"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &stats); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout.String())
	}
	if len(stats.Findings) != 0 || stats.Suppressed["nopanic"] != 1 {
		t.Errorf("unexpected stats: %+v", stats)
	}
}

func TestRunBaseline(t *testing.T) {
	writeSuppressedModule(t)
	writeBaseline := func(name, body string) string {
		t.Helper()
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return name
	}

	var stdout, stderr bytes.Buffer
	ok := writeBaseline("ok.json", `{"suppressed":{"nopanic":1}}`)
	if code := run([]string{"-stats", "-baseline", ok}, &stdout, &stderr); code != 0 {
		t.Fatalf("at-ceiling baseline should pass, exit %d\nstderr: %s", code, stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	grew := writeBaseline("grew.json", `{"suppressed":{}}`)
	if code := run([]string{"-stats", "-baseline", grew}, &stdout, &stderr); code != 1 {
		t.Fatalf("grown suppression count should fail, exit %d", code)
	}
	if !strings.Contains(stderr.String(), "nopanic suppressions grew: 1 > baseline 0") {
		t.Errorf("violation not explained, stderr: %q", stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	slack := writeBaseline("slack.json", `{"suppressed":{"nopanic":5}}`)
	if code := run([]string{"-stats", "-baseline", slack}, &stdout, &stderr); code != 0 {
		t.Fatalf("below-ceiling baseline should pass, exit %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "ratchet") {
		t.Errorf("slack should be nudged, stderr: %q", stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", "missing.json"}, &stdout, &stderr); code != 1 {
		t.Fatalf("missing baseline file should fail, exit %d", code)
	}
}

func TestRunBadPattern(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"/definitely/not/in/module"}, &stdout, &stderr); code != 2 {
		t.Fatalf("want exit 2 for a pattern outside the module, got %d", code)
	}
}
