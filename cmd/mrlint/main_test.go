package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunCleanModule(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d on the real module\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run should print nothing, got %q", stdout.String())
	}
}

func TestRunSinglePackagePattern(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"../../internal/store"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
}

func TestRunJSONCleanIsEmptyArray(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "../../internal/graph"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	var findings []map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) != 0 {
		t.Errorf("expected empty array, got %v", findings)
	}
}

// writeBadModule creates a throwaway module with one nopanic violation and
// chdirs into it.
func writeBadModule(t *testing.T) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmpmod\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	lib := filepath.Join(dir, "lib")
	if err := os.Mkdir(lib, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package lib\n\nfunc Boom() {\n\tpanic(\"x\")\n}\n"
	if err := os.WriteFile(filepath.Join(lib, "lib.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Chdir(dir)
}

func TestRunReportsFindingsText(t *testing.T) {
	writeBadModule(t)
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 1 {
		t.Fatalf("want exit 1 on a dirty module, got %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "nopanic:") || !strings.Contains(out, "lib.go:4:") {
		t.Errorf("finding not reported as file:line:col: analyzer: message, got %q", out)
	}
}

func TestRunReportsFindingsJSON(t *testing.T) {
	writeBadModule(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json"}, &stdout, &stderr); code != 1 {
		t.Fatalf("want exit 1, got %d\nstderr: %s", code, stderr.String())
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout.String())
	}
	if len(findings) != 1 || findings[0].Analyzer != "nopanic" || findings[0].Line != 4 {
		t.Errorf("unexpected findings: %+v", findings)
	}
}

func TestRunBadPattern(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"/definitely/not/in/module"}, &stdout, &stderr); code != 2 {
		t.Fatalf("want exit 2 for a pattern outside the module, got %d", code)
	}
}
