// Command mrsnap builds, publishes and verifies memory-mapped M*(k)
// snapshot files — the disk-resident serving format of internal/mmapstore.
// It is the offline half of the disk-resident pipeline: build the index
// once (optionally refined for a known workload), publish it atomically,
// and let mrserve map it with -index-file for O(1) cold starts.
//
// Usage:
//
//	mrsnap -dataset xmark -scale 0.1 -o snap.mrx -graph-out graph.bin
//	mrsnap -in doc.xml -refine '//a/b,//c/d' -o snap.mrx
//	mrsnap -graph graph.bin -verify snap.mrx      # full structural check
//
// The snapshot is bound to the exact data graph it was built over; keep the
// -graph-out file (compact binary graph format) next to it so serving and
// verification can rebind. Publication is atomic (write-temp + fsync +
// rename): a crash mid-write never leaves a torn file at -o, and a serving
// process mapping the previous generation is undisturbed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mrx"
)

func main() {
	in := flag.String("in", "", "build the graph from this XML file")
	graphIn := flag.String("graph", "", "load the data graph from this binary graph file (mrsnap -graph-out / mrx.WriteGraph)")
	dataset := flag.String("dataset", "xmark", "generated dataset: xmark, nasa or corpus (used when neither -in nor -graph is given)")
	scale := flag.Float64("scale", 0.1, "generated dataset scale (1.0 = paper size)")
	seed := flag.Int64("seed", 1, "generated dataset seed")
	out := flag.String("o", "", "publish the snapshot to this path (atomic replace)")
	graphOut := flag.String("graph-out", "", "also write the data graph here in the compact binary format")
	refine := flag.String("refine", "", "comma-separated path expressions to refine (Support) before freezing")
	maxk := flag.Int("maxk", 0, "resolution cap for refinement (0 = unlimited)")
	compact := flag.Bool("compact", false, "delta-compress extent arenas (smaller file, linear arena decode at open)")
	pace := flag.Duration("pace", 0, "sleep this long before writing each section (widens the write window; testing aid)")
	verify := flag.String("verify", "", "fully verify this existing snapshot against the graph and exit (no writing)")
	flag.Parse()

	g, desc, err := loadGraph(*in, *graphIn, *dataset, *scale, *seed)
	if err != nil {
		fail(err)
	}
	fmt.Printf("mrsnap: %s: %d nodes, %d edges, %d labels\n", desc, g.NumNodes(), g.NumEdges(), g.NumLabels())

	if *verify != "" {
		if *out != "" {
			fail(fmt.Errorf("-verify and -o are mutually exclusive"))
		}
		verifySnapshot(*verify, g)
		return
	}
	if *out == "" {
		fail(fmt.Errorf("no -o target (or -verify) given"))
	}

	ms := mrx.NewMStarOpts(g, mrx.MStarOptions{MaxK: *maxk})
	for _, s := range splitExprs(*refine) {
		e, err := mrx.ParsePath(s)
		if err != nil {
			fail(fmt.Errorf("-refine %q: %w", s, err))
		}
		if e.HasWildcard() || e.RequiredK() == mrx.UnboundedK {
			fail(fmt.Errorf("-refine %q: not a refinable FUP (wildcards and unbounded expressions cannot be supported)", s))
		}
		ms.Support(e)
	}
	fm := ms.Freeze()

	wo := mrx.SnapshotWriteOptions{CompactExtents: *compact}
	if *pace > 0 {
		d := *pace
		wo.OnSection = func(comp, kind int) { time.Sleep(d) }
	}
	start := time.Now()
	if err := mrx.PublishSnapshot(*out, fm, wo); err != nil {
		fail(err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		fail(err)
	}
	fmt.Printf("mrsnap: published %s: %d components, %d bytes in %v\n",
		*out, fm.NumComponents(), st.Size(), time.Since(start).Round(time.Millisecond))

	if *graphOut != "" {
		f, err := os.Create(*graphOut)
		if err != nil {
			fail(err)
		}
		if err := mrx.WriteGraph(f, g); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("mrsnap: wrote graph %s\n", *graphOut)
	}
}

// verifySnapshot opens path in full-verification mode (checksums plus the
// deep structural walk) and prints what it found.
func verifySnapshot(path string, g *mrx.Graph) {
	start := time.Now()
	snap, err := mrx.OpenSnapshot(path, g, mrx.SnapshotOpenOptions{})
	if err != nil {
		fail(err)
	}
	defer snap.Close()
	fm := snap.FrozenMStar()
	fmt.Printf("mrsnap: %s: OK — %d components, %d bytes, verified in %v\n",
		path, fm.NumComponents(), snap.SizeBytes(), time.Since(start).Round(time.Millisecond))
	for i := 0; i < fm.NumComponents(); i++ {
		fmt.Printf("  I%-3d %8d index nodes\n", i, fm.Component(i).NumNodes())
	}
}

// splitExprs splits a comma-separated -refine list, dropping empty parts so
// trailing commas are harmless.
func splitExprs(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// loadGraph builds the data graph from a binary graph file, an XML file, or
// a generated dataset, in that precedence order.
func loadGraph(in, graphIn, dataset string, scale float64, seed int64) (*mrx.Graph, string, error) {
	if graphIn != "" {
		f, err := os.Open(graphIn)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		g, err := mrx.ReadGraph(f)
		if err != nil {
			return nil, "", fmt.Errorf("loading %s: %w", graphIn, err)
		}
		return g, graphIn, nil
	}
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		g, err := mrx.LoadXML(f)
		if err != nil {
			return nil, "", fmt.Errorf("loading %s: %w", in, err)
		}
		return g, in, nil
	}
	desc := fmt.Sprintf("%s scale %g seed %d", dataset, scale, seed)
	switch dataset {
	case "xmark":
		return mrx.XMarkGraph(scale, seed), desc, nil
	case "nasa":
		return mrx.NASAGraph(scale, seed), desc, nil
	case "corpus":
		g, err := mrx.CorpusGraph(scale, seed, 12)
		if err != nil {
			return nil, "", fmt.Errorf("corpus: %w", err)
		}
		return g, desc, nil
	default:
		return nil, "", fmt.Errorf("unknown dataset %q (want xmark, nasa or corpus)", dataset)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "mrsnap: %v\n", err)
	os.Exit(1)
}
