// Benchmarks regenerating every figure of He & Yang (ICDE 2004), §5.
//
// Each BenchmarkFigureNN runs the corresponding experiment end to end and
// reports the headline numbers as custom metrics (the paper's cost metric
// and index sizes), in addition to Go's usual time/allocation metrics.
//
// Scale: benchmarks default to 0.1 × the paper's dataset sizes so the whole
// suite completes quickly; set MRX_BENCH_SCALE=1.0 to run at the paper's
// ~120k-node XMark and ~90k-node NASA sizes (cmd/mrbench does the same).
package mrx_test

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"

	"mrx/internal/experiments"
	"mrx/internal/pathexpr"
)

func benchScale() float64 {
	if s := os.Getenv("MRX_BENCH_SCALE"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.1
}

func benchQueries() int {
	if s := os.Getenv("MRX_BENCH_QUERIES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 500
}

var (
	dsCache   = map[string]experiments.Dataset{}
	wlCache   = map[string][]*pathexpr.Expr{}
	cacheLock sync.Mutex
)

func benchDataset(b *testing.B, name string) experiments.Dataset {
	b.Helper()
	cacheLock.Lock()
	defer cacheLock.Unlock()
	key := fmt.Sprintf("%s@%g", name, benchScale())
	if ds, ok := dsCache[key]; ok {
		return ds
	}
	ds, err := experiments.LoadDataset(name, benchScale(), 1)
	if err != nil {
		b.Fatal(err)
	}
	dsCache[key] = ds
	return ds
}

func benchWorkload(b *testing.B, ds experiments.Dataset, maxQueryLen int) []*pathexpr.Expr {
	b.Helper()
	cacheLock.Lock()
	defer cacheLock.Unlock()
	key := fmt.Sprintf("%s@%g/%d/%d", ds.Name, benchScale(), maxQueryLen, benchQueries())
	if qs, ok := wlCache[key]; ok {
		return qs
	}
	qs := experiments.NewWorkload(ds, benchQueries(), maxQueryLen, 1)
	wlCache[key] = qs
	return qs
}

// benchCostFigure runs a cost-versus-size experiment (figures 10-13, 18-22)
// and reports the M*(k) row as metrics.
func benchCostFigure(b *testing.B, dataset string, maxQueryLen, maxA int) {
	ds := benchDataset(b, dataset)
	queries := benchWorkload(b, ds, maxQueryLen)
	var last experiments.CostVsSizeResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = experiments.RunCostVsSize(ds, queries, maxA, nil)
	}
	b.StopTimer()
	for _, r := range last.Rows {
		switch r.Index {
		case "M*(k)":
			b.ReportMetric(r.AvgCost, "mstar-cost")
			b.ReportMetric(float64(r.Nodes), "mstar-nodes")
			b.ReportMetric(float64(r.Edges), "mstar-edges")
		case "M(k)":
			b.ReportMetric(r.AvgCost, "mk-cost")
			b.ReportMetric(float64(r.Nodes), "mk-nodes")
		case "D(k)-promote":
			b.ReportMetric(r.AvgCost, "dkp-cost")
			b.ReportMetric(float64(r.Nodes), "dkp-nodes")
		}
	}
}

// benchGrowthFigure runs a size-growth experiment (figures 14-17, 23-26)
// and reports final sizes as metrics.
func benchGrowthFigure(b *testing.B, dataset string, maxQueryLen int, edges bool) {
	ds := benchDataset(b, dataset)
	queries := benchWorkload(b, ds, maxQueryLen)
	var last experiments.GrowthResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = experiments.RunGrowth(ds, queries, 50, nil)
	}
	b.StopTimer()
	for name, pts := range last.Series {
		final := pts[len(pts)-1]
		v := final.Nodes
		unit := name + "-nodes"
		if edges {
			v = final.Edges
			unit = name + "-edges"
		}
		b.ReportMetric(float64(v), unit)
	}
}

func BenchmarkFigure08QueryDistributionLen9(b *testing.B) {
	cfg := experiments.Config{Scale: benchScale(), NumQueries: benchQueries(), Seed: 1, GrowthStep: 50}
	for i := 0; i < b.N; i++ {
		if err := experiments.RunFigure(8, cfg, io.Discard, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure09QueryDistributionLen4(b *testing.B) {
	cfg := experiments.Config{Scale: benchScale(), NumQueries: benchQueries(), Seed: 1, GrowthStep: 50}
	for i := 0; i < b.N; i++ {
		if err := experiments.RunFigure(9, cfg, io.Discard, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10CostVsNodesXMarkLen9(b *testing.B) { benchCostFigure(b, "xmark", 9, 7) }
func BenchmarkFigure11CostVsEdgesXMarkLen9(b *testing.B) { benchCostFigure(b, "xmark", 9, 7) }
func BenchmarkFigure12CostVsNodesNASALen9(b *testing.B)  { benchCostFigure(b, "nasa", 9, 7) }
func BenchmarkFigure13CostVsEdgesNASALen9(b *testing.B)  { benchCostFigure(b, "nasa", 9, 7) }

func BenchmarkFigure14NodeGrowthXMarkLen9(b *testing.B) { benchGrowthFigure(b, "xmark", 9, false) }
func BenchmarkFigure15EdgeGrowthXMarkLen9(b *testing.B) { benchGrowthFigure(b, "xmark", 9, true) }
func BenchmarkFigure16NodeGrowthNASALen9(b *testing.B)  { benchGrowthFigure(b, "nasa", 9, false) }
func BenchmarkFigure17EdgeGrowthNASALen9(b *testing.B)  { benchGrowthFigure(b, "nasa", 9, true) }

func BenchmarkFigure18CostVsNodesXMarkLen4(b *testing.B) { benchCostFigure(b, "xmark", 4, 4) }
func BenchmarkFigure19CostVsNodesXMarkLen4Zoom(b *testing.B) {
	// Same experiment as figure 18; the paper's figure 19 replots a subset.
	benchCostFigure(b, "xmark", 4, 4)
}
func BenchmarkFigure20CostVsEdgesXMarkLen4Zoom(b *testing.B) { benchCostFigure(b, "xmark", 4, 4) }
func BenchmarkFigure21CostVsNodesNASALen4(b *testing.B)      { benchCostFigure(b, "nasa", 4, 4) }
func BenchmarkFigure22CostVsEdgesNASALen4(b *testing.B)      { benchCostFigure(b, "nasa", 4, 4) }

func BenchmarkFigure23NodeGrowthXMarkLen4(b *testing.B) { benchGrowthFigure(b, "xmark", 4, false) }
func BenchmarkFigure24EdgeGrowthXMarkLen4(b *testing.B) { benchGrowthFigure(b, "xmark", 4, true) }
func BenchmarkFigure25NodeGrowthNASALen4(b *testing.B)  { benchGrowthFigure(b, "nasa", 4, false) }
func BenchmarkFigure26EdgeGrowthNASALen4(b *testing.B)  { benchGrowthFigure(b, "nasa", 4, true) }

// Ablation benches for the design choices called out in DESIGN.md.

func BenchmarkAblationQueryStrategies(b *testing.B) {
	ds := benchDataset(b, "xmark")
	queries := benchWorkload(b, ds, 9)
	var rows []experiments.StrategyRow
	for i := 0; i < b.N; i++ {
		rows = experiments.RunStrategies(ds, queries, nil)
	}
	for _, r := range rows {
		b.ReportMetric(r.AvgCost, r.Strategy+"-cost")
	}
}

func BenchmarkAblationLiteralRefinement(b *testing.B) {
	ds := benchDataset(b, "nasa")
	queries := benchWorkload(b, ds, 9)
	var rows []experiments.LiteralRow
	for i := 0; i < b.N; i++ {
		rows = experiments.RunLiteralAblation(ds, queries, nil)
	}
	for _, r := range rows {
		// Metric units must be whitespace-free; variants are "strict
		// (default)" and "paper-literal".
		unit := "strict-nodes"
		if strings.Contains(r.Variant, "literal") {
			unit = "literal-nodes"
		}
		b.ReportMetric(float64(r.Nodes), unit)
	}
}

func BenchmarkAblationMStarAccounting(b *testing.B) {
	ds := benchDataset(b, "xmark")
	queries := benchWorkload(b, ds, 9)
	var row experiments.MStarAccountingRow
	for i := 0; i < b.N; i++ {
		row = experiments.RunMStarAccounting(ds, queries, nil)
	}
	b.ReportMetric(float64(row.Nodes), "dedup-nodes")
	b.ReportMetric(float64(row.LogicalNodes), "logical-nodes")
}
