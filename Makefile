GO ?= go

.PHONY: all build vet test race check bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is what CI runs: static analysis, a full build, and the test suite
# under the race detector (the Engine's concurrency tests need it).
check: vet build race

bench:
	$(GO) test -bench=. -benchmem ./...
