GO ?= go

.PHONY: all build vet lint lint-stats test race check bench bench-smoke drift-smoke serve-smoke chaos-smoke chaos-bench mmap-smoke fuzz cover

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs mrlint, the repository's own static-analysis suite
# (internal/analysis): nopanic, atomicdiscipline, snapshotmut, errwrap,
# noleak, plus the interprocedural hotpathalloc, ctxflow and lifecycle
# (DESIGN.md §16). Suppress a finding with //mrlint:allow <analyzer> <reason>.
lint:
	$(GO) run ./cmd/mrlint ./...

# lint-stats prints per-analyzer finding/suppression counts and enforces the
# committed suppression ceiling: if any analyzer's //mrlint:allow count grew
# past lint-suppressions.json, the build fails until that file is raised in
# the same change (putting the reason in front of a reviewer).
lint-stats:
	$(GO) run ./cmd/mrlint -stats -baseline lint-suppressions.json ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is what CI runs: static analysis (vet + mrlint + the suppression
# ceiling), a full build, and the test suite under the race detector (the
# Engine's concurrency tests need it).
check: vet lint lint-stats build race

# bench runs every benchmark with -benchmem and archives the results as
# machine-readable JSON under results/ (cmd/benchjson parses the standard
# `go test -bench` output). BENCHLABEL tags the report, e.g.
# `make bench BENCHLABEL=post-frozen`.
BENCHLABEL ?= dev

bench:
	@mkdir -p results
	$(GO) test -run='^$$' -bench=. -benchmem ./... | tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -label $(BENCHLABEL) \
		> results/BENCH_$$(date +%Y-%m-%d)_$(BENCHLABEL).json

# bench-smoke compiles and runs every benchmark exactly once — a CI
# regression gate against benchmarks that rot (won't build, panic, or
# b.Fatal), without paying for measurement.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# drift-smoke replays the canned drifting workload through the adaptive
# tuner and asserts bounded-epoch convergence in every phase, with every
# answer cross-checked against the reference evaluator and full invariant
# re-verification after each retirement — the CI gate for the auto-tuner.
drift-smoke:
	$(GO) test -run='^TestDriftSmoke$$' -count=1 -v ./internal/difftest/

# serve-smoke boots cmd/mrserve on a free port, replays a short cmd/mrload
# run against it, and asserts a clean -check: non-zero served replies, zero
# errors, and a well-formed JSON report — the CI gate for the network
# serving layer.
serve-smoke:
	$(GO) test -run='^TestServeSmoke$$' -count=1 -v ./internal/clitest/

# chaos-smoke drives the real mrserve and mrload binaries over an impaired
# network: an in-process netem proxy degrades the server-side leg
# (latency+jitter, throttling) while mrload's -impair-* flags degrade the
# client leg, and a deep-query surge overloads the single evaluation slot —
# asserting that wire impairment lands on the client round trip (never on
# the service-side p99 the breaker governs) and that overload is answered
# with fast 429s instead of unbounded queueing. The CI gate for the
# impairment layer (internal/netem).
chaos-smoke:
	$(GO) test -run='^TestChaosSmoke$$' -count=1 -v ./internal/clitest/

# chaos-bench is chaos-smoke with the combined per-level mrload reports
# archived under results/ — the committed record that impaired and slow
# clients are shed or timed out rather than pinning serving slots. It also
# hard-gates on the surge level actually shedding.
chaos-bench:
	@mkdir -p results
	MRX_CHAOS_REPORT=results/BENCH_$$(date +%Y-%m-%d)_chaos.json \
		$(GO) test -run='^TestChaosSmoke$$' -count=1 -v ./internal/clitest/

# mmap-smoke drives the disk-resident serving pipeline end to end with the
# real binaries: mrsnap publishes a refined snapshot (plus its binary
# graph), mrsnap -verify full-checks it, mrserve -index-file serves it in
# both verified and trusted-mmap mode with every mrload answer checked
# against ground truth, and a SIGKILL mid-republish proves the temp+rename
# protocol never exposes a torn snapshot. The CI gate for internal/mmapstore.
mmap-smoke:
	$(GO) test -run='^TestMmap' -count=1 -v ./internal/clitest/

# Native fuzzing smoke: each target runs for FUZZTIME on top of its
# committed seed corpus (testdata/fuzz/<FuzzName>/ in each package, which
# plain `make test` already replays). New crashers are written there too —
# commit them as regression inputs.
FUZZTIME ?= 15s

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/pathexpr/
	$(GO) test -run='^$$' -fuzz=FuzzStoreGraph -fuzztime=$(FUZZTIME) ./internal/store/
	$(GO) test -run='^$$' -fuzz=FuzzStoreIndex -fuzztime=$(FUZZTIME) ./internal/store/
	$(GO) test -run='^$$' -fuzz=FuzzStoreMStar -fuzztime=$(FUZZTIME) ./internal/store/
	$(GO) test -run='^$$' -fuzz=FuzzStoreFrozen -fuzztime=$(FUZZTIME) ./internal/store/
	$(GO) test -run='^$$' -fuzz=FuzzDifferential -fuzztime=$(FUZZTIME) ./internal/difftest/
	$(GO) test -run='^$$' -fuzz=FuzzDirectives -fuzztime=$(FUZZTIME) ./internal/analysis/
	# The checksummed mmap format defeats coverage-keeping minimization (any
	# trim breaks a CRC), so cap the per-input minimize budget or the engine
	# spends its whole fuzztime minimizing instead of fuzzing.
	$(GO) test -run='^$$' -fuzz=FuzzMmapSnapshot -fuzztime=$(FUZZTIME) -fuzzminimizetime=1s ./internal/mmapstore/

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1
