GO ?= go

.PHONY: all build vet lint test race check bench fuzz cover

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs mrlint, the repository's own static-analysis suite
# (internal/analysis): nopanic, atomicdiscipline, snapshotmut, errwrap and
# noleak. Suppress a finding with //mrlint:allow <analyzer> <reason>.
lint:
	$(GO) run ./cmd/mrlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is what CI runs: static analysis (vet + mrlint), a full build, and
# the test suite under the race detector (the Engine's concurrency tests
# need it).
check: vet lint build race

bench:
	$(GO) test -bench=. -benchmem ./...

# Native fuzzing smoke: each target runs for FUZZTIME on top of its
# committed seed corpus (testdata/fuzz/<FuzzName>/ in each package, which
# plain `make test` already replays). New crashers are written there too —
# commit them as regression inputs.
FUZZTIME ?= 15s

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/pathexpr/
	$(GO) test -run='^$$' -fuzz=FuzzStoreGraph -fuzztime=$(FUZZTIME) ./internal/store/
	$(GO) test -run='^$$' -fuzz=FuzzStoreIndex -fuzztime=$(FUZZTIME) ./internal/store/
	$(GO) test -run='^$$' -fuzz=FuzzStoreMStar -fuzztime=$(FUZZTIME) ./internal/store/
	$(GO) test -run='^$$' -fuzz=FuzzDifferential -fuzztime=$(FUZZTIME) ./internal/difftest/

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1
