// Package mrx is a Go implementation of multiresolution structural XML
// indexing, reproducing He & Yang, "Multiresolution Indexing of XML for
// Frequent Queries" (ICDE 2004).
//
// XML documents (or arbitrary labeled directed graphs) are summarized by
// structural indexes that partition data nodes into equivalence classes
// under k-bisimilarity. The package provides the paper's contributions —
// the workload-adaptive M(k)-index and the multiresolution M*(k)-index —
// alongside the baselines they are evaluated against: the 1-index, the
// A(k)-index family, and the D(k)-index in both its construction and
// promotion forms.
//
// A typical session:
//
//	g, _ := mrx.LoadXML(file)                 // data graph with ID/IDREF edges
//	ms := mrx.NewMStar(g)                     // adaptive M*(k)-index
//	q := mrx.MustParsePath("//people/person") // simple path expression
//	res := ms.Query(q)                        // answer + paper-metric cost
//	ms.Support(q)                             // refine so q becomes precise
//
// The internal packages implementing the algorithms are re-exported here by
// type alias, so everything returned by this package is fully usable by
// downstream code.
package mrx

import (
	"io"

	"mrx/internal/graph"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
	"mrx/internal/xmlload"
)

// Graph is a labeled directed data graph: XML elements are nodes, nesting
// yields tree edges and ID/IDREF pairs yield reference edges.
type Graph = graph.Graph

// NodeID identifies a data node; the root is node 0.
type NodeID = graph.NodeID

// LabelID identifies an interned element label.
type LabelID = graph.LabelID

// Builder constructs data graphs programmatically.
type Builder = graph.Builder

// EdgeKind distinguishes tree edges from reference edges.
type EdgeKind = graph.EdgeKind

// Edge kinds.
const (
	TreeEdge = graph.TreeEdge
	RefEdge  = graph.RefEdge
)

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder { return graph.NewBuilder() }

// LoadOptions configures XML parsing; see package xmlload for details.
type LoadOptions = xmlload.Options

// LoadResult carries the parsed graph and reference-resolution statistics.
type LoadResult = xmlload.Result

// LoadXML parses an XML document into a data graph with default options:
// a synthetic "root" node above the document element, "id" attributes
// declaring IDs, and any attribute value matching a declared ID producing a
// reference edge.
func LoadXML(r io.Reader) (*Graph, error) {
	res, err := xmlload.Load(r, nil)
	if err != nil {
		return nil, err
	}
	return res.Graph, nil
}

// LoadXMLBytes is LoadXML over an in-memory document.
func LoadXMLBytes(data []byte) (*Graph, error) {
	res, err := xmlload.LoadBytes(data, nil)
	if err != nil {
		return nil, err
	}
	return res.Graph, nil
}

// LoadXMLDetailed parses with explicit options and returns reference-
// resolution statistics alongside the graph.
func LoadXMLDetailed(r io.Reader, opts *LoadOptions) (*LoadResult, error) {
	return xmlload.Load(r, opts)
}

// PathExpr is a parsed simple path expression: /a/b, //a/b, //a/*/c.
type PathExpr = pathexpr.Expr

// PathStep is one step of a path expression.
type PathStep = pathexpr.Step

// ParsePath parses a simple path expression.
func ParsePath(s string) (*PathExpr, error) { return pathexpr.Parse(s) }

// MustParsePath is ParsePath that panics on error. It is intended for
// package-level query literals whose syntax is fixed at compile time; code
// handling untrusted input should call ParsePath.
func MustParsePath(s string) *PathExpr {
	e, err := pathexpr.Parse(s)
	if err != nil {
		//mrlint:allow nopanic documented escape hatch for compile-time query literals
		panic(err)
	}
	return e
}

// PathFromLabels builds a descendant-anchored expression from labels.
func PathFromLabels(labels []string) *PathExpr { return pathexpr.FromLabels(labels) }

// UnboundedK is returned by PathExpr.RequiredK for expressions no finite
// local similarity can make precise; such expressions are not refinable
// FUPs.
const UnboundedK = pathexpr.Unbounded

// Cost is the paper's query cost: index nodes visited during index
// traversal plus data nodes visited during validation.
type Cost = query.Cost

// Result is the outcome of evaluating an expression over an index.
type Result = query.Result

// DataIndex caches label buckets of a graph for repeated ground-truth
// evaluation.
type DataIndex = query.DataIndex

// NewDataIndex prepares g for ground-truth evaluation.
func NewDataIndex(g *Graph) *DataIndex { return query.NewDataIndex(g) }

// Eval computes the exact answer of e on the data graph (ground truth).
//
// Each call rebuilds the label buckets of g — O(number of nodes) before
// evaluation even starts. For repeated evaluation over the same graph, build
// a DataIndex once with NewDataIndex and call its Eval method (an Engine
// does this internally and shares one DataIndex across all goroutines).
func Eval(g *Graph, e *PathExpr) []NodeID {
	return query.NewDataIndex(g).Eval(e)
}

// ParseBranchingPath parses a branching expression p[q] (for example
// //open_auction[bidder/personref]) into the incoming path p and the
// outgoing predicate expression anchored at p's final step; evaluate the
// pair with QueryIndexBranching or UD.QueryBranching.
func ParseBranchingPath(s string) (in, out *PathExpr, err error) {
	return pathexpr.ParseBranching(s)
}
