package xmlload

import (
	"reflect"
	"strings"
	"testing"

	"mrx/internal/graph"
	"mrx/internal/query"
)

const tinyAuction = `<?xml version="1.0"?>
<site>
  <regions>
    <africa><item id="item0"><name/></item></africa>
    <asia><item id="item1"><name/></item></asia>
  </regions>
  <people>
    <person id="person0"><name/><emailaddress/></person>
    <person id="person1"><name/></person>
  </people>
  <open_auctions>
    <open_auction id="auction0">
      <seller person="person0"/>
      <bidder><personref person="person1"/></bidder>
      <itemref item="item1"/>
    </open_auction>
  </open_auctions>
</site>`

func TestLoadBasics(t *testing.T) {
	res, err := Load(strings.NewReader(tinyAuction), nil)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	if res.Elements != 20 {
		t.Errorf("elements = %d, want 20", res.Elements)
	}
	if res.Refs != 3 {
		t.Errorf("refs = %d, want 3", res.Refs)
	}
	if res.UnresolvedRefs != 0 {
		t.Errorf("unresolved = %d", res.UnresolvedRefs)
	}
	if g.NumNodes() != res.Elements+1 { // +1 synthetic root
		t.Errorf("nodes = %d", g.NumNodes())
	}
	if g.NodeLabelName(g.Root()) != "root" {
		t.Errorf("root label %q", g.NodeLabelName(g.Root()))
	}

	d := query.NewDataIndex(g)
	// The document element hangs under the synthetic root.
	if got := d.Eval(mustParse("/site")); len(got) != 1 {
		t.Errorf("/site = %v", got)
	}
	// Reference edges are traversable: seller -> person.
	sellers := d.Eval(mustParse("//seller/person"))
	if len(sellers) != 1 {
		t.Fatalf("//seller/person = %v", sellers)
	}
	if g.NodeLabelName(sellers[0]) != "person" {
		t.Error("seller ref resolved to wrong node")
	}
	// itemref item="item1" points at the asia item.
	items := d.Eval(mustParse("//itemref/item"))
	asiaItems := d.Eval(mustParse("//asia/item"))
	if !reflect.DeepEqual(items, asiaItems) {
		t.Errorf("itemref item %v != asia item %v", items, asiaItems)
	}
}

func TestLoadCustomOptions(t *testing.T) {
	doc := `<r><a key="k1"/><b data-ref="k1" other="zzz"/></r>`
	res, err := Load(strings.NewReader(doc), &Options{RootLabel: "top", IDAttr: "key"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NodeLabelName(res.Graph.Root()) != "top" {
		t.Error("custom root label ignored")
	}
	if res.Refs != 1 || res.UnresolvedRefs != 1 {
		t.Errorf("refs=%d unresolved=%d", res.Refs, res.UnresolvedRefs)
	}
}

func TestLoadIncludeAttributes(t *testing.T) {
	doc := `<r><a color="red"/></r>`
	res, err := Load(strings.NewReader(doc), &Options{IncludeAttributes: true})
	if err != nil {
		t.Fatal(err)
	}
	l, ok := res.Graph.LabelIDOf("@color")
	if !ok {
		t.Fatal("attribute node missing")
	}
	if nodes := res.Graph.NodesWithLabel(l); len(nodes) != 1 {
		t.Fatalf("attr nodes = %v", nodes)
	}
}

func TestLoadSelfReferenceIgnored(t *testing.T) {
	doc := `<r><a id="x" self="x"/></r>`
	res, err := Load(strings.NewReader(doc), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Refs != 0 {
		t.Errorf("self reference should not create an edge, refs=%d", res.Refs)
	}
}

func TestLoadErrors(t *testing.T) {
	for _, doc := range []string{"", "<a><b></a></b>", "not xml at all <"} {
		if _, err := Load(strings.NewReader(doc), nil); err == nil {
			t.Errorf("Load(%q) should fail", doc)
		}
	}
}

func TestLoadNamespacesSkipped(t *testing.T) {
	doc := `<r xmlns:x="http://example.com"><x:a id="1"/><b r="1"/></r>`
	res, err := Load(strings.NewReader(doc), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Refs != 1 {
		t.Errorf("refs = %d", res.Refs)
	}
	if _, ok := res.Graph.LabelIDOf("a"); !ok {
		t.Error("namespaced element lost its local name")
	}
}

func TestLoadBytesMatchesLoad(t *testing.T) {
	r1, err := LoadBytes([]byte(tinyAuction), nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Load(strings.NewReader(tinyAuction), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Graph.NumNodes() != r2.Graph.NumNodes() || r1.Refs != r2.Refs {
		t.Error("LoadBytes differs from Load")
	}
	var _ graph.NodeID // document intent of import
}
