// Package xmlload parses XML documents into the labeled directed data
// graphs used by the structural indexes.
//
// Each element becomes a node labeled with the element name; element nesting
// becomes tree edges. A synthetic root node (label "root" by default) is
// added above the document element, matching the graphs in the paper
// (Figure 1 places a root above site). ID/IDREF references become reference
// edges: any attribute named by Options.IDAttr registers its element under
// the attribute value, and any other attribute whose value matches a
// registered ID yields a reference edge from the referring element to the
// identified element. This convention resolves XMark-style references
// (person="person123", item="item5") without requiring a DTD.
package xmlload

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"mrx/internal/graph"
)

// Options configures parsing.
type Options struct {
	// RootLabel is the label of the synthetic root node. Default "root".
	RootLabel string
	// IDAttr is the attribute name that declares element IDs. Default "id".
	IDAttr string
	// IncludeAttributes adds a child node labeled "@name" for every
	// attribute that is neither an ID nor a resolved reference.
	IncludeAttributes bool
}

func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.RootLabel == "" {
		out.RootLabel = "root"
	}
	if out.IDAttr == "" {
		out.IDAttr = "id"
	}
	return out
}

// Result is a parsed document.
type Result struct {
	Graph *graph.Graph
	// Elements is the number of XML elements parsed (excluding the
	// synthetic root and attribute nodes).
	Elements int
	// Refs is the number of reference edges created.
	Refs int
	// UnresolvedRefs counts attribute values that looked like references
	// (matched no ID) — they produce no edge.
	UnresolvedRefs int
}

type pendingRef struct {
	from  graph.NodeID
	value string
}

// Load parses the XML document from r.
func Load(r io.Reader, opts *Options) (*Result, error) {
	o := opts.withDefaults()
	dec := xml.NewDecoder(r)
	b := graph.NewBuilder()
	root := b.AddNode(o.RootLabel)

	ids := make(map[string]graph.NodeID)
	var pending []pendingRef
	stack := []graph.NodeID{root}
	res := &Result{}

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlload: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			node := b.AddNode(t.Name.Local)
			res.Elements++
			b.AddEdge(stack[len(stack)-1], node, graph.TreeEdge)
			stack = append(stack, node)
			for _, a := range t.Attr {
				name := a.Name.Local
				switch {
				case name == o.IDAttr:
					ids[a.Value] = node
				case strings.HasPrefix(name, "xmlns"):
					// namespace declarations are not data
				default:
					pending = append(pending, pendingRef{from: node, value: a.Value})
					if o.IncludeAttributes {
						an := b.AddNode("@" + name)
						b.AddEdge(node, an, graph.TreeEdge)
					}
				}
			}
		case xml.EndElement:
			if len(stack) <= 1 {
				return nil, fmt.Errorf("xmlload: unbalanced end element %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		}
	}
	if len(stack) != 1 {
		return nil, fmt.Errorf("xmlload: %d unclosed elements", len(stack)-1)
	}
	if res.Elements == 0 {
		return nil, fmt.Errorf("xmlload: no elements in document")
	}
	for _, p := range pending {
		if to, ok := ids[p.value]; ok {
			if to != p.from {
				b.AddEdge(p.from, to, graph.RefEdge)
				res.Refs++
			}
		} else {
			res.UnresolvedRefs++
		}
	}
	g, err := b.Freeze()
	if err != nil {
		return nil, fmt.Errorf("xmlload: %w", err)
	}
	res.Graph = g
	return res, nil
}

// LoadBytes parses an in-memory XML document.
func LoadBytes(data []byte, opts *Options) (*Result, error) {
	return Load(bytes.NewReader(data), opts)
}
