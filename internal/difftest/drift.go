package difftest

import (
	"fmt"
	"math/rand"
	"testing"

	"mrx/internal/adapt"
	"mrx/internal/core"
	"mrx/internal/engine"
	"mrx/internal/graph"
	"mrx/internal/gtest"
	"mrx/internal/pathexpr"
)

// DriftOptions configures one drifting-workload differential case: an
// auto-tuned engine serves a workload whose hot set rotates between phases,
// and every answer along the way is cross-checked against the reference
// evaluator while the tuner promotes and retires FUPs underneath.
type DriftOptions struct {
	// Seed drives the graph (Seed), workload (Seed+1), and background
	// traffic schedule (Seed+2).
	Seed     int64
	Graph    gtest.Options
	Workload gtest.WorkloadOptions
	// Phases is how many times the hot set rotates (default 3); HotSize is
	// how many supportable expressions are hot per phase (default 2).
	Phases  int
	HotSize int
	// EpochsPerPhase is the tuner-epoch budget within which each phase's hot
	// set must converge to precise answers (default 6).
	EpochsPerPhase int
	// QueriesPerEpoch is how many times each hot expression is served per
	// epoch (default 4); one background query from the full workload rides
	// along per hot burst so the tracker sees realistic noise.
	QueriesPerEpoch int
	// CheckBisim extends the post-step invariant checks with the expensive
	// P1 verification; keep graphs small when set.
	CheckBisim bool
}

func (o *DriftOptions) defaults() {
	if o.Phases <= 0 {
		o.Phases = 3
	}
	if o.HotSize <= 0 {
		o.HotSize = 2
	}
	if o.EpochsPerPhase <= 0 {
		o.EpochsPerPhase = 6
	}
	if o.QueriesPerEpoch <= 0 {
		o.QueriesPerEpoch = 4
	}
}

// DriftReport summarizes a drift run for convergence assertions.
type DriftReport struct {
	// ConvergedAt[p] is the epoch (within phase p, 0-based) at which every
	// hot supportable expression of that phase was answered precisely.
	ConvergedAt []int
	// Promotions and Retirements are the engine counters at the end.
	Promotions, Retirements uint64
	// Generations is the number of snapshots published over the run.
	Generations uint64
}

// RandomDriftCase derives a randomized DriftOptions from a seed, sized for
// test-time cross-checking.
func RandomDriftCase(seed int64, minNodes, maxNodes int, checkBisim bool) DriftOptions {
	base := RandomCase(seed, minNodes, maxNodes, checkBisim)
	w := base.Workload
	w.Size = 8 + int(seed%3)
	return DriftOptions{
		Seed:       seed,
		Graph:      base.Graph,
		Workload:   w,
		CheckBisim: checkBisim,
	}
}

// RunDriftCase replays a drifting workload through an auto-tuned engine with
// a manually stepped tuner, failing tb on any divergence from SlowEval, any
// violated structural invariant after a tuner step, any mutation of a
// published snapshot, or a phase that does not converge within its epoch
// budget. The tuner's epoch stepping is fully deterministic (Interval 0).
func RunDriftCase(tb testing.TB, o DriftOptions) DriftReport {
	tb.Helper()
	o.defaults()
	g := gtest.New(o.Seed, o.Graph)
	exprs := parseAll(tb, gtest.RandomWorkload(o.Seed+1, g, o.Workload))
	fups := Supportable(exprs)
	if len(fups) == 0 {
		tb.Fatalf("seed %d: workload has no supportable expressions", o.Seed)
	}

	// Aggressive-but-damped tuning so phases convert and retire within a
	// handful of epochs; Interval 0 keeps stepping in this goroutine.
	en, err := engine.New(g, engine.Options{Parallelism: 2, AutoTune: &adapt.Config{
		TopK:         16,
		HotThreshold: 3,
		PromoteAfter: 2,
		DemoteAfter:  2,
		Cooldown:     1,
	}})
	if err != nil {
		tb.Fatalf("seed %d: engine.New: %v", o.Seed, err)
	}
	defer en.Close()

	oracle := make(map[string][]graph.NodeID)
	truth := func(e *pathexpr.Expr) []graph.NodeID {
		key := pathexpr.Canonical(e)
		if _, ok := oracle[key]; !ok {
			oracle[key] = SlowEval(g, e)
		}
		return oracle[key]
	}
	serve := func(e *pathexpr.Expr) bool {
		res := en.Query(e)
		if err := sortedUnique(res.Answer); err != nil {
			tb.Fatalf("seed %d: drift: %s: %v", o.Seed, e, err)
		}
		if !equalIDs(res.Answer, truth(e)) {
			tb.Fatalf("seed %d: drift: %s: answer %v, reference %v",
				o.Seed, e, res.Answer, truth(e))
		}
		return res.Precise
	}

	// Track every published generation: snapshots are immutable by contract,
	// so their fingerprints must never change — including across the
	// rebuild-from-scratch path Retire takes.
	type published struct {
		gen uint64
		ms  *core.MStar
		fp  uint64
	}
	var history []published
	seen := map[uint64]bool{}
	fingerprintCurrent := func() {
		gen := en.Generation()
		if !seen[gen] {
			seen[gen] = true
			ms := en.Snapshot()
			history = append(history, published{gen, ms, Fingerprint(ms)})
		}
	}
	fingerprintCurrent()

	rng := rand.New(rand.NewSource(o.Seed + 2))
	report := DriftReport{ConvergedAt: make([]int, o.Phases)}
	lastRetires := uint64(0)

	for phase := 0; phase < o.Phases; phase++ {
		hot := make([]*pathexpr.Expr, 0, o.HotSize)
		for i := 0; i < o.HotSize; i++ {
			hot = append(hot, fups[(phase*o.HotSize+i)%len(fups)])
		}
		report.ConvergedAt[phase] = -1
		for epoch := 0; epoch < o.EpochsPerPhase; epoch++ {
			for q := 0; q < o.QueriesPerEpoch; q++ {
				for _, e := range hot {
					serve(e)
				}
				// Background noise from the full workload, wildcards and all.
				serve(exprs[rng.Intn(len(exprs))])
			}
			en.Tuner().Step()
			fingerprintCurrent()

			// Full invariant re-verification after every step that retired
			// (the rebuild path) — and cheaply after every step regardless.
			st := en.Stats()
			checkBisim := o.CheckBisim && st.Retirements > lastRetires
			lastRetires = st.Retirements
			if err := en.Snapshot().Validate(checkBisim); err != nil {
				tb.Fatalf("seed %d: drift phase %d epoch %d: invariants: %v",
					o.Seed, phase, epoch, err)
			}
			if err := en.FrozenSnapshot().CheckAgainst(en.Snapshot()); err != nil {
				tb.Fatalf("seed %d: drift phase %d epoch %d: frozen view: %v",
					o.Seed, phase, epoch, err)
			}

			if report.ConvergedAt[phase] < 0 {
				precise := true
				for _, e := range hot {
					if !serve(e) {
						precise = false
					}
				}
				if precise {
					report.ConvergedAt[phase] = epoch
				}
			}
		}
		if report.ConvergedAt[phase] < 0 {
			tb.Fatalf("seed %d: drift phase %d: hot set %v not precise within %d epochs (autotune: %+v)",
				o.Seed, phase, hot, o.EpochsPerPhase, en.Stats().AutoTune)
		}
	}

	// Published snapshots stayed immutable throughout.
	for _, p := range history {
		if Fingerprint(p.ms) != p.fp {
			tb.Fatalf("seed %d: drift: snapshot generation %d mutated after publication",
				o.Seed, p.gen)
		}
	}

	st := en.Stats()
	report.Promotions = st.AutoTune.Promotions
	report.Retirements = st.Retirements
	report.Generations = st.Generation
	return report
}

// RunDrift executes cfg.Cases randomized drifting-workload cases as parallel
// subtests and asserts overall tuner liveness: across all cases the tuner
// must both promote and (once hot sets rotate) retire.
func RunDrift(t *testing.T, cfg Config) {
	type outcome struct {
		promotions, retirements uint64
	}
	results := make([]outcome, cfg.Cases)
	t.Run("cases", func(t *testing.T) {
		for i := 0; i < cfg.Cases; i++ {
			i := i
			o := RandomDriftCase(cfg.Seed+int64(i), cfg.MinNodes, cfg.MaxNodes, cfg.CheckBisim)
			t.Run(fmt.Sprintf("drift%03d_%s", i, o.Graph.Shape), func(t *testing.T) {
				t.Parallel()
				rep := RunDriftCase(t, o)
				results[i] = outcome{rep.Promotions, rep.Retirements}
			})
		}
	})
	if t.Failed() {
		return
	}
	var promotions, retirements uint64
	for _, r := range results {
		promotions += r.promotions
		retirements += r.retirements
	}
	if promotions == 0 {
		t.Error("no drift case ever promoted a hot expression")
	}
	if retirements == 0 {
		t.Error("no drift case ever retired a cooled-off FUP")
	}
}
