package difftest

import (
	"testing"

	"mrx/internal/gtest"
)

// FuzzDifferential lets the fuzzer drive the case generator: the seed picks
// the base case and the knobs perturb graph shape and workload composition,
// steering toward corners the fixed-seed sweep in TestDifferentialAll
// samples thinly. Any divergence between a serving path and the reference
// evaluator, or any violated invariant after a refinement step, fails.
//
// Parameters are plain integers so corpus entries stay trivial to author
// and to read back when a failure reproduces.
func FuzzDifferential(f *testing.F) {
	f.Add(int64(1), int64(0))
	f.Add(int64(7), int64(5))      // tree shape, skewed labels
	f.Add(int64(42), int64(2))     // DAG shape
	f.Add(int64(1000), int64(127)) // everything biased at once
	f.Fuzz(func(t *testing.T, seed, knobs int64) {
		o := RandomCase(seed, 6, 30, true)
		// Small graphs and one query per expression keep each exec cheap;
		// the fuzzer's strength is breadth, not per-case depth.
		o.QueriesPerExpr = 1
		o.Workload.Size = 5
		switch knobs & 3 {
		case 1:
			o.Graph.Shape, o.Graph.RefProb = gtest.Tree, 0
		case 2:
			o.Graph.Shape = gtest.DAG
		}
		if knobs&4 != 0 {
			o.Graph.Skew = 2.5
		}
		if knobs&8 != 0 {
			o.Graph.Labels = 2 // heavy label collisions
		}
		if knobs&16 != 0 {
			o.Workload.Adversarial = 0.8
		}
		if knobs&32 != 0 {
			o.Workload.Wildcard, o.Workload.DescAxis = 0.5, 0.4
		}
		if knobs&64 != 0 {
			o.Graph.RefProb = 0.6 // denser cross-references than RandomCase emits
		}
		RunCase(t, o)
	})
}
