package difftest

import (
	"testing"

	"mrx/internal/core"
	"mrx/internal/graph"
	"mrx/internal/gtest"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

func newRefinedMStar(g *graph.Graph, fup string) *core.MStar {
	ms := core.NewMStar(g)
	ms.Support(mustParse(fup))
	return ms
}

// TestDifferentialAll is the acceptance run: ≥50 randomized (graph,
// workload, refinement-schedule) cases, each cross-checking every serving
// path — 1-index, A(k), D(k) construct + promote, UD(k,l), M(k), M*(k)
// under every strategy plus a MaxK cap, and the concurrent engine — against
// the slow reference evaluator, with full invariant checks (including P1
// k-bisimilarity) after every refinement step.
func TestDifferentialAll(t *testing.T) {
	cases := 56
	if testing.Short() {
		cases = 12
	}
	Run(t, Config{Cases: cases, Seed: 1, MinNodes: 25, MaxNodes: 80, CheckBisim: true})
}

// TestDifferentialDrift is the adaptive-tuning acceptance run: randomized
// drifting workloads replayed through an auto-tuned engine with a manually
// stepped tuner. Every answer is cross-checked against SlowEval, structural
// invariants are re-verified after every tuner step (with full P1
// k-bisimilarity after every retirement), and each phase's hot set must
// converge to precise answers within a bounded number of epochs.
func TestDifferentialDrift(t *testing.T) {
	cases := 12
	if testing.Short() {
		cases = 4
	}
	RunDrift(t, Config{Cases: cases, Seed: 7, MinNodes: 25, MaxNodes: 70, CheckBisim: true})
}

// TestDriftSmoke replays one small canned drifting workload and asserts
// bounded-epoch convergence in every phase — the CI smoke gate for the
// adaptive tuner (make drift-smoke).
func TestDriftSmoke(t *testing.T) {
	rep := RunDriftCase(t, RandomDriftCase(42, 30, 50, true))
	for phase, epoch := range rep.ConvergedAt {
		if epoch < 0 || epoch >= 6 {
			t.Fatalf("phase %d converged at epoch %d, want within [0,6)", phase, epoch)
		}
	}
	if rep.Promotions == 0 {
		t.Fatal("smoke drift never promoted")
	}
}

// A couple of hand-picked shapes the random generator hits rarely: a
// single-node graph, a root with no matching children, and a pure cycle.
func TestDifferentialDegenerate(t *testing.T) {
	o := RandomCase(99, 2, 2, true)
	RunCase(t, o)

	o = RandomCase(100, 3, 3, true)
	o.Graph.RefProb = 1
	RunCase(t, o)
}

// The reference evaluator must agree with the production ground-truth
// evaluator (query.DataIndex) on every expression class, including ones the
// random workload generates rarely.
func TestSlowEvalMatchesDataIndex(t *testing.T) {
	exprs := []string{
		"//root", "/l0", "//l0", "//l0/l1", "/l0/l1/l2", "//*", "/*",
		"//l0/*/l1", "//l0//l1", "/l0//l2", "//*//l1", "//l1/l1/l1",
		"//zz", "/zz/l0", "//l0/zz",
	}
	for seed := int64(0); seed < 25; seed++ {
		o := RandomCase(seed, 20, 120, false)
		g := gtest.New(seed, o.Graph)
		di := query.NewDataIndex(g)
		all := append([]string(nil), exprs...)
		all = append(all, gtest.RandomWorkload(seed, g, gtest.WorkloadOptions{
			Size: 15, MaxLen: 5, Adversarial: 0.3, Rooted: 0.3, Wildcard: 0.2, DescAxis: 0.2,
		})...)
		for _, s := range all {
			e, err := pathexpr.Parse(s)
			if err != nil {
				t.Fatalf("%q: %v", s, err)
			}
			slow := SlowEval(g, e)
			fast := di.Eval(e)
			if !equalIDs(slow, fast) {
				t.Fatalf("seed %d: %s: SlowEval %v, DataIndex.Eval %v", seed, e, slow, fast)
			}
		}
	}
}

// Hand-checked fixture: SlowEval on a graph small enough to verify by eye,
// so the oracle itself is anchored to something other than the code under
// test.
func TestSlowEvalFixture(t *testing.T) {
	// root -> a(1) -> b(2) -> c(3)
	//      -> b(4) -> c(5)
	//      a(1) -ref-> c(5)
	b := graph.NewBuilder()
	b.AddNode("root")
	b.AddNode("a")
	b.AddNode("b")
	b.AddNode("c")
	b.AddNode("b")
	b.AddNode("c")
	b.AddEdge(0, 1, graph.TreeEdge)
	b.AddEdge(1, 2, graph.TreeEdge)
	b.AddEdge(2, 3, graph.TreeEdge)
	b.AddEdge(0, 4, graph.TreeEdge)
	b.AddEdge(4, 5, graph.TreeEdge)
	b.AddEdge(1, 5, graph.RefEdge)
	g := mustFreeze(b)

	for _, tc := range []struct {
		expr string
		want []graph.NodeID
	}{
		{"//a/b", []graph.NodeID{2}},
		{"//b/c", []graph.NodeID{3, 5}},
		{"/a/b/c", []graph.NodeID{3}},
		{"//a/c", []graph.NodeID{5}}, // via the reference edge
		{"/b", []graph.NodeID{4}},
		{"//a//c", []graph.NodeID{3, 5}},
		{"//root//c", []graph.NodeID{3, 5}},
		{"/c", nil},
		{"//x", nil},
		{"//*/c", []graph.NodeID{3, 5}},
	} {
		got := SlowEval(g, mustParse(tc.expr))
		if !equalIDs(got, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.expr, got, tc.want)
		}
	}
}

// Fingerprint must be sensitive to refinement (the immutability check
// depends on it) and stable across no-ops.
func TestFingerprint(t *testing.T) {
	g := gtest.Random(5, 60, 4, 0.2)
	ms := newRefinedMStar(g, "//l0/l1")
	fp1 := Fingerprint(ms)
	if fp2 := Fingerprint(ms); fp2 != fp1 {
		t.Fatal("fingerprint not deterministic")
	}
	ms2 := ms.Clone()
	if Fingerprint(ms2) != fp1 {
		t.Fatal("clone changed fingerprint")
	}
	ms2.Support(mustParse("//l1/l2/l3"))
	if Fingerprint(ms2) == fp1 && ms2.NumComponents() != ms.NumComponents() {
		t.Fatal("refinement did not change fingerprint")
	}
	if Fingerprint(ms) != fp1 {
		t.Fatal("refining a clone mutated the original")
	}
}
