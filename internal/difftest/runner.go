package difftest

import (
	"fmt"
	"math/rand"
	"testing"

	"mrx/internal/graph"
	"mrx/internal/gtest"
	"mrx/internal/pathexpr"
)

// CaseOptions fully determines one differential case: a random graph, a
// random workload, and a randomized schedule interleaving queries with
// refinement steps across every serving path.
type CaseOptions struct {
	// Seed drives the graph (Seed), workload (Seed+1), and schedule
	// (Seed+2) generators.
	Seed     int64
	Graph    gtest.Options
	Workload gtest.WorkloadOptions
	Paths    PathsOptions
	// QueriesPerExpr is how many times each workload expression is queried
	// across the schedule (min 1; refinement steps are shuffled in
	// between, so repeats observe different index states).
	QueriesPerExpr int
	// CheckBisim extends the invariant checks run after every refinement
	// step with the expensive P1 verification (extents k-bisimilar).
	CheckBisim bool
}

// RandomCase derives a randomized CaseOptions from a seed: graph shape
// (tree / DAG / cyclic), size, label count and skew, reference density, and
// workload composition all vary with the seed. Node count is clamped to
// [minNodes, maxNodes].
func RandomCase(seed int64, minNodes, maxNodes int, checkBisim bool) CaseOptions {
	if minNodes < 2 {
		minNodes = 2
	}
	if maxNodes < minNodes {
		maxNodes = minNodes
	}
	rng := rand.New(rand.NewSource(seed))
	shapes := []gtest.Shape{gtest.Cyclic, gtest.Tree, gtest.DAG}
	o := CaseOptions{
		Seed: seed,
		Graph: gtest.Options{
			Nodes:       minNodes + rng.Intn(maxNodes-minNodes+1),
			Labels:      2 + rng.Intn(5),
			RefProb:     rng.Float64() * 0.35,
			Shape:       shapes[rng.Intn(len(shapes))],
			ShallowBias: rng.Intn(3) == 0,
		},
		Workload: gtest.WorkloadOptions{
			Size:        6 + rng.Intn(4),
			MaxLen:      1 + rng.Intn(4),
			Adversarial: 0.25,
			Rooted:      0.25,
			Wildcard:    0.15,
			DescAxis:    0.1,
		},
		QueriesPerExpr: 2,
		CheckBisim:     checkBisim,
	}
	if rng.Intn(2) == 0 {
		o.Graph.Skew = 1.5
	}
	return o
}

// op is one schedule entry: query workload expression expr on every path,
// or refine every adaptive path for it.
type op struct {
	support bool
	expr    int
}

// RunCase builds every serving path over the case's graph and executes its
// randomized schedule, failing tb on any divergence from the reference
// evaluator or any violated structural invariant.
func RunCase(tb testing.TB, o CaseOptions) {
	tb.Helper()
	g := gtest.New(o.Seed, o.Graph)
	exprs := parseAll(tb, gtest.RandomWorkload(o.Seed+1, g, o.Workload))
	paths, err := BuildPaths(g, exprs, o.Paths)
	if err != nil {
		tb.Fatalf("seed %d: %v", o.Seed, err)
	}

	oracle := make(map[string][]graph.NodeID)
	truth := func(e *pathexpr.Expr) []graph.NodeID {
		key := pathexpr.Canonical(e)
		if _, ok := oracle[key]; !ok {
			oracle[key] = SlowEval(g, e)
		}
		return oracle[key]
	}
	queryAll := func(e *pathexpr.Expr) {
		want := truth(e)
		for _, p := range paths {
			res := p.Querier.Query(e)
			if err := sortedUnique(res.Answer); err != nil {
				tb.Fatalf("seed %d: %s: %s: %v", o.Seed, p.Name, e, err)
			}
			if !equalIDs(res.Answer, want) {
				tb.Fatalf("seed %d: %s: %s: answer %v, reference %v",
					o.Seed, p.Name, e, res.Answer, want)
			}
		}
	}

	supportable := make(map[int]bool)
	for i, e := range exprs {
		supportable[i] = !e.HasWildcard() && e.RequiredK() != pathexpr.Unbounded
	}

	qn := o.QueriesPerExpr
	if qn < 1 {
		qn = 1
	}
	var ops []op
	for i := range exprs {
		for q := 0; q < qn; q++ {
			ops = append(ops, op{expr: i})
		}
		if supportable[i] {
			ops = append(ops, op{support: true, expr: i})
		}
	}
	rng := rand.New(rand.NewSource(o.Seed + 2))
	rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })

	for _, step := range ops {
		e := exprs[step.expr]
		if !step.support {
			queryAll(e)
			continue
		}
		for _, p := range paths {
			if p.Support == nil {
				continue
			}
			p.Support(e)
			if p.Check != nil {
				if err := p.Check(o.CheckBisim); err != nil {
					tb.Fatalf("seed %d: %s: invariants after Support(%s): %v",
						o.Seed, p.Name, e, err)
				}
			}
			// Refinement must preserve the answer it just made precise.
			res := p.Querier.Query(e)
			if !equalIDs(res.Answer, truth(e)) {
				tb.Fatalf("seed %d: %s: answer changed by Support(%s): %v, reference %v",
					o.Seed, p.Name, e, res.Answer, truth(e))
			}
		}
	}
	for _, p := range paths {
		if p.Finish != nil {
			if err := p.Finish(); err != nil {
				tb.Fatalf("seed %d: %s: %v", o.Seed, p.Name, err)
			}
		}
	}
}

// Run executes cfg.Cases randomized differential cases as subtests.
type Config struct {
	Cases              int
	Seed               int64
	MinNodes, MaxNodes int
	CheckBisim         bool
}

// Run derives one RandomCase per index and runs them as parallel subtests.
func Run(t *testing.T, cfg Config) {
	for i := 0; i < cfg.Cases; i++ {
		o := RandomCase(cfg.Seed+int64(i), cfg.MinNodes, cfg.MaxNodes, cfg.CheckBisim)
		t.Run(fmt.Sprintf("case%03d_%s", i, o.Graph.Shape), func(t *testing.T) {
			t.Parallel()
			RunCase(t, o)
		})
	}
}

func parseAll(tb testing.TB, ws []string) []*pathexpr.Expr {
	tb.Helper()
	out := make([]*pathexpr.Expr, len(ws))
	for i, s := range ws {
		e, err := pathexpr.Parse(s)
		if err != nil {
			tb.Fatalf("workload generated unparseable expression %q: %v", s, err)
		}
		out[i] = e
	}
	return out
}

func sortedUnique(ids []graph.NodeID) error {
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			return fmt.Errorf("answer not sorted/unique at %d: %v", i, ids)
		}
	}
	return nil
}

func equalIDs(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
