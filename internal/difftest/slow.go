// Package difftest is the repository's differential correctness oracle: it
// evaluates every query twice — once through a serving path under test
// (structural index, M*(k) strategy, or the concurrent engine) and once
// through a slow, obviously-correct reference evaluator over the raw data
// graph — and fails on any disagreement. Layered on randomized graphs,
// workloads, and interleaved refinement schedules (package gtest), this
// turns the paper's correctness claims (Theorems 1–3: every serving path
// returns the exact answer of any simple path expression after validation)
// into an always-on property test; native fuzz targets extend the same
// check to fuzz-chosen inputs.
//
// Invariant checkers run after every refinement step: component extents
// must partition the node set, local similarities must stay within declared
// bounds, M*(k) supernode/subnode links must stay consistent, and published
// engine snapshots must never mutate. See DESIGN.md §"Differential oracle".
package difftest

import (
	"mrx/internal/graph"
	"mrx/internal/pathexpr"
)

// SlowEval computes the exact target set of e on g by direct dynamic
// programming on the definition of a path-expression instance, in the
// spirit of partition.SlowKBisimilar: an independent reference
// implementation that shares no traversal machinery with the production
// evaluators (query.DataIndex, query.Validator, or any index).
//
// match[i][v] holds iff some node path p0…pi ends at v with every pj's
// label matching step j (p0 anchored at the root's children for rooted
// expressions). Plain steps extend instances by one parent edge; descendant
// steps (a//b) by the downward reachability closure of the previous
// frontier. The result is sorted and duplicate-free by construction.
func SlowEval(g *graph.Graph, e *pathexpr.Expr) []graph.NodeID {
	n := g.NumNodes()
	cur := make([]bool, n)
	if e.Rooted {
		for _, c := range g.Children(g.Root()) {
			if e.Steps[0].Matches(g.NodeLabelName(c)) {
				cur[c] = true
			}
		}
	} else {
		for v := 0; v < n; v++ {
			if e.Steps[0].Matches(g.NodeLabelName(graph.NodeID(v))) {
				cur[v] = true
			}
		}
	}
	for i := 1; i < len(e.Steps); i++ {
		step := e.Steps[i]
		var reach []bool
		if step.Descendant {
			reach = downwardClosure(g, cur)
		}
		next := make([]bool, n)
		for v := 0; v < n; v++ {
			id := graph.NodeID(v)
			if !step.Matches(g.NodeLabelName(id)) {
				continue
			}
			if step.Descendant {
				next[v] = reach[v]
				continue
			}
			for _, p := range g.Parents(id) {
				if cur[p] {
					next[v] = true
					break
				}
			}
		}
		cur = next
	}
	var out []graph.NodeID
	for v := 0; v < n; v++ {
		if cur[v] {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// downwardClosure marks every node reachable from the set through one or
// more child edges (the node itself only if it lies on a cycle).
func downwardClosure(g *graph.Graph, from []bool) []bool {
	reach := make([]bool, len(from))
	var queue []graph.NodeID
	for v, ok := range from {
		if ok {
			queue = append(queue, graph.NodeID(v))
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, c := range g.Children(v) {
			if !reach[c] {
				reach[c] = true
				queue = append(queue, c)
			}
		}
	}
	return reach
}
