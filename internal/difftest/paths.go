package difftest

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"mrx/internal/baseline"
	"mrx/internal/core"
	"mrx/internal/engine"
	"mrx/internal/graph"
	"mrx/internal/index"
	"mrx/internal/mmapstore"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

// ServingPath is one way of answering queries that the differential runner
// cross-checks against SlowEval: a static index, an adaptive index, one
// M*(k) evaluation strategy, or the concurrent engine.
type ServingPath struct {
	// Name identifies the path in failure messages (e.g. "mstar/subpath").
	Name string
	// Querier answers simple path expressions.
	Querier query.Querier
	// Support refines the index for a FUP; nil for static indexes. The
	// runner only passes wildcard-free expressions with a finite RequiredK
	// (the paper's FUP class).
	Support func(*pathexpr.Expr)
	// Check verifies the path's structural invariants; the runner calls it
	// after every refinement step. checkBisim additionally verifies P1
	// (extents k-bisimilar), which is expensive and meant for small graphs.
	Check func(checkBisim bool) error
	// Finish runs end-of-case checks (e.g. engine snapshot immutability).
	Finish func() error
}

// PathsOptions configures BuildPaths.
type PathsOptions struct {
	// AK is the A(k)-index resolution (default 2).
	AK int
	// UDK, UDL are the UD(k,l)-index resolutions (defaults 2, 2).
	UDK, UDL int
	// MaxK is the resolution cap of the capped M*(k) instance (default 2).
	MaxK int
	// Parallelism is the engine's validation worker-pool size (default 2,
	// so worker-pool validation is exercised without oversubscription).
	Parallelism int
	// Shards is the sharded engine's desired shard count (default 3; the
	// actual count is clamped to the graph's weak component count, so
	// single-component graphs exercise the one-shard degenerate case).
	Shards int
}

func (o *PathsOptions) defaults() {
	if o.AK <= 0 {
		o.AK = 2
	}
	if o.UDK <= 0 {
		o.UDK = 2
	}
	if o.UDL <= 0 {
		o.UDL = 2
	}
	if o.MaxK <= 0 {
		o.MaxK = 2
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 2
	}
	if o.Shards <= 0 {
		o.Shards = 3
	}
}

// BuildPaths constructs every serving path of the repository over g:
// the 1-index, A(k), D(k) in both forms (workload construction and
// incremental promotion), UD(k,l), M(k), M*(k) under every evaluation
// strategy plus a MaxK-capped instance, and the concurrent engine. fups
// seeds the D(k) construction (only its wildcard-free bounded members are
// used; D(k)-construct supports nothing else).
func BuildPaths(g *graph.Graph, fups []*pathexpr.Expr, o PathsOptions) ([]*ServingPath, error) {
	o.defaults()
	var out []*ServingPath

	staticPath := func(name string, ig *index.Graph) {
		out = append(out, &ServingPath{
			Name:    name,
			Querier: query.AsQuerier(ig),
			Check:   ig.Validate,
		})
	}

	one, _ := baseline.OneIndex(g)
	staticPath("1index", one)
	staticPath(fmt.Sprintf("a%d", o.AK), baseline.AK(g, o.AK))

	dk, err := baseline.DKConstruct(g, Supportable(fups))
	if err != nil {
		return nil, fmt.Errorf("difftest: D(k) construction: %w", err)
	}
	staticPath("dk", dk)

	ud := baseline.NewUD(g, o.UDK, o.UDL)
	out = append(out, &ServingPath{
		Name:    fmt.Sprintf("ud%d,%d", o.UDK, o.UDL),
		Querier: ud,
		Check:   ud.Index().Validate,
	})

	dkp := baseline.NewDKPromote(g)
	out = append(out, &ServingPath{
		Name:    "dkpromote",
		Querier: dkp,
		Support: dkp.Support,
		Check:   dkp.Index().Validate,
	})

	mk := core.NewMK(g)
	out = append(out, &ServingPath{
		Name:    "mk",
		Querier: mk,
		Support: mk.Support,
		Check:   mk.Index().Validate,
	})

	for _, strat := range []core.Strategy{
		core.StrategyNaive, core.StrategyTopDown, core.StrategySubpath,
		core.StrategyBottomUp, core.StrategyHybrid, core.StrategyAuto,
	} {
		ms := core.NewMStarOpts(g, core.MStarOptions{Strategy: strat})
		out = append(out, &ServingPath{
			Name:    "mstar/" + strat,
			Querier: ms,
			Support: ms.Support,
			Check:   ms.Validate,
		})
	}

	capped := core.NewMStarOpts(g, core.MStarOptions{MaxK: o.MaxK})
	out = append(out, &ServingPath{
		Name:    fmt.Sprintf("mstar/maxk%d", o.MaxK),
		Querier: capped,
		Support: capped.Support,
		Check: func(checkBisim bool) error {
			if err := capped.Validate(checkBisim); err != nil {
				return err
			}
			if got := capped.NumComponents() - 1; got > o.MaxK {
				return fmt.Errorf("MaxK=%d index materialized resolution %d", o.MaxK, got)
			}
			return nil
		},
	})

	ep, err := enginePath(g, o)
	if err != nil {
		return nil, err
	}
	shp, err := shardedPath(g, o)
	if err != nil {
		return nil, err
	}
	out = append(out, frozenPath(g), mmapPath(g), ep, shp)
	return out, nil
}

// frozenPath serves every query from a frozen CSR snapshot while refinement
// runs on the mutable twin, exercising the engine's freeze-at-publish
// lifecycle (including cross-generation component reuse via FreezeReusing)
// in isolation: Support refines a clone and re-freezes only dirtied
// components; Check proves the served snapshot is an exact flattening of
// the mutable index it was frozen from.
func frozenPath(g *graph.Graph) *ServingPath {
	ms := core.NewMStar(g)
	fz := ms.Freeze()
	return &ServingPath{
		Name: "frozen",
		Querier: query.QuerierFunc(func(e *pathexpr.Expr) query.Result {
			res, _ := fz.QueryOpts(e, query.ValidateOpts{})
			return res
		}),
		Support: func(e *pathexpr.Expr) {
			res, _ := fz.QueryOpts(e, query.ValidateOpts{})
			next := ms.Clone()
			next.Refine(e, res.Answer)
			fz = next.FreezeReusing(ms, fz)
			ms = next
		},
		Check: func(checkBisim bool) error {
			if err := ms.Validate(checkBisim); err != nil {
				return err
			}
			return fz.CheckAgainst(ms)
		},
	}
}

// mmapPath serves every query from a snapshot that has been round-tripped
// through the mmap snapshot format in full-verification mode: each
// refinement re-freezes the mutable index, encodes it (mmapstore.Write),
// reopens the bytes untrusted (checksums plus the deep structural walk),
// and serves the zero-copy view wired over them. Beyond answer equality —
// which the runner checks against SlowEval like any other path — it pins
// down the format's losslessness: re-encoding the mapped view must
// reproduce the heap snapshot's encoding byte for byte, every generation.
func mmapPath(g *graph.Graph) *ServingPath {
	ms := core.NewMStar(g)
	var mapped *core.FrozenMStar
	var tripErr error // first round-trip failure, surfaced by Check
	republish := func() {
		var buf bytes.Buffer
		if err := mmapstore.Write(&buf, ms.Freeze(), mmapstore.WriteOptions{}); err != nil {
			tripErr = fmt.Errorf("mmap path: encode: %w", err)
			return
		}
		snap, err := mmapstore.OpenBytes(buf.Bytes(), g, mmapstore.Options{})
		if err != nil {
			tripErr = fmt.Errorf("mmap path: open: %w", err)
			return
		}
		mapped = snap.FrozenMStar()
		var re bytes.Buffer
		if err := mmapstore.Write(&re, mapped, mmapstore.WriteOptions{}); err != nil {
			tripErr = fmt.Errorf("mmap path: re-encode: %w", err)
			return
		}
		if !bytes.Equal(re.Bytes(), buf.Bytes()) {
			tripErr = fmt.Errorf("mmap path: mapped view re-encodes differently from the heap snapshot")
		}
	}
	republish()
	return &ServingPath{
		Name: "engine/mmap",
		Querier: query.QuerierFunc(func(e *pathexpr.Expr) query.Result {
			res, _ := mapped.QueryOpts(e, query.ValidateOpts{})
			return res
		}),
		Support: func(e *pathexpr.Expr) {
			if tripErr != nil {
				return // keep the first failure for Check, don't serve past it
			}
			ms.Support(e)
			republish()
		},
		Check: func(checkBisim bool) error {
			if tripErr != nil {
				return tripErr
			}
			if err := ms.Validate(checkBisim); err != nil {
				return err
			}
			// The mapped view must be an exact flattening of the mutable
			// index it was frozen and round-tripped from.
			return mapped.CheckAgainst(ms)
		},
	}
}

// enginePath wraps the concurrent engine and tracks every published
// snapshot: Check validates the current snapshot after each refinement and
// Finish re-fingerprints all historical generations, failing if refinement
// ever mutated an already-published (immutable by contract) snapshot.
func enginePath(g *graph.Graph, o PathsOptions) (*ServingPath, error) {
	en, err := engine.New(g, engine.Options{Parallelism: o.Parallelism})
	if err != nil {
		return nil, fmt.Errorf("difftest: engine path: %w", err)
	}
	type published struct {
		gen uint64
		ms  *core.MStar
		fp  uint64
	}
	record := func() published {
		ms := en.Snapshot()
		return published{gen: en.Generation(), ms: ms, fp: Fingerprint(ms)}
	}
	history := []published{record()}
	sp := &ServingPath{
		Name:    "engine",
		Querier: en,
		Support: func(e *pathexpr.Expr) {
			if en.Support(e) {
				history = append(history, record())
			}
		},
		Check: func(checkBisim bool) error {
			if err := en.Snapshot().Validate(checkBisim); err != nil {
				return err
			}
			// The served frozen view must be an exact flattening of the
			// published mutable index, including after FreezeReusing
			// carried components across generations.
			return en.FrozenSnapshot().CheckAgainst(en.Snapshot())
		},
		Finish: func() error {
			for _, p := range history {
				if Fingerprint(p.ms) != p.fp {
					return fmt.Errorf("engine snapshot generation %d mutated after publication", p.gen)
				}
			}
			return nil
		},
	}
	return sp, nil
}

// shardedPath wraps the scatter-gather engine: queries scatter across the
// shard-local M*(k) snapshots and gather into one answer the runner
// compares against SlowEval like any other path. Check validates every
// shard's mutable index and proves each served frozen view is an exact
// flattening of its mutable twin — including after cross-generation
// component reuse, since each shard's Refine publishes via FreezeReusing.
// Finish re-fingerprints every published shard snapshot, failing if
// refinement ever mutated one.
func shardedPath(g *graph.Graph, o PathsOptions) (*ServingPath, error) {
	en, err := engine.NewSharded(g, engine.ShardedOptions{Shards: o.Shards, Parallelism: o.Parallelism})
	if err != nil {
		return nil, fmt.Errorf("difftest: sharded path: %w", err)
	}
	type published struct {
		shard int
		gen   uint64
		ms    *core.MStar
		fp    uint64
	}
	var history []published
	record := func() {
		for i := 0; i < en.NumShards(); i++ {
			snap := en.ShardState(i).Snapshot()
			history = append(history, published{shard: i, gen: snap.Gen, ms: snap.MS, fp: Fingerprint(snap.MS)})
		}
	}
	record()
	sp := &ServingPath{
		Name:    fmt.Sprintf("engine/sharded%d", en.NumShards()),
		Querier: en,
		Support: func(e *pathexpr.Expr) {
			if en.Support(e) {
				record()
			}
		},
		Check: func(checkBisim bool) error {
			for i := 0; i < en.NumShards(); i++ {
				snap := en.ShardState(i).Snapshot()
				if err := snap.MS.Validate(checkBisim); err != nil {
					return fmt.Errorf("shard %d: %w", i, err)
				}
				if err := snap.FZ.CheckAgainst(snap.MS); err != nil {
					return fmt.Errorf("shard %d: %w", i, err)
				}
			}
			return nil
		},
		Finish: func() error {
			for _, p := range history {
				if Fingerprint(p.ms) != p.fp {
					return fmt.Errorf("shard %d snapshot generation %d mutated after publication", p.shard, p.gen)
				}
			}
			return nil
		},
	}
	return sp, nil
}

// Supportable filters an expression set down to the paper's FUP class:
// wildcard-free expressions with a finite required resolution. Only these
// are passed to Support and to the D(k) construction.
func Supportable(es []*pathexpr.Expr) []*pathexpr.Expr {
	var out []*pathexpr.Expr
	for _, e := range es {
		if !e.HasWildcard() && e.RequiredK() != pathexpr.Unbounded {
			out = append(out, e)
		}
	}
	return out
}

// Fingerprint hashes the complete observable state of an M*(k)-index —
// per component: every live node's ID, local similarity, extent, and child
// list — so any mutation of a supposedly immutable snapshot changes it.
func Fingerprint(ms *core.MStar) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(x int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
	for i := 0; i < ms.NumComponents(); i++ {
		comp := ms.Component(i)
		w(int64(i))
		comp.ForEachNode(func(n *index.Node) {
			w(int64(n.ID()))
			w(int64(n.K()))
			for _, o := range n.Extent() {
				w(int64(o))
			}
			for _, c := range comp.Children(n) {
				w(int64(c.ID()))
			}
		})
	}
	return h.Sum64()
}
