package datagen

import (
	"fmt"
	"math/rand"

	"mrx/internal/graph"
)

// NASACounts are the entity counts of a NASA-like document. At scale 1.0 the
// generated graph has roughly 90,000 nodes, matching the paper's dataset.
type NASACounts struct {
	Datasets int
	Journals int
}

// DefaultNASACounts returns counts scaled so that scale 1.0 yields a graph
// of about 90k nodes.
func DefaultNASACounts(scale float64) NASACounts {
	return NASACounts{
		Datasets: scaled(1430, scale),
		Journals: scaled(120, scale),
	}
}

// NASA generates a NASA-like astronomical catalog document. Compared with
// the XMark-like document it is deeper (up to nine levels below the root),
// broader (more distinct element names), more irregular (most substructures
// are optional and probabilistic), reuses element names across many contexts
// (name appears under instrument, telescope, observatory, facility, journal,
// source and field, like the seven contexts the paper mentions), and has a
// higher density of reference edges (dataset cross-references, journal
// references and revision back-references). The paper notes that the D(k)
// evaluation removed more than half of the NASA references to keep index
// sizes manageable but that He & Yang kept all of them; we keep all of them
// too.
func NASA(scale float64, seed int64) []byte {
	return NASAWithCounts(DefaultNASACounts(scale), seed)
}

// NASAWithCounts generates a NASA-like document with explicit counts.
func NASAWithCounts(c NASACounts, seed int64) []byte {
	r := rand.New(rand.NewSource(seed))
	w := &writer{}
	w.open("datasets")

	datasetID := func(i int) string { return fmt.Sprintf("dataset%d", i) }
	journalID := func(i int) string { return fmt.Sprintf("journal%d", i) }

	// Shared journal catalog referenced from dataset references.
	w.open("journals")
	for i := 0; i < c.Journals; i++ {
		w.open("journal", "id", journalID(i))
		w.leaf("name")
		if pick(r, 0.5) {
			w.leaf("publisher")
		}
		w.close()
	}
	w.close()

	for i := 0; i < c.Datasets; i++ {
		w.open("dataset", "id", datasetID(i), "subject", fmt.Sprintf("subj%d", r.Intn(30)))
		w.leaf("title")
		if pick(r, 0.4) {
			w.leaf("subtitle")
		}
		for n := r.Intn(3); n > 0; n-- {
			w.open("altname")
			w.leaf("name")
			w.close()
		}
		writeNASAAuthors(w, r, 1+r.Intn(3))

		// references to the literature and to other datasets
		for n := 1 + r.Intn(3); n > 0; n-- {
			w.open("reference")
			w.open("source")
			if pick(r, 0.6) {
				w.open("journalref", "journal", journalID(r.Intn(c.Journals)))
				w.leaf("volume")
				if pick(r, 0.6) {
					w.leaf("page")
				}
				w.close()
			} else {
				w.open("other")
				w.leaf("name")
				writeNASAAuthors(w, r, 1)
				w.close()
			}
			w.leaf("year")
			if pick(r, 0.4) {
				w.leaf("seeAlso", "dataset", datasetID(r.Intn(c.Datasets)))
			}
			w.close()
			w.close()
		}
		for n := 3 + r.Intn(5); n > 0; n-- {
			w.leaf("relatedData", "dataset", datasetID(r.Intn(c.Datasets)))
		}

		if pick(r, 0.7) {
			w.open("keywords")
			for n := 1 + r.Intn(4); n > 0; n-- {
				w.leaf("keyword")
			}
			w.close()
		}
		if pick(r, 0.6) {
			w.open("instrument")
			w.leaf("name")
			if pick(r, 0.4) {
				w.open("observatory")
				w.leaf("name")
				w.close()
			}
			w.close()
		}
		if pick(r, 0.4) {
			w.open("telescope")
			w.leaf("name")
			if pick(r, 0.3) {
				w.open("facility")
				w.leaf("name")
				w.close()
			}
			w.close()
		}
		w.leaf("identifier")

		if pick(r, 0.8) {
			w.open("descriptions")
			for n := 1 + r.Intn(2); n > 0; n-- {
				w.open("description")
				w.open("textpanel")
				if pick(r, 0.4) {
					w.leaf("title")
				}
				for m := 1 + r.Intn(3); m > 0; m-- {
					w.open("para")
					if pick(r, 0.2) {
						w.leaf("footnote")
					}
					w.close()
				}
				w.close()
				w.close()
			}
			w.close()
		}

		if pick(r, 0.7) {
			w.open("tableHead")
			if pick(r, 0.3) {
				w.open("tableLinks")
				for n := 1 + r.Intn(2); n > 0; n-- {
					w.open("tableLink")
					w.leaf("title")
					w.close()
				}
				w.close()
			}
			w.open("fields")
			for n := 2 + r.Intn(6); n > 0; n-- {
				w.open("field")
				w.leaf("name")
				if pick(r, 0.5) {
					w.open("definition")
					w.open("para")
					if pick(r, 0.15) {
						w.leaf("footnote")
					}
					w.close()
					w.close()
				}
				if pick(r, 0.3) {
					w.leaf("units")
				}
				w.close()
			}
			w.close()
			w.close()
		}

		if pick(r, 0.6) {
			w.open("history")
			w.open("ingest")
			writeNASACreator(w, r)
			writeNASADate(w, r)
			w.close()
			if pick(r, 0.4) {
				w.open("revisions")
				for n := 1 + r.Intn(3); n > 0; n-- {
					w.open("revision")
					writeNASACreator(w, r)
					writeNASADate(w, r)
					if pick(r, 0.5) {
						w.leaf("supersedes", "dataset", datasetID(r.Intn(c.Datasets)))
					}
					if pick(r, 0.3) {
						w.leaf("publishedIn", "journal", journalID(r.Intn(c.Journals)))
					}
					w.close()
				}
				w.close()
			}
			w.close()
		}
		w.close() // dataset
	}
	w.close() // datasets
	return w.bytes()
}

func writeNASAAuthors(w *writer, r *rand.Rand, n int) {
	for ; n > 0; n-- {
		w.open("author")
		if pick(r, 0.5) {
			w.leaf("initial")
		}
		w.leaf("lastName")
		if pick(r, 0.6) {
			w.leaf("firstName")
		}
		w.close()
	}
}

func writeNASACreator(w *writer, r *rand.Rand) {
	w.open("creator")
	w.leaf("lastName")
	if pick(r, 0.5) {
		w.leaf("firstName")
	}
	w.close()
}

func writeNASADate(w *writer, r *rand.Rand) {
	w.open("date")
	w.leaf("year")
	w.leaf("month")
	if pick(r, 0.7) {
		w.leaf("day")
	}
	w.close()
}

// NASAGraph generates and parses a NASA-like document.
func NASAGraph(scale float64, seed int64) *graph.Graph {
	return mustGraph(NASA(scale, seed))
}
