package datagen

import (
	"fmt"
	"math/rand"

	"mrx/internal/graph"
)

// XMarkCounts are the entity counts of an XMark-like document. At scale 1.0
// the generated graph has roughly 120,000 nodes, matching the document the
// paper used.
type XMarkCounts struct {
	Categories     int
	Items          int // per region; there are six regions
	Persons        int
	OpenAuctions   int
	ClosedAuctions int
}

// DefaultXMarkCounts returns counts scaled so that scale 1.0 yields a graph
// of about 120k nodes.
func DefaultXMarkCounts(scale float64) XMarkCounts {
	return XMarkCounts{
		Categories:     scaled(360, scale),
		Items:          scaled(520, scale), // ×6 regions
		Persons:        scaled(2450, scale),
		OpenAuctions:   scaled(1150, scale),
		ClosedAuctions: scaled(940, scale),
	}
}

var xmarkRegions = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}

// XMark generates an XMark-like auction document. The element hierarchy and
// reference structure follow the XMark benchmark DTD: regions with items,
// people, open and closed auctions, categories and the category graph, with
// IDREF attributes wiring bidders and sellers to persons, auctions to items,
// and items/people to categories.
func XMark(scale float64, seed int64) []byte {
	return XMarkWithCounts(DefaultXMarkCounts(scale), seed)
}

// XMarkWithCounts generates an XMark-like document with explicit counts.
func XMarkWithCounts(c XMarkCounts, seed int64) []byte {
	r := rand.New(rand.NewSource(seed))
	w := &writer{}
	w.open("site")

	totalItems := c.Items * len(xmarkRegions)
	itemID := func(i int) string { return fmt.Sprintf("item%d", i) }
	personID := func(i int) string { return fmt.Sprintf("person%d", i) }
	categoryID := func(i int) string { return fmt.Sprintf("category%d", i) }
	auctionID := func(i int) string { return fmt.Sprintf("open_auction%d", i) }

	// regions
	w.open("regions")
	item := 0
	for _, region := range xmarkRegions {
		w.open(region)
		for i := 0; i < c.Items; i++ {
			w.open("item", "id", itemID(item))
			w.leaf("location")
			w.leaf("quantity")
			w.leaf("name")
			w.open("payment")
			w.close()
			writeDescription(w, r, 0)
			w.leaf("shipping")
			for n := 1 + r.Intn(2); n > 0; n-- {
				w.leaf("incategory", "category", categoryID(r.Intn(c.Categories)))
			}
			if pick(r, 0.7) {
				w.open("mailbox")
				for n := r.Intn(3); n > 0; n-- {
					w.open("mail")
					w.leaf("from")
					w.leaf("to")
					w.leaf("date")
					writeText(w, r)
					w.close()
				}
				w.close()
			}
			w.close() // item
			item++
		}
		w.close()
	}
	w.close() // regions

	// categories
	w.open("categories")
	for i := 0; i < c.Categories; i++ {
		w.open("category", "id", categoryID(i))
		w.leaf("name")
		writeDescription(w, r, 0)
		w.close()
	}
	w.close()

	// catgraph
	w.open("catgraph")
	for i := 0; i < c.Categories; i++ {
		w.leaf("edge", "from", categoryID(r.Intn(c.Categories)), "to", categoryID(r.Intn(c.Categories)))
	}
	w.close()

	// people
	w.open("people")
	for i := 0; i < c.Persons; i++ {
		w.open("person", "id", personID(i))
		w.leaf("name")
		w.leaf("emailaddress")
		if pick(r, 0.5) {
			w.leaf("phone")
		}
		if pick(r, 0.4) {
			w.open("address")
			w.leaf("street")
			w.leaf("city")
			w.leaf("country")
			w.leaf("zipcode")
			w.close()
		}
		if pick(r, 0.3) {
			w.leaf("homepage")
		}
		if pick(r, 0.3) {
			w.leaf("creditcard")
		}
		if pick(r, 0.6) {
			w.open("profile")
			for n := r.Intn(3); n > 0; n-- {
				w.leaf("interest", "category", categoryID(r.Intn(c.Categories)))
			}
			if pick(r, 0.5) {
				w.leaf("education")
			}
			if pick(r, 0.8) {
				w.leaf("gender")
			}
			w.leaf("business")
			if pick(r, 0.7) {
				w.leaf("age")
			}
			w.close()
		}
		if pick(r, 0.4) && c.OpenAuctions > 0 {
			w.open("watches")
			for n := 1 + r.Intn(3); n > 0; n-- {
				w.leaf("watch", "open_auction", auctionID(r.Intn(c.OpenAuctions)))
			}
			w.close()
		}
		w.close()
	}
	w.close()

	// open_auctions
	w.open("open_auctions")
	for i := 0; i < c.OpenAuctions; i++ {
		w.open("open_auction", "id", auctionID(i))
		w.leaf("initial")
		if pick(r, 0.4) {
			w.leaf("reserve")
		}
		for n := r.Intn(5); n > 0; n-- {
			w.open("bidder")
			w.leaf("date")
			w.leaf("time")
			w.leaf("personref", "person", personID(r.Intn(c.Persons)))
			w.leaf("increase")
			w.close()
		}
		w.leaf("current")
		if pick(r, 0.2) {
			w.leaf("privacy")
		}
		w.leaf("itemref", "item", itemID(r.Intn(totalItems)))
		w.leaf("seller", "person", personID(r.Intn(c.Persons)))
		writeAnnotation(w, r, c)
		w.leaf("quantity")
		w.leaf("type")
		w.open("interval")
		w.leaf("start")
		w.leaf("end")
		w.close()
		w.close()
	}
	w.close()

	// closed_auctions
	w.open("closed_auctions")
	for i := 0; i < c.ClosedAuctions; i++ {
		w.open("closed_auction")
		w.leaf("seller", "person", personID(r.Intn(c.Persons)))
		w.leaf("buyer", "person", personID(r.Intn(c.Persons)))
		w.leaf("itemref", "item", itemID(r.Intn(totalItems)))
		w.leaf("price")
		w.leaf("date")
		w.leaf("quantity")
		w.leaf("type")
		writeAnnotation(w, r, c)
		w.close()
	}
	w.close()

	w.close() // site
	return w.bytes()
}

// writeDescription emits XMark's recursive description content model:
// either text or a parlist of listitems, which may nest.
func writeDescription(w *writer, r *rand.Rand, depth int) {
	w.open("description")
	if depth < 2 && pick(r, 0.3) {
		w.open("parlist")
		for n := 1 + r.Intn(2); n > 0; n-- {
			w.open("listitem")
			if depth < 1 && pick(r, 0.3) {
				w.open("parlist")
				w.open("listitem")
				writeText(w, r)
				w.closeN(2)
			} else {
				writeText(w, r)
			}
			w.close()
		}
		w.close()
	} else {
		writeText(w, r)
	}
	w.close()
}

func writeText(w *writer, r *rand.Rand) {
	w.open("text")
	if pick(r, 0.2) {
		w.leaf("bold")
	}
	if pick(r, 0.1) {
		w.leaf("keyword")
	}
	if pick(r, 0.1) {
		w.leaf("emph")
	}
	w.close()
}

func writeAnnotation(w *writer, r *rand.Rand, c XMarkCounts) {
	w.open("annotation")
	w.leaf("author", "person", fmt.Sprintf("person%d", r.Intn(c.Persons)))
	writeDescription(w, r, 1)
	if pick(r, 0.5) {
		w.leaf("happiness")
	}
	w.close()
}

// XMarkGraph generates and parses an XMark-like document.
func XMarkGraph(scale float64, seed int64) *graph.Graph {
	return mustGraph(XMark(scale, seed))
}
