package datagen

import (
	"bytes"
	"testing"

	"mrx/internal/graph"
	"mrx/internal/query"
)

func TestXMarkDeterministic(t *testing.T) {
	a := XMark(0.02, 7)
	b := XMark(0.02, 7)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different documents")
	}
	c := XMark(0.02, 8)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical documents")
	}
}

func TestXMarkScaleOne(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation in -short mode")
	}
	g := XMarkGraph(1.0, 42)
	if n := g.NumNodes(); n < 110_000 || n > 130_000 {
		t.Errorf("scale-1 XMark nodes = %d, want ~120k", n)
	}
	if g.NumRefEdges() == 0 {
		t.Error("no reference edges")
	}
}

func TestXMarkStructure(t *testing.T) {
	g := XMarkGraph(0.05, 3)
	d := query.NewDataIndex(g)
	checks := []struct {
		expr     string
		nonEmpty bool
	}{
		{"/site/regions/africa/item", true},
		{"/site/regions/*/item/description", true},
		{"/site/people/person/profile/interest/category", true}, // IDREF hop
		{"//open_auction/bidder/personref/person", true},
		{"//closed_auction/itemref/item", true},
		{"//watch/open_auction", true},
		{"//catgraph/edge/category", true},
		{"//annotation/author/person", true},
		{"//person/item", false}, // no such edge
	}
	for _, c := range checks {
		got := d.Eval(mustParse(c.expr))
		if (len(got) > 0) != c.nonEmpty {
			t.Errorf("%s: got %d results, want nonEmpty=%v", c.expr, len(got), c.nonEmpty)
		}
	}
}

func TestNASADeterministic(t *testing.T) {
	a := NASA(0.02, 7)
	b := NASA(0.02, 7)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different documents")
	}
}

func TestNASAScaleOne(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation in -short mode")
	}
	g := NASAGraph(1.0, 42)
	if n := g.NumNodes(); n < 80_000 || n > 100_000 {
		t.Errorf("scale-1 NASA nodes = %d, want ~90k", n)
	}
}

func TestNASAStructure(t *testing.T) {
	g := NASAGraph(0.05, 3)
	d := query.NewDataIndex(g)
	for _, expr := range []string{
		"/datasets/dataset/tableHead/fields/field/name",
		"//dataset/author/lastName",
		"//journalref/journal/name",
		"//relatedData/dataset",
		"//revision/creator/lastName",
		"//instrument/name",
		"//telescope/name",
		"//descriptions/description/textpanel/para",
	} {
		if got := d.Eval(mustParse(expr)); len(got) == 0 {
			t.Errorf("%s: empty target set", expr)
		}
	}
}

// TestNASAIrregularity checks the properties the paper relies on: the NASA
// dataset is deeper and reuses element names in more contexts than XMark.
func TestNASANameReuse(t *testing.T) {
	g := NASAGraph(0.05, 3)
	nameLbl, ok := g.LabelIDOf("name")
	if !ok {
		t.Fatal("no name label")
	}
	contexts := map[graph.LabelID]bool{}
	for _, v := range g.NodesWithLabel(nameLbl) {
		for _, p := range g.Parents(v) {
			contexts[g.Label(p)] = true
		}
	}
	if len(contexts) < 7 {
		t.Errorf("name appears under %d distinct parents, want >= 7", len(contexts))
	}
}

func TestDepths(t *testing.T) {
	depth := func(g *graph.Graph) int {
		// longest tree-edge path from the root (reference edges excluded to
		// avoid cycles).
		memo := make([]int, g.NumNodes())
		for v := g.NumNodes() - 1; v >= 0; v-- {
			kids := g.Children(graph.NodeID(v))
			kinds := g.ChildKinds(graph.NodeID(v))
			for i, c := range kids {
				if kinds[i] != graph.TreeEdge {
					continue
				}
				if int(c) > v && memo[c]+1 > memo[v] {
					memo[v] = memo[c] + 1
				}
			}
		}
		return memo[0]
	}
	xm := depth(XMarkGraph(0.05, 3))
	na := depth(NASAGraph(0.05, 3))
	if na < 8 {
		t.Errorf("NASA depth = %d, want >= 8", na)
	}
	if xm < 6 {
		t.Errorf("XMark depth = %d, want >= 6", xm)
	}
}

func TestWriterBalanced(t *testing.T) {
	w := &writer{}
	w.open("a", "id", "x")
	w.open("b")
	w.leaf("c", "ref", "x")
	w.closeN(2)
	got := string(w.bytes())
	want := `<a id="x"><b><c ref="x"/></b></a>`
	if got != want {
		t.Fatalf("writer output %q, want %q", got, want)
	}
}
