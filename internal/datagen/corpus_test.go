package datagen

import (
	"testing"

	"mrx/internal/graph"
)

func TestCorpusGraphComponents(t *testing.T) {
	g, err := CorpusGraph(0.1, 42, 5)
	if err != nil {
		t.Fatalf("CorpusGraph: %v", err)
	}
	comps := g.WeakComponents()
	if len(comps) != 5 {
		t.Fatalf("%d weak components, want 5 (one per document)", len(comps))
	}
	// Exactly one entry node per document, and the first is the global root.
	entries := 0
	for v := 0; v < g.NumNodes(); v++ {
		if len(g.Parents(graph.NodeID(v))) == 0 {
			entries++
		}
	}
	// Ref edges add parents, so entries can only undercount; every document
	// root must still be parentless.
	for _, c := range comps {
		if len(g.Parents(c[0])) != 0 {
			t.Fatalf("document root %d has parents", c[0])
		}
	}
	if entries < 5 {
		t.Fatalf("%d parentless entries, want >= 5", entries)
	}
}

func TestCorpusGraphDeterministic(t *testing.T) {
	a, err := CorpusGraph(0.1, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CorpusGraph(0.1, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("corpus not deterministic: %d/%d nodes, %d/%d edges",
			a.NumNodes(), b.NumNodes(), a.NumEdges(), b.NumEdges())
	}
	for v := 0; v < a.NumNodes(); v++ {
		if a.NodeLabelName(graph.NodeID(v)) != b.NodeLabelName(graph.NodeID(v)) {
			t.Fatalf("label mismatch at node %d", v)
		}
	}
}
