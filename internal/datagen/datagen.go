// Package datagen generates the synthetic datasets of the paper's
// experiments: an XMark-like auction-site document and a NASA-like
// astronomical-catalog document.
//
// The paper used the XMark C generator (11 MB, ≈120,000 nodes) and the IBM
// XML generator with the real NASA DTD (11 MB, ≈90,000 nodes). Neither tool
// is available here, so both are re-implemented in Go, preserving what a
// bisimilarity-based structural index observes: the element hierarchy,
// relative fan-outs, element-name reuse across contexts, and ID/IDREF
// wiring. Text content is omitted (structural indexes never see it), so
// documents are byte-smaller than the paper's at equal node counts; node
// counts are what the experiments are calibrated to.
//
// All generators are deterministic for a given seed.
package datagen

import (
	"bytes"
	"fmt"
	"math/rand"

	"mrx/internal/graph"
	"mrx/internal/xmlload"
)

// writer is a minimal XML writer with element stacking.
type writer struct {
	buf   bytes.Buffer
	stack []string
}

func (w *writer) open(name string, attrs ...string) {
	w.buf.WriteByte('<')
	w.buf.WriteString(name)
	for i := 0; i+1 < len(attrs); i += 2 {
		fmt.Fprintf(&w.buf, " %s=%q", attrs[i], attrs[i+1])
	}
	w.buf.WriteByte('>')
	w.stack = append(w.stack, name)
}

func (w *writer) closeN(n int) {
	for ; n > 0; n-- {
		name := w.stack[len(w.stack)-1]
		w.stack = w.stack[:len(w.stack)-1]
		w.buf.WriteString("</")
		w.buf.WriteString(name)
		w.buf.WriteByte('>')
	}
}

func (w *writer) close() { w.closeN(1) }

// leaf writes an empty element.
func (w *writer) leaf(name string, attrs ...string) {
	w.buf.WriteByte('<')
	w.buf.WriteString(name)
	for i := 0; i+1 < len(attrs); i += 2 {
		fmt.Fprintf(&w.buf, " %s=%q", attrs[i], attrs[i+1])
	}
	w.buf.WriteString("/>")
}

func (w *writer) bytes() []byte { return w.buf.Bytes() }

// mustGraph parses generated XML, panicking on error: generator output is
// well-formed by construction.
func mustGraph(data []byte) *graph.Graph {
	res, err := xmlload.LoadBytes(data, nil)
	if err != nil {
		//mrlint:allow nopanic generator output is well-formed by construction
		panic(fmt.Sprintf("datagen: generated document failed to parse: %v", err))
	}
	return res.Graph
}

func scaled(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 1 {
		n = 1
	}
	return n
}

func pick(r *rand.Rand, p float64) bool { return r.Float64() < p }
