package datagen

import "mrx/internal/graph"

// CorpusGraph builds a multi-document data graph: docs generated documents
// (alternating XMark- and NASA-like, each scaled so the corpus totals
// roughly the requested scale) loaded side by side into one graph with one
// weakly-connected component per document. No edge crosses documents, so
// graph.WeakComponents recovers exactly the document boundaries — the
// workload package shard is built for: a corpus served as one logical
// index, partitionable along document lines.
//
// Node 0 is the first document's root; the other document roots are
// parentless interior nodes, reachable only by label. Rooted expressions
// therefore match inside the first document only, exactly as they would if
// the corpus had been concatenated under a single physical root without
// edges.
func CorpusGraph(scale float64, seed int64, docs int) (*graph.Graph, error) {
	if docs < 1 {
		docs = 1
	}
	per := scale / float64(docs)
	b := graph.NewBuilder()
	for i := 0; i < docs; i++ {
		var doc *graph.Graph
		if i%2 == 0 {
			doc = XMarkGraph(per, seed+int64(i))
		} else {
			doc = NASAGraph(per, seed+int64(i))
		}
		appendDoc(b, doc)
	}
	return b.Freeze()
}

// appendDoc copies one document graph into the builder at the current node
// offset, preserving labels and edge kinds. Document roots have in-degree 0
// by construction, so the copy never violates the builder's root-entry-only
// rule for global node 0.
func appendDoc(b *graph.Builder, doc *graph.Graph) {
	off := graph.NodeID(b.NumNodes())
	for v := 0; v < doc.NumNodes(); v++ {
		b.AddNode(doc.NodeLabelName(graph.NodeID(v)))
	}
	for v := 0; v < doc.NumNodes(); v++ {
		kinds := doc.ChildKinds(graph.NodeID(v))
		for j, c := range doc.Children(graph.NodeID(v)) {
			b.AddEdge(off+graph.NodeID(v), off+c, kinds[j])
		}
	}
}
