package adapt

import (
	"sync"
	"sync/atomic"
	"time"

	"mrx/internal/pathexpr"
)

// Tuner owns the epoch clock and executes tuning plans against a Target.
// Construct with NewTuner; a Config with a positive Interval starts a
// background goroutine that Steps every Interval and is joined by Close
// (background loops in this package must take a stop channel and be joined
// on Close — mrlint's noleak analyzer enforces the pattern). With a zero
// Interval the owner calls Step explicitly, which keeps difftest replays
// and CLI runs deterministic.
type Tuner struct {
	cfg     Config
	tracker *Tracker
	target  Target

	mu       sync.Mutex // serializes Step (manual vs. background) and lastPlan
	pol      *policy
	lastPlan Plan

	epochs     atomic.Uint64
	promotions atomic.Uint64
	retires    atomic.Uint64

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewTuner creates a tuner over target. Zero-value Config fields take the
// documented defaults.
func NewTuner(target Target, cfg Config) *Tuner {
	cfg.defaults()
	t := &Tuner{
		cfg:     cfg,
		tracker: NewTracker(cfg.TopK),
		target:  target,
		pol:     newPolicy(cfg),
	}
	if cfg.Interval > 0 {
		t.stop = make(chan struct{})
		t.wg.Add(1)
		go func(stop <-chan struct{}, wg *sync.WaitGroup) {
			defer wg.Done()
			ticker := time.NewTicker(cfg.Interval)
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
					t.Step()
				}
			}
		}(t.stop, &t.wg)
	}
	return t
}

// Observe feeds one served query into the tracker; see Tracker.Observe.
// This is the engine's hot-path hook.
func (t *Tuner) Observe(e *pathexpr.Expr, d time.Duration, validated int, precise bool) {
	t.tracker.Observe(e, d, validated, precise)
}

// Tracker returns the underlying frequency sketch.
func (t *Tuner) Tracker() *Tracker { return t.tracker }

// Step closes the current tracker epoch, computes the tuning plan, and
// executes it against the target: Support (PROMOTE′) for promotions, Retire
// for retirements. It returns the executed plan, whose decisions carry
// Changed flags. Steps serialize with each other and with the background
// goroutine.
func (t *Tuner) Step() Plan {
	t.mu.Lock()
	defer t.mu.Unlock()
	stats := t.tracker.AdvanceEpoch()
	epoch := t.epochs.Add(1)
	plan := t.pol.decide(epoch, stats, t.target.SupportedFUPs())
	for i := range plan.Decisions {
		d := &plan.Decisions[i]
		switch d.Action {
		case ActionPromote:
			d.Changed = t.target.Support(d.Expr)
			if d.Changed {
				t.promotions.Add(1)
			}
		case ActionRetire:
			d.Changed = t.target.Retire(d.Expr)
			if d.Changed {
				t.retires.Add(1)
			}
		}
	}
	t.lastPlan = plan
	return plan
}

// Close stops and joins the background goroutine, if any. It is idempotent
// and safe to call concurrently with serving traffic; after Close the owner
// may still Step manually.
func (t *Tuner) Close() {
	t.closeOnce.Do(func() {
		if t.stop != nil {
			close(t.stop)
		}
		t.wg.Wait()
	})
}

// Snapshot is a point-in-time copy of the tuner's observable state.
type Snapshot struct {
	// Epochs, Promotions, Retires count closed epochs and applied
	// (snapshot-publishing) actions.
	Epochs, Promotions, Retires uint64
	// Top is the tracker's current content, hottest first.
	Top []EntryStats
	// LastPlan is the most recently executed plan (zero before any Step).
	LastPlan Plan
}

// Snapshot captures the tuner state for Engine.Stats and the CLIs.
func (t *Tuner) Snapshot() Snapshot {
	t.mu.Lock()
	last := t.lastPlan
	t.mu.Unlock()
	return Snapshot{
		Epochs:     t.epochs.Load(),
		Promotions: t.promotions.Load(),
		Retires:    t.retires.Load(),
		Top:        t.tracker.Top(),
		LastPlan:   last,
	}
}
