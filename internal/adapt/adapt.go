// Package adapt closes the loop from live query traffic to index
// resolution: it observes the query stream, finds the frequently used path
// expressions (FUPs) of the current workload, and re-tunes an adaptive
// index — promoting expressions that turned hot and retiring previously
// supported FUPs that cooled off — so the served resolution tracks workload
// drift without operator intervention.
//
// The subsystem has three layers:
//
//   - Tracker: a concurrent, bounded-memory frequency sketch over
//     canonicalized path expressions (space-saving top-K, with per-entry
//     hit/latency/validation counters updated by atomic adds). The serving
//     hot path performs one RLock'd map probe keyed by an allocation-free
//     canonical rendering; misses take a short exclusive section that may
//     evict the minimum-count entry (the space-saving step). Counts decay
//     exponentially at epoch boundaries so stale paths age out.
//
//   - policy: hysteresis-damped promotion/demotion decisions. An expression
//     is promoted only after staying above the hot threshold for
//     PromoteAfter consecutive epochs with observed validation cost (a
//     query that is already precise gains nothing from refinement); a
//     supported FUP is retired only after staying below the cold threshold
//     for DemoteAfter consecutive epochs. Acted-on expressions enter a
//     cooldown during which the opposite action is blocked, damping
//     promote→retire→promote oscillation under alternating workloads.
//     Every decision carries a human-readable reason and is exposed via
//     Plan snapshots.
//
//   - Tuner: the epoch clock and executor. Each Step advances the tracker
//     epoch, asks the policy for a plan, and executes it against the Target
//     (the engine): Support for promotions — the paper's PROMOTE′ — and
//     Retire for demotions, a rebuild-based operation the paper does not
//     have (it defines no DEMOTE; see core.Retire for why rebuilding is the
//     only way to keep Properties 1–5 intact). With a positive Interval the
//     tuner runs Step from a background goroutine that owns a stop channel
//     and is joined by Close; with Interval zero the owner steps manually
//     (tests, difftest, CLIs).
package adapt

import (
	"errors"
	"fmt"
	"time"

	"mrx/internal/pathexpr"
)

// Config configures the tracker, policy and tuner. The zero value of every
// field selects a sensible default; DefaultConfig returns them explicitly.
type Config struct {
	// TopK bounds tracker memory: at most TopK expressions are tracked at
	// once (space-saving eviction beyond that). Default 64.
	TopK int

	// HotThreshold is the per-epoch hit count at or above which an
	// expression counts as hot. Default 4.
	HotThreshold uint64

	// ColdThreshold is the per-epoch hit count at or below which a
	// supported FUP counts as cold. Default 0 (completely idle).
	ColdThreshold uint64

	// PromoteAfter is how many consecutive hot epochs an expression needs
	// before it is promoted. Default 2.
	PromoteAfter int

	// DemoteAfter is how many consecutive cold epochs a supported FUP needs
	// before it is retired. Retirement rebuilds the index, so this should
	// be slower than promotion. Default 3.
	DemoteAfter int

	// Cooldown is how many epochs an acted-on expression is exempt from the
	// opposite action (and from being re-acted on), damping oscillation
	// under alternating workloads. Default 2; a negative value disables
	// cooldowns entirely.
	Cooldown int

	// MaxActionsPerEpoch bounds the number of decisions executed per epoch,
	// keeping each publish burst small. Default 4.
	MaxActionsPerEpoch int

	// Interval is the epoch length of the background tuner goroutine.
	// Zero (the default) starts no goroutine: the owner calls Step.
	Interval time.Duration
}

// ErrInvalidConfig is wrapped by every Validate failure.
var ErrInvalidConfig = errors.New("adapt: invalid config")

// Validate rejects plainly invalid tuning parameters with a wrapped error.
// Zero values mean "use the default" and are accepted, as is a negative
// Cooldown (the documented way to disable cooldowns entirely); negative
// counts, epochs, or intervals otherwise have no sensible reading and are
// refused rather than silently clamped.
func (c Config) Validate() error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"TopK", c.TopK},
		{"PromoteAfter", c.PromoteAfter},
		{"DemoteAfter", c.DemoteAfter},
		{"MaxActionsPerEpoch", c.MaxActionsPerEpoch},
	} {
		if f.v < 0 {
			return fmt.Errorf("%w: %s %d (zero means default)", ErrInvalidConfig, f.name, f.v)
		}
	}
	if c.Interval < 0 {
		return fmt.Errorf("%w: Interval %v (zero means manual stepping)", ErrInvalidConfig, c.Interval)
	}
	return nil
}

// DefaultConfig returns the documented defaults.
func DefaultConfig() Config {
	var c Config
	c.defaults()
	return c
}

func (c *Config) defaults() {
	if c.TopK <= 0 {
		c.TopK = 64
	}
	if c.HotThreshold == 0 {
		c.HotThreshold = 4
	}
	if c.PromoteAfter <= 0 {
		c.PromoteAfter = 2
	}
	if c.DemoteAfter <= 0 {
		c.DemoteAfter = 3
	}
	if c.Cooldown < 0 {
		c.Cooldown = 0
	} else if c.Cooldown == 0 {
		c.Cooldown = 2
	}
	if c.MaxActionsPerEpoch <= 0 {
		c.MaxActionsPerEpoch = 4
	}
}

// Target is what the tuner tunes: the adaptive index behind the serving
// engine. Support and Retire report whether they changed (published)
// anything; SupportedFUPs lists the currently supported FUPs.
type Target interface {
	Support(e *pathexpr.Expr) bool
	Retire(e *pathexpr.Expr) bool
	SupportedFUPs() []*pathexpr.Expr
}

// Action is a tuning decision kind.
type Action string

// The two actions a plan can contain.
const (
	ActionPromote Action = "promote"
	ActionRetire  Action = "retire"
)

// Decision is one planned (and, once executed, applied) tuning action.
type Decision struct {
	// Key is the canonical form of the expression.
	Key string
	// Expr is the expression itself.
	Expr *pathexpr.Expr
	// Action is what the tuner does about it.
	Action Action
	// Reason explains why, for operators (mrquery -stats) and tests.
	Reason string
	// Changed reports whether executing the decision published a new index
	// snapshot (false for no-op Supports/Retires).
	Changed bool
}

// Plan is the decision set of one epoch, exposed for observability.
type Plan struct {
	// Epoch is the tracker epoch the plan was computed at.
	Epoch uint64
	// Decisions in execution order: promotions (hottest first), then
	// retirements.
	Decisions []Decision
}
