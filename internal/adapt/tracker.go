package adapt

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mrx/internal/pathexpr"
)

// stackBufSize is the stack buffer used to render canonical keys on the
// observation hot path; expressions longer than this are rare and pay one
// allocation.
const stackBufSize = 128

// idleEvictEpochs is how many fully idle epochs an entry with a decayed-to-
// zero score survives before the tracker drops it.
const idleEvictEpochs = 2

// Tracker is a concurrent bounded-memory frequency sketch over canonical
// path expressions: a space-saving top-K summary with per-entry cost
// counters. Observe is the serving hot path — for an already tracked
// expression it takes a shared lock, probes one map keyed by an
// allocation-free canonical rendering, and bumps atomic counters; only the
// first observation of a new expression takes the exclusive slow path,
// which may evict the minimum-score entry (the space-saving step, which
// bounds memory at K entries while guaranteeing every expression with true
// frequency above the minimum is retained, with a per-entry overestimation
// bound Err).
//
// AdvanceEpoch applies exponential decay (score = score/2 + epoch hits), so
// paths that stop appearing age out; the caller (the Tuner) serializes it.
type Tracker struct {
	capacity int

	mu      sync.RWMutex
	entries map[string]*entry

	epoch     atomic.Uint64
	observed  atomic.Uint64
	evictions atomic.Uint64
}

// entry is one tracked expression. The per-epoch counters are atomics
// updated lock-free by observers; score/err and the eviction bookkeeping
// are only touched under the tracker's exclusive lock.
type entry struct {
	key  string
	expr *pathexpr.Expr

	epochHits atomic.Uint64
	latencyUS atomic.Uint64
	validated atomic.Uint64
	imprecise atomic.Uint64

	score      uint64
	err        uint64
	idleEpochs int
}

// score returns the space-saving count of e including the current epoch.
func (e *entry) liveScore() uint64 { return e.score + e.epochHits.Load() }

// NewTracker creates a tracker retaining at most capacity expressions.
func NewTracker(capacity int) *Tracker {
	if capacity <= 0 {
		capacity = 64
	}
	return &Tracker{capacity: capacity, entries: make(map[string]*entry, capacity)}
}

// Observe records one served query for e: its latency, the number of data
// nodes validated (the false-positive cost the paper's metric charges), and
// whether the answer was precise. It is safe for any number of concurrent
// callers and does not allocate when e is already tracked. The expression
// is retained by pointer on first observation; callers must treat observed
// expressions as immutable (every index in this repository already does).
//
//mrx:hotpath workload sketch probe on every served query; insert is the cold slow path
func (t *Tracker) Observe(e *pathexpr.Expr, d time.Duration, validated int, precise bool) {
	var buf [stackBufSize]byte
	var key []byte
	if n := pathexpr.CanonicalLen(e); n <= stackBufSize {
		key = pathexpr.AppendCanonical(buf[:0], e)
	} else {
		key = pathexpr.AppendCanonical(make([]byte, 0, n), e)
	}
	t.observed.Add(1)

	t.mu.RLock()
	en, ok := t.entries[string(key)] // zero-alloc map probe
	if ok {
		en.epochHits.Add(1)
		en.latencyUS.Add(uint64(d.Microseconds()))
		en.validated.Add(uint64(validated))
		if !precise {
			en.imprecise.Add(1)
		}
		t.mu.RUnlock()
		return
	}
	t.mu.RUnlock()
	t.insert(string(key), e, d, validated, precise)
}

// insert is the exclusive slow path: track a new expression, evicting the
// minimum-score entry when the sketch is full (space-saving: the newcomer
// inherits the evicted score as its overestimation bound).
//
//mrx:coldpath first-observation slow path: takes the exclusive lock and allocates the entry by design
func (t *Tracker) insert(key string, e *pathexpr.Expr, d time.Duration, validated int, precise bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	en, ok := t.entries[key]
	if !ok {
		en = &entry{key: key, expr: e}
		if len(t.entries) >= t.capacity {
			min := t.evictMinLocked()
			en.score = min
			en.err = min
		}
		t.entries[key] = en
	}
	en.epochHits.Add(1)
	en.latencyUS.Add(uint64(d.Microseconds()))
	en.validated.Add(uint64(validated))
	if !precise {
		en.imprecise.Add(1)
	}
}

// evictMinLocked removes the entry with the smallest live score and returns
// that score. Called with the exclusive lock held and a non-empty map.
func (t *Tracker) evictMinLocked() uint64 {
	var victim *entry
	var min uint64
	for _, en := range t.entries {
		if s := en.liveScore(); victim == nil || s < min {
			victim, min = en, s
		}
	}
	delete(t.entries, victim.key)
	t.evictions.Add(1)
	return min
}

// EntryStats is a point-in-time copy of one tracked expression's counters.
// From AdvanceEpoch the per-epoch fields cover the epoch just closed; from
// Top they cover the epoch so far.
type EntryStats struct {
	Key  string
	Expr *pathexpr.Expr
	// Score is the decayed space-saving count (recent epochs weigh most).
	Score uint64
	// Err bounds how much Score may overestimate the true count for this
	// expression (inherited from the entry it evicted; 0 when it never
	// displaced anyone).
	Err uint64
	// EpochHits, LatencyUS, Validated, Imprecise are per-epoch: queries
	// served, cumulative latency in microseconds, data nodes validated, and
	// queries that needed validation.
	EpochHits uint64
	LatencyUS uint64
	Validated uint64
	Imprecise uint64
}

// AdvanceEpoch closes the current epoch: per-epoch counters are drained,
// scores decay (score/2 + closed-epoch hits), entries that decayed to zero
// and stayed idle are dropped, and the closed epoch's stats are returned
// sorted by score descending (ties by key). The tuner serializes calls.
func (t *Tracker) AdvanceEpoch() []EntryStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.epoch.Add(1)
	out := make([]EntryStats, 0, len(t.entries))
	for key, en := range t.entries {
		hits := en.epochHits.Swap(0)
		en.score = en.score/2 + hits
		if hits == 0 {
			en.idleEpochs++
		} else {
			en.idleEpochs = 0
		}
		if en.score == 0 && en.idleEpochs >= idleEvictEpochs {
			delete(t.entries, key)
			continue
		}
		out = append(out, EntryStats{
			Key:       key,
			Expr:      en.expr,
			Score:     en.score,
			Err:       en.err,
			EpochHits: hits,
			LatencyUS: en.latencyUS.Swap(0),
			Validated: en.validated.Swap(0),
			Imprecise: en.imprecise.Swap(0),
		})
	}
	sortStats(out)
	return out
}

// Top returns a snapshot of the tracked expressions without closing the
// epoch, sorted by live score descending, for observability (Engine.Stats).
func (t *Tracker) Top() []EntryStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]EntryStats, 0, len(t.entries))
	for key, en := range t.entries {
		out = append(out, EntryStats{
			Key:       key,
			Expr:      en.expr,
			Score:     en.liveScore(),
			Err:       en.err,
			EpochHits: en.epochHits.Load(),
			LatencyUS: en.latencyUS.Load(),
			Validated: en.validated.Load(),
			Imprecise: en.imprecise.Load(),
		})
	}
	sortStats(out)
	return out
}

func sortStats(s []EntryStats) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Score != s[j].Score {
			return s[i].Score > s[j].Score
		}
		return s[i].Key < s[j].Key
	})
}

// Len returns the number of tracked expressions (≤ the capacity).
func (t *Tracker) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// Epoch returns the number of closed epochs.
func (t *Tracker) Epoch() uint64 { return t.epoch.Load() }

// Observed returns the total number of observations since creation.
func (t *Tracker) Observed() uint64 { return t.observed.Load() }

// Evictions returns how many entries space-saving displaced.
func (t *Tracker) Evictions() uint64 { return t.evictions.Load() }
