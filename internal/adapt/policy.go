package adapt

import (
	"fmt"

	"mrx/internal/pathexpr"
)

// policy turns tracker epochs into promotion/retirement decisions with
// hysteresis. It is stateful — streaks and cooldowns persist across epochs —
// and is driven solely by the tuner (no locking of its own).
type policy struct {
	cfg     Config
	streaks map[string]*streak
}

// streak is the per-expression hysteresis state.
type streak struct {
	// hot counts consecutive epochs at or above HotThreshold; cold counts
	// consecutive epochs at or below ColdThreshold while supported.
	hot, cold int
	// cooldown is how many more epochs this expression is exempt from
	// actions after the last one (oscillation damping).
	cooldown int
}

func newPolicy(cfg Config) *policy {
	return &policy{cfg: cfg, streaks: make(map[string]*streak)}
}

func (p *policy) streakOf(key string) *streak {
	s, ok := p.streaks[key]
	if !ok {
		s = &streak{}
		p.streaks[key] = s
	}
	return s
}

// supportable reports whether e is in the paper's FUP class: wildcard-free
// with a finite required resolution. Only those can be promoted.
func supportable(e *pathexpr.Expr) bool {
	return !e.HasWildcard() && e.RequiredK() != pathexpr.Unbounded
}

// decide computes the plan for the epoch just closed: stats are the
// tracker's closed-epoch entries (score-descending) and supported the FUPs
// the target currently maintains. It updates streaks and cooldowns.
func (p *policy) decide(epoch uint64, stats []EntryStats, supported []*pathexpr.Expr) Plan {
	supportedSet := make(map[string]*pathexpr.Expr, len(supported))
	for _, e := range supported {
		supportedSet[pathexpr.Canonical(e)] = e
	}

	seen := make(map[string]bool, len(stats))
	plan := Plan{Epoch: epoch}
	var promotions, retirements []Decision

	// Pass 1: tracked expressions — maintain hot streaks, emit promotions.
	// stats arrive hottest-first, so promotion priority follows score.
	for _, st := range stats {
		seen[st.Key] = true
		s := p.streakOf(st.Key)
		if st.EpochHits >= p.cfg.HotThreshold {
			s.hot++
		} else {
			s.hot = 0
		}
		_, isSupported := supportedSet[st.Key]
		if isSupported || s.hot < p.cfg.PromoteAfter {
			continue
		}
		if s.cooldown > 0 {
			continue // recently retired (or promoted): damp oscillation
		}
		if !supportable(st.Expr) {
			continue // wildcards / descendant axes are not FUPs
		}
		if st.Imprecise == 0 && st.Validated == 0 {
			// Every observed query was answered precisely: refinement would
			// buy nothing, whatever the frequency.
			continue
		}
		promotions = append(promotions, Decision{
			Key:    st.Key,
			Expr:   st.Expr,
			Action: ActionPromote,
			Reason: fmt.Sprintf("hot for %d epochs (%d hits, %d data nodes validated this epoch)",
				s.hot, st.EpochHits, st.Validated),
		})
	}

	// Pass 2: supported FUPs — maintain cold streaks, emit retirements. A
	// FUP absent from the tracker (evicted or never observed) is as cold as
	// an idle entry.
	byKey := make(map[string]EntryStats, len(stats))
	for _, st := range stats {
		byKey[st.Key] = st
	}
	for key, e := range supportedSet {
		s := p.streakOf(key)
		hits := byKey[key].EpochHits // zero when untracked
		if hits <= p.cfg.ColdThreshold {
			s.cold++
		} else {
			s.cold = 0
		}
		if s.cold < p.cfg.DemoteAfter || s.cooldown > 0 {
			continue
		}
		retirements = append(retirements, Decision{
			Key:    key,
			Expr:   e,
			Action: ActionRetire,
			Reason: fmt.Sprintf("cold for %d epochs (%d hits this epoch)", s.cold, hits),
		})
	}
	sortDecisions(retirements)

	// Tick cooldowns for everyone, then arm them for the acted-on keys, and
	// drop streak state for expressions that left both the tracker and the
	// supported set (bounded memory).
	for key, s := range p.streaks {
		if s.cooldown > 0 {
			s.cooldown--
		}
		if _, sup := supportedSet[key]; !sup && !seen[key] && s.cooldown == 0 {
			delete(p.streaks, key)
		}
	}

	plan.Decisions = append(promotions, retirements...)
	if len(plan.Decisions) > p.cfg.MaxActionsPerEpoch {
		plan.Decisions = plan.Decisions[:p.cfg.MaxActionsPerEpoch]
	}
	for _, d := range plan.Decisions {
		s := p.streakOf(d.Key)
		s.cooldown = p.cfg.Cooldown
		s.hot, s.cold = 0, 0
	}
	return plan
}

// sortDecisions orders a slice by key for deterministic plans (map order
// would otherwise leak into retirements).
func sortDecisions(ds []Decision) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j-1].Key > ds[j].Key; j-- {
			ds[j-1], ds[j] = ds[j], ds[j-1]
		}
	}
}
