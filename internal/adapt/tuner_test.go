package adapt

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mrx/internal/pathexpr"
)

// lockedTarget is a fakeTarget safe for the background goroutine.
type lockedTarget struct {
	mu sync.Mutex
	ft *fakeTarget
}

func (l *lockedTarget) Support(e *pathexpr.Expr) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ft.Support(e)
}

func (l *lockedTarget) Retire(e *pathexpr.Expr) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ft.Retire(e)
}

func (l *lockedTarget) SupportedFUPs() []*pathexpr.Expr {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ft.SupportedFUPs()
}

// TestBackgroundTunerPromotesAndCloseJoins: with a positive Interval the
// tuner steps itself; Close is idempotent and joins the loop.
func TestBackgroundTunerPromotesAndCloseJoins(t *testing.T) {
	cfg := testConfig()
	cfg.Interval = time.Millisecond
	lt := &lockedTarget{ft: newFakeTarget()}
	tu := NewTuner(lt, cfg)
	e := expr(t, "//a/b")

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		burst(tu, e, 6)
		lt.mu.Lock()
		promoted := lt.ft.promotes > 0
		lt.mu.Unlock()
		if promoted {
			break
		}
		time.Sleep(time.Millisecond)
	}
	tu.Close()
	tu.Close() // idempotent
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.ft.promotes == 0 {
		t.Fatal("background tuner never promoted a sustained-hot expression")
	}
	snap := tu.Snapshot()
	if snap.Epochs == 0 || snap.Promotions == 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestManualTunerNeedsNoClose: with Interval zero there is no goroutine,
// and Close is a harmless no-op.
func TestManualTunerNeedsNoClose(t *testing.T) {
	tu := NewTuner(newFakeTarget(), testConfig())
	tu.Step()
	tu.Close()
	if tu.Snapshot().Epochs != 1 {
		t.Fatal("manual Step did not advance the epoch")
	}
}

// TestSnapshotObservability: the snapshot carries the last plan with
// reasons, for mrquery -stats.
func TestSnapshotObservability(t *testing.T) {
	tgt := newFakeTarget()
	tu := NewTuner(tgt, testConfig())
	e := expr(t, "//a/b")
	burst(tu, e, 5)
	tu.Step()
	burst(tu, e, 5)
	tu.Step()
	snap := tu.Snapshot()
	if len(snap.LastPlan.Decisions) != 1 {
		t.Fatalf("last plan = %+v", snap.LastPlan)
	}
	d := snap.LastPlan.Decisions[0]
	if d.Action != ActionPromote || d.Reason == "" || !d.Changed || d.Key != "//a/b" {
		t.Fatalf("decision = %+v", d)
	}
}

// Validate must reject nonsensical knobs with ErrInvalidConfig and accept
// both the zero value and the documented negative-Cooldown disable.
func TestConfigValidate(t *testing.T) {
	bad := []struct {
		name string
		cfg  Config
	}{
		{"negative topk", Config{TopK: -1}},
		{"negative promote-after", Config{PromoteAfter: -2}},
		{"negative demote-after", Config{DemoteAfter: -1}},
		{"negative actions-per-epoch", Config{MaxActionsPerEpoch: -4}},
		{"negative interval", Config{Interval: -time.Second}},
	}
	for _, tc := range bad {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.cfg)
			continue
		}
		if !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("%s: error %v does not wrap ErrInvalidConfig", tc.name, err)
		}
	}
	for _, cfg := range []Config{{}, {Cooldown: -1}, DefaultConfig()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate rejected %+v: %v", cfg, err)
		}
	}
}
