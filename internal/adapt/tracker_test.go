package adapt

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mrx/internal/pathexpr"
)

func expr(t testing.TB, s string) *pathexpr.Expr {
	t.Helper()
	e, err := pathexpr.Parse(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return e
}

func TestTrackerCountsAndTop(t *testing.T) {
	tr := NewTracker(8)
	a, b := expr(t, "//a/b"), expr(t, "//c")
	for i := 0; i < 5; i++ {
		tr.Observe(a, 10*time.Microsecond, 3, false)
	}
	tr.Observe(b, time.Microsecond, 0, true)

	top := tr.Top()
	if len(top) != 2 || top[0].Key != "//a/b" || top[0].Score != 5 {
		t.Fatalf("top = %+v", top)
	}
	if top[0].Validated != 15 || top[0].Imprecise != 5 || top[0].LatencyUS != 50 {
		t.Errorf("counters = %+v", top[0])
	}
	if top[1].Imprecise != 0 || top[1].Validated != 0 {
		t.Errorf("precise query charged validation: %+v", top[1])
	}

	stats := tr.AdvanceEpoch()
	if len(stats) != 2 || stats[0].EpochHits != 5 || stats[0].Score != 5 {
		t.Fatalf("epoch stats = %+v", stats)
	}
	// Decay: an idle epoch halves the score.
	stats = tr.AdvanceEpoch()
	if stats[0].Score != 2 || stats[0].EpochHits != 0 {
		t.Fatalf("decayed stats = %+v", stats[0])
	}
}

// TestTrackerAgesOutStalePaths: entries whose score decays to zero are
// dropped after idleEvictEpochs fully idle epochs.
func TestTrackerAgesOutStalePaths(t *testing.T) {
	tr := NewTracker(8)
	tr.Observe(expr(t, "//a/b"), 0, 1, false)
	for i := 0; i < 6 && tr.Len() > 0; i++ {
		tr.AdvanceEpoch()
	}
	if tr.Len() != 0 {
		t.Fatalf("stale entry still tracked after decay: %+v", tr.Top())
	}
}

// TestTrackerAdversarialChurn cycles K+1 distinct hot paths through a
// K-entry tracker — the worst case for space-saving. Memory must stay
// bounded at K, every retained count must obey the overestimation bound
// (Score ≤ true count + Err), and the churn must be visible as evictions.
func TestTrackerAdversarialChurn(t *testing.T) {
	const k = 8
	tr := NewTracker(k)
	exprs := make([]*pathexpr.Expr, k+1)
	trueCount := make(map[string]uint64, k+1)
	for i := range exprs {
		exprs[i] = expr(t, fmt.Sprintf("//hot%d/x", i))
	}
	// Rounds of round-robin bursts: each path in turn gets a burst, evicting
	// whoever is currently the minimum.
	for round := 0; round < 50; round++ {
		for i, e := range exprs {
			for n := 0; n < 3; n++ {
				tr.Observe(e, time.Microsecond, 1, false)
				trueCount[fmt.Sprintf("//hot%d/x", i)]++
			}
			if tr.Len() > k {
				t.Fatalf("tracker grew past capacity: %d > %d", tr.Len(), k)
			}
		}
	}
	if tr.Evictions() == 0 {
		t.Fatal("churn caused no evictions")
	}
	for _, st := range tr.Top() {
		if st.Score > trueCount[st.Key]+st.Err {
			t.Errorf("%s: score %d exceeds true count %d + err %d",
				st.Key, st.Score, trueCount[st.Key], st.Err)
		}
	}
	// Epoch decay still ages the churned set out once traffic stops.
	for i := 0; i < 12 && tr.Len() > 0; i++ {
		tr.AdvanceEpoch()
	}
	if tr.Len() != 0 {
		t.Errorf("churned entries never aged out: %d left", tr.Len())
	}
}

// TestTrackerConcurrentObserve stresses 8 observer goroutines racing
// epoch advances and evictions; run under -race. Total observations must
// be conserved.
func TestTrackerConcurrentObserve(t *testing.T) {
	const goroutines = 8
	const perG = 2000
	tr := NewTracker(4) // small capacity forces constant eviction
	exprs := make([]*pathexpr.Expr, 10)
	for i := range exprs {
		exprs[i] = expr(t, fmt.Sprintf("//g%d/a/b", i))
	}
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tr.Observe(exprs[(gi+i)%len(exprs)], time.Microsecond, i%7, i%3 == 0)
			}
		}(gi)
	}
	wg.Add(1)
	go func() { // epoch advancer racing the observers
		defer wg.Done()
		for i := 0; i < 400; i++ {
			tr.AdvanceEpoch()
			tr.Top()
		}
	}()
	wg.Wait()
	if got := tr.Observed(); got != goroutines*perG {
		t.Fatalf("observed = %d, want %d", got, goroutines*perG)
	}
	if tr.Len() > 4 {
		t.Fatalf("capacity violated: %d", tr.Len())
	}
}

// TestObserveDoesNotAllocateWhenTracked pins the hot-path cost: observing
// an already tracked expression must not allocate.
func TestObserveDoesNotAllocateWhenTracked(t *testing.T) {
	tr := NewTracker(8)
	e := expr(t, "//open_auction/bidder/personref/person/name")
	tr.Observe(e, time.Microsecond, 0, true)
	if n := testing.AllocsPerRun(200, func() {
		tr.Observe(e, time.Microsecond, 2, false)
	}); n != 0 {
		t.Errorf("hot-path Observe allocates %v times per run, want 0", n)
	}
}
