package adapt

import (
	"testing"
	"time"

	"mrx/internal/pathexpr"
)

// fakeTarget implements Target over a plain map, recording every action.
type fakeTarget struct {
	supported map[string]*pathexpr.Expr
	promotes  int
	retires   int
}

func newFakeTarget() *fakeTarget {
	return &fakeTarget{supported: make(map[string]*pathexpr.Expr)}
}

func (f *fakeTarget) Support(e *pathexpr.Expr) bool {
	key := pathexpr.Canonical(e)
	if _, ok := f.supported[key]; ok {
		return false
	}
	f.supported[key] = e
	f.promotes++
	return true
}

func (f *fakeTarget) Retire(e *pathexpr.Expr) bool {
	key := pathexpr.Canonical(e)
	if _, ok := f.supported[key]; !ok {
		return false
	}
	delete(f.supported, key)
	f.retires++
	return true
}

func (f *fakeTarget) SupportedFUPs() []*pathexpr.Expr {
	var out []*pathexpr.Expr
	for _, e := range f.supported {
		out = append(out, e)
	}
	return out
}

func testConfig() Config {
	return Config{
		TopK:         8,
		HotThreshold: 3,
		PromoteAfter: 2,
		DemoteAfter:  2,
		Cooldown:     2,
	}
}

// burst feeds n observations of e with some validation cost (so promotion
// is justified).
func burst(tu *Tuner, e *pathexpr.Expr, n int) {
	for i := 0; i < n; i++ {
		tu.Observe(e, 5*time.Microsecond, 4, false)
	}
}

// TestPromotionNeedsSustainedHeat: one hot epoch is not enough; PromoteAfter
// consecutive ones are.
func TestPromotionNeedsSustainedHeat(t *testing.T) {
	tgt := newFakeTarget()
	tu := NewTuner(tgt, testConfig())
	e := expr(t, "//a/b/c")

	burst(tu, e, 5)
	if plan := tu.Step(); len(plan.Decisions) != 0 {
		t.Fatalf("promoted after one hot epoch: %+v", plan.Decisions)
	}
	burst(tu, e, 5)
	plan := tu.Step()
	if len(plan.Decisions) != 1 || plan.Decisions[0].Action != ActionPromote || !plan.Decisions[0].Changed {
		t.Fatalf("second hot epoch should promote: %+v", plan.Decisions)
	}
	if tgt.promotes != 1 {
		t.Fatalf("promotes = %d", tgt.promotes)
	}
	// An interrupted streak starts over. (The earlier FUP may legitimately
	// be retired along the way; only //x/y's fate matters here.)
	e2 := expr(t, "//x/y")
	burst(tu, e2, 5)
	tu.Step()
	tu.Step() // idle epoch: streak broken
	burst(tu, e2, 5)
	for _, d := range tu.Step().Decisions {
		if d.Key == "//x/y" {
			t.Fatalf("broken streak still promoted: %+v", d)
		}
	}
}

// TestPreciseTrafficNotPromoted: frequency without observed validation cost
// does not justify refinement.
func TestPreciseTrafficNotPromoted(t *testing.T) {
	tgt := newFakeTarget()
	tu := NewTuner(tgt, testConfig())
	e := expr(t, "//a")
	for epoch := 0; epoch < 4; epoch++ {
		for i := 0; i < 10; i++ {
			tu.Observe(e, time.Microsecond, 0, true) // precise, no validation
		}
		if plan := tu.Step(); len(plan.Decisions) != 0 {
			t.Fatalf("precise-only traffic promoted: %+v", plan.Decisions)
		}
	}
}

// TestUnsupportableNeverPromoted: wildcard and descendant-axis expressions
// are outside the FUP class.
func TestUnsupportableNeverPromoted(t *testing.T) {
	tgt := newFakeTarget()
	tu := NewTuner(tgt, testConfig())
	for _, s := range []string{"//a/*/b", "//a//b"} {
		e := expr(t, s)
		for epoch := 0; epoch < 4; epoch++ {
			burst(tu, e, 6)
			if plan := tu.Step(); len(plan.Decisions) != 0 {
				t.Fatalf("%s promoted: %+v", s, plan.Decisions)
			}
		}
	}
}

// TestDemotionAfterColdEpochs: a supported FUP that goes idle is retired
// after DemoteAfter cold epochs, not sooner.
func TestDemotionAfterColdEpochs(t *testing.T) {
	tgt := newFakeTarget()
	tu := NewTuner(tgt, testConfig())
	e := expr(t, "//a/b")

	burst(tu, e, 5)
	tu.Step()
	burst(tu, e, 5)
	if p := tu.Step(); len(p.Decisions) != 1 || p.Decisions[0].Action != ActionPromote {
		t.Fatalf("setup promotion failed: %+v", p.Decisions)
	}

	// Cooldown (2) exempts the fresh FUP from cold accounting actions; then
	// DemoteAfter (2) cold epochs must elapse.
	var retired bool
	var epochs int
	for i := 0; i < 10 && !retired; i++ {
		epochs++
		for _, d := range tu.Step().Decisions {
			if d.Action == ActionRetire && d.Key == "//a/b" {
				retired = true
			}
		}
	}
	if !retired {
		t.Fatal("idle FUP never retired")
	}
	if epochs < 2 {
		t.Fatalf("retired after %d idle epochs, want >= DemoteAfter", epochs)
	}
	if tgt.retires != 1 || len(tgt.supported) != 0 {
		t.Fatalf("target state after retire: %+v", tgt.supported)
	}
}

// TestOscillationDamping drives the pathological alternating workload —
// hot for a burst, silent, hot again — and asserts hysteresis plus cooldown
// keep the flip rate far below the drift rate of the traffic.
func TestOscillationDamping(t *testing.T) {
	tgt := newFakeTarget()
	tu := NewTuner(tgt, testConfig())
	e := expr(t, "//flap/py")

	const epochs = 40
	for i := 0; i < epochs; i++ {
		if i%2 == 0 { // hot on even epochs, silent on odd ones
			burst(tu, e, 6)
		}
		tu.Step()
	}
	flips := tgt.promotes + tgt.retires
	// A period-2 flapping signal never sustains PromoteAfter=2 consecutive
	// hot epochs nor DemoteAfter=2 cold ones once promoted, so the damped
	// tuner should do (close to) nothing. Allow a little slack for edge
	// alignment but fail hard if it churned.
	if flips > 2 {
		t.Fatalf("alternating workload caused %d promote/retire flips over %d epochs (promotes=%d retires=%d)",
			flips, epochs, tgt.promotes, tgt.retires)
	}

	// Slower flapping (4 hot, 4 cold) does act, but cooldown bounds the
	// rate: each full cycle is 8 epochs and each action arms a cooldown, so
	// flips cannot exceed one action per 4 epochs.
	tgt2 := newFakeTarget()
	tu2 := NewTuner(tgt2, testConfig())
	for i := 0; i < epochs; i++ {
		if i%8 < 4 {
			burst(tu2, e, 6)
		}
		tu2.Step()
	}
	flips2 := tgt2.promotes + tgt2.retires
	if flips2 == 0 {
		t.Fatal("slow drift never acted on: hysteresis too strong")
	}
	if flips2 > epochs/4 {
		t.Fatalf("slow flapping churned: %d flips over %d epochs", flips2, epochs)
	}
}

// TestPromoteRetirePromote: after a retirement, renewed sustained heat
// re-promotes — but only once the cooldown has expired.
func TestPromoteRetirePromote(t *testing.T) {
	tgt := newFakeTarget()
	tu := NewTuner(tgt, testConfig())
	e := expr(t, "//a/b")

	// Promote.
	burst(tu, e, 5)
	tu.Step()
	burst(tu, e, 5)
	tu.Step()
	if len(tgt.supported) != 1 {
		t.Fatal("setup promotion failed")
	}
	// Go cold until retired.
	for i := 0; i < 10 && len(tgt.supported) > 0; i++ {
		tu.Step()
	}
	if len(tgt.supported) != 0 {
		t.Fatal("never retired")
	}
	// Immediately hot again: cooldown must delay the re-promotion by at
	// least Cooldown epochs beyond the plain PromoteAfter streak.
	var epochsToRepromote int
	for i := 0; i < 12 && len(tgt.supported) == 0; i++ {
		burst(tu, e, 6)
		tu.Step()
		epochsToRepromote++
	}
	if len(tgt.supported) != 1 {
		t.Fatal("renewed heat never re-promoted")
	}
	if epochsToRepromote < 2 {
		t.Fatalf("re-promoted after %d epochs, want >= PromoteAfter", epochsToRepromote)
	}
	if tgt.promotes != 2 || tgt.retires != 1 {
		t.Fatalf("promotes=%d retires=%d", tgt.promotes, tgt.retires)
	}
}

// TestMaxActionsPerEpoch bounds plan size.
func TestMaxActionsPerEpoch(t *testing.T) {
	cfg := testConfig()
	cfg.MaxActionsPerEpoch = 2
	tgt := newFakeTarget()
	tu := NewTuner(tgt, cfg)
	var exprs []*pathexpr.Expr
	for _, s := range []string{"//a/b", "//c/d", "//e/f", "//g/h", "//i/j"} {
		exprs = append(exprs, expr(t, s))
	}
	for epoch := 0; epoch < 2; epoch++ {
		for _, e := range exprs {
			burst(tu, e, 5)
		}
		plan := tu.Step()
		if len(plan.Decisions) > 2 {
			t.Fatalf("plan exceeded MaxActionsPerEpoch: %+v", plan.Decisions)
		}
	}
	if tgt.promotes > 2 {
		t.Fatalf("promotes = %d, want <= 2", tgt.promotes)
	}
}
