package analysis

import (
	"encoding/json"
	"path/filepath"
	"testing"
)

const testdata = "testdata/src"

func TestNoPanic(t *testing.T) {
	RunTest(t, testdata, "nopanic", NoPanic())
}

func TestNoPanicMainExempt(t *testing.T) {
	l := NewLoader(testdata, "")
	pkg, err := l.Load("nopanicmain")
	if err != nil {
		t.Fatal(err)
	}
	if fs := Run([]*Package{pkg}, []*Analyzer{NoPanic(), NoLeak()}); len(fs) != 0 {
		t.Errorf("package main should be exempt from nopanic/noleak, got %v", fs)
	}
}

func TestAtomicDiscipline(t *testing.T) {
	RunTest(t, testdata, "atomicdiscipline", AtomicDiscipline())
}

func TestSnapshotMut(t *testing.T) {
	RunTest(t, testdata, "snapshotmut", SnapshotMut(map[string][]string{"frozen": nil}))
}

func TestSnapshotMutOwnerClean(t *testing.T) {
	// The owning package itself may write its fields freely.
	l := NewLoader(testdata, "")
	pkg, err := l.Load("frozen")
	if err != nil {
		t.Fatal(err)
	}
	a := SnapshotMut(map[string][]string{"frozen": nil})
	if fs := Run([]*Package{pkg}, []*Analyzer{a}); len(fs) != 0 {
		t.Errorf("owner writes should pass, got %v", fs)
	}
}

func TestSnapshotMutAllowedWriter(t *testing.T) {
	l := NewLoader(testdata, "")
	pkg, err := l.Load("snapshotwriter")
	if err != nil {
		t.Fatal(err)
	}
	strict := SnapshotMut(map[string][]string{"frozen": nil})
	if fs := Run([]*Package{pkg}, []*Analyzer{strict}); len(fs) == 0 {
		t.Errorf("unlisted writer should be flagged")
	}
	relaxed := SnapshotMut(map[string][]string{"frozen": {"snapshotwriter"}})
	if fs := Run([]*Package{pkg}, []*Analyzer{relaxed}); len(fs) != 0 {
		t.Errorf("allowed writer should pass, got %v", fs)
	}
}

func TestErrWrap(t *testing.T) {
	RunTest(t, testdata, "errwrap", ErrWrap(ErrWrapConfig{
		Packages:     map[string]string{"errwrap": "store: "},
		ReadPrefixes: DefaultReadPrefixes,
	}))
}

func TestErrWrapScopedToConfiguredPackages(t *testing.T) {
	// The same sources under a config that does not cover the package
	// produce nothing: errwrap is a per-package convention.
	l := NewLoader(testdata, "")
	pkg, err := l.Load("errwrap")
	if err != nil {
		t.Fatal(err)
	}
	a := ErrWrap(ErrWrapConfig{Packages: map[string]string{"other": "other: "}, ReadPrefixes: DefaultReadPrefixes})
	if fs := Run([]*Package{pkg}, []*Analyzer{a}); len(fs) != 0 {
		t.Errorf("uncovered package should pass, got %v", fs)
	}
}

func TestNoLeak(t *testing.T) {
	RunTest(t, testdata, "noleak", NoLeak())
}

func TestSuppressionRequiresCorrectAnalyzerName(t *testing.T) {
	// The nopanic testdata includes a site annotated with the wrong
	// analyzer name and a // want expectation proving the finding survives;
	// here we additionally pin the counts: exactly two unsuppressed panics.
	l := NewLoader(testdata, "")
	pkg, err := l.Load("nopanic")
	if err != nil {
		t.Fatal(err)
	}
	fs := Run([]*Package{pkg}, []*Analyzer{NoPanic()})
	if len(fs) != 2 {
		t.Fatalf("want 2 surviving findings (suppressed sites must not report), got %d: %v", len(fs), fs)
	}
}

func TestFindingJSONSchema(t *testing.T) {
	f := Finding{File: filepath.Join("a", "b.go"), Line: 3, Col: 7, Analyzer: "nopanic", Message: "m"}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"file", "line", "col", "analyzer", "message"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("JSON output missing key %q in %s", key, data)
		}
	}
}
