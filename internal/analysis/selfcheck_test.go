package analysis

import (
	"testing"
)

// TestModuleIsClean runs the full default analyzer suite over every package
// in the repository — the same work `make lint` does — and requires zero
// findings. Any convention violation introduced anywhere in the module turns
// this test (and CI) red.
func TestModuleIsClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	module, err := ModulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader(root, module).LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("expected to load the whole module, got only %d packages", len(pkgs))
	}
	findings := Run(pkgs, DefaultAnalyzers())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Errorf("%d unsuppressed findings; fix them or annotate with //mrlint:allow <analyzer> <reason>", len(findings))
	}
}
