package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Lifecycle returns the interprocedural analyzer pairing resource acquires
// with their releases across function boundaries.
//
// noleak (which Lifecycle strengthens, and whose goroutine checks stay in
// force) looks at one spawn site at a time; the leaks that actually bite —
// the tuner's epoch loop, the proxy's per-connection shuttles, the
// coalescer's flight cancellation — pair an acquire in one function with a
// release in another. Lifecycle checks three such pairings module-wide:
//
//   - sync.WaitGroup.Add must have a matching Done on the same WaitGroup.
//     "Same" is resolved interprocedurally: a WaitGroup (or pointer to one)
//     passed as a call argument aliases the callee's parameter, so
//     `wg.Add(1); go worker(&wg)` pairs with worker's `defer wg.Done()`.
//     Struct-field WaitGroups are matched per field (all instances of the
//     type share one identity) — coarse, but sound for leak detection.
//   - time.NewTicker / time.NewTimer results must be stopped: a Stop
//     reference in the creating function, or — when the value is stored in
//     a struct field — a module-wide <x>.field.Stop; a value handed off
//     whole (argument, return, plain assignment) is trusted to its new
//     owner. Bare time.After is reported outright in library code: its
//     timer cannot be stopped and lingers until it fires.
//   - the cancel function of context.WithCancel/WithTimeout/WithDeadline
//     must be retained and used: discarding it with _ or never referencing
//     it leaks the context's resources; storing it in a struct field is
//     accepted only if some function in the module invokes that field.
//
// Commands (package main) are exempt — a command's lifetime is the
// process's. Findings are silenced with //mrlint:allow lifecycle <reason>.
func Lifecycle() *Analyzer {
	return &Analyzer{
		Name: "lifecycle",
		Doc:  "acquire/release pairing across functions: WaitGroup Add→Done, ticker/timer Stop, context cancel retention",
		Run:  runLifecycle,
	}
}

func runLifecycle(pass *Pass) {
	for _, f := range lifecycleScan(pass.Module).findings {
		if f.pkg == pass.Pkg {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
}

// lcFinding is one module-scan finding, tagged with the package that must
// report it (each Pass emits only its own package's findings).
type lcFinding struct {
	pkg *Package
	pos token.Pos
	msg string
}

type lcResult struct {
	findings []lcFinding
}

// lifecycleScan runs the module-wide scan once per Run, shared by every
// lifecycle pass through the module memo.
func lifecycleScan(mod *Module) *lcResult {
	return mod.Memo("lifecycle.scan", func() any {
		s := &lcScan{
			mod:          mod,
			uf:           make(map[types.Object]types.Object),
			doneObjs:     make(map[types.Object]bool),
			fieldStops:   make(map[types.Object]bool),
			fieldInvokes: make(map[types.Object]bool),
		}
		for _, pkg := range mod.Pkgs {
			if pkg.Types.Name() == "main" {
				continue
			}
			for _, f := range pkg.Files {
				for _, d := range f.Decls {
					if decl, ok := d.(*ast.FuncDecl); ok && decl.Body != nil {
						s.scanFunc(pkg, decl)
					}
				}
			}
		}
		s.finish()
		return &s.res
	}).(*lcResult)
}

// lcSite is an acquire site whose verdict is deferred to finish.
type lcSite struct {
	pkg *Package
	pos token.Pos
	obj types.Object
	msg string
}

// lcScan accumulates module-wide lifecycle facts before matching them.
type lcScan struct {
	mod *Module
	res lcResult

	// WaitGroup pairing: union-find over WaitGroup objects (locals, params,
	// fields), aliased through call arguments; Add sites are judged against
	// the union classes once the whole module has been scanned.
	uf       map[types.Object]types.Object
	addSites []lcSite
	doneObjs map[types.Object]bool

	// Field-mediated releases observed anywhere in the module, and the
	// acquire sites waiting on them.
	fieldStops    map[types.Object]bool // fields with a <x>.field.Stop reference
	fieldInvokes  map[types.Object]bool // func-typed fields used outside a store
	pendingTicker []lcSite
	pendingCancel []lcSite
}

func (s *lcScan) report(pkg *Package, pos token.Pos, msg string) {
	s.res.findings = append(s.res.findings, lcFinding{pkg: pkg, pos: pos, msg: msg})
}

func (s *lcScan) find(o types.Object) types.Object {
	for s.uf[o] != nil && s.uf[o] != o {
		o = s.uf[o]
	}
	return o
}

func (s *lcScan) union(a, b types.Object) {
	if a == nil || b == nil {
		return
	}
	ra, rb := s.find(a), s.find(b)
	if ra != rb {
		s.uf[ra] = rb
	}
}

// tickerLocal / cancelLocal are per-function acquire records resolved after
// the function's body has been fully walked.
type tickerLocal struct {
	obj  types.Object
	pos  token.Pos
	what string // "time.NewTicker" / "time.NewTimer"
}

type cancelLocal struct {
	obj  types.Object
	id   *ast.Ident // the defining ident, excluded from use counting
	pos  token.Pos
	what string // "context.WithCancel" etc.
}

func (s *lcScan) scanFunc(pkg *Package, decl *ast.FuncDecl) {
	info := pkg.Info
	cg := s.mod.CallGraph()

	parents := nodeParents(decl.Body)

	var tickers []tickerLocal
	var cancels []cancelLocal
	stopRefs := make(map[types.Object]bool)  // v.Stop seen on local/param v
	selBase := make(map[*ast.Ident]bool)     // idents that are the X of a selector
	lhsIdents := make(map[*ast.Ident]bool)   // idents assigned to (any AssignStmt LHS)

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := unparen(n.X).(*ast.Ident); ok {
				selBase[id] = true
			}
			if n.Sel.Name == "Stop" {
				switch base := unparen(n.X).(type) {
				case *ast.Ident:
					if obj := objFor(info, base); obj != nil {
						stopRefs[obj] = true
					}
				case *ast.SelectorExpr:
					if fobj, ok := info.Uses[base.Sel].(*types.Var); ok {
						s.fieldStops[fobj] = true
					}
				}
			}
			// A func-typed field referenced anywhere but an assignment target
			// counts as a potential invocation (call, defer, handed off).
			if v, ok := info.Uses[n.Sel].(*types.Var); ok && v.IsField() {
				if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc && !isAssignTarget(parents, n) {
					s.fieldInvokes[v] = true
				}
			}

		case *ast.CallExpr:
			s.scanCall(pkg, info, cg, n)

		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					lhsIdents[id] = true
				}
			}
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, fname := range [...]string{"NewTicker", "NewTimer"} {
				if isPkgFunc(info, call.Fun, "time", fname) && len(n.Lhs) == 1 {
					s.recordTimerAcquire(pkg, info, n.Lhs[0], call.Pos(), "time."+fname, &tickers)
				}
			}
			for _, fname := range [...]string{"WithCancel", "WithTimeout", "WithDeadline"} {
				if isPkgFunc(info, call.Fun, "context", fname) && len(n.Lhs) == 2 {
					s.recordCancelAcquire(pkg, info, n.Lhs[1], call.Pos(), "context."+fname, &cancels)
				}
			}
		}
		return true
	})

	// Judge this function's local ticker/timer and cancel acquires now that
	// every reference in the body has been seen.
	for _, t := range tickers {
		if stopRefs[t.obj] {
			continue
		}
		if escapes(info, decl.Body, t.obj, selBase, lhsIdents) {
			continue // handed off whole; the new owner is responsible
		}
		s.report(pkg, t.pos, t.what+" result "+t.obj.Name()+" is never stopped and never handed off; call Stop (usually deferred)")
	}
	for _, c := range cancels {
		s.judgeCancel(pkg, info, decl.Body, parents, c)
	}
}

// scanCall handles one call expression: WaitGroup method sites, WaitGroup
// argument aliasing, and the time.After ban.
func (s *lcScan) scanCall(pkg *Package, info *types.Info, cg *CallGraph, call *ast.CallExpr) {
	if isPkgFunc(info, call.Fun, "time", "After") {
		s.report(pkg, call.Pos(), "time.After leaks its timer until it fires; use time.NewTimer with a deferred Stop")
	}

	// WaitGroup method call?
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if m, ok := info.Uses[sel.Sel].(*types.Func); ok && m.Pkg() != nil && m.Pkg().Path() == "sync" {
			if recv := m.Type().(*types.Signature).Recv(); recv != nil && isJoinType(recv.Type()) {
				base := refObj(info, sel.X)
				switch m.Name() {
				case "Add":
					if base != nil {
						s.addSites = append(s.addSites, lcSite{pkg: pkg, pos: call.Pos(), obj: base})
					}
				case "Done":
					if base != nil {
						s.doneObjs[base] = true
					}
				}
			}
		}
	}

	// Alias WaitGroup arguments to the callee's parameters, for static
	// callees with a declaration in the module and directly invoked literals.
	var params []types.Object
	switch fun := unwrapCallee(call.Fun).(type) {
	case *ast.FuncLit:
		params = fieldListObjs(info, fun.Type.Params)
	default:
		var obj types.Object
		switch fun := fun.(type) {
		case *ast.Ident:
			obj = info.Uses[fun]
		case *ast.SelectorExpr:
			obj = info.Uses[fun.Sel]
		}
		fn, ok := obj.(*types.Func)
		if !ok {
			return
		}
		node := cg.Node(fn)
		if node == nil || node.Decl == nil {
			return
		}
		params = fieldListObjs(node.Pkg.Info, node.Decl.Type.Params)
	}
	for i, arg := range call.Args {
		if i >= len(params) || params[i] == nil {
			continue
		}
		at := typeOf(info, arg)
		if at == nil || !isJoinType(at) || !isJoinType(params[i].Type()) {
			continue
		}
		s.union(refObj(info, arg), params[i])
	}
}

// recordTimerAcquire classifies the assignment target of a NewTicker/NewTimer.
func (s *lcScan) recordTimerAcquire(pkg *Package, info *types.Info, lhs ast.Expr, pos token.Pos, what string, tickers *[]tickerLocal) {
	switch lhs := unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			s.report(pkg, pos, what+" result is discarded; its goroutine and channel are never stopped")
			return
		}
		if obj := objFor(info, lhs); obj != nil {
			*tickers = append(*tickers, tickerLocal{obj: obj, pos: pos, what: what})
		}
	case *ast.SelectorExpr:
		if fobj, ok := info.Uses[lhs.Sel].(*types.Var); ok && fobj.IsField() {
			s.pendingTicker = append(s.pendingTicker, lcSite{
				pkg: pkg, pos: pos, obj: fobj,
				msg: what + " stored in field " + fobj.Name() + " is never stopped anywhere in the module (no ." + fobj.Name() + ".Stop)",
			})
		}
	}
}

// recordCancelAcquire classifies the cancel-function target of a
// context.WithCancel/WithTimeout/WithDeadline assignment.
func (s *lcScan) recordCancelAcquire(pkg *Package, info *types.Info, lhs ast.Expr, pos token.Pos, what string, cancels *[]cancelLocal) {
	switch lhs := unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			s.report(pkg, pos, what+" cancel function is discarded; it must be called to release the context's resources")
			return
		}
		if obj := objFor(info, lhs); obj != nil {
			*cancels = append(*cancels, cancelLocal{obj: obj, id: lhs, pos: pos, what: what})
		}
	case *ast.SelectorExpr:
		if fobj, ok := info.Uses[lhs.Sel].(*types.Var); ok && fobj.IsField() {
			s.pendingCancel = append(s.pendingCancel, lcSite{
				pkg: pkg, pos: pos, obj: fobj,
				msg: what + " cancel function stored in field " + fobj.Name() + " is never invoked anywhere in the module",
			})
		}
	}
}

// judgeCancel decides one local cancel variable: unused, used directly, or
// stored into fields (which defers the verdict to the module-wide scan).
func (s *lcScan) judgeCancel(pkg *Package, info *types.Info, body *ast.BlockStmt, parents map[ast.Node]ast.Node, c cancelLocal) {
	direct := false
	var fields []types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id == c.id || info.Uses[id] != c.obj {
			return true
		}
		if isBlankAssign(parents, id) {
			return true // `_ = cancel` silences the compiler, not the leak
		}
		if fobj := storedField(info, parents, id); fobj != nil {
			fields = append(fields, fobj)
		} else {
			direct = true // called, deferred, passed or returned
		}
		return true
	})
	switch {
	case direct:
		return
	case len(fields) == 0:
		s.report(pkg, c.pos, c.what+" cancel function "+c.obj.Name()+" is never used; call it (usually deferred) or the context's resources leak")
	default:
		for _, fobj := range fields {
			s.pendingCancel = append(s.pendingCancel, lcSite{
				pkg: pkg, pos: c.pos, obj: fobj,
				msg: c.what + " cancel function stored in field " + fobj.Name() + " is never invoked anywhere in the module",
			})
		}
	}
}

// isBlankAssign reports whether id's use is the RHS of an assignment to _.
func isBlankAssign(parents map[ast.Node]ast.Node, id *ast.Ident) bool {
	a, ok := parents[id].(*ast.AssignStmt)
	if !ok {
		return false
	}
	for i, rhs := range a.Rhs {
		if rhs != ast.Expr(id) || i >= len(a.Lhs) {
			continue
		}
		if l, ok := a.Lhs[i].(*ast.Ident); ok && l.Name == "_" {
			return true
		}
	}
	return false
}

// storedField returns the struct field object id is stored into, if its use
// is a store: the value of a struct-literal key/value pair, or the RHS of an
// assignment whose matching LHS is a field selector. Any other use is direct.
func storedField(info *types.Info, parents map[ast.Node]ast.Node, id *ast.Ident) *types.Var {
	switch p := parents[id].(type) {
	case *ast.KeyValueExpr:
		if p.Value != ast.Expr(id) {
			return nil
		}
		key, ok := p.Key.(*ast.Ident)
		if !ok {
			return nil
		}
		if fobj, ok := info.Uses[key].(*types.Var); ok && fobj.IsField() {
			return fobj
		}
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if rhs != ast.Expr(id) || i >= len(p.Lhs) {
				continue
			}
			if sel, ok := unwrapLValue(p.Lhs[i]).(*ast.SelectorExpr); ok {
				if fobj, ok := info.Uses[sel.Sel].(*types.Var); ok && fobj.IsField() {
					return fobj
				}
			}
		}
	}
	return nil
}

// finish matches the accumulated acquire sites against the module-wide
// release facts.
func (s *lcScan) finish() {
	doneRoots := make(map[types.Object]bool, len(s.doneObjs))
	for obj := range s.doneObjs {
		doneRoots[s.find(obj)] = true
	}
	for _, site := range s.addSites {
		if !doneRoots[s.find(site.obj)] {
			s.report(site.pkg, site.pos, "sync.WaitGroup.Add has no matching Done on the same WaitGroup anywhere in the module (checked through argument aliasing); Wait would block forever")
		}
	}
	for _, site := range s.pendingTicker {
		if !s.fieldStops[site.obj] {
			s.report(site.pkg, site.pos, site.msg)
		}
	}
	for _, site := range s.pendingCancel {
		if !s.fieldInvokes[site.obj] {
			s.report(site.pkg, site.pos, site.msg)
		}
	}
}

// escapes reports whether obj is used in body other than as the base of a
// selector or an assignment target: passed as an argument, returned, or
// re-assigned whole — in which case responsibility moves with the value.
func escapes(info *types.Info, body *ast.BlockStmt, obj types.Object, selBase, lhsIdents map[*ast.Ident]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj && !selBase[id] && !lhsIdents[id] {
			found = true
		}
		return true
	})
	return found
}

// isAssignTarget reports whether n is (inside) the LHS of an assignment.
func isAssignTarget(parents map[ast.Node]ast.Node, n ast.Node) bool {
	for cur := n; cur != nil; cur = parents[cur] {
		a, ok := parents[cur].(*ast.AssignStmt)
		if !ok {
			continue
		}
		for _, lhs := range a.Lhs {
			if containsNode(lhs, cur) {
				return true
			}
		}
	}
	return false
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// nodeParents builds a child -> parent map for every node under root.
func nodeParents(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// objFor resolves an ident to its object whether it defines (:=) or uses (=)
// the variable.
func objFor(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// refObj returns the root object an expression refers to, unwrapping parens,
// address-of, dereference and indexing: &p.wg resolves to the wg field object,
// wg to the local. Returns nil for expressions with no stable identity.
func refObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			return objFor(info, x)
		case *ast.SelectorExpr:
			return info.Uses[x.Sel]
		default:
			return nil
		}
	}
}

// fieldListObjs flattens a parameter list to positional objects; an unnamed
// parameter contributes a nil placeholder to keep positions aligned.
func fieldListObjs(info *types.Info, params *ast.FieldList) []types.Object {
	if params == nil {
		return nil
	}
	var objs []types.Object
	for _, field := range params.List {
		if len(field.Names) == 0 {
			objs = append(objs, nil)
			continue
		}
		for _, name := range field.Names {
			objs = append(objs, info.Defs[name])
		}
	}
	return objs
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
