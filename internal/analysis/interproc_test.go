package analysis

import (
	"go/types"
	"strings"
	"testing"
)

func TestHotPathAlloc(t *testing.T) {
	RunTest(t, testdata, "hotpathalloc", HotPathAlloc())
}

func TestCtxFlow(t *testing.T) {
	RunTest(t, testdata, "ctxflow", CtxFlow())
}

func TestLifecycle(t *testing.T) {
	RunTestPkgs(t, testdata, []string{"lifecycle", "lifecycle/waitutil"}, Lifecycle())
}

// TestGenerics runs all three interprocedural analyzers over generic code:
// instantiations must resolve without crashing, and the closure must include
// origin declarations reached through instantiated calls.
func TestGenerics(t *testing.T) {
	RunTest(t, testdata, "generics", HotPathAlloc(), CtxFlow(), Lifecycle())
}

// TestFuncDirectives pins the //mrx: attachment rules: doc-comment directives
// register the function, anything floating is misplaced.
func TestFuncDirectives(t *testing.T) {
	l := NewLoader(testdata, "")
	pkg, err := l.Load("hotpathalloc")
	if err != nil {
		t.Fatal(err)
	}
	fd, bad := parseFuncDirectives(pkg)
	if len(bad) != 0 {
		t.Fatalf("unexpected directive findings: %v", bad)
	}
	var hotNames, coldNames []string
	for fn := range fd.hot {
		hotNames = append(hotNames, fn.Name())
	}
	for fn := range fd.cold {
		coldNames = append(coldNames, fn.Name())
	}
	if len(hotNames) != 9 {
		t.Errorf("want 9 hot roots in hotpathalloc testdata, got %v", hotNames)
	}
	if len(coldNames) != 1 || coldNames[0] != "expensive" {
		t.Errorf("want exactly expensive as cold boundary, got %v", coldNames)
	}
	if note := fd.hot[hotOrigin(t, fd)]; note != "the frozen read path archetype" {
		t.Errorf("hot note not preserved: %q", note)
	}
}

func hotOrigin(t *testing.T, fd funcDirectives) *types.Func {
	t.Helper()
	for f := range fd.hot {
		if f.Name() == "Hot" {
			return f
		}
	}
	t.Fatal("Hot root not parsed")
	return nil
}

// TestRunDeterministicParallel runs the full default suite repeatedly over the
// same module view: the parallel (package × analyzer) execution must produce
// byte-identical, sorted output every time. Under -race this also proves the
// shared call graph and memo table are race-clean.
func TestRunDeterministicParallel(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	module, err := ModulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader(root, module).LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	render := func(fs []Finding) string {
		var sb strings.Builder
		for _, f := range fs {
			sb.WriteString(f.String())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	base := render(Run(pkgs, DefaultAnalyzers()))
	for i := 0; i < 3; i++ {
		if got := render(Run(pkgs, DefaultAnalyzers())); got != base {
			t.Fatalf("run %d differs:\n--- first\n%s--- now\n%s", i, base, got)
		}
	}
}

// TestModuleMemoSharing: the same key computes once, different keys don't
// collide.
func TestModuleMemo(t *testing.T) {
	mod := NewModule(nil)
	calls := 0
	for i := 0; i < 4; i++ {
		v := mod.Memo("k", func() any { calls++; return 42 }).(int)
		if v != 42 {
			t.Fatalf("memo returned %v", v)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if v := mod.Memo("other", func() any { return 7 }).(int); v != 7 {
		t.Fatalf("different key collided: %v", v)
	}
}

// FuzzDirectives fuzzes both comment-directive parsers: whatever the input,
// they must not panic and must keep their contracts — an allow directive
// never yields empty analyzer names, a malformed one suppresses nothing, a
// coldpath without a reason is always a problem.
func FuzzDirectives(f *testing.F) {
	for _, seed := range []string{
		"//mrlint:allow nopanic internal invariant, unreachable on valid input",
		"//mrlint:allow nopanic,noleak multi-analyzer reason",
		"//mrlint:allow",
		"//mrlint:allow nopanic",
		"//mrlint:allow , dangling comma",
		"//mrlint:allow ,,, only commas",
		"//mrlint:allowother not ours",
		"//mrlint:allow\tnopanic\ttabs as separators",
		"//mrx:hotpath",
		"//mrx:hotpath the frozen read path",
		"//mrx:coldpath",
		"//mrx:coldpath validation fan-out is deliberate",
		"//mrx:unknown directive kind",
		"//mrx:",
		"// mrx:hotpath space disqualifies",
		"//mrx:hotpath\r\ncarriage return smuggled in",
		"//mrlint:allow a,b reason\r\nwith CRLF tail",
		"//mrx:hotpath one //mrx:coldpath two directives one line",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		names, problem, ok := parseAllowDirective(text)
		if !ok && (len(names) != 0 || problem != "") {
			t.Errorf("non-directive %q must return nothing, got names=%v problem=%q", text, names, problem)
		}
		if ok && problem == "" {
			if len(names) == 0 {
				t.Errorf("well-formed allow %q parsed to zero analyzer names", text)
			}
			for _, n := range names {
				if n == "" || strings.ContainsAny(n, ", \t") {
					t.Errorf("allow %q yielded invalid analyzer name %q", text, n)
				}
			}
		}

		kind, note, problem, ok := parseMrxDirective(text)
		if !ok && (kind != "" || note != "" || problem != "") {
			t.Errorf("non-mrx %q must return nothing, got kind=%q note=%q problem=%q", text, kind, note, problem)
		}
		if ok {
			if strings.ContainsAny(kind, " \t") {
				t.Errorf("mrx kind %q contains whitespace (input %q)", kind, text)
			}
			if kind == "coldpath" && note == "" && problem == "" {
				t.Errorf("coldpath without a reason must be a problem (input %q)", text)
			}
			if kind != "hotpath" && kind != "coldpath" && problem == "" {
				t.Errorf("unknown kind %q must be a problem (input %q)", kind, text)
			}
		}
	})
}
