package analysis

import (
	"go/ast"
	"go/types"
)

// NoLeak returns the analyzer policing goroutine lifecycles in library code.
//
// Every goroutine launched by library code must have a visible way to stop
// or be awaited: a context.Context, a channel, or a sync.WaitGroup somewhere
// in the spawned call (its arguments or, for function literals, the body).
// The engine's copy-on-write readers and the bounded validation pools all
// satisfy this; a bare `go f()` with none of the three is how refiners leak.
// Bare time.Sleep is forbidden in the same scope: library code waits on
// channels, contexts or timers it can cancel, never on wall-clock naps.
// Commands (package main) and test files are exempt.
func NoLeak() *Analyzer {
	return &Analyzer{
		Name: "noleak",
		Doc:  "library goroutines need a context, channel or WaitGroup in scope; no bare time.Sleep",
		Run:  runNoLeak,
	}
}

func runNoLeak(pass *Pass) {
	if pass.Pkg.Types.Name() == "main" {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if !hasLifecycleSignal(info, n.Call) {
					pass.Reportf(n.Pos(), "goroutine without lifecycle control: pass a context.Context, a stop channel, or a sync.WaitGroup it participates in")
				}
			case *ast.CallExpr:
				if isPkgFunc(info, n.Fun, "time", "Sleep") {
					pass.Reportf(n.Pos(), "bare time.Sleep in library code: wait on a cancellable timer, channel or context instead")
				}
			}
			return true
		})
	}
}

// hasLifecycleSignal reports whether the spawned call mentions a value whose
// type implies the goroutine can be stopped or awaited: a context.Context, a
// channel, or a sync.WaitGroup.
func hasLifecycleSignal(info *types.Info, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		if found {
			return false
		}
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		tv, ok := info.Types[expr]
		if !ok || tv.Type == nil {
			return true
		}
		if isLifecycleType(tv.Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isLifecycleType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	return isNamed(t, "context", "Context") || isNamed(t, "sync", "WaitGroup")
}
