package analysis

import (
	"go/ast"
	"go/types"
)

// NoLeak returns the analyzer policing goroutine lifecycles in library code.
//
// Every goroutine launched by library code must have a visible way to stop
// or be awaited: a context.Context, a channel, or a sync.WaitGroup somewhere
// in the spawned call (its arguments or, for function literals, the body).
// The engine's copy-on-write readers and the bounded validation pools all
// satisfy this; a bare `go f()` with none of the three is how refiners leak.
//
// A goroutine spawned as a function literal containing an unconditional
// `for { ... }` loop is a background service (the adaptive tuner's epoch
// loop is the archetype) and is held to a stricter standard: it must
// reference BOTH a stop signal (a context.Context or a channel, so Close
// can tell it to exit) AND a sync.WaitGroup (so Close can join it before
// returning). One without the other either never stops or stops without
// anyone knowing when.
//
// Bare time.Sleep is forbidden in the same scope: library code waits on
// channels, contexts or timers it can cancel, never on wall-clock naps.
// Commands (package main) and test files are exempt.
func NoLeak() *Analyzer {
	return &Analyzer{
		Name: "noleak",
		Doc:  "library goroutines need a context, channel or WaitGroup in scope; background loops need a stop signal and a join; no bare time.Sleep",
		Run:  runNoLeak,
	}
}

func runNoLeak(pass *Pass) {
	if pass.Pkg.Types.Name() == "main" {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok && hasInfiniteLoop(lit.Body) {
					stop := hasSignal(info, n.Call, isStopSignalType)
					join := hasSignal(info, n.Call, isJoinType)
					if !stop || !join {
						pass.Reportf(n.Pos(), "background loop goroutine must take a stop signal (context or channel) and be joined through a sync.WaitGroup on Close")
					}
				} else if !hasLifecycleSignal(info, n.Call) {
					pass.Reportf(n.Pos(), "goroutine without lifecycle control: pass a context.Context, a stop channel, or a sync.WaitGroup it participates in")
				}
			case *ast.CallExpr:
				if isPkgFunc(info, n.Fun, "time", "Sleep") {
					pass.Reportf(n.Pos(), "bare time.Sleep in library code: wait on a cancellable timer, channel or context instead")
				}
			}
			return true
		})
	}
}

// hasInfiniteLoop reports whether body contains an unconditional `for` loop
// (no condition, so only a return/break/panic inside exits it), ignoring
// loops in nested function literals — those are separate goroutine bodies
// or synchronous callees with their own accounting.
func hasInfiniteLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond == nil {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// hasLifecycleSignal reports whether the spawned call mentions a value whose
// type implies the goroutine can be stopped or awaited: a context.Context, a
// channel, or a sync.WaitGroup.
func hasLifecycleSignal(info *types.Info, call *ast.CallExpr) bool {
	return hasSignal(info, call, isLifecycleType)
}

// hasSignal reports whether any expression in the spawned call (arguments
// and, for function literals, the body) has a type satisfying pred.
func hasSignal(info *types.Info, call *ast.CallExpr, pred func(types.Type) bool) bool {
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		if found {
			return false
		}
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		tv, ok := info.Types[expr]
		if !ok || tv.Type == nil {
			return true
		}
		if pred(tv.Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isLifecycleType(t types.Type) bool {
	return isStopSignalType(t) || isJoinType(t)
}

// isStopSignalType: something that can tell the goroutine to exit.
func isStopSignalType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	return isNamed(t, "context", "Context")
}

// isJoinType: something the owner can wait on for the goroutine to finish.
func isJoinType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return isNamed(t, "sync", "WaitGroup")
}
