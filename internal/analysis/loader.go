// Package analysis is a from-scratch, stdlib-only static-analysis framework
// for this module: it loads and type-checks packages with go/parser, go/types
// and go/importer (no golang.org/x/tools dependency), runs project-specific
// analyzers over them, and reports position-accurate findings.
//
// Findings can be suppressed site by site with an annotation comment
//
//	//mrlint:allow <analyzer>[,<analyzer>...] <reason>
//
// placed on the offending line or on the line directly above it. The reason
// is mandatory: an allowance without a justification is itself reported.
//
// The analyzers encode the repository's concurrency and error-handling
// conventions — the static shadows of the paper's runtime invariants; see
// DESIGN.md, "Static enforcement of invariants". cmd/mrlint is the command
// line driver; `make lint` runs it over the whole module.
package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files only
	Types *types.Package
	Info  *types.Info
}

// Loader loads packages from a directory tree. Import paths under the
// configured module path (or, when the module path is empty, any import path
// that resolves to a subdirectory of the root — the layout used by analyzer
// testdata) are parsed and type-checked from source; all other imports are
// satisfied by the standard library's source importer. Test files are never
// loaded: the conventions mrlint enforces apply to library code only.
type Loader struct {
	fset    *token.FileSet
	root    string // absolute directory local import paths resolve under
	module  string // module path prefix; "" for testdata-style layouts
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a Loader rooted at dir. module is the module path mapped
// to the root directory ("mrx" for this repository); pass "" to resolve
// import paths directly as subdirectories of dir.
func NewLoader(dir, module string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		root:    dir,
		module:  module,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// ModulePath reads the module path from the go.mod in dir.
func ModulePath(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", dir)
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// localDir resolves an import path to a directory under the root, reporting
// whether the path is module-local.
func (l *Loader) localDir(path string) (string, bool) {
	switch {
	case l.module == "":
		dir := filepath.Join(l.root, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir, true
		}
		return "", false
	case path == l.module:
		return l.root, true
	case strings.HasPrefix(path, l.module+"/"):
		return filepath.Join(l.root, filepath.FromSlash(path[len(l.module)+1:])), true
	default:
		return "", false
	}
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true
		}
	}
	return false
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// Import implements types.Importer, routing module-local paths through the
// loader and everything else to the standard library importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir, ok := l.localDir(path); ok {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the package with the given import path.
func (l *Loader) Load(path string) (*Package, error) {
	dir, ok := l.localDir(path)
	if !ok {
		return nil, fmt.Errorf("analysis: %q is not a loadable local package", path)
	}
	return l.load(path, dir)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		// Honor build constraints the way the go tool does (//go:build
		// lines and GOOS/GOARCH filename suffixes): packages with per-
		// platform files — e.g. internal/mmapstore's mmap_unix.go /
		// mmap_other.go pair — would otherwise type-check both sides of
		// the constraint and report redeclarations.
		if ok, err := build.Default.MatchFile(dir, e.Name()); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go source files in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool {
		return l.fset.File(files[i].Pos()).Name() < l.fset.File(files[j].Pos()).Name()
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	cfg := &types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadAll walks the root directory and loads every package in it, in import
// path order. Directories named "testdata", hidden directories and
// underscore-prefixed directories are skipped, matching the go tool.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !isSourceFile(d.Name()) {
			return nil
		}
		rel, err := filepath.Rel(l.root, filepath.Dir(p))
		if err != nil {
			return err
		}
		ip := l.module
		if rel != "." {
			if ip != "" {
				ip += "/"
			}
			ip += filepath.ToSlash(rel)
		}
		if len(paths) == 0 || paths[len(paths)-1] != ip {
			paths = append(paths, ip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	paths = dedupe(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
