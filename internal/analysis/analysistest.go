package analysis

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunTest loads the package at importPath under root (an analyzer testdata
// tree laid out as root/<importPath>/*.go), runs the analyzers over it, and
// compares the findings against `// want` expectation comments in the
// sources:
//
//	panic("boom") // want `panic in library code`
//
// Each backquoted or double-quoted string after `want` is a regular
// expression that must match the message of one finding on that line.
// Findings with no matching expectation, and expectations with no matching
// finding, fail the test.
func RunTest(t *testing.T, root, importPath string, analyzers ...*Analyzer) {
	t.Helper()
	l := NewLoader(root, "")
	pkg, err := l.Load(importPath)
	if err != nil {
		t.Fatalf("loading %s: %v", importPath, err)
	}
	findings := Run([]*Package{pkg}, analyzers)
	checkExpectations(t, []*Package{pkg}, findings)
}

// RunTestPkgs is RunTest over several packages loaded into one module view —
// the shape the interprocedural analyzers need when a root annotation, the
// code it reaches, or a field's releasing reference live in different
// packages. Expectations are checked across all listed packages.
func RunTestPkgs(t *testing.T, root string, importPaths []string, analyzers ...*Analyzer) {
	t.Helper()
	l := NewLoader(root, "")
	var pkgs []*Package
	for _, path := range importPaths {
		pkg, err := l.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	findings := Run(pkgs, analyzers)
	checkExpectations(t, pkgs, findings)
}

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// parseExpectations extracts // want comments from a package's sources.
func parseExpectations(pkg *Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := text[i+len("// want "):]
				matches := wantRE.FindAllStringSubmatch(rest, -1)
				if len(matches) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment without a pattern", pos.Filename, pos.Line)
				}
				for _, m := range matches {
					var pat string
					if m[0][0] == '`' {
						pat = m[1]
					} else {
						unq, err := strconv.Unquote(m[0])
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, m[0], err)
						}
						pat = unq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

func checkExpectations(t *testing.T, pkgs []*Package, findings []Finding) {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		ws, err := parseExpectations(pkg)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, ws...)
	}
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == f.File && w.line == f.Line && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}
