package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// allowPrefix introduces a suppression directive. Like //go:build directives,
// the comment must start exactly with this prefix (no space after //):
//
//	//mrlint:allow nopanic internal invariant, unreachable on valid input
//
// The first field names one or more analyzers (comma-separated); everything
// after it is the mandatory human-readable reason. The directive suppresses
// findings of the named analyzers on its own line and on the line directly
// below it, so it works both as a trailing comment and as a line above the
// annotated statement.
const allowPrefix = "//mrlint:allow"

// suppressions indexes allow directives of one file set: file name -> line
// -> set of suppressed analyzer names.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) add(file string, line int, analyzer string) {
	lines := s[file]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		s[file] = lines
	}
	set := lines[line]
	if set == nil {
		set = make(map[string]bool)
		lines[line] = set
	}
	set[analyzer] = true
}

func (s suppressions) allows(file string, line int, analyzer string) bool {
	return s[file][line][analyzer]
}

// parseDirectives scans the comments of the given files for allow directives.
// Malformed directives — a missing analyzer list or a missing reason — are
// returned as findings of the pseudo-analyzer "mrlint" and suppress nothing.
func parseDirectives(fset *token.FileSet, files []*ast.File) (suppressions, []Finding) {
	sup := make(suppressions)
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, problem, ok := parseAllowDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				if problem != "" {
					bad = append(bad, Finding{
						Analyzer: "mrlint", File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: problem,
					})
					continue
				}
				for _, name := range names {
					sup.add(pos.Filename, pos.Line, name)
					sup.add(pos.Filename, pos.Line+1, name)
				}
			}
		}
	}
	return sup, bad
}

// parseAllowDirective parses one comment's text as an //mrlint:allow
// directive. ok is false when the comment is not an allow directive at all;
// a non-empty problem describes a malformed directive (which suppresses
// nothing); otherwise names lists the suppressed analyzers.
func parseAllowDirective(text string) (names []string, problem string, ok bool) {
	rest, ok := strings.CutPrefix(text, allowPrefix)
	if !ok {
		return nil, "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, "", false // e.g. //mrlint:allowother — not our directive
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, "malformed directive: //mrlint:allow needs an analyzer name and a reason", true
	}
	if len(fields) < 2 {
		return nil, "malformed directive: //mrlint:allow " + fields[0] + " is missing a reason", true
	}
	for _, name := range strings.Split(fields[0], ",") {
		if name != "" {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil, "malformed directive: //mrlint:allow " + fields[0] + " names no analyzer", true
	}
	return names, "", true
}

// Function-level annotations. Like //mrlint:allow they are machine-checked
// comments, but they attach to a function declaration (in its doc comment)
// rather than a line, and they widen or narrow interprocedural analysis
// instead of silencing a finding:
//
//	//mrx:hotpath <note, optional>
//	func TraverseFrozen(...)          // root of the allocation-free closure
//
//	//mrx:coldpath <reason, mandatory>
//	func validateCandidates(...)      // explicit boundary: reachable code
//	                                  // beyond it is not held to hot-path rules
const (
	hotpathPrefix  = "//mrx:hotpath"
	coldpathPrefix = "//mrx:coldpath"
	mrxPrefix      = "//mrx:"
)

// funcDirectives holds one package's parsed function annotations.
type funcDirectives struct {
	hot  map[*types.Func]string // annotated function -> note (may be empty)
	cold map[*types.Func]string // annotated function -> mandatory reason
}

// parseMrxDirective parses one comment's text as an //mrx: function
// directive. ok is false when the comment is not an //mrx: directive; a
// non-empty problem describes a malformed one.
func parseMrxDirective(text string) (kind, note, problem string, ok bool) {
	rest, found := strings.CutPrefix(text, mrxPrefix)
	if !found {
		return "", "", "", false
	}
	kind = rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		kind, note = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	switch kind {
	case "hotpath":
		return kind, note, "", true
	case "coldpath":
		if note == "" {
			return kind, note, "malformed directive: //mrx:coldpath requires a reason (it weakens hot-path enforcement)", true
		}
		return kind, note, "", true
	default:
		return kind, note, "unknown directive //mrx:" + kind + " (known: hotpath, coldpath)", true
	}
}

// parseFuncDirectives extracts //mrx: annotations from pkg's function doc
// comments. Directives anywhere else — inside a body, on a type, floating —
// are misplaced and reported; they annotate nothing.
func parseFuncDirectives(pkg *Package) (funcDirectives, []Finding) {
	fd := funcDirectives{
		hot:  make(map[*types.Func]string),
		cold: make(map[*types.Func]string),
	}
	var bad []Finding
	attached := make(map[*ast.Comment]bool)
	report := func(c *ast.Comment, msg string) {
		pos := pkg.Fset.Position(c.Pos())
		bad = append(bad, Finding{
			Analyzer: "mrlint", File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Message: msg,
		})
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Doc == nil {
				continue
			}
			for _, c := range decl.Doc.List {
				kind, note, problem, ok := parseMrxDirective(c.Text)
				if !ok {
					continue
				}
				attached[c] = true
				if problem != "" {
					report(c, problem)
					continue
				}
				fn, ok := pkg.Info.Defs[decl.Name].(*types.Func)
				if !ok {
					continue
				}
				switch kind {
				case "hotpath":
					fd.hot[fn.Origin()] = note
				case "coldpath":
					fd.cold[fn.Origin()] = note
				}
			}
		}
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if attached[c] {
					continue
				}
				if _, _, _, ok := parseMrxDirective(c.Text); ok {
					report(c, "misplaced directive "+firstField(c.Text)+": //mrx: annotations attach to a function declaration's doc comment")
				}
			}
		}
	}
	return fd, bad
}

func firstField(text string) string {
	if i := strings.IndexAny(text, " \t"); i >= 0 {
		return text[:i]
	}
	return text
}
