package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression directive. Like //go:build directives,
// the comment must start exactly with this prefix (no space after //):
//
//	//mrlint:allow nopanic internal invariant, unreachable on valid input
//
// The first field names one or more analyzers (comma-separated); everything
// after it is the mandatory human-readable reason. The directive suppresses
// findings of the named analyzers on its own line and on the line directly
// below it, so it works both as a trailing comment and as a line above the
// annotated statement.
const allowPrefix = "//mrlint:allow"

// suppressions indexes allow directives of one file set: file name -> line
// -> set of suppressed analyzer names.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) add(file string, line int, analyzer string) {
	lines := s[file]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		s[file] = lines
	}
	set := lines[line]
	if set == nil {
		set = make(map[string]bool)
		lines[line] = set
	}
	set[analyzer] = true
}

func (s suppressions) allows(file string, line int, analyzer string) bool {
	return s[file][line][analyzer]
}

// parseDirectives scans the comments of the given files for allow directives.
// Malformed directives — a missing analyzer list or a missing reason — are
// returned as findings of the pseudo-analyzer "mrlint" and suppress nothing.
func parseDirectives(fset *token.FileSet, files []*ast.File) (suppressions, []Finding) {
	sup := make(suppressions)
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //mrlint:allowother — not our directive
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad = append(bad, Finding{
						Analyzer: "mrlint", File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: "malformed directive: //mrlint:allow needs an analyzer name and a reason",
					})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "mrlint", File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: "malformed directive: //mrlint:allow " + fields[0] + " is missing a reason",
					})
					continue
				}
				for _, name := range strings.Split(fields[0], ",") {
					if name == "" {
						continue
					}
					sup.add(pos.Filename, pos.Line, name)
					sup.add(pos.Filename, pos.Line+1, name)
				}
			}
		}
	}
	return sup, bad
}
