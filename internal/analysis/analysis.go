package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"sync"
)

// An Analyzer checks one convention. Run inspects the package behind the
// Pass and reports findings through it.
type Analyzer struct {
	Name string // short lowercase identifier, used in directives and output
	Doc  string // one-line description of the convention enforced
	Run  func(*Pass)
}

// A Pass carries one (package, analyzer) pairing during Run. Pass.Module
// exposes the module-wide context — every loaded package plus the shared
// call graph — to interprocedural analyzers; a Pass still reports findings
// for its own package only, which keeps (package × analyzer) passes
// independent and parallelizable.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Module   *Module
	report   func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported violation. The field tags fix the schema of
// `mrlint -json` output.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Module is the shared, read-only context of one Run: the loaded packages,
// the lazily built call graph, the module's function annotations, and a
// memo table for module-wide computations (hot-path closures, reachability
// sets) that per-package passes would otherwise redo once per package.
//
// Interprocedural analyzers see exactly the packages handed to Run: running
// them on a subset of the module narrows the call graph, which can produce
// findings a whole-module run would not (an acquire whose release lives in
// an unloaded package). `make lint` and TestModuleIsClean always run the
// full module.
type Module struct {
	Pkgs []*Package

	hot  map[*types.Func]string // //mrx:hotpath roots -> note
	cold map[*types.Func]string // //mrx:coldpath boundaries -> reason
	bad  []Finding              // malformed/misplaced function directives

	graphOnce sync.Once
	graph     *CallGraph

	memoMu sync.Mutex
	memos  map[string]*memoEntry
}

type memoEntry struct {
	once sync.Once
	val  any
}

// NewModule assembles the shared context over pkgs, parsing function-level
// //mrx: directives up front. The call graph is built on first use.
func NewModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:  pkgs,
		hot:   make(map[*types.Func]string),
		cold:  make(map[*types.Func]string),
		memos: make(map[string]*memoEntry),
	}
	for _, pkg := range pkgs {
		fd, bad := parseFuncDirectives(pkg)
		m.bad = append(m.bad, bad...)
		for fn, note := range fd.hot {
			m.hot[fn] = note
		}
		for fn, reason := range fd.cold {
			m.cold[fn] = reason
		}
	}
	return m
}

// CallGraph returns the module call graph, building it exactly once; the
// result is shared read-only across concurrent passes.
func (m *Module) CallGraph() *CallGraph {
	m.graphOnce.Do(func() { m.graph = BuildCallGraph(m.Pkgs) })
	return m.graph
}

// HotRoots returns the functions annotated //mrx:hotpath.
func (m *Module) HotRoots() map[*types.Func]string { return m.hot }

// ColdBoundaries returns the functions annotated //mrx:coldpath.
func (m *Module) ColdBoundaries() map[*types.Func]string { return m.cold }

// Memo computes a module-wide value once per key and returns the cached
// result on every later call, including concurrent ones: passes of the same
// analyzer running in parallel over different packages share one closure
// computation.
func (m *Module) Memo(key string, compute func() any) any {
	m.memoMu.Lock()
	e := m.memos[key]
	if e == nil {
		e = &memoEntry{}
		m.memos[key] = e
	}
	m.memoMu.Unlock()
	e.once.Do(func() { e.val = compute() })
	return e.val
}

// Stats summarizes one Run per analyzer: how many findings survived and how
// many were silenced by //mrlint:allow directives. The "mrlint"
// pseudo-analyzer counts malformed directives. Suppressed counts tally
// findings an analyzer actually reported against an allowing directive —
// stale directives that no longer match anything contribute nothing — which
// makes the count a ratchet: it only grows when new real findings are waved
// through.
type Stats struct {
	Findings   map[string]int `json:"findings"`
	Suppressed map[string]int `json:"suppressed"`
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position: suppressed sites (see allowPrefix) are
// dropped, malformed suppression or annotation directives are themselves
// reported.
//
// The (package × analyzer) passes run concurrently across a bounded worker
// pool; the call graph and module-wide closures are built once and shared
// read-only, and the final sort (file, line, col, analyzer, message) makes
// the output order deterministic regardless of scheduling.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	findings, _ := RunWithStats(pkgs, analyzers)
	return findings
}

// RunWithStats is Run plus the per-analyzer accounting that `mrlint -stats`
// and the suppression-ceiling check consume.
func RunWithStats(pkgs []*Package, analyzers []*Analyzer) ([]Finding, Stats) {
	mod := NewModule(pkgs)
	out := append([]Finding(nil), mod.bad...)

	sups := make([]suppressions, len(pkgs))
	for i, pkg := range pkgs {
		sup, bad := parseDirectives(pkg.Fset, pkg.Files)
		sups[i] = sup
		out = append(out, bad...)
	}

	type task struct {
		pkg *Package
		sup suppressions
		a   *Analyzer
	}
	var tasks []task
	for i, pkg := range pkgs {
		for _, a := range analyzers {
			tasks = append(tasks, task{pkg: pkg, sup: sups[i], a: a})
		}
	}

	results := make([][]Finding, len(tasks))
	silenced := make([]map[string]int, len(tasks))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(wg *sync.WaitGroup) {
			defer wg.Done()
			for i := range idx {
				t := tasks[i]
				var local []Finding
				sup := make(map[string]int)
				pass := &Pass{
					Analyzer: t.a,
					Pkg:      t.pkg,
					Module:   mod,
					report: func(f Finding) {
						if t.sup.allows(f.File, f.Line, f.Analyzer) {
							sup[f.Analyzer]++
							return
						}
						local = append(local, f)
					},
				}
				t.a.Run(pass)
				results[i] = local
				silenced[i] = sup
			}
		}(&wg)
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, r := range results {
		out = append(out, r...)
	}

	stats := Stats{Findings: make(map[string]int), Suppressed: make(map[string]int)}
	for _, sup := range silenced {
		for name, n := range sup {
			stats.Suppressed[name] += n
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	for _, f := range out {
		stats.Findings[f.Analyzer]++
	}
	return out, stats
}
