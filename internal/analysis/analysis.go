package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// An Analyzer checks one convention. Run inspects the package behind the
// Pass and reports findings through it.
type Analyzer struct {
	Name string // short lowercase identifier, used in directives and output
	Doc  string // one-line description of the convention enforced
	Run  func(*Pass)
}

// A Pass carries one (package, analyzer) pairing during Run.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported violation. The field tags fix the schema of
// `mrlint -json` output.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position: suppressed sites (see allowPrefix) are
// dropped, malformed suppression directives are themselves reported.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		sup, bad := parseDirectives(pkg.Fset, pkg.Files)
		out = append(out, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				report: func(f Finding) {
					if !sup.allows(f.File, f.Line, f.Analyzer) {
						out = append(out, f)
					}
				},
			}
			a.Run(pass)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}
