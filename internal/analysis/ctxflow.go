package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow returns the interprocedural analyzer enforcing end-to-end context
// propagation.
//
// mrx.ContextQuerier made cancellation part of the public serving contract:
// a request's context must flow from the HTTP handler down through
// coalescing, admission, engine evaluation and validation. A
// context.Background() or context.TODO() anywhere below that chain silently
// detaches everything underneath it from the caller's cancellation — the
// serving path keeps validating for a client that hung up.
//
// The analyzer computes the set of functions that receive a context.Context
// parameter (the roots) plus everything reachable from them through
// module-local call edges, and reports:
//
//   - calls to context.Background() or context.TODO() inside that set: the
//     function is on a cancellation-bearing path, so a fresh root context
//     severs it. A deliberate detach (the coalescer's flight context, whose
//     lifetime is refcounted by waiters rather than owned by any one
//     request) is annotated //mrlint:allow ctxflow <reason>;
//   - context.Context stored in a struct field, at the field declaration:
//     contexts flow down call stacks, not into long-lived state. An owner
//     with a documented reason is annotated the same way.
func CtxFlow() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "no context.Background/TODO below a context-bearing function; no context.Context struct fields",
		Run:  runCtxFlow,
	}
}

// ctxClosure maps every function on a cancellation-bearing path to the
// context-taking root it is blamed on.
type ctxClosure struct {
	prov map[*types.Func]*types.Func
}

func ctxFlowClosure(mod *Module) *ctxClosure {
	return mod.Memo("ctxflow.closure", func() any {
		cg := mod.CallGraph()
		var roots []*types.Func
		for _, fn := range cg.Functions() {
			if takesContext(fn) {
				roots = append(roots, fn)
			}
		}
		return &ctxClosure{prov: cg.Provenance(roots, nil)}
	}).(*ctxClosure)
}

// takesContext reports whether fn has a context.Context parameter.
func takesContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isNamed(params.At(i).Type(), "context", "Context") {
			return true
		}
	}
	return false
}

func runCtxFlow(pass *Pass) {
	closure := ctxFlowClosure(pass.Module)
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			switch decl := d.(type) {
			case *ast.FuncDecl:
				if decl.Body == nil {
					continue
				}
				fn, ok := info.Defs[decl.Name].(*types.Func)
				if !ok {
					continue
				}
				root, onPath := closure.prov[fn.Origin()]
				if !onPath {
					continue
				}
				checkCtxBody(pass, decl, root)
			case *ast.GenDecl:
				checkCtxFields(pass, decl)
			}
		}
	}
}

func checkCtxBody(pass *Pass, decl *ast.FuncDecl, root *types.Func) {
	info := pass.Pkg.Info
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, name := range [...]string{"Background", "TODO"} {
			if isPkgFunc(info, call.Fun, "context", name) {
				pass.Reportf(call.Pos(), "context.%s below context-bearing root %s severs cancellation; derive from the caller's ctx", name, root.FullName())
			}
		}
		return true
	})
}

// checkCtxFields reports struct fields of type context.Context.
func checkCtxFields(pass *Pass, decl *ast.GenDecl) {
	info := pass.Pkg.Info
	for _, spec := range decl.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			tv, ok := info.Types[field.Type]
			if !ok {
				continue
			}
			if isNamed(tv.Type, "context", "Context") {
				pass.Reportf(field.Pos(), "context.Context stored in a field of %s; contexts flow down call stacks, not into struct state", ts.Name.Name)
			}
		}
	}
}
