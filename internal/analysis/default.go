package analysis

// DefaultAnalyzers returns the eight analyzers with this repository's
// production configuration — what cmd/mrlint and `make lint` run. The first
// five are intraprocedural; hotpathalloc, ctxflow and lifecycle reason over
// the shared module call graph and are only as strong as the package set they
// run on (a subset run sees a narrower graph; `make lint` runs all packages).
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		NoPanic(),
		AtomicDiscipline(),
		SnapshotMut(map[string][]string{
			// index.Graph nodes (extents, local similarities, adjacency) are
			// mutated only through package index's own API (Split, SetK);
			// everything downstream treats them as immutable snapshots. The
			// frozen read-path twin (index.Frozen, CSR arrays) is covered by
			// the same entry: after Freeze nothing may write its fields.
			"mrx/internal/index": nil,
			// core.MStar's component list and core.FrozenMStar's frozen
			// component vector are written only by package core (Refine,
			// Freeze/FreezeReusing); the engine publishes them as immutable
			// snapshots.
			"mrx/internal/core": nil,
			// engine.Engine's snapshot pointer, counters and registries are
			// written only by package engine itself.
			"mrx/internal/engine": nil,
		}),
		ErrWrap(ErrWrapConfig{
			Packages:     map[string]string{"mrx/internal/store": "store: "},
			ReadPrefixes: DefaultReadPrefixes,
		}),
		NoLeak(),
		HotPathAlloc(),
		CtxFlow(),
		Lifecycle(),
	}
}
