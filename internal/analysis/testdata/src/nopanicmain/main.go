// Command nopanicmain proves package main is exempt from nopanic and
// noleak: commands may panic and sleep.
package main

import "time"

func main() {
	time.Sleep(time.Millisecond)
	panic("commands may panic")
}
