// Package nopanic exercises the nopanic analyzer: unsuppressed panics in
// library code are findings; annotated internal-invariant panics pass.
package nopanic

import "errors"

// ErrEmpty is returned for empty input.
var ErrEmpty = errors.New("empty input")

// Parse panics on an input-dependent condition: a violation.
func Parse(s string) (int, error) {
	if s == "" {
		panic("empty input") // want `panic in library code`
	}
	return len(s), nil
}

// split guards an internal invariant; the trailing annotation suppresses the
// finding.
func split(alive bool) {
	if !alive {
		panic("split of dead node") //mrlint:allow nopanic internal invariant, unreachable on valid input
	}
}

// above shows the annotation on the line above the panic.
func above() {
	//mrlint:allow nopanic unreachable: callers validate first
	panic("unreachable")
}

// wrongName is still a violation: the annotation names a different analyzer.
func wrongName() {
	panic("boom") //mrlint:allow noleak wrong analyzer name // want `panic in library code`
}

var _ = split
var _ = above
var _ = wrongName
