// Package errwrap exercises the errwrap analyzer under a test configuration
// that covers this package with required prefix "store: ".
package errwrap

import (
	"errors"
	"fmt"
	"io"
)

// ReadHeader shows the two fmt.Errorf rules.
func ReadHeader(r io.Reader) (int, error) {
	var n int
	if _, err := fmt.Fscan(r, &n); err != nil {
		return 0, fmt.Errorf("store: header: %v", err) // want `without %w`
	}
	if n < 0 {
		return 0, fmt.Errorf("negative count %d", n) // want `name the section`
	}
	return n, nil
}

// ReadBody returns an io error unwrapped: the caller sees "unexpected EOF"
// with no section name.
func ReadBody(r io.Reader) ([]byte, error) {
	buf := make([]byte, 8)
	_, err := io.ReadFull(r, buf)
	if err != nil {
		return nil, err // want `returned unwrapped`
	}
	return buf, nil
}

// ReadOK propagates an error from an in-package helper, which already
// wrapped it: fine.
func ReadOK(r io.Reader) ([]byte, error) {
	b, err := readSection(r)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// readSection is the wrapped-at-source helper.
func readSection(r io.Reader) ([]byte, error) {
	buf := make([]byte, 4)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("store: section: %w", err)
	}
	return buf, nil
}

// Check is not a read path: its returns are out of scope (its fmt.Errorf
// calls still follow the package convention, which applies everywhere).
func Check(ok bool) error {
	if !ok {
		return errors.New("not a read path")
	}
	return nil
}
