// Package hotpathalloc exercises the hotpathalloc analyzer: allocation
// discipline on the closure of //mrx:hotpath roots, bounded by //mrx:coldpath.
package hotpathalloc

import "fmt"

//mrx:hotpath the frozen read path archetype
func Hot(xs []int) int {
	m := make(map[int]bool) // want `make\(map\) allocates`
	total := 0
	for _, x := range xs {
		total += x
		m[x] = true
	}
	return total
}

//mrx:hotpath
func HotLiteral() map[string]int {
	return map[string]int{} // want `map literal allocates`
}

//mrx:hotpath
func HotFmt(n int) string {
	return fmt.Sprintf("%d", n) // want `call to fmt.Sprintf`
}

//mrx:hotpath
func HotTransitive(xs []int) int {
	return helper(xs) // not annotated, but reachable: checked via provenance
}

// helper is hot only because HotTransitive reaches it.
func helper(xs []int) int {
	sink := make(map[int]int) // want `make\(map\) allocates .*via //mrx:hotpath root hotpathalloc\.HotTransitive`
	for _, x := range xs {
		sink[x] = x
	}
	return len(sink)
}

//mrx:hotpath
func HotBox(xs []int) {
	for _, x := range xs {
		consume(x) // want `boxes into interface`
	}
	consume(xs[0]) // outside a loop: one box at the boundary is fine
}

func consume(v any) { _ = v }

//mrx:hotpath
func HotExplicitConvert(xs []int) {
	for _, x := range xs {
		v := any(x) // want `conversion to interface`
		_ = v
	}
}

//mrx:hotpath
func HotAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want `append grows out`
	}
	pre := make([]int, 0, len(xs))
	for _, x := range xs {
		pre = append(pre, x) // preallocated: clean
	}
	return append(out, pre...)
}

//mrx:hotpath
func HotAllowed() map[int]bool {
	//mrlint:allow hotpathalloc one-time table built before the loop, amortised
	return make(map[int]bool)
}

//mrx:hotpath
func HotToCold(xs []int) int {
	return expensive(xs)
}

//mrx:coldpath validation fan-out is the paper's deliberate expensive term
func expensive(xs []int) int {
	seen := make(map[int]bool) // cold boundary: not held to hot-path rules
	for _, x := range xs {
		seen[x] = true
	}
	return len(seen) + len(onlyBeyondCold())
}

// onlyBeyondCold is reachable from Hot code only through the cold boundary:
// the closure is pruned there, so this map is unchecked too.
func onlyBeyondCold() map[string]int {
	return map[string]int{"unchecked": 1}
}

// NotHot is plain warm code: maps and fmt are fine here.
func NotHot() string {
	m := map[string]int{"a": 1}
	return fmt.Sprint(len(m))
}
