// Package lifecycle exercises the lifecycle analyzer: WaitGroup Add→Done
// pairing through call arguments, ticker/timer Stop, and context cancel
// retention.
package lifecycle

import (
	"context"
	"sync"
	"time"

	"lifecycle/waitutil"
)

// AddNoDone: nothing ever signals this WaitGroup.
func AddNoDone() {
	var wg sync.WaitGroup
	wg.Add(1) // want `WaitGroup.Add has no matching Done`
	go func() {}()
	wg.Wait()
}

// AddDoneLocal pairs through closure capture.
func AddDoneLocal() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
}

// AddDoneCallee pairs through a same-package callee parameter.
func AddDoneCallee() {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg)
	wg.Wait()
}

func worker(wg *sync.WaitGroup) { defer wg.Done() }

// AddDoneCrossPackage pairs through an imported callee's parameter.
func AddDoneCrossPackage() {
	var wg sync.WaitGroup
	wg.Add(1)
	go waitutil.Worker(&wg)
	wg.Wait()
}

// AddSwallowed aliases into a callee that never calls Done.
func AddSwallowed() {
	var wg sync.WaitGroup
	wg.Add(1) // want `WaitGroup.Add has no matching Done`
	go waitutil.Swallow(&wg)
	wg.Wait()
}

// AddDoneLit pairs through a directly-invoked function literal's parameter.
func AddDoneLit() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func(g *sync.WaitGroup) { defer g.Done() }(&wg)
	wg.Wait()
}

// pool pairs a field WaitGroup: Add in Spawn, Done in run.
type pool struct {
	wg sync.WaitGroup
}

func (p *pool) Spawn() {
	p.wg.Add(1)
	go p.run()
}

func (p *pool) run() { defer p.wg.Done() }

func (p *pool) Wait() { p.wg.Wait() }

// TickNoStop leaks its ticker.
func TickNoStop(d time.Duration) {
	t := time.NewTicker(d) // want `time.NewTicker result t is never stopped`
	<-t.C
}

// TickStop stops it.
func TickStop(d time.Duration) {
	t := time.NewTicker(d)
	defer t.Stop()
	<-t.C
}

// TimerMethodValue hands Stop out as a value, loadgen-style: referencing
// v.Stop is enough, called or not.
func TimerMethodValue(d time.Duration) (<-chan time.Time, func() bool) {
	t := time.NewTimer(d)
	return t.C, t.Stop
}

// TickHandOff passes the ticker whole to someone else: their problem now.
func TickHandOff(d time.Duration) {
	t := time.NewTicker(d)
	adopt(t)
}

func adopt(t *time.Ticker) { t.Stop() }

// TickDiscard throws the ticker away unstoppable.
func TickDiscard(d time.Duration) {
	_ = time.NewTicker(d) // want `time.NewTicker result is discarded`
}

// svc stores tickers in fields: tk is stopped by Close, orphan never is.
type svc struct {
	tk     *time.Ticker
	orphan *time.Ticker
}

func (s *svc) Start(d time.Duration) {
	s.tk = time.NewTicker(d)
	s.orphan = time.NewTicker(d) // want `time.NewTicker stored in field orphan is never stopped`
}

func (s *svc) Close() {
	s.tk.Stop()
}

// After leaks a timer until it fires.
func After(d time.Duration) <-chan time.Time {
	return time.After(d) // want `time.After leaks its timer`
}

// CancelUnused mints a cancel and forgets it.
func CancelUnused(ctx context.Context) context.Context {
	ctx2, cancel := context.WithCancel(ctx) // want `cancel function cancel is never used`
	_ = cancel
	return ctx2
}

// CancelDiscarded blanks it outright.
func CancelDiscarded(ctx context.Context) context.Context {
	ctx2, _ := context.WithCancel(ctx) // want `cancel function is discarded`
	return ctx2
}

// CancelDeferred is the ordinary correct shape.
func CancelDeferred(ctx context.Context, d time.Duration) error {
	ctx2, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	<-ctx2.Done()
	return ctx2.Err()
}

// flight stores its cancel in a field; abort invokes it module-wide: ok.
type flight struct {
	cancel context.CancelFunc
}

func NewFlight(ctx context.Context) (*flight, context.Context) {
	fctx, cancel := context.WithCancel(ctx)
	return &flight{cancel: cancel}, fctx
}

func (f *flight) abort() { f.cancel() }

// orphanFlight stores its cancel in a field nothing ever invokes.
type orphanFlight struct {
	cancel context.CancelFunc
}

func NewOrphanFlight(ctx context.Context) (*orphanFlight, context.Context) {
	fctx, cancel := context.WithCancel(ctx) // want `cancel function stored in field cancel is never invoked`
	return &orphanFlight{cancel: cancel}, fctx
}

// AllowedAdd is a justified exception.
func AllowedAdd() {
	var wg sync.WaitGroup
	wg.Add(1) //mrlint:allow lifecycle released by a process-lifetime watchdog, joined at exit
	go func() {}()
}
