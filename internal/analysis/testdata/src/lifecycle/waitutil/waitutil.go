// Package waitutil is a cross-package callee for the lifecycle testdata: the
// Done lives here, the Add in the importing package.
package waitutil

import "sync"

// Worker signals wg when it finishes.
func Worker(wg *sync.WaitGroup) {
	defer wg.Done()
}

// Swallow takes a WaitGroup and never signals it.
func Swallow(wg *sync.WaitGroup) {
	_ = wg
}
