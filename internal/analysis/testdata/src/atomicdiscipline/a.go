// Package atomicdiscipline exercises both halves of the atomicdiscipline
// analyzer: mixed atomic/plain access, and by-value copies of lock or
// atomic holders.
package atomicdiscipline

import (
	"sync"
	"sync/atomic"
)

type counters struct {
	hits  int64
	reads int64
}

// Hit accesses hits atomically; from here on every access must be atomic.
func (c *counters) Hit() { atomic.AddInt64(&c.hits, 1) }

// Bad reads it plainly.
func (c *counters) Bad() int64 {
	return c.hits // want `accessed with sync/atomic elsewhere`
}

// Worse writes it plainly.
func (c *counters) Worse() {
	c.hits = 0 // want `accessed with sync/atomic elsewhere`
}

// Plain never touches sync/atomic, so plain access is fine.
func (c *counters) Plain() int64 { return c.reads }

var total int64

// AddTotal uses the package-level counter atomically.
func AddTotal() { atomic.AddInt64(&total, 1) }

// ReadTotal reads it plainly.
func ReadTotal() int64 {
	return total // want `accessed with sync/atomic elsewhere`
}

type guarded struct {
	mu sync.Mutex
	n  int
}

// copyParam takes the lock holder by value.
func copyParam(g guarded) int { // want `copies lock or atomic state`
	return g.n
}

// copyReceiver binds it to a value receiver.
func (g guarded) copyReceiver() int { // want `copies lock or atomic state`
	return g.n
}

// copyAssign copies it through a dereference.
func copyAssign(g *guarded) {
	snapshot := *g // want `copies lock or atomic state`
	_ = snapshot
}

// construct builds a fresh value: no copy of existing state.
func construct() *guarded {
	g := guarded{}
	return &g
}

type typedCounter struct {
	n atomic.Uint64
}

// load is the correct use of a typed atomic.
func (t *typedCounter) load() uint64 { return t.n.Load() }

// copyTyped copies the typed atomic by value.
func copyTyped(t *typedCounter) {
	c := t.n // want `copies lock or atomic state`
	_ = c
}

// rangeCopy iterates an array of lock holders by value.
func rangeCopy(gs *[2]guarded) int {
	sum := 0
	for _, g := range gs { // want `copies lock or atomic state`
		sum += g.n
	}
	return sum
}

var (
	_ = copyParam
	_ = copyAssign
	_ = copyTyped
	_ = rangeCopy
	_ = construct
)
