// Package generics exercises the call graph and interprocedural analyzers on
// generic code: instantiations must resolve to their Origin declarations, and
// generic named types must not crash interface-implementer scanning.
package generics

import "context"

// NewSet is a generic allocator; instantiating it from a hot root must pull
// the origin declaration into the closure.
func NewSet[T comparable]() map[T]bool {
	return make(map[T]bool) // want `make\(map\) allocates .*via //mrx:hotpath root generics\.Hot`
}

//mrx:hotpath instantiation edges must resolve to Origin
func Hot(xs []int) int {
	seen := NewSet[int]()
	n := 0
	for _, x := range xs {
		if !seen[x] {
			n++
		}
	}
	return n
}

// Stack is a generic container with methods; its instantiated methods route
// to the generic declarations.
type Stack[T any] struct {
	items []T
}

func (s *Stack[T]) Push(v T) {
	s.items = append(s.items, v)
}

func (s *Stack[T]) Pop() (T, bool) {
	var zero T
	if len(s.items) == 0 {
		return zero, false
	}
	v := s.items[len(s.items)-1]
	s.items = s.items[:len(s.items)-1]
	return v, true
}

// UseStack calls instantiated methods: callee resolution must not crash and
// must land on the origin method declarations.
func UseStack(ctx context.Context) int {
	var s Stack[int]
	s.Push(1)
	s.Push(2)
	if v, ok := s.Pop(); ok {
		return v
	}
	return below()
}

// below is reachable from the context-bearing UseStack.
func below() int {
	ctx := context.Background() // want `context.Background below context-bearing root generics\.UseStack`
	_ = ctx
	return 0
}

// Apply takes a function value generically: the dynamic edge is signature-
// matched after instantiation.
func Apply[T any](f func(T) T, v T) T {
	return f(v)
}

func double(x int) int { return 2 * x }

func CallApply() int {
	return Apply(double, 21)
}

// iface + generic implementer interplay: the implementer scan skips generic
// named types rather than crashing on them.
type Sizer interface {
	Size() int
}

type Box[T any] struct {
	v T
}

func (b Box[T]) Size() int { return 1 }

func Measure(s Sizer) int {
	return s.Size()
}
