// Package frozen plays the role of internal/index and internal/engine in the
// snapshotmut testdata: a package whose struct fields are owned by it alone.
package frozen

// Node mimics an index node: exported fields so other packages *could*
// assign them — which is exactly what snapshotmut forbids.
type Node struct {
	K      int
	Extent []int
}

// SetK is the owner's mutation API; writes inside the owning package are
// allowed.
func (n *Node) SetK(k int) { n.K = k }

// Grow appends to the extent through the owner.
func (n *Node) Grow(v int) { n.Extent = append(n.Extent, v) }
