// Package snapshotmut exercises the snapshotmut analyzer: assignments to
// fields of a protected package from outside its owner set.
package snapshotmut

import "frozen"

// Mutate writes protected fields directly: both are violations.
func Mutate(n *frozen.Node) {
	n.K = 3         // want `outside its owning package`
	n.Extent[0] = 1 // want `outside its owning package`
}

// Bump mutates through ++.
func Bump(n *frozen.Node) {
	n.K++ // want `outside its owning package`
}

// Read only reads: fine.
func Read(n *frozen.Node) int { return n.K }

// ViaOwner mutates through the owner's API: fine.
func ViaOwner(n *frozen.Node) { n.SetK(3) }

type local struct{ k int }

// Own writes this package's own fields: fine.
func Own(l *local) { l.k = 1 }
