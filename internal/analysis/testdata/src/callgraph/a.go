// Package callgraph is fixture code for the call graph unit tests: static
// calls, interface dispatch, function values, literals and method values.
package callgraph

// Doer is implemented by Value (value receiver) and Pointer (pointer
// receiver); a call through the interface must fan out to both.
type Doer interface {
	Do()
}

type Value struct{}

func (Value) Do() {}

type Pointer struct{}

func (*Pointer) Do() {}

// Loner implements nothing relevant.
type Loner struct{}

func (Loner) Other() {}

// CallIface dispatches through the interface: conservative fan-out to every
// module-local implementer's Do.
func CallIface(d Doer) {
	d.Do()
}

// CallStatic is a plain static edge.
func CallStatic() {
	CallIface(Value{})
	helper()
}

func helper() {}

// TakeFunc invokes a function value: the dynamic edge goes to every
// module-local function whose address is taken and whose signature matches.
func TakeFunc() {
	f := escapee
	f()
}

// escapee's address is taken in TakeFunc; sameSig's never is, so only
// escapee gets the dynamic edge despite the identical signature.
func escapee() {}

func sameSig() {}

// UseSameSig calls sameSig statically so it is not dead code — but its
// address still never escapes.
func UseSameSig() {
	sameSig()
}

// PassFunc escapes otherSig by argument; InvokeParam calls its parameter.
func PassFunc() {
	InvokeParam(otherSig)
}

func InvokeParam(f func(int) int) int {
	return f(7)
}

func otherSig(x int) int { return x }

// Lits attributes calls inside a function literal to the enclosing
// declaration, and skips the immediately-invoked literal itself.
func Lits() {
	g := func() {
		helper()
	}
	g()
	func() {
		CallStatic()
	}()
}

// MethodValue takes v.Do as a value: the method escapes and receiver-free
// signature matching finds it at the dynamic call site.
func MethodValue(v Value) {
	f := v.Do
	f()
}
