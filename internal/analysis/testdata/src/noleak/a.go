// Package noleak exercises the noleak analyzer: goroutines without a
// lifecycle signal, and bare time.Sleep in library code.
package noleak

import (
	"context"
	"sync"
	"time"
)

// Leak launches a background loop nothing can stop or await: the stricter
// background-service rule fires.
func Leak() {
	go func() { // want `background loop goroutine must take a stop signal`
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

// LeakNoLoop launches a loop-free goroutine with no signal at all: the base
// rule fires.
func LeakNoLoop() {
	go func() { // want `without lifecycle control`
		_ = 1 + 1
	}()
}

// LoopOnlyStop can be told to exit but never joined: Close can't know when
// the loop is gone.
func LoopOnlyStop(stop chan struct{}) {
	go func() { // want `background loop goroutine must take a stop signal`
		for {
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
}

// LoopOnlyJoin is awaited but can never be told to exit.
func LoopOnlyJoin(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // want `background loop goroutine must take a stop signal`
		defer wg.Done()
		for {
			_ = 1 + 1
		}
	}()
}

// LoopStopAndJoin is the required shape: a stop signal and a WaitGroup,
// exactly how the adaptive tuner's epoch loop is written.
func LoopStopAndJoin(stop chan struct{}, wg *sync.WaitGroup) {
	wg.Add(1)
	go func(stop <-chan struct{}, wg *sync.WaitGroup) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
		}
	}(stop, wg)
}

// LoopCtxAndJoin: a context is an equally good stop signal.
func LoopCtxAndJoin(ctx context.Context, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
	}()
}

// InnerLitLoop: the infinite loop lives in a nested literal that is called
// synchronously, not in the goroutine body itself — only the base rule
// applies, and the WaitGroup satisfies it.
func InnerLitLoop(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		f := func(n int) int {
			for {
				if n > 0 {
					return n
				}
				n++
			}
		}
		_ = f(0)
	}()
}

// WithCtx is stoppable through the context.
func WithCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// WithChan is stoppable through the channel.
func WithChan(stop chan struct{}) {
	go func() {
		<-stop
	}()
}

// WithWG is awaited through the WaitGroup.
func WithWG(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

// ArgCtx passes the context into a named function: the signal is visible in
// the arguments.
func ArgCtx(ctx context.Context) {
	go watch(ctx)
}

func watch(ctx context.Context) { <-ctx.Done() }

// Sleepy naps on the wall clock.
func Sleepy() {
	time.Sleep(time.Second) // want `bare time.Sleep`
}

// SleepAllowed is annotated: a deliberate, justified nap.
func SleepAllowed() {
	time.Sleep(time.Millisecond) //mrlint:allow noleak polling fallback documented in DESIGN.md
}
