// Package noleak exercises the noleak analyzer: goroutines without a
// lifecycle signal, and bare time.Sleep in library code.
package noleak

import (
	"context"
	"sync"
	"time"
)

// Leak launches a goroutine nothing can stop or await.
func Leak() {
	go func() { // want `without lifecycle control`
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

// WithCtx is stoppable through the context.
func WithCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// WithChan is stoppable through the channel.
func WithChan(stop chan struct{}) {
	go func() {
		<-stop
	}()
}

// WithWG is awaited through the WaitGroup.
func WithWG(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

// ArgCtx passes the context into a named function: the signal is visible in
// the arguments.
func ArgCtx(ctx context.Context) {
	go watch(ctx)
}

func watch(ctx context.Context) { <-ctx.Done() }

// Sleepy naps on the wall clock.
func Sleepy() {
	time.Sleep(time.Second) // want `bare time.Sleep`
}

// SleepAllowed is annotated: a deliberate, justified nap.
func SleepAllowed() {
	time.Sleep(time.Millisecond) //mrlint:allow noleak polling fallback documented in DESIGN.md
}
