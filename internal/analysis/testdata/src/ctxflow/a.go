// Package ctxflow exercises the ctxflow analyzer: no context.Background/TODO
// below a context-bearing function, no context.Context struct fields.
package ctxflow

import "context"

// Serve is a root: it takes a context, so everything it reaches is on a
// cancellation-bearing path.
func Serve(ctx context.Context) error {
	if err := step(); err != nil {
		return err
	}
	return finish(ctx)
}

// step is below Serve: minting a fresh root context here severs the caller's
// cancellation.
func step() error {
	ctx := context.Background() // want `context.Background below context-bearing root ctxflow\.Serve`
	return work(ctx)
}

func finish(ctx context.Context) error {
	_ = context.TODO() // want `context.TODO below context-bearing root`
	return work(ctx)
}

func work(ctx context.Context) error {
	<-ctx.Done()
	return nil
}

// Detached is NOT reachable from any context-bearing function: a fresh root
// context is exactly what a detached entry point should make.
func Detached() error {
	return work(context.Background())
}

// AllowedDetach documents a deliberate refcounted detach, coalescer-style.
func AllowedDetach(ctx context.Context) error {
	//mrlint:allow ctxflow flight context outlives any one waiter; lifetime is refcounted
	flight := context.Background()
	_ = ctx
	return work(flight)
}

// holder stores a context in struct state: flagged at the field regardless of
// reachability — contexts flow down call stacks.
type holder struct {
	ctx context.Context // want `context.Context stored in a field of holder`
	n   int
}

// owner is an annotated exception.
type owner struct {
	//mrlint:allow ctxflow request-scoped carrier; cleared when the request ends
	ctx context.Context
}

func (h *holder) use() int { return h.n }

func (o *owner) use(ctx context.Context) { o.ctx = ctx }
