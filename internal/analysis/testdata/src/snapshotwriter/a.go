// Package snapshotwriter is on frozen's allowed-writers list in the test
// configuration, so its direct field writes pass.
package snapshotwriter

import "frozen"

// Refine is allowed to write: the test config lists this package as a
// writer for package frozen.
func Refine(n *frozen.Node) {
	n.K = 7
	n.Extent = append(n.Extent, 1)
}
