package analysis

import (
	"go/ast"
	"go/types"
)

// SnapshotMut returns the analyzer enforcing snapshot immutability
// statically. protected maps a package path to the additional packages
// allowed to write its struct fields; the owning package itself is always
// allowed.
//
// The engine's correctness argument is that a published snapshot — the
// M*(k)-index behind engine.snap, built out of index.Graph nodes — is never
// mutated again: refinement clones, mutates the private copy, and publishes
// a fresh pointer. At runtime that is checked by fingerprinting; statically
// it means no package outside the owners may assign to fields of types those
// packages declare, whether directly (n.K = 3) or through an element
// (n.Extent[0] = v).
func SnapshotMut(protected map[string][]string) *Analyzer {
	return &Analyzer{
		Name: "snapshotmut",
		Doc:  "index/engine struct fields may only be assigned inside their owning packages",
		Run:  func(pass *Pass) { runSnapshotMut(pass, protected) },
	}
}

func runSnapshotMut(pass *Pass, protected map[string][]string) {
	cur := pass.Pkg.Path
	check := func(lhs ast.Expr) {
		sel, ok := unwrapLValue(lhs).(*ast.SelectorExpr)
		if !ok {
			return
		}
		selection, ok := pass.Pkg.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return
		}
		field := selection.Obj()
		if field.Pkg() == nil {
			return
		}
		owner := field.Pkg().Path()
		allowed, isProtected := protected[owner]
		if !isProtected || cur == owner {
			return
		}
		for _, w := range allowed {
			if w == cur {
				return
			}
		}
		pass.Reportf(lhs.Pos(), "write to field %s of %s.%s outside its owning package %s: published snapshots are immutable; mutate through the owner's API",
			field.Name(), owner, fieldOwnerType(selection), owner)
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					check(lhs)
				}
			case *ast.IncDecStmt:
				check(n.X)
			}
			return true
		})
	}
}

// fieldOwnerType names the struct type a selection's field belongs to, for
// diagnostics.
func fieldOwnerType(sel *types.Selection) string {
	t := sel.Recv()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
