package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestParseDirectives(t *testing.T) {
	fset, files := parseSrc(t, `package p

func f() {
	//mrlint:allow nopanic,noleak both suppressed here
	g()
	h() //mrlint:allow errwrap trailing form
}
func g() {}
func h() {}
`)
	sup, bad := parseDirectives(fset, files)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed directives: %v", bad)
	}
	// The standalone directive is on line 4 and covers lines 4 and 5 for
	// both named analyzers.
	for _, line := range []int{4, 5} {
		for _, a := range []string{"nopanic", "noleak"} {
			if !sup.allows("d.go", line, a) {
				t.Errorf("line %d should allow %s", line, a)
			}
		}
	}
	if sup.allows("d.go", 6, "nopanic") {
		t.Errorf("line 6 should not allow nopanic")
	}
	if !sup.allows("d.go", 6, "errwrap") {
		t.Errorf("line 6 should allow errwrap (trailing directive)")
	}
}

func TestMalformedDirectiveReported(t *testing.T) {
	fset, files := parseSrc(t, `package p

//mrlint:allow nopanic
func f() {}

//mrlint:allow
func g() {}
`)
	sup, bad := parseDirectives(fset, files)
	if len(bad) != 2 {
		t.Fatalf("want 2 malformed-directive findings, got %v", bad)
	}
	for _, f := range bad {
		if f.Analyzer != "mrlint" || !strings.Contains(f.Message, "malformed directive") {
			t.Errorf("unexpected finding %v", f)
		}
	}
	// A malformed directive suppresses nothing.
	if sup.allows("d.go", 3, "nopanic") || sup.allows("d.go", 4, "nopanic") {
		t.Errorf("reason-less directive must not suppress")
	}
}
