package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ErrWrapConfig scopes the errwrap analyzer. Packages maps each covered
// package path to the prefix its error messages must carry (the section
// naming convention the store fuzz targets assert, e.g. "store: ").
// ReadPrefixes are the function-name prefixes marking read paths.
type ErrWrapConfig struct {
	Packages     map[string]string
	ReadPrefixes []string
}

// DefaultReadPrefixes marks deserialization entry points and their helpers.
var DefaultReadPrefixes = []string{"Read", "Open", "Load", "read", "open", "load"}

// ErrWrap returns the analyzer enforcing the store's error conventions on
// its read paths:
//
//  1. fmt.Errorf with an error argument must wrap it with %w, so callers can
//     errors.Is/As through the store layer;
//  2. error text must name the corrupt section, which the convention spells
//     as a "store: <section>" prefix (asserted by the fuzz targets);
//  3. a read-path function must not return an error produced by another
//     package (io, encoding/binary, ...) unwrapped — the caller would see
//     "unexpected EOF" with no idea which section died. Errors produced by
//     this package's own helpers are already wrapped and may pass through.
func ErrWrap(cfg ErrWrapConfig) *Analyzer {
	return &Analyzer{
		Name: "errwrap",
		Doc:  "store read paths must wrap errors with %w and name the corrupt section",
		Run:  func(pass *Pass) { runErrWrap(pass, cfg) },
	}
}

func runErrWrap(pass *Pass, cfg ErrWrapConfig) {
	prefix, ok := cfg.Packages[pass.Pkg.Path]
	if !ok {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkErrorfCalls(pass, fd.Body, prefix)
			if isReadPath(fd.Name.Name, cfg.ReadPrefixes) {
				checkUnwrappedReturns(pass, fd.Body)
			}
		}
	}
}

func isReadPath(name string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// checkErrorfCalls enforces rules 1 and 2 on every fmt.Errorf in the body.
func checkErrorfCalls(pass *Pass, body *ast.BlockStmt, prefix string) {
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPkgFunc(info, call.Fun, "fmt", "Errorf") || len(call.Args) == 0 {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok {
			return true
		}
		format, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		hasErrArg := false
		for _, arg := range call.Args[1:] {
			if t := info.TypeOf(arg); t != nil && isErrorType(t) {
				hasErrArg = true
			}
		}
		if hasErrArg && !strings.Contains(format, "%w") {
			pass.Reportf(call.Pos(), "error argument formatted without %%w: callers cannot unwrap it")
		}
		if !strings.HasPrefix(format, prefix) {
			pass.Reportf(call.Pos(), "error text must name the section: message should start with %q", prefix)
		}
		return true
	})
}

// checkUnwrappedReturns enforces rule 3: a returned bare error identifier
// whose most recent assignment came from a call into another package.
func checkUnwrappedReturns(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	// Record every assignment to an error variable: object -> assign
	// positions with the call (if any) on the right-hand side.
	type errSource struct {
		pos  int // offset of the assignment
		call *ast.CallExpr
	}
	sources := make(map[types.Object][]errSource)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		var call *ast.CallExpr
		if len(as.Rhs) == 1 {
			call, _ = as.Rhs[0].(*ast.CallExpr)
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil || !isErrorType(obj.Type()) {
				continue
			}
			src := errSource{pos: int(as.Pos()), call: call}
			if call == nil && i < len(as.Rhs) {
				if c, ok := as.Rhs[i].(*ast.CallExpr); ok {
					src.call = c
				}
			}
			sources[obj] = append(sources[obj], src)
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			id, ok := res.(*ast.Ident)
			if !ok || id.Name == "nil" {
				continue
			}
			obj := info.Uses[id]
			if obj == nil || !isErrorType(obj.Type()) {
				continue
			}
			var last *errSource
			for i := range sources[obj] {
				s := &sources[obj][i]
				if s.pos < int(ret.Pos()) && (last == nil || s.pos > last.pos) {
					last = s
				}
			}
			if last == nil || last.call == nil {
				continue
			}
			pkg, name, ok := pkgFuncOf(info, last.call.Fun)
			if !ok || pkg == pass.Pkg.Path {
				continue // in-package helpers wrap on the way out
			}
			pass.Reportf(res.Pos(), "error from %s.%s returned unwrapped: wrap it with fmt.Errorf(\"...: %%w\", err) naming the section", pkg, name)
		}
		return true
	})
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() == nil && obj.Name() == "error"
}
