package analysis

import (
	"go/ast"
	"go/types"
)

// isNamed reports whether t is the named type pkgPath.name (after stripping
// type arguments, so atomic.Pointer[T] matches "sync/atomic", "Pointer").
func isNamed(t types.Type, pkgPath, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isPkgFunc reports whether fun is a reference to the package-level function
// pkgPath.name (e.g. "time".Sleep, "fmt".Errorf).
func isPkgFunc(info *types.Info, fun ast.Expr, pkgPath, name string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false // a method like time.Time.After, not the package function
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// pkgFuncOf returns the (package path, name) of the function fun refers to,
// or ok=false if fun does not resolve to a package-level function or method.
func pkgFuncOf(info *types.Info, fun ast.Expr) (pkgPath, name string, ok bool) {
	var obj types.Object
	switch fun := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return "", "", false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// unwrapLValue strips parens, stars and index expressions from an assignment
// target, returning the innermost addressable expression: for `n.Extent[0]`
// it returns the selector `n.Extent`, for `(*p).K` the selector `.K`.
func unwrapLValue(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return e
		}
	}
}

// containsNoCopy reports whether values of t must not be copied because they
// hold synchronization state: any type declared in sync or sync/atomic, or
// any struct/array transitively containing one.
func containsNoCopy(t types.Type) bool {
	return containsNoCopy1(t, make(map[types.Type]bool))
}

func containsNoCopy1(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sync", "sync/atomic":
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsNoCopy1(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsNoCopy1(u.Elem(), seen)
	}
	return false
}
