package analysis

import (
	"go/ast"
	"go/types"
)

// NoPanic returns the analyzer forbidding panic in library code.
//
// Library code must return errors for anything an input can trigger; the
// difftest fuzzers exist precisely because index.FromExtents and the store
// readers once panicked on corrupt bytes. Panics that guard internal
// invariants (states unreachable from any input, e.g. "index: split of dead
// node") stay, annotated with //mrlint:allow nopanic <reason>. Commands
// (package main) and test files are exempt.
func NoPanic() *Analyzer {
	return &Analyzer{
		Name: "nopanic",
		Doc:  "forbid panic in non-main library code; annotate internal-invariant panics",
		Run:  runNoPanic,
	}
}

func runNoPanic(pass *Pass) {
	if pass.Pkg.Types.Name() == "main" {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
				return true
			}
			pass.Reportf(call.Pos(), "panic in library code: return an error instead, or annotate an internal invariant with //mrlint:allow nopanic <reason>")
			return true
		})
	}
}
