package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CallGraph is a conservative module-wide call graph over every function
// declared in a set of loaded packages. It is built once per Run and shared
// read-only by all interprocedural analyzers (hotpathalloc, ctxflow,
// lifecycle).
//
// Edges are resolved three ways, in decreasing order of precision:
//
//   - Static calls: the callee expression resolves through go/types to a
//     concrete *types.Func (package functions, methods on concrete types,
//     generic instantiations normalized via Origin).
//   - Interface-method calls: the callee is a method of an interface type.
//     The edge fans out to every module-local concrete method that the
//     dispatch could reach — every named type in the module that implements
//     the interface contributes its method of that name.
//   - Function-value calls: the callee is an expression of function type
//     that does not name a function (a parameter, field, or variable). The
//     edge fans out to every module-local function whose value escapes
//     somewhere in the module (referenced outside a direct call position)
//     with an identical signature.
//
// Soundness limits, by construction: calls made by function literals are
// attributed to the function whose declaration lexically contains the
// literal (the literal may in fact run elsewhere, or never); function
// literals are not themselves dynamic-call targets; package-level variable
// initializers have no enclosing function and are not walked; generic named
// types with unbound type parameters are skipped during interface-implementer
// scans. Every limit widens or narrows the graph conservatively for the
// checks built on it and is documented in DESIGN.md §16.
type CallGraph struct {
	fset  *token.FileSet
	nodes map[*types.Func]*CallNode
	fns   []*types.Func // deterministic declaration order
}

// CallNode is one declared function with its resolved module-local callees.
type CallNode struct {
	Fn      *types.Func
	Decl    *ast.FuncDecl
	Pkg     *Package
	callees []*types.Func
}

// Callees returns the module-local functions this node may call, in
// deterministic (declaration position) order.
func (n *CallNode) Callees() []*types.Func { return n.callees }

// Node returns the call-graph node of fn (normalized through Origin), or nil
// when fn is not declared in the analyzed packages.
func (g *CallGraph) Node(fn *types.Func) *CallNode {
	if fn == nil {
		return nil
	}
	return g.nodes[fn.Origin()]
}

// Functions lists every declared function in deterministic order.
func (g *CallGraph) Functions() []*types.Func { return g.fns }

// Reachable returns the set of functions reachable from roots through
// module-local call edges, including the roots themselves. Functions for
// which stop returns true are included in the set but their outgoing edges
// are not followed (an explicit enforcement boundary); a nil stop follows
// every edge.
func (g *CallGraph) Reachable(roots []*types.Func, stop func(*types.Func) bool) map[*types.Func]bool {
	prov := g.Provenance(roots, stop)
	seen := make(map[*types.Func]bool, len(prov))
	for fn := range prov {
		seen[fn] = true
	}
	return seen
}

// Provenance is Reachable with blame: each reachable function maps to the
// root it was first discovered from. Roots are visited in deterministic
// (declaration position) order, so the blame assignment is stable across
// runs and does not depend on map iteration.
func (g *CallGraph) Provenance(roots []*types.Func, stop func(*types.Func) bool) map[*types.Func]*types.Func {
	ordered := make([]*types.Func, 0, len(roots))
	for _, r := range roots {
		if r = r.Origin(); g.nodes[r] != nil {
			ordered = append(ordered, r)
		}
	}
	ordered = (&cgBuilder{g: g}).canonical(ordered)

	prov := make(map[*types.Func]*types.Func)
	var queue []*types.Func
	for _, r := range ordered {
		if _, ok := prov[r]; !ok {
			prov[r] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if stop != nil && stop(fn) {
			continue
		}
		for _, c := range g.nodes[fn].callees {
			if _, ok := prov[c]; !ok {
				prov[c] = prov[fn]
				queue = append(queue, c)
			}
		}
	}
	return prov
}

// cgBuilder accumulates unresolved edges during the AST walk; interface and
// function-value edges need the whole module collected before they can be
// resolved.
type cgBuilder struct {
	g *CallGraph

	// ifaceCalls: caller -> interface methods it invokes.
	ifaceCalls map[*types.Func][]*types.Func
	// dynCalls: caller -> signature keys of function-value calls it makes.
	dynCalls map[*types.Func][]string
	// escaped: signature key -> module functions whose value escapes.
	escaped map[string][]*types.Func
	// namedTypes: every named (non-generic) type declared in the module.
	namedTypes []*types.Named
	// implMemo caches interface-method fan-out per interface method.
	implMemo map[*types.Func][]*types.Func
}

// BuildCallGraph builds the call graph over pkgs. The packages must share
// one token.FileSet (which one Loader guarantees).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	b := &cgBuilder{
		g:          &CallGraph{nodes: make(map[*types.Func]*CallNode)},
		ifaceCalls: make(map[*types.Func][]*types.Func),
		dynCalls:   make(map[*types.Func][]string),
		escaped:    make(map[string][]*types.Func),
		implMemo:   make(map[*types.Func][]*types.Func),
	}
	for _, pkg := range pkgs {
		if b.g.fset == nil {
			b.g.fset = pkg.Fset
		}
		b.collectDecls(pkg)
		b.collectNamedTypes(pkg)
	}
	for _, fn := range b.g.fns {
		b.walkBody(b.g.nodes[fn])
	}
	b.resolve()
	return b.g
}

// collectDecls registers every function declaration of pkg as a node.
func (b *cgBuilder) collectDecls(pkg *Package) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pkg.Info.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			fn = fn.Origin()
			b.g.nodes[fn] = &CallNode{Fn: fn, Decl: decl, Pkg: pkg}
			b.g.fns = append(b.g.fns, fn)
		}
	}
}

// collectNamedTypes records the module's named types for interface-dispatch
// resolution. Generic types with unbound parameters are skipped: the graph
// only sees their instantiated methods through static edges.
func (b *cgBuilder) collectNamedTypes(pkg *Package) {
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || named.TypeParams().Len() > 0 {
			continue
		}
		b.namedTypes = append(b.namedTypes, named)
	}
}

// walkBody records the outgoing edges of one declared function: its own body
// plus the bodies of every function literal it lexically contains.
func (b *cgBuilder) walkBody(n *CallNode) {
	if n.Decl.Body == nil {
		return
	}
	info := n.Pkg.Info
	// Direct callee positions: expressions used as the Fun of a call are not
	// "escaped" function values.
	direct := make(map[ast.Expr]bool)
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		direct[unwrapCallee(call.Fun)] = true
		b.recordCall(n, call)
		return true
	})
	// Escaped function values: any reference to a *types.Func outside a
	// direct call position makes the function a potential dynamic callee.
	// Sel identifiers are handled through their enclosing SelectorExpr, not
	// on their own.
	selIdent := make(map[*ast.Ident]bool)
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		if sel, ok := nd.(*ast.SelectorExpr); ok {
			selIdent[sel.Sel] = true
		}
		return true
	})
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		var obj types.Object
		switch e := nd.(type) {
		case *ast.Ident:
			if selIdent[e] {
				return true
			}
			obj = info.Uses[e]
		case *ast.SelectorExpr:
			obj = info.Uses[e.Sel]
		default:
			return true
		}
		fn, ok := obj.(*types.Func)
		if !ok || direct[nd.(ast.Expr)] {
			return true
		}
		fn = fn.Origin()
		if b.g.nodes[fn] != nil {
			key := sigKey(fn.Type().(*types.Signature))
			b.escaped[key] = append(b.escaped[key], fn)
		}
		return true
	})
}

// unwrapCallee strips parens and generic instantiation indexes from a call's
// Fun expression, so f[T](x) and (f)(x) resolve like f(x).
func unwrapCallee(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		default:
			return e
		}
	}
}

// recordCall classifies one call expression in caller n.
func (b *cgBuilder) recordCall(n *CallNode, call *ast.CallExpr) {
	info := n.Pkg.Info
	fun := unwrapCallee(call.Fun)

	// Type conversions are not calls.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}

	var obj types.Object
	switch e := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	}
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			if _, isIface := recv.Type().Underlying().(*types.Interface); isIface {
				b.ifaceCalls[n.Fn] = append(b.ifaceCalls[n.Fn], fn)
				return
			}
		}
		fn = fn.Origin()
		if b.g.nodes[fn] != nil {
			n.callees = append(n.callees, fn)
		}
		return
	}
	if _, ok := fun.(*ast.FuncLit); ok {
		// Immediately invoked literal: its body is already attributed to n.
		return
	}
	// Function-value call: resolve by signature against escaped functions.
	if tv, ok := info.Types[call.Fun]; ok {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			b.dynCalls[n.Fn] = append(b.dynCalls[n.Fn], sigKey(sig))
		}
	}
}

// resolve turns the deferred interface and function-value callsites into
// concrete edges and canonicalizes every adjacency list.
func (b *cgBuilder) resolve() {
	for caller, methods := range b.ifaceCalls {
		n := b.g.nodes[caller]
		for _, m := range methods {
			n.callees = append(n.callees, b.implementers(m)...)
		}
	}
	for caller, keys := range b.dynCalls {
		n := b.g.nodes[caller]
		for _, key := range keys {
			n.callees = append(n.callees, b.escaped[key]...)
		}
	}
	for _, n := range b.g.nodes {
		n.callees = b.canonical(n.callees)
	}
	b.g.fns = b.canonical(b.g.fns)
}

// implementers returns the module-local concrete methods an interface-method
// call could dispatch to.
func (b *cgBuilder) implementers(m *types.Func) []*types.Func {
	if out, ok := b.implMemo[m]; ok {
		return out
	}
	iface, ok := m.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	var out []*types.Func
	if ok {
		for _, named := range b.namedTypes {
			ptr := types.NewPointer(named)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			sel := types.NewMethodSet(ptr).Lookup(m.Pkg(), m.Name())
			if sel == nil {
				continue
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				if fn = fn.Origin(); b.g.nodes[fn] != nil {
					out = append(out, fn)
				}
			}
		}
	}
	b.implMemo[m] = out
	return out
}

// canonical sorts by declaration position and drops duplicates, giving every
// adjacency list a deterministic order independent of map iteration.
func (b *cgBuilder) canonical(fns []*types.Func) []*types.Func {
	sort.Slice(fns, func(i, j int) bool {
		pi, pj := b.g.fset.Position(fns[i].Pos()), b.g.fset.Position(fns[j].Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	w := 0
	for i, fn := range fns {
		if i == 0 || fn != fns[i-1] {
			fns[w] = fn
			w++
		}
	}
	return fns[:w]
}

// sigKey renders a signature as a receiver-free type key: two functions are
// dynamic-call-compatible iff their keys match. Method values compare by
// their bound signature, so a stored t.Stop matches calls through func().
func sigKey(sig *types.Signature) string {
	var sb strings.Builder
	sb.WriteString("func(")
	writeTuple(&sb, sig.Params(), sig.Variadic())
	sb.WriteString(")(")
	writeTuple(&sb, sig.Results(), false)
	sb.WriteString(")")
	return sb.String()
}

func writeTuple(sb *strings.Builder, t *types.Tuple, variadic bool) {
	for i := 0; i < t.Len(); i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		typ := t.At(i).Type()
		if variadic && i == t.Len()-1 {
			sb.WriteString("...")
			if sl, ok := typ.(*types.Slice); ok {
				typ = sl.Elem()
			}
		}
		sb.WriteString(types.TypeString(typ, nil))
	}
}
