package analysis

import (
	"go/types"
	"testing"
)

// loadCG loads one testdata package and builds its call graph.
func loadCG(t *testing.T, path string) *CallGraph {
	t.Helper()
	l := NewLoader(testdata, "")
	pkg, err := l.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	return BuildCallGraph([]*Package{pkg})
}

// fnLabel names a function Recv.Name or Name, enough to address fixture code.
func fnLabel(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		rt := recv.Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if n, ok := rt.(*types.Named); ok {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

func findFn(t *testing.T, cg *CallGraph, label string) *types.Func {
	t.Helper()
	for _, fn := range cg.Functions() {
		if fnLabel(fn) == label {
			return fn
		}
	}
	t.Fatalf("function %q not found in call graph", label)
	return nil
}

func calleeLabels(cg *CallGraph, fn *types.Func) map[string]bool {
	out := make(map[string]bool)
	for _, c := range cg.Node(fn).Callees() {
		out[fnLabel(c)] = true
	}
	return out
}

func TestCallGraphStaticEdges(t *testing.T) {
	cg := loadCG(t, "callgraph")
	callees := calleeLabels(cg, findFn(t, cg, "CallStatic"))
	for _, want := range []string{"CallIface", "helper"} {
		if !callees[want] {
			t.Errorf("CallStatic should call %s, has %v", want, callees)
		}
	}
}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	cg := loadCG(t, "callgraph")
	callees := calleeLabels(cg, findFn(t, cg, "CallIface"))
	for _, want := range []string{"Value.Do", "Pointer.Do"} {
		if !callees[want] {
			t.Errorf("interface dispatch should fan out to %s, has %v", want, callees)
		}
	}
	if callees["Loner.Other"] {
		t.Errorf("Loner does not implement Doer; edges %v", callees)
	}
}

func TestCallGraphFunctionValueEdges(t *testing.T) {
	cg := loadCG(t, "callgraph")

	callees := calleeLabels(cg, findFn(t, cg, "TakeFunc"))
	if !callees["escapee"] {
		t.Errorf("TakeFunc's f() should resolve to the escaped escapee, has %v", callees)
	}
	if callees["sameSig"] {
		t.Errorf("sameSig never escapes; a dynamic edge to it is wrong: %v", callees)
	}

	callees = calleeLabels(cg, findFn(t, cg, "InvokeParam"))
	if !callees["otherSig"] {
		t.Errorf("InvokeParam's f(7) should resolve to otherSig (escaped at the PassFunc call), has %v", callees)
	}
}

func TestCallGraphMethodValueEdge(t *testing.T) {
	cg := loadCG(t, "callgraph")
	callees := calleeLabels(cg, findFn(t, cg, "MethodValue"))
	if !callees["Value.Do"] {
		t.Errorf("v.Do taken as a value then called should edge to Value.Do, has %v", callees)
	}
}

func TestCallGraphLiteralAttribution(t *testing.T) {
	cg := loadCG(t, "callgraph")
	callees := calleeLabels(cg, findFn(t, cg, "Lits"))
	for _, want := range []string{"helper", "CallStatic"} {
		if !callees[want] {
			t.Errorf("calls inside literals should be attributed to Lits: want %s in %v", want, callees)
		}
	}
}

func TestCallGraphProvenance(t *testing.T) {
	cg := loadCG(t, "callgraph")
	root := findFn(t, cg, "CallStatic")

	prov := cg.Provenance([]*types.Func{root}, nil)
	for _, want := range []string{"CallStatic", "CallIface", "Value.Do", "Pointer.Do", "helper"} {
		fn := findFn(t, cg, want)
		if prov[fn] != root {
			t.Errorf("%s should be blamed on CallStatic, got %v", want, prov[fn])
		}
	}
	if _, ok := prov[findFn(t, cg, "TakeFunc")]; ok {
		t.Errorf("TakeFunc is not reachable from CallStatic")
	}

	// A stop boundary is included but not traversed.
	boundary := findFn(t, cg, "CallIface")
	stopped := cg.Reachable([]*types.Func{root}, func(fn *types.Func) bool { return fn == boundary })
	if !stopped[boundary] {
		t.Errorf("the boundary itself should be reachable")
	}
	if stopped[findFn(t, cg, "Value.Do")] || stopped[findFn(t, cg, "Pointer.Do")] {
		t.Errorf("edges beyond the stop boundary must not be followed: %d reachable", len(stopped))
	}
}

func TestCallGraphGenerics(t *testing.T) {
	cg := loadCG(t, "generics")

	callees := calleeLabels(cg, findFn(t, cg, "Hot"))
	if !callees["NewSet"] {
		t.Errorf("instantiated NewSet[int] should edge to the origin declaration, has %v", callees)
	}

	callees = calleeLabels(cg, findFn(t, cg, "UseStack"))
	for _, want := range []string{"Stack.Push", "Stack.Pop", "below"} {
		if !callees[want] {
			t.Errorf("UseStack should call %s (instantiated method resolves to origin), has %v", want, callees)
		}
	}
}

func TestCallGraphDeterministic(t *testing.T) {
	a := loadCG(t, "callgraph")
	b := loadCG(t, "callgraph")
	af, bf := a.Functions(), b.Functions()
	if len(af) != len(bf) {
		t.Fatalf("function counts differ: %d vs %d", len(af), len(bf))
	}
	for i := range af {
		if fnLabel(af[i]) != fnLabel(bf[i]) {
			t.Fatalf("function order differs at %d: %s vs %s", i, fnLabel(af[i]), fnLabel(bf[i]))
		}
		ac, bc := a.Node(af[i]).Callees(), b.Node(bf[i]).Callees()
		if len(ac) != len(bc) {
			t.Fatalf("%s: callee counts differ", fnLabel(af[i]))
		}
		for j := range ac {
			if fnLabel(ac[j]) != fnLabel(bc[j]) {
				t.Errorf("%s: callee order differs at %d: %s vs %s", fnLabel(af[i]), j, fnLabel(ac[j]), fnLabel(bc[j]))
			}
		}
	}
}
