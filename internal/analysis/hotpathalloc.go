package analysis

import (
	"go/ast"
	"go/types"
)

// HotPathAlloc returns the interprocedural analyzer enforcing allocation
// discipline on the frozen read path.
//
// The CSR split (DESIGN.md §12) bought its −31…−37% ns/op precisely by
// keeping the frozen M*(k) read path free of maps and incidental
// allocation; nothing at runtime notices when a later change quietly
// reintroduces one. Functions annotated //mrx:hotpath — and everything
// reachable from them through module-local call edges in the shared call
// graph — may not:
//
//   - allocate a map (make(map...) or a map composite literal): hot
//     bookkeeping uses stamp arrays (query.Mark) and flat memo tables;
//   - call into fmt or reflect: both allocate and both are formatting/
//     introspection machinery that has no business on a read path;
//   - convert a concrete value to an interface inside a loop (explicitly
//     or implicitly at a call argument): each iteration boxes;
//   - grow a bare slice (declared `var s []T` or `s := []T{}` with no
//     capacity) with append inside a loop: preallocate with make and a
//     capacity hint instead.
//
// A function annotated //mrx:coldpath is an explicit boundary: calls may
// reach it from hot code (validation fan-out is the paper's deliberate
// expensive term), but neither its body nor anything only reachable
// through it is held to hot-path rules. Individual findings are silenced
// with //mrlint:allow hotpathalloc <reason>.
func HotPathAlloc() *Analyzer {
	return &Analyzer{
		Name: "hotpathalloc",
		Doc:  "functions reachable from //mrx:hotpath roots may not allocate maps, call fmt/reflect, box into interfaces in loops, or grow bare slices in loops",
		Run:  runHotPathAlloc,
	}
}

// hotClosure is the module-wide result shared by every hotpathalloc pass:
// which functions are hot, and which hot root each one is blamed on.
type hotClosure struct {
	prov map[*types.Func]*types.Func
}

func hotPathClosure(mod *Module) *hotClosure {
	return mod.Memo("hotpathalloc.closure", func() any {
		roots := make([]*types.Func, 0, len(mod.HotRoots()))
		for fn := range mod.HotRoots() {
			roots = append(roots, fn)
		}
		cold := mod.ColdBoundaries()
		prov := mod.CallGraph().Provenance(roots, func(fn *types.Func) bool {
			_, isCold := cold[fn]
			return isCold
		})
		for fn := range cold {
			delete(prov, fn)
		}
		return &hotClosure{prov: prov}
	}).(*hotClosure)
}

func runHotPathAlloc(pass *Pass) {
	closure := hotPathClosure(pass.Module)
	if len(closure.prov) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			fn, ok := pass.Pkg.Info.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			root, hot := closure.prov[fn.Origin()]
			if !hot {
				continue
			}
			checkHotBody(pass, decl, root)
		}
	}
}

// checkHotBody walks one hot function's body, tracking loop depth.
func checkHotBody(pass *Pass, decl *ast.FuncDecl, root *types.Func) {
	info := pass.Pkg.Info
	bare := bareSlices(info, decl.Body)
	where := "on hot path (via //mrx:hotpath root " + root.FullName() + ")"

	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.ForStmt:
			walkChildren(n, func(c ast.Node) { walk(c, true) })
			return
		case *ast.RangeStmt:
			walkChildren(n, func(c ast.Node) { walk(c, true) })
			return
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "map literal allocates %s; use a stamp array or flat table", where)
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, info, n, bare, inLoop, where)
		}
		walkChildren(n, func(c ast.Node) { walk(c, inLoop) })
	}
	walk(decl.Body, false)
}

// walkChildren visits the direct children of n.
func walkChildren(n ast.Node, visit func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			visit(c)
		}
		return false
	})
}

func checkHotCall(pass *Pass, info *types.Info, call *ast.CallExpr, bare map[types.Object]bool, inLoop bool, where string) {
	// Explicit conversion T(x)?
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if inLoop && isInterface(tv.Type) && len(call.Args) == 1 && !isInterface(typeOf(info, call.Args[0])) {
			pass.Reportf(call.Pos(), "conversion to interface %s inside a loop %s boxes every iteration", types.TypeString(tv.Type, nil), where)
		}
		return
	}

	if id, ok := unwrapCallee(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "make":
				if len(call.Args) > 0 {
					if tv, ok := info.Types[call.Args[0]]; ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							pass.Reportf(call.Pos(), "make(map) allocates %s; use a stamp array or flat table", where)
						}
					}
				}
			case "append":
				if inLoop && len(call.Args) > 0 {
					if id, ok := call.Args[0].(*ast.Ident); ok && bare[info.Uses[id]] {
						pass.Reportf(call.Pos(), "append grows %s (declared without capacity) inside a loop %s; preallocate with make and a capacity hint", id.Name, where)
					}
				}
			}
			return
		}
	}

	if path, name, ok := pkgFuncOf(info, call.Fun); ok {
		switch path {
		case "fmt", "reflect":
			pass.Reportf(call.Pos(), "call to %s.%s %s; formatting and reflection never belong on the read path", path, name, where)
			return
		}
	}

	// Implicit interface conversions at argument positions, in loops only.
	if !inLoop {
		return
	}
	sig := signatureOf(info, call.Fun)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i == params.Len()-1 && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if pt == nil || !isInterface(pt) {
			continue
		}
		at := typeOf(info, arg)
		if at == nil || isInterface(at) || isUntypedNil(info, arg) {
			continue
		}
		pass.Reportf(arg.Pos(), "argument %s boxes into interface %s inside a loop %s", types.TypeString(at, nil), types.TypeString(pt, nil), where)
	}
}

// bareSlices collects the slice variables declared in body with no capacity
// to their name: `var s []T`, or `s := []T{}` / `s := []T(nil)`. Appending
// to one of these inside a loop grows it a step at a time.
func bareSlices(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	bare := make(map[types.Object]bool)
	mark := func(id *ast.Ident) {
		obj := info.Defs[id]
		if obj == nil {
			return
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
			bare[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					mark(name)
				}
			}
		case *ast.AssignStmt:
			if n.Tok.String() != ":=" || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if isEmptySliceExpr(info, n.Rhs[i]) {
					mark(id)
				}
			}
		}
		return true
	})
	return bare
}

// isEmptySliceExpr reports whether e is `[]T{}` or `[]T(nil)`.
func isEmptySliceExpr(info *types.Info, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		tv, ok := info.Types[e]
		if !ok {
			return false
		}
		_, isSlice := tv.Type.Underlying().(*types.Slice)
		return isSlice && len(e.Elts) == 0
	case *ast.CallExpr:
		tv, ok := info.Types[e.Fun]
		if !ok || !tv.IsType() {
			return false
		}
		_, isSlice := tv.Type.Underlying().(*types.Slice)
		return isSlice && len(e.Args) == 1 && isUntypedNil(info, e.Args[0])
	}
	return false
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return true
	}
	return tv.IsNil()
}

// signatureOf returns the signature of the called expression, or nil when it
// is not a function call (builtin, conversion).
func signatureOf(info *types.Info, fun ast.Expr) *types.Signature {
	tv, ok := info.Types[fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}
