package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicDiscipline returns the analyzer enforcing the two rules that keep
// the engine's lock-free counters and snapshots honest:
//
//  1. A variable or field that is ever accessed through the sync/atomic
//     functions (atomic.AddInt64(&x, 1), atomic.LoadUint64(&f), ...) must be
//     accessed that way everywhere: one plain read or write next to atomic
//     ones is a data race the race detector only catches if a test happens
//     to interleave it.
//  2. Values holding synchronization state — sync.Mutex, sync.RWMutex,
//     sync.WaitGroup, sync.Once, the typed sync/atomic counters, or any
//     struct containing one (engine.Engine, engine.stats, the latency
//     histograms) — must never be copied: not assigned by value, not passed
//     or returned by value, not bound to a value receiver.
//
// This is the static shadow of the runtime guarantees around engine.snap,
// the stats counter block and core.PromotePrimeCalls.
func AtomicDiscipline() *Analyzer {
	return &Analyzer{
		Name: "atomicdiscipline",
		Doc:  "atomically-accessed state must never be accessed plainly; lock/atomic holders must not be copied",
		Run:  runAtomicDiscipline,
	}
}

func runAtomicDiscipline(pass *Pass) {
	info := pass.Pkg.Info

	// Pass 1: collect every variable/field whose address is taken by a
	// sync/atomic call, remembering the exact AST nodes used inside those
	// calls so pass 2 does not report the atomic accesses themselves.
	atomicObjs := make(map[types.Object]bool)
	inAtomicCall := make(map[ast.Node]bool)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, _, ok := pkgFuncOf(info, call.Fun); !ok || pkg != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				unary, ok := arg.(*ast.UnaryExpr)
				if !ok || unary.Op != token.AND {
					continue
				}
				target := unwrapLValue(unary.X)
				if obj := referencedObject(info, target); obj != nil {
					atomicObjs[obj] = true
					inAtomicCall[target] = true
					if s, ok := target.(*ast.SelectorExpr); ok {
						inAtomicCall[s.Sel] = true
					}
				}
			}
			return true
		})
	}

	// Pass 2: plain accesses to those objects, plus copies of no-copy
	// values.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				reportPlainAccess(pass, n, n.Sel, atomicObjs, inAtomicCall)
			case *ast.Ident:
				reportPlainAccess(pass, n, n, atomicObjs, inAtomicCall)
			case *ast.FuncDecl:
				checkSignatureCopies(pass, n.Recv, n.Type)
			case *ast.FuncLit:
				checkSignatureCopies(pass, nil, n.Type)
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					// Assigning to the blank identifier copies to
					// nowhere; it's the idiom for "use" a value.
					if len(n.Lhs) == len(n.Rhs) && isBlank(n.Lhs[i]) {
						continue
					}
					checkValueCopy(pass, rhs)
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := info.TypeOf(n.Value); t != nil && containsNoCopy(t) {
						pass.Reportf(n.Value.Pos(), "range copies lock or atomic state of type %s by value; iterate by index instead", t)
					}
				}
			}
			return true
		})
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// referencedObject resolves the variable or struct field an lvalue names.
func referencedObject(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		// Package-qualified variable (pkg.Var).
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}

func reportPlainAccess(pass *Pass, node ast.Expr, ident *ast.Ident, atomicObjs map[types.Object]bool, inAtomicCall map[ast.Node]bool) {
	if inAtomicCall[node] {
		return
	}
	info := pass.Pkg.Info
	var obj types.Object
	switch n := node.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[n]; ok && sel.Kind() == types.FieldVal {
			obj = sel.Obj()
		}
	case *ast.Ident:
		if v, ok := info.Uses[n].(*types.Var); ok && !v.IsField() {
			obj = v
		}
	}
	if obj == nil || !atomicObjs[obj] {
		return
	}
	pass.Reportf(node.Pos(), "%s is accessed with sync/atomic elsewhere; plain reads and writes of it race", obj.Name())
}

// checkSignatureCopies flags value receivers, parameters and results whose
// type holds synchronization state.
func checkSignatureCopies(pass *Pass, recv *ast.FieldList, ft *ast.FuncType) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.Pkg.Info.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if containsNoCopy(t) {
				pass.Reportf(field.Type.Pos(), "%s copies lock or atomic state of type %s by value; use a pointer", what, t)
			}
		}
	}
	check(recv, "receiver")
	check(ft.Params, "parameter")
	check(ft.Results, "result")
}

// checkValueCopy flags assignments whose right-hand side copies an existing
// no-copy value (reading a variable, field, element or dereference).
// Composite literals and calls construct fresh values and are left to the
// signature checks at their declaration sites.
func checkValueCopy(pass *Pass, rhs ast.Expr) {
	switch rhs.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	t := pass.Pkg.Info.TypeOf(rhs)
	if t == nil {
		return
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return
	}
	if containsNoCopy(t) {
		pass.Reportf(rhs.Pos(), "assignment copies lock or atomic state of type %s by value; use a pointer", t)
	}
}
