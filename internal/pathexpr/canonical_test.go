package pathexpr

import "testing"

var canonicalCases = []string{
	"//site/people/person",
	"/site/regions",
	"/site/regions/*/item",
	"//a//b/c",
	"/site//name",
	"//a//*/b",
	"//name",
	"/x",
	"//*",
}

// TestCanonicalMatchesString pins the canonical form to the String()
// rendering (they must stay interchangeable: existing keys, DOT labels and
// test expectations all use String).
func TestCanonicalMatchesString(t *testing.T) {
	for _, s := range canonicalCases {
		e, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got, want := Canonical(e), e.String(); got != want {
			t.Errorf("Canonical(%q) = %q, String = %q", s, got, want)
		}
		if got, want := CanonicalLen(e), len(e.String()); got != want {
			t.Errorf("CanonicalLen(%q) = %d, want %d", s, got, want)
		}
		if got := string(AppendCanonical(nil, e)); got != e.String() {
			t.Errorf("AppendCanonical(%q) = %q, want %q", s, got, e.String())
		}
	}
}

// TestCanonicalRoundTrip: parsing the canonical form yields an equal
// expression, and canonical forms agree exactly on equality.
func TestCanonicalRoundTrip(t *testing.T) {
	exprs := make([]*Expr, len(canonicalCases))
	for i, s := range canonicalCases {
		e, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		exprs[i] = e
		back, err := Parse(Canonical(e))
		if err != nil {
			t.Fatalf("Parse(Canonical(%q)): %v", s, err)
		}
		if !back.Equal(e) {
			t.Errorf("round trip of %q: got %q", s, Canonical(back))
		}
	}
	for i, a := range exprs {
		for j, b := range exprs {
			if (Canonical(a) == Canonical(b)) != a.Equal(b) {
				t.Errorf("canonical equality diverges from Equal for %q vs %q",
					canonicalCases[i], canonicalCases[j])
			}
		}
	}
}

// TestAppendCanonicalAllocs: with a pre-sized buffer the hot-path renderer
// must not allocate, and Canonical itself performs exactly one allocation.
func TestAppendCanonicalAllocs(t *testing.T) {
	e, err := Parse("//open_auction/bidder/personref/person/name")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, CanonicalLen(e))
	if n := testing.AllocsPerRun(100, func() {
		buf = AppendCanonical(buf[:0], e)
	}); n != 0 {
		t.Errorf("AppendCanonical allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		_ = Canonical(e)
	}); n > 1 {
		t.Errorf("Canonical allocates %v times per run, want <= 1", n)
	}
}
