// Package pathexpr models the simple path expressions of the paper: label
// paths, optionally prefixed with the self-or-descendant axis (//), with
// XPath-style wildcard steps. Beyond the paper it also supports the
// descendant axis between steps (//a//b, matched through one or more edges
// and therefore never precise on a finite-k index) and branching
// expressions p[q] (ParseBranching).
//
// Following the paper's convention (§5), the length of a path expression is
// its number of edges: length(l0/l1/…/ln) = n. A descendant expression
// //l0/…/ln matches any data node that terminates a node path whose labels
// are l0…ln, anywhere in the graph. A rooted expression /l0/…/ln anchors
// l0 at the children of the distinguished root node.
package pathexpr

import (
	"errors"
	"fmt"
	"strings"
)

// Step is one step of a path expression: either a literal label or the
// wildcard *.
type Step struct {
	Label    string
	Wildcard bool
	// Descendant marks a step reached through the descendant axis (//):
	// one or more edges instead of exactly one. Expressions containing a
	// mid-path descendant step match node paths of unbounded length, so no
	// finite local similarity makes them precise (RequiredK reports
	// Unbounded) and they are not usable as FUPs.
	Descendant bool
}

// Matches reports whether the step accepts a label.
func (s Step) Matches(label string) bool { return s.Wildcard || s.Label == label }

func (s Step) String() string {
	name := s.Label
	if s.Wildcard {
		name = "*"
	}
	if s.Descendant {
		return "/" + name // rendered after the joining slash: a//b
	}
	return name
}

// Expr is a parsed simple path expression.
type Expr struct {
	// Rooted is true for /a/b (anchored at the root's children) and false
	// for //a/b (descendant-anchored).
	Rooted bool
	Steps  []Step
}

// Length returns the number of edges in any node path matching the
// expression body: len(Steps)-1. The paper's precision criterion compares
// this length against index-node local similarity; for rooted expressions
// the extra root edge is accounted for by RequiredK.
func (e *Expr) Length() int { return len(e.Steps) - 1 }

// Unbounded is returned by RequiredK for expressions no finite local
// similarity can make precise (those with a mid-path descendant axis).
const Unbounded = int(^uint(0) >> 1)

// RequiredK returns the local similarity an index node must have for the
// expression to be answered precisely from the index: Length() for
// descendant expressions, Length()+1 for rooted ones (the incoming label
// path includes the root label), and Unbounded when a mid-path descendant
// axis makes the matched node paths arbitrarily long.
func (e *Expr) RequiredK() int {
	if e.HasDescendantStep() {
		return Unbounded
	}
	if e.Rooted {
		return e.Length() + 1
	}
	return e.Length()
}

// HasDescendantStep reports whether any step after the first uses the
// descendant axis (//a//b).
func (e *Expr) HasDescendantStep() bool {
	for _, s := range e.Steps {
		if s.Descendant {
			return true
		}
	}
	return false
}

// HasWildcard reports whether any step is a wildcard.
func (e *Expr) HasWildcard() bool {
	for _, s := range e.Steps {
		if s.Wildcard {
			return true
		}
	}
	return false
}

// String renders the expression in XPath-like syntax.
func (e *Expr) String() string {
	var b strings.Builder
	if e.Rooted {
		b.WriteString("/")
	} else {
		b.WriteString("//")
	}
	for i, s := range e.Steps {
		if i > 0 {
			b.WriteString("/")
		}
		b.WriteString(s.String())
	}
	return b.String()
}

// Parse parses a simple path expression: "/a/b", "//a/*/c", "//name".
// Labels may contain any characters except '/' and whitespace.
func Parse(s string) (*Expr, error) {
	orig := s
	if s == "" {
		return nil, errors.New("pathexpr: empty expression")
	}
	e := &Expr{Rooted: true}
	if strings.HasPrefix(s, "//") {
		e.Rooted = false
		s = s[2:]
	} else if strings.HasPrefix(s, "/") {
		s = s[1:]
	} else {
		// A bare label path is treated as descendant-anchored, matching the
		// paper's usage ("r/a/b" denotes the label path).
		e.Rooted = false
	}
	if s == "" {
		return nil, fmt.Errorf("pathexpr: no steps in %q", orig)
	}
	parts := strings.Split(s, "/")
	descendant := false
	for _, part := range parts {
		if part == "" {
			// An empty segment between two labels encodes the descendant
			// axis: a//b splits into ["a", "", "b"]. The first step cannot
			// be preceded by one (that slash belonged to the prefix).
			if len(e.Steps) == 0 || descendant {
				return nil, fmt.Errorf("pathexpr: empty step in %q", orig)
			}
			descendant = true
			continue
		}
		if strings.ContainsAny(part, " \t\n") {
			return nil, fmt.Errorf("pathexpr: whitespace in step %q", part)
		}
		step := Step{Label: part, Descendant: descendant}
		if part == "*" {
			step = Step{Wildcard: true, Descendant: descendant}
		}
		descendant = false
		e.Steps = append(e.Steps, step)
	}
	if descendant {
		return nil, fmt.Errorf("pathexpr: trailing slash in %q", orig)
	}
	return e, nil
}

// FromLabels builds a descendant-anchored expression from a label sequence.
func FromLabels(labels []string) *Expr {
	e := &Expr{}
	for _, l := range labels {
		e.Steps = append(e.Steps, Step{Label: l})
	}
	return e
}

// Labels returns the label sequence of a wildcard-free expression.
func (e *Expr) Labels() []string {
	out := make([]string, len(e.Steps))
	for i, s := range e.Steps {
		out[i] = s.String()
	}
	return out
}

// Prefix returns the descendant-anchored prefix expression consisting of the
// first n+1 steps (a path of length n). Prefix(e.Length()) equals e for
// descendant expressions.
func (e *Expr) Prefix(n int) *Expr {
	return &Expr{Rooted: e.Rooted, Steps: e.Steps[:n+1]}
}

// Suffix returns the descendant-anchored suffix expression of length n
// (the last n+1 steps).
func (e *Expr) Suffix(n int) *Expr {
	return &Expr{Steps: e.Steps[len(e.Steps)-n-1:]}
}

// Equal reports structural equality.
func (e *Expr) Equal(o *Expr) bool {
	if e.Rooted != o.Rooted || len(e.Steps) != len(o.Steps) {
		return false
	}
	for i := range e.Steps {
		if e.Steps[i] != o.Steps[i] {
			return false
		}
	}
	return true
}

// ParseBranching parses a branching path expression of the form p[q]:
// a simple path expression p with one trailing predicate q, as in
// //open_auction[bidder/personref]. It returns the incoming expression p
// and the outgoing expression implied by the predicate: q is relative to
// the node matched by p, so the returned out expression starts with p's
// final step followed by q's steps. The predicate may itself use the
// descendant axis (//person[watches//open_auction]).
func ParseBranching(s string) (in, out *Expr, err error) {
	open := strings.IndexByte(s, '[')
	if open < 0 || !strings.HasSuffix(s, "]") {
		return nil, nil, fmt.Errorf("pathexpr: %q is not a branching expression p[q]", s)
	}
	in, err = Parse(s[:open])
	if err != nil {
		return nil, nil, err
	}
	inner := s[open+1 : len(s)-1]
	if inner == "" {
		return nil, nil, fmt.Errorf("pathexpr: empty predicate in %q", s)
	}
	// The predicate is relative to the matched node: normalize "q" and
	// "//q" alike, remembering whether the first predicate step descends
	// directly or through the descendant axis.
	firstDescendant := false
	if strings.HasPrefix(inner, "//") {
		firstDescendant = true
		inner = inner[2:]
	} else {
		inner = strings.TrimPrefix(inner, "/")
	}
	q, err := Parse("//" + inner)
	if err != nil {
		return nil, nil, err
	}
	last := in.Steps[len(in.Steps)-1]
	steps := make([]Step, 0, len(q.Steps)+1)
	steps = append(steps, Step{Label: last.Label, Wildcard: last.Wildcard})
	for i, st := range q.Steps {
		if i == 0 {
			st.Descendant = firstDescendant
		}
		steps = append(steps, st)
	}
	return in, &Expr{Steps: steps}, nil
}
