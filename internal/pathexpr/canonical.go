package pathexpr

import "strings"

// Canonical returns the deterministic canonical form of e: the unique
// XPath-like rendering that Parse maps back to an equal expression. Two
// expressions are Equal exactly when their canonical forms coincide, which
// makes the result suitable as a map key wherever expressions must be
// deduplicated (the engine's workload tracker, the differential oracle's
// answer cache, the M*(k) FUP registry).
//
// The form is identical to String(), but the implementation performs exactly
// one allocation (the returned string, sized up front); hot paths that can
// reuse a buffer should call AppendCanonical instead, which allocates
// nothing when the buffer has capacity.
func Canonical(e *Expr) string {
	var b strings.Builder
	b.Grow(CanonicalLen(e))
	if !e.Rooted {
		b.WriteByte('/')
	}
	b.WriteByte('/')
	for i := range e.Steps {
		if i > 0 {
			b.WriteByte('/')
		}
		writeStep(&b, e.Steps[i])
	}
	return b.String()
}

func writeStep(b *strings.Builder, s Step) {
	if s.Descendant {
		b.WriteByte('/')
	}
	if s.Wildcard {
		b.WriteByte('*')
	} else {
		b.WriteString(s.Label)
	}
}

// CanonicalLen returns len(Canonical(e)) without building the string.
func CanonicalLen(e *Expr) int {
	n := 1 // leading slash
	if !e.Rooted {
		n++
	}
	for i, s := range e.Steps {
		if i > 0 {
			n++ // joining slash
		}
		if s.Descendant {
			n++
		}
		if s.Wildcard {
			n++
		} else {
			n += len(s.Label)
		}
	}
	return n
}

// AppendCanonical appends the canonical form of e to dst and returns the
// extended slice. It allocates nothing when dst has CanonicalLen(e) spare
// capacity, so callers keying a lookup structure by expression can render
// into a stack buffer and look up with string(dst) at zero cost.
func AppendCanonical(dst []byte, e *Expr) []byte {
	if !e.Rooted {
		dst = append(dst, '/')
	}
	dst = append(dst, '/')
	for i, s := range e.Steps {
		if i > 0 {
			dst = append(dst, '/')
		}
		if s.Descendant {
			dst = append(dst, '/')
		}
		if s.Wildcard {
			dst = append(dst, '*')
		} else {
			dst = append(dst, s.Label...)
		}
	}
	return dst
}
