package pathexpr

import (
	"strings"
	"testing"
)

// FuzzParse checks that parsing never panics and that every accepted
// expression round-trips: String() renders a canonical form that re-parses
// to a structurally equal expression with consistent derived properties.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"//a/b", "/a/b/c", "a/b", "//a/*/c", "/*", "//*", "a//b",
		"/a//b//c", "//name", "l0/l1/l2", "//open_auction/bidder",
		"//a[b/c]", "/x[y]", "//person[watches//open_auction]",
		"", "/", "//", "a//", "//a//", "* /", "a b",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		e, err := Parse(s)
		if err != nil {
			if e != nil {
				t.Fatalf("Parse(%q) returned both an expression and error %v", s, err)
			}
		} else {
			checkParsed(t, s, e)
		}
		// ParseBranching must be equally panic-free on arbitrary input.
		if in, out, err := ParseBranching(s); err == nil {
			checkParsed(t, s, in)
			checkParsed(t, s, out)
		}
	})
}

func checkParsed(t *testing.T, orig string, e *Expr) {
	t.Helper()
	if len(e.Steps) == 0 {
		t.Fatalf("Parse(%q) accepted an expression with no steps", orig)
	}
	if e.Steps[0].Descendant {
		t.Fatalf("Parse(%q): first step marked descendant", orig)
	}
	for _, st := range e.Steps {
		if st.Wildcard && st.Label != "" {
			t.Fatalf("Parse(%q): wildcard step carries label %q", orig, st.Label)
		}
		if !st.Wildcard && (st.Label == "" || strings.ContainsAny(st.Label, "/ \t\n")) {
			t.Fatalf("Parse(%q): malformed step label %q", orig, st.Label)
		}
	}
	canon := e.String()
	e2, err := Parse(canon)
	if err != nil {
		t.Fatalf("round-trip: Parse(%q) -> %q failed to re-parse: %v", orig, canon, err)
	}
	if !e.Equal(e2) {
		t.Fatalf("round-trip: %q -> %q parsed to a different expression", orig, canon)
	}
	if canon2 := e2.String(); canon2 != canon {
		t.Fatalf("String not canonical: %q -> %q", canon, canon2)
	}
	switch {
	case e.HasDescendantStep():
		if e.RequiredK() != Unbounded {
			t.Fatalf("%q: descendant-axis expression with finite RequiredK %d", canon, e.RequiredK())
		}
	case e.Rooted:
		if e.RequiredK() != e.Length()+1 {
			t.Fatalf("%q: rooted RequiredK %d, want %d", canon, e.RequiredK(), e.Length()+1)
		}
	default:
		if e.RequiredK() != e.Length() {
			t.Fatalf("%q: RequiredK %d, want %d", canon, e.RequiredK(), e.Length())
		}
	}
}
