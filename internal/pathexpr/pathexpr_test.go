package pathexpr

import (
	"reflect"
	"testing"
)

func TestParseDescendant(t *testing.T) {
	e := mustParse("//site/people/person")
	if e.Rooted {
		t.Error("should be descendant")
	}
	if e.Length() != 2 || e.RequiredK() != 2 {
		t.Errorf("length=%d requiredK=%d", e.Length(), e.RequiredK())
	}
	if got := e.String(); got != "//site/people/person" {
		t.Errorf("String = %q", got)
	}
}

func TestParseRooted(t *testing.T) {
	e := mustParse("/site/regions")
	if !e.Rooted {
		t.Error("should be rooted")
	}
	if e.Length() != 1 || e.RequiredK() != 2 {
		t.Errorf("length=%d requiredK=%d", e.Length(), e.RequiredK())
	}
	if got := e.String(); got != "/site/regions" {
		t.Errorf("String = %q", got)
	}
}

func TestParseBareLabelPath(t *testing.T) {
	e := mustParse("r/a/b")
	if e.Rooted {
		t.Error("bare path should be descendant-anchored")
	}
	if !reflect.DeepEqual(e.Labels(), []string{"r", "a", "b"}) {
		t.Errorf("labels = %v", e.Labels())
	}
}

func TestParseWildcard(t *testing.T) {
	e := mustParse("/site/regions/*/item")
	if !e.HasWildcard() {
		t.Error("wildcard lost")
	}
	if !e.Steps[2].Matches("africa") || !e.Steps[2].Matches("asia") {
		t.Error("wildcard should match anything")
	}
	if e.Steps[3].Matches("mail") {
		t.Error("literal step matched wrong label")
	}
	if got := e.String(); got != "/site/regions/*/item" {
		t.Errorf("String = %q", got)
	}
	if mustParse("//a").HasWildcard() {
		t.Error("no wildcard expected")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "/", "//", "///a", "//a///b", "/a/", "//a b/c", "//a//"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestSingleLabel(t *testing.T) {
	e := mustParse("//person")
	if e.Length() != 0 || e.RequiredK() != 0 {
		t.Errorf("single label: length=%d requiredK=%d", e.Length(), e.RequiredK())
	}
}

func TestPrefixSuffix(t *testing.T) {
	e := mustParse("//a/b/c/d")
	p := e.Prefix(1)
	if p.String() != "//a/b" {
		t.Errorf("Prefix = %q", p)
	}
	s := e.Suffix(1)
	if s.String() != "//c/d" {
		t.Errorf("Suffix = %q", s)
	}
	if full := e.Prefix(e.Length()); !full.Equal(e) {
		t.Error("full prefix != expr")
	}
}

func TestFromLabelsAndEqual(t *testing.T) {
	e := FromLabels([]string{"a", "b"})
	if !e.Equal(mustParse("//a/b")) {
		t.Error("FromLabels mismatch")
	}
	if e.Equal(mustParse("/a/b")) {
		t.Error("rooted vs descendant should differ")
	}
	if e.Equal(mustParse("//a/b/c")) {
		t.Error("lengths differ")
	}
	if e.Equal(mustParse("//a/c")) {
		t.Error("labels differ")
	}
}

func TestParseRejectsTrailingSlash(t *testing.T) {
	if _, err := Parse("//"); err == nil {
		t.Fatal("no error for trailing slash")
	}
}

// mustParse parses a fixed test query literal.
func mustParse(s string) *Expr {
	e, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}

func TestParseDescendantAxis(t *testing.T) {
	e := mustParse("//a//b/c")
	if !e.HasDescendantStep() {
		t.Fatal("descendant step lost")
	}
	if e.Steps[1].Descendant != true || e.Steps[0].Descendant || e.Steps[2].Descendant {
		t.Fatalf("descendant flags wrong: %+v", e.Steps)
	}
	if got := e.String(); got != "//a//b/c" {
		t.Errorf("String = %q", got)
	}
	if e.RequiredK() != Unbounded {
		t.Errorf("RequiredK = %d, want Unbounded", e.RequiredK())
	}
	r := mustParse("/site//name")
	if !r.Rooted || !r.Steps[1].Descendant {
		t.Error("rooted descendant parse wrong")
	}
	if r.String() != "/site//name" {
		t.Errorf("String = %q", r.String())
	}
	if mustParse("//a/b").HasDescendantStep() {
		t.Error("plain path reported descendant step")
	}
	if mustParse("//a//*/b").String() != "//a//*/b" {
		t.Error("descendant wildcard roundtrip failed")
	}
}

func TestParseBranching(t *testing.T) {
	in, out, err := ParseBranching("//open_auction[bidder/personref]")
	if err != nil {
		t.Fatal(err)
	}
	if in.String() != "//open_auction" {
		t.Errorf("in = %s", in)
	}
	if out.String() != "//open_auction/bidder/personref" {
		t.Errorf("out = %s", out)
	}

	// Descendant-axis predicate.
	_, out, err = ParseBranching("//person[//open_auction]")
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "//person//open_auction" {
		t.Errorf("descendant predicate out = %s", out)
	}
	if !out.Steps[1].Descendant {
		t.Error("descendant flag lost")
	}

	// Wildcard match step.
	_, out, err = ParseBranching("//regions/*[item]")
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "//*/item" {
		t.Errorf("wildcard out = %s", out)
	}

	for _, bad := range []string{"//a", "//a[]", "//a[b", "//a]b[", "[b]", "//a[b]c"} {
		if _, _, err := ParseBranching(bad); err == nil {
			t.Errorf("ParseBranching(%q) should fail", bad)
		}
	}
}
