package store

import (
	"bytes"
	"testing"

	"mrx/internal/baseline"
	"mrx/internal/gtest"
	"mrx/internal/index"
	"mrx/internal/partition"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

func TestFrozenRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := gtest.Random(seed, 90, 5, 0.25)
		ig := index.FromPartition(g, partition.KBisim(g, 2), func(partition.BlockID) int { return 2 })
		fz := ig.Freeze()

		var buf bytes.Buffer
		if err := WriteFrozen(&buf, fz); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFrozen(bytes.NewReader(buf.Bytes()), g)
		if err != nil {
			t.Fatal(err)
		}
		// The loaded snapshot must flatten the same index: compare against
		// the original mutable graph, the strongest equality we have.
		if err := got.CheckAgainst(ig); err != nil {
			t.Fatalf("seed %d: loaded frozen diverges: %v", seed, err)
		}

		// And it must serve queries identically to the mutable load path.
		for _, w := range gtest.RandomWorkload(seed+9, g, gtest.WorkloadOptions{Size: 10, MaxLen: 3}) {
			e, err := pathexpr.Parse(w)
			if err != nil {
				t.Fatal(err)
			}
			want := query.EvalIndex(ig, e).Answer
			ans := query.EvalFrozen(got, e).Answer
			if len(ans) != len(want) {
				t.Fatalf("seed %d %q: %v vs %v", seed, w, ans, want)
			}
			for i := range ans {
				if ans[i] != want[i] {
					t.Fatalf("seed %d %q: %v vs %v", seed, w, ans, want)
				}
			}
		}
	}
}

// The frozen body encoding is identical to the mutable index encoding; only
// the magic differs. This keeps the two formats convertible by rewriting
// six bytes and pins the fast path to the existing on-disk layout.
func TestFrozenBytesMatchIndexBytes(t *testing.T) {
	g := gtest.Random(1, 70, 4, 0.3)
	ig := baseline.AK(g, 2)

	var mutable, frozen bytes.Buffer
	if err := WriteIndex(&mutable, ig); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrozen(&frozen, ig.Freeze()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mutable.Bytes()[len(indexMagic):], frozen.Bytes()[len(frozenMagic):]) {
		t.Error("frozen body bytes diverge from mutable index body bytes")
	}
}

func TestReadFrozenRejects(t *testing.T) {
	g := gtest.Random(2, 60, 4, 0.25)
	ig := baseline.AK(g, 1)
	var buf bytes.Buffer
	if err := WriteFrozen(&buf, ig.Freeze()); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	if _, err := ReadFrozen(bytes.NewReader(valid[:len(valid)/2]), g); err == nil {
		t.Error("truncated file accepted")
	}
	var asIndex bytes.Buffer
	if err := WriteIndex(&asIndex, ig); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrozen(bytes.NewReader(asIndex.Bytes()), g); err == nil {
		t.Error("mutable-index magic accepted by the frozen reader")
	}
	other := gtest.Random(3, 30, 4, 0.25)
	if _, err := ReadFrozen(bytes.NewReader(valid), other); err == nil {
		t.Error("frozen index accepted over the wrong data graph")
	}
}

// FuzzStoreFrozen feeds arbitrary bytes to the frozen fast-path reader:
// error or a snapshot passing the structural and P3 checks, never a panic
// or over-allocation.
func FuzzStoreFrozen(f *testing.F) {
	g := fuzzGraph()
	valid := seedBytes(f, func(b *bytes.Buffer) error {
		return WriteFrozen(b, baseline.AK(g, 1).Freeze())
	})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(frozenMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		fz, err := ReadFrozen(bytes.NewReader(data), g)
		if err != nil {
			return
		}
		if err := fz.CheckP3(); err != nil {
			t.Fatalf("accepted frozen snapshot violates P3: %v", err)
		}
		// Anything accepted must be a valid flattening: thawing and
		// validating exercises the full invariant suite (minus P1, since k
		// values are data).
		if err := fz.Thaw().Validate(false); err != nil {
			t.Fatalf("accepted frozen snapshot violates invariants: %v", err)
		}
	})
}
