package store

import (
	"bytes"
	"testing"

	"mrx/internal/baseline"
	"mrx/internal/core"
	"mrx/internal/graph"
	"mrx/internal/gtest"
)

// fuzzGraph is the fixed data graph the index/M*(k) fuzz targets read
// against; deserializing an index requires its data graph.
func fuzzGraph() *graph.Graph { return gtest.Random(4, 40, 3, 0.2) }

func seedBytes(tb testing.TB, write func(*bytes.Buffer) error) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzStoreGraph feeds arbitrary bytes to the graph reader: it must error
// on anything malformed — never panic, never over-allocate — and any
// accepted graph must survive a write/read round trip unchanged.
func FuzzStoreGraph(f *testing.F) {
	valid := seedBytes(f, func(b *bytes.Buffer) error { return WriteGraph(b, fuzzGraph()) })
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(graphMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadGraph(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteGraph(&buf, g); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		g2, err := ReadGraph(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted graph failed: %v", err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() ||
			g2.NumLabels() != g.NumLabels() || g2.NumRefEdges() != g.NumRefEdges() {
			t.Fatalf("round trip changed shape: %d/%d/%d/%d -> %d/%d/%d/%d",
				g.NumNodes(), g.NumEdges(), g.NumLabels(), g.NumRefEdges(),
				g2.NumNodes(), g2.NumEdges(), g2.NumLabels(), g2.NumRefEdges())
		}
	})
}

// FuzzStoreIndex feeds arbitrary bytes to the single-index reader over a
// fixed data graph: error or a structurally valid index, never a panic.
func FuzzStoreIndex(f *testing.F) {
	g := fuzzGraph()
	f.Add(seedBytes(f, func(b *bytes.Buffer) error { return WriteIndex(b, baseline.AK(g, 1)) }))
	f.Add(seedBytes(f, func(b *bytes.Buffer) error {
		one, _ := baseline.OneIndex(g)
		return WriteIndex(b, one)
	}))
	f.Add([]byte(indexMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		ig, err := ReadIndex(bytes.NewReader(data), g)
		if err != nil {
			return
		}
		// Structural invariants (partition, adjacency, counters) must hold
		// for anything the reader accepts; P1 (bisimilarity of extents) is
		// deliberately not promised — k values are data, not derivable.
		if err := ig.Validate(false); err != nil {
			t.Fatalf("accepted index violates invariants: %v", err)
		}
	})
}

// FuzzStoreMStar feeds arbitrary bytes to the selective M*(k) reader:
// error or a hierarchy passing the M*(k) structural invariants (nested
// partitions, bounded similarities), never a panic or over-allocation.
func FuzzStoreMStar(f *testing.F) {
	g := fuzzGraph()
	valid := seedBytes(f, func(b *bytes.Buffer) error {
		ms := core.NewMStar(g)
		ms.Support(mustParse("//l0/l1"))
		ms.Support(mustParse("//l1/l2/l0"))
		return WriteMStar(b, ms)
	})
	f.Add(valid)
	f.Add(valid[:len(valid)*2/3])
	f.Add([]byte(mstarMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		mr, err := OpenMStar(bytes.NewReader(data), g)
		if err != nil {
			return
		}
		// Load one component first, then the rest: the incremental path and
		// the full path must both be panic-free.
		if _, err := mr.LoadUpTo(0); err != nil {
			return
		}
		ms, err := mr.LoadUpTo(mr.NumComponents() - 1)
		if err != nil {
			return
		}
		if err := ms.Validate(false); err != nil {
			t.Fatalf("accepted M*(k) hierarchy violates invariants: %v", err)
		}
	})
}
