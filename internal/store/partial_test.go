package store

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"mrx/internal/core"
	"mrx/internal/graph"
	"mrx/internal/gtest"
	"mrx/internal/index"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

// Every selective-load prefix I0..Ij must answer exactly like the original
// in-memory index — precisely for expressions of length ≤ j, and via
// validation beyond that — across a workload spanning all lengths.
func TestLoadUpToEveryPrefixAnswers(t *testing.T) {
	g := gtest.New(21, gtest.Options{Nodes: 90, Labels: 4, RefProb: 0.15, Shape: gtest.DAG})
	ms := core.NewMStar(g)
	for _, s := range []string{"//l0/l1", "//l1/l2/l3/l0", "//l2/l0/l1"} {
		ms.Support(mustParse(s))
	}
	var buf bytes.Buffer
	if err := WriteMStar(&buf, ms); err != nil {
		t.Fatal(err)
	}
	workload := gtest.RandomWorkload(21, g, gtest.WorkloadOptions{
		Size: 12, MaxLen: 5, Adversarial: 0.25, Rooted: 0.25,
	})

	mr, err := OpenMStar(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < mr.NumComponents(); j++ {
		partial, err := mr.LoadUpTo(j)
		if err != nil {
			t.Fatalf("LoadUpTo(%d): %v", j, err)
		}
		if got := partial.NumComponents(); got != j+1 {
			t.Fatalf("LoadUpTo(%d) materialized %d components", j, got)
		}
		if err := partial.Validate(false); err != nil {
			t.Fatalf("LoadUpTo(%d): %v", j, err)
		}
		for _, s := range workload {
			e := mustParse(s)
			want := ms.Query(e)
			got := partial.Query(e)
			if !reflect.DeepEqual(got.Answer, want.Answer) {
				t.Errorf("I0..I%d: %s: answer %v, full index %v", j, e, got.Answer, want.Answer)
			}
			// Precision (no validation needed) is a property of how refined
			// the serving component is; once the prefix covers RequiredK it
			// must match the full index exactly.
			if k := e.RequiredK(); k != pathexpr.Unbounded && k <= j && got.Precise != want.Precise {
				t.Errorf("I0..I%d: %s (RequiredK %d): precise=%v, full index %v",
					j, e, k, got.Precise, want.Precise)
			}
		}
	}
}

// Truncation inside a later component must not poison earlier ones: the
// header and intact prefix components load and serve, and only the load
// that reaches the damaged section errors, naming the component.
func TestLoadUpToTruncatedTailSection(t *testing.T) {
	g := gtest.Random(22, 70, 3, 0.2)
	ms := core.NewMStar(g)
	ms.Support(mustParse("//l0/l1/l2"))
	if ms.NumComponents() < 3 {
		t.Fatalf("want ≥3 components, got %d", ms.NumComponents())
	}
	var buf bytes.Buffer
	if err := WriteMStar(&buf, ms); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	last := ms.NumComponents() - 1

	for _, cut := range []int{1, 8} {
		mr, err := OpenMStar(bytes.NewReader(data[:len(data)-cut]), g)
		if err != nil {
			t.Fatalf("cut %d: header failed: %v", cut, err)
		}
		partial, err := mr.LoadUpTo(last - 1)
		if err != nil {
			t.Fatalf("cut %d: intact prefix failed: %v", cut, err)
		}
		e := mustParse("//l0/l1")
		if got, want := partial.Query(e).Answer, ms.Query(e).Answer; !reflect.DeepEqual(got, want) {
			t.Errorf("cut %d: prefix answer %v, want %v", cut, got, want)
		}
		_, err = mr.LoadUpTo(last)
		if err == nil {
			t.Fatalf("cut %d: truncated component I%d accepted", cut, last)
		}
		if !strings.Contains(err.Error(), "component I") {
			t.Errorf("cut %d: error does not name the component: %v", cut, err)
		}
	}
}

// ReadIndex must reject files whose similarity values break the structural
// invariants even when the extents themselves are well-formed: k is data,
// and corrupt data must not produce an index that serves wrong answers.
func TestReadIndexRejectsInvalidSimilarities(t *testing.T) {
	b := graph.NewBuilder()
	b.AddNode("r")
	b.AddNode("a")
	b.AddNode("b")
	b.AddEdge(0, 1, graph.TreeEdge)
	b.AddEdge(1, 2, graph.TreeEdge)
	g := mustFreeze(b)

	// Singleton extents with a(k=0) parenting b(k=5) violate P3.
	bad, err := index.FromExtents(g,
		[][]graph.NodeID{{0}, {1}, {2}}, []int{5, 0, 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteIndex(&buf, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIndex(bytes.NewReader(buf.Bytes()), g); err == nil {
		t.Fatal("P3-violating index accepted")
	} else if !strings.Contains(err.Error(), "store: index") {
		t.Errorf("error does not name the section: %v", err)
	}

	// Sanity: a well-formed index with the same shape still loads and serves.
	good, err := index.FromExtents(g,
		[][]graph.NodeID{{0}, {1}, {2}}, []int{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteIndex(&buf, good); err != nil {
		t.Fatal(err)
	}
	ig, err := ReadIndex(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	e := mustParse("//a/b")
	if got := query.EvalIndex(ig, e).Answer; !reflect.DeepEqual(got, []graph.NodeID{2}) {
		t.Errorf("//a/b = %v", got)
	}
}
