package store

import (
	"mrx/internal/graph"
	"mrx/internal/pathexpr"
)

// mustParse parses a fixed test query literal.
func mustParse(s string) *pathexpr.Expr {
	e, err := pathexpr.Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}

// mustFreeze freezes a builder whose contents the test controls.
func mustFreeze(b *graph.Builder) *graph.Graph {
	g, err := b.Freeze()
	if err != nil {
		panic(err)
	}
	return g
}
