package store

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"mrx/internal/baseline"
	"mrx/internal/core"
	"mrx/internal/datagen"
	"mrx/internal/graph"
	"mrx/internal/gtest"
	"mrx/internal/index"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

func roundTripGraph(t *testing.T, g *graph.Graph) *graph.Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return g2
}

func graphsEqual(a, b *graph.Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() || a.NumRefEdges() != b.NumRefEdges() {
		return false
	}
	for v := 0; v < a.NumNodes(); v++ {
		if a.NodeLabelName(graph.NodeID(v)) != b.NodeLabelName(graph.NodeID(v)) {
			return false
		}
		if !reflect.DeepEqual(a.Children(graph.NodeID(v)), b.Children(graph.NodeID(v))) {
			return false
		}
		if !reflect.DeepEqual(a.ChildKinds(graph.NodeID(v)), b.ChildKinds(graph.NodeID(v))) {
			return false
		}
	}
	return true
}

func TestGraphRoundTrip(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"figure1": graph.PaperFigure1(),
		"figure7": graph.PaperFigure7(),
		"random":  gtest.Random(3, 200, 6, 0.3),
		"xmark":   datagen.XMarkGraph(0.01, 1),
	} {
		if !graphsEqual(g, roundTripGraph(t, g)) {
			t.Errorf("%s: round trip changed the graph", name)
		}
	}
}

func TestGraphReadErrors(t *testing.T) {
	if _, err := ReadGraph(strings.NewReader("junk")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadGraph(strings.NewReader(graphMagic)); err == nil {
		t.Error("truncated file accepted")
	}
}

func TestIndexRoundTrip(t *testing.T) {
	g := datagen.XMarkGraph(0.01, 2)
	for name, ig := range map[string]*index.Graph{
		"a2": baseline.AK(g, 2),
		"a0": baseline.AK(g, 0),
	} {
		var buf bytes.Buffer
		if err := WriteIndex(&buf, ig); err != nil {
			t.Fatal(err)
		}
		got, err := ReadIndex(&buf, g)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Validate(true); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.NumNodes() != ig.NumNodes() || got.NumEdges() != ig.NumEdges() {
			t.Errorf("%s: sizes changed: %d/%d -> %d/%d", name,
				ig.NumNodes(), ig.NumEdges(), got.NumNodes(), got.NumEdges())
		}
		e := mustParse("//open_auction/bidder")
		if !reflect.DeepEqual(query.EvalIndex(got, e).Answer, query.EvalIndex(ig, e).Answer) {
			t.Errorf("%s: answers differ after round trip", name)
		}
	}
}

func TestIndexGraphMismatch(t *testing.T) {
	g := datagen.XMarkGraph(0.01, 2)
	other := graph.PaperFigure1()
	var buf bytes.Buffer
	if err := WriteIndex(&buf, baseline.AK(g, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIndex(&buf, other); err == nil {
		t.Error("index loaded over wrong graph")
	}
}

func TestMKIndexRoundTrip(t *testing.T) {
	g := gtest.Random(5, 150, 5, 0.25)
	mk := core.NewMK(g)
	for _, s := range []string{"//l0/l1/l2", "//l3/l4"} {
		mk.Support(mustParse(s))
	}
	var buf bytes.Buffer
	if err := WriteIndex(&buf, mk.Index()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(true); err != nil {
		t.Fatal(err)
	}
	e := mustParse("//l0/l1/l2")
	res := query.EvalIndex(got, e)
	if !res.Precise {
		t.Error("persisted M(k) lost precision")
	}
}

func TestMStarRoundTripAndSelectiveLoad(t *testing.T) {
	g := datagen.NASAGraph(0.02, 4)
	ms := core.NewMStar(g)
	fups := []*pathexpr.Expr{
		mustParse("//dataset/author/lastName"),
		mustParse("//dataset/tableHead/fields/field/name"),
	}
	for _, q := range fups {
		ms.Support(q)
	}
	var buf bytes.Buffer
	if err := WriteMStar(&buf, ms); err != nil {
		t.Fatal(err)
	}

	// Full load reproduces the index.
	full, err := ReadMStar(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	if err := full.Validate(true); err != nil {
		t.Fatal(err)
	}
	if full.NumComponents() != ms.NumComponents() {
		t.Fatalf("components %d -> %d", ms.NumComponents(), full.NumComponents())
	}
	if full.Sizes() != ms.Sizes() {
		t.Errorf("sizes changed: %+v -> %+v", ms.Sizes(), full.Sizes())
	}
	for _, q := range fups {
		want := ms.Query(q)
		got := full.Query(q)
		if !reflect.DeepEqual(got.Answer, want.Answer) || got.Cost != want.Cost {
			t.Errorf("%s: answer/cost changed after round trip", q)
		}
	}

	// Selective load: components I0..I2 only.
	mr, err := OpenMStar(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	if mr.NumComponents() != ms.NumComponents() {
		t.Fatalf("header components = %d", mr.NumComponents())
	}
	partial, err := mr.LoadUpTo(2)
	if err != nil {
		t.Fatal(err)
	}
	if partial.NumComponents() != 3 || mr.Loaded() != 3 {
		t.Fatalf("partial components = %d loaded = %d", partial.NumComponents(), mr.Loaded())
	}
	// A length-2 query is answered precisely by the partial index.
	short := mustParse("//dataset/author/lastName")
	res := partial.Query(short)
	if !res.Precise {
		t.Error("partial index should answer length-2 FUP precisely")
	}
	if !reflect.DeepEqual(res.Answer, ms.Query(short).Answer) {
		t.Error("partial index wrong answer")
	}
	// A length-4 query is still answered correctly (with validation).
	long := fups[1]
	if !reflect.DeepEqual(partial.Query(long).Answer, ms.Query(long).Answer) {
		t.Error("partial index wrong long answer")
	}

	// Incremental continuation: load the rest without reopening.
	rest, err := mr.LoadUpTo(mr.NumComponents() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rest.Query(long).Precise {
		t.Error("fully loaded index should be precise for the long FUP")
	}
}

func TestMStarReadErrors(t *testing.T) {
	g := graph.PaperFigure1()
	if _, err := ReadMStar(strings.NewReader("garbage"), g); err == nil {
		t.Error("bad magic accepted")
	}
	// Graph-size mismatch.
	ms := core.NewMStar(graph.PaperFigure7())
	var buf bytes.Buffer
	if err := WriteMStar(&buf, ms); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMStar(bytes.NewReader(buf.Bytes()), g); err == nil {
		t.Error("M* loaded over wrong graph")
	}
}
