// Package store persists data graphs and structural indexes in a compact
// binary format, implementing the direction the paper lists as future work:
// "how to make the M*(k)-index I/O-efficient by turning it into a
// disk-resident structure that can be loaded into memory selectively and
// incrementally during query processing."
//
// The M*(k) format stores each component index as an independent section
// with a length-prefixed header, so a reader can materialize only the
// coarse components I0..Ij it needs: a query of length j is answered
// precisely by components up to Ij, and finer components can be loaded
// later without re-reading the coarse ones (see ReadMStarUpTo and
// MStarReader).
//
// All integers are unsigned varints; node IDs inside extents are
// delta-encoded (extents are sorted), which keeps files small: the format
// is typically a few bytes per index node plus one or two bytes per extent
// member.
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"mrx/internal/core"
	"mrx/internal/graph"
	"mrx/internal/index"
)

const (
	graphMagic  = "mrxG1\n"
	indexMagic  = "mrxI1\n"
	mstarMagic  = "mrxM1\n"
	frozenMagic = "mrxF1\n"

	// Sanity caps applied before any length-prefix-driven allocation, so a
	// corrupted or adversarial file can never make a reader over-allocate:
	// readers validate every prefix against these and against the remaining
	// structure (node counts, extent sizes) before calling make.
	maxSaneString = 1 << 24 // longest accepted label name
	maxSaneLabels = 1 << 24 // distinct labels per graph
	maxSaneNodes  = 1 << 31 // nodes per graph
	maxSaneK      = 1 << 20 // local similarity (baseline.KInfinity)
)

type countingWriter struct {
	w *bufio.Writer
	n int64
}

func (cw *countingWriter) uvarint(x uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], x)
	cw.n += int64(n)
	_, err := cw.w.Write(buf[:n])
	return err
}

func (cw *countingWriter) str(s string) error {
	if err := cw.uvarint(uint64(len(s))); err != nil {
		return err
	}
	cw.n += int64(len(s))
	_, err := cw.w.WriteString(s)
	return err
}

type reader struct {
	r *bufio.Reader
}

func (rd *reader) uvarint() (uint64, error) { return binary.ReadUvarint(rd.r) }

func (rd *reader) str() (string, error) {
	n, err := rd.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxSaneString {
		return "", fmt.Errorf("store: string of %d bytes exceeds sanity limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(rd.r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func expectMagic(rd *reader, magic string) error {
	buf := make([]byte, len(magic))
	if _, err := io.ReadFull(rd.r, buf); err != nil {
		return err
	}
	if string(buf) != magic {
		return fmt.Errorf("store: bad magic %q, want %q", buf, magic)
	}
	return nil
}

// WriteGraph serializes a data graph.
func WriteGraph(w io.Writer, g *graph.Graph) error {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	if _, err := cw.w.WriteString(graphMagic); err != nil {
		return err
	}
	if err := cw.uvarint(uint64(g.NumLabels())); err != nil {
		return err
	}
	for l := 0; l < g.NumLabels(); l++ {
		if err := cw.str(g.LabelName(graph.LabelID(l))); err != nil {
			return err
		}
	}
	if err := cw.uvarint(uint64(g.NumNodes())); err != nil {
		return err
	}
	for v := 0; v < g.NumNodes(); v++ {
		if err := cw.uvarint(uint64(g.Label(graph.NodeID(v)))); err != nil {
			return err
		}
	}
	// Edges: per node, out-degree then (delta-coded child, kind) pairs.
	for v := 0; v < g.NumNodes(); v++ {
		kids := g.Children(graph.NodeID(v))
		kinds := g.ChildKinds(graph.NodeID(v))
		if err := cw.uvarint(uint64(len(kids))); err != nil {
			return err
		}
		prev := int64(0)
		for i, c := range kids {
			if err := cw.uvarint(uint64(int64(c) - prev)); err != nil {
				return err
			}
			prev = int64(c)
			if err := cw.uvarint(uint64(kinds[i])); err != nil {
				return err
			}
		}
	}
	return cw.w.Flush()
}

// ReadGraph deserializes a data graph. Errors name the corrupt section of
// the file; no input, truncated or corrupted, makes it panic or allocate
// beyond the sanity caps.
func ReadGraph(r io.Reader) (*graph.Graph, error) {
	rd := &reader{r: bufio.NewReader(r)}
	if err := expectMagic(rd, graphMagic); err != nil {
		return nil, fmt.Errorf("store: graph magic: %w", err)
	}
	nLabels, err := rd.uvarint()
	if err != nil {
		return nil, fmt.Errorf("store: graph label count: %w", err)
	}
	if nLabels > maxSaneLabels {
		return nil, fmt.Errorf("store: graph label count %d exceeds sanity limit", nLabels)
	}
	labels := make([]string, nLabels)
	for i := range labels {
		if labels[i], err = rd.str(); err != nil {
			return nil, fmt.Errorf("store: graph label %d: %w", i, err)
		}
	}
	nNodes, err := rd.uvarint()
	if err != nil {
		return nil, fmt.Errorf("store: graph node count: %w", err)
	}
	if nNodes > maxSaneNodes {
		return nil, fmt.Errorf("store: graph node count %d exceeds sanity limit", nNodes)
	}
	b := graph.NewBuilder()
	for v := uint64(0); v < nNodes; v++ {
		li, err := rd.uvarint()
		if err != nil {
			return nil, fmt.Errorf("store: graph node %d label: %w", v, err)
		}
		if li >= nLabels {
			return nil, fmt.Errorf("store: node %d has label %d out of range", v, li)
		}
		b.AddNode(labels[li])
	}
	for v := uint64(0); v < nNodes; v++ {
		deg, err := rd.uvarint()
		if err != nil {
			return nil, fmt.Errorf("store: graph node %d out-degree: %w", v, err)
		}
		if deg > nNodes {
			return nil, fmt.Errorf("store: node %d has degree %d out of range", v, deg)
		}
		prev := int64(0)
		for i := uint64(0); i < deg; i++ {
			delta, err := rd.uvarint()
			if err != nil {
				return nil, fmt.Errorf("store: graph node %d edges: %w", v, err)
			}
			child := prev + int64(delta)
			prev = child
			if child >= int64(nNodes) {
				return nil, fmt.Errorf("store: node %d has edge to %d, beyond %d nodes", v, child, nNodes)
			}
			kind, err := rd.uvarint()
			if err != nil {
				return nil, fmt.Errorf("store: graph node %d edges: %w", v, err)
			}
			if kind > uint64(graph.RefEdge) {
				return nil, fmt.Errorf("store: bad edge kind %d", kind)
			}
			b.AddEdge(graph.NodeID(v), graph.NodeID(child), graph.EdgeKind(kind))
		}
	}
	return b.Freeze()
}

// writeIndexBody serializes the live nodes of an index graph (extents and
// local similarities); adjacency is rebuilt at load time.
func writeIndexBody(cw *countingWriter, ig *index.Graph) error {
	var werr error
	if werr = cw.uvarint(uint64(ig.NumNodes())); werr != nil {
		return werr
	}
	ig.ForEachNode(func(n *index.Node) {
		if werr != nil {
			return
		}
		if werr = cw.uvarint(uint64(n.K())); werr != nil {
			return
		}
		if werr = cw.uvarint(uint64(n.Size())); werr != nil {
			return
		}
		prev := int64(0)
		for _, o := range n.Extent() {
			if werr = cw.uvarint(uint64(int64(o) - prev)); werr != nil {
				return
			}
			prev = int64(o)
		}
	})
	return werr
}

func readIndexBody(rd *reader, g *graph.Graph) (*index.Graph, error) {
	extents, ks, err := readExtentsBody(rd, g)
	if err != nil {
		return nil, err
	}
	return index.FromExtents(g, extents, ks)
}

// readExtentsBody parses the shared extents-plus-similarities body; mutable
// and frozen loading both build on it, so the two paths cannot diverge in
// decoding or sanity checking.
func readExtentsBody(rd *reader, g *graph.Graph) ([][]graph.NodeID, []int, error) {
	nNodes, err := rd.uvarint()
	if err != nil {
		return nil, nil, fmt.Errorf("store: index node count: %w", err)
	}
	if nNodes > uint64(g.NumNodes()) {
		return nil, nil, fmt.Errorf("store: %d index nodes for %d data nodes", nNodes, g.NumNodes())
	}
	extents := make([][]graph.NodeID, nNodes)
	ks := make([]int, nNodes)
	for i := uint64(0); i < nNodes; i++ {
		k, err := rd.uvarint()
		if err != nil {
			return nil, nil, fmt.Errorf("store: index node %d similarity: %w", i, err)
		}
		if k > maxSaneK {
			return nil, nil, fmt.Errorf("store: index node %d has similarity %d beyond sanity limit", i, k)
		}
		ks[i] = int(k)
		size, err := rd.uvarint()
		if err != nil {
			return nil, nil, fmt.Errorf("store: index node %d extent size: %w", i, err)
		}
		if size == 0 || size > uint64(g.NumNodes()) {
			return nil, nil, fmt.Errorf("store: extent %d has bad size %d", i, size)
		}
		extent := make([]graph.NodeID, size)
		prev := int64(0)
		for j := range extent {
			delta, err := rd.uvarint()
			if err != nil {
				return nil, nil, fmt.Errorf("store: index node %d extent: %w", i, err)
			}
			prev += int64(delta)
			if prev >= int64(g.NumNodes()) {
				return nil, nil, fmt.Errorf("store: extent %d references data node %d, beyond %d nodes", i, prev, g.NumNodes())
			}
			extent[j] = graph.NodeID(prev)
		}
		extents[i] = extent
	}
	return extents, ks, nil
}

// WriteIndex serializes a single structural index (1-index, A(k), D(k) or
// M(k)). The data graph is not embedded; supply it again at load time.
func WriteIndex(w io.Writer, ig *index.Graph) error {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	if _, err := cw.w.WriteString(indexMagic); err != nil {
		return err
	}
	if err := cw.uvarint(uint64(ig.Data().NumNodes())); err != nil {
		return err
	}
	if err := writeIndexBody(cw, ig); err != nil {
		return err
	}
	return cw.w.Flush()
}

// ReadIndex deserializes an index over the given data graph.
func ReadIndex(r io.Reader, g *graph.Graph) (*index.Graph, error) {
	rd := &reader{r: bufio.NewReader(r)}
	if err := expectMagic(rd, indexMagic); err != nil {
		return nil, fmt.Errorf("store: index magic: %w", err)
	}
	n, err := rd.uvarint()
	if err != nil {
		return nil, fmt.Errorf("store: index header: %w", err)
	}
	if n != uint64(g.NumNodes()) {
		return nil, fmt.Errorf("store: index built over %d data nodes, graph has %d", n, g.NumNodes())
	}
	ig, err := readIndexBody(rd, g)
	if err != nil {
		return nil, err
	}
	// Similarities are data, not derivable: a corrupted file can encode k
	// values that break the structural invariants (e.g. P3). Reject at load
	// rather than letting a bad index serve wrong answers. M*(k) loads get
	// the same check inside MStarFromComponents.
	if err := ig.Validate(false); err != nil {
		return nil, fmt.Errorf("store: index: %w", err)
	}
	return ig, nil
}

// WriteFrozen serializes a frozen index snapshot. The body is identical to
// the mutable index format (extents and similarities in node order — frozen
// node order is ascending retired NodeID, which is ForEachNode order), so a
// snapshot frozen from a graph writes the same bytes as the graph itself;
// only the magic differs, announcing that the fast loader applies. CSR
// adjacency and label ranges are derived at load time: storing them would
// roughly double the file for data that one linear pass over flat arrays
// reconstructs.
func WriteFrozen(w io.Writer, fz *index.Frozen) error {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	if _, err := cw.w.WriteString(frozenMagic); err != nil {
		return err
	}
	if err := cw.uvarint(uint64(fz.Data().NumNodes())); err != nil {
		return err
	}
	if err := cw.uvarint(uint64(fz.NumNodes())); err != nil {
		return err
	}
	for v := 0; v < fz.NumNodes(); v++ {
		id := index.FrozenID(v)
		if err := cw.uvarint(uint64(fz.K(id))); err != nil {
			return err
		}
		if err := cw.uvarint(uint64(fz.Size(id))); err != nil {
			return err
		}
		prev := int64(0)
		for _, o := range fz.Extent(id) {
			if err := cw.uvarint(uint64(int64(o) - prev)); err != nil {
				return err
			}
			prev = int64(o)
		}
	}
	return cw.w.Flush()
}

// ReadFrozen deserializes a frozen index snapshot over g — the persistence
// fast path: the snapshot is rebuilt through FrozenFromExtents with flat-
// array CSR wiring, never materializing a mutable graph or its adjacency
// maps. Shape invariants (disjoint label-homogeneous cover, P2 wiring) hold
// by construction; the similarity invariant P3 is checked over the CSR
// before the snapshot is returned, mirroring ReadIndex's Validate.
func ReadFrozen(r io.Reader, g *graph.Graph) (*index.Frozen, error) {
	rd := &reader{r: bufio.NewReader(r)}
	if err := expectMagic(rd, frozenMagic); err != nil {
		return nil, fmt.Errorf("store: frozen magic: %w", err)
	}
	n, err := rd.uvarint()
	if err != nil {
		return nil, fmt.Errorf("store: frozen header: %w", err)
	}
	if n != uint64(g.NumNodes()) {
		return nil, fmt.Errorf("store: frozen index built over %d data nodes, graph has %d", n, g.NumNodes())
	}
	extents, ks, err := readExtentsBody(rd, g)
	if err != nil {
		return nil, err
	}
	fz, err := index.FrozenFromExtents(g, extents, ks)
	if err != nil {
		return nil, fmt.Errorf("store: frozen: %w", err)
	}
	if err := fz.CheckP3(); err != nil {
		return nil, fmt.Errorf("store: frozen: %w", err)
	}
	return fz, nil
}

// WriteMStar serializes an M*(k)-index as independent per-component
// sections, each preceded by its byte length so readers can skip or stop.
func WriteMStar(w io.Writer, ms *core.MStar) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(mstarMagic); err != nil {
		return err
	}
	head := &countingWriter{w: bw}
	if err := head.uvarint(uint64(ms.Data().NumNodes())); err != nil {
		return err
	}
	if err := head.uvarint(uint64(ms.NumComponents())); err != nil {
		return err
	}
	for i := 0; i < ms.NumComponents(); i++ {
		// Serialize the component to an in-memory section first so its byte
		// length can prefix it.
		var section sectionBuffer
		cw := &countingWriter{w: bufio.NewWriter(&section)}
		if err := writeIndexBody(cw, ms.Component(i)); err != nil {
			return err
		}
		if err := cw.w.Flush(); err != nil {
			return err
		}
		if err := head.uvarint(uint64(len(section))); err != nil {
			return err
		}
		if _, err := bw.Write(section); err != nil {
			return err
		}
	}
	return bw.Flush()
}

type sectionBuffer []byte

func (s *sectionBuffer) Write(p []byte) (int, error) {
	*s = append(*s, p...)
	return len(p), nil
}

// MStarReader loads M*(k) components selectively: coarse components first,
// finer ones on demand, without re-reading earlier sections.
type MStarReader struct {
	rd         *reader
	g          *graph.Graph
	total      int
	nextToLoad int
	comps      []*index.Graph
}

// OpenMStar prepares selective loading of an M*(k)-index over g.
// It reads only the header.
func OpenMStar(r io.Reader, g *graph.Graph) (*MStarReader, error) {
	rd := &reader{r: bufio.NewReader(r)}
	if err := expectMagic(rd, mstarMagic); err != nil {
		return nil, fmt.Errorf("store: M*(k) magic: %w", err)
	}
	n, err := rd.uvarint()
	if err != nil {
		return nil, fmt.Errorf("store: M*(k) header: %w", err)
	}
	if n != uint64(g.NumNodes()) {
		return nil, fmt.Errorf("store: M*(k)-index built over %d data nodes, graph has %d", n, g.NumNodes())
	}
	total, err := rd.uvarint()
	if err != nil {
		return nil, fmt.Errorf("store: M*(k) header: %w", err)
	}
	if total == 0 || total > 64 {
		return nil, fmt.Errorf("store: implausible component count %d", total)
	}
	return &MStarReader{rd: rd, g: g, total: int(total)}, nil
}

// NumComponents returns the number of components in the file.
func (mr *MStarReader) NumComponents() int { return mr.total }

// Loaded returns how many components have been materialized so far.
func (mr *MStarReader) Loaded() int { return len(mr.comps) }

// LoadUpTo materializes components I0..Ij (inclusive) and returns an
// M*(k)-index over them. Components already loaded are reused; the returned
// index answers queries of length ≤ j exactly as the full index would
// (longer queries fall back to validated evaluation in Ij).
func (mr *MStarReader) LoadUpTo(j int) (*core.MStar, error) {
	if j >= mr.total {
		j = mr.total - 1
	}
	for len(mr.comps) <= j {
		size, err := mr.rd.uvarint()
		if err != nil {
			return nil, fmt.Errorf("store: M*(k) component I%d length: %w", len(mr.comps), err)
		}
		section := &reader{r: bufio.NewReader(io.LimitReader(mr.rd.r, int64(size)))}
		comp, err := readIndexBody(section, mr.g)
		if err != nil {
			return nil, fmt.Errorf("store: M*(k) component I%d: %w", len(mr.comps), err)
		}
		// Drain any buffered remainder of the section.
		if _, err := io.Copy(io.Discard, section.r); err != nil {
			return nil, fmt.Errorf("store: M*(k) component I%d drain: %w", len(mr.comps), err)
		}
		mr.comps = append(mr.comps, comp)
		mr.nextToLoad++
	}
	return core.MStarFromComponents(mr.g, mr.comps[:j+1])
}

// ReadMStar loads a complete M*(k)-index.
func ReadMStar(r io.Reader, g *graph.Graph) (*core.MStar, error) {
	mr, err := OpenMStar(r, g)
	if err != nil {
		return nil, err
	}
	return mr.LoadUpTo(mr.total - 1)
}
