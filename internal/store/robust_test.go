package store

import (
	"bytes"
	"errors"

	"math/rand"
	"testing"

	"mrx/internal/baseline"
	"mrx/internal/core"
	"mrx/internal/gtest"
)

// Every strict prefix of a serialized artifact must fail to load with an
// error, never a panic.
func TestTruncatedInputsError(t *testing.T) {
	g := gtest.Random(6, 80, 4, 0.2)
	ig := baseline.AK(g, 1)
	ms := core.NewMStar(g)
	ms.Support(mustParse("//l0/l1"))

	var gb, ib, mb bytes.Buffer
	if err := WriteGraph(&gb, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteIndex(&ib, ig); err != nil {
		t.Fatal(err)
	}
	if err := WriteMStar(&mb, ms); err != nil {
		t.Fatal(err)
	}

	try := func(name string, data []byte, load func([]byte) error) {
		step := len(data)/120 + 1
		for cut := 0; cut < len(data); cut += step {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: panic at cut %d: %v", name, cut, r)
					}
				}()
				if err := load(data[:cut]); err == nil {
					t.Fatalf("%s: truncation at %d of %d accepted", name, cut, len(data))
				}
			}()
		}
		if err := load(data); err != nil {
			t.Fatalf("%s: full data rejected: %v", name, err)
		}
	}
	try("graph", gb.Bytes(), func(b []byte) error {
		_, err := ReadGraph(bytes.NewReader(b))
		return err
	})
	try("index", ib.Bytes(), func(b []byte) error {
		_, err := ReadIndex(bytes.NewReader(b), g)
		return err
	})
	try("mstar", mb.Bytes(), func(b []byte) error {
		_, err := ReadMStar(bytes.NewReader(b), g)
		return err
	})
}

// Random single-byte corruption must never panic: either an error or a
// well-formed (if different) result.
func TestCorruptedInputsNoPanic(t *testing.T) {
	g := gtest.Random(9, 60, 3, 0.2)
	var gb bytes.Buffer
	if err := WriteGraph(&gb, g); err != nil {
		t.Fatal(err)
	}
	data := gb.Bytes()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		corrupt := append([]byte(nil), data...)
		pos := rng.Intn(len(corrupt))
		corrupt[pos] ^= byte(1 + rng.Intn(255))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on corruption at byte %d: %v", pos, r)
				}
			}()
			g2, err := ReadGraph(bytes.NewReader(corrupt))
			if err == nil && g2.NumNodes() == 0 {
				t.Fatal("corrupted read produced empty graph without error")
			}
		}()
	}
}

// failWriter errors after n bytes, covering every write error path.
type failWriter struct{ left int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) > f.left {
		n := f.left
		f.left = 0
		return n, errors.New("disk full")
	}
	f.left -= len(p)
	return len(p), nil
}

func TestWriteFailuresPropagate(t *testing.T) {
	g := gtest.Random(12, 60, 3, 0.2)
	ig := baseline.AK(g, 1)
	ms := core.NewMStar(g)
	ms.Support(mustParse("//l0/l1"))

	check := func(name string, write func(w *failWriter) error) {
		cw := &failWriter{left: 1 << 30}
		if err := write(cw); err != nil {
			t.Fatalf("%s: unconstrained write failed: %v", name, err)
		}
		size := 1<<30 - cw.left
		for _, budget := range []int{0, 1, 3, size / 2, size - 1} {
			if err := write(&failWriter{left: budget}); err == nil {
				t.Errorf("%s with %d-byte budget (of %d) succeeded", name, budget, size)
			}
		}
	}
	check("WriteGraph", func(w *failWriter) error { return WriteGraph(w, g) })
	check("WriteIndex", func(w *failWriter) error { return WriteIndex(w, ig) })
	check("WriteMStar", func(w *failWriter) error { return WriteMStar(w, ms) })
}

func TestLoadUpToClampAndReuse(t *testing.T) {
	g := gtest.Random(15, 80, 4, 0.2)
	ms := core.NewMStar(g)
	ms.Support(mustParse("//l0/l1/l2"))
	var buf bytes.Buffer
	if err := WriteMStar(&buf, ms); err != nil {
		t.Fatal(err)
	}
	mr, err := OpenMStar(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-range j clamps to the last component.
	all, err := mr.LoadUpTo(99)
	if err != nil {
		t.Fatal(err)
	}
	if all.NumComponents() != ms.NumComponents() {
		t.Fatalf("clamped load got %d components", all.NumComponents())
	}
	// Re-loading a smaller prefix reuses materialized components.
	sub, err := mr.LoadUpTo(0)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumComponents() != 1 {
		t.Fatalf("prefix load got %d components", sub.NumComponents())
	}
	if sub.Component(0) != all.Component(0) {
		t.Error("components not shared between loads")
	}
}

func TestStringSanityLimit(t *testing.T) {
	// A graph header claiming a gigantic label must be rejected, not
	// allocated.
	var buf bytes.Buffer
	buf.WriteString(graphMagic)
	buf.Write([]byte{1})                            // one label
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}) // absurd length
	if _, err := ReadGraph(&buf); err == nil {
		t.Fatal("absurd label length accepted")
	}
}
