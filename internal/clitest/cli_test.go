// Package clitest smoke-tests the command-line binaries end to end: each
// test execs a freshly built binary the way a user would, so flag parsing,
// stdin/stdout wiring and exit codes are covered — things unit tests of the
// libraries underneath cannot see. Skipped with -short (builds cost seconds).
package clitest

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// bin builds (once) and returns the path of the named command's binary.
func bin(t *testing.T, name string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("exec smoke tests skipped in -short mode")
	}
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "mrx-clitest-*")
		if buildErr != nil {
			return
		}
		for _, n := range []string{"mrgen", "mrquery", "mrbench", "mrserve", "mrload", "mrsnap"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, n), "mrx/cmd/"+n)
			cmd.Dir = moduleRoot()
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = fmt.Errorf("build %s: %v\n%s", n, err, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return filepath.Join(binDir, name)
}

func moduleRoot() string {
	wd, _ := os.Getwd()
	return filepath.Dir(filepath.Dir(wd))
}

// run executes a built binary and returns combined output, failing on a
// non-zero exit unless wantErr.
func run(t *testing.T, wantErr bool, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin(t, name), args...)
	out, err := cmd.CombinedOutput()
	if wantErr && err == nil {
		t.Fatalf("%s %v: expected failure, got success:\n%s", name, args, out)
	}
	if !wantErr && err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

// tinyXML generates a small XMark document once per test run.
func tinyXML(t *testing.T) string {
	t.Helper()
	path := filepath.Join(binDir, "tiny.xml")
	if _, err := os.Stat(path); err != nil {
		run(t, false, "mrgen", "-dataset", "xmark", "-scale", "0.01", "-seed", "7", "-o", path)
	}
	return path
}

func TestMRGenStats(t *testing.T) {
	out := run(t, false, "mrgen", "-dataset", "nasa", "-scale", "0.01", "-stats")
	for _, want := range []string{"nodes", "edges"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
}

// Every index flavor must serve the same query through the CLI and agree on
// the answer count — a coarse end-to-end echo of the differential suite.
func TestMRQueryAllIndexesAgree(t *testing.T) {
	xml := tinyXML(t)
	re := regexp.MustCompile(`: (\d+) answers`)
	counts := map[string]string{}
	for _, tc := range [][]string{
		{"-index", "a2"},
		{"-index", "a0"},
		{"-index", "1index"},
		{"-index", "dk"},
		{"-index", "dkpromote", "-refine"},
		{"-index", "mk", "-refine"},
		{"-index", "mstar", "-refine"},
		{"-index", "ud2,2"},
		{"-index", "engine", "-refine", "-stats", "-parallel", "2"},
		{"-index", "engine", "-autotune", "-epochs", "3", "-stats"},
	} {
		args := append([]string{"-in", xml}, tc...)
		args = append(args, "//person/name")
		out := run(t, false, "mrquery", args...)
		m := re.FindStringSubmatch(out)
		if m == nil {
			t.Fatalf("%v: no answer count in output:\n%s", tc, out)
		}
		counts[strings.Join(tc, " ")] = m[1]
	}
	var first string
	for _, v := range counts {
		first = v
		break
	}
	for _, v := range counts {
		if v != first {
			t.Fatalf("answer counts diverge across indexes: %v", counts)
		}
	}
}

func TestMRQueryStdinAndAnswers(t *testing.T) {
	xml := tinyXML(t)
	data, err := os.ReadFile(xml)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin(t, "mrquery"), "-index", "mstar", "-refine",
		"-answers", "-max-answers", "5", "//person/name")
	cmd.Stdin = strings.NewReader(string(data))
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("stdin run failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "answers") {
		t.Errorf("missing answer summary:\n%s", out)
	}
}

func TestMRQueryBadUsage(t *testing.T) {
	xml := tinyXML(t)
	run(t, true, "mrquery", "-in", xml, "-index", "a2") // no query args
	run(t, true, "mrquery", "-in", xml, "-index", "nosuch", "//a")
	run(t, true, "mrquery", "-in", xml, "-index", "a2", "//bad[")
	run(t, true, "mrquery", "-in", filepath.Join(binDir, "missing.xml"), "//a")
}

func TestMRBenchList(t *testing.T) {
	out := run(t, false, "mrbench", "-list")
	if !strings.Contains(out, "fig") {
		t.Errorf("figure list missing entries:\n%s", out)
	}
}

func TestMRBenchStrategiesAblation(t *testing.T) {
	out := run(t, false, "mrbench", "-ablation", "strategies",
		"-scale", "0.01", "-queries", "8", "-maxlen", "3", "-q")
	for _, want := range []string{"top-down", "bottom-up", "auto"} {
		if !strings.Contains(out, want) {
			t.Errorf("strategies table missing %q:\n%s", want, out)
		}
	}
}

func TestMRBenchEngineAblation(t *testing.T) {
	out := run(t, false, "mrbench", "-ablation", "engine", "-scale", "0.01",
		"-queries", "6", "-maxlen", "3", "-readers", "1,2", "-passes", "1", "-q")
	if !strings.Contains(out, "engine stats") {
		t.Errorf("engine ablation missing stats:\n%s", out)
	}
}

func TestMRBenchMmapAblation(t *testing.T) {
	out := run(t, false, "mrbench", "-ablation", "mmap",
		"-scale", "0.02", "-queries", "8", "-maxlen", "3", "-passes", "1", "-q")
	for _, want := range []string{"open-trust", "heap-load", "ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("mmap ablation table missing %q:\n%s", want, out)
		}
	}
}

func TestMRBenchBadUsage(t *testing.T) {
	run(t, true, "mrbench", "-fig", "notanumber")
	run(t, true, "mrbench", "-ablation", "nosuch")
}
