package clitest

// Chaos smoke: the real mrserve and mrload binaries talking across an
// impaired network. An in-process netem.Proxy sits in front of mrserve so
// the server-side leg degrades (latency+jitter, throttling) without
// touching either binary, while mrload's own -impair-* flags impair the
// client leg; every level's full mrload report lands in one combined chaos
// JSON (written to $MRX_CHAOS_REPORT when set — `make chaos-bench` — so
// runs can be committed under results/).
//
// What the levels prove: wire impairment lands on the client-observed
// round trip while the server-side service p99 — the number the -shed-p99
// breaker governs — stays flat; and under a uniform-key surge the server
// sheds with 429 instead of queueing without bound, even while impaired
// clients hold connections.

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mrx/internal/netem"
)

// chaosLevel is one impairment scenario in the combined report.
type chaosLevel struct {
	Name string `json:"name"`
	// ProxyProfile impairs the server-side leg (zero: clean); client-side
	// impairment is recorded inside Report by mrload itself.
	ProxyProfile netem.Profile   `json:"proxy_profile"`
	ProxySeed    int64           `json:"proxy_seed,omitempty"`
	Report       json.RawMessage `json:"report"`
}

// chaosReport is the combined artifact: one mrload run per level against
// the same mrserve instance.
type chaosReport struct {
	Levels []chaosLevel `json:"levels"`
}

// loadLevel is the slice of mrload's report the assertions need.
type loadLevel struct {
	QPS       int    `json:"qps"`
	Sent      uint64 `json:"sent"`
	OK        uint64 `json:"ok"`
	Shed      uint64 `json:"shed"`
	Errors    uint64 `json:"errors"`
	P99Micros int64  `json:"p99_micros"`
	Server    *struct {
		Served    uint64 `json:"served"`
		Shed      uint64 `json:"shed"`
		P99Micros int64  `json:"p99_micros"`
	} `json:"server"`
}

type loadReport struct {
	Impairment *netem.Profile `json:"impairment"`
	ImpairSeed int64          `json:"impair_seed"`
	Levels     []loadLevel    `json:"levels"`
}

// proxyFor starts an impaired TCP proxy in front of backend and returns
// its client-facing address.
func proxyFor(t *testing.T, backend string, prof netem.Profile, seed int64) string {
	t.Helper()
	front, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := netem.NewProxy(front, backend, prof, seed, nil)
	p.Start()
	t.Cleanup(func() { _ = p.Close() })
	return p.Addr().String()
}

// TestChaosSmoke is the chaos-smoke make target.
func TestChaosSmoke(t *testing.T) {
	// Deliberately tight serving limits over a full-scale dataset, so the
	// surge level below genuinely overloads the single evaluation slot:
	// parallel validation makes each evaluation yield (so concurrent
	// arrivals actually observe the busy slot), the 16-deep queue bounds
	// waiting, and the 5ms p99 breaker sheds queued arrivals once the
	// observed service tail crosses it.
	addr, stop := startServe(t,
		"-scale", "1.0", "-parallel", "4",
		"-max-concurrent", "1", "-queue-depth", "16", "-queue-timeout", "20ms",
		"-shed-p99", "5ms")
	defer stop()

	const (
		jitterLatency = 60 * time.Millisecond
		jitterJitter  = 20 * time.Millisecond
	)
	levels := []struct {
		name      string
		proxy     netem.Profile
		proxySeed int64
		extra     []string // extra mrload flags
	}{
		{name: "clean", extra: []string{"-qps", "150"}},
		{name: "jitter",
			proxy:     netem.Profile{Latency: jitterLatency, Jitter: jitterJitter},
			proxySeed: 11,
			extra:     []string{"-qps", "100"}},
		{name: "lossy-trickle",
			proxy:     netem.Profile{BytesPerSec: 1 << 20},
			proxySeed: 12,
			extra: []string{"-qps", "50",
				"-impair-latency", "5ms", "-impair-jitter", "2ms",
				"-impair-loss", "0.05", "-impair-chunk", "2048",
				"-impair-seed", "17"}},
		// Deep uniform-key queries (no coalescing, multi-ms evaluations)
		// at 3× the slot's capacity: the p99 breaker and the bounded queue
		// must answer with fast 429s instead of unbounded queueing.
		{name: "surge", extra: []string{"-qps", "600", "-hotfrac", "0",
			"-queries", "100", "-maxlen", "24", "-max-inflight", "256"}},
	}

	combined := chaosReport{}
	parsed := map[string]loadReport{}
	for _, lv := range levels {
		target := addr
		if !lv.proxy.IsZero() {
			target = proxyFor(t, addr, lv.proxy, lv.proxySeed)
		}
		reportPath := filepath.Join(binDir, "chaos-"+lv.name+".json")
		args := append([]string{"-addr", target, "-dataset", "xmark",
			"-scale", "1.0", "-seed", "7", "-duration", "2s", "-queries", "60",
			"-report", reportPath, "-check"}, lv.extra...)
		out := run(t, false, "mrload", args...)
		if !strings.Contains(out, "check passed") {
			t.Fatalf("%s: mrload -check did not pass:\n%s", lv.name, out)
		}
		raw, err := os.ReadFile(reportPath)
		if err != nil {
			t.Fatal(err)
		}
		var rep loadReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			t.Fatalf("%s: report is not valid JSON: %v", lv.name, err)
		}
		parsed[lv.name] = rep
		combined.Levels = append(combined.Levels, chaosLevel{
			Name: lv.name, ProxyProfile: lv.proxy, ProxySeed: lv.proxySeed,
			Report: json.RawMessage(raw),
		})
	}

	for name, rep := range parsed {
		if len(rep.Levels) != 1 {
			t.Fatalf("%s: report has %d levels, want 1", name, len(rep.Levels))
		}
		lv := rep.Levels[0]
		if lv.OK == 0 || lv.Errors > 0 || lv.Server == nil {
			t.Errorf("%s: implausible level %+v", name, lv)
		}
	}

	// Wire impairment must land on the client round trip, never on the
	// service-side latency the shed breaker observes: under 20ms±10ms
	// one-way proxy latency the client p99 pays at least the 2×10ms floor,
	// while the server-side p99 stays strictly under the one-way latency.
	floor := (2 * (jitterLatency - jitterJitter)).Microseconds()
	j := parsed["jitter"].Levels[0]
	if j.P99Micros < floor {
		t.Errorf("jitter: client p99 %dµs below the impairment floor %dµs", j.P99Micros, floor)
	}
	if j.Server.P99Micros >= jitterLatency.Microseconds() {
		t.Errorf("jitter: server-side p99 %dµs absorbed the wire latency (one-way %dµs) — impairment leaked into service time",
			j.Server.P99Micros, jitterLatency.Microseconds())
	}

	// The client-side impairment recipe must be in the report, so the run
	// is replayable.
	lt := parsed["lossy-trickle"]
	if lt.Impairment == nil || lt.ImpairSeed != 17 {
		t.Errorf("lossy-trickle: report does not record the impairment recipe: %+v seed %d",
			lt.Impairment, lt.ImpairSeed)
	} else if lt.Impairment.LossRate != 0.05 || lt.Impairment.ChunkBytes != 2048 {
		t.Errorf("lossy-trickle: recorded profile %+v does not match the flags", lt.Impairment)
	}

	// The surge must be answered with load shedding, not unbounded
	// queueing. Shed counts are machine-speed dependent, so the plain
	// smoke only logs them; a chaos-bench run (MRX_CHAOS_REPORT set) is
	// the committed record and must demonstrate shedding.
	s := parsed["surge"].Levels[0]
	t.Logf("surge: sent %d ok %d shed %d (server shed %d, server p99 %dµs)",
		s.Sent, s.OK, s.Shed, s.Server.Shed, s.Server.P99Micros)

	if path := os.Getenv("MRX_CHAOS_REPORT"); path != "" {
		if s.Shed == 0 {
			t.Errorf("chaos-bench artifact shows no shedding under surge: %+v", s)
		}
		writeChaosReport(t, path, combined)
	} else {
		writeChaosReport(t, filepath.Join(binDir, "chaos-combined.json"), combined)
	}
}

func writeChaosReport(t *testing.T, path string, rep chaosReport) {
	t.Helper()
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "chaos: wrote %s\n", path)
}

// The impair flags must be rejected when nonsensical, before any traffic.
func TestChaosBadImpairFlags(t *testing.T) {
	run(t, true, "mrload", "-impair-loss", "1.5")
	run(t, true, "mrload", "-impair-latency", "-1ms")
	run(t, true, "mrload", "-impair-bps", "-1")
}
