package clitest

import (
	"bufio"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startServe boots mrserve on a kernel-chosen port and returns its address
// plus a stop function that signals graceful shutdown and collects output.
func startServe(t *testing.T, extraArgs ...string) (addr string, stop func() string) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-dataset", "xmark",
		"-scale", "0.02", "-seed", "7"}, extraArgs...)
	cmd := exec.Command(bin(t, "mrserve"), args...)
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// The second line announces the actual listen address.
	sc := bufio.NewScanner(outPipe)
	var lines []string
	addrRe := regexp.MustCompile(`listening on http://(\S+)`)
	deadline := time.After(30 * time.Second)
	found := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			lines = append(lines, line)
			if m := addrRe.FindStringSubmatch(line); m != nil {
				found <- m[1]
				break
			}
		}
	}()
	select {
	case addr = <-found:
	case <-deadline:
		_ = cmd.Process.Kill()
		t.Fatalf("mrserve never announced its address:\n%s", strings.Join(lines, "\n"))
	}

	rest := make(chan string, 1)
	go func() {
		var b strings.Builder
		for sc.Scan() {
			b.WriteString(sc.Text())
			b.WriteString("\n")
		}
		rest <- b.String()
	}()
	return addr, func() string {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		out := ""
		select {
		case out = <-rest:
		case <-time.After(15 * time.Second):
			_ = cmd.Process.Kill()
			t.Error("mrserve did not shut down on SIGTERM")
		}
		_ = cmd.Wait()
		return strings.Join(lines, "\n") + out
	}
}

// TestServeSmoke is the serve-smoke make target: boot mrserve, replay a
// short mrload run against it, and require a clean -check (non-zero served
// replies, zero errors) plus a well-formed JSON report.
func TestServeSmoke(t *testing.T) {
	addr, stop := startServe(t)
	report := filepath.Join(binDir, "serve-smoke.json")
	out := run(t, false, "mrload", "-addr", addr, "-dataset", "xmark",
		"-scale", "0.02", "-seed", "7", "-qps", "50,150", "-duration", "2s",
		"-queries", "40", "-report", report, "-check")
	if !strings.Contains(out, "check passed") {
		t.Fatalf("mrload -check did not pass:\n%s", out)
	}

	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Levels []struct {
			QPS  int    `json:"qps"`
			OK   uint64 `json:"ok"`
			P99  int64  `json:"p99_micros"`
			Serv *struct {
				Served uint64 `json:"served"`
			} `json:"server"`
		} `json:"levels"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	if len(rep.Levels) != 2 {
		t.Fatalf("report has %d levels, want 2", len(rep.Levels))
	}
	for _, lv := range rep.Levels {
		if lv.OK == 0 || lv.P99 <= 0 || lv.Serv == nil || lv.Serv.Served == 0 {
			t.Errorf("level %d qps: implausible report entry %+v", lv.QPS, lv)
		}
	}

	serverOut := stop()
	if !strings.Contains(serverOut, "served") {
		t.Errorf("mrserve exit summary missing serve counters:\n%s", serverOut)
	}
}

// The server must reject nonsensical serving limits at startup.
func TestServeBadUsage(t *testing.T) {
	run(t, true, "mrserve", "-queue-depth", "0", "-addr", "127.0.0.1:0")
	run(t, true, "mrserve", "-max-concurrent", "-1", "-addr", "127.0.0.1:0")
	run(t, true, "mrserve", "-dataset", "nosuch", "-addr", "127.0.0.1:0")
	run(t, true, "mrload", "-qps", "0")
	run(t, true, "mrload", "-dataset", "nosuch")
}
