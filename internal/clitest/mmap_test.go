package clitest

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// snapFiles builds (once per run) a binary graph file plus a published,
// refined snapshot of the standard tiny xmark dataset, via the real mrsnap
// binary.
func snapFiles(t *testing.T) (graphPath, snapPath string) {
	t.Helper()
	graphPath = filepath.Join(binDir, "mmap-graph.bin")
	snapPath = filepath.Join(binDir, "mmap-snap.mrx")
	if _, err := os.Stat(snapPath); err != nil {
		out := run(t, false, "mrsnap", "-dataset", "xmark", "-scale", "0.02", "-seed", "7",
			"-refine", "//open_auction/bidder/personref,//person/name",
			"-o", snapPath, "-graph-out", graphPath)
		if !strings.Contains(out, "published") {
			t.Fatalf("mrsnap did not report a publish:\n%s", out)
		}
	}
	return graphPath, snapPath
}

// TestMmapSmoke is the mmap-smoke make target: publish a snapshot with
// mrsnap, verify it with mrsnap -verify, then serve it read-only through
// mrserve -index-file (both verified and trusted open) and require a clean
// mrload -check against ground truth.
func TestMmapSmoke(t *testing.T) {
	graphPath, snapPath := snapFiles(t)

	// Full verification must pass on the file we just published.
	out := run(t, false, "mrsnap", "-graph", graphPath, "-verify", snapPath)
	if !strings.Contains(out, "OK") {
		t.Fatalf("mrsnap -verify did not report OK:\n%s", out)
	}

	// A snapshot must be rejected when bound to the wrong graph.
	wrongGraph := filepath.Join(binDir, "mmap-wrong-graph.bin")
	if _, err := os.Stat(wrongGraph); err != nil {
		run(t, false, "mrsnap", "-dataset", "xmark", "-scale", "0.02", "-seed", "8",
			"-o", filepath.Join(binDir, "mmap-wrong.mrx"), "-graph-out", wrongGraph)
	}
	run(t, true, "mrsnap", "-graph", wrongGraph, "-verify", snapPath)

	for _, mode := range []struct {
		name string
		args []string
	}{
		{"verified", nil},
		{"trusted", []string{"-trust-index"}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			args := append([]string{"-graph", graphPath, "-index-file", snapPath}, mode.args...)
			addr, stop := startServe(t, args...)
			// mrload regenerates the same dataset for its query workload and
			// -check ground truth, so a clean check proves the mapped
			// snapshot answers exactly like a built-from-scratch index.
			out := run(t, false, "mrload", "-addr", addr, "-dataset", "xmark",
				"-scale", "0.02", "-seed", "7", "-qps", "80", "-duration", "1s",
				"-queries", "30", "-check")
			if !strings.Contains(out, "check passed") {
				t.Fatalf("mrload -check against the mapped snapshot did not pass:\n%s", out)
			}
			serverOut := stop()
			if !strings.Contains(serverOut, "mapped") {
				t.Errorf("mrserve never reported mapping the snapshot:\n%s", serverOut)
			}
		})
	}
}

// TestMmapPublishAtomicUnderKill SIGKILLs mrsnap in the middle of a paced
// republish and proves the temp+rename protocol never exposes a torn file:
// the previously published snapshot must be byte-identical afterwards and
// must still pass full verification.
func TestMmapPublishAtomicUnderKill(t *testing.T) {
	graphPath, snapPath := snapFiles(t)
	before, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}

	// -pace sleeps before every section payload, holding the temp file open
	// long enough to kill the writer mid-file deterministically.
	cmd := exec.Command(bin(t, "mrsnap"), "-graph", graphPath,
		"-refine", "//open_auction/bidder/personref,//person/name",
		"-pace", "200ms", "-o", snapPath)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Dir(snapPath)
	pattern := filepath.Join(dir, filepath.Base(snapPath)+".tmp-*")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if m, _ := filepath.Glob(pattern); len(m) > 0 {
			break
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			t.Fatal("mrsnap never created a temp file")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	// The published file is untouched — the half-written temp never reached
	// the target name. (The orphaned temp file itself is expected: a killed
	// process cannot clean up; a janitor or fresh publish would.)
	after, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("killing a mid-write publish changed the published snapshot")
	}
	out := run(t, false, "mrsnap", "-graph", graphPath, "-verify", snapPath)
	if !strings.Contains(out, "OK") {
		t.Fatalf("snapshot no longer verifies after a killed republish:\n%s", out)
	}
	for _, m := range mustGlob(t, pattern) {
		_ = os.Remove(m) // leave binDir clean for the other tests
	}
}

func mustGlob(t *testing.T, pattern string) []string {
	t.Helper()
	m, err := filepath.Glob(pattern)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
