package gtest

import (
	"testing"

	"mrx/internal/graph"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

// The Options entry point must preserve the historical output of the
// convenience wrappers: every seeded test in the repository depends on it.
func TestWrappersMatchNew(t *testing.T) {
	a := Random(7, 120, 5, 0.25)
	b := New(7, Options{Nodes: 120, Labels: 5, RefProb: 0.25})
	if !sameGraph(a, b) {
		t.Error("Random diverged from New with equivalent options")
	}
	a = RandomShallow(11, 90, 4)
	b = New(11, Options{Nodes: 90, Labels: 4, Shape: Tree, ShallowBias: true})
	if !sameGraph(a, b) {
		t.Error("RandomShallow diverged from New with equivalent options")
	}
}

func sameGraph(a, b *graph.Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumNodes(); v++ {
		id := graph.NodeID(v)
		if a.NodeLabelName(id) != b.NodeLabelName(id) {
			return false
		}
		ac, bc := a.Children(id), b.Children(id)
		if len(ac) != len(bc) {
			return false
		}
		for i := range ac {
			if ac[i] != bc[i] {
				return false
			}
		}
	}
	return true
}

func TestShapes(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tree := New(seed, Options{Nodes: 80, Labels: 4, RefProb: 0.5, Shape: Tree})
		if tree.NumRefEdges() != 0 {
			t.Fatalf("seed %d: tree shape has %d reference edges", seed, tree.NumRefEdges())
		}
		dag := New(seed, Options{Nodes: 80, Labels: 4, RefProb: 0.5, Shape: DAG})
		// Forward-only edges cannot close a cycle over the (forward) tree.
		for v := 0; v < dag.NumNodes(); v++ {
			for _, c := range dag.Children(graph.NodeID(v)) {
				if int(c) <= v {
					t.Fatalf("seed %d: DAG has back edge %d->%d", seed, v, c)
				}
			}
		}
	}
}

func TestSkewBiasesLabels(t *testing.T) {
	g := New(3, Options{Nodes: 5000, Labels: 10, Skew: 2})
	counts := g.LabelCounts()
	l0, _ := g.LabelIDOf("l0")
	l9, ok := g.LabelIDOf("l9")
	if !ok {
		return // so skewed the rarest label never appeared: fine
	}
	if counts[l0] <= counts[l9] {
		t.Errorf("skew 2: l0 count %d not above l9 count %d", counts[l0], counts[l9])
	}
}

// Witnessed workload expressions must actually match something on the graph
// they were sampled from.
func TestRandomWorkloadWitnessed(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := New(seed, Options{Nodes: 100, Labels: 4, RefProb: 0.2})
		di := query.NewDataIndex(g)
		ws := RandomWorkload(seed, g, WorkloadOptions{Size: 20, MaxLen: 4, Rooted: 0.3})
		if len(ws) != 20 {
			t.Fatalf("seed %d: got %d expressions, want 20", seed, len(ws))
		}
		for _, s := range ws {
			e, err := pathexpr.Parse(s)
			if err != nil {
				t.Fatalf("seed %d: generated unparseable expression %q: %v", seed, s, err)
			}
			if len(di.Eval(e)) == 0 {
				t.Errorf("seed %d: witnessed expression %q matches nothing", seed, s)
			}
		}
	}
}

func TestRandomWorkloadParses(t *testing.T) {
	g := New(9, Options{Nodes: 60, Labels: 3, RefProb: 0.2})
	ws := RandomWorkload(9, g, WorkloadOptions{
		Size: 50, MaxLen: 5, Adversarial: 0.5, Rooted: 0.3, Wildcard: 0.2,
	})
	for _, s := range ws {
		if _, err := pathexpr.Parse(s); err != nil {
			t.Fatalf("generated unparseable expression %q: %v", s, err)
		}
	}
}

// Components > 1 must generate exactly that many weak components (when
// enough nodes exist) without perturbing the single-component generator.
func TestForestComponents(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		o := Options{Nodes: 60, Labels: 4, RefProb: 0.3, Components: 3}
		g := New(seed, o)
		if got := len(g.WeakComponents()); got != 3 {
			t.Fatalf("seed %d: %d components, want 3", seed, got)
		}
		single := New(seed, Options{Nodes: 60, Labels: 4, RefProb: 0.3, Components: 1})
		base := New(seed, Options{Nodes: 60, Labels: 4, RefProb: 0.3})
		if !sameGraph(single, base) {
			t.Fatalf("seed %d: Components=1 diverged from the historical generator", seed)
		}
	}
}
