// Package gtest provides deterministic random data graphs and workloads for
// tests, property-based checks, and the differential oracle (package
// difftest) across the repository.
package gtest

import (
	"fmt"
	"math"
	"math/rand"

	"mrx/internal/graph"
)

// Shape selects the edge structure of a generated graph.
type Shape int

const (
	// Cyclic adds reference edges in any direction, so back edges can create
	// cycles, as ID/IDREF edges do in real XML. This is the default and
	// matches the historical behavior of Random.
	Cyclic Shape = iota
	// Tree generates no reference edges: the graph is exactly the spanning
	// tree.
	Tree
	// DAG restricts reference edges to point forward (to higher node IDs),
	// yielding shared substructure without cycles.
	DAG
)

func (s Shape) String() string {
	switch s {
	case Tree:
		return "tree"
	case DAG:
		return "dag"
	default:
		return "cyclic"
	}
}

// Options configures New. The zero value (after clamping Nodes and Labels to
// at least 1) generates a single-node graph; Random and RandomShallow are
// thin wrappers that preserve their historical output for a given seed.
type Options struct {
	// Nodes is the number of nodes including the root (min 1).
	Nodes int
	// Labels is the approximate number of distinct non-root labels (min 1);
	// labels are named l0..l<Labels-1>.
	Labels int
	// RefProb is the per-node probability of one extra reference edge.
	RefProb float64
	// Shape selects tree / DAG / cyclic structure (default Cyclic).
	Shape Shape
	// Skew biases label choice toward low label IDs with Zipf-like weights
	// 1/(i+1)^Skew; 0 draws labels uniformly.
	Skew float64
	// ShallowBias biases parent choice toward low IDs, generating wide,
	// shallow trees with heavy label reuse (stresses index splitting).
	ShallowBias bool
	// Components is the number of weakly-connected components to generate
	// (min 1). With the default 1 the generator is bit-identical to earlier
	// releases. Higher values grow a forest: node 0 roots the first
	// component and each further component gets its own parentless root;
	// tree and reference edges never cross components. Multi-component
	// graphs exercise the sharded serving path (package shard).
	Components int
}

// New generates a random rooted data graph from o. Every non-root node gets
// a tree edge from an earlier node, so everything is reachable from the
// root. The result is deterministic for a given (seed, Options) pair.
func New(seed int64, o Options) *graph.Graph {
	if o.Nodes < 1 {
		o.Nodes = 1
	}
	if o.Labels < 1 {
		o.Labels = 1
	}
	rng := rand.New(rand.NewSource(seed))
	labelOf := labelPicker(rng, o.Labels, o.Skew)
	if o.Components > 1 {
		return freeze(forestBuilder(rng, labelOf, o))
	}
	b := graph.NewBuilder()
	b.AddNode("root")
	for v := 1; v < o.Nodes; v++ {
		b.AddNode(fmt.Sprintf("l%d", labelOf()))
		parent := graph.NodeID(rng.Intn(v))
		if o.ShallowBias && parent > 0 && rng.Intn(2) == 0 {
			parent = graph.NodeID(rng.Intn(int(parent)))
		}
		b.AddEdge(parent, graph.NodeID(v), graph.TreeEdge)
	}
	if o.Shape != Tree {
		n := o.Nodes
		for v := 1; v < n; v++ {
			if rng.Float64() >= o.RefProb {
				continue
			}
			var to graph.NodeID
			switch o.Shape {
			case DAG:
				if v >= n-1 {
					continue
				}
				to = graph.NodeID(v + 1 + rng.Intn(n-v-1))
			default: // Cyclic
				to = graph.NodeID(1 + rng.Intn(n-1))
			}
			if to != graph.NodeID(v) {
				b.AddEdge(graph.NodeID(v), to, graph.RefEdge)
			}
		}
	}
	return freeze(b)
}

// freeze finalizes a generated builder; every generator adds only in-range
// nodes and edges, so failure is a generator bug, not a data condition.
func freeze(b *graph.Builder) *graph.Graph {
	g, err := b.Freeze()
	if err != nil {
		//mrlint:allow nopanic generator adds only in-range nodes and edges
		panic(err)
	}
	return g
}

// forestBuilder generates a graph with o.Components weakly-connected
// components. Node 0 is the root of the first component; every further
// component starts at its own parentless root node. All edges — tree and
// reference — stay inside one component, so the components are exactly the
// weak components graph.WeakComponents reports.
func forestBuilder(rng *rand.Rand, labelOf func() int, o Options) *graph.Builder {
	c := o.Components
	if c > o.Nodes {
		c = o.Nodes
	}
	b := graph.NewBuilder()
	comp := make([]int, o.Nodes)     // node -> component
	members := make([][]graph.NodeID, c) // component -> nodes, in creation order
	for v := 0; v < o.Nodes; v++ {
		var ci int
		switch {
		case v == 0:
			b.AddNode("root")
		case v < c:
			// A fresh component root; labeled like any interior node so
			// label-based routing cannot cheat off a magic root label.
			b.AddNode(fmt.Sprintf("l%d", labelOf()))
			ci = v
		default:
			b.AddNode(fmt.Sprintf("l%d", labelOf()))
			ci = rng.Intn(c)
			own := members[ci]
			parent := own[rng.Intn(len(own))]
			if o.ShallowBias && len(own) > 1 && rng.Intn(2) == 0 {
				parent = own[rng.Intn(len(own)/2+1)]
			}
			b.AddEdge(parent, graph.NodeID(v), graph.TreeEdge)
		}
		comp[v] = ci
		members[ci] = append(members[ci], graph.NodeID(v))
	}
	if o.Shape != Tree {
		for v := 1; v < o.Nodes; v++ {
			if rng.Float64() >= o.RefProb {
				continue
			}
			own := members[comp[v]]
			if len(own) < 2 {
				continue
			}
			to := own[rng.Intn(len(own))]
			if o.Shape == DAG && to <= graph.NodeID(v) {
				continue // forward-only within the component
			}
			// Never target node 0 (Builder keeps the global root entry-only)
			// or self.
			if to != graph.NodeID(v) && to != 0 {
				b.AddEdge(graph.NodeID(v), to, graph.RefEdge)
			}
		}
	}
	return b
}

// labelPicker returns a deterministic label chooser. With zero skew it draws
// rng.Intn(n) directly, keeping the draw sequence — and therefore every
// graph generated by the historical Random/RandomShallow signatures —
// bit-identical to earlier releases.
func labelPicker(rng *rand.Rand, n int, skew float64) func() int {
	if skew <= 0 {
		return func() int { return rng.Intn(n) }
	}
	cum := make([]float64, n)
	total := 0.0
	for i := range cum {
		total += 1 / math.Pow(float64(i+1), skew)
		cum[i] = total
	}
	return func() int {
		x := rng.Float64() * total
		for i, c := range cum {
			if x <= c {
				return i
			}
		}
		return n - 1
	}
}

// Random generates a random rooted data graph with n nodes and about
// nLabels distinct labels; reference edges are added with probability
// refProb per node and may point backwards, creating cycles. It is
// New(seed, Options{Nodes: n, Labels: nLabels, RefProb: refProb}).
func Random(seed int64, n, nLabels int, refProb float64) *graph.Graph {
	return New(seed, Options{Nodes: n, Labels: nLabels, RefProb: refProb})
}

// RandomShallow generates a random tree biased toward wide, shallow shapes
// with heavy label reuse, which stresses index splitting (many nodes share
// labels but differ structurally).
func RandomShallow(seed int64, n, nLabels int) *graph.Graph {
	return New(seed, Options{Nodes: n, Labels: nLabels, Shape: Tree, ShallowBias: true})
}
