// Package gtest provides deterministic random data graphs for tests and
// property-based checks across the repository.
package gtest

import (
	"fmt"
	"math/rand"

	"mrx/internal/graph"
)

// Random generates a random rooted data graph with n nodes and about
// nLabels distinct labels. Every non-root node gets a tree edge from an
// earlier node (so everything is reachable from the root) and extra
// reference edges are added with probability refProb per node; reference
// edges may point backwards, creating cycles, as ID/IDREF edges do in real
// XML. The result is deterministic for a given seed.
func Random(seed int64, n, nLabels int, refProb float64) *graph.Graph {
	if n < 1 {
		n = 1
	}
	if nLabels < 1 {
		nLabels = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	b.AddNode("root")
	for v := 1; v < n; v++ {
		b.AddNode(fmt.Sprintf("l%d", rng.Intn(nLabels)))
		parent := graph.NodeID(rng.Intn(v))
		b.AddEdge(parent, graph.NodeID(v), graph.TreeEdge)
	}
	for v := 1; v < n; v++ {
		if rng.Float64() < refProb {
			to := graph.NodeID(1 + rng.Intn(n-1))
			if to != graph.NodeID(v) {
				b.AddEdge(graph.NodeID(v), to, graph.RefEdge)
			}
		}
	}
	return b.MustFreeze()
}

// RandomShallow generates a random graph biased toward wide, shallow trees
// with heavy label reuse, which stresses index splitting (many nodes share
// labels but differ structurally).
func RandomShallow(seed int64, n, nLabels int) *graph.Graph {
	if n < 1 {
		n = 1
	}
	if nLabels < 1 {
		nLabels = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	b.AddNode("root")
	for v := 1; v < n; v++ {
		b.AddNode(fmt.Sprintf("l%d", rng.Intn(nLabels)))
		// Bias parents toward low IDs: shallow and wide.
		parent := graph.NodeID(rng.Intn(v))
		if parent > 0 && rng.Intn(2) == 0 {
			parent = graph.NodeID(rng.Intn(int(parent)))
		}
		b.AddEdge(parent, graph.NodeID(v), graph.TreeEdge)
	}
	return b.MustFreeze()
}
