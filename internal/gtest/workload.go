package gtest

import (
	"fmt"
	"math/rand"
	"strings"

	"mrx/internal/graph"
)

// WorkloadOptions configures RandomWorkload.
type WorkloadOptions struct {
	// Size is the number of expressions to generate (min 1).
	Size int
	// MaxLen caps the number of edges per expression (min 1).
	MaxLen int
	// Adversarial is the fraction of expressions assembled from shuffled or
	// nonexistent labels instead of witnessed walks; they usually match
	// nothing, exercising the empty-answer paths of every index.
	Adversarial float64
	// Rooted is the fraction of witnessed expressions anchored at the root
	// (/a/b instead of //a/b).
	Rooted float64
	// Wildcard is the per-step probability of replacing a label with *.
	Wildcard float64
	// DescAxis is the per-join probability of using the descendant axis
	// (a//b) between two witnessed steps; a direct child is also a
	// descendant, so the expression stays witnessed. Such expressions have
	// unbounded length and are never usable as FUPs.
	DescAxis float64
}

// RandomWorkload generates a deterministic query workload for g as path-
// expression strings (parse with pathexpr.Parse). Witnessed expressions are
// sampled by walking child edges from a random start node, so each one is
// guaranteed to match at least the walk's final node; adversarial ones are
// built from shuffled or unknown labels and usually match nothing.
func RandomWorkload(seed int64, g *graph.Graph, o WorkloadOptions) []string {
	if o.Size < 1 {
		o.Size = 1
	}
	if o.MaxLen < 1 {
		o.MaxLen = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, 0, o.Size)
	for len(out) < o.Size {
		if rng.Float64() < o.Adversarial {
			out = append(out, adversarialExpr(rng, g, o.MaxLen))
			continue
		}
		out = append(out, witnessedExpr(rng, g, o))
	}
	return out
}

// witnessedExpr samples a label path that provably occurs in g by walking
// child edges; rooted expressions start the walk at the root.
func witnessedExpr(rng *rand.Rand, g *graph.Graph, o WorkloadOptions) string {
	rooted := rng.Float64() < o.Rooted
	var v graph.NodeID
	if rooted {
		v = g.Root()
	} else {
		v = graph.NodeID(rng.Intn(g.NumNodes()))
	}
	want := 1 + rng.Intn(o.MaxLen)
	var labels []string
	if !rooted {
		labels = append(labels, g.NodeLabelName(v))
	}
	for len(labels) < want+1 {
		kids := g.Children(v)
		if len(kids) == 0 {
			break
		}
		v = kids[rng.Intn(len(kids))]
		labels = append(labels, g.NodeLabelName(v))
	}
	if len(labels) == 0 {
		// The root had no children; fall back to its own label path.
		labels = append(labels, g.NodeLabelName(g.Root()))
		rooted = false
	}
	for i := range labels {
		if rng.Float64() < o.Wildcard {
			labels[i] = "*"
		}
	}
	var b strings.Builder
	if rooted {
		b.WriteString("/")
	} else {
		b.WriteString("//")
	}
	for i, l := range labels {
		if i > 0 {
			b.WriteString("/")
			if rng.Float64() < o.DescAxis {
				b.WriteString("/")
			}
		}
		b.WriteString(l)
	}
	return b.String()
}

// adversarialExpr assembles an expression from labels that exist in g but in
// a random order, or from labels that do not exist at all.
func adversarialExpr(rng *rand.Rand, g *graph.Graph, maxLen int) string {
	steps := 1 + rng.Intn(maxLen)
	labels := make([]string, steps+1)
	for i := range labels {
		switch rng.Intn(3) {
		case 0:
			labels[i] = fmt.Sprintf("zz%d", rng.Intn(4)) // label not in g
		default:
			labels[i] = g.LabelName(graph.LabelID(rng.Intn(g.NumLabels())))
		}
	}
	prefix := "//"
	if rng.Intn(4) == 0 {
		prefix = "/"
	}
	return prefix + strings.Join(labels, "/")
}
