package partition

import (
	"encoding/binary"
	"sort"

	"mrx/internal/graph"
)

// RefineOnceDown is the downward counterpart of RefineOnce: every block is
// split by the set of blocks the node's *children* occupy. Iterating it from
// the label partition computes l-down-bisimilarity, the dual notion used by
// the UD(k,l)-index: nodes in the same block share all outgoing label paths
// of length up to l.
func RefineOnceDown(g *graph.Graph, p *Partition) (*Partition, bool) {
	next := &Partition{blockOf: make([]BlockID, g.NumNodes())}
	sigID := make(map[string]BlockID, p.num*2)
	var sig []byte
	var childBlocks []BlockID

	for v := 0; v < g.NumNodes(); v++ {
		old := p.blockOf[v]
		sig = sig[:0]
		sig = binary.AppendVarint(sig, int64(old))
		childBlocks = childBlocks[:0]
		for _, c := range g.Children(graph.NodeID(v)) {
			childBlocks = append(childBlocks, p.blockOf[c])
		}
		sort.Slice(childBlocks, func(i, j int) bool { return childBlocks[i] < childBlocks[j] })
		prev := BlockID(-1)
		for _, b := range childBlocks {
			if b != prev {
				sig = binary.AppendVarint(sig, int64(b))
				prev = b
			}
		}
		id, ok := sigID[string(sig)]
		if !ok {
			id = BlockID(next.num)
			next.num++
			sigID[string(sig)] = id
		}
		next.blockOf[v] = id
	}
	return next, next.num != p.num
}

// LBisimDown computes the l-down-bisimilarity partition: l downward
// refinement rounds from the label partition.
func LBisimDown(g *graph.Graph, l int) *Partition {
	p := ByLabel(g)
	for i := 0; i < l; i++ {
		next, changed := RefineOnceDown(g, p)
		p = next
		if !changed {
			break
		}
	}
	return p
}

// Intersect returns the common refinement of two partitions over the same
// node set: u and v share a block iff they share a block in both inputs.
// This is how the UD(k,l)-index combines upward and downward bisimilarity.
func Intersect(a, b *Partition) *Partition {
	type pair struct{ x, y BlockID }
	ids := make(map[pair]BlockID)
	out := &Partition{blockOf: make([]BlockID, len(a.blockOf))}
	for v := range a.blockOf {
		key := pair{a.blockOf[v], b.blockOf[v]}
		id, ok := ids[key]
		if !ok {
			id = BlockID(out.num)
			out.num++
			ids[key] = id
		}
		out.blockOf[v] = id
	}
	return out
}
