// Package partition implements partition refinement over data graphs,
// the machinery underlying all bisimilarity-based structural indexes.
//
// The central notion is k-bisimilarity (Definition 2 of He & Yang, ICDE
// 2004, originally from the A(k)-index paper):
//
//	u ≈0 v  iff  label(u) = label(v)
//	u ≈k v  iff  u ≈(k-1) v and the parents of u and v match pairwise
//	             under ≈(k-1)
//
// A partition assigns every data node to a block; the blocks of the
// k-bisimilarity partition become the extents of A(k)-index nodes. Each
// refinement round splits blocks by the set of blocks their parents occupy,
// using hashed signatures, so a round costs O(V + E).
//
// Rounds support freezing: a frozen block is copied unchanged into the next
// partition. D(k)-index construction freezes blocks whose label has reached
// its workload-assigned local-similarity requirement.
package partition

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"mrx/internal/graph"
)

// BlockID identifies a block within one Partition. IDs are dense.
type BlockID int32

// Partition maps every data node to a block.
type Partition struct {
	blockOf []BlockID
	num     int
}

// NumBlocks returns the number of blocks.
func (p *Partition) NumBlocks() int { return p.num }

// NumNodes returns the number of data nodes covered.
func (p *Partition) NumNodes() int { return len(p.blockOf) }

// BlockOf returns the block containing data node v.
func (p *Partition) BlockOf(v graph.NodeID) BlockID { return p.blockOf[v] }

// Blocks materializes the blocks as sorted node slices, indexed by BlockID.
func (p *Partition) Blocks() [][]graph.NodeID {
	out := make([][]graph.NodeID, p.num)
	for v, b := range p.blockOf {
		out[b] = append(out[b], graph.NodeID(v))
	}
	return out
}

// BlockSizes returns the size of each block.
func (p *Partition) BlockSizes() []int {
	out := make([]int, p.num)
	for _, b := range p.blockOf {
		out[b]++
	}
	return out
}

// SameBlock reports whether u and v share a block.
func (p *Partition) SameBlock(u, v graph.NodeID) bool {
	return p.blockOf[u] == p.blockOf[v]
}

// Clone returns a deep copy of p.
func (p *Partition) Clone() *Partition {
	c := &Partition{blockOf: make([]BlockID, len(p.blockOf)), num: p.num}
	copy(c.blockOf, p.blockOf)
	return c
}

// ByLabel returns the 0-bisimilarity partition: nodes grouped by label.
// Block IDs equal label IDs restricted to labels that occur, renumbered
// densely in label-ID order.
func ByLabel(g *graph.Graph) *Partition {
	remap := make([]BlockID, g.NumLabels())
	for i := range remap {
		remap[i] = -1
	}
	p := &Partition{blockOf: make([]BlockID, g.NumNodes())}
	for v := 0; v < g.NumNodes(); v++ {
		l := g.Label(graph.NodeID(v))
		if remap[l] < 0 {
			remap[l] = BlockID(p.num)
			p.num++
		}
		p.blockOf[v] = remap[l]
	}
	return p
}

// RefineOnce computes one refinement round: every non-frozen block of p is
// split by the set of p-blocks of each node's parents. frozen may be nil,
// meaning no block is frozen. It returns the refined partition and whether
// any block actually split.
//
// Block IDs in the result are assigned in order of first appearance when
// scanning nodes in ID order, so results are deterministic — including
// under the parallel signature computation used for large graphs.
func RefineOnce(g *graph.Graph, p *Partition, frozen func(BlockID) bool) (*Partition, bool) {
	n := g.NumNodes()
	sigs := make([][]byte, n)
	computeRange := func(lo, hi int) {
		var parentBlocks []BlockID
		for v := lo; v < hi; v++ {
			old := p.blockOf[v]
			sig := binary.AppendVarint(nil, int64(old))
			if frozen == nil || !frozen(old) {
				parentBlocks = parentBlocks[:0]
				for _, u := range g.Parents(graph.NodeID(v)) {
					parentBlocks = append(parentBlocks, p.blockOf[u])
				}
				sort.Slice(parentBlocks, func(i, j int) bool { return parentBlocks[i] < parentBlocks[j] })
				prev := BlockID(-1)
				for _, b := range parentBlocks {
					if b != prev {
						sig = binary.AppendVarint(sig, int64(b))
						prev = b
					}
				}
			}
			sigs[v] = sig
		}
	}

	// Signature computation is read-only and embarrassingly parallel; the
	// ID assignment below stays sequential in node order for determinism.
	const parallelThreshold = 1 << 14
	if workers := runtime.GOMAXPROCS(0); n >= parallelThreshold && workers > 1 {
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				computeRange(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	} else {
		computeRange(0, n)
	}

	next := &Partition{blockOf: make([]BlockID, n)}
	sigID := make(map[string]BlockID, p.num*2)
	for v := 0; v < n; v++ {
		id, ok := sigID[string(sigs[v])]
		if !ok {
			id = BlockID(next.num)
			next.num++
			sigID[string(sigs[v])] = id
		}
		next.blockOf[v] = id
	}
	return next, next.num != p.num
}

// KBisim computes the k-bisimilarity partition of g: k refinement rounds
// starting from the label partition. It stops early (and harmlessly) once a
// round is a fixpoint, since further rounds cannot split anything.
func KBisim(g *graph.Graph, k int) *Partition {
	if k < 0 {
		//mrlint:allow nopanic negative k is a caller bug; every call site passes a validated k
		panic(fmt.Sprintf("partition: negative k %d", k))
	}
	p := ByLabel(g)
	for i := 0; i < k; i++ {
		next, changed := RefineOnce(g, p, nil)
		p = next
		if !changed {
			break
		}
	}
	return p
}

// KBisimAll returns the partitions for every resolution 0..k, i.e.
// out[i] is the i-bisimilarity partition. Once a fixpoint is reached the
// remaining entries share the stable partition.
func KBisimAll(g *graph.Graph, k int) []*Partition {
	out := make([]*Partition, k+1)
	out[0] = ByLabel(g)
	for i := 1; i <= k; i++ {
		next, changed := RefineOnce(g, out[i-1], nil)
		if !changed {
			for j := i; j <= k; j++ {
				out[j] = next
			}
			return out
		}
		out[i] = next
	}
	return out
}

// Bisim computes the full bisimulation partition (the 1-index equivalence):
// refinement to fixpoint. It returns the stable partition and the number of
// rounds it took to stabilize (the graph's "bisimulation depth").
func Bisim(g *graph.Graph) (*Partition, int) {
	p := ByLabel(g)
	rounds := 0
	for {
		next, changed := RefineOnce(g, p, nil)
		if !changed {
			return p, rounds
		}
		p = next
		rounds++
	}
}

// IsRefinementOf reports whether p refines q: every block of p is contained
// in a single block of q. Both must cover the same node set.
func IsRefinementOf(p, q *Partition) bool {
	if len(p.blockOf) != len(q.blockOf) {
		return false
	}
	rep := make(map[BlockID]BlockID, p.num)
	for v, pb := range p.blockOf {
		qb := q.blockOf[v]
		if prev, ok := rep[pb]; ok {
			if prev != qb {
				return false
			}
		} else {
			rep[pb] = qb
		}
	}
	return true
}
