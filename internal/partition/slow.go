package partition

import "mrx/internal/graph"

// SlowKBisimilar decides u ≈k v by direct recursion on Definition 2 with
// memoization. It is exponential-free but far slower than the round-based
// refinement; it exists as an independent reference implementation for
// property tests, which check it against KBisim on random graphs.
func SlowKBisimilar(g *graph.Graph, u, v graph.NodeID, k int) bool {
	memo := make(map[[3]int32]bool)
	return slowK(g, u, v, k, memo)
}

func slowK(g *graph.Graph, u, v graph.NodeID, k int, memo map[[3]int32]bool) bool {
	if g.Label(u) != g.Label(v) {
		return false
	}
	if k == 0 || u == v {
		return true
	}
	if u > v {
		u, v = v, u
	}
	key := [3]int32{int32(u), int32(v), int32(k)}
	if r, ok := memo[key]; ok {
		return r
	}
	// Recursion always decreases k, so there are no cycles to cut.
	ok := slowCovers(g, u, v, k, memo) && slowCovers(g, v, u, k, memo)
	memo[key] = ok
	return ok
}

// slowCovers reports whether every parent of u has a (k-1)-bisimilar parent
// of v.
func slowCovers(g *graph.Graph, u, v graph.NodeID, k int, memo map[[3]int32]bool) bool {
outer:
	for _, up := range g.Parents(u) {
		for _, vp := range g.Parents(v) {
			if slowK(g, up, vp, k-1, memo) {
				continue outer
			}
		}
		return false
	}
	return true
}
