package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mrx/internal/graph"
	"mrx/internal/gtest"
)

func TestByLabel(t *testing.T) {
	g := graph.PaperFigure1()
	p := ByLabel(g)
	if p.NumBlocks() != g.NumLabels() {
		t.Fatalf("blocks=%d labels=%d", p.NumBlocks(), g.NumLabels())
	}
	if !p.SameBlock(7, 8) || !p.SameBlock(8, 9) {
		t.Error("persons should share a block")
	}
	if p.SameBlock(7, 10) {
		t.Error("person and auction share a block")
	}
	sizes := p.BlockSizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != g.NumNodes() {
		t.Fatalf("block sizes sum to %d, want %d", total, g.NumNodes())
	}
}

// TestPaperFigure2 checks the paper's motivating example: the two d nodes
// have the same incoming label-path sets but are not bisimilar.
func TestPaperFigure2(t *testing.T) {
	g := mustBuildSimple(
		[]string{0: "r", 1: "a", 2: "b", 3: "c", 4: "c", 5: "d"},
		[][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 4}, {3, 5}},
		[][2]int{{4, 5}},
	)
	// d (node 5) reachable by r/a/c/d and r/b/c/d. The two c's are not
	// 1-bisimilar (parents a vs b), so c3 and c4 split at k=1.
	p1 := KBisim(g, 1)
	if p1.SameBlock(3, 4) {
		t.Error("c nodes should split at k=1")
	}
	p0 := KBisim(g, 0)
	if !p0.SameBlock(3, 4) {
		t.Error("c nodes should share at k=0")
	}
}

func TestKBisimMonotone(t *testing.T) {
	g := gtest.Random(42, 300, 6, 0.2)
	all := KBisimAll(g, 6)
	for i := 1; i < len(all); i++ {
		if !IsRefinementOf(all[i], all[i-1]) {
			t.Fatalf("partition %d does not refine %d", i, i-1)
		}
		if all[i].NumBlocks() < all[i-1].NumBlocks() {
			t.Fatalf("block count decreased at round %d", i)
		}
	}
}

func TestKBisimAgainstSlowReference(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := gtest.Random(seed, 60, 4, 0.25)
		rng := rand.New(rand.NewSource(seed + 100))
		for k := 0; k <= 3; k++ {
			p := KBisim(g, k)
			for trial := 0; trial < 200; trial++ {
				u := graph.NodeID(rng.Intn(g.NumNodes()))
				v := graph.NodeID(rng.Intn(g.NumNodes()))
				fast := p.SameBlock(u, v)
				slow := SlowKBisimilar(g, u, v, k)
				if fast != slow {
					t.Fatalf("seed=%d k=%d u=%d v=%d: fast=%v slow=%v", seed, k, u, v, fast, slow)
				}
			}
		}
	}
}

func TestBisimFixpoint(t *testing.T) {
	g := gtest.Random(7, 200, 5, 0.15)
	p, rounds := Bisim(g)
	next, changed := RefineOnce(g, p, nil)
	if changed {
		t.Fatal("fixpoint partition changed on refinement")
	}
	if next.NumBlocks() != p.NumBlocks() {
		t.Fatal("fixpoint block count changed")
	}
	// KBisim at the stabilization depth equals the fixpoint block count.
	if kp := KBisim(g, rounds); kp.NumBlocks() != p.NumBlocks() {
		t.Fatalf("KBisim(%d) blocks=%d, Bisim blocks=%d", rounds, kp.NumBlocks(), p.NumBlocks())
	}
}

func TestFrozenBlocksDoNotSplit(t *testing.T) {
	g := graph.PaperFigure1()
	p0 := ByLabel(g)
	itemBlock := p0.BlockOf(12) // items: 12,13,14,19,20 have different parents
	next, _ := RefineOnce(g, p0, func(b BlockID) bool { return b == itemBlock })
	blocks := next.Blocks()
	// All items must still share one block.
	ib := next.BlockOf(12)
	for _, v := range []graph.NodeID{13, 14, 19, 20} {
		if next.BlockOf(v) != ib {
			t.Fatalf("item %d split out of frozen block: %v", v, blocks)
		}
	}
	// But persons (unfrozen) split: person 7 (seller-ref), 8 (bidder-refs), 9.
	if next.SameBlock(7, 8) {
		t.Error("persons with different referencing parents should split")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := graph.PaperFigure3()
	p := ByLabel(g)
	c := p.Clone()
	p.blockOf[1] = 99
	if c.blockOf[1] == 99 {
		t.Fatal("clone shares storage")
	}
}

func TestKBisimPanicsOnNegativeK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	KBisim(graph.PaperFigure3(), -1)
}

// Property: k-bisimilar nodes have identical incoming label-path sets of
// length up to k (Property 1 of the A(k)-index).
func TestPropertyLabelPathsAgree(t *testing.T) {
	check := func(seed int64) bool {
		g := gtest.Random(seed, 50, 3, 0.3)
		k := 2
		p := KBisim(g, k)
		for _, blk := range p.Blocks() {
			if len(blk) < 2 {
				continue
			}
			want := labelPathsInto(g, blk[0], k)
			for _, v := range blk[1:] {
				got := labelPathsInto(g, v, k)
				if len(got) != len(want) {
					return false
				}
				for s := range want {
					if !got[s] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// labelPathsInto enumerates the set of incoming label paths of length up to
// k ending at v, encoded as strings.
func labelPathsInto(g *graph.Graph, v graph.NodeID, k int) map[string]bool {
	out := make(map[string]bool)
	var walk func(v graph.NodeID, suffix string, depth int)
	walk = func(v graph.NodeID, suffix string, depth int) {
		path := g.NodeLabelName(v) + suffix
		out[path] = true
		if depth == 0 {
			return
		}
		for _, u := range g.Parents(v) {
			walk(u, "/"+path, depth-1)
		}
	}
	walk(v, "", k)
	return out
}

func TestDownBisimBasics(t *testing.T) {
	// Figure 3: the b nodes all have no children, so they stay together
	// downward at any l; a, c, d differ by child count only at l=0 (same
	// label sets? a has one b child, c two, d three: down-1 signatures all
	// {b-block}, so they split only by their own labels).
	g := graph.PaperFigure3()
	p := LBisimDown(g, 3)
	if !p.SameBlock(4, 9) {
		t.Error("leaf b nodes should be down-bisimilar")
	}
	// Figure 4: b nodes 2 and 3 each have one c child: down-bisimilar.
	g4 := graph.PaperFigure4()
	if !LBisimDown(g4, 2).SameBlock(2, 3) {
		t.Error("figure-4 b nodes should be down-bisimilar")
	}
}

func TestIntersectPartitions(t *testing.T) {
	g := gtest.Random(13, 120, 4, 0.25)
	up := KBisim(g, 2)
	down := LBisimDown(g, 2)
	both := Intersect(up, down)
	if !IsRefinementOf(both, up) || !IsRefinementOf(both, down) {
		t.Fatal("intersection does not refine both inputs")
	}
	if both.NumBlocks() < up.NumBlocks() || both.NumBlocks() < down.NumBlocks() {
		t.Fatal("intersection coarser than an input")
	}
	// Intersecting with itself is the identity on block structure.
	self := Intersect(up, up)
	if self.NumBlocks() != up.NumBlocks() {
		t.Fatal("self-intersection changed block count")
	}
}

func TestRefineOnceDownFixpoint(t *testing.T) {
	g := gtest.Random(4, 150, 4, 0.2)
	p := ByLabel(g)
	for i := 0; i < 50; i++ {
		next, changed := RefineOnceDown(g, p)
		p = next
		if !changed {
			break
		}
	}
	if _, changed := RefineOnceDown(g, p); changed {
		t.Fatal("no fixpoint after 50 downward rounds")
	}
}

// The parallel signature path (large graphs) must produce the identical
// partition as the sequential path (small graphs): verify against a
// sequential recomputation through block-structure comparison.
func TestRefineOnceParallelDeterminism(t *testing.T) {
	g := gtest.Random(3, 40000, 8, 0.2) // above the parallel threshold
	p := ByLabel(g)
	a, _ := RefineOnce(g, p, nil)
	b, _ := RefineOnce(g, p, nil)
	if a.NumBlocks() != b.NumBlocks() {
		t.Fatalf("block counts differ: %d vs %d", a.NumBlocks(), b.NumBlocks())
	}
	for v := 0; v < g.NumNodes(); v++ {
		if a.BlockOf(graph.NodeID(v)) != b.BlockOf(graph.NodeID(v)) {
			t.Fatalf("node %d in different blocks across runs", v)
		}
	}
	// And the result must refine the input with correct bisimilarity: spot
	// check with the slow reference on sampled pairs.
	for trial := 0; trial < 50; trial++ {
		u := graph.NodeID(trial * 641 % g.NumNodes())
		v := graph.NodeID((trial*7919 + 13) % g.NumNodes())
		if a.SameBlock(u, v) != SlowKBisimilar(g, u, v, 1) {
			t.Fatalf("pair (%d,%d) misclassified", u, v)
		}
	}
}
