package partition

import (
	"mrx/internal/graph"
)

// mustBuildSimple builds a hand-written test graph.
func mustBuildSimple(labels []string, tree, ref [][2]int) *graph.Graph {
	g, err := graph.BuildSimple(labels, tree, ref)
	if err != nil {
		panic(err)
	}
	return g
}
