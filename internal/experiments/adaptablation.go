package experiments

import (
	"fmt"
	"io"

	"mrx/internal/adapt"
	"mrx/internal/engine"
	"mrx/internal/pathexpr"
)

// AdaptRow is one phase of the adaptive-tuning ablation: the drifting
// workload's current hot set served by the auto-tuned engine, by a static
// oracle built for exactly that hot set, and by the untuned I0 baseline.
// Costs are the paper's metric (index nodes + data nodes validated),
// averaged per query at steady state (after the tuner converged).
type AdaptRow struct {
	Phase      int
	HotSet     []string
	TunedCost  float64 // auto-tuned engine, end of phase
	OracleCost float64 // engine statically refined for this phase only
	NaiveCost  float64 // unrefined I0 baseline
	// TunedComponents / OracleComponents compare index size: retirement must
	// keep the tuned index close to what the current phase actually needs,
	// not the union of all history.
	TunedComponents, OracleComponents int
	// ConvergedAt is the epoch within the phase at which the hot set became
	// precise (-1: never, which WriteAdaptTable flags).
	ConvergedAt int
}

// AdaptAblationResult is the per-phase table plus the tuner's final state.
type AdaptAblationResult struct {
	Rows  []AdaptRow
	Stats engine.StatsSnapshot
}

// RunAdaptAblation replays a drifting workload against one auto-tuned engine:
// the supportable queries are split into `phases` rotating hot sets, each
// served for `epochs` tuner epochs. At the end of each phase the steady-state
// per-query cost is measured and compared against a fresh statically-refined
// oracle engine and the untuned baseline. This quantifies the acceptance
// criterion that adaptive tuning converges to oracle-grade serving cost with
// a bounded (retirement-pruned) index.
func RunAdaptAblation(ds Dataset, queries []*pathexpr.Expr, phases, epochs int, progress Progress) (AdaptAblationResult, error) {
	var fups []*pathexpr.Expr
	for _, e := range queries {
		if !e.HasWildcard() && e.RequiredK() != pathexpr.Unbounded {
			fups = append(fups, e)
		}
	}
	if phases <= 0 {
		phases = 3
	}
	if epochs <= 0 {
		epochs = 6
	}
	hotSize := len(fups) / phases
	if hotSize < 1 {
		hotSize = 1
	}
	if hotSize > 4 {
		hotSize = 4
	}

	en, err := engine.New(ds.Graph, engine.Options{AutoTune: &adapt.Config{
		TopK:         32,
		HotThreshold: 3,
		PromoteAfter: 2,
		DemoteAfter:  2,
		Cooldown:     1,
	}})
	if err != nil {
		return AdaptAblationResult{}, fmt.Errorf("adapt ablation: %w", err)
	}
	defer en.Close()
	naive, err := engine.New(ds.Graph, engine.Options{})
	if err != nil {
		return AdaptAblationResult{}, fmt.Errorf("adapt ablation: %w", err)
	}

	avgCost := func(e *engine.Engine, hot []*pathexpr.Expr) float64 {
		var total int
		for _, q := range hot {
			res := e.Query(q)
			total += res.Cost.IndexNodes + res.Cost.DataNodes
		}
		return float64(total) / float64(len(hot))
	}

	var res AdaptAblationResult
	for phase := 0; phase < phases; phase++ {
		hot := make([]*pathexpr.Expr, 0, hotSize)
		names := make([]string, 0, hotSize)
		for i := 0; i < hotSize; i++ {
			q := fups[(phase*hotSize+i)%len(fups)]
			hot = append(hot, q)
			names = append(names, pathexpr.Canonical(q))
		}

		converged := -1
		for epoch := 0; epoch < epochs; epoch++ {
			for i := 0; i < 5; i++ {
				for _, q := range hot {
					en.Query(q)
				}
			}
			en.Tuner().Step()
			if converged < 0 {
				precise := true
				for _, q := range hot {
					if !en.Query(q).Precise {
						precise = false
					}
				}
				if precise {
					converged = epoch
				}
			}
		}

		oracle, err := engine.New(ds.Graph, engine.Options{})
		if err != nil {
			return res, fmt.Errorf("adapt ablation: %w", err)
		}
		for _, q := range hot {
			oracle.Support(q)
		}

		row := AdaptRow{
			Phase:            phase,
			HotSet:           names,
			TunedCost:        avgCost(en, hot),
			OracleCost:       avgCost(oracle, hot),
			NaiveCost:        avgCost(naive, hot),
			TunedComponents:  en.Snapshot().NumComponents(),
			OracleComponents: oracle.Snapshot().NumComponents(),
			ConvergedAt:      converged,
		}
		res.Rows = append(res.Rows, row)
		progress.log("adapt phase %d: tuned %.1f vs oracle %.1f vs naive %.1f cost/query, %d vs %d components, converged at epoch %d",
			phase, row.TunedCost, row.OracleCost, row.NaiveCost,
			row.TunedComponents, row.OracleComponents, row.ConvergedAt)
	}
	res.Stats = en.Stats()
	return res, nil
}

// WriteAdaptTable renders the adaptive-tuning ablation.
func WriteAdaptTable(w io.Writer, res AdaptAblationResult) {
	fmt.Fprintf(w, "%-6s %12s %12s %12s %8s %8s %10s\n",
		"phase", "tuned", "oracle", "naive", "comps", "oracle", "converged")
	for _, r := range res.Rows {
		conv := fmt.Sprintf("epoch %d", r.ConvergedAt)
		if r.ConvergedAt < 0 {
			conv = "NEVER"
		}
		fmt.Fprintf(w, "%-6d %12.1f %12.1f %12.1f %8d %8d %10s\n",
			r.Phase, r.TunedCost, r.OracleCost, r.NaiveCost,
			r.TunedComponents, r.OracleComponents, conv)
	}
	fmt.Fprintln(w)
	res.Stats.WriteTo(w)
}
