package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func miniDataset(t *testing.T, name string) Dataset {
	t.Helper()
	ds, err := LoadDataset(name, 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestLoadDataset(t *testing.T) {
	if _, err := LoadDataset("unknown", 1, 1); err == nil {
		t.Error("unknown dataset should fail")
	}
	ds := miniDataset(t, "xmark")
	if ds.Graph.NumNodes() < 1000 {
		t.Errorf("xmark 0.02 too small: %d", ds.Graph.NumNodes())
	}
}

func TestRunCostVsSizeShape(t *testing.T) {
	for _, name := range []string{"xmark", "nasa"} {
		ds := miniDataset(t, name)
		queries := NewWorkload(ds, 60, 9, 7)
		res := RunCostVsSize(ds, queries, 3, nil)
		rows := map[string]CostRow{}
		for _, r := range res.Rows {
			rows[r.Index] = r
		}
		// All five index families are present.
		for _, want := range []string{"A(0)", "A(3)", "D(k)-construct", "D(k)-promote", "M(k)", "M*(k)"} {
			if _, ok := rows[want]; !ok {
				t.Fatalf("%s: missing row %s", name, want)
			}
		}
		// A(k) sizes are monotone in k and A(k) cost drops from A(0) to A(3).
		if rows["A(0)"].Nodes > rows["A(1)"].Nodes || rows["A(1)"].Nodes > rows["A(2)"].Nodes {
			t.Errorf("%s: A(k) sizes not monotone", name)
		}
		// Some intermediate resolution beats A(0) (the falling part of the
		// paper's U-shaped A(k) cost curve; where the minimum sits depends
		// on scale).
		best := rows["A(0)"].AvgCost
		for _, idx := range []string{"A(1)", "A(2)", "A(3)"} {
			if rows[idx].AvgCost < best {
				best = rows[idx].AvgCost
			}
		}
		if best >= rows["A(0)"].AvgCost {
			t.Errorf("%s: no A(k) beats A(0) (%.1f)", name, rows["A(0)"].AvgCost)
		}
		// Adaptive indexes support the whole workload: zero validation cost
		// on the rerun.
		for _, idx := range []string{"D(k)-promote", "M(k)", "M*(k)"} {
			if rows[idx].AvgData != 0 {
				t.Errorf("%s: %s paid validation on rerun (%.1f)", name, idx, rows[idx].AvgData)
			}
		}
		// Paper headline: M(k) is no larger than D(k)-promote, and M*(k) has
		// the lowest query cost of the adaptive indexes.
		if rows["M(k)"].Nodes > rows["D(k)-promote"].Nodes {
			t.Errorf("%s: M(k) %d nodes > D(k)-promote %d", name, rows["M(k)"].Nodes, rows["D(k)-promote"].Nodes)
		}
		if rows["M*(k)"].AvgCost > rows["M(k)"].AvgCost+1e-9 {
			t.Errorf("%s: M*(k) cost %.1f > M(k) %.1f", name, rows["M*(k)"].AvgCost, rows["M(k)"].AvgCost)
		}
	}
}

func TestRunGrowthMonotone(t *testing.T) {
	ds := miniDataset(t, "nasa")
	queries := NewWorkload(ds, 40, 4, 3)
	res := RunGrowth(ds, queries, 10, nil)
	for series, pts := range res.Series {
		if len(pts) < 4 {
			t.Fatalf("%s: only %d points", series, len(pts))
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Nodes < pts[i-1].Nodes {
				t.Errorf("%s: node count shrank at step %d", series, i)
			}
		}
		if pts[len(pts)-1].Nodes <= pts[0].Nodes {
			t.Errorf("%s: no growth at all", series)
		}
	}
}

func TestRunFigureHist(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Scale: 0.02, NumQueries: 300, Seed: 2, GrowthStep: 100}
	if err := RunFigure(9, cfg, &buf, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 9") || !strings.Contains(out, "fraction") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestRunFigureCost(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Scale: 0.02, NumQueries: 40, Seed: 2, GrowthStep: 20}
	if err := RunFigure(19, cfg, &buf, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "D(k)-promote") || strings.Contains(out, "A(0)") {
		t.Errorf("figure 19 subset should omit D(k)-promote and A(0):\n%s", out)
	}
	if !strings.Contains(out, "M*(k)") {
		t.Errorf("figure 19 missing M*(k):\n%s", out)
	}
}

func TestRunFigureGrowth(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Scale: 0.02, NumQueries: 30, Seed: 2, GrowthStep: 10}
	if err := RunFigure(16, cfg, &buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "queries") {
		t.Errorf("growth table malformed:\n%s", buf.String())
	}
}

func TestRunFigureUnknown(t *testing.T) {
	if err := RunFigure(99, DefaultConfig(0.02), &bytes.Buffer{}, nil); err == nil {
		t.Error("unknown figure should fail")
	}
}

func TestStrategiesAblation(t *testing.T) {
	ds := miniDataset(t, "xmark")
	queries := NewWorkload(ds, 40, 4, 5)
	rows := RunStrategies(ds, queries, nil)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AvgCost <= 0 {
			t.Errorf("strategy %s: nonpositive cost", r.Strategy)
		}
		if r.AvgData != 0 {
			t.Errorf("strategy %s paid validation after refinement", r.Strategy)
		}
	}
	var buf bytes.Buffer
	WriteStrategyTable(&buf, rows)
	if !strings.Contains(buf.String(), "top-down") {
		t.Error("strategy table malformed")
	}
}

func TestLiteralAblation(t *testing.T) {
	ds := miniDataset(t, "nasa")
	queries := NewWorkload(ds, 40, 4, 5)
	rows := RunLiteralAblation(ds, queries, nil)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].P1Violated {
		t.Error("strict mode violated P1")
	}
	var buf bytes.Buffer
	WriteLiteralTable(&buf, rows)
	if !strings.Contains(buf.String(), "paper-literal") {
		t.Error("literal table malformed")
	}
}

func TestMStarAccounting(t *testing.T) {
	ds := miniDataset(t, "xmark")
	queries := NewWorkload(ds, 30, 4, 5)
	row := RunMStarAccounting(ds, queries, nil)
	if row.Nodes > row.LogicalNodes || row.Edges > row.LogicalEdges {
		t.Errorf("dedup sizes exceed logical: %+v", row)
	}
	if row.Components < 2 {
		t.Errorf("components = %d", row.Components)
	}
}

func TestRenderFigureSVG(t *testing.T) {
	cfg := Config{Scale: 0.02, NumQueries: 40, Seed: 2, GrowthStep: 20}
	for _, id := range []int{9, 10, 16, 19} {
		var buf bytes.Buffer
		if err := RenderFigureSVG(id, cfg, &buf, nil); err != nil {
			t.Fatalf("figure %d: %v", id, err)
		}
		out := buf.String()
		if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(out, "</svg>") {
			t.Fatalf("figure %d: not an SVG document", id)
		}
		if !strings.Contains(out, fmt.Sprintf("Figure %d", id)) {
			t.Errorf("figure %d: missing title", id)
		}
	}
	if err := RenderFigureSVG(99, cfg, &bytes.Buffer{}, nil); err == nil {
		t.Error("unknown figure should fail")
	}
}

func TestAPEXAblation(t *testing.T) {
	ds := miniDataset(t, "xmark")
	seen := NewWorkload(ds, 40, 4, 5)
	unseen := NewWorkload(ds, 40, 4, 1005)
	rows := RunAPEXAblation(ds, seen, unseen, nil)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	apex, mstar := rows[0], rows[1]
	if apex.AvgSeen > 1.01 {
		t.Errorf("APEX seen cost = %.2f, want ~1 (pure cache hits)", apex.AvgSeen)
	}
	if apex.UnseenValid == 0 {
		t.Error("APEX should validate unseen queries")
	}
	if mstar.AvgUnseen >= apex.AvgUnseen {
		t.Errorf("M*(k) should generalize better: %.1f vs %.1f", mstar.AvgUnseen, apex.AvgUnseen)
	}
	var buf bytes.Buffer
	WriteAPEXTable(&buf, rows)
	if !strings.Contains(buf.String(), "APEX") {
		t.Error("table malformed")
	}
}

func TestRenderFigureCSV(t *testing.T) {
	cfg := Config{Scale: 0.02, NumQueries: 40, Seed: 2, GrowthStep: 20}
	for _, id := range []int{8, 12, 17} {
		var buf bytes.Buffer
		if err := RenderFigureCSV(id, cfg, &buf, nil); err != nil {
			t.Fatalf("figure %d: %v", id, err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if len(lines) < 2 {
			t.Fatalf("figure %d: CSV too short:\n%s", id, buf.String())
		}
		cols := strings.Count(lines[0], ",")
		for i, l := range lines[1:] {
			if strings.Count(l, ",") != cols {
				t.Errorf("figure %d: ragged CSV at row %d", id, i+1)
			}
		}
	}
	if err := RenderFigureCSV(99, cfg, &bytes.Buffer{}, nil); err == nil {
		t.Error("unknown figure should fail")
	}
}
