package experiments

import (
	"fmt"
	"io"

	"mrx/internal/workload"
)

// FigureSpec describes one figure of the paper's evaluation section.
type FigureSpec struct {
	ID          int
	Title       string
	Dataset     string // "xmark", "nasa", or "" (workload-only figures)
	MaxQueryLen int
	MaxA        int    // largest A(k) in the figure
	Kind        string // "hist", "cost-nodes", "cost-edges", "growth-nodes", "growth-edges"
	Subset      bool   // figures 19-20 omit A(0..1), D(k)-promote and M(k)
}

// Figures indexes every figure of §5 by ID.
var Figures = []FigureSpec{
	{ID: 8, Title: "Query distribution on NASA dataset (max path length: 9)", Dataset: "nasa", MaxQueryLen: 9, Kind: "hist"},
	{ID: 9, Title: "Query distribution on NASA dataset (max path length: 4)", Dataset: "nasa", MaxQueryLen: 4, Kind: "hist"},
	{ID: 10, Title: "Query cost vs number of index nodes on XMark (max len 9)", Dataset: "xmark", MaxQueryLen: 9, MaxA: 7, Kind: "cost-nodes"},
	{ID: 11, Title: "Query cost vs number of index edges on XMark (max len 9)", Dataset: "xmark", MaxQueryLen: 9, MaxA: 7, Kind: "cost-edges"},
	{ID: 12, Title: "Query cost vs number of index nodes on NASA (max len 9)", Dataset: "nasa", MaxQueryLen: 9, MaxA: 7, Kind: "cost-nodes"},
	{ID: 13, Title: "Query cost vs number of index edges on NASA (max len 9)", Dataset: "nasa", MaxQueryLen: 9, MaxA: 7, Kind: "cost-edges"},
	{ID: 14, Title: "Index node size growth over queries on XMark (max len 9)", Dataset: "xmark", MaxQueryLen: 9, Kind: "growth-nodes"},
	{ID: 15, Title: "Index edge size growth over queries on XMark (max len 9)", Dataset: "xmark", MaxQueryLen: 9, Kind: "growth-edges"},
	{ID: 16, Title: "Index node size growth over queries on NASA (max len 9)", Dataset: "nasa", MaxQueryLen: 9, Kind: "growth-nodes"},
	{ID: 17, Title: "Index edge size growth over queries on NASA (max len 9)", Dataset: "nasa", MaxQueryLen: 9, Kind: "growth-edges"},
	{ID: 18, Title: "Query cost vs number of index nodes on XMark (max len 4)", Dataset: "xmark", MaxQueryLen: 4, MaxA: 4, Kind: "cost-nodes"},
	{ID: 19, Title: "Query cost vs index nodes on XMark, zoomed (max len 4)", Dataset: "xmark", MaxQueryLen: 4, MaxA: 4, Kind: "cost-nodes", Subset: true},
	{ID: 20, Title: "Query cost vs index edges on XMark, zoomed (max len 4)", Dataset: "xmark", MaxQueryLen: 4, MaxA: 4, Kind: "cost-edges", Subset: true},
	{ID: 21, Title: "Query cost vs number of index nodes on NASA (max len 4)", Dataset: "nasa", MaxQueryLen: 4, MaxA: 4, Kind: "cost-nodes"},
	{ID: 22, Title: "Query cost vs number of index edges on NASA (max len 4)", Dataset: "nasa", MaxQueryLen: 4, MaxA: 4, Kind: "cost-edges"},
	{ID: 23, Title: "Index node size growth over queries on XMark (max len 4)", Dataset: "xmark", MaxQueryLen: 4, Kind: "growth-nodes"},
	{ID: 24, Title: "Index edge size growth over queries on XMark (max len 4)", Dataset: "xmark", MaxQueryLen: 4, Kind: "growth-edges"},
	{ID: 25, Title: "Index node size growth over queries on NASA (max len 4)", Dataset: "nasa", MaxQueryLen: 4, Kind: "growth-nodes"},
	{ID: 26, Title: "Index edge size growth over queries on NASA (max len 4)", Dataset: "nasa", MaxQueryLen: 4, Kind: "growth-edges"},
}

// FigureByID looks up a figure specification.
func FigureByID(id int) (FigureSpec, bool) {
	for _, f := range Figures {
		if f.ID == id {
			return f, true
		}
	}
	return FigureSpec{}, false
}

// Config controls a figure run.
type Config struct {
	Scale      float64 // dataset scale; 1.0 = paper size
	NumQueries int     // paper: 500
	Seed       int64
	GrowthStep int // paper: 50
}

// DefaultConfig matches the paper's setup at the given scale.
func DefaultConfig(scale float64) Config {
	return Config{Scale: scale, NumQueries: 500, Seed: 1, GrowthStep: 50}
}

// RunFigure executes one figure's experiment and writes its data series as
// a text table to w.
func RunFigure(id int, cfg Config, w io.Writer, progress Progress) error {
	spec, ok := FigureByID(id)
	if !ok {
		return fmt.Errorf("experiments: no figure %d", id)
	}
	fmt.Fprintf(w, "Figure %d: %s\n", spec.ID, spec.Title)
	ds, err := LoadDataset(spec.Dataset, cfg.Scale, cfg.Seed)
	if err != nil {
		return err
	}
	progress.log("dataset %s: %d nodes, %d edges (%d refs)",
		ds.Name, ds.Graph.NumNodes(), ds.Graph.NumEdges(), ds.Graph.NumRefEdges())
	queries := NewWorkload(ds, cfg.NumQueries, spec.MaxQueryLen, cfg.Seed)

	switch spec.Kind {
	case "hist":
		hist := workload.LengthHistogram(queries)
		fmt.Fprintf(w, "%-8s %10s\n", "length", "fraction")
		for l, f := range hist {
			fmt.Fprintf(w, "%-8d %10.3f\n", l, f)
		}
	case "cost-nodes", "cost-edges":
		res := RunCostVsSize(ds, queries, spec.MaxA, progress)
		if spec.Subset {
			var rows []CostRow
			for _, r := range res.Rows {
				switch r.Index {
				case "A(0)", "A(1)", "D(k)-promote", "M(k)":
					continue
				}
				rows = append(rows, r)
			}
			res.Rows = rows
		}
		WriteCostTable(w, res)
	case "growth-nodes", "growth-edges":
		res := RunGrowth(ds, queries, cfg.GrowthStep, progress)
		WriteGrowthTable(w, res)
	default:
		return fmt.Errorf("experiments: unknown figure kind %q", spec.Kind)
	}
	return nil
}
