package experiments

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"mrx/internal/engine"
	"mrx/internal/pathexpr"
)

// EngineRow is one point of the concurrent-serving ablation: the workload
// replayed by a fixed number of reader goroutines against one Engine while a
// refiner concurrently applies Support for every workload query.
type EngineRow struct {
	Readers    int
	Queries    int64 // total queries served across all readers
	Elapsed    time.Duration
	Throughput float64 // queries per second
	Generation uint64  // snapshot generation after the run
}

// EngineAblationResult gathers the per-reader-count rows plus the serving
// stats of the last (widest) run for dumping.
type EngineAblationResult struct {
	Rows  []EngineRow
	Stats engine.StatsSnapshot
}

// RunEngineAblation measures concurrent query serving: for each reader
// count, a fresh Engine serves the workload from that many goroutines
// (each replaying it `passes` times) while one refiner goroutine applies
// Support for every workload query. Readers run lock-free against published
// snapshots, so their throughput is the headline number; the final
// generation shows how many refinements were published mid-flight.
func RunEngineAblation(ds Dataset, queries []*pathexpr.Expr, readerCounts []int, passes int, progress Progress) (EngineAblationResult, error) {
	if passes <= 0 {
		passes = 1
	}
	var res EngineAblationResult
	for _, readers := range readerCounts {
		if readers <= 0 {
			continue
		}
		en, err := engine.New(ds.Graph, engine.Options{})
		if err != nil {
			return res, fmt.Errorf("engine ablation: %w", err)
		}
		var served atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()

		// One refiner applies the whole workload as FUPs while readers run.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, q := range queries {
				en.Support(q)
			}
		}()

		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for p := 0; p < passes; p++ {
					// Offset each reader so they don't march in lockstep
					// over the same snapshot regions.
					for i := range queries {
						en.Query(queries[(i+r)%len(queries)])
						served.Add(1)
					}
				}
			}(r)
		}
		wg.Wait()
		elapsed := time.Since(start)

		row := EngineRow{
			Readers:    readers,
			Queries:    served.Load(),
			Elapsed:    elapsed,
			Generation: en.Generation(),
		}
		if s := elapsed.Seconds(); s > 0 {
			row.Throughput = float64(row.Queries) / s
		}
		res.Rows = append(res.Rows, row)
		res.Stats = en.Stats()
		progress.log("engine %d readers: %d queries in %v (%.0f q/s, generation %d)",
			row.Readers, row.Queries, elapsed.Round(time.Millisecond), row.Throughput, row.Generation)
	}
	return res, nil
}

// WriteEngineTable renders the concurrent-serving ablation.
func WriteEngineTable(w io.Writer, res EngineAblationResult) {
	fmt.Fprintf(w, "%-8s %10s %12s %12s %12s\n", "readers", "queries", "elapsed", "q/s", "generation")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-8d %10d %12s %12.0f %12d\n",
			r.Readers, r.Queries, r.Elapsed.Round(time.Millisecond), r.Throughput, r.Generation)
	}
	fmt.Fprintln(w)
	res.Stats.WriteTo(w)
}
