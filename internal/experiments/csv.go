package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"mrx/internal/workload"
)

// WriteCostCSV emits a cost-versus-size result as CSV for external plotting.
func WriteCostCSV(w io.Writer, res CostVsSizeResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"index", "nodes", "edges", "avg_cost", "index_part", "validation_part"}); err != nil {
		return err
	}
	for _, r := range res.Rows {
		rec := []string{
			r.Index,
			strconv.Itoa(r.Nodes),
			strconv.Itoa(r.Edges),
			fmt.Sprintf("%.3f", r.AvgCost),
			fmt.Sprintf("%.3f", r.AvgIndex),
			fmt.Sprintf("%.3f", r.AvgData),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteGrowthCSV emits a growth result as CSV: one row per sample point,
// with node and edge columns per adaptive index.
func WriteGrowthCSV(w io.Writer, res GrowthResult) error {
	cw := csv.NewWriter(w)
	order := []string{"D(k)-promote", "M(k)", "M*(k)"}
	header := []string{"queries"}
	for _, s := range order {
		header = append(header, s+"_nodes", s+"_edges")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range res.Series[order[0]] {
		rec := []string{strconv.Itoa(res.Series[order[0]][i].Queries)}
		for _, s := range order {
			p := res.Series[s][i]
			rec = append(rec, strconv.Itoa(p.Nodes), strconv.Itoa(p.Edges))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteHistCSV emits a query-length histogram as CSV.
func WriteHistCSV(w io.Writer, hist []float64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"length", "fraction"}); err != nil {
		return err
	}
	for l, f := range hist {
		if err := cw.Write([]string{strconv.Itoa(l), fmt.Sprintf("%.4f", f)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderFigureCSV executes one figure's experiment and writes its data as
// CSV.
func RenderFigureCSV(id int, cfg Config, w io.Writer, progress Progress) error {
	spec, ok := FigureByID(id)
	if !ok {
		return fmt.Errorf("experiments: no figure %d", id)
	}
	ds, err := LoadDataset(spec.Dataset, cfg.Scale, cfg.Seed)
	if err != nil {
		return err
	}
	queries := NewWorkload(ds, cfg.NumQueries, spec.MaxQueryLen, cfg.Seed)
	switch spec.Kind {
	case "hist":
		return WriteHistCSV(w, workload.LengthHistogram(queries))
	case "cost-nodes", "cost-edges":
		res := RunCostVsSize(ds, queries, spec.MaxA, progress)
		if spec.Subset {
			var rows []CostRow
			for _, r := range res.Rows {
				switch r.Index {
				case "A(0)", "A(1)", "D(k)-promote", "M(k)":
					continue
				}
				rows = append(rows, r)
			}
			res.Rows = rows
		}
		return WriteCostCSV(w, res)
	case "growth-nodes", "growth-edges":
		return WriteGrowthCSV(w, RunGrowth(ds, queries, cfg.GrowthStep, progress))
	default:
		return fmt.Errorf("experiments: unknown figure kind %q", spec.Kind)
	}
}
