package experiments

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"mrx/internal/engine"
	"mrx/internal/pathexpr"
)

// ShardRow is one point of the sharded-serving ablation: the same workload
// served by a scatter-gather engine at one shard count.
type ShardRow struct {
	Shards     int           // requested shard count
	Actual     int           // shards actually built (clamped to components)
	Build      time.Duration // partition + index build + parallel initial freeze
	Refine     time.Duration // wall-clock of one sequential Support pass
	Queries    int64         // total queries served across all readers
	Elapsed    time.Duration
	Throughput float64 // queries per second
	Generation uint64  // summed per-shard generation after the run
}

// ShardAblationResult gathers the per-shard-count rows plus the serving
// stats of the last (widest) run, whose per-shard lines show the partition.
type ShardAblationResult struct {
	Rows  []ShardRow
	Stats engine.StatsSnapshot
}

// RunShardAblation measures scatter-gather serving against shard count: for
// each count, a fresh sharded engine is built (its Build column times the
// partition plus the parallel per-shard initial freeze), one sequential
// Support pass over the workload is timed (refinements lock one shard at a
// time, so more shards mean smaller clones and smaller freezes), and then
// the workload is replayed from `readers` goroutines while a concurrent
// refiner re-applies it. Meaningful shard counts need a multi-component
// dataset — use "corpus"; on a single-document dataset every row degenerates
// to one shard.
func RunShardAblation(ds Dataset, queries []*pathexpr.Expr, shardCounts []int, readers, passes int, progress Progress) (ShardAblationResult, error) {
	if readers <= 0 {
		readers = 4
	}
	if passes <= 0 {
		passes = 1
	}
	var res ShardAblationResult
	for _, shards := range shardCounts {
		if shards <= 0 {
			continue
		}
		buildStart := time.Now()
		en, err := engine.NewSharded(ds.Graph, engine.ShardedOptions{Shards: shards})
		if err != nil {
			return res, fmt.Errorf("shard ablation: %w", err)
		}
		build := time.Since(buildStart)

		refineStart := time.Now()
		for _, q := range queries {
			en.Support(q)
		}
		refine := time.Since(refineStart)

		var served atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()

		// One refiner re-applies the workload while readers run; most calls
		// are registry no-ops, keeping write-lock pressure realistic.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, q := range queries {
				en.Support(q)
			}
		}()

		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for p := 0; p < passes; p++ {
					for i := range queries {
						en.Query(queries[(i+r)%len(queries)])
						served.Add(1)
					}
				}
			}(r)
		}
		wg.Wait()
		elapsed := time.Since(start)

		row := ShardRow{
			Shards:     shards,
			Actual:     en.NumShards(),
			Build:      build,
			Refine:     refine,
			Queries:    served.Load(),
			Elapsed:    elapsed,
			Generation: en.Generation(),
		}
		if s := elapsed.Seconds(); s > 0 {
			row.Throughput = float64(row.Queries) / s
		}
		res.Rows = append(res.Rows, row)
		res.Stats = en.Stats()
		progress.log("shards %d (actual %d): build %v, refine %v, %d queries in %v (%.0f q/s, generation %d)",
			row.Shards, row.Actual, build.Round(time.Millisecond), refine.Round(time.Millisecond),
			row.Queries, elapsed.Round(time.Millisecond), row.Throughput, row.Generation)
	}
	return res, nil
}

// WriteShardTable renders the sharded-serving ablation.
func WriteShardTable(w io.Writer, res ShardAblationResult) {
	fmt.Fprintf(w, "%-8s %-8s %12s %12s %10s %12s %12s %12s\n",
		"shards", "actual", "build", "refine", "queries", "elapsed", "q/s", "generation")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-8d %-8d %12s %12s %10d %12s %12.0f %12d\n",
			r.Shards, r.Actual, r.Build.Round(time.Millisecond), r.Refine.Round(time.Millisecond),
			r.Queries, r.Elapsed.Round(time.Millisecond), r.Throughput, r.Generation)
	}
	fmt.Fprintln(w)
	res.Stats.WriteTo(w)
}
