package experiments

import (
	"fmt"
	"io"
	"strings"

	"mrx/internal/svgplot"
	"mrx/internal/workload"
)

// CostChart converts a cost-versus-size result into the paper's scatter
// form: the A(k) family as one connected series with per-point k labels,
// and each adaptive index as a labeled single-point series.
func CostChart(res CostVsSizeResult, title string, edges bool) *svgplot.Chart {
	c := &svgplot.Chart{
		Title:  title,
		YLabel: "average cost per query",
		XLabel: "number of index nodes",
	}
	if edges {
		c.XLabel = "number of index edges"
	}
	xOf := func(r CostRow) float64 {
		if edges {
			return float64(r.Edges)
		}
		return float64(r.Nodes)
	}
	var ak svgplot.Series
	ak.Name = "A(k)"
	for _, r := range res.Rows {
		if strings.HasPrefix(r.Index, "A(") {
			ak.Points = append(ak.Points, svgplot.Point{X: xOf(r), Y: r.AvgCost, Label: r.Index})
			continue
		}
		c.Series = append(c.Series, svgplot.Series{
			Name:    r.Index,
			Scatter: true,
			Points:  []svgplot.Point{{X: xOf(r), Y: r.AvgCost}},
		})
	}
	if len(ak.Points) > 0 {
		c.Series = append([]svgplot.Series{ak}, c.Series...)
	}
	svgplot.SortSeriesPoints(c.Series[:1]) // A(k) series ordered by size
	return c
}

// GrowthChart converts a growth result into a three-line chart.
func GrowthChart(res GrowthResult, title string, edges bool) *svgplot.Chart {
	c := &svgplot.Chart{
		Title:  title,
		XLabel: "number of queries",
		YLabel: "number of index nodes",
	}
	if edges {
		c.YLabel = "number of index edges"
	}
	for _, name := range []string{"D(k)-promote", "M(k)", "M*(k)"} {
		s := svgplot.Series{Name: name}
		for _, p := range res.Series[name] {
			y := float64(p.Nodes)
			if edges {
				y = float64(p.Edges)
			}
			s.Points = append(s.Points, svgplot.Point{X: float64(p.Queries), Y: y})
		}
		c.Series = append(c.Series, s)
	}
	return c
}

// HistChart converts a workload length histogram into a bar chart.
func HistChart(hist []float64, title string) *svgplot.Chart {
	s := svgplot.Series{Name: "fraction of queries"}
	for l, f := range hist {
		s.Points = append(s.Points, svgplot.Point{X: float64(l), Y: f, Label: fmt.Sprintf("%d", l)})
	}
	return &svgplot.Chart{
		Title:  title,
		XLabel: "query length",
		YLabel: "fraction of queries",
		Bars:   true,
		Series: []svgplot.Series{s},
	}
}

// RenderFigureSVG executes one figure's experiment and writes it as an SVG
// chart instead of a text table.
func RenderFigureSVG(id int, cfg Config, w io.Writer, progress Progress) error {
	spec, ok := FigureByID(id)
	if !ok {
		return fmt.Errorf("experiments: no figure %d", id)
	}
	ds, err := LoadDataset(spec.Dataset, cfg.Scale, cfg.Seed)
	if err != nil {
		return err
	}
	queries := NewWorkload(ds, cfg.NumQueries, spec.MaxQueryLen, cfg.Seed)
	title := fmt.Sprintf("Figure %d: %s", spec.ID, spec.Title)

	var chart *svgplot.Chart
	switch spec.Kind {
	case "hist":
		chart = HistChart(workload.LengthHistogram(queries), title)
	case "cost-nodes", "cost-edges":
		res := RunCostVsSize(ds, queries, spec.MaxA, progress)
		if spec.Subset {
			var rows []CostRow
			for _, r := range res.Rows {
				switch r.Index {
				case "A(0)", "A(1)", "D(k)-promote", "M(k)":
					continue
				}
				rows = append(rows, r)
			}
			res.Rows = rows
		}
		chart = CostChart(res, title, spec.Kind == "cost-edges")
	case "growth-nodes", "growth-edges":
		res := RunGrowth(ds, queries, cfg.GrowthStep, progress)
		chart = GrowthChart(res, title, spec.Kind == "growth-edges")
	default:
		return fmt.Errorf("experiments: unknown figure kind %q", spec.Kind)
	}
	return chart.WriteSVG(w)
}
