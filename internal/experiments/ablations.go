package experiments

import (
	"fmt"
	"io"

	"mrx/internal/baseline"
	"mrx/internal/core"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

// StrategyRow compares one M*(k) query-evaluation strategy.
type StrategyRow struct {
	Strategy string
	AvgCost  float64
	AvgIndex float64
	AvgData  float64
}

// RunStrategies is the ablation for §4.1: after refining an M*(k)-index for
// the workload, replay it under each evaluation strategy. The subpath
// strategy uses the middle window of length min(2, length) as its
// pre-filter, a simple stand-in for the selectivity-driven choice the paper
// leaves as future query-optimization work.
func RunStrategies(ds Dataset, queries []*pathexpr.Expr, progress Progress) []StrategyRow {
	ms := core.NewMStar(ds.Graph)
	for _, q := range queries {
		ms.Support(q)
	}
	progress.log("M*(k) refined: %d components", ms.NumComponents())

	eval := map[string]func(*pathexpr.Expr) query.Cost{
		"naive":     func(q *pathexpr.Expr) query.Cost { return ms.QueryNaive(q).Cost },
		"top-down":  func(q *pathexpr.Expr) query.Cost { return ms.QueryTopDown(q).Cost },
		"bottom-up": func(q *pathexpr.Expr) query.Cost { return ms.QueryBottomUp(q).Cost },
		"hybrid":    func(q *pathexpr.Expr) query.Cost { return ms.QueryHybrid(q, -1).Cost },
		"subpath": func(q *pathexpr.Expr) query.Cost {
			start, end := subpathWindow(q)
			return ms.QuerySubpath(q, start, end).Cost
		},
		"auto": func(q *pathexpr.Expr) query.Cost {
			res, _ := ms.QueryAuto(q)
			return res.Cost
		},
	}
	var rows []StrategyRow
	for _, name := range []string{"naive", "top-down", "bottom-up", "hybrid", "subpath", "auto"} {
		row := StrategyRow{Strategy: name}
		row.AvgCost, row.AvgIndex, row.AvgData = averageCost(queries, eval[name])
		rows = append(rows, row)
		progress.log("strategy %s: avg cost %.1f", name, row.AvgCost)
	}
	return rows
}

// subpathWindow picks the pre-filter window for the subpath strategy: the
// centered window of length min(2, query length).
func subpathWindow(q *pathexpr.Expr) (start, end int) {
	n := q.Length()
	w := 2
	if n < w {
		w = n
	}
	start = (n - w) / 2
	return start, start + w
}

// LiteralRow compares the default (rider-evicting) M(k) refinement with the
// paper-literal variant.
type LiteralRow struct {
	Variant    string
	Nodes      int
	Edges      int
	AvgCost    float64
	P1Violated bool
}

// RunLiteralAblation quantifies the DESIGN.md deviation: the paper-literal
// REFINENODE merge versus the rider-evicting default, in index size, query
// cost and Property-1 validity.
func RunLiteralAblation(ds Dataset, queries []*pathexpr.Expr, progress Progress) []LiteralRow {
	var rows []LiteralRow
	for _, literal := range []bool{false, true} {
		mk := core.NewMK(ds.Graph)
		//mrlint:allow snapshotmut pre-use configuration of a private index, not a published snapshot
		mk.Literal = literal
		for _, q := range queries {
			mk.Support(q)
		}
		name := "strict (default)"
		if literal {
			name = "paper-literal"
		}
		row := LiteralRow{Variant: name, Nodes: mk.Index().NumNodes(), Edges: mk.Index().NumEdges()}
		row.AvgCost, _, _ = averageCost(queries, func(q *pathexpr.Expr) query.Cost {
			return mk.Query(q).Cost
		})
		row.P1Violated = mk.Index().Validate(true) != nil
		rows = append(rows, row)
		progress.log("M(k) %s: %d nodes, avg cost %.1f, P1 violated: %v",
			name, row.Nodes, row.AvgCost, row.P1Violated)
	}
	return rows
}

// MStarAccountingRow contrasts the logical and deduplicated M*(k) sizes.
type MStarAccountingRow struct {
	Nodes, Edges, LogicalNodes, LogicalEdges, CrossLinks, Components int
}

// RunMStarAccounting refines an M*(k)-index for the workload and reports its
// size under both accountings (§4's space discussion).
func RunMStarAccounting(ds Dataset, queries []*pathexpr.Expr, progress Progress) MStarAccountingRow {
	ms := core.NewMStar(ds.Graph)
	for _, q := range queries {
		ms.Support(q)
	}
	sz := ms.Sizes()
	progress.log("M*(k): dedup %d nodes / %d edges, logical %d / %d",
		sz.Nodes, sz.Edges, sz.LogicalNodes, sz.LogicalEdges)
	return MStarAccountingRow{
		Nodes: sz.Nodes, Edges: sz.Edges,
		LogicalNodes: sz.LogicalNodes, LogicalEdges: sz.LogicalEdges,
		CrossLinks: sz.CrossLinks, Components: sz.Components,
	}
}

// WriteStrategyTable renders the strategy ablation.
func WriteStrategyTable(w io.Writer, rows []StrategyRow) {
	fmt.Fprintf(w, "%-10s %12s %12s %12s\n", "strategy", "avg cost", "idx part", "valid part")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12.1f %12.1f %12.1f\n", r.Strategy, r.AvgCost, r.AvgIndex, r.AvgData)
	}
}

// WriteLiteralTable renders the literal-mode ablation.
func WriteLiteralTable(w io.Writer, rows []LiteralRow) {
	fmt.Fprintf(w, "%-18s %10s %10s %12s %12s\n", "variant", "nodes", "edges", "avg cost", "P1 violated")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %10d %10d %12.1f %12v\n", r.Variant, r.Nodes, r.Edges, r.AvgCost, r.P1Violated)
	}
}

// APEXRow compares the APEX-like FUP cache with the M*(k)-index on the
// supported workload and on an unseen workload of the same distribution.
type APEXRow struct {
	Index       string
	Nodes       int
	AvgSeen     float64 // avg cost on the workload used as FUPs
	AvgUnseen   float64 // avg cost on a fresh workload (different seed)
	UnseenValid float64 // validation portion of the unseen cost
}

// RunAPEXAblation quantifies §2's characterization of APEX as a cache of
// answers: perfect on exact FUP hits, unable to generalize to unseen path
// expressions, versus the structural generalization of the M*(k)-index.
func RunAPEXAblation(ds Dataset, seen, unseen []*pathexpr.Expr, progress Progress) []APEXRow {
	var rows []APEXRow

	ax := baseline.NewAPEX(ds.Graph)
	for _, q := range seen {
		ax.Support(q)
	}
	row := APEXRow{Index: "APEX-like cache", Nodes: ax.Summary().NumNodes() + ax.CachedFUPs()}
	row.AvgSeen, _, _ = averageCost(seen, func(q *pathexpr.Expr) query.Cost { return ax.Query(q).Cost })
	var unseenValid float64
	row.AvgUnseen, _, unseenValid = averageCost(unseen, func(q *pathexpr.Expr) query.Cost { return ax.Query(q).Cost })
	row.UnseenValid = unseenValid
	rows = append(rows, row)
	progress.log("APEX-like: seen %.1f, unseen %.1f", row.AvgSeen, row.AvgUnseen)

	ms := core.NewMStar(ds.Graph)
	for _, q := range seen {
		ms.Support(q)
	}
	row = APEXRow{Index: "M*(k)", Nodes: ms.Sizes().Nodes}
	row.AvgSeen, _, _ = averageCost(seen, func(q *pathexpr.Expr) query.Cost { return ms.QueryTopDown(q).Cost })
	row.AvgUnseen, _, row.UnseenValid = averageCost(unseen, func(q *pathexpr.Expr) query.Cost { return ms.QueryTopDown(q).Cost })
	rows = append(rows, row)
	progress.log("M*(k): seen %.1f, unseen %.1f", row.AvgSeen, row.AvgUnseen)
	return rows
}

// WriteAPEXTable renders the APEX ablation.
func WriteAPEXTable(w io.Writer, rows []APEXRow) {
	fmt.Fprintf(w, "%-18s %10s %12s %14s %14s\n", "index", "nodes", "seen cost", "unseen cost", "unseen valid")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %10d %12.1f %14.1f %14.1f\n", r.Index, r.Nodes, r.AvgSeen, r.AvgUnseen, r.UnseenValid)
	}
}
