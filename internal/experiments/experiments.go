// Package experiments reproduces the evaluation of He & Yang (ICDE 2004),
// §5: every figure is backed by a runner here, exposed through cmd/mrbench
// and the repository-level benchmarks.
//
// The cost metric is the paper's: per query, the number of index nodes
// visited during index-graph traversal plus the number of data nodes visited
// during validation. For the adaptive indexes (D(k)-promote, M(k), M*(k))
// the workload is replayed after all FUPs have been supported, so the rerun
// incurs no validation; the A(k) family generally does.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"mrx/internal/baseline"
	"mrx/internal/core"
	"mrx/internal/datagen"
	"mrx/internal/graph"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
	"mrx/internal/workload"
)

// Dataset is a named data graph.
type Dataset struct {
	Name  string
	Graph *graph.Graph
}

// corpusDocs is the document count of the "corpus" dataset: enough weak
// components for an 8-shard partition to stay meaningful, few enough that
// each document keeps realistic structure at small scales.
const corpusDocs = 12

// LoadDataset builds one of the paper's datasets ("xmark" or "nasa") — or
// the multi-document "corpus" used by the sharding experiments — at the
// given scale (1.0 reproduces the paper's ~120k/~90k node documents).
func LoadDataset(name string, scale float64, seed int64) (Dataset, error) {
	switch name {
	case "xmark":
		return Dataset{Name: "xmark", Graph: datagen.XMarkGraph(scale, seed)}, nil
	case "nasa":
		return Dataset{Name: "nasa", Graph: datagen.NASAGraph(scale, seed)}, nil
	case "corpus":
		g, err := datagen.CorpusGraph(scale, seed, corpusDocs)
		if err != nil {
			return Dataset{}, fmt.Errorf("experiments: corpus: %w", err)
		}
		return Dataset{Name: "corpus", Graph: g}, nil
	default:
		return Dataset{}, fmt.Errorf("experiments: unknown dataset %q (want xmark, nasa or corpus)", name)
	}
}

// CostRow is one point of the cost-versus-size figures (10-13, 18-22).
type CostRow struct {
	Index      string
	Nodes      int
	Edges      int
	AvgCost    float64
	AvgIndex   float64 // index-node portion of the cost
	AvgData    float64 // validation portion of the cost
	BuildTime  time.Duration
	RefineTime time.Duration
}

// CostVsSizeResult gathers all series of one cost-versus-size experiment.
type CostVsSizeResult struct {
	Dataset     string
	MaxQueryLen int
	NumQueries  int
	Rows        []CostRow
}

// Progress receives human-readable progress lines; it may be nil.
type Progress func(format string, args ...any)

func (p Progress) log(format string, args ...any) {
	if p != nil {
		p(format, args...)
	}
}

// RunCostVsSize reproduces Figures 10-13 (maxA = 7) and 18-22 (maxA = 4):
// for each index, its final size and the average workload query cost.
func RunCostVsSize(ds Dataset, queries []*pathexpr.Expr, maxA int, progress Progress) CostVsSizeResult {
	res := CostVsSizeResult{Dataset: ds.Name, NumQueries: len(queries)}
	for _, q := range queries {
		if q.Length() > res.MaxQueryLen {
			res.MaxQueryLen = q.Length()
		}
	}

	// A(k) family.
	for k := 0; k <= maxA; k++ {
		start := time.Now()
		ig := baseline.AK(ds.Graph, k)
		build := time.Since(start)
		row := CostRow{Index: fmt.Sprintf("A(%d)", k), Nodes: ig.NumNodes(), Edges: ig.NumEdges(), BuildTime: build}
		row.AvgCost, row.AvgIndex, row.AvgData = averageCost(queries, func(q *pathexpr.Expr) query.Cost {
			return query.EvalIndex(ig, q).Cost
		})
		res.Rows = append(res.Rows, row)
		progress.log("%s: %d nodes, %d edges, avg cost %.1f", row.Index, row.Nodes, row.Edges, row.AvgCost)
	}

	// D(k)-construct.
	{
		start := time.Now()
		ig, err := baseline.DKConstruct(ds.Graph, queries)
		if err != nil {
			//mrlint:allow nopanic workload queries are wildcard-free by construction
			panic(err)
		}
		row := CostRow{Index: "D(k)-construct", Nodes: ig.NumNodes(), Edges: ig.NumEdges(), BuildTime: time.Since(start)}
		row.AvgCost, row.AvgIndex, row.AvgData = averageCost(queries, func(q *pathexpr.Expr) query.Cost {
			return query.EvalIndex(ig, q).Cost
		})
		res.Rows = append(res.Rows, row)
		progress.log("%s: %d nodes, %d edges, avg cost %.1f", row.Index, row.Nodes, row.Edges, row.AvgCost)
	}

	// D(k)-promote.
	{
		dk := baseline.NewDKPromote(ds.Graph)
		start := time.Now()
		for _, q := range queries {
			dk.Support(q)
		}
		row := CostRow{Index: "D(k)-promote", Nodes: dk.Index().NumNodes(), Edges: dk.Index().NumEdges(), RefineTime: time.Since(start)}
		row.AvgCost, row.AvgIndex, row.AvgData = averageCost(queries, func(q *pathexpr.Expr) query.Cost {
			return query.EvalIndex(dk.Index(), q).Cost
		})
		res.Rows = append(res.Rows, row)
		progress.log("%s: %d nodes, %d edges, avg cost %.1f", row.Index, row.Nodes, row.Edges, row.AvgCost)
	}

	// M(k).
	{
		mk := core.NewMK(ds.Graph)
		start := time.Now()
		for _, q := range queries {
			mk.Support(q)
		}
		row := CostRow{Index: "M(k)", Nodes: mk.Index().NumNodes(), Edges: mk.Index().NumEdges(), RefineTime: time.Since(start)}
		row.AvgCost, row.AvgIndex, row.AvgData = averageCost(queries, func(q *pathexpr.Expr) query.Cost {
			return mk.Query(q).Cost
		})
		res.Rows = append(res.Rows, row)
		progress.log("%s: %d nodes, %d edges, avg cost %.1f", row.Index, row.Nodes, row.Edges, row.AvgCost)
	}

	// M*(k), queried top-down.
	{
		ms := core.NewMStar(ds.Graph)
		start := time.Now()
		for _, q := range queries {
			ms.Support(q)
		}
		sz := ms.Sizes()
		row := CostRow{Index: "M*(k)", Nodes: sz.Nodes, Edges: sz.Edges, RefineTime: time.Since(start)}
		row.AvgCost, row.AvgIndex, row.AvgData = averageCost(queries, func(q *pathexpr.Expr) query.Cost {
			return ms.QueryTopDown(q).Cost
		})
		res.Rows = append(res.Rows, row)
		progress.log("%s: %d nodes, %d edges, avg cost %.1f", row.Index, row.Nodes, row.Edges, row.AvgCost)
	}
	return res
}

// averageCost replays the workload and averages the paper's cost metric.
// Queries are evaluated concurrently: evaluation is read-only on both the
// index and the data graph, and costs are accumulated per slot so the
// result is deterministic.
func averageCost(queries []*pathexpr.Expr, eval func(*pathexpr.Expr) query.Cost) (avg, avgIdx, avgData float64) {
	costs := make([]query.Cost, len(queries))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				costs[i] = eval(queries[i])
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()

	var total query.Cost
	for _, c := range costs {
		total.Add(c)
	}
	n := float64(len(queries))
	return float64(total.Total()) / n, float64(total.IndexNodes) / n, float64(total.DataNodes) / n
}

// SizePoint is one measurement of the growth figures (14-17, 23-26).
type SizePoint struct {
	Queries int
	Nodes   int
	Edges   int
}

// GrowthResult holds the size-growth series for the incrementally refined
// indexes.
type GrowthResult struct {
	Dataset string
	Step    int
	Series  map[string][]SizePoint // keys: "D(k)-promote", "M(k)", "M*(k)"
}

// RunGrowth reproduces Figures 14-17 and 23-26: refine the three adaptive
// indexes query by query, sampling sizes every step queries.
func RunGrowth(ds Dataset, queries []*pathexpr.Expr, step int, progress Progress) GrowthResult {
	res := GrowthResult{Dataset: ds.Name, Step: step, Series: map[string][]SizePoint{}}
	dk := baseline.NewDKPromote(ds.Graph)
	mk := core.NewMK(ds.Graph)
	ms := core.NewMStar(ds.Graph)
	record := func(n int) {
		res.Series["D(k)-promote"] = append(res.Series["D(k)-promote"],
			SizePoint{n, dk.Index().NumNodes(), dk.Index().NumEdges()})
		res.Series["M(k)"] = append(res.Series["M(k)"],
			SizePoint{n, mk.Index().NumNodes(), mk.Index().NumEdges()})
		sz := ms.Sizes()
		res.Series["M*(k)"] = append(res.Series["M*(k)"], SizePoint{n, sz.Nodes, sz.Edges})
	}
	record(0)
	for i, q := range queries {
		dk.Support(q)
		mk.Support(q)
		ms.Support(q)
		if (i+1)%step == 0 || i == len(queries)-1 {
			record(i + 1)
			progress.log("after %d queries: D(k)-promote %d, M(k) %d, M*(k) %d nodes",
				i+1, dk.Index().NumNodes(), mk.Index().NumNodes(), ms.Sizes().Nodes)
		}
	}
	return res
}

// NewWorkload generates the paper's workload for a dataset: 500 queries over
// label paths of length up to 9, with query length capped at maxQueryLen
// (9 for the primary experiments, 4 for the second set).
func NewWorkload(ds Dataset, numQueries, maxQueryLen int, seed int64) []*pathexpr.Expr {
	return workload.Generate(ds.Graph, workload.Options{
		NumQueries:  numQueries,
		MaxPathLen:  9,
		MaxQueryLen: maxQueryLen,
		Seed:        seed,
	})
}

// WriteCostTable renders a cost-versus-size result as an aligned text table.
func WriteCostTable(w io.Writer, res CostVsSizeResult) {
	fmt.Fprintf(w, "dataset=%s queries=%d maxQueryLen=%d\n", res.Dataset, res.NumQueries, res.MaxQueryLen)
	fmt.Fprintf(w, "%-16s %10s %10s %12s %12s %12s\n", "index", "nodes", "edges", "avg cost", "idx part", "valid part")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-16s %10d %10d %12.1f %12.1f %12.1f\n",
			r.Index, r.Nodes, r.Edges, r.AvgCost, r.AvgIndex, r.AvgData)
	}
}

// WriteGrowthTable renders a growth result as an aligned text table.
func WriteGrowthTable(w io.Writer, res GrowthResult) {
	fmt.Fprintf(w, "dataset=%s step=%d\n", res.Dataset, res.Step)
	fmt.Fprintf(w, "%-8s", "queries")
	order := []string{"D(k)-promote", "M(k)", "M*(k)"}
	for _, s := range order {
		fmt.Fprintf(w, " %14s-nodes %14s-edges", s, s)
	}
	fmt.Fprintln(w)
	if len(res.Series[order[0]]) == 0 {
		return
	}
	for i := range res.Series[order[0]] {
		fmt.Fprintf(w, "%-8d", res.Series[order[0]][i].Queries)
		for _, s := range order {
			p := res.Series[s][i]
			fmt.Fprintf(w, " %20d %20d", p.Nodes, p.Edges)
		}
		fmt.Fprintln(w)
	}
}
