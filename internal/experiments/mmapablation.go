package experiments

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"mrx/internal/core"
	"mrx/internal/mmapstore"
	"mrx/internal/pathexpr"
	"mrx/internal/store"
)

// MmapRow is one point of the disk-resident-serving ablation: the same
// refined index at one dataset scale, resurrected from bytes three ways and
// then served from heap and from the mapping.
type MmapRow struct {
	Scale      float64
	Nodes      int
	Components int
	Bytes      int64         // published snapshot size
	Publish    time.Duration // encode + fsync + atomic rename
	HeapLoad   time.Duration // store.ReadMStar + Freeze (heap cold start)
	OpenVerify time.Duration // mmapstore.Open, full checksums + deep verify
	OpenTrust  time.Duration // mmapstore.Open, Trusted (O(components))
	HeapQPS    float64       // workload replay on the heap frozen view
	MappedQPS  float64       // workload replay on the mapped view
}

// MmapAblationResult gathers the per-scale rows.
type MmapAblationResult struct {
	Rows []MmapRow
}

// RunMmapAblation measures what the memory-mapped snapshot format buys at
// each scale: cold-start latency (the heap deserialize-everything path
// versus a verified open versus a trusted open, whose cost must stay flat
// as the index grows) and serving throughput (the mapped view must keep
// pace with heap — the read path is the same aliased arrays either way).
// Scales should span at least an order of magnitude so the flat trusted
// column is visible against the growing heap column.
func RunMmapAblation(dataset string, scales []float64, cfg Config, maxQueryLen, passes int, progress Progress) (MmapAblationResult, error) {
	if passes <= 0 {
		passes = 1
	}
	dir, err := os.MkdirTemp("", "mrx-mmap-ablation-*")
	if err != nil {
		return MmapAblationResult{}, err
	}
	defer os.RemoveAll(dir)

	var res MmapAblationResult
	for i, scale := range scales {
		ds, err := LoadDataset(dataset, scale, cfg.Seed)
		if err != nil {
			return res, fmt.Errorf("mmap ablation: %w", err)
		}
		queries := NewWorkload(ds, cfg.NumQueries, maxQueryLen, cfg.Seed)
		ms := core.NewMStar(ds.Graph)
		for _, q := range queries {
			if !q.HasWildcard() && q.RequiredK() != pathexpr.Unbounded {
				ms.Support(q)
			}
		}
		fm := ms.Freeze()

		path := filepath.Join(dir, fmt.Sprintf("scale-%d.mrx", i))
		pubStart := time.Now()
		if err := mmapstore.Publish(path, fm, mmapstore.WriteOptions{}); err != nil {
			return res, fmt.Errorf("mmap ablation: publish: %w", err)
		}
		publish := time.Since(pubStart)
		fi, err := os.Stat(path)
		if err != nil {
			return res, err
		}

		var heapEnc bytes.Buffer
		if err := store.WriteMStar(&heapEnc, ms); err != nil {
			return res, fmt.Errorf("mmap ablation: heap encode: %w", err)
		}
		heapLoad, err := timeReps(3, func() error {
			ms, err := store.ReadMStar(bytes.NewReader(heapEnc.Bytes()), ds.Graph)
			if err == nil {
				_ = ms.Freeze()
			}
			return err
		})
		if err != nil {
			return res, fmt.Errorf("mmap ablation: heap load: %w", err)
		}
		openVerify, err := timeReps(3, func() error {
			snap, err := mmapstore.Open(path, ds.Graph, mmapstore.Options{})
			if err == nil {
				snap.Close()
			}
			return err
		})
		if err != nil {
			return res, fmt.Errorf("mmap ablation: verified open: %w", err)
		}
		openTrust, err := timeReps(16, func() error {
			snap, err := mmapstore.Open(path, ds.Graph, mmapstore.Options{Trusted: true})
			if err == nil {
				snap.Close()
			}
			return err
		})
		if err != nil {
			return res, fmt.Errorf("mmap ablation: trusted open: %w", err)
		}

		// Serve the workload from a held-open trusted mapping and from the
		// heap view it was encoded from; same queries, same order.
		snap, err := mmapstore.Open(path, ds.Graph, mmapstore.Options{Trusted: true})
		if err != nil {
			return res, fmt.Errorf("mmap ablation: serving open: %w", err)
		}
		heapQPS := replayQPS(fm, queries, passes)
		mappedQPS := replayQPS(snap.FrozenMStar(), queries, passes)
		snap.Close()

		row := MmapRow{
			Scale:      scale,
			Nodes:      ds.Graph.NumNodes(),
			Components: fm.NumComponents(),
			Bytes:      fi.Size(),
			Publish:    publish,
			HeapLoad:   heapLoad,
			OpenVerify: openVerify,
			OpenTrust:  openTrust,
			HeapQPS:    heapQPS,
			MappedQPS:  mappedQPS,
		}
		res.Rows = append(res.Rows, row)
		progress.log("scale %g: %d nodes, %d components, %d bytes; publish %v, heap load %v, open verified %v, trusted %v; serve heap %.0f q/s, mapped %.0f q/s",
			scale, row.Nodes, row.Components, row.Bytes, publish.Round(time.Microsecond),
			heapLoad.Round(time.Microsecond), openVerify.Round(time.Microsecond),
			openTrust.Round(time.Microsecond), heapQPS, mappedQPS)
	}
	return res, nil
}

// timeReps runs fn reps times and returns the mean wall-clock per call —
// cheap opens need averaging to rise above timer noise.
func timeReps(reps int, fn func() error) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < reps; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(reps), nil
}

// replayQPS replays the workload passes times through one frozen view,
// single-threaded, and returns queries per second.
func replayQPS(fm *core.FrozenMStar, queries []*pathexpr.Expr, passes int) float64 {
	start := time.Now()
	n := 0
	for p := 0; p < passes; p++ {
		for _, q := range queries {
			_ = fm.Query(q)
			n++
		}
	}
	if s := time.Since(start).Seconds(); s > 0 {
		return float64(n) / s
	}
	return 0
}

// WriteMmapTable renders the disk-resident-serving ablation. The column to
// read first is open-trust: it should stay flat while heap-load grows with
// the rows. The last column is mapped serving throughput relative to heap;
// ~1.0 means disk residency costs nothing on the read path.
func WriteMmapTable(w io.Writer, res MmapAblationResult) {
	fmt.Fprintf(w, "%-8s %9s %6s %10s %10s %11s %12s %11s %10s %10s %7s\n",
		"scale", "nodes", "comps", "bytes", "publish", "heap-load", "open-verify", "open-trust",
		"heap q/s", "mapped q/s", "ratio")
	for _, r := range res.Rows {
		ratio := 0.0
		if r.HeapQPS > 0 {
			ratio = r.MappedQPS / r.HeapQPS
		}
		fmt.Fprintf(w, "%-8.3g %9d %6d %10d %10s %11s %12s %11s %10.0f %10.0f %7.2f\n",
			r.Scale, r.Nodes, r.Components, r.Bytes,
			r.Publish.Round(time.Microsecond), r.HeapLoad.Round(time.Microsecond),
			r.OpenVerify.Round(time.Microsecond), r.OpenTrust.Round(time.Microsecond),
			r.HeapQPS, r.MappedQPS, ratio)
	}
}
