package index

import (
	"reflect"
	"strings"
	"testing"

	"mrx/internal/graph"
	"mrx/internal/gtest"
	"mrx/internal/partition"
)

func TestCloneIndependentEvolution(t *testing.T) {
	g := gtest.Random(2, 100, 4, 0.2)
	orig := FromPartition(g, partition.ByLabel(g), func(partition.BlockID) int { return 0 })
	clone := orig.Clone()
	if err := clone.Validate(true); err != nil {
		t.Fatal(err)
	}
	if clone.NumNodes() != orig.NumNodes() || clone.NumEdges() != orig.NumEdges() {
		t.Fatal("clone sizes differ")
	}

	// Split a node in the clone; the original must be untouched.
	var big *Node
	clone.ForEachNode(func(n *Node) {
		if big == nil || n.Size() > big.Size() {
			big = n
		}
	})
	ext := big.Extent()
	clone.Split(big, [][]graph.NodeID{append([]graph.NodeID(nil), ext[:1]...), append([]graph.NodeID(nil), ext[1:]...)}, []int{0, 0})
	if err := clone.Validate(true); err != nil {
		t.Fatal(err)
	}
	if err := orig.Validate(true); err != nil {
		t.Fatalf("original corrupted by clone split: %v", err)
	}
	if clone.NumNodes() != orig.NumNodes()+1 {
		t.Fatalf("clone=%d orig=%d", clone.NumNodes(), orig.NumNodes())
	}
	// And vice versa: split in the original does not touch the clone.
	var big2 *Node
	orig.ForEachNode(func(n *Node) {
		if n.Size() >= 2 && (big2 == nil || n.Size() > big2.Size()) {
			big2 = n
		}
	})
	ext2 := big2.Extent()
	nClone := clone.NumNodes()
	orig.Split(big2, [][]graph.NodeID{append([]graph.NodeID(nil), ext2[:1]...), append([]graph.NodeID(nil), ext2[1:]...)}, []int{0, 0})
	if clone.NumNodes() != nClone {
		t.Fatal("original split leaked into clone")
	}
}

func TestFromExtentsRoundTrip(t *testing.T) {
	g := gtest.Random(8, 120, 4, 0.25)
	p := partition.KBisim(g, 2)
	orig := FromPartition(g, p, func(partition.BlockID) int { return 2 })
	var extents [][]graph.NodeID
	var ks []int
	orig.ForEachNode(func(n *Node) {
		extents = append(extents, n.Extent())
		ks = append(ks, n.K())
	})
	got, err := FromExtents(g, extents, ks)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(true); err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != orig.NumNodes() || got.NumEdges() != orig.NumEdges() {
		t.Fatal("sizes differ after extent round trip")
	}
	// Per-data-node membership is preserved.
	for v := 0; v < g.NumNodes(); v++ {
		a := orig.NodeOf(graph.NodeID(v)).Extent()
		b := got.NodeOf(graph.NodeID(v)).Extent()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("node %d in different extents: %v vs %v", v, a, b)
		}
	}
}

func TestFromExtentsErrors(t *testing.T) {
	g := graph.PaperFigure4() // labels r a b b c c
	cases := []struct {
		name    string
		extents [][]graph.NodeID
		ks      []int
	}{
		{"length mismatch", [][]graph.NodeID{{0}}, []int{0, 0}},
		{"empty extent", [][]graph.NodeID{{0}, {}, {1}, {2, 3}, {4, 5}}, []int{0, 0, 0, 0, 0}},
		{"negative k", [][]graph.NodeID{{0}, {1}, {2, 3}, {4, 5}}, []int{0, -1, 0, 0}},
		{"duplicate member", [][]graph.NodeID{{0}, {1}, {2, 3, 3}, {4, 5}}, []int{0, 0, 0, 0}},
		{"overlap", [][]graph.NodeID{{0}, {1}, {2, 3}, {3, 4, 5}}, []int{0, 0, 0, 0}},
		{"missing member", [][]graph.NodeID{{0}, {1}, {2, 3}, {4}}, []int{0, 0, 0, 0}},
		{"mixed labels", [][]graph.NodeID{{0}, {1, 2}, {3}, {4, 5}}, []int{0, 0, 0, 0}},
		{"out of range", [][]graph.NodeID{{0}, {1}, {2, 3}, {4, 99}}, []int{0, 0, 0, 0}},
	}
	for _, c := range cases {
		if _, err := FromExtents(g, c.extents, c.ks); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
	// The valid partition works.
	if _, err := FromExtents(g, [][]graph.NodeID{{0}, {1}, {2, 3}, {4, 5}}, []int{0, 0, 0, 0}); err != nil {
		t.Errorf("valid extents rejected: %v", err)
	}
}

func TestIndexWriteDOT(t *testing.T) {
	g := graph.PaperFigure3()
	ig := FromPartition(g, partition.ByLabel(g), func(partition.BlockID) int { return 0 })
	var buf strings.Builder
	if err := ig.WriteDOT(&buf, "", 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph \"index\"", "k=0", "[6 nodes]", "->", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}
