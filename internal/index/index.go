// Package index provides the mutable structural index graph shared by the
// A(k)-, D(k)-, M(k)- and M*(k)-indexes.
//
// An index graph I(G) for a data graph G is a labeled directed graph whose
// nodes carry an extent (a set of data nodes) and a local similarity value k.
// The three basic properties (He & Yang §3) are:
//
//	P1: all data nodes in v.extent are v.k-bisimilar in G;
//	P2: (u, v) is an index edge iff some data edge connects their extents;
//	P3: for every parent u of v, u.k ≥ v.k − 1.
//
// The package maintains P2 incrementally under node splitting, which is the
// single mutation primitive all refinement algorithms use. Validate checks
// all three properties (P1 against a freshly computed k-bisimulation), which
// the test suites use as a property-based oracle.
package index

import (
	"fmt"
	"sort"

	"mrx/internal/graph"
	"mrx/internal/partition"
)

// NodeID identifies an index node within one Graph. IDs are never reused;
// splitting a node retires its ID and allocates fresh ones.
type NodeID int32

// Node is one index node: an equivalence class of data nodes.
type Node struct {
	id     NodeID
	label  graph.LabelID
	k      int
	extent []graph.NodeID // sorted
	dead   bool

	parents  map[NodeID]struct{}
	children map[NodeID]struct{}
}

// ID returns the node's identifier.
func (n *Node) ID() NodeID { return n.id }

// Label returns the shared label of the node's extent.
func (n *Node) Label() graph.LabelID { return n.label }

// K returns the node's local similarity value.
func (n *Node) K() int { return n.k }

// Extent returns the node's extent, sorted ascending. The slice aliases
// internal storage and must not be modified.
func (n *Node) Extent() []graph.NodeID { return n.extent }

// Size returns the extent size.
func (n *Node) Size() int { return len(n.extent) }

// Dead reports whether the node has been retired by a split.
func (n *Node) Dead() bool { return n.dead }

// Graph is a mutable structural index over a fixed data graph.
type Graph struct {
	data   *graph.Graph
	nodes  []*Node // indexed by NodeID; dead entries remain for ID stability
	nodeOf []NodeID
	// byLabel maps a label to the set of live index nodes carrying it.
	byLabel map[graph.LabelID]map[NodeID]struct{}

	liveNodes int
	liveEdges int

	// version counts observable mutations (splits and local-similarity
	// changes). Clone preserves it, so a clone whose version still equals
	// its origin's is structurally identical to it — the engine uses this
	// to detect no-op refinements and to re-freeze only dirtied components.
	version uint64
}

// Version returns the graph's mutation counter. Two graphs with a common
// clone ancestry and equal versions are structurally identical.
func (ig *Graph) Version() uint64 { return ig.version }

// FromPartition builds an index graph whose nodes are the blocks of p.
// kOf assigns the local similarity of each block; pass a constant function
// for A(k)-style indexes.
func FromPartition(data *graph.Graph, p *partition.Partition, kOf func(partition.BlockID) int) *Graph {
	ig := &Graph{
		data:    data,
		nodeOf:  make([]NodeID, data.NumNodes()),
		byLabel: make(map[graph.LabelID]map[NodeID]struct{}),
	}
	for b, extent := range p.Blocks() {
		ig.attachNode(data.Label(extent[0]), kOf(partition.BlockID(b)), extent)
	}
	ig.wireFromData()
	return ig
}

// attachNode allocates the next live node (ID = len(nodes)), registers it in
// the label bucket and the data-node mapping, and bumps the live counter.
// The extent must be sorted; construction and Split share this path.
func (ig *Graph) attachNode(label graph.LabelID, k int, extent []graph.NodeID) *Node {
	n := &Node{
		id:       NodeID(len(ig.nodes)),
		label:    label,
		k:        k,
		extent:   extent,
		parents:  make(map[NodeID]struct{}),
		children: make(map[NodeID]struct{}),
	}
	ig.nodes = append(ig.nodes, n)
	ig.addToLabelBucket(n)
	for _, o := range extent {
		ig.nodeOf[o] = n.id
	}
	ig.liveNodes++
	return n
}

// wireFromData rebuilds the index edge set from the data graph per P2.
// nodeOf must already map every data node to its live index node.
func (ig *Graph) wireFromData() {
	for v := 0; v < ig.data.NumNodes(); v++ {
		from := ig.nodeOf[v]
		for _, c := range ig.data.Children(graph.NodeID(v)) {
			ig.addEdge(from, ig.nodeOf[c])
		}
	}
}

// Data returns the underlying data graph.
func (ig *Graph) Data() *graph.Graph { return ig.data }

// NumNodes returns the number of live index nodes.
func (ig *Graph) NumNodes() int { return ig.liveNodes }

// NumEdges returns the number of live index edges.
func (ig *Graph) NumEdges() int { return ig.liveEdges }

// Node returns the node with the given ID (which may be dead).
func (ig *Graph) Node(id NodeID) *Node { return ig.nodes[id] }

// NodeOf returns the live index node whose extent contains data node o.
func (ig *Graph) NodeOf(o graph.NodeID) *Node { return ig.nodes[ig.nodeOf[o]] }

// Root returns the index node containing the data-graph root.
func (ig *Graph) Root() *Node { return ig.NodeOf(ig.data.Root()) }

// NodesWithLabel returns the live index nodes carrying label l, in ID order.
func (ig *Graph) NodesWithLabel(l graph.LabelID) []*Node {
	bucket := ig.byLabel[l]
	ids := make([]NodeID, 0, len(bucket))
	for id := range bucket {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*Node, len(ids))
	for i, id := range ids {
		out[i] = ig.nodes[id]
	}
	return out
}

// ForEachNode calls f for every live index node in ID order.
func (ig *Graph) ForEachNode(f func(*Node)) {
	for _, n := range ig.nodes {
		if n != nil && !n.dead {
			f(n)
		}
	}
}

// Parents returns the live parent nodes of n in ID order.
func (ig *Graph) Parents(n *Node) []*Node { return ig.resolve(n.parents) }

// Children returns the live child nodes of n in ID order.
func (ig *Graph) Children(n *Node) []*Node { return ig.resolve(n.children) }

func (ig *Graph) resolve(set map[NodeID]struct{}) []*Node {
	ids := make([]NodeID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*Node, len(ids))
	for i, id := range ids {
		out[i] = ig.nodes[id]
	}
	return out
}

// HasEdge reports whether the index edge (u, v) exists.
func (ig *Graph) HasEdge(u, v *Node) bool {
	_, ok := u.children[v.id]
	return ok
}

// SetK sets the local similarity of n.
func (ig *Graph) SetK(n *Node, k int) {
	if n.k != k {
		n.k = k
		ig.version++
	}
}

func (ig *Graph) addToLabelBucket(n *Node) {
	bucket := ig.byLabel[n.label]
	if bucket == nil {
		bucket = make(map[NodeID]struct{})
		ig.byLabel[n.label] = bucket
	}
	bucket[n.id] = struct{}{}
}

func (ig *Graph) addEdge(from, to NodeID) {
	f := ig.nodes[from]
	if _, ok := f.children[to]; ok {
		return
	}
	f.children[to] = struct{}{}
	ig.nodes[to].parents[from] = struct{}{}
	ig.liveEdges++
}

// Split replaces node w with the given extent pieces, which must be a
// disjoint cover of w's extent (empty pieces are dropped). ks gives the new
// local similarity per piece. Adjacency of the pieces and their neighbors is
// rebuilt from the data graph, preserving P2. It returns the new nodes, in
// piece order. As a convenience, splitting into a single piece keeps the
// node and only updates its k.
func (ig *Graph) Split(w *Node, pieces [][]graph.NodeID, ks []int) []*Node {
	if w.dead {
		//mrlint:allow nopanic caller bug, not a data condition: P1-P3 invariant
		panic("index: split of dead node")
	}
	if len(pieces) != len(ks) {
		//mrlint:allow nopanic caller bug, not a data condition: P1-P3 invariant
		panic("index: pieces/ks length mismatch")
	}
	// Drop empty pieces.
	outPieces := pieces[:0]
	outKs := ks[:0]
	total := 0
	for i, p := range pieces {
		if len(p) == 0 {
			continue
		}
		total += len(p)
		outPieces = append(outPieces, p)
		outKs = append(outKs, ks[i])
	}
	pieces, ks = outPieces, outKs
	if total != len(w.extent) {
		//mrlint:allow nopanic partition-cover invariant P1: pieces must tile the extent
		panic(fmt.Sprintf("index: pieces cover %d of %d extent nodes", total, len(w.extent)))
	}
	if len(pieces) == 1 {
		if w.k != ks[0] {
			w.k = ks[0]
			ig.version++
		}
		return []*Node{w}
	}
	ig.version++

	// Detach w from its neighbors.
	for pid := range w.parents {
		if pid == w.id {
			continue
		}
		delete(ig.nodes[pid].children, w.id)
	}
	for cid := range w.children {
		if cid == w.id {
			continue
		}
		delete(ig.nodes[cid].parents, w.id)
	}
	removed := len(w.parents) + len(w.children)
	if _, self := w.children[w.id]; self {
		removed--
	}
	ig.liveEdges -= removed
	w.dead = true
	delete(ig.byLabel[w.label], w.id)
	ig.liveNodes--

	// Allocate pieces and reassign the data-node mapping first, so that
	// adjacency reconstruction sees the final mapping.
	newNodes := make([]*Node, len(pieces))
	for i, extent := range pieces {
		sort.Slice(extent, func(a, b int) bool { return extent[a] < extent[b] })
		for _, o := range extent {
			if ig.nodeOf[o] != w.id {
				//mrlint:allow nopanic extent-membership invariant P1; a wrong piece corrupts nodeOf
				panic(fmt.Sprintf("index: piece member %d not in extent of %d (or duplicated)", o, w.id))
			}
		}
		newNodes[i] = ig.attachNode(w.label, ks[i], extent)
	}
	// Rebuild adjacency touching the pieces (both directions).
	for _, n := range newNodes {
		for _, o := range n.extent {
			for _, dp := range ig.data.Parents(o) {
				ig.addEdge(ig.nodeOf[dp], n.id)
			}
			for _, dc := range ig.data.Children(o) {
				ig.addEdge(n.id, ig.nodeOf[dc])
			}
		}
	}
	return newNodes
}

// CountLabel returns the number of live index nodes carrying label l,
// without materializing them; query planners use it as a cardinality
// estimate.
func (ig *Graph) CountLabel(l graph.LabelID) int { return len(ig.byLabel[l]) }
