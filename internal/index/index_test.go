package index

import (
	"math/rand"
	"testing"

	"mrx/internal/graph"
	"mrx/internal/gtest"
	"mrx/internal/partition"
)

func a0(g *graph.Graph) *Graph {
	return FromPartition(g, partition.ByLabel(g), func(partition.BlockID) int { return 0 })
}

func TestFromPartition(t *testing.T) {
	g := graph.PaperFigure1()
	ig := a0(g)
	if err := ig.Validate(true); err != nil {
		t.Fatal(err)
	}
	if ig.NumNodes() != g.NumLabels() {
		t.Fatalf("nodes=%d labels=%d", ig.NumNodes(), g.NumLabels())
	}
	person, _ := g.LabelIDOf("person")
	pn := ig.NodesWithLabel(person)
	if len(pn) != 1 || pn[0].Size() != 3 {
		t.Fatalf("person bucket %v", pn)
	}
	if ig.Root().Size() != 1 || ig.Root().Extent()[0] != 0 {
		t.Fatal("root node wrong")
	}
	// bidder -> person reference edges must appear as index edges.
	bidder, _ := g.LabelIDOf("bidder")
	bn := ig.NodesWithLabel(bidder)[0]
	if !ig.HasEdge(bn, pn[0]) {
		t.Error("bidder->person edge missing")
	}
}

func TestFromKPartition(t *testing.T) {
	g := graph.PaperFigure1()
	p := partition.KBisim(g, 2)
	ig := FromPartition(g, p, func(partition.BlockID) int { return 2 })
	if err := ig.Validate(true); err != nil {
		t.Fatal(err)
	}
	if ig.NumNodes() != p.NumBlocks() {
		t.Fatal("node count mismatch")
	}
}

func TestSplitBasics(t *testing.T) {
	g := graph.PaperFigure3() // r; a,c,d; six b's
	ig := a0(g)
	bLabel, _ := g.LabelIDOf("b")
	bNode := ig.NodesWithLabel(bLabel)[0]
	if bNode.Size() != 6 {
		t.Fatalf("b extent %v", bNode.Extent())
	}
	// Split b's by parent: {4} under a, {5,6} under c, {7,8,9} under d.
	pieces := [][]graph.NodeID{{4}, {5, 6}, {7, 8, 9}}
	newNodes := ig.Split(bNode, pieces, []int{1, 1, 1})
	if len(newNodes) != 3 {
		t.Fatalf("got %d pieces", len(newNodes))
	}
	if !bNode.Dead() {
		t.Error("split node not dead")
	}
	if err := ig.Validate(true); err != nil {
		t.Fatal(err)
	}
	if ig.NumNodes() != 7 { // r,a,c,d plus three b-pieces
		t.Fatalf("live nodes = %d", ig.NumNodes())
	}
	aLabel, _ := g.LabelIDOf("a")
	aNode := ig.NodesWithLabel(aLabel)[0]
	if !ig.HasEdge(aNode, newNodes[0]) {
		t.Error("a -> b{4} edge missing")
	}
	if ig.HasEdge(aNode, newNodes[1]) {
		t.Error("spurious a -> b{5,6} edge")
	}
	if ig.NodeOf(7) != newNodes[2] {
		t.Error("nodeOf not updated")
	}
}

func TestSplitSinglePieceUpdatesK(t *testing.T) {
	g := graph.PaperFigure4()
	ig := a0(g)
	cLabel, _ := g.LabelIDOf("c")
	cNode := ig.NodesWithLabel(cLabel)[0]
	out := ig.Split(cNode, [][]graph.NodeID{{4, 5}}, []int{1})
	if len(out) != 1 || out[0] != cNode || cNode.K() != 1 || cNode.Dead() {
		t.Fatal("single-piece split should update k in place")
	}
	if err := ig.Validate(true); err != nil {
		t.Fatal(err)
	}
}

func TestSplitDropsEmptyPieces(t *testing.T) {
	g := graph.PaperFigure4()
	ig := a0(g)
	bLabel, _ := g.LabelIDOf("b")
	bNode := ig.NodesWithLabel(bLabel)[0]
	out := ig.Split(bNode, [][]graph.NodeID{nil, {2}, {}, {3}}, []int{9, 1, 9, 1})
	if len(out) != 2 {
		t.Fatalf("got %d pieces", len(out))
	}
	if err := ig.Validate(true); err != nil {
		t.Fatal(err)
	}
}

func TestSplitPanicsOnBadPieces(t *testing.T) {
	g := graph.PaperFigure4()
	ig := a0(g)
	bLabel, _ := g.LabelIDOf("b")
	bNode := ig.NodesWithLabel(bLabel)[0]
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("missing member", func() {
		ig.Split(bNode, [][]graph.NodeID{{2}}, []int{1})
	})
	mustPanic("length mismatch", func() {
		ig.Split(bNode, [][]graph.NodeID{{2}, {3}}, []int{1})
	})
	mustPanic("foreign member", func() {
		ig.Split(bNode, [][]graph.NodeID{{2}, {1}}, []int{1, 1})
	})
}

func TestSelfLoopEdgeAccounting(t *testing.T) {
	// a-node extent {1,2} with data edge 1->2 gives a self-loop index edge.
	g := mustBuildSimple([]string{"r", "a", "a", "b"},
		[][2]int{{0, 1}, {1, 2}, {2, 3}}, nil)
	ig := a0(g)
	if err := ig.Validate(true); err != nil {
		t.Fatal(err)
	}
	aLabel, _ := g.LabelIDOf("a")
	aNode := ig.NodesWithLabel(aLabel)[0]
	if !ig.HasEdge(aNode, aNode) {
		t.Fatal("self loop missing")
	}
	edgesBefore := ig.NumEdges()
	ig.Split(aNode, [][]graph.NodeID{{1}, {2}}, []int{1, 1})
	if err := ig.Validate(true); err != nil {
		t.Fatal(err)
	}
	// r->a1, a1->a2, a2->b: still 3 edges.
	if ig.NumEdges() != edgesBefore {
		t.Fatalf("edges %d -> %d", edgesBefore, ig.NumEdges())
	}
}

func TestRandomSplitsKeepInvariants(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := gtest.Random(seed, 120, 5, 0.25)
		ig := a0(g)
		rng := rand.New(rand.NewSource(seed))
		for step := 0; step < 30; step++ {
			// Pick a random live node with extent >= 2 and split it randomly.
			var candidates []*Node
			ig.ForEachNode(func(n *Node) {
				if n.Size() >= 2 {
					candidates = append(candidates, n)
				}
			})
			if len(candidates) == 0 {
				break
			}
			n := candidates[rng.Intn(len(candidates))]
			cut := 1 + rng.Intn(n.Size()-1)
			ext := n.Extent()
			p1 := append([]graph.NodeID(nil), ext[:cut]...)
			p2 := append([]graph.NodeID(nil), ext[cut:]...)
			ig.Split(n, [][]graph.NodeID{p1, p2}, []int{0, 0})
			if err := ig.Validate(false); err != nil {
				t.Fatalf("seed=%d step=%d: %v", seed, step, err)
			}
		}
	}
}

func TestComputeStats(t *testing.T) {
	g := graph.PaperFigure1()
	ig := FromPartition(g, partition.KBisim(g, 1), func(partition.BlockID) int { return 1 })
	s := ig.ComputeStats()
	if s.Nodes != ig.NumNodes() || s.Edges != ig.NumEdges() {
		t.Fatal("stats counts wrong")
	}
	if s.MaxK != 1 || s.AvgK != 1 {
		t.Fatalf("stats k wrong: %+v", s)
	}
	if s.DataSize != g.NumNodes() || s.MaxExt < 1 {
		t.Fatalf("stats sizes wrong: %+v", s)
	}
}

func TestValidateDetectsBisimViolation(t *testing.T) {
	// Claim k=1 on the label partition of figure 4's b nodes: 2 and 3 are
	// actually 1-bisimilar, but persons in figure 1 with different parents
	// are not. Use figure 1: person 7 (referenced by seller) vs person 8
	// (referenced by bidders) are 0-bisimilar only.
	g := graph.PaperFigure1()
	ig := FromPartition(g, partition.ByLabel(g), func(partition.BlockID) int { return 0 })
	person, _ := g.LabelIDOf("person")
	pn := ig.NodesWithLabel(person)[0]
	ig.SetK(pn, 1)
	if err := ig.Validate(true); err == nil {
		t.Fatal("expected P1 violation")
	}
	// But P3 violations must also be caught: person's parents have k=0,
	// which satisfies P3 for k=1, so force a deeper k.
	ig.SetK(pn, 3)
	if err := ig.Validate(false); err == nil {
		t.Fatal("expected P3 violation")
	}
}
