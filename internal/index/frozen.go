package index

import (
	"fmt"
	"sort"

	"mrx/internal/graph"
)

// FrozenID identifies a live node inside one Frozen view. IDs are dense —
// 0..NumNodes()-1 — and assigned in ascending order of the source graph's
// (retired) NodeIDs, so every enumeration over a Frozen is deterministic by
// construction and visited-set bookkeeping can use flat arrays instead of
// maps.
type FrozenID int32

// Frozen is an immutable, CSR-flattened snapshot of an index Graph: the
// read-path twin of the mutable refinement graph. Where Graph keeps
// per-node adjacency maps and per-label ID sets (mutation-friendly,
// allocation-heavy, nondeterministic iteration), Frozen stores the same
// information as a handful of flat arrays:
//
//   - a dense live-node renumbering (FrozenID), with Retired mapping each
//     frozen node back to its NodeID in the mutable graph;
//   - one extent arena holding every extent back to back, with offsets;
//   - CSR child and parent adjacency over FrozenIDs, sorted ascending;
//   - per-label node ranges, sorted ascending within each label;
//   - the data-node -> frozen-node ownership array.
//
// A Frozen shares nothing mutable with its source graph (extents are copied
// into the arena), so a published Frozen stays valid however the source is
// refined afterwards. It contains no maps at all: serving queries from a
// Frozen performs zero map operations.
type Frozen struct {
	data *graph.Graph

	retired []NodeID        // FrozenID -> source-graph NodeID
	ks      []int32         // FrozenID -> local similarity
	labels  []graph.LabelID // FrozenID -> label

	extentStart []int32 // len NumNodes+1; offsets into extentArena
	extentArena []graph.NodeID

	childStart  []int32 // len NumNodes+1; offsets into children
	children    []FrozenID
	parentStart []int32
	parents     []FrozenID

	labelStart []int32 // len NumLabels+1; offsets into labelNodes
	labelNodes []FrozenID

	nodeOf  []FrozenID // data node -> owning frozen node
	version uint64     // source graph's Version() at freeze time
}

// Freeze flattens the live part of the index graph into an immutable CSR
// snapshot. Live nodes are renumbered densely in ascending NodeID order, so
// two structurally identical graphs freeze to identical snapshots.
func (ig *Graph) Freeze() *Frozen {
	fz := &Frozen{data: ig.data, version: ig.version}
	liveOf := make([]FrozenID, len(ig.nodes)) // retired NodeID -> FrozenID
	arena := 0
	fz.retired = make([]NodeID, 0, ig.liveNodes)
	fz.ks = make([]int32, 0, ig.liveNodes)
	fz.labels = make([]graph.LabelID, 0, ig.liveNodes)
	for _, n := range ig.nodes {
		if n == nil || n.dead {
			continue
		}
		liveOf[n.id] = FrozenID(len(fz.retired))
		fz.retired = append(fz.retired, n.id)
		fz.ks = append(fz.ks, int32(n.k))
		fz.labels = append(fz.labels, n.label)
		arena += len(n.extent)
	}
	nLive := len(fz.retired)
	fz.extentStart = make([]int32, nLive+1)
	fz.extentArena = make([]graph.NodeID, 0, arena)
	fz.childStart = make([]int32, nLive+1)
	fz.children = make([]FrozenID, 0, ig.liveEdges)
	fz.parentStart = make([]int32, nLive+1)
	fz.parents = make([]FrozenID, 0, ig.liveEdges)
	fz.nodeOf = make([]FrozenID, ig.data.NumNodes())
	for li, id := range fz.retired {
		n := ig.nodes[id]
		fz.extentStart[li] = int32(len(fz.extentArena))
		fz.extentArena = append(fz.extentArena, n.extent...)
		for _, o := range n.extent {
			fz.nodeOf[o] = FrozenID(li)
		}
		fz.childStart[li] = int32(len(fz.children))
		fz.children = appendSortedIDs(fz.children, n.children, liveOf)
		fz.parentStart[li] = int32(len(fz.parents))
		fz.parents = appendSortedIDs(fz.parents, n.parents, liveOf)
	}
	fz.extentStart[nLive] = int32(len(fz.extentArena))
	fz.childStart[nLive] = int32(len(fz.children))
	fz.parentStart[nLive] = int32(len(fz.parents))
	fz.buildLabelRanges(ig.data.NumLabels())
	return fz
}

// appendSortedIDs maps one adjacency set through the renumbering and appends
// it in ascending FrozenID order — the only place freezing touches a map,
// which is why it lives on the write side of the split.
func appendSortedIDs(dst []FrozenID, set map[NodeID]struct{}, liveOf []FrozenID) []FrozenID {
	at := len(dst)
	for id := range set {
		dst = append(dst, liveOf[id])
	}
	s := dst[at:]
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return dst
}

// buildLabelRanges counting-sorts the frozen nodes by label; within one
// label the FrozenIDs stay ascending.
func (fz *Frozen) buildLabelRanges(numLabels int) {
	fz.labelStart = make([]int32, numLabels+1)
	for _, l := range fz.labels {
		fz.labelStart[l+1]++
	}
	for i := 0; i < numLabels; i++ {
		fz.labelStart[i+1] += fz.labelStart[i]
	}
	fz.labelNodes = make([]FrozenID, len(fz.labels))
	fill := append([]int32(nil), fz.labelStart[:numLabels]...)
	for li, l := range fz.labels {
		fz.labelNodes[fill[l]] = FrozenID(li)
		fill[l]++
	}
}

// Data returns the underlying data graph.
func (fz *Frozen) Data() *graph.Graph { return fz.data }

// NumNodes returns the number of (live) frozen nodes.
func (fz *Frozen) NumNodes() int { return len(fz.retired) }

// NumEdges returns the number of index edges.
func (fz *Frozen) NumEdges() int { return len(fz.children) }

// SourceVersion returns the mutable graph's Version() at freeze time.
func (fz *Frozen) SourceVersion() uint64 { return fz.version }

// K returns the local similarity of frozen node v.
func (fz *Frozen) K(v FrozenID) int { return int(fz.ks[v]) }

// Label returns the label of frozen node v.
func (fz *Frozen) Label(v FrozenID) graph.LabelID { return fz.labels[v] }

// Retired returns the source-graph NodeID frozen node v was flattened from.
func (fz *Frozen) Retired(v FrozenID) NodeID { return fz.retired[v] }

// Extent returns the extent of v, sorted ascending. The slice aliases the
// arena and must not be modified.
func (fz *Frozen) Extent(v FrozenID) []graph.NodeID {
	return fz.extentArena[fz.extentStart[v]:fz.extentStart[v+1]]
}

// Size returns the extent size of v.
func (fz *Frozen) Size(v FrozenID) int {
	return int(fz.extentStart[v+1] - fz.extentStart[v])
}

// Children returns the child nodes of v in ascending FrozenID order. The
// slice aliases internal storage and must not be modified.
func (fz *Frozen) Children(v FrozenID) []FrozenID {
	return fz.children[fz.childStart[v]:fz.childStart[v+1]]
}

// Parents returns the parent nodes of v in ascending FrozenID order. The
// slice aliases internal storage and must not be modified.
func (fz *Frozen) Parents(v FrozenID) []FrozenID {
	return fz.parents[fz.parentStart[v]:fz.parentStart[v+1]]
}

// NodesWithLabel returns the frozen nodes carrying label l, ascending. The
// slice aliases internal storage and must not be modified.
func (fz *Frozen) NodesWithLabel(l graph.LabelID) []FrozenID {
	return fz.labelNodes[fz.labelStart[l]:fz.labelStart[l+1]]
}

// CountLabel returns the number of frozen nodes carrying label l.
func (fz *Frozen) CountLabel(l graph.LabelID) int {
	return int(fz.labelStart[l+1] - fz.labelStart[l])
}

// NodeOf returns the frozen node whose extent contains data node o.
func (fz *Frozen) NodeOf(o graph.NodeID) FrozenID { return fz.nodeOf[o] }

// Root returns the frozen node containing the data-graph root.
func (fz *Frozen) Root() FrozenID { return fz.NodeOf(fz.data.Root()) }

// ComputeStats gathers the same summary statistics as Graph.ComputeStats.
func (fz *Frozen) ComputeStats() Stats {
	s := Stats{Nodes: fz.NumNodes(), Edges: fz.NumEdges(), DataSize: fz.data.NumNodes()}
	sumK := 0
	for v := 0; v < fz.NumNodes(); v++ {
		if k := fz.K(FrozenID(v)); k > s.MaxK {
			s.MaxK = k
		}
		if e := fz.Size(FrozenID(v)); e > s.MaxExt {
			s.MaxExt = e
		}
		sumK += fz.K(FrozenID(v))
	}
	if s.Nodes > 0 {
		s.AvgK = float64(sumK) / float64(s.Nodes)
	}
	return s
}

// CheckAgainst verifies that the frozen view is an exact flattening of ig:
// same live nodes (IDs, labels, similarities, extents), same adjacency, same
// label buckets, same data-node ownership. The differential tests call it
// after every refine-and-refreeze step; any drift between the mutable and
// frozen representations is a bug in Freeze or in snapshot reuse.
func (fz *Frozen) CheckAgainst(ig *Graph) error {
	if fz.data != ig.Data() {
		return fmt.Errorf("frozen: different data graph")
	}
	if fz.NumNodes() != ig.NumNodes() {
		return fmt.Errorf("frozen: %d nodes, mutable graph has %d live", fz.NumNodes(), ig.NumNodes())
	}
	if fz.NumEdges() != ig.NumEdges() {
		return fmt.Errorf("frozen: %d edges, mutable graph has %d live", fz.NumEdges(), ig.NumEdges())
	}
	li := FrozenID(0)
	var err error
	ig.ForEachNode(func(n *Node) {
		if err != nil {
			return
		}
		if fz.retired[li] != n.ID() {
			err = fmt.Errorf("frozen node %d maps to retired %d, mutable order gives %d", li, fz.retired[li], n.ID())
			return
		}
		if fz.K(li) != n.K() || fz.Label(li) != n.Label() {
			err = fmt.Errorf("frozen node %d: k/label %d/%d, mutable %d/%d",
				li, fz.K(li), fz.Label(li), n.K(), n.Label())
			return
		}
		if !equalNodeIDs(fz.Extent(li), n.Extent()) {
			err = fmt.Errorf("frozen node %d: extent %v, mutable %v", li, fz.Extent(li), n.Extent())
			return
		}
		for _, o := range fz.Extent(li) {
			if fz.nodeOf[o] != li {
				err = fmt.Errorf("frozen nodeOf[%d]=%d, want %d", o, fz.nodeOf[o], li)
				return
			}
		}
		if err = fz.checkAdjacency(li, ig.Children(n), fz.Children(li), "child"); err != nil {
			return
		}
		if err = fz.checkAdjacency(li, ig.Parents(n), fz.Parents(li), "parent"); err != nil {
			return
		}
		li++
	})
	if err != nil {
		return err
	}
	for l := 0; l < ig.Data().NumLabels(); l++ {
		want := ig.NodesWithLabel(graph.LabelID(l))
		got := fz.NodesWithLabel(graph.LabelID(l))
		if len(want) != len(got) {
			return fmt.Errorf("frozen label %d: %d nodes, mutable %d", l, len(got), len(want))
		}
		for i, v := range got {
			if fz.retired[v] != want[i].ID() {
				return fmt.Errorf("frozen label %d bucket diverges at %d", l, i)
			}
		}
	}
	return nil
}

func (fz *Frozen) checkAdjacency(li FrozenID, want []*Node, got []FrozenID, kind string) error {
	if len(want) != len(got) {
		return fmt.Errorf("frozen node %d: %d %s edges, mutable %d", li, len(got), kind, len(want))
	}
	for i, v := range got {
		if fz.retired[v] != want[i].ID() {
			return fmt.Errorf("frozen node %d: %s %d is retired %d, mutable %d",
				li, kind, i, fz.retired[v], want[i].ID())
		}
	}
	return nil
}

func equalNodeIDs(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Thaw reconstructs a mutable index Graph from the frozen snapshot, for
// workloads that load the fast frozen form from disk and only later need to
// refine it. The result is freshly wired (adjacency maps rebuilt from the
// data graph) and uses FrozenIDs as NodeIDs.
func (fz *Frozen) Thaw() *Graph {
	ig := &Graph{
		data:    fz.data,
		nodeOf:  make([]NodeID, fz.data.NumNodes()),
		byLabel: make(map[graph.LabelID]map[NodeID]struct{}),
	}
	for v := 0; v < fz.NumNodes(); v++ {
		id := FrozenID(v)
		extent := append([]graph.NodeID(nil), fz.Extent(id)...)
		ig.attachNode(fz.Label(id), fz.K(id), extent)
	}
	ig.wireFromData()
	return ig
}

// FrozenFromExtents builds a Frozen directly from explicit extents and local
// similarities, validating exactly what FromExtents validates (disjoint
// label-homogeneous cover) but wiring the CSR adjacency with flat arrays
// instead of per-node maps. This is the persistence fast path: loading a
// snapshot skips the mutable graph entirely. Structural invariants that
// depend only on shape (P2) hold by construction; semantic ones (P1, P3)
// can be checked afterwards (the store loader checks P3 over the CSR).
func FrozenFromExtents(data *graph.Graph, extents [][]graph.NodeID, ks []int) (*Frozen, error) {
	if len(extents) != len(ks) {
		return nil, fmt.Errorf("index: %d extents but %d k values", len(extents), len(ks))
	}
	n := len(extents)
	fz := &Frozen{
		data:    data,
		retired: make([]NodeID, n),
		ks:      make([]int32, n),
		labels:  make([]graph.LabelID, n),
		nodeOf:  make([]FrozenID, data.NumNodes()),
	}
	for i := range fz.nodeOf {
		fz.nodeOf[i] = -1
	}
	fz.extentStart = make([]int32, n+1)
	arena := 0
	checked := make([][]graph.NodeID, n)
	for bi, extent := range extents {
		extent, err := checkExtent(data, bi, extent, ks[bi])
		if err != nil {
			return nil, err
		}
		for _, o := range extent {
			if fz.nodeOf[o] != -1 {
				return nil, fmt.Errorf("index: data node %d in two extents", o)
			}
			fz.nodeOf[o] = FrozenID(bi)
		}
		checked[bi] = extent
		fz.retired[bi] = NodeID(bi)
		fz.ks[bi] = int32(ks[bi])
		fz.labels[bi] = data.Label(extent[0])
		arena += len(extent)
	}
	for v := 0; v < data.NumNodes(); v++ {
		if fz.nodeOf[v] == -1 {
			return nil, fmt.Errorf("index: data node %d not covered by any extent", v)
		}
	}
	fz.extentArena = make([]graph.NodeID, 0, arena)
	for bi, extent := range checked {
		fz.extentStart[bi] = int32(len(fz.extentArena))
		fz.extentArena = append(fz.extentArena, extent...)
	}
	fz.extentStart[n] = int32(len(fz.extentArena))
	fz.wireCSRFromData()
	fz.buildLabelRanges(data.NumLabels())
	return fz, nil
}

// CheckP3 verifies the parent-similarity invariant P3 — every index edge
// u→v satisfies k(u) ≥ k(v) − 1 — over the CSR adjacency. Similarities are
// data, not derivable from shape, so loaders of the frozen fast path call
// this to reject corrupted k values without materializing a mutable graph.
func (fz *Frozen) CheckP3() error {
	for u := 0; u < fz.NumNodes(); u++ {
		for _, c := range fz.Children(FrozenID(u)) {
			if fz.ks[u] < fz.ks[c]-1 {
				return fmt.Errorf("index: P3 violated: edge %d->%d has k(parent)=%d < k(child)-1=%d",
					u, c, fz.ks[u], fz.ks[c]-1)
			}
		}
	}
	return nil
}

// wireCSRFromData rebuilds the child and parent CSR adjacency per P2 from
// the data graph, using only flat arrays: per-node child lists are gathered,
// sorted and deduplicated in place, and the parent CSR is derived from the
// child CSR by counting. nodeOf and extentStart/extentArena must be final.
func (fz *Frozen) wireCSRFromData() {
	n := fz.NumNodes()
	fz.childStart = make([]int32, n+1)
	fz.children = fz.children[:0]
	var scratch []FrozenID
	for u := 0; u < n; u++ {
		fz.childStart[u] = int32(len(fz.children))
		scratch = scratch[:0]
		for _, o := range fz.Extent(FrozenID(u)) {
			for _, c := range fz.data.Children(o) {
				scratch = append(scratch, fz.nodeOf[c])
			}
		}
		sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
		for i, c := range scratch {
			if i > 0 && scratch[i-1] == c {
				continue
			}
			fz.children = append(fz.children, c)
		}
	}
	fz.childStart[n] = int32(len(fz.children))

	fz.parentStart = make([]int32, n+1)
	for _, c := range fz.children {
		fz.parentStart[c+1]++
	}
	for i := 0; i < n; i++ {
		fz.parentStart[i+1] += fz.parentStart[i]
	}
	fz.parents = make([]FrozenID, len(fz.children))
	fill := append([]int32(nil), fz.parentStart[:n]...)
	for u := 0; u < n; u++ {
		for _, c := range fz.Children(FrozenID(u)) {
			fz.parents[fill[c]] = FrozenID(u)
			fill[c]++
		}
	}
}
