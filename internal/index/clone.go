package index

import "mrx/internal/graph"

// Clone returns a deep copy of the index graph sharing only the (immutable)
// data graph and extent slices. Node IDs, including dead slots, are
// preserved so that clones evolve independently but deterministically.
// Extent slices are shared because they are never mutated in place: Split
// allocates fresh slices for pieces.
func (ig *Graph) Clone() *Graph {
	c := &Graph{
		data:      ig.data,
		nodes:     make([]*Node, len(ig.nodes)),
		nodeOf:    make([]NodeID, len(ig.nodeOf)),
		byLabel:   make(map[graph.LabelID]map[NodeID]struct{}, len(ig.byLabel)),
		liveNodes: ig.liveNodes,
		liveEdges: ig.liveEdges,
		version:   ig.version,
	}
	copy(c.nodeOf, ig.nodeOf)
	for i, n := range ig.nodes {
		if n == nil {
			continue
		}
		cn := &Node{
			id:       n.id,
			label:    n.label,
			k:        n.k,
			extent:   n.extent,
			dead:     n.dead,
			parents:  make(map[NodeID]struct{}, len(n.parents)),
			children: make(map[NodeID]struct{}, len(n.children)),
		}
		for id := range n.parents {
			cn.parents[id] = struct{}{}
		}
		for id := range n.children {
			cn.children[id] = struct{}{}
		}
		c.nodes[i] = cn
	}
	for l, bucket := range ig.byLabel {
		nb := make(map[NodeID]struct{}, len(bucket))
		for id := range bucket {
			nb[id] = struct{}{}
		}
		c.byLabel[l] = nb
	}
	return c
}
