package index

import (
	"fmt"
	"io"
)

// WriteDOT renders the index graph in Graphviz DOT format, in the style of
// the paper's figures: each node shows its extent and local similarity.
// Extents larger than maxExtent members are elided with a count.
func (ig *Graph) WriteDOT(w io.Writer, name string, maxExtent int) error {
	if name == "" {
		name = "index"
	}
	if maxExtent <= 0 {
		maxExtent = 8
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  node [shape=box];\n", name); err != nil {
		return err
	}
	var werr error
	ig.ForEachNode(func(n *Node) {
		if werr != nil {
			return
		}
		label := ig.data.LabelName(n.Label())
		ext := ""
		if n.Size() <= maxExtent {
			ext = fmt.Sprintf("%v", n.Extent())
		} else {
			ext = fmt.Sprintf("[%d nodes]", n.Size())
		}
		_, werr = fmt.Fprintf(w, "  i%d [label=\"%s %s k=%d\"];\n", n.ID(), label, ext, n.K())
	})
	if werr != nil {
		return werr
	}
	ig.ForEachNode(func(n *Node) {
		if werr != nil {
			return
		}
		for _, c := range ig.Children(n) {
			if _, err := fmt.Fprintf(w, "  i%d -> i%d;\n", n.ID(), c.ID()); err != nil {
				werr = err
				return
			}
		}
	})
	if werr != nil {
		return werr
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
