package index

import (
	"fmt"
	"io"
)

// WriteDOT renders the index graph in Graphviz DOT format, in the style of
// the paper's figures: each node shows its extent and local similarity.
// Extents larger than maxExtent members are elided with a count.
func (ig *Graph) WriteDOT(w io.Writer, name string, maxExtent int) error {
	if name == "" {
		name = "index"
	}
	if maxExtent <= 0 {
		maxExtent = 8
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  node [shape=box];\n", name); err != nil {
		return err
	}
	var werr error
	ig.ForEachNode(func(n *Node) {
		if werr != nil {
			return
		}
		label := ig.data.LabelName(n.Label())
		ext := ""
		if n.Size() <= maxExtent {
			ext = fmt.Sprintf("%v", n.Extent())
		} else {
			ext = fmt.Sprintf("[%d nodes]", n.Size())
		}
		_, werr = fmt.Fprintf(w, "  i%d [label=\"%s %s k=%d\"];\n", n.ID(), label, ext, n.K())
	})
	if werr != nil {
		return werr
	}
	ig.ForEachNode(func(n *Node) {
		if werr != nil {
			return
		}
		for _, c := range ig.Children(n) {
			if _, err := fmt.Fprintf(w, "  i%d -> i%d;\n", n.ID(), c.ID()); err != nil {
				werr = err
				return
			}
		}
	})
	if werr != nil {
		return werr
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// WriteDOT renders the frozen index graph in Graphviz DOT format. Node IDs
// are the retired (mutable-graph) IDs and both node and edge enumeration
// follow ascending ID order, so the output is byte-identical to the source
// graph's WriteDOT — a property the determinism regression tests pin down.
func (fz *Frozen) WriteDOT(w io.Writer, name string, maxExtent int) error {
	if name == "" {
		name = "index"
	}
	if maxExtent <= 0 {
		maxExtent = 8
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  node [shape=box];\n", name); err != nil {
		return err
	}
	for v := 0; v < fz.NumNodes(); v++ {
		id := FrozenID(v)
		label := fz.data.LabelName(fz.Label(id))
		ext := ""
		if fz.Size(id) <= maxExtent {
			ext = fmt.Sprintf("%v", fz.Extent(id))
		} else {
			ext = fmt.Sprintf("[%d nodes]", fz.Size(id))
		}
		if _, err := fmt.Fprintf(w, "  i%d [label=\"%s %s k=%d\"];\n", fz.Retired(id), label, ext, fz.K(id)); err != nil {
			return err
		}
	}
	for v := 0; v < fz.NumNodes(); v++ {
		for _, c := range fz.Children(FrozenID(v)) {
			if _, err := fmt.Fprintf(w, "  i%d -> i%d;\n", fz.Retired(FrozenID(v)), fz.Retired(c)); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
