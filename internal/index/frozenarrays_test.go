package index

import (
	"strings"
	"testing"

	"mrx/internal/graph"
	"mrx/internal/gtest"
	"mrx/internal/partition"
)

func TestFrozenArraysRoundTrip(t *testing.T) {
	g := gtest.Random(7, 60, 4, 0.2)
	// A refined partition gives the snapshot interesting structure.
	ig := FromPartition(g, partition.KBisim(g, 2), func(partition.BlockID) int { return 2 })
	fz := freezeChecked(t, ig)
	if err := fz.Verify(); err != nil {
		t.Fatalf("Verify on a freshly frozen snapshot: %v", err)
	}
	got, err := FrozenFromArrays(g, fz.Arrays())
	if err != nil {
		t.Fatalf("FrozenFromArrays: %v", err)
	}
	if err := got.Verify(); err != nil {
		t.Fatalf("Verify after array round-trip: %v", err)
	}
	if err := got.CheckAgainst(ig); err != nil {
		t.Fatalf("round-tripped snapshot diverges from source: %v", err)
	}
	if err := got.CheckP3(); err != nil {
		t.Fatalf("CheckP3: %v", err)
	}
}

func TestFrozenFromArraysRejectsShapeErrors(t *testing.T) {
	g := graph.PaperFigure1()
	fz := freezeChecked(t, a0(g))
	base := fz.Arrays()

	cases := []struct {
		name string
		mut  func(a FrozenArrays) FrozenArrays
		want string
	}{
		{"short ks", func(a FrozenArrays) FrozenArrays { a.Ks = a.Ks[:len(a.Ks)-1]; return a }, "ks"},
		{"short offsets", func(a FrozenArrays) FrozenArrays { a.ExtentStart = a.ExtentStart[:len(a.ExtentStart)-1]; return a }, "offset arrays"},
		{"bad start", func(a FrozenArrays) FrozenArrays {
			s := append([]int32(nil), a.ChildStart...)
			s[0] = 1
			a.ChildStart = s
			return a
		}, "start at 1"},
		{"bad end", func(a FrozenArrays) FrozenArrays {
			s := append([]int32(nil), a.ParentStart...)
			s[len(s)-1]++
			a.ParentStart = s
			return a
		}, "offsets end"},
		{"wrong nodeOf", func(a FrozenArrays) FrozenArrays { a.NodeOf = a.NodeOf[:len(a.NodeOf)-1]; return a }, "ownership"},
		{"wrong label buckets", func(a FrozenArrays) FrozenArrays { a.LabelNodes = a.LabelNodes[:len(a.LabelNodes)-1]; return a }, "label"},
	}
	for _, tc := range cases {
		if _, err := FrozenFromArrays(g, tc.mut(base)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestVerifyRejectsCorruption(t *testing.T) {
	build := func() (*graph.Graph, FrozenArrays) {
		g := gtest.Random(11, 40, 3, 0.2)
		ig := FromPartition(g, partition.KBisim(g, 1), func(partition.BlockID) int { return 1 })
		fz := freezeChecked(t, ig)
		a := fz.Arrays()
		// Deep-copy everything a case might corrupt.
		a.Ks = append([]int32(nil), a.Ks...)
		a.Labels = append([]graph.LabelID(nil), a.Labels...)
		a.Retired = append([]NodeID(nil), a.Retired...)
		a.ExtentArena = append([]graph.NodeID(nil), a.ExtentArena...)
		a.Children = append([]FrozenID(nil), a.Children...)
		a.Parents = append([]FrozenID(nil), a.Parents...)
		a.LabelNodes = append([]FrozenID(nil), a.LabelNodes...)
		a.NodeOf = append([]FrozenID(nil), a.NodeOf...)
		return g, a
	}

	cases := []struct {
		name string
		mut  func(a *FrozenArrays)
	}{
		{"negative k", func(a *FrozenArrays) { a.Ks[0] = -1 }},
		{"label out of range", func(a *FrozenArrays) { a.Labels[0] = 99 }},
		{"retired not ascending", func(a *FrozenArrays) { a.Retired[1] = a.Retired[0] }},
		{"arena out of range", func(a *FrozenArrays) { a.ExtentArena[0] = -5 }},
		{"nodeOf wrong owner", func(a *FrozenArrays) { a.NodeOf[0], a.NodeOf[len(a.NodeOf)-1] = a.NodeOf[len(a.NodeOf)-1], a.NodeOf[0] }},
		{"child edge out of range", func(a *FrozenArrays) {
			if len(a.Children) > 0 {
				a.Children[0] = FrozenID(len(a.Ks))
			}
		}},
		{"child edge rewired", func(a *FrozenArrays) {
			if len(a.Children) > 1 {
				a.Children[0], a.Children[len(a.Children)-1] = a.Children[len(a.Children)-1], a.Children[0]
			}
		}},
		{"parent edge rewired", func(a *FrozenArrays) {
			if len(a.Parents) > 1 {
				a.Parents[0], a.Parents[len(a.Parents)-1] = a.Parents[len(a.Parents)-1], a.Parents[0]
			}
		}},
		{"label bucket shuffled", func(a *FrozenArrays) {
			a.LabelNodes[0], a.LabelNodes[len(a.LabelNodes)-1] = a.LabelNodes[len(a.LabelNodes)-1], a.LabelNodes[0]
		}},
		{"P3 broken", func(a *FrozenArrays) {
			// Give some child a much larger k than its parent allows.
			for i := range a.Ks {
				a.Ks[i] = 0
			}
			a.Ks[len(a.Ks)-1] = 5
		}},
	}
	for _, tc := range cases {
		g, a := build()
		tc.mut(&a)
		fz, err := FrozenFromArrays(g, a)
		if err != nil {
			continue // shape check already caught it; fine
		}
		if err := fz.Verify(); err == nil {
			t.Errorf("%s: Verify accepted corrupted snapshot", tc.name)
		}
	}
}
