package index

import (
	"fmt"
	"sort"

	"mrx/internal/graph"
)

// FromExtents reconstructs an index graph from explicit extents and local
// similarities, validating that the extents form a disjoint cover of the
// data nodes and are label-homogeneous. It is the inverse of enumerating
// (Extent, K) pairs with ForEachNode, used by the persistence layer.
// Structural invariants that depend only on shape (P2, counters) are
// rebuilt; semantic ones (P1, P3) can be checked afterwards with Validate.
func FromExtents(data *graph.Graph, extents [][]graph.NodeID, ks []int) (*Graph, error) {
	if len(extents) != len(ks) {
		return nil, fmt.Errorf("index: %d extents but %d k values", len(extents), len(ks))
	}
	ig := &Graph{
		data:    data,
		nodeOf:  make([]NodeID, data.NumNodes()),
		byLabel: make(map[graph.LabelID]map[NodeID]struct{}),
	}
	for i := range ig.nodeOf {
		ig.nodeOf[i] = -1
	}
	for bi, extent := range extents {
		extent, err := checkExtent(data, bi, extent, ks[bi])
		if err != nil {
			return nil, err
		}
		for _, o := range extent {
			if ig.nodeOf[o] != -1 {
				return nil, fmt.Errorf("index: data node %d in two extents", o)
			}
			ig.nodeOf[o] = 0 // provisional; attachNode assigns the real ID
		}
		ig.attachNode(data.Label(extent[0]), ks[bi], extent)
	}
	for v := 0; v < data.NumNodes(); v++ {
		if ig.nodeOf[v] == -1 {
			return nil, fmt.Errorf("index: data node %d not covered by any extent", v)
		}
	}
	ig.wireFromData()
	return ig, nil
}

// checkExtent validates one externally supplied extent — non-empty,
// non-negative k, data-node IDs in range, label-homogeneous — and returns a
// sorted private copy. FromExtents and FrozenFromExtents share it so the
// mutable and frozen loaders cannot drift in what they accept.
func checkExtent(data *graph.Graph, bi int, extent []graph.NodeID, k int) ([]graph.NodeID, error) {
	if len(extent) == 0 {
		return nil, fmt.Errorf("index: extent %d is empty", bi)
	}
	if k < 0 {
		return nil, fmt.Errorf("index: extent %d has negative k", bi)
	}
	extent = append([]graph.NodeID(nil), extent...)
	sort.Slice(extent, func(a, b int) bool { return extent[a] < extent[b] })
	// Range-check before the first Label call: extents read from untrusted
	// (possibly corrupted) files reach here unvalidated.
	for _, o := range extent {
		if o < 0 || int(o) >= data.NumNodes() {
			return nil, fmt.Errorf("index: extent %d references data node %d out of range", bi, o)
		}
	}
	label := data.Label(extent[0])
	for _, o := range extent[1:] {
		if data.Label(o) != label {
			return nil, fmt.Errorf("index: extent %d mixes labels", bi)
		}
	}
	return extent, nil
}
