package index

import (
	"fmt"
	"sort"

	"mrx/internal/graph"
)

// FromExtents reconstructs an index graph from explicit extents and local
// similarities, validating that the extents form a disjoint cover of the
// data nodes and are label-homogeneous. It is the inverse of enumerating
// (Extent, K) pairs with ForEachNode, used by the persistence layer.
// Structural invariants that depend only on shape (P2, counters) are
// rebuilt; semantic ones (P1, P3) can be checked afterwards with Validate.
func FromExtents(data *graph.Graph, extents [][]graph.NodeID, ks []int) (*Graph, error) {
	if len(extents) != len(ks) {
		return nil, fmt.Errorf("index: %d extents but %d k values", len(extents), len(ks))
	}
	ig := &Graph{
		data:    data,
		nodeOf:  make([]NodeID, data.NumNodes()),
		byLabel: make(map[graph.LabelID]map[NodeID]struct{}),
	}
	for i := range ig.nodeOf {
		ig.nodeOf[i] = -1
	}
	for bi, extent := range extents {
		if len(extent) == 0 {
			return nil, fmt.Errorf("index: extent %d is empty", bi)
		}
		if ks[bi] < 0 {
			return nil, fmt.Errorf("index: extent %d has negative k", bi)
		}
		extent = append([]graph.NodeID(nil), extent...)
		sort.Slice(extent, func(a, b int) bool { return extent[a] < extent[b] })
		// Range-check before the first Label call: extents read from
		// untrusted (possibly corrupted) files reach here unvalidated.
		for _, o := range extent {
			if o < 0 || int(o) >= data.NumNodes() {
				return nil, fmt.Errorf("index: extent %d references data node %d out of range", bi, o)
			}
		}
		label := data.Label(extent[0])
		n := &Node{
			id:       NodeID(bi),
			label:    label,
			k:        ks[bi],
			extent:   extent,
			parents:  make(map[NodeID]struct{}),
			children: make(map[NodeID]struct{}),
		}
		for _, o := range extent {
			if ig.nodeOf[o] != -1 {
				return nil, fmt.Errorf("index: data node %d in two extents", o)
			}
			if data.Label(o) != label {
				return nil, fmt.Errorf("index: extent %d mixes labels", bi)
			}
			ig.nodeOf[o] = n.id
		}
		ig.nodes = append(ig.nodes, n)
		ig.addToLabelBucket(n)
		ig.liveNodes++
	}
	for v := 0; v < data.NumNodes(); v++ {
		if ig.nodeOf[v] == -1 {
			return nil, fmt.Errorf("index: data node %d not covered by any extent", v)
		}
	}
	for v := 0; v < data.NumNodes(); v++ {
		from := ig.nodeOf[v]
		for _, c := range data.Children(graph.NodeID(v)) {
			ig.addEdge(from, ig.nodeOf[c])
		}
	}
	return ig, nil
}
