package index

import (
	"fmt"

	"mrx/internal/graph"
)

// FrozenArrays is the complete flat-array state of one Frozen snapshot, in
// the exact layout Freeze produces. It exists so external storage layers can
// wire a Frozen over memory they own — package mmapstore maps a snapshot
// file and hands the typed views straight to FrozenFromArrays, serving
// queries with zero deserialization — and so writers can read the arrays
// back out (Arrays) without accessor-at-a-time copying.
//
// Invariants (what Freeze guarantees and Verify checks): Retired is strictly
// ascending; ExtentStart/ChildStart/ParentStart/LabelStart are monotone
// offset arrays starting at 0 and ending at the length of the array they
// index; extents are sorted, non-empty, label-homogeneous and partition the
// data nodes per NodeOf; adjacency lists are ascending and deduplicated;
// label buckets are ascending and agree with Labels.
type FrozenArrays struct {
	Retired []NodeID
	Ks      []int32
	Labels  []graph.LabelID

	ExtentStart []int32
	ExtentArena []graph.NodeID

	ChildStart  []int32
	Children    []FrozenID
	ParentStart []int32
	Parents     []FrozenID

	LabelStart []int32
	LabelNodes []FrozenID

	NodeOf []FrozenID
}

// Arrays returns the snapshot's backing arrays. The slices alias internal
// storage and must not be modified: a Frozen is immutable by contract.
func (fz *Frozen) Arrays() FrozenArrays {
	return FrozenArrays{
		Retired:     fz.retired,
		Ks:          fz.ks,
		Labels:      fz.labels,
		ExtentStart: fz.extentStart,
		ExtentArena: fz.extentArena,
		ChildStart:  fz.childStart,
		Children:    fz.children,
		ParentStart: fz.parentStart,
		Parents:     fz.parents,
		LabelStart:  fz.labelStart,
		LabelNodes:  fz.labelNodes,
		NodeOf:      fz.nodeOf,
	}
}

// FrozenFromArrays wires a Frozen directly over the given arrays without
// copying them — the zero-deserialization load path. Only O(1) shape
// consistency is checked here (array lengths against each other and against
// the data graph, offset-array boundary values), which is enough to bind the
// arrays together but NOT enough to make a hostile file safe to serve:
// interior offsets and IDs are trusted. Callers loading untrusted bytes must
// follow up with Verify, which walks everything.
func FrozenFromArrays(data *graph.Graph, a FrozenArrays) (*Frozen, error) {
	n := len(a.Retired)
	if len(a.Ks) != n || len(a.Labels) != n {
		return nil, fmt.Errorf("index: frozen arrays: %d retired, %d ks, %d labels", n, len(a.Ks), len(a.Labels))
	}
	if len(a.ExtentStart) != n+1 || len(a.ChildStart) != n+1 || len(a.ParentStart) != n+1 {
		return nil, fmt.Errorf("index: frozen arrays: offset arrays sized %d/%d/%d, want %d",
			len(a.ExtentStart), len(a.ChildStart), len(a.ParentStart), n+1)
	}
	if len(a.LabelStart) != data.NumLabels()+1 {
		return nil, fmt.Errorf("index: frozen arrays: %d label offsets for %d labels", len(a.LabelStart), data.NumLabels())
	}
	if len(a.LabelNodes) != n {
		return nil, fmt.Errorf("index: frozen arrays: %d label-bucket entries for %d nodes", len(a.LabelNodes), n)
	}
	if len(a.NodeOf) != data.NumNodes() {
		return nil, fmt.Errorf("index: frozen arrays: %d ownership entries for %d data nodes", len(a.NodeOf), data.NumNodes())
	}
	if len(a.ExtentArena) != data.NumNodes() {
		// Extents partition the data nodes, so the arena is exactly one entry
		// per data node.
		return nil, fmt.Errorf("index: frozen arrays: arena of %d for %d data nodes", len(a.ExtentArena), data.NumNodes())
	}
	if err := checkBounds("extent", a.ExtentStart, len(a.ExtentArena)); err != nil {
		return nil, err
	}
	if err := checkBounds("child", a.ChildStart, len(a.Children)); err != nil {
		return nil, err
	}
	if err := checkBounds("parent", a.ParentStart, len(a.Parents)); err != nil {
		return nil, err
	}
	if err := checkBounds("label", a.LabelStart, len(a.LabelNodes)); err != nil {
		return nil, err
	}
	if len(a.Children) != len(a.Parents) {
		return nil, fmt.Errorf("index: frozen arrays: %d child edges but %d parent edges", len(a.Children), len(a.Parents))
	}
	return &Frozen{
		data:        data,
		retired:     a.Retired,
		ks:          a.Ks,
		labels:      a.Labels,
		extentStart: a.ExtentStart,
		extentArena: a.ExtentArena,
		childStart:  a.ChildStart,
		children:    a.Children,
		parentStart: a.ParentStart,
		parents:     a.Parents,
		labelStart:  a.LabelStart,
		labelNodes:  a.LabelNodes,
		nodeOf:      a.NodeOf,
	}, nil
}

// checkBounds validates the O(1) boundary values of an offset array: it must
// start at 0 and end exactly at the indexed array's length. Interior
// monotonicity is Verify's job.
func checkBounds(kind string, start []int32, arenaLen int) error {
	if start[0] != 0 {
		return fmt.Errorf("index: frozen arrays: %s offsets start at %d, want 0", kind, start[0])
	}
	if int(start[len(start)-1]) != arenaLen {
		return fmt.Errorf("index: frozen arrays: %s offsets end at %d, array has %d", kind, start[len(start)-1], arenaLen)
	}
	return nil
}

// Verify walks every array of the snapshot and checks the full structural
// contract, so a Frozen wired over untrusted bytes (FrozenFromArrays over a
// mapped file) either satisfies exactly the invariants Freeze guarantees or
// is rejected before it can serve a query — no interior value can cause a
// panic, an out-of-range access, or a silently wrong answer afterwards:
//
//   - offset arrays are monotone nondecreasing;
//   - every k is nonnegative, every label in range, Retired strictly
//     ascending;
//   - extents are non-empty, strictly ascending, label-homogeneous and a
//     disjoint cover of the data nodes agreeing with NodeOf;
//   - the child CSR equals the adjacency induced by the data graph (P2),
//     and the parent CSR is its exact transpose;
//   - label buckets are ascending, agree with Labels, and cover every node;
//   - P3: every edge u→v has k(u) ≥ k(v) − 1.
func (fz *Frozen) Verify() error {
	n := fz.NumNodes()
	data := fz.data
	for _, s := range []struct {
		kind  string
		start []int32
	}{
		{"extent", fz.extentStart}, {"child", fz.childStart},
		{"parent", fz.parentStart}, {"label", fz.labelStart},
	} {
		for i := 1; i < len(s.start); i++ {
			if s.start[i] < s.start[i-1] {
				return fmt.Errorf("index: verify: %s offsets decrease at %d (%d -> %d)", s.kind, i, s.start[i-1], s.start[i])
			}
		}
	}
	for v := 0; v < n; v++ {
		if fz.ks[v] < 0 {
			return fmt.Errorf("index: verify: node %d has negative k %d", v, fz.ks[v])
		}
		if l := fz.labels[v]; l < 0 || int(l) >= data.NumLabels() {
			return fmt.Errorf("index: verify: node %d has label %d out of range", v, l)
		}
		if v > 0 && fz.retired[v] <= fz.retired[v-1] {
			return fmt.Errorf("index: verify: retired IDs not ascending at node %d", v)
		}
		ext := fz.Extent(FrozenID(v))
		if len(ext) == 0 {
			return fmt.Errorf("index: verify: node %d has empty extent", v)
		}
		for i, o := range ext {
			if o < 0 || int(o) >= data.NumNodes() {
				return fmt.Errorf("index: verify: node %d extent references data node %d out of range", v, o)
			}
			if i > 0 && ext[i-1] >= o {
				return fmt.Errorf("index: verify: node %d extent not strictly ascending", v)
			}
			if data.Label(o) != fz.labels[v] {
				return fmt.Errorf("index: verify: node %d extent mixes labels", v)
			}
			if fz.nodeOf[o] != FrozenID(v) {
				return fmt.Errorf("index: verify: nodeOf[%d]=%d, extent says %d", o, fz.nodeOf[o], v)
			}
		}
	}
	// The arena length equals NumNodes (checked at wiring) and every member
	// maps back through nodeOf, so extents are a disjoint cover iff every
	// nodeOf entry was visited — which the per-extent nodeOf check plus the
	// pigeonhole over the arena length already guarantees. What remains is
	// nodeOf entries pointing at nodes whose extent doesn't contain them:
	// caught above unless the entry is out of range entirely.
	for o, v := range fz.nodeOf {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("index: verify: nodeOf[%d]=%d out of range", o, v)
		}
	}
	if err := fz.verifyCSR(); err != nil {
		return err
	}
	if err := fz.verifyLabelBuckets(); err != nil {
		return err
	}
	return fz.CheckP3()
}

// verifyCSR re-derives the child adjacency from the data graph (P2) and
// checks both CSR halves against it: the stored child lists must match the
// derived ones exactly, and the parent CSR must be the exact transpose.
func (fz *Frozen) verifyCSR() error {
	n := fz.NumNodes()
	var scratch []FrozenID
	for u := 0; u < n; u++ {
		scratch = scratch[:0]
		for _, o := range fz.Extent(FrozenID(u)) {
			for _, c := range fz.data.Children(o) {
				scratch = append(scratch, fz.nodeOf[c])
			}
		}
		scratch = sortDedupFrozenIDs(scratch)
		got := fz.Children(FrozenID(u))
		if len(got) != len(scratch) {
			return fmt.Errorf("index: verify: node %d has %d child edges, data graph induces %d", u, len(got), len(scratch))
		}
		for i := range got {
			if got[i] != scratch[i] {
				return fmt.Errorf("index: verify: node %d child list diverges from data graph at %d", u, i)
			}
		}
	}
	// Transpose check: count parents per node, then verify each parent list
	// is ascending and that every child edge appears exactly once.
	counts := make([]int32, n)
	for _, c := range fz.children {
		if c < 0 || int(c) >= n {
			return fmt.Errorf("index: verify: child edge to %d out of range", c)
		}
		counts[c]++
	}
	for v := 0; v < n; v++ {
		ps := fz.Parents(FrozenID(v))
		if int(counts[v]) != len(ps) {
			return fmt.Errorf("index: verify: node %d has %d parent edges, child CSR induces %d", v, len(ps), counts[v])
		}
		for i, p := range ps {
			if p < 0 || int(p) >= n {
				return fmt.Errorf("index: verify: parent edge to %d out of range", p)
			}
			if i > 0 && ps[i-1] >= p {
				return fmt.Errorf("index: verify: node %d parent list not strictly ascending", v)
			}
			found := false
			for _, c := range fz.Children(p) {
				if int(c) == v {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("index: verify: parent edge %d->%d has no child counterpart", p, v)
			}
		}
	}
	return nil
}

// verifyLabelBuckets checks the per-label node ranges against the Labels
// array: ascending within a bucket, correct label, and full coverage.
func (fz *Frozen) verifyLabelBuckets() error {
	n := fz.NumNodes()
	total := 0
	for l := 0; l < fz.data.NumLabels(); l++ {
		bucket := fz.NodesWithLabel(graph.LabelID(l))
		total += len(bucket)
		for i, v := range bucket {
			if v < 0 || int(v) >= n {
				return fmt.Errorf("index: verify: label %d bucket references node %d out of range", l, v)
			}
			if fz.labels[v] != graph.LabelID(l) {
				return fmt.Errorf("index: verify: label %d bucket contains node %d labeled %d", l, v, fz.labels[v])
			}
			if i > 0 && bucket[i-1] >= v {
				return fmt.Errorf("index: verify: label %d bucket not strictly ascending", l)
			}
		}
	}
	if total != n {
		return fmt.Errorf("index: verify: label buckets cover %d nodes, snapshot has %d", total, n)
	}
	return nil
}

// sortDedupFrozenIDs sorts ids ascending and removes duplicates in place.
func sortDedupFrozenIDs(ids []FrozenID) []FrozenID {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	w := 0
	for i, v := range ids {
		if i > 0 && v == ids[w-1] {
			continue
		}
		ids[w] = v
		w++
	}
	return ids[:w]
}
