package index

import (
	"strings"
	"testing"

	"mrx/internal/graph"
	"mrx/internal/gtest"
	"mrx/internal/partition"
)

func freezeChecked(t *testing.T, ig *Graph) *Frozen {
	t.Helper()
	fz := ig.Freeze()
	if err := fz.CheckAgainst(ig); err != nil {
		t.Fatalf("CheckAgainst after Freeze: %v", err)
	}
	return fz
}

func TestFreezeBasics(t *testing.T) {
	g := graph.PaperFigure1()
	ig := a0(g)
	fz := freezeChecked(t, ig)

	if fz.NumNodes() != ig.NumNodes() || fz.NumEdges() != ig.NumEdges() {
		t.Fatalf("frozen %d/%d nodes/edges, mutable %d/%d",
			fz.NumNodes(), fz.NumEdges(), ig.NumNodes(), ig.NumEdges())
	}
	if fz.Label(fz.Root()) != ig.Root().Label() {
		t.Error("root label diverges")
	}
	for v := 0; v < fz.NumNodes(); v++ {
		id := FrozenID(v)
		ext := fz.Extent(id)
		if len(ext) != fz.Size(id) {
			t.Fatalf("node %d: Size %d but extent %v", v, fz.Size(id), ext)
		}
		for i := 1; i < len(ext); i++ {
			if ext[i-1] >= ext[i] {
				t.Fatalf("node %d extent not strictly ascending: %v", v, ext)
			}
		}
		for _, o := range ext {
			if fz.NodeOf(o) != id {
				t.Fatalf("NodeOf(%d)=%d, want %d", o, fz.NodeOf(o), id)
			}
		}
	}
	person, _ := g.LabelIDOf("person")
	if got, want := fz.CountLabel(person), ig.CountLabel(person); got != want {
		t.Errorf("CountLabel(person)=%d, mutable %d", got, want)
	}
	st, mt := fz.ComputeStats(), ig.ComputeStats()
	if st != mt {
		t.Errorf("stats diverge: frozen %+v mutable %+v", st, mt)
	}
}

func TestFreezeAfterSplits(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := gtest.Random(seed, 120, 6, 0.3)
		ig := FromPartition(g, partition.KBisim(g, 2), func(partition.BlockID) int { return 2 })
		freezeChecked(t, ig)
	}
}

// A published Frozen must stay valid however its source graph is refined
// afterwards: freezing copies extents, it never aliases them.
func TestFrozenIndependentOfLaterSplits(t *testing.T) {
	g := graph.PaperFigure3()
	ig := a0(g)
	fz := ig.Freeze()
	var before strings.Builder
	if err := fz.WriteDOT(&before, "x", 16); err != nil {
		t.Fatal(err)
	}

	b, _ := g.LabelIDOf("b")
	bn := ig.NodesWithLabel(b)[0]
	ext := bn.Extent()
	ig.Split(bn, [][]graph.NodeID{ext[:2], ext[2:]}, []int{1, 1})

	var after strings.Builder
	if err := fz.WriteDOT(&after, "x", 16); err != nil {
		t.Fatal(err)
	}
	if before.String() != after.String() {
		t.Error("frozen snapshot changed after source graph was split")
	}
	if err := fz.CheckAgainst(ig); err == nil {
		t.Error("CheckAgainst should fail against the mutated source")
	}
	if err := ig.Freeze().CheckAgainst(ig); err != nil {
		t.Errorf("re-freeze after split: %v", err)
	}
}

func TestThawRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := gtest.Random(seed, 80, 5, 0.25)
		ig := FromPartition(g, partition.KBisim(g, 2), func(partition.BlockID) int { return 2 })
		fz := freezeChecked(t, ig)
		th := fz.Thaw()
		if err := th.Validate(true); err != nil {
			t.Fatalf("seed %d: thawed graph invalid: %v", seed, err)
		}
		// Thaw renumbers densely, so its own freeze must match the original
		// snapshot node for node.
		if err := th.Freeze().CheckAgainst(th); err != nil {
			t.Fatalf("seed %d: refreeze of thaw: %v", seed, err)
		}
		if th.NumNodes() != fz.NumNodes() || th.NumEdges() != fz.NumEdges() {
			t.Fatalf("seed %d: thaw size diverges", seed)
		}
	}
}

// FrozenFromExtents (the persistence fast path, flat-array CSR wiring) must
// produce exactly what freezing the equivalent mutable graph produces.
func TestFrozenFromExtentsEquivalence(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := gtest.Random(seed, 100, 6, 0.3)
		ig := FromPartition(g, partition.KBisim(g, 3), func(partition.BlockID) int { return 3 })
		fz := freezeChecked(t, ig)

		var extents [][]graph.NodeID
		var ks []int
		ig.ForEachNode(func(n *Node) {
			extents = append(extents, n.Extent())
			ks = append(ks, n.K())
		})
		fast, err := FrozenFromExtents(g, extents, ks)
		if err != nil {
			t.Fatalf("seed %d: FrozenFromExtents: %v", seed, err)
		}
		if err := fast.CheckP3(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		if fast.NumNodes() != fz.NumNodes() || fast.NumEdges() != fz.NumEdges() {
			t.Fatalf("seed %d: fast %d/%d, freeze %d/%d", seed,
				fast.NumNodes(), fast.NumEdges(), fz.NumNodes(), fz.NumEdges())
		}
		for v := 0; v < fz.NumNodes(); v++ {
			id := FrozenID(v)
			if fast.K(id) != fz.K(id) || fast.Label(id) != fz.Label(id) {
				t.Fatalf("seed %d node %d: k/label diverge", seed, v)
			}
			if !equalNodeIDs(fast.Extent(id), fz.Extent(id)) {
				t.Fatalf("seed %d node %d: extents diverge", seed, v)
			}
			if !equalFrozenIDs(fast.Children(id), fz.Children(id)) {
				t.Fatalf("seed %d node %d: children diverge: %v vs %v",
					seed, v, fast.Children(id), fz.Children(id))
			}
			if !equalFrozenIDs(fast.Parents(id), fz.Parents(id)) {
				t.Fatalf("seed %d node %d: parents diverge", seed, v)
			}
		}
		for l := 0; l < g.NumLabels(); l++ {
			if !equalFrozenIDs(fast.NodesWithLabel(graph.LabelID(l)), fz.NodesWithLabel(graph.LabelID(l))) {
				t.Fatalf("seed %d label %d: buckets diverge", seed, l)
			}
		}
	}
}

func equalFrozenIDs(a, b []FrozenID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFrozenFromExtentsRejects(t *testing.T) {
	g := graph.PaperFigure1()
	ig := a0(g)
	var extents [][]graph.NodeID
	var ks []int
	ig.ForEachNode(func(n *Node) {
		extents = append(extents, n.Extent())
		ks = append(ks, n.K())
	})

	if _, err := FrozenFromExtents(g, extents, ks[:len(ks)-1]); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FrozenFromExtents(g, extents[:len(extents)-1], ks[:len(ks)-1]); err == nil {
		t.Error("non-covering extents accepted")
	}
	dup := append(append([][]graph.NodeID(nil), extents...), extents[0])
	if _, err := FrozenFromExtents(g, dup, append(append([]int(nil), ks...), 0)); err == nil {
		t.Error("overlapping extents accepted")
	}
}

func TestCheckP3(t *testing.T) {
	g := graph.PaperFigure1()
	ig := a0(g)
	var extents [][]graph.NodeID
	var ks []int
	ig.ForEachNode(func(n *Node) {
		extents = append(extents, n.Extent())
		ks = append(ks, 0)
	})
	// Raise one non-root node's k to 5: its parent keeps k=0 < 5-1.
	root := ig.Root()
	for i, ext := range extents {
		if ext[0] != root.Extent()[0] {
			ks[i] = 5
			break
		}
	}
	fz, err := FrozenFromExtents(g, extents, ks)
	if err != nil {
		t.Fatal(err)
	}
	if err := fz.CheckP3(); err == nil {
		t.Error("P3 violation not detected")
	}
}

func TestVersionSemantics(t *testing.T) {
	g := graph.PaperFigure3()
	ig := a0(g)
	v0 := ig.Version()

	b, _ := g.LabelIDOf("b")
	bn := ig.NodesWithLabel(b)[0]
	ig.SetK(bn, bn.K()) // no-op: k unchanged
	if ig.Version() != v0 {
		t.Error("no-op SetK bumped the version")
	}
	ig.SetK(bn, bn.K()+1)
	if ig.Version() == v0 {
		t.Error("SetK change did not bump the version")
	}
	v1 := ig.Version()

	ext := bn.Extent()
	ig.Split(bn, [][]graph.NodeID{ext[:3], ext[3:]}, []int{1, 1})
	if ig.Version() <= v1 {
		t.Error("Split did not bump the version")
	}

	cl := ig.Clone()
	if cl.Version() != ig.Version() {
		t.Error("Clone did not preserve the version")
	}
	if got := ig.Freeze().SourceVersion(); got != ig.Version() {
		t.Errorf("SourceVersion=%d, graph at %d", got, ig.Version())
	}
}

// Two identical build sequences must produce byte-identical DOT output, and
// the frozen snapshot's DOT must match its source graph's — the public
// enumeration determinism the frozen read path guarantees by construction.
func TestDOTDeterminism(t *testing.T) {
	build := func(seed int64) (*Graph, string) {
		g := gtest.Random(seed, 90, 6, 0.3)
		ig := FromPartition(g, partition.KBisim(g, 2), func(partition.BlockID) int { return 2 })
		var sb strings.Builder
		if err := ig.WriteDOT(&sb, "d", 8); err != nil {
			t.Fatal(err)
		}
		return ig, sb.String()
	}
	for seed := int64(0); seed < 3; seed++ {
		ig1, dot1 := build(seed)
		_, dot2 := build(seed)
		if dot1 != dot2 {
			t.Fatalf("seed %d: two identical builds render different DOT", seed)
		}
		var fdot strings.Builder
		if err := ig1.Freeze().WriteDOT(&fdot, "d", 8); err != nil {
			t.Fatal(err)
		}
		if fdot.String() != dot1 {
			t.Fatalf("seed %d: frozen DOT differs from mutable DOT", seed)
		}
		var cdot strings.Builder
		if err := ig1.Clone().WriteDOT(&cdot, "d", 8); err != nil {
			t.Fatal(err)
		}
		if cdot.String() != dot1 {
			t.Fatalf("seed %d: clone DOT differs from original", seed)
		}
	}
}
