package index

import (
	"fmt"

	"mrx/internal/graph"
	"mrx/internal/partition"
)

// Validate checks the structural invariants of the index graph:
//
//   - the live extents are a disjoint cover of the data nodes and agree with
//     the data-node mapping;
//   - every extent is label-homogeneous and matches the node's label;
//   - P2: index edges correspond exactly to data edges between extents;
//   - P3: for every edge (u, v), u.k ≥ v.k − 1;
//   - node and edge counters match reality.
//
// With checkBisim set, it additionally verifies P1 — every extent is
// k-bisimilar for the node's k — by computing k-bisimulations of the data
// graph up to the maximum k in use. This is expensive and intended for tests.
func (ig *Graph) Validate(checkBisim bool) error {
	seen := make(map[graph.NodeID]NodeID)
	live := 0
	for _, n := range ig.nodes {
		if n == nil || n.dead {
			continue
		}
		live++
		if len(n.extent) == 0 {
			return fmt.Errorf("node %d: empty extent", n.id)
		}
		if n.k < 0 {
			return fmt.Errorf("node %d: negative k %d", n.id, n.k)
		}
		for i, o := range n.extent {
			if i > 0 && n.extent[i-1] >= o {
				return fmt.Errorf("node %d: extent not sorted/unique", n.id)
			}
			if prev, dup := seen[o]; dup {
				return fmt.Errorf("data node %d in extents of %d and %d", o, prev, n.id)
			}
			seen[o] = n.id
			if ig.nodeOf[o] != n.id {
				return fmt.Errorf("nodeOf[%d]=%d, want %d", o, ig.nodeOf[o], n.id)
			}
			if ig.data.Label(o) != n.label {
				return fmt.Errorf("node %d: mixed labels in extent", n.id)
			}
		}
		if _, ok := ig.byLabel[n.label][n.id]; !ok {
			return fmt.Errorf("node %d missing from label bucket", n.id)
		}
	}
	if live != ig.liveNodes {
		return fmt.Errorf("liveNodes=%d, actual %d", ig.liveNodes, live)
	}
	if len(seen) != ig.data.NumNodes() {
		return fmt.Errorf("extents cover %d of %d data nodes", len(seen), ig.data.NumNodes())
	}

	// P2 and edge-count: recompute the edge set from the data graph.
	type pair struct{ from, to NodeID }
	wantEdges := make(map[pair]struct{})
	for v := 0; v < ig.data.NumNodes(); v++ {
		from := ig.nodeOf[v]
		for _, c := range ig.data.Children(graph.NodeID(v)) {
			wantEdges[pair{from, ig.nodeOf[c]}] = struct{}{}
		}
	}
	gotEdges := 0
	for _, n := range ig.nodes {
		if n == nil || n.dead {
			continue
		}
		for cid := range n.children {
			c := ig.nodes[cid]
			if c == nil || c.dead {
				return fmt.Errorf("edge %d->%d targets dead node", n.id, cid)
			}
			if _, ok := wantEdges[pair{n.id, cid}]; !ok {
				return fmt.Errorf("spurious index edge %d->%d", n.id, cid)
			}
			if _, ok := c.parents[n.id]; !ok {
				return fmt.Errorf("edge %d->%d missing reverse link", n.id, cid)
			}
			gotEdges++
		}
		for pid := range n.parents {
			p := ig.nodes[pid]
			if p == nil || p.dead {
				return fmt.Errorf("parent link %d->%d from dead node", pid, n.id)
			}
			if _, ok := p.children[n.id]; !ok {
				return fmt.Errorf("parent link %d->%d missing forward edge", pid, n.id)
			}
			// P3.
			if p.k < n.k-1 {
				return fmt.Errorf("P3 violated: parent %d(k=%d) of %d(k=%d)", pid, p.k, n.id, n.k)
			}
		}
	}
	if gotEdges != len(wantEdges) {
		return fmt.Errorf("index has %d edges, data implies %d", gotEdges, len(wantEdges))
	}
	if gotEdges != ig.liveEdges {
		return fmt.Errorf("liveEdges=%d, actual %d", ig.liveEdges, gotEdges)
	}

	if checkBisim {
		// Compute k-bisimulations lazily and stop at the fixpoint, so nodes
		// with very large k (e.g. the 1-index's KInfinity) stay cheap.
		parts := []*partition.Partition{partition.ByLabel(ig.data)}
		stable := false
		partAt := func(k int) *partition.Partition {
			for len(parts) <= k && !stable {
				next, changed := partition.RefineOnce(ig.data, parts[len(parts)-1], nil)
				if !changed {
					stable = true
					break
				}
				parts = append(parts, next)
			}
			if k >= len(parts) {
				return parts[len(parts)-1]
			}
			return parts[k]
		}
		for _, n := range ig.nodes {
			if n == nil || n.dead || len(n.extent) < 2 {
				continue
			}
			p := partAt(n.k)
			first := p.BlockOf(n.extent[0])
			for _, o := range n.extent[1:] {
				if p.BlockOf(o) != first {
					return fmt.Errorf("P1 violated: node %d (k=%d) extent not %d-bisimilar (nodes %d, %d)",
						n.id, n.k, n.k, n.extent[0], o)
				}
			}
		}
	}
	return nil
}

// Stats summarizes an index graph for reporting.
type Stats struct {
	Nodes    int
	Edges    int
	MaxK     int
	AvgK     float64
	MaxExt   int
	DataSize int
}

// ComputeStats gathers summary statistics.
func (ig *Graph) ComputeStats() Stats {
	s := Stats{Nodes: ig.liveNodes, Edges: ig.liveEdges, DataSize: ig.data.NumNodes()}
	sumK := 0
	ig.ForEachNode(func(n *Node) {
		if n.k > s.MaxK {
			s.MaxK = n.k
		}
		if len(n.extent) > s.MaxExt {
			s.MaxExt = len(n.extent)
		}
		sumK += n.k
	})
	if ig.liveNodes > 0 {
		s.AvgK = float64(sumK) / float64(ig.liveNodes)
	}
	return s
}
