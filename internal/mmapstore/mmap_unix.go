//go:build unix

package mmapstore

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mapFile maps f read-only. The second result reports that the bytes are a
// real mapping (and must eventually go through munmapBytes).
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	if size > math.MaxInt {
		return nil, false, fmt.Errorf("file of %d bytes exceeds the address space", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

func munmapBytes(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}
