package mmapstore

import (
	"encoding/binary"
	"unsafe"
)

// hostOrder is the byte order of the machine this process runs on, probed
// once at startup.
var hostOrder binary.ByteOrder = probeHostOrder()

func probeHostOrder() binary.ByteOrder {
	x := uint16(1)
	if *(*byte)(unsafe.Pointer(&x)) == 1 {
		return binary.LittleEndian
	}
	return binary.BigEndian
}

// viewInt32 reinterprets b as a []T without copying. Callers must have
// established that len(b) is a multiple of 4, that b is 4-byte-aligned, and
// that the file's byte order matches the host's; int32Section is the only
// caller and checks all three, falling back to decodeInt32 otherwise.
func viewInt32[T ~int32](b []byte) []T {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), len(b)/4)
}

// bytesOf reinterprets an int32-kind slice as its raw bytes in host order,
// the writer's zero-copy complement of viewInt32.
func bytesOf[T ~int32](xs []T) []byte {
	if len(xs) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&xs[0])), len(xs)*4)
}

// aligned4 reports whether b's backing memory starts on a 4-byte boundary.
func aligned4(b []byte) bool {
	return len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%4 == 0
}

// decodeInt32 copies b into a fresh []T, interpreting each 4-byte group in
// the given order — the safe fallback for unaligned or foreign-endian
// sections.
func decodeInt32[T ~int32](b []byte, order binary.ByteOrder) []T {
	out := make([]T, len(b)/4)
	for i := range out {
		out[i] = T(int32(order.Uint32(b[i*4:])))
	}
	return out
}

// int32Section materializes one raw int32 section: a zero-copy view of the
// underlying bytes when the layout permits (host byte order, 4-byte-aligned,
// not forced to copy), a decoding copy otherwise. The caller has already
// validated that len(b) == 4*count.
func int32Section[T ~int32](b []byte, order binary.ByteOrder, forceCopy bool) []T {
	if !forceCopy && order == hostOrder && aligned4(b) {
		return viewInt32[T](b)
	}
	return decodeInt32[T](b, order)
}

// encodeInt32 appends xs to dst in the given order, used when the writer
// targets a byte order different from the host's (bytesOf covers the
// matching-order case without a copy).
func encodeInt32[T ~int32](dst []byte, xs []T, order binary.ByteOrder) []byte {
	var buf [4]byte
	for _, x := range xs {
		order.PutUint32(buf[:], uint32(int32(x)))
		dst = append(dst, buf[:]...)
	}
	return dst
}
