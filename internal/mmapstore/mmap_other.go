//go:build !unix

package mmapstore

import (
	"io"
	"os"
)

// mapFile falls back to reading the whole file into memory on platforms
// without a usable mmap: the format and every reader code path stay
// identical, only the O(1)-startup property is lost.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, false, err
	}
	return data, false, nil
}

func munmapBytes(b []byte) error { return nil }
