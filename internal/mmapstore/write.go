package mmapstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"mrx/internal/core"
	"mrx/internal/graph"
)

// WriteOptions configures snapshot serialization.
type WriteOptions struct {
	// CompactExtents encodes extent arenas as varuint deltas instead of raw
	// int32 arrays, roughly halving the dominant section at the price of a
	// linear decode of the arenas (only) at open time. Everything else still
	// serves zero-copy from the mapping.
	CompactExtents bool

	// BigEndian forces big-endian output regardless of the host order. The
	// default writes the host's byte order, which is what makes zero-copy
	// reads possible; this option exists so tests can exercise the reader's
	// foreign-endian decoding fallback on any machine.
	BigEndian bool

	// OnSection, if set, is called immediately before each section payload
	// is written, identifying it by component and section kind. Tests use
	// it to pace or interrupt writes mid-file.
	OnSection func(comp, kind int)
}

func (o WriteOptions) order() binary.ByteOrder {
	if o.BigEndian {
		return binary.BigEndian
	}
	return hostOrder
}

// section pairs a directory entry with its encoded payload during writing.
type section struct {
	e       dirEntry
	payload []byte
}

// addSection encodes one int32-kind array as a raw section — a zero-copy
// byte view when the target order is the host's, an encoding copy otherwise
// — and appends it with its checksum and count filled in.
func addSection[T ~int32](sections []section, comp, kind int, xs []T, order binary.ByteOrder) []section {
	var b []byte
	if order == hostOrder {
		b = bytesOf(xs)
	} else {
		b = encodeInt32(nil, xs, order)
	}
	return append(sections, section{
		e: dirEntry{
			kind: uint32(kind), comp: uint32(comp), enc: encRaw32,
			crc: crc32.Checksum(b, castagnoli), count: uint64(len(xs)), size: uint64(len(b)),
		},
		payload: b,
	})
}

// Write serializes fm in the mmapstore format. The output is deterministic
// for a given snapshot and options: re-encoding a loaded snapshot
// reproduces the original file byte for byte, which the differential tests
// use to prove the mapped view carries exactly the in-memory state.
func Write(w io.Writer, fm *core.FrozenMStar, o WriteOptions) error {
	order := o.order()
	g := fm.Data()
	if fm.NumComponents() > maxComponents {
		return fmt.Errorf("mmapstore: %d components exceed format cap %d", fm.NumComponents(), maxComponents)
	}

	var sections []section
	for i := 0; i < fm.NumComponents(); i++ {
		a := fm.Component(i).Arrays()
		sections = addSection(sections, i, secRetired, a.Retired, order)
		sections = addSection(sections, i, secKs, a.Ks, order)
		sections = addSection(sections, i, secLabels, a.Labels, order)
		sections = addSection(sections, i, secExtentStart, a.ExtentStart, order)
		if o.CompactExtents {
			b := varDeltaEncode(a.ExtentStart, a.ExtentArena)
			sections = append(sections, section{
				e: dirEntry{
					kind: secExtentArena, comp: uint32(i), enc: encVarDelta,
					crc: crc32.Checksum(b, castagnoli), count: uint64(len(a.ExtentArena)), size: uint64(len(b)),
				},
				payload: b,
			})
		} else {
			sections = addSection(sections, i, secExtentArena, a.ExtentArena, order)
		}
		sections = addSection(sections, i, secChildStart, a.ChildStart, order)
		sections = addSection(sections, i, secChildren, a.Children, order)
		sections = addSection(sections, i, secParentStart, a.ParentStart, order)
		sections = addSection(sections, i, secParents, a.Parents, order)
		sections = addSection(sections, i, secLabelStart, a.LabelStart, order)
		sections = addSection(sections, i, secLabelNodes, a.LabelNodes, order)
		sections = addSection(sections, i, secNodeOf, a.NodeOf, order)
	}

	// Lay the payloads out after the directory, each 64-byte-aligned.
	dirBytes := make([]byte, len(sections)*dirEntrySize)
	cur := uint64(headerSize + len(dirBytes))
	for i := range sections {
		sections[i].e.off = align64(cur)
		cur = sections[i].e.off + sections[i].e.size
	}
	fileSize := cur
	for i, s := range sections {
		putDirEntry(dirBytes[i*dirEntrySize:], order, s.e)
	}

	var hdr [headerSize]byte
	copy(hdr[0:7], magic)
	hdr[7] = formatVersion
	order.PutUint32(hdr[8:12], byteOrderMark)
	order.PutUint32(hdr[12:16], 0) // flags, reserved
	order.PutUint64(hdr[16:24], fileSize)
	order.PutUint64(hdr[24:32], uint64(g.NumNodes()))
	order.PutUint64(hdr[32:40], uint64(g.NumEdges()))
	order.PutUint64(hdr[40:48], uint64(g.NumLabels()))
	order.PutUint32(hdr[48:52], uint32(fm.NumComponents()))
	order.PutUint32(hdr[52:56], uint32(len(sections)))
	order.PutUint32(hdr[56:60], crc32.Checksum(dirBytes, castagnoli))

	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("mmapstore: write header: %w", err)
	}
	if _, err := bw.Write(dirBytes); err != nil {
		return fmt.Errorf("mmapstore: write directory: %w", err)
	}
	pos := uint64(headerSize + len(dirBytes))
	var pad [payloadAlign]byte
	for _, s := range sections {
		if s.e.off > pos {
			if _, err := bw.Write(pad[:s.e.off-pos]); err != nil {
				return fmt.Errorf("mmapstore: write padding: %w", err)
			}
			pos = s.e.off
		}
		if o.OnSection != nil {
			o.OnSection(int(s.e.comp), int(s.e.kind))
		}
		if _, err := bw.Write(s.payload); err != nil {
			return fmt.Errorf("mmapstore: write section %s: %w", s.e.name(), err)
		}
		pos += s.e.size
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("mmapstore: flush: %w", err)
	}
	return nil
}

// varDeltaEncode encodes the extent arena as uvarint deltas, with the
// running predecessor reset to zero at every extent boundary — the same
// scheme package store uses, made restorable section-locally by the start
// offsets stored alongside.
func varDeltaEncode(start []int32, arena []graph.NodeID) []byte {
	out := make([]byte, 0, len(arena)) // sorted small deltas mostly fit one byte
	var buf [binary.MaxVarintLen64]byte
	for i := 0; i+1 < len(start); i++ {
		prev := int64(0)
		for _, o := range arena[start[i]:start[i+1]] {
			n := binary.PutUvarint(buf[:], uint64(int64(o)-prev))
			out = append(out, buf[:n]...)
			prev = int64(o)
		}
	}
	return out
}
