package mmapstore

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"mrx/internal/core"
	"mrx/internal/graph"
)

// Snapshot is a loaded snapshot file together with the memory backing it.
// The FrozenMStar it exposes serves queries directly over that memory, so
// the backing must outlive every reader of the view. Two mechanisms ensure
// it:
//
//   - a GC cleanup attached to the FrozenMStar unmaps the file when the
//     view becomes unreachable — the republish lifecycle: an engine swaps
//     in a new generation, drops its reference, and the old mapping goes
//     away once in-flight queries drain (query results copy extents out of
//     the mapping, so answers never alias it);
//   - Close unmaps immediately, for callers that own the lifecycle and
//     know no query is in flight (a server shutting down). After Close the
//     FrozenMStar must not be used.
type Snapshot struct {
	fm      *core.FrozenMStar
	data    []byte
	mapped  bool
	cleanup runtime.Cleanup

	once     sync.Once
	closeErr error
}

// FrozenMStar returns the loaded view. It stays valid until Close (or, if
// Close is never called, for as long as it is reachable).
func (s *Snapshot) FrozenMStar() *core.FrozenMStar { return s.fm }

// Mapped reports whether the snapshot serves from a memory-mapped file
// (false on platforms without mmap support or for OpenBytes).
func (s *Snapshot) Mapped() bool { return s.mapped }

// SizeBytes returns the size of the backing file or buffer.
func (s *Snapshot) SizeBytes() int64 { return int64(len(s.data)) }

// Close releases the mapping. The caller must guarantee that no query is
// running against the view and that it will not be queried again; the
// GC-driven cleanup path (simply dropping all references) is the safe
// alternative when in-flight readers may exist. Close is idempotent.
func (s *Snapshot) Close() error {
	s.once.Do(func() {
		if s.mapped {
			s.cleanup.Stop()
			s.closeErr = munmapBytes(s.data)
		}
		s.data = nil
	})
	return s.closeErr
}

// Open maps the snapshot file at path and wires a FrozenMStar over the
// mapping (on platforms without mmap the file is read into memory
// instead). By default the file is fully verified — checksums plus a deep
// structural walk — before a view is returned; Options.Trusted reduces
// open to the O(1) parse for files the process published itself.
func Open(path string, g *graph.Graph, o Options) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mmapstore: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("mmapstore: %w", err)
	}
	size := st.Size()
	if size < headerSize {
		return nil, fmt.Errorf("mmapstore: %s is %d bytes, not a snapshot", path, size)
	}
	const maxMap = 1 << 46
	if size > maxMap {
		return nil, fmt.Errorf("mmapstore: %s is %d bytes, beyond the %d mapping cap", path, size, int64(maxMap))
	}
	data, mapped, err := mapFile(f, size)
	if err != nil {
		return nil, fmt.Errorf("mmapstore: map %s: %w", path, err)
	}
	fm, err := parse(data, g, o)
	if err != nil {
		if mapped {
			_ = munmapBytes(data)
		}
		return nil, err
	}
	s := &Snapshot{fm: fm, data: data, mapped: mapped}
	if mapped {
		s.cleanup = runtime.AddCleanup(fm, func(b []byte) { _ = munmapBytes(b) }, data)
	}
	return s, nil
}

// OpenBytes wires a FrozenMStar over an in-memory snapshot image. The
// buffer must not be modified while the view is in use. Tests and the
// differential harness use this to exercise the full parse/verify path
// without a filesystem.
func OpenBytes(data []byte, g *graph.Graph, o Options) (*Snapshot, error) {
	fm, err := parse(data, g, o)
	if err != nil {
		return nil, err
	}
	return &Snapshot{fm: fm, data: data}, nil
}

// WriteFile serializes fm to path, syncing before close. Prefer Publish for
// files a reader may open concurrently.
func WriteFile(path string, fm *core.FrozenMStar, o WriteOptions) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("mmapstore: %w", err)
	}
	if err := Write(f, fm, o); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("mmapstore: sync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("mmapstore: close %s: %w", path, err)
	}
	return nil
}

// Publish atomically replaces path with a snapshot of fm: the bytes are
// written to a temporary file in the same directory, synced to stable
// storage, and renamed over path, then the directory itself is synced. A
// reader (or a crash) at any instant sees either the complete old file or
// the complete new file, never a torn mixture; concurrent mappings of the
// old file stay valid because the rename only unlinks the name, not the
// inode. On error the temporary file is removed and path is untouched.
func Publish(path string, fm *core.FrozenMStar, o WriteOptions) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("mmapstore: publish %s: %w", path, err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := Write(tmp, fm, o); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("mmapstore: publish %s: sync: %w", path, err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("mmapstore: publish %s: close: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("mmapstore: publish %s: %w", path, err)
	}
	if d, err := os.Open(dir); err == nil {
		// Sync the directory so the rename itself is durable; best effort on
		// filesystems that reject directory fsync.
		_ = d.Sync()
		d.Close()
	}
	return nil
}
