package mmapstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"mrx/internal/core"
	"mrx/internal/graph"
	"mrx/internal/index"
)

// Options configures snapshot loading.
type Options struct {
	// Trusted skips the per-section checksums and the deep structural walk
	// (index.Frozen.Verify, VerifyNesting), keeping open time O(1) in index
	// size. Reserve it for files this process (or its deployment pipeline)
	// published itself — the engine reopening its own atomic publish, the
	// cold-start path of an operator-controlled index file. Untrusted input
	// must go through the default full verification: parsing alone only
	// proves the sections are in-bounds, not that their contents are sane.
	Trusted bool

	// ForceCopy decodes every section onto the heap even when a zero-copy
	// view would be possible. Tests use it to pin down view/decode
	// equivalence; it is also the escape hatch if a platform's unaligned-
	// access behavior is ever in doubt.
	ForceCopy bool

	// MStar carries the query-evaluation options (strategy, MaxK,
	// parallelism) for the loaded view. They are serving configuration, not
	// index state, so the format does not store them.
	MStar core.MStarOptions
}

// parse validates data as an mmapstore snapshot over g and wires a
// FrozenMStar directly over it. Raw int32 sections become zero-copy typed
// views when the file's byte order matches the host's and the section is
// 4-byte-aligned; otherwise (foreign-endian file, unaligned buffer,
// ForceCopy) they are decoded onto the heap. Var-delta extent arenas are
// always decoded. Every offset and size is bounds-checked against the
// buffer before any access, so no input — truncated, bit-flipped, or
// adversarial — can cause a panic or an out-of-bounds read.
func parse(data []byte, g *graph.Graph, o Options) (*core.FrozenMStar, error) {
	h, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	if h.dataNodes != uint64(g.NumNodes()) || h.dataEdges != uint64(g.NumEdges()) ||
		h.dataLabels != uint64(g.NumLabels()) {
		return nil, fmt.Errorf("mmapstore: snapshot built over %d nodes/%d edges/%d labels, graph has %d/%d/%d",
			h.dataNodes, h.dataEdges, h.dataLabels, g.NumNodes(), g.NumEdges(), g.NumLabels())
	}
	ents, err := parseDirectory(data, h)
	if err != nil {
		return nil, err
	}
	if !o.Trusted {
		for _, e := range ents {
			if got := crc32.Checksum(data[e.off:e.off+e.size], castagnoli); got != e.crc {
				return nil, fmt.Errorf("mmapstore: section %s checksum mismatch", e.name())
			}
		}
	}

	comps := make([]*index.Frozen, h.components)
	for i := range comps {
		fz, err := buildComponent(data, ents[i*numSections:(i+1)*numSections], g, h.order, o.ForceCopy)
		if err != nil {
			return nil, fmt.Errorf("mmapstore: component I%d: %w", i, err)
		}
		comps[i] = fz
	}
	fm, err := core.FrozenMStarFromComponents(g, comps, o.MStar)
	if err != nil {
		return nil, fmt.Errorf("mmapstore: %w", err)
	}
	if !o.Trusted {
		for i, fz := range comps {
			if err := fz.Verify(); err != nil {
				return nil, fmt.Errorf("mmapstore: component I%d: %w", i, err)
			}
		}
		if err := fm.VerifyNesting(); err != nil {
			return nil, fmt.Errorf("mmapstore: %w", err)
		}
	}
	return fm, nil
}

// parseHeader decodes and validates the fixed 64-byte header, detecting the
// file's byte order from the raw bytes of the byte-order mark.
func parseHeader(data []byte) (header, error) {
	var h header
	if len(data) < headerSize {
		return h, fmt.Errorf("mmapstore: %d bytes, need at least a %d-byte header", len(data), headerSize)
	}
	if string(data[0:7]) != magic {
		return h, fmt.Errorf("mmapstore: bad magic %q", data[0:7])
	}
	if data[7] != formatVersion {
		return h, fmt.Errorf("mmapstore: format version %d, this reader handles %d", data[7], formatVersion)
	}
	switch {
	case bytes.Equal(data[8:12], []byte{0x04, 0x03, 0x02, 0x01}):
		h.order = binary.LittleEndian
	case bytes.Equal(data[8:12], []byte{0x01, 0x02, 0x03, 0x04}):
		h.order = binary.BigEndian
	default:
		return h, fmt.Errorf("mmapstore: bad byte-order mark % x", data[8:12])
	}
	h.flags = h.order.Uint32(data[12:16])
	h.fileSize = h.order.Uint64(data[16:24])
	h.dataNodes = h.order.Uint64(data[24:32])
	h.dataEdges = h.order.Uint64(data[32:40])
	h.dataLabels = h.order.Uint64(data[40:48])
	h.components = h.order.Uint32(data[48:52])
	h.sections = h.order.Uint32(data[52:56])
	h.dirCRC = h.order.Uint32(data[56:60])
	if h.fileSize != uint64(len(data)) {
		return h, fmt.Errorf("mmapstore: header says %d bytes, file has %d", h.fileSize, len(data))
	}
	if h.components == 0 || h.components > maxComponents {
		return h, fmt.Errorf("mmapstore: implausible component count %d", h.components)
	}
	if h.sections != h.components*numSections {
		return h, fmt.Errorf("mmapstore: %d sections for %d components, want %d",
			h.sections, h.components, h.components*numSections)
	}
	return h, nil
}

// parseDirectory decodes and validates every directory entry: the checksum
// over the directory block itself, the fixed (component, kind) order, and
// for each payload its alignment, bounds, encoding, and count/size
// agreement. After it returns, data[e.off:e.off+e.size] is in-bounds for
// every entry.
func parseDirectory(data []byte, h header) ([]dirEntry, error) {
	dirLen := uint64(h.sections) * dirEntrySize
	if uint64(len(data)) < headerSize+dirLen {
		return nil, fmt.Errorf("mmapstore: file truncated inside the section directory")
	}
	dir := data[headerSize : headerSize+dirLen]
	if got := crc32.Checksum(dir, castagnoli); got != h.dirCRC {
		return nil, fmt.Errorf("mmapstore: directory checksum mismatch")
	}
	ents := make([]dirEntry, h.sections)
	prevEnd := headerSize + dirLen
	for i := range ents {
		e := getDirEntry(dir[i*dirEntrySize:], h.order)
		if e.comp != uint32(i/numSections) || e.kind != uint32(i%numSections) {
			return nil, fmt.Errorf("mmapstore: directory entry %d is %s, want I%d/%s",
				i, e.name(), i/numSections, sectionName[i%numSections])
		}
		if e.off%payloadAlign != 0 {
			return nil, fmt.Errorf("mmapstore: section %s at unaligned offset %d", e.name(), e.off)
		}
		if e.off < prevEnd || e.off > uint64(len(data)) || e.size > uint64(len(data))-e.off {
			return nil, fmt.Errorf("mmapstore: section %s [%d,+%d) out of bounds", e.name(), e.off, e.size)
		}
		if e.count > maxSaneCount {
			return nil, fmt.Errorf("mmapstore: section %s count %d exceeds sanity limit", e.name(), e.count)
		}
		switch e.enc {
		case encRaw32:
			if e.size != e.count*4 {
				return nil, fmt.Errorf("mmapstore: section %s has %d bytes for %d elements", e.name(), e.size, e.count)
			}
		case encVarDelta:
			if e.kind != secExtentArena {
				return nil, fmt.Errorf("mmapstore: section %s cannot be delta-encoded", e.name())
			}
			// Every arena member costs at least one encoded byte, so the
			// count a hostile directory claims is bounded by the payload it
			// actually brought — checked before the decoder allocates.
			if e.size < e.count {
				return nil, fmt.Errorf("mmapstore: section %s has %d bytes for %d elements", e.name(), e.size, e.count)
			}
		default:
			return nil, fmt.Errorf("mmapstore: section %s has unknown encoding %d", e.name(), e.enc)
		}
		// Counts that the header already determines are pinned here, before
		// anything is allocated or decoded.
		switch e.kind {
		case secExtentArena, secNodeOf:
			if e.count != h.dataNodes {
				return nil, fmt.Errorf("mmapstore: section %s has %d entries for %d data nodes", e.name(), e.count, h.dataNodes)
			}
		case secLabelStart:
			if e.count != h.dataLabels+1 {
				return nil, fmt.Errorf("mmapstore: section %s has %d offsets for %d labels", e.name(), e.count, h.dataLabels)
			}
		}
		prevEnd = e.off + e.size
		ents[i] = e
	}
	return ents, nil
}

// buildComponent wires one index.Frozen over a component's 12 sections.
func buildComponent(data []byte, ents []dirEntry, g *graph.Graph, order binary.ByteOrder, forceCopy bool) (*index.Frozen, error) {
	payload := func(kind int) []byte {
		e := ents[kind]
		return data[e.off : e.off+e.size]
	}
	// The arrays are assembled in one composite literal — never assigned
	// field by field — so the snapshot-immutability discipline (snapshotmut)
	// holds by construction: the value exists fully formed or not at all.
	extentStart := int32Section[int32](payload(secExtentStart), order, forceCopy)
	var arena []graph.NodeID
	if e := ents[secExtentArena]; e.enc == encVarDelta {
		var err error
		if arena, err = varDeltaDecode(payload(secExtentArena), extentStart, int(e.count)); err != nil {
			return nil, err
		}
	} else {
		arena = int32Section[graph.NodeID](payload(secExtentArena), order, forceCopy)
	}
	return index.FrozenFromArrays(g, index.FrozenArrays{
		Retired:     int32Section[index.NodeID](payload(secRetired), order, forceCopy),
		Ks:          int32Section[int32](payload(secKs), order, forceCopy),
		Labels:      int32Section[graph.LabelID](payload(secLabels), order, forceCopy),
		ExtentStart: extentStart,
		ExtentArena: arena,
		ChildStart:  int32Section[int32](payload(secChildStart), order, forceCopy),
		Children:    int32Section[index.FrozenID](payload(secChildren), order, forceCopy),
		ParentStart: int32Section[int32](payload(secParentStart), order, forceCopy),
		Parents:     int32Section[index.FrozenID](payload(secParents), order, forceCopy),
		LabelStart:  int32Section[int32](payload(secLabelStart), order, forceCopy),
		LabelNodes:  int32Section[index.FrozenID](payload(secLabelNodes), order, forceCopy),
		NodeOf:      int32Section[index.FrozenID](payload(secNodeOf), order, forceCopy),
	})
}

// varDeltaDecode reverses varDeltaEncode onto the heap. The start offsets
// may come straight from an unverified file, so every boundary is clamped
// before use; decoding errors out on truncation, trailing bytes, negative
// ranges, or values outside int32 — it never panics or reads outside b.
func varDeltaDecode(b []byte, start []int32, count int) ([]graph.NodeID, error) {
	out := make([]graph.NodeID, count)
	pos := 0
	for i := 0; i+1 < len(start); i++ {
		lo, hi := int(start[i]), int(start[i+1])
		if lo < 0 || hi < lo || hi > count {
			return nil, fmt.Errorf("extent %d spans [%d,%d) of a %d-entry arena", i, lo, hi, count)
		}
		prev := int64(0)
		for j := lo; j < hi; j++ {
			v, n := binary.Uvarint(b[pos:])
			if n <= 0 {
				return nil, fmt.Errorf("extent arena truncated at byte %d", pos)
			}
			pos += n
			prev += int64(v)
			if prev > math.MaxInt32 {
				return nil, fmt.Errorf("extent %d decodes data node %d beyond int32", i, prev)
			}
			out[j] = graph.NodeID(prev)
		}
	}
	if pos != len(b) {
		return nil, fmt.Errorf("extent arena has %d trailing bytes", len(b)-pos)
	}
	return out, nil
}
