// Package mmapstore persists frozen M*(k) snapshots in a page-aligned,
// offset-addressed binary format built to be memory-mapped and served with
// zero deserialization. Where package store streams varints through a
// decoder and rebuilds every array on the heap (load time linear in index
// size), mmapstore lays the exact flat arrays of index.Frozen out in the
// file — 64-byte-aligned, native byte order, addressed by a byte-offset
// section directory — so the reader can mmap the file and wire a
// core.FrozenMStar directly over the mapped bytes. Cold start is O(1) in
// index size: the kernel pages index data in on first touch, and an index
// larger than RAM serves from disk with the page cache as its buffer pool.
//
// File layout (all multi-byte fields in the file's byte order, which the
// reader detects from the byte-order mark):
//
//	offset 0    magic "mrxMM1\n" + format version byte
//	offset 8    64-byte header: byte-order mark, flags, file size,
//	            data-graph binding (nodes/edges/labels), component count,
//	            section count, directory checksum
//	offset 64   section directory: one 40-byte entry per section
//	            {kind, component, encoding, crc32c, element count,
//	             byte offset, byte size}
//	aligned     section payloads, each 64-byte-aligned, zero-padded
//
// Every component contributes the same 12 sections in a fixed order — the
// arrays of index.FrozenArrays, with each offset array directly before the
// arena it indexes so a decoding pass always has its boundaries. Payloads
// are either raw int32 arrays (zero-copy view candidates) or, for extent
// arenas written with CompactExtents, varuint deltas (decoded to the heap
// at open; everything else still serves from the mapping).
//
// Safety model: Open fully verifies untrusted files by default — directory
// and per-section checksums, then a deep structural walk
// (index.Frozen.Verify, FrozenMStar.VerifyNesting) — so a truncated,
// bit-flipped, or adversarial file is rejected with an error, never a
// panic, over-read, or silently wrong answer. Options.Trusted skips the
// checksums and the deep walk for files the process just published itself,
// keeping reopen O(1).
package mmapstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

const (
	magic         = "mrxMM1\n" // 7 bytes; followed by the version byte
	formatVersion = 1

	headerSize   = 64
	dirEntrySize = 40
	payloadAlign = 64

	// byteOrderMark is written as a uint32 in the file's byte order; the
	// reader inspects the raw bytes to learn that order.
	byteOrderMark = 0x01020304

	// maxComponents matches package store's cap on plausible component
	// counts (resolutions beyond this are nonsensical for M*(k)).
	maxComponents = 64

	// maxSaneCount caps any section's element count before allocation or
	// multiplication, so a hostile directory cannot provoke overflow or
	// over-allocation.
	maxSaneCount = 1 << 28
)

// Section kinds, in file order per component. ExtentStart precedes
// ExtentArena and LabelStart precedes LabelNodes so decoders always see an
// arena's boundaries first.
const (
	secRetired = iota
	secKs
	secLabels
	secExtentStart
	secExtentArena
	secChildStart
	secChildren
	secParentStart
	secParents
	secLabelStart
	secLabelNodes
	secNodeOf
	numSections
)

var sectionName = [numSections]string{
	"retired", "ks", "labels", "extent-start", "extent-arena",
	"child-start", "children", "parent-start", "parents",
	"label-start", "label-nodes", "node-of",
}

// Payload encodings.
const (
	encRaw32    = 0 // raw int32 array in the file's byte order
	encVarDelta = 1 // uvarint deltas, prev reset per extent (arenas only)
)

// castagnoli is the CRC-32C table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// header is the decoded 64-byte file header.
type header struct {
	order      binary.ByteOrder
	flags      uint32
	fileSize   uint64
	dataNodes  uint64
	dataEdges  uint64
	dataLabels uint64
	components uint32
	sections   uint32
	dirCRC     uint32
}

// dirEntry is one decoded 40-byte section-directory entry.
type dirEntry struct {
	kind  uint32
	comp  uint32
	enc   uint32
	crc   uint32
	count uint64
	off   uint64
	size  uint64
}

func (e dirEntry) name() string {
	if e.kind < numSections {
		return fmt.Sprintf("I%d/%s", e.comp, sectionName[e.kind])
	}
	return fmt.Sprintf("I%d/kind%d", e.comp, e.kind)
}

func putDirEntry(b []byte, order binary.ByteOrder, e dirEntry) {
	order.PutUint32(b[0:4], e.kind)
	order.PutUint32(b[4:8], e.comp)
	order.PutUint32(b[8:12], e.enc)
	order.PutUint32(b[12:16], e.crc)
	order.PutUint64(b[16:24], e.count)
	order.PutUint64(b[24:32], e.off)
	order.PutUint64(b[32:40], e.size)
}

func getDirEntry(b []byte, order binary.ByteOrder) dirEntry {
	return dirEntry{
		kind:  order.Uint32(b[0:4]),
		comp:  order.Uint32(b[4:8]),
		enc:   order.Uint32(b[8:12]),
		crc:   order.Uint32(b[12:16]),
		count: order.Uint64(b[16:24]),
		off:   order.Uint64(b[24:32]),
		size:  order.Uint64(b[32:40]),
	}
}

// align64 rounds n up to the next multiple of payloadAlign.
func align64(n uint64) uint64 {
	return (n + payloadAlign - 1) &^ uint64(payloadAlign-1)
}
