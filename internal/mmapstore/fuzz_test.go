package mmapstore

import (
	"bytes"
	"testing"

	"mrx/internal/core"
	"mrx/internal/graph"
	"mrx/internal/gtest"
	"mrx/internal/pathexpr"
)

// fuzzGraph is the fixed data graph the fuzz target loads against; a
// snapshot only has meaning relative to its data graph. It is kept tiny —
// snapshots of it are ~3KB — because the fuzz engine minimizes every
// coverage-increasing mutation, and minimization cost grows steeply with
// seed size (a checksummed format defeats trimming, so the minimizer runs
// its full budget).
func fuzzGraph() *graph.Graph { return gtest.Random(4, 14, 3, 0.25) }

func fuzzSnapshot(tb testing.TB, o WriteOptions) []byte {
	tb.Helper()
	g := fuzzGraph()
	ms := core.NewMStar(g)
	for _, s := range gtest.RandomWorkload(5, g, gtest.WorkloadOptions{Size: 6, MaxLen: 3}) {
		if e, err := pathexpr.Parse(s); err == nil &&
			!e.HasWildcard() && e.RequiredK() != pathexpr.Unbounded {
			ms.Support(e)
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, ms.Freeze(), o); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzMmapSnapshot feeds arbitrary bytes to the zero-copy snapshot loader
// in full-verification mode: truncated, bit-flipped, misaligned, or
// directory-scrambled inputs must produce an error — never a panic, an
// over-read, or an over-allocation. Anything accepted must be a completely
// valid snapshot: it re-encodes deterministically and the re-encoding is
// accepted again, loading to a byte-identical third encoding.
func FuzzMmapSnapshot(f *testing.F) {
	g := fuzzGraph()
	raw := fuzzSnapshot(f, WriteOptions{})
	f.Add(raw)
	f.Add(fuzzSnapshot(f, WriteOptions{CompactExtents: true}))
	f.Add(fuzzSnapshot(f, WriteOptions{BigEndian: true}))
	f.Add(raw[:len(raw)/2])
	f.Add(raw[:headerSize])
	// A directory pointing outside the file.
	scrambled := append([]byte(nil), raw...)
	for i := headerSize; i < headerSize+dirEntrySize && i < len(scrambled); i++ {
		scrambled[i] ^= 0xff
	}
	f.Add(scrambled)
	f.Add([]byte(magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := OpenBytes(data, g, Options{})
		if err != nil {
			return
		}
		fm := snap.FrozenMStar()
		var buf bytes.Buffer
		if err := Write(&buf, fm, WriteOptions{}); err != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", err)
		}
		snap2, err := OpenBytes(buf.Bytes(), g, Options{})
		if err != nil {
			t.Fatalf("re-encoding of accepted snapshot rejected: %v", err)
		}
		var buf2 bytes.Buffer
		if err := Write(&buf2, snap2.FrozenMStar(), WriteOptions{}); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("re-encoding is not deterministic")
		}
	})
}
