package mmapstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mrx/internal/core"
	"mrx/internal/graph"
	"mrx/internal/gtest"
	"mrx/internal/pathexpr"
	"mrx/internal/store"
)

// benchSizes spans two orders of magnitude so the cold-start sweep can show
// mmap open time staying flat while heap deserialization grows with the
// index: the whole point of the disk-resident format.
var benchSizes = []int{1_000, 10_000, 100_000}

// benchIndex is one prepared measurement subject: a refined frozen index
// over a graph of a given size, plus both serializations (the mmap snapshot
// and the store heap encoding) and a supportable query workload.
type benchIndex struct {
	g     *graph.Graph
	fm    *core.FrozenMStar
	exprs []*pathexpr.Expr
	snap  []byte // mmapstore encoding
	heap  []byte // store.WriteMStar encoding (heap cold-start baseline)
}

// benchCache shares the expensive index builds across benchmarks in one
// `go test -bench` process; builds are never timed.
var benchCache = map[int]*benchIndex{}

func benchSetup(b *testing.B, nodes int) *benchIndex {
	b.Helper()
	if bi, ok := benchCache[nodes]; ok {
		return bi
	}
	g := gtest.Random(int64(nodes), nodes, 8, 0.2)
	ms := core.NewMStar(g)
	var exprs []*pathexpr.Expr
	for _, s := range gtest.RandomWorkload(int64(nodes)+1, g, gtest.WorkloadOptions{Size: 24, MaxLen: 4}) {
		e, err := pathexpr.Parse(s)
		if err != nil {
			b.Fatalf("parse %q: %v", s, err)
		}
		exprs = append(exprs, e)
		if !e.HasWildcard() && e.RequiredK() != pathexpr.Unbounded {
			ms.Support(e)
		}
	}
	fm := ms.Freeze()

	var snap bytes.Buffer
	if err := Write(&snap, fm, WriteOptions{}); err != nil {
		b.Fatal(err)
	}
	var heap bytes.Buffer
	if err := store.WriteMStar(&heap, ms); err != nil {
		b.Fatal(err)
	}
	bi := &benchIndex{g: g, fm: fm, exprs: exprs, snap: snap.Bytes(), heap: heap.Bytes()}
	benchCache[nodes] = bi
	return bi
}

// benchSnapFile materializes the encoded snapshot on disk for the mmap open
// paths (Open maps a file, not a byte slice).
func benchSnapFile(b *testing.B, bi *benchIndex) string {
	b.Helper()
	path := filepath.Join(b.TempDir(), "bench.mrx")
	if err := os.WriteFile(path, bi.snap, 0o644); err != nil {
		b.Fatal(err)
	}
	return path
}

// BenchmarkColdStart measures time-to-first-query across index sizes for
// the three ways of resurrecting a frozen index from bytes:
//
//   - heap: store.ReadMStar + Freeze — every array deserialized and
//     reallocated, so cost grows linearly with the index.
//   - mmap-verified: Open with full checksum + deep structural verification
//     — also linear, but streaming over mapped bytes with no allocation
//     proportional to the extents.
//   - mmap-trusted: Open with Trusted — header, directory and aliasing
//     only, so cost is O(components) no matter how large the file is.
func BenchmarkColdStart(b *testing.B) {
	for _, n := range benchSizes {
		bi := benchSetup(b, n)
		path := benchSnapFile(b, bi)
		b.Run(fmt.Sprintf("n=%d/heap", n), func(b *testing.B) {
			b.SetBytes(int64(len(bi.heap)))
			for i := 0; i < b.N; i++ {
				ms, err := store.ReadMStar(bytes.NewReader(bi.heap), bi.g)
				if err != nil {
					b.Fatal(err)
				}
				_ = ms.Freeze()
			}
		})
		b.Run(fmt.Sprintf("n=%d/mmap-verified", n), func(b *testing.B) {
			b.SetBytes(int64(len(bi.snap)))
			for i := 0; i < b.N; i++ {
				snap, err := Open(path, bi.g, Options{})
				if err != nil {
					b.Fatal(err)
				}
				snap.Close()
			}
		})
		b.Run(fmt.Sprintf("n=%d/mmap-trusted", n), func(b *testing.B) {
			b.SetBytes(int64(len(bi.snap)))
			for i := 0; i < b.N; i++ {
				snap, err := Open(path, bi.g, Options{Trusted: true})
				if err != nil {
					b.Fatal(err)
				}
				snap.Close()
			}
		})
	}
}

// BenchmarkServing runs the same workload through a heap-resident frozen
// view and a memory-mapped one. The mapped view must stay within ~10% of
// heap — the read path is identical aliased []int32 arrays either way; only
// the page source differs — or disk-resident serving would not be free.
func BenchmarkServing(b *testing.B) {
	bi := benchSetup(b, 10_000)
	path := benchSnapFile(b, bi)
	snap, err := Open(path, bi.g, Options{Trusted: true})
	if err != nil {
		b.Fatal(err)
	}
	defer snap.Close()
	for _, view := range []struct {
		name string
		fm   *core.FrozenMStar
	}{
		{"heap", bi.fm},
		{"mapped", snap.FrozenMStar()},
	} {
		b.Run(view.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := bi.exprs[i%len(bi.exprs)]
				_ = view.fm.Query(e)
			}
		})
	}
}
