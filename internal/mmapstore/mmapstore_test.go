package mmapstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mrx/internal/core"
	"mrx/internal/graph"
	"mrx/internal/gtest"
	"mrx/internal/pathexpr"
)

// testIndex builds a refined M*(k) over a random graph, returning the graph,
// the frozen view, and a parsed workload for equivalence checks.
func testIndex(tb testing.TB, seed int64) (*graph.Graph, *core.FrozenMStar, []*pathexpr.Expr) {
	tb.Helper()
	g := gtest.Random(seed, 90, 5, 0.25)
	ms := core.NewMStar(g)
	var exprs []*pathexpr.Expr
	for _, s := range gtest.RandomWorkload(seed+1, g, gtest.WorkloadOptions{Size: 12, MaxLen: 3}) {
		e, err := pathexpr.Parse(s)
		if err != nil {
			tb.Fatalf("parse %q: %v", s, err)
		}
		exprs = append(exprs, e)
		if !e.HasWildcard() && e.RequiredK() != pathexpr.Unbounded {
			ms.Support(e)
		}
	}
	fm := ms.Freeze()
	if fm.NumComponents() < 2 {
		tb.Fatalf("workload refined to only %d component(s)", fm.NumComponents())
	}
	return g, fm, exprs
}

func encode(tb testing.TB, fm *core.FrozenMStar, o WriteOptions) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, fm, o); err != nil {
		tb.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

// sameAnswers checks that the loaded view answers the whole workload exactly
// like the in-memory frozen view.
func sameAnswers(tb testing.TB, want, got *core.FrozenMStar, exprs []*pathexpr.Expr) {
	tb.Helper()
	for _, e := range exprs {
		w, g := want.Query(e), got.Query(e)
		if len(w.Answer) != len(g.Answer) {
			tb.Fatalf("%s: %d answers, want %d", e, len(g.Answer), len(w.Answer))
		}
		for i := range w.Answer {
			if w.Answer[i] != g.Answer[i] {
				tb.Fatalf("%s: answer %d is %d, want %d", e, i, g.Answer[i], w.Answer[i])
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	g, fm, exprs := testIndex(t, 3)
	variants := []struct {
		name string
		wo   WriteOptions
		ro   Options
	}{
		{"raw", WriteOptions{}, Options{}},
		{"compact", WriteOptions{CompactExtents: true}, Options{}},
		{"bigendian", WriteOptions{BigEndian: true}, Options{}},
		{"forcecopy", WriteOptions{}, Options{ForceCopy: true}},
		{"trusted", WriteOptions{}, Options{Trusted: true}},
		{"compact-bigendian", WriteOptions{CompactExtents: true, BigEndian: true}, Options{}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			enc := encode(t, fm, v.wo)
			snap, err := OpenBytes(enc, g, v.ro)
			if err != nil {
				t.Fatalf("OpenBytes: %v", err)
			}
			sameAnswers(t, fm, snap.FrozenMStar(), exprs)
			// Re-encoding the loaded view must reproduce the file byte for
			// byte: the mapped view carries exactly the in-memory state.
			if re := encode(t, snap.FrozenMStar(), v.wo); !bytes.Equal(re, enc) {
				t.Fatal("re-encoding the loaded view changed the bytes")
			}
			// And re-encoding with default options must match the in-memory
			// snapshot's default encoding, whatever variant it came through.
			if got, want := encode(t, snap.FrozenMStar(), WriteOptions{}), encode(t, fm, WriteOptions{}); !bytes.Equal(got, want) {
				t.Fatal("loaded view and source snapshot encode differently")
			}
		})
	}
}

func TestMisalignedBufferFallsBackToDecode(t *testing.T) {
	g, fm, exprs := testIndex(t, 5)
	enc := encode(t, fm, WriteOptions{})
	// Force a misaligned backing buffer; the reader must detect it and
	// decode instead of taking unsafe views.
	buf := make([]byte, len(enc)+1)
	copy(buf[1:], enc)
	shifted := buf[1:]
	if aligned4(shifted) {
		t.Skip("allocator produced an aligned odd-offset slice")
	}
	snap, err := OpenBytes(shifted, g, Options{})
	if err != nil {
		t.Fatalf("OpenBytes on misaligned buffer: %v", err)
	}
	sameAnswers(t, fm, snap.FrozenMStar(), exprs)
}

func TestOpenFile(t *testing.T) {
	g, fm, exprs := testIndex(t, 7)
	path := filepath.Join(t.TempDir(), "snap.mrx")
	if err := WriteFile(path, fm, WriteOptions{}); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	for _, o := range []Options{{}, {Trusted: true}} {
		snap, err := Open(path, g, o)
		if err != nil {
			t.Fatalf("Open (trusted=%v): %v", o.Trusted, err)
		}
		sameAnswers(t, fm, snap.FrozenMStar(), exprs)
		if err := snap.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if err := snap.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	}
}

func TestOpenRejectsWrongGraph(t *testing.T) {
	g, fm, _ := testIndex(t, 9)
	enc := encode(t, fm, WriteOptions{})
	other := gtest.Random(10, g.NumNodes()+5, 4, 0.2)
	if _, err := OpenBytes(enc, other, Options{}); err == nil {
		t.Fatal("accepted a snapshot bound to a different graph")
	}
}

func TestCorruptionRejected(t *testing.T) {
	g, fm, _ := testIndex(t, 11)
	enc := encode(t, fm, WriteOptions{})

	// Truncations at every interesting boundary.
	for _, n := range []int{0, 4, headerSize - 1, headerSize, headerSize + 20, len(enc) / 2, len(enc) - 1} {
		if _, err := OpenBytes(enc[:n], g, Options{}); err == nil {
			t.Errorf("accepted truncation to %d bytes", n)
		}
	}
	// Single-byte corruption across the whole file: header, directory, or
	// payload — the checksums must catch anything parsing itself misses.
	stride := len(enc)/97 + 1
	for off := 0; off < len(enc); off += stride {
		mut := append([]byte(nil), enc...)
		mut[off] ^= 0x40
		if _, err := OpenBytes(mut, g, Options{}); err == nil {
			// A flip may land in padding bytes, which no checksum covers and
			// no reader examines; only padding flips may be accepted.
			if !inPadding(t, enc, off) {
				t.Errorf("accepted bit flip at offset %d", off)
			}
		}
	}
}

// inPadding reports whether off falls in alignment padding (bytes between
// section payloads that no directory entry covers).
func inPadding(tb testing.TB, enc []byte, off int) bool {
	tb.Helper()
	h, err := parseHeader(enc)
	if err != nil {
		tb.Fatalf("parseHeader on valid bytes: %v", err)
	}
	if off < headerSize+int(h.sections)*dirEntrySize {
		return false
	}
	ents, err := parseDirectory(enc, h)
	if err != nil {
		tb.Fatalf("parseDirectory on valid bytes: %v", err)
	}
	for _, e := range ents {
		if uint64(off) >= e.off && uint64(off) < e.off+e.size {
			return false
		}
	}
	return true
}

func TestPublishAtomicAndRepeatable(t *testing.T) {
	g, fm, exprs := testIndex(t, 13)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.mrx")
	if err := Publish(path, fm, WriteOptions{}); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	snap, err := Open(path, g, Options{})
	if err != nil {
		t.Fatalf("Open after Publish: %v", err)
	}
	sameAnswers(t, fm, snap.FrozenMStar(), exprs)

	// Republish over the live file: the existing mapping must stay valid
	// (rename unlinks the name, not the inode) and a fresh open sees the
	// new generation.
	if err := Publish(path, fm, WriteOptions{CompactExtents: true}); err != nil {
		t.Fatalf("re-Publish: %v", err)
	}
	sameAnswers(t, fm, snap.FrozenMStar(), exprs)
	snap2, err := Open(path, g, Options{})
	if err != nil {
		t.Fatalf("Open after re-Publish: %v", err)
	}
	sameAnswers(t, fm, snap2.FrozenMStar(), exprs)

	// No temp litter may survive a successful publish.
	matches, err := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("publish left temp files behind: %v", matches)
	}
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	if err := snap2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsNonSnapshotFile(t *testing.T) {
	g, _, _ := testIndex(t, 15)
	path := filepath.Join(t.TempDir(), "not-a-snapshot")
	if err := os.WriteFile(path, []byte("hello, world — definitely not an index"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, g, Options{}); err == nil {
		t.Fatal("accepted a non-snapshot file")
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing"), g, Options{}); err == nil {
		t.Fatal("accepted a missing file")
	}
}
