package netem

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// fakeClock is a virtual clock: Sleep advances time instantly and records
// the requested delay, so an impairment schedule can be replayed and
// asserted without real waiting.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(d time.Duration, cancel <-chan struct{}) bool {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.sleeps = append(c.sleeps, d)
	c.mu.Unlock()
	return true
}

func (c *fakeClock) schedule() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.sleeps...)
}

// drain consumes everything the raw side of a pipe delivers.
func drain(t *testing.T, c net.Conn, done chan<- []byte) {
	t.Helper()
	var buf bytes.Buffer
	_, _ = io.Copy(&buf, c)
	done <- buf.Bytes()
}

// runScript writes the scripted segments through an impaired conn over a
// net.Pipe and returns the recorded impairment schedule plus the bytes the
// peer received.
func runScript(t *testing.T, p Profile, seed int64, segments [][]byte) ([]time.Duration, []byte) {
	t.Helper()
	clock := newFakeClock()
	a, b := net.Pipe()
	conn := WrapConn(a, p, seed, clock)
	got := make(chan []byte, 1)
	go drain(t, b, got)
	for _, seg := range segments {
		if _, err := conn.Write(seg); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	conn.Close()
	return clock.schedule(), <-got
}

// The determinism contract: same profile + same seed ⇒ the identical
// impairment schedule, byte for byte; a different seed ⇒ a different one.
func TestScheduleReplay(t *testing.T) {
	prof := Profile{
		Latency:    2 * time.Millisecond,
		Jitter:     time.Millisecond,
		LossRate:   0.3,
		Stall:      20 * time.Millisecond,
		ChunkBytes: 7,
	}
	script := [][]byte{
		bytes.Repeat([]byte("a"), 40),
		[]byte("hello"),
		bytes.Repeat([]byte("b"), 23),
	}
	s1, b1 := runScript(t, prof, 42, script)
	s2, b2 := runScript(t, prof, 42, script)
	if len(s1) == 0 {
		t.Fatal("no impairment events recorded")
	}
	if len(s1) != len(s2) {
		t.Fatalf("schedules differ in length: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("schedule diverges at op %d: %v vs %v", i, s1[i], s2[i])
		}
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("delivered bytes differ between replays")
	}

	s3, _ := runScript(t, prof, 43, script)
	same := len(s3) == len(s1)
	if same {
		for i := range s1 {
			if s1[i] != s3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced the identical schedule")
	}
}

// Latency without jitter or loss delays every segment by exactly the
// configured one-way delay, and chunking splits writes into ChunkBytes
// segments.
func TestLatencyAndChunking(t *testing.T) {
	prof := Profile{Latency: 5 * time.Millisecond, ChunkBytes: 10}
	sched, got := runScript(t, prof, 1, [][]byte{bytes.Repeat([]byte("x"), 35)})
	if len(got) != 35 {
		t.Fatalf("delivered %d bytes, want 35", len(got))
	}
	if len(sched) != 4 { // 10+10+10+5
		t.Fatalf("%d segments, want 4 (chunked at 10)", len(sched))
	}
	for i, d := range sched {
		if d != 5*time.Millisecond {
			t.Fatalf("segment %d delayed %v, want 5ms", i, d)
		}
	}
}

// The leaky-bucket pacer holds the configured sustained rate: after the
// first free segment, each n-byte segment waits n/BytesPerSec.
func TestThrottlePacing(t *testing.T) {
	prof := Profile{BytesPerSec: 1000, ChunkBytes: 100}
	sched, _ := runScript(t, prof, 1, [][]byte{bytes.Repeat([]byte("x"), 500)})
	if len(sched) != 5 {
		t.Fatalf("%d segments, want 5", len(sched))
	}
	if sched[0] != 0 {
		t.Fatalf("first segment waited %v, want 0 (bucket starts free)", sched[0])
	}
	for i, d := range sched[1:] {
		if d != 100*time.Millisecond {
			t.Fatalf("segment %d waited %v, want 100ms (100B at 1000B/s)", i+1, d)
		}
	}
}

// LossRate 1 stalls every segment by the configured stall on top of the
// latency floor.
func TestLossStalls(t *testing.T) {
	prof := Profile{Latency: time.Millisecond, LossRate: 1, Stall: 50 * time.Millisecond}
	sched, _ := runScript(t, prof, 9, [][]byte{[]byte("abc"), []byte("def")})
	for i, d := range sched {
		if d != 51*time.Millisecond {
			t.Fatalf("segment %d delayed %v, want 51ms (1ms latency + 50ms stall)", i, d)
		}
	}
}

// The reset budget is byte-exact: the last budgeted byte is delivered, the
// next write fails with ErrReset and the connection is dead.
func TestResetAfterBytes(t *testing.T) {
	clock := newFakeClock()
	a, b := net.Pipe()
	conn := WrapConn(a, Profile{ResetAfterBytes: 10}, 5, clock)
	got := make(chan []byte, 1)
	go drain(t, b, got)

	if n, err := conn.Write([]byte("12345678")); n != 8 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	n, err := conn.Write([]byte("abcdef"))
	if n != 2 || !errors.Is(err, ErrReset) {
		t.Fatalf("budget-crossing write: n=%d err=%v, want n=2 ErrReset", n, err)
	}
	if _, err := conn.Write([]byte("x")); !errors.Is(err, ErrReset) {
		t.Fatalf("post-reset write: %v, want ErrReset", err)
	}
	if delivered := <-got; string(delivered) != "12345678ab" {
		t.Fatalf("peer saw %q, want the exact 10-byte budget", delivered)
	}
}

// Reads are chunked and delayed by the read-direction stream, which is
// independent of the write stream.
func TestReadImpairment(t *testing.T) {
	clock := newFakeClock()
	a, b := net.Pipe()
	conn := WrapConn(a, Profile{Latency: 3 * time.Millisecond, ChunkBytes: 4}, 11, clock)

	go func() {
		_, _ = b.Write([]byte("0123456789"))
		_ = b.Close()
	}()
	var buf bytes.Buffer
	chunks := 0
	tmp := make([]byte, 64)
	for {
		n, err := conn.Read(tmp)
		if n > 0 {
			chunks++
			buf.Write(tmp[:n])
			if n > 4 {
				t.Fatalf("read delivered %d bytes, chunk cap is 4", n)
			}
		}
		if err != nil {
			break
		}
	}
	if buf.String() != "0123456789" {
		t.Fatalf("read %q", buf.String())
	}
	if chunks != 3 {
		t.Fatalf("%d chunks, want 3 (4+4+2)", chunks)
	}
	sched := clock.schedule()
	if len(sched) != 3 {
		t.Fatalf("%d read delays, want 3", len(sched))
	}
	for i, d := range sched {
		if d != 3*time.Millisecond {
			t.Fatalf("chunk %d delayed %v, want 3ms", i, d)
		}
	}
}

// Validate must reject each nonsensical field with ErrInvalidProfile and
// accept the zero profile and a fully-populated sane one.
func TestProfileValidate(t *testing.T) {
	bad := []struct {
		name string
		p    Profile
	}{
		{"negative latency", Profile{Latency: -1}},
		{"negative jitter", Profile{Jitter: -time.Millisecond}},
		{"negative stall", Profile{Stall: -time.Second}},
		{"loss below zero", Profile{LossRate: -0.1}},
		{"loss above one", Profile{LossRate: 1.5}},
		{"negative rate", Profile{BytesPerSec: -1}},
		{"negative chunk", Profile{ChunkBytes: -8}},
		{"negative reset budget", Profile{ResetAfterBytes: -2}},
	}
	for _, tc := range bad {
		if err := tc.p.Validate(); !errors.Is(err, ErrInvalidProfile) {
			t.Errorf("%s: Validate = %v, want ErrInvalidProfile", tc.name, err)
		}
	}
	good := []Profile{
		{},
		{Latency: time.Millisecond, Jitter: time.Millisecond, LossRate: 0.5,
			Stall: time.Second, BytesPerSec: 1 << 20, ChunkBytes: 1, ResetAfterBytes: 1 << 30},
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate rejected %+v: %v", p, err)
		}
	}
	if !(Profile{}).IsZero() {
		t.Error("zero profile must report IsZero")
	}
	if (Profile{Latency: 1}).IsZero() {
		t.Error("non-zero profile must not report IsZero")
	}
}

// ConnSeed must derive distinct per-connection streams from one root seed.
func TestConnSeedSplits(t *testing.T) {
	seen := map[int64]bool{}
	for i := int64(0); i < 100; i++ {
		s := ConnSeed(7, i)
		if seen[s] {
			t.Fatalf("ConnSeed collision at conn %d", i)
		}
		seen[s] = true
	}
	if ConnSeed(7, 0) == ConnSeed(8, 0) {
		t.Fatal("different root seeds produced the same conn seed")
	}
}

// A listener must impair every accepted connection, each under its own
// deterministic per-connection seed.
func TestWrapListener(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := WrapListener(raw, Profile{Latency: time.Millisecond}, 3, nil)
	defer ln.Close()

	done := make(chan string, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- ""
			return
		}
		defer c.Close()
		if _, ok := c.(*Conn); !ok {
			done <- ""
			return
		}
		buf := make([]byte, 16)
		n, _ := c.Read(buf)
		done <- string(buf[:n])
	}()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-done:
		if got != "ping" {
			t.Fatalf("accepted conn saw %q (or was not impaired)", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("accept/read never completed")
	}
}
