// Package netem is a deterministic, seeded network-impairment layer for
// the serving stack's chaos tests and load generator: it wraps net.Conn,
// net.Listener and a dialer with composable impairments — one-way latency
// plus jitter, token-bucket bandwidth throttling, segment loss modeled as
// retransmit stalls, mid-stream resets, and trickle (chunked) delivery —
// so slow clients, lossy links and half-open peers get reproducible
// coverage without touching the kernel.
//
// Determinism contract: the impairment schedule — the sequence of
// (segment, delay, loss, reset) decisions a connection makes — is a pure
// function of (Profile, seed, direction, operation index). Every
// connection owns two independent PRNG streams (one per direction) derived
// from its seed by a splitmix64 mix, so concurrent reads and writes cannot
// perturb each other's draws, and the injectable Clock lets tests replay a
// schedule under virtual time and assert it byte-for-byte
// (TestScheduleReplay). Wall-clock interleaving across connections is the
// scheduler's business, exactly as on a real network; what the seed pins
// is each connection's own behavior.
//
// The three entry points mirror where a bad network can sit:
//
//   - WrapConn / Dialer: client-side impairment (cmd/mrload's -impair-*
//     flags dial through this).
//   - WrapListener: server-side impairment of every accepted connection.
//   - Proxy: an impaired in-front TCP proxy, so real, unmodified binaries
//     can be tested over a bad network (make chaos-smoke).
package netem

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrReset is returned by Conn.Write once the profile's ResetAfterBytes
// budget is exhausted: the connection has been torn down mid-stream (with
// an RST when the transport supports it).
var ErrReset = errors.New("netem: connection reset by impairment")

// ErrInvalidProfile is wrapped by every Profile.Validate failure.
var ErrInvalidProfile = errors.New("netem: invalid profile")

// errClosed is returned when Close interrupts an in-flight impairment
// sleep.
var errClosed = errors.New("netem: connection closed during impairment delay")

// Profile describes one direction-symmetric network impairment. The zero
// value impairs nothing (IsZero reports true); each field composes
// independently with the others.
type Profile struct {
	// Latency is the one-way delay added to every delivered segment.
	Latency time.Duration `json:"latency_ns,omitempty"`

	// Jitter widens Latency to a uniform draw in [Latency-Jitter,
	// Latency+Jitter] per segment (clamped at zero).
	Jitter time.Duration `json:"jitter_ns,omitempty"`

	// LossRate is the per-segment probability of a loss event, modeled as
	// a retransmit stall of Stall (TCP hides loss from the application;
	// what an application sees is the delay).
	LossRate float64 `json:"loss_rate,omitempty"`

	// Stall is how long a lost segment stalls delivery. Zero with a
	// positive LossRate means the 100ms default.
	Stall time.Duration `json:"stall_ns,omitempty"`

	// BytesPerSec throttles each direction to this sustained rate with a
	// leaky-bucket pacer. Zero disables throttling.
	BytesPerSec int `json:"bytes_per_sec,omitempty"`

	// ChunkBytes caps the bytes moved per Read or Write segment, so a
	// trickle-reading or trickle-writing peer (the slow-loris shape) can
	// be modeled by combining a small chunk with per-segment Latency.
	// Zero disables chunking.
	ChunkBytes int `json:"chunk_bytes,omitempty"`

	// ResetAfterBytes tears the connection down (ErrReset, with an RST
	// when possible) once this many bytes have been written through it.
	// Zero disables resets.
	ResetAfterBytes int64 `json:"reset_after_bytes,omitempty"`
}

// IsZero reports whether the profile impairs nothing.
func (p Profile) IsZero() bool { return p == Profile{} }

// Validate rejects plainly invalid profiles with an error wrapping
// ErrInvalidProfile.
func (p Profile) Validate() error {
	for _, f := range []struct {
		name string
		v    time.Duration
	}{
		{"Latency", p.Latency},
		{"Jitter", p.Jitter},
		{"Stall", p.Stall},
	} {
		if f.v < 0 {
			return fmt.Errorf("%w: %s %v (negative duration)", ErrInvalidProfile, f.name, f.v)
		}
	}
	if p.LossRate < 0 || p.LossRate > 1 {
		return fmt.Errorf("%w: LossRate %g (want [0,1])", ErrInvalidProfile, p.LossRate)
	}
	if p.BytesPerSec < 0 {
		return fmt.Errorf("%w: BytesPerSec %d (zero disables throttling)", ErrInvalidProfile, p.BytesPerSec)
	}
	if p.ChunkBytes < 0 {
		return fmt.Errorf("%w: ChunkBytes %d (zero disables chunking)", ErrInvalidProfile, p.ChunkBytes)
	}
	if p.ResetAfterBytes < 0 {
		return fmt.Errorf("%w: ResetAfterBytes %d (zero disables resets)", ErrInvalidProfile, p.ResetAfterBytes)
	}
	return nil
}

// stall resolves the documented default for the loss stall.
func (p Profile) stall() time.Duration {
	if p.Stall > 0 {
		return p.Stall
	}
	return 100 * time.Millisecond
}

// Clock abstracts time for the impairment layer: the system clock in
// production, a virtual clock in the determinism tests.
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until cancel closes; it reports whether the
	// full duration elapsed.
	Sleep(d time.Duration, cancel <-chan struct{}) bool
}

// SystemClock returns the wall clock.
func SystemClock() Clock { return sysClock{} }

type sysClock struct{}

func (sysClock) Now() time.Time { return time.Now() }

func (sysClock) Sleep(d time.Duration, cancel <-chan struct{}) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-cancel:
		return false
	}
}

// mix64 is splitmix64, the stream-splitting mixer: it derives independent
// seeds for per-connection and per-direction PRNG streams so the schedule
// of one never depends on the interleaving of another.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// ConnSeed derives the deterministic seed of the id-th connection opened
// under a root seed (exported so reports can name the exact per-connection
// streams a run used).
func ConnSeed(seed int64, id int64) int64 {
	return int64(mix64(mix64(uint64(seed)) ^ uint64(id)))
}

// dirSeed splits a connection seed into its read (dir 0) and write (dir 1)
// streams.
func dirSeed(seed int64, dir int64) int64 {
	return int64(mix64(uint64(seed)) + uint64(dir))
}

// shaper is one direction's impairment state: a PRNG stream and a
// leaky-bucket pacer. delay is the only entry point; it draws the
// deterministic schedule for the next n-byte segment.
type shaper struct {
	mu       sync.Mutex
	rng      *rand.Rand
	p        Profile
	clock    Clock
	nextFree time.Time // leaky bucket: when the link is free again
}

func newShaper(p Profile, seed int64, clock Clock) *shaper {
	return &shaper{rng: rand.New(rand.NewSource(seed)), p: p, clock: clock}
}

// delay computes the impairment delay for the next n-byte segment: latency
// with a jitter draw, a loss-stall draw, then bandwidth pacing. The draw
// order is fixed so the schedule is a pure function of the stream.
func (s *shaper) delay(n int) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.p.Latency
	if s.p.Jitter > 0 {
		d += time.Duration(s.rng.Int63n(int64(2*s.p.Jitter)+1)) - s.p.Jitter
	}
	if s.p.LossRate > 0 && s.rng.Float64() < s.p.LossRate {
		d += s.p.stall()
	}
	if d < 0 {
		d = 0
	}
	if s.p.BytesPerSec > 0 {
		now := s.clock.Now()
		if s.nextFree.After(now) {
			d += s.nextFree.Sub(now)
		} else {
			s.nextFree = now
		}
		cost := time.Duration(int64(n) * int64(time.Second) / int64(s.p.BytesPerSec))
		s.nextFree = s.nextFree.Add(cost)
	}
	return d
}

// Conn wraps a net.Conn with a Profile. Reads and writes each consume
// their own deterministic schedule stream; deadlines and addresses
// delegate to the wrapped connection.
type Conn struct {
	inner     net.Conn
	clock     Clock
	rd, wr    *shaper
	wrote     atomic.Int64
	closed    chan struct{}
	closeOnce sync.Once
}

// WrapConn impairs conn under p with the given per-connection seed. A nil
// clock means SystemClock.
func WrapConn(conn net.Conn, p Profile, seed int64, clock Clock) *Conn {
	if clock == nil {
		clock = SystemClock()
	}
	return &Conn{
		inner:  conn,
		clock:  clock,
		rd:     newShaper(p, dirSeed(seed, 0), clock),
		wr:     newShaper(p, dirSeed(seed, 1), clock),
		closed: make(chan struct{}),
	}
}

// Read delivers at most ChunkBytes per call, delayed by the read stream's
// schedule for the delivered segment.
func (c *Conn) Read(p []byte) (int, error) {
	if c.rd.p.ChunkBytes > 0 && len(p) > c.rd.p.ChunkBytes {
		p = p[:c.rd.p.ChunkBytes]
	}
	n, err := c.inner.Read(p)
	if n > 0 {
		if !c.clock.Sleep(c.rd.delay(n), c.closed) {
			return n, errClosed
		}
	}
	return n, err
}

// Write moves p through the write stream's schedule in ChunkBytes
// segments, pacing each; once ResetAfterBytes is exhausted it tears the
// connection down and fails with ErrReset (byte-exact: the budget's last
// byte is still delivered).
func (c *Conn) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		if budget := c.wr.p.ResetAfterBytes; budget > 0 && c.wrote.Load() >= budget {
			c.abort()
			return total, ErrReset
		}
		seg := p
		if c.wr.p.ChunkBytes > 0 && len(seg) > c.wr.p.ChunkBytes {
			seg = seg[:c.wr.p.ChunkBytes]
		}
		if budget := c.wr.p.ResetAfterBytes; budget > 0 {
			if left := budget - c.wrote.Load(); int64(len(seg)) > left {
				seg = seg[:left]
			}
		}
		if !c.clock.Sleep(c.wr.delay(len(seg)), c.closed) {
			return total, errClosed
		}
		n, err := c.inner.Write(seg)
		c.wrote.Add(int64(n))
		total += n
		if err != nil {
			return total, err
		}
		p = p[n:]
	}
	return total, nil
}

// abort tears the connection down mid-stream, with an RST instead of an
// orderly FIN when the transport is TCP — the shape of a peer crashing.
func (c *Conn) abort() {
	c.closeOnce.Do(func() {
		close(c.closed)
		if tc, ok := c.inner.(*net.TCPConn); ok {
			_ = tc.SetLinger(0)
		}
		_ = c.inner.Close()
	})
}

// Close closes the wrapped connection and interrupts any in-flight
// impairment delay.
func (c *Conn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.closed)
		err = c.inner.Close()
	})
	return err
}

func (c *Conn) LocalAddr() net.Addr                { return c.inner.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr               { return c.inner.RemoteAddr() }
func (c *Conn) SetDeadline(t time.Time) error      { return c.inner.SetDeadline(t) }
func (c *Conn) SetReadDeadline(t time.Time) error  { return c.inner.SetReadDeadline(t) }
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }

// Listener wraps a net.Listener so every accepted connection is impaired
// under the profile, each with its own deterministic seed (ConnSeed of the
// accept index).
type Listener struct {
	net.Listener
	prof  Profile
	seed  int64
	clock Clock
	next  atomic.Int64
}

// WrapListener impairs every connection ln accepts. A nil clock means
// SystemClock.
func WrapListener(ln net.Listener, p Profile, seed int64, clock Clock) *Listener {
	if clock == nil {
		clock = SystemClock()
	}
	return &Listener{Listener: ln, prof: p, seed: seed, clock: clock}
}

// Accept waits for the next connection and wraps it.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	id := l.next.Add(1) - 1
	return WrapConn(c, l.prof, ConnSeed(l.seed, id), l.clock), nil
}

// Dialer dials through the impairment layer: every connection it opens is
// wrapped under Profile, seeded by the dial index. The zero value of Base
// uses a default net.Dialer; a nil Clock means SystemClock.
type Dialer struct {
	Profile Profile
	Seed    int64
	Clock   Clock
	Base    *net.Dialer
	next    atomic.Int64
}

// Dial opens and wraps one connection (net.Dial signature, so it plugs
// into http.Transport.Dial-style hooks via a closure).
func (d *Dialer) Dial(network, address string) (net.Conn, error) {
	return d.DialContext(context.Background(), network, address)
}

// DialContext opens and wraps one connection; it is the
// http.Transport.DialContext hook cmd/mrload installs for -impair-* runs.
func (d *Dialer) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	base := d.Base
	if base == nil {
		base = &net.Dialer{}
	}
	c, err := base.DialContext(ctx, network, address)
	if err != nil {
		return nil, err
	}
	id := d.next.Add(1) - 1
	return WrapConn(c, d.Profile, ConnSeed(d.Seed, id), d.Clock), nil
}
