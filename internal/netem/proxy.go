package netem

import (
	"io"
	"net"
	"sync"
)

// Proxy is an impaired in-front TCP proxy: it accepts on a front listener,
// dials a clean connection to the backend for each client, and shuttles
// bytes both ways with the impairment applied on the client-facing side.
// This is how real, unmodified binaries are chaos-tested (make
// chaos-smoke): mrserve listens on a clean loopback socket, the proxy sits
// in front of it, and mrload talks to the proxy — every byte between them
// crosses the impaired leg.
type Proxy struct {
	front   *Listener
	backend string

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// NewProxy builds a proxy that impairs front's connections under p/seed
// and forwards them to backendAddr. Call Start to begin accepting and
// Close to drain. A nil clock means SystemClock.
func NewProxy(front net.Listener, backendAddr string, p Profile, seed int64, clock Clock) *Proxy {
	return &Proxy{
		front:   WrapListener(front, p, seed, clock),
		backend: backendAddr,
		stop:    make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
	}
}

// Addr is the proxy's client-facing address.
func (p *Proxy) Addr() net.Addr { return p.front.Addr() }

// Start launches the accept loop. The proxy stops when Close is called.
func (p *Proxy) Start() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			c, err := p.front.Accept()
			if err != nil {
				// Closed listener (Close closed p.stop and the front) or a
				// fatal accept error: either way the loop is done; Close
				// joins p.wg.
				<-p.stop
				return
			}
			p.wg.Add(1)
			go p.handle(c, &p.wg)
		}
	}()
}

// Close stops accepting, tears down every open connection, and joins all
// proxy goroutines.
func (p *Proxy) Close() error {
	var err error
	p.stopOnce.Do(func() {
		close(p.stop)
		err = p.front.Close()
		p.mu.Lock()
		for c := range p.conns {
			_ = c.Close()
		}
		p.mu.Unlock()
		p.wg.Wait()
	})
	return err
}

// track registers a connection for teardown on Close; it reports false
// when the proxy is already stopping (the caller must close the conn).
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case <-p.stop:
		return false
	default:
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// handle shuttles one client connection: dial the backend clean, copy both
// directions, close both sides when either direction ends (so a half-open
// impaired leg cannot leak the clean one).
func (p *Proxy) handle(client net.Conn, wg *sync.WaitGroup) {
	defer wg.Done()
	if !p.track(client) {
		_ = client.Close()
		return
	}
	defer p.untrack(client)

	server, err := net.Dial("tcp", p.backend)
	if err != nil {
		_ = client.Close()
		return
	}
	if !p.track(server) {
		_ = server.Close()
		_ = client.Close()
		return
	}
	defer p.untrack(server)

	var halves sync.WaitGroup
	halves.Add(2)
	go shuttle(server, client, &halves)
	go shuttle(client, server, &halves)
	halves.Wait()
}

// shuttle copies src into dst until either side dies, then closes both to
// unblock the opposite direction.
func shuttle(dst, src net.Conn, wg *sync.WaitGroup) {
	defer wg.Done()
	_, _ = io.Copy(dst, src)
	_ = dst.Close()
	_ = src.Close()
}
