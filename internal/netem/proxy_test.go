package netem

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"
)

// startEcho runs a TCP echo backend and returns its address and a stop
// function.
func startEcho(t *testing.T) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(c net.Conn) {
				defer wg.Done()
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return ln.Addr().String(), func() {
		ln.Close()
		wg.Wait()
	}
}

// Bytes must survive the impaired round trip through the proxy, delayed by
// at least the latency floor, and Close must join every proxy goroutine.
func TestProxyEndToEnd(t *testing.T) {
	backend, stopEcho := startEcho(t)
	defer stopEcho()

	front, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	const latency = 5 * time.Millisecond
	p := NewProxy(front, backend, Profile{Latency: latency}, 21, nil)
	p.Start()
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	msg := []byte("through the impaired leg")
	start := time.Now()
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := readFull(c, got, 5*time.Second); err != nil {
		t.Fatalf("echo read: %v", err)
	}
	elapsed := time.Since(start)
	if !bytes.Equal(got, msg) {
		t.Fatalf("echoed %q, want %q", got, msg)
	}
	// The client-facing leg is impaired in both directions: the round trip
	// pays the one-way latency at least twice.
	if elapsed < 2*latency {
		t.Fatalf("round trip took %v, impairment floor is %v", elapsed, 2*latency)
	}
}

// Close must tear down in-flight connections promptly, not wait for them.
func TestProxyCloseTearsDownConns(t *testing.T) {
	backend, stopEcho := startEcho(t)
	defer stopEcho()

	front, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := NewProxy(front, backend, Profile{Latency: time.Millisecond}, 4, nil)
	p.Start()

	c, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := readFull(c, buf, 5*time.Second); err != nil {
		t.Fatalf("pre-close echo: %v", err)
	}

	done := make(chan struct{})
	go func() {
		p.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("proxy Close hung on an open connection")
	}
	// The torn-down conn must now fail.
	_ = c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read on a torn-down proxy conn succeeded")
	}
}

// readFull reads exactly len(p) bytes under a deadline.
func readFull(c net.Conn, p []byte, budget time.Duration) (int, error) {
	if err := c.SetReadDeadline(time.Now().Add(budget)); err != nil {
		return 0, err
	}
	total := 0
	for total < len(p) {
		n, err := c.Read(p[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, c.SetReadDeadline(time.Time{})
}
