package svgplot

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
)

func lineChart() *Chart {
	return &Chart{
		Title:  "test chart",
		XLabel: "x axis",
		YLabel: "y axis",
		Series: []Series{
			{Name: "alpha", Points: []Point{{X: 0, Y: 10}, {X: 50, Y: 40}, {X: 100, Y: 20}}},
			{Name: "beta", Points: []Point{{X: 0, Y: 5}, {X: 50, Y: 15}, {X: 100, Y: 60}}},
			{Name: "gamma", Scatter: true, Points: []Point{{X: 70, Y: 33, Label: "G"}}},
		},
	}
}

func render(t *testing.T, c *Chart) string {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestWriteSVGWellFormed(t *testing.T) {
	out := render(t, lineChart())
	// The output must be well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG not well-formed: %v", err)
		}
	}
}

func TestWriteSVGContent(t *testing.T) {
	out := render(t, lineChart())
	for _, want := range []string{
		"test chart", "x axis", "y axis",
		"alpha", "beta", "gamma",
		`stroke-width="2"`, // 2px line marks
		"<title>",          // hover tooltips
		seriesColors[0], seriesColors[1], seriesColors[2],
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// The scatter series has no connecting path: count paths (2 line series).
	if got := strings.Count(out, `<path d="M`); got != 2 {
		t.Errorf("paths = %d, want 2", got)
	}
	// Legend present for >= 2 series.
	if !strings.Contains(out, `cx="622"`) {
		t.Error("legend missing")
	}
}

func TestSingleSeriesNoLegend(t *testing.T) {
	c := &Chart{Title: "one", Series: []Series{{Name: "only", Points: []Point{{X: 1, Y: 2}, {X: 2, Y: 3}}}}}
	out := render(t, c)
	if strings.Contains(out, `cx="622"`) {
		t.Error("single series should have no legend box")
	}
}

func TestBarsChart(t *testing.T) {
	c := &Chart{
		Title: "hist",
		Bars:  true,
		Series: []Series{{Name: "fractions", Points: []Point{
			{X: 0, Y: 0.35, Label: "0"}, {X: 1, Y: 0.25, Label: "1"}, {X: 2, Y: 0.1, Label: "2"},
		}}},
	}
	out := render(t, c)
	if strings.Count(out, "<path") != 3 {
		t.Errorf("bars = %d, want 3", strings.Count(out, "<path"))
	}
	if !strings.Contains(out, "0.35") {
		t.Error("bar value label missing")
	}
	// Single magnitude series: one hue only.
	for _, c := range seriesColors[1:] {
		if strings.Contains(out, c) {
			t.Errorf("bar chart uses extra categorical color %s", c)
		}
	}
}

func TestEscaping(t *testing.T) {
	c := &Chart{Title: `<&">`, Series: []Series{{Name: "M*(k) <cool>", Points: []Point{{X: 1, Y: 1}}}}}
	out := render(t, c)
	if strings.Contains(out, "<cool>") || strings.Contains(out, `<&">`) {
		t.Error("unescaped text in SVG")
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyChart(t *testing.T) {
	out := render(t, &Chart{Title: "empty"})
	if !strings.Contains(out, "</svg>") {
		t.Error("empty chart should still close")
	}
	out = render(t, &Chart{Title: "empty bars", Bars: true})
	if !strings.Contains(out, "</svg>") {
		t.Error("empty bar chart should still close")
	}
}

func TestTicks(t *testing.T) {
	ts := ticks(0, 100, 5)
	if len(ts) < 4 || ts[0] != 0 {
		t.Errorf("ticks(0,100,5) = %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("non-increasing ticks %v", ts)
		}
	}
	if got := ticks(5, 5, 4); len(got) != 1 {
		t.Errorf("degenerate ticks = %v", got)
	}
}

func TestNumFormatting(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		42:     "42",
		1500:   "1.5k",
		25000:  "25k",
		0.35:   "0.35",
		0.3001: "0.3",
	}
	for in, want := range cases {
		if got := num(in); got != want {
			t.Errorf("num(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSortSeriesPoints(t *testing.T) {
	ss := []Series{{Points: []Point{{X: 3}, {X: 1}, {X: 2}}}}
	SortSeriesPoints(ss)
	if ss[0].Points[0].X != 1 || ss[0].Points[2].X != 3 {
		t.Errorf("unsorted: %v", ss[0].Points)
	}
}
