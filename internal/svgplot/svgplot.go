// Package svgplot renders the experiment figures as standalone SVG charts,
// so the benchmark harness regenerates the paper's plots and not just their
// data tables.
//
// The charts follow a small, fixed design system: a validated categorical
// palette assigned to series in a fixed order (never cycled), thin 2px
// lines with ≥8px markers, one y-axis, a recessive grid, a legend plus a
// direct label at each series' last point (the palette's low-contrast slots
// require that relief), text in text colors rather than series colors, and
// native SVG <title> tooltips on every marker.
package svgplot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// The categorical palette (light mode), validated with the six-checks
// validator: lightness band, chroma floor and CVD separation pass; the
// aqua and yellow slots sit below 3:1 contrast on the surface, which is
// why every series also carries a direct label.
var seriesColors = []string{
	"#2a78d6", // blue
	"#1baf7a", // aqua
	"#eda100", // yellow
	"#008300", // green
	"#4a3aa7", // violet
	"#e34948", // red
	"#e87ba4", // magenta
	"#eb6834", // orange
}

const (
	surface       = "#fcfcfb"
	textPrimary   = "#0b0b0b"
	textSecondary = "#52514e"
	gridColor     = "#e4e3df"
)

// Point is one data point.
type Point struct {
	X, Y  float64
	Label string // optional per-point annotation (e.g. "A(3)")
}

// Series is a named sequence of points.
type Series struct {
	Name   string
	Points []Point
	// Scatter suppresses the connecting line (markers only).
	Scatter bool
}

// Chart is a single-plot figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Bars switches to a single-series bar chart (histogram); only the
	// first series is drawn and the categorical palette is not used.
	Bars bool
}

const (
	chartW  = 760
	chartH  = 480
	marginL = 72
	marginR = 150
	marginT = 48
	marginB = 56
)

// WriteSVG renders the chart.
func (c *Chart) WriteSVG(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="system-ui, sans-serif">`,
		chartW, chartH, chartW, chartH)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`, chartW, chartH, surface)
	fmt.Fprintf(&b, `<text x="%d" y="28" font-size="16" fill="%s">%s</text>`, marginL, textPrimary, esc(c.Title))

	plotW := chartW - marginL - marginR
	plotH := chartH - marginT - marginB
	if c.Bars {
		c.renderBars(&b, plotW, plotH)
	} else {
		c.renderLines(&b, plotW, plotH)
	}

	// Axis labels.
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" fill="%s" text-anchor="middle">%s</text>`,
		marginL+plotW/2, chartH-12, textSecondary, esc(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-size="12" fill="%s" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`,
		marginT+plotH/2, textSecondary, marginT+plotH/2, esc(c.YLabel))
	b.WriteString(`</svg>`)
	_, err := io.WriteString(w, b.String())
	return err
}

func (c *Chart) dataBounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for _, p := range s.Points {
			xmin, xmax = math.Min(xmin, p.X), math.Max(xmax, p.X)
			ymin, ymax = math.Min(ymin, p.Y), math.Max(ymax, p.Y)
		}
	}
	if xmin > xmax { // no data
		return 0, 1, 0, 1
	}
	if xmin == xmax {
		xmax = xmin + 1
	}
	// Anchor magnitudes at zero, as the paper's figures do.
	if ymin > 0 {
		ymin = 0
	}
	if ymin == ymax {
		ymax = ymin + 1
	}
	return
}

func (c *Chart) renderLines(b *strings.Builder, plotW, plotH int) {
	xmin, xmax, ymin, ymax := c.dataBounds()
	sx := func(x float64) float64 { return marginL + (x-xmin)/(xmax-xmin)*float64(plotW) }
	sy := func(y float64) float64 { return float64(marginT+plotH) - (y-ymin)/(ymax-ymin)*float64(plotH) }

	c.grid(b, plotW, plotH, xmin, xmax, ymin, ymax, sx, sy, false)

	for si, s := range c.Series {
		color := seriesColors[si%len(seriesColors)]
		if !s.Scatter && len(s.Points) > 1 {
			var path strings.Builder
			for i, p := range s.Points {
				cmd := "L"
				if i == 0 {
					cmd = "M"
				}
				fmt.Fprintf(&path, "%s%.1f %.1f", cmd, sx(p.X), sy(p.Y))
			}
			fmt.Fprintf(b, `<path d="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round"/>`,
				path.String(), color)
		}
		for _, p := range s.Points {
			fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s" stroke="%s" stroke-width="2">`,
				sx(p.X), sy(p.Y), color, surface)
			fmt.Fprintf(b, `<title>%s: (%s, %s)</title></circle>`, esc(s.Name), num(p.X), num(p.Y))
			if p.Label != "" {
				fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="10" fill="%s">%s</text>`,
					sx(p.X)+6, sy(p.Y)-6, textSecondary, esc(p.Label))
			}
		}
		// Direct label at the last point (the relief the palette requires),
		// plus the legend entry. Series whose points carry their own labels
		// (the A(k) family) are already identified in place.
		if n := len(s.Points); n > 0 && s.Points[n-1].Label == "" {
			last := s.Points[n-1]
			fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="11" fill="%s">%s</text>`,
				sx(last.X)+8, sy(last.Y)+4, textPrimary, esc(s.Name))
		}
	}
	c.legend(b)
}

func (c *Chart) renderBars(b *strings.Builder, plotW, plotH int) {
	if len(c.Series) == 0 || len(c.Series[0].Points) == 0 {
		return
	}
	pts := c.Series[0].Points
	ymax := 0.0
	for _, p := range pts {
		ymax = math.Max(ymax, p.Y)
	}
	if ymax == 0 {
		ymax = 1
	}
	sy := func(y float64) float64 { return float64(marginT+plotH) - y/ymax*float64(plotH) }
	c.grid(b, plotW, plotH, 0, float64(len(pts)), 0, ymax, nil, sy, true)

	// One magnitude series: a single hue, 2px surface gaps between bars via
	// the bar spacing, 4px rounded data-ends.
	slot := float64(plotW) / float64(len(pts))
	barW := slot * 0.7
	for i, p := range pts {
		x := float64(marginL) + slot*float64(i) + (slot-barW)/2
		top := sy(p.Y)
		h := float64(marginT+plotH) - top
		if h < 0.5 {
			h = 0.5
		}
		fmt.Fprintf(b, `<path d="M%.1f %.1f h%.1f v%.1f q0 -4 -4 -4 h%.1f q-4 0 -4 4 z" fill="%s">`,
			x+4, float64(marginT+plotH), barW-8, -h+4, -(barW - 16), seriesColors[0])
		fmt.Fprintf(b, `<title>%s: %s</title></path>`, esc(p.Label), num(p.Y))
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="11" fill="%s" text-anchor="middle">%s</text>`,
			x+barW/2, float64(marginT+plotH)+16, textSecondary, esc(p.Label))
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="10" fill="%s" text-anchor="middle">%s</text>`,
			x+barW/2, top-6, textPrimary, num(p.Y))
	}
}

func (c *Chart) grid(b *strings.Builder, plotW, plotH int, xmin, xmax, ymin, ymax float64,
	sx func(float64) float64, sy func(float64) float64, bars bool) {
	// Horizontal gridlines at ~5 ticks.
	for _, t := range ticks(ymin, ymax, 5) {
		y := sy(t)
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1"/>`,
			marginL, y, marginL+plotW, y, gridColor)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" font-size="10" fill="%s" text-anchor="end">%s</text>`,
			marginL-6, y+3, textSecondary, num(t))
	}
	// Baseline axis.
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1"/>`,
		marginL, marginT+plotH, marginL+plotW, marginT+plotH, textSecondary)
	if !bars && sx != nil {
		for _, t := range ticks(xmin, xmax, 6) {
			x := sx(t)
			fmt.Fprintf(b, `<text x="%.1f" y="%d" font-size="10" fill="%s" text-anchor="middle">%s</text>`,
				x, marginT+plotH+16, textSecondary, num(t))
		}
	}
}

func (c *Chart) legend(b *strings.Builder) {
	if len(c.Series) < 2 {
		return // a single series is named by the title
	}
	x := chartW - marginR + 12
	y := marginT + 8
	for si, s := range c.Series {
		color := seriesColors[si%len(seriesColors)]
		fmt.Fprintf(b, `<circle cx="%d" cy="%d" r="4" fill="%s"/>`, x, y, color)
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="11" fill="%s">%s</text>`,
			x+10, y+4, textPrimary, esc(s.Name))
		y += 18
	}
}

// ticks returns ~n round tick values covering [lo, hi].
func ticks(lo, hi float64, n int) []float64 {
	if hi <= lo || n < 1 {
		return []float64{lo}
	}
	raw := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	for _, m := range []float64{1, 2, 5, 10} {
		step = m * mag
		if step >= raw {
			break
		}
	}
	var out []float64
	for t := math.Ceil(lo/step) * step; t <= hi+step/1e6; t += step {
		out = append(out, t)
	}
	return out
}

func num(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 10000:
		return fmt.Sprintf("%.0fk", v/1000)
	case a >= 1000:
		return fmt.Sprintf("%.1fk", v/1000)
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// SortSeriesPoints orders each series by X, which line rendering assumes.
func SortSeriesPoints(ss []Series) {
	for i := range ss {
		sort.Slice(ss[i].Points, func(a, b int) bool { return ss[i].Points[a].X < ss[i].Points[b].X })
	}
}
