// Package graph implements the labeled directed data-graph model used by
// structural XML indexes.
//
// An XML document is represented as a labeled directed graph
// G = (V, E, root, Σ): each element (node) has a string label drawn from the
// alphabet Σ; nesting produces regular parent→child edges; ID/IDREF
// attributes produce reference edges. Both edge kinds participate in
// bisimilarity, exactly as in He & Yang (ICDE 2004) and its predecessors.
//
// Labels are interned to small integer IDs so that partition-refinement and
// index construction never compare strings in inner loops.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a data node. IDs are dense: 0..NumNodes()-1.
// The root is always node 0.
type NodeID int32

// LabelID identifies an interned label. IDs are dense: 0..NumLabels()-1.
type LabelID int32

// EdgeKind distinguishes containment edges from ID/IDREF reference edges.
// Both kinds are traversed identically by path expressions and bisimulation;
// the distinction is kept for provenance, statistics and export.
type EdgeKind uint8

const (
	// TreeEdge is a regular parent-child containment edge.
	TreeEdge EdgeKind = iota
	// RefEdge is a reference edge created from an ID/IDREF(S) pair.
	RefEdge
)

func (k EdgeKind) String() string {
	switch k {
	case TreeEdge:
		return "tree"
	case RefEdge:
		return "ref"
	default:
		return fmt.Sprintf("EdgeKind(%d)", uint8(k))
	}
}

// Edge is a directed edge of the data graph.
type Edge struct {
	From, To NodeID
	Kind     EdgeKind
}

// Graph is an immutable-after-Freeze labeled directed graph.
//
// Build one with NewBuilder (or helpers in packages xmlload and datagen),
// add nodes and edges, then call Freeze to obtain the compact adjacency
// representation the index packages rely on.
type Graph struct {
	labels    []string           // LabelID -> label text
	labelIDs  map[string]LabelID // label text -> LabelID
	nodeLabel []LabelID          // NodeID -> LabelID

	// Compact CSR-style adjacency. childStart has len = numNodes+1 and
	// children[childStart[v]:childStart[v+1]] are v's successors; same for
	// parents. Edge kinds are stored parallel to children.
	childStart  []int32
	children    []NodeID
	childKind   []EdgeKind
	parentStart []int32
	parents     []NodeID

	numEdges int
	numRef   int
}

// NumNodes returns the number of data nodes.
func (g *Graph) NumNodes() int { return len(g.nodeLabel) }

// NumEdges returns the number of edges (tree + reference).
func (g *Graph) NumEdges() int { return g.numEdges }

// NumRefEdges returns the number of reference edges.
func (g *Graph) NumRefEdges() int { return g.numRef }

// NumLabels returns the number of distinct labels.
func (g *Graph) NumLabels() int { return len(g.labels) }

// Root returns the root node, which is always NodeID 0.
func (g *Graph) Root() NodeID { return 0 }

// Label returns the label ID of node v.
func (g *Graph) Label(v NodeID) LabelID { return g.nodeLabel[v] }

// LabelName returns the text of label l.
func (g *Graph) LabelName(l LabelID) string { return g.labels[l] }

// NodeLabelName returns the label text of node v.
func (g *Graph) NodeLabelName(v NodeID) string { return g.labels[g.nodeLabel[v]] }

// LabelIDOf returns the ID for a label text, and whether it exists.
func (g *Graph) LabelIDOf(name string) (LabelID, bool) {
	id, ok := g.labelIDs[name]
	return id, ok
}

// Children returns the successors of v. The returned slice aliases internal
// storage and must not be modified.
func (g *Graph) Children(v NodeID) []NodeID {
	return g.children[g.childStart[v]:g.childStart[v+1]]
}

// ChildKinds returns the edge kinds parallel to Children(v).
func (g *Graph) ChildKinds(v NodeID) []EdgeKind {
	return g.childKind[g.childStart[v]:g.childStart[v+1]]
}

// Parents returns the predecessors of v. The returned slice aliases internal
// storage and must not be modified.
func (g *Graph) Parents(v NodeID) []NodeID {
	return g.parents[g.parentStart[v]:g.parentStart[v+1]]
}

// OutDegree returns the number of outgoing edges of v.
func (g *Graph) OutDegree(v NodeID) int {
	return int(g.childStart[v+1] - g.childStart[v])
}

// InDegree returns the number of incoming edges of v.
func (g *Graph) InDegree(v NodeID) int {
	return int(g.parentStart[v+1] - g.parentStart[v])
}

// Succ returns the set of nodes that are children of some node in s,
// sorted and deduplicated. This is the Succ(·) operator of the paper.
func (g *Graph) Succ(s []NodeID) []NodeID {
	var out []NodeID
	for _, v := range s {
		out = append(out, g.Children(v)...)
	}
	return dedupe(out)
}

// Pred returns the set of nodes that are parents of some node in s,
// sorted and deduplicated. This is the Pred(·) operator of the paper.
func (g *Graph) Pred(s []NodeID) []NodeID {
	var out []NodeID
	for _, v := range s {
		out = append(out, g.Parents(v)...)
	}
	return dedupe(out)
}

// LabelCounts returns, for each label, the number of nodes carrying it.
func (g *Graph) LabelCounts() []int {
	counts := make([]int, len(g.labels))
	for _, l := range g.nodeLabel {
		counts[l]++
	}
	return counts
}

// NodesWithLabel returns all nodes carrying label l, in ID order.
func (g *Graph) NodesWithLabel(l LabelID) []NodeID {
	var out []NodeID
	for v, lv := range g.nodeLabel {
		if lv == l {
			out = append(out, NodeID(v))
		}
	}
	return out
}

func dedupe(s []NodeID) []NodeID {
	if len(s) < 2 {
		return s
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}
