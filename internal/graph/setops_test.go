package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func ids(xs ...int) []NodeID {
	out := make([]NodeID, len(xs))
	for i, x := range xs {
		out[i] = NodeID(x)
	}
	return out
}

func TestSetOpsBasics(t *testing.T) {
	a := ids(1, 3, 5, 7)
	b := ids(3, 4, 5, 9)
	if got := Intersect(a, b); !reflect.DeepEqual(got, ids(3, 5)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := Subtract(a, b); !reflect.DeepEqual(got, ids(1, 7)) {
		t.Errorf("Subtract = %v", got)
	}
	if got := Union(a, b); !reflect.DeepEqual(got, ids(1, 3, 4, 5, 7, 9)) {
		t.Errorf("Union = %v", got)
	}
	if !Intersects(a, b) || Intersects(ids(1, 2), ids(3, 4)) {
		t.Error("Intersects wrong")
	}
	if !Contains(a, 5) || Contains(a, 4) || Contains(nil, 1) {
		t.Error("Contains wrong")
	}
	if !IsSubset(ids(3, 5), a) || IsSubset(ids(3, 4), a) || !IsSubset(nil, a) {
		t.Error("IsSubset wrong")
	}
}

func TestSetOpsEmpty(t *testing.T) {
	a := ids(1, 2)
	if got := Intersect(a, nil); len(got) != 0 {
		t.Errorf("Intersect with nil = %v", got)
	}
	if got := Subtract(a, nil); !reflect.DeepEqual(got, a) {
		t.Errorf("Subtract nil = %v", got)
	}
	if got := Union(nil, a); !reflect.DeepEqual(got, a) {
		t.Errorf("Union nil = %v", got)
	}
}

// Property test: set ops agree with map-based reference implementations.
func TestSetOpsAgainstMaps(t *testing.T) {
	gen := func(r *rand.Rand) []NodeID {
		n := r.Intn(20)
		m := map[NodeID]bool{}
		for i := 0; i < n; i++ {
			m[NodeID(r.Intn(30))] = true
		}
		var out []NodeID
		for k := range m {
			out = append(out, k)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := gen(r), gen(r)
		inB := map[NodeID]bool{}
		for _, x := range b {
			inB[x] = true
		}
		var wantI, wantS []NodeID
		for _, x := range a {
			if inB[x] {
				wantI = append(wantI, x)
			} else {
				wantS = append(wantS, x)
			}
		}
		un := map[NodeID]bool{}
		for _, x := range a {
			un[x] = true
		}
		for _, x := range b {
			un[x] = true
		}
		gotU := Union(a, b)
		if len(gotU) != len(un) {
			return false
		}
		for _, x := range gotU {
			if !un[x] {
				return false
			}
		}
		return equalSets(Intersect(a, b), wantI) &&
			equalSets(Subtract(a, b), wantS) &&
			Intersects(a, b) == (len(wantI) > 0) &&
			IsSubset(a, b) == (len(wantS) == 0)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func equalSets(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
