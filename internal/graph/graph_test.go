package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder()
	r := b.AddNode("r")
	a := b.AddNode("a")
	c := b.AddNode("c")
	b.AddEdge(r, a, TreeEdge)
	b.AddEdge(a, c, TreeEdge)
	b.AddEdge(r, c, RefEdge)
	g, err := b.Freeze()
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 || g.NumRefEdges() != 1 {
		t.Fatalf("got nodes=%d edges=%d refs=%d", g.NumNodes(), g.NumEdges(), g.NumRefEdges())
	}
	if g.Root() != r {
		t.Fatalf("root = %d", g.Root())
	}
	if g.NodeLabelName(c) != "c" {
		t.Fatalf("label of c = %q", g.NodeLabelName(c))
	}
	if got := g.Children(r); !reflect.DeepEqual(got, []NodeID{a, c}) {
		t.Fatalf("children(r) = %v", got)
	}
	if got := g.Parents(c); !reflect.DeepEqual(got, []NodeID{r, a}) {
		t.Fatalf("parents(c) = %v", got)
	}
	if g.OutDegree(r) != 2 || g.InDegree(c) != 2 || g.InDegree(r) != 0 {
		t.Fatal("degree mismatch")
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder().Freeze(); err == nil {
		t.Error("empty graph should fail")
	}

	b := NewBuilder()
	b.AddNode("r")
	b.AddEdge(0, 5, TreeEdge)
	if _, err := b.Freeze(); err == nil {
		t.Error("out-of-range edge should fail")
	}

	b = NewBuilder()
	b.AddNode("r")
	b.AddNode("a")
	b.AddEdge(1, 0, TreeEdge)
	if _, err := b.Freeze(); err == nil {
		t.Error("edge into root should fail")
	}

	b = NewBuilder()
	b.AddNode("r")
	b.AddNode("a")
	b.AddEdge(1, 1, TreeEdge)
	if _, err := b.Freeze(); err == nil {
		t.Error("self loop should fail")
	}

	b = NewBuilder()
	b.AddNode("r")
	b.AddNode("a")
	b.AddEdge(0, 1, TreeEdge)
	if _, err := b.Freeze(); err != nil {
		t.Fatalf("first freeze: %v", err)
	}
	if _, err := b.Freeze(); err == nil {
		t.Error("double freeze should fail")
	}
}

func TestDuplicateEdgesCollapse(t *testing.T) {
	b := NewBuilder()
	r := b.AddNode("r")
	a := b.AddNode("a")
	b.AddEdge(r, a, TreeEdge)
	b.AddEdge(r, a, RefEdge)
	b.AddEdge(r, a, TreeEdge)
	g := mustFreeze(b)
	if g.NumEdges() != 1 {
		t.Fatalf("parallel edges not collapsed: %d", g.NumEdges())
	}
}

func TestSuccPred(t *testing.T) {
	g := PaperFigure1()
	// Succ of the two auction nodes covers sellers, bidders and items.
	succ := g.Succ([]NodeID{10, 11})
	want := []NodeID{15, 16, 17, 18, 19, 20}
	if !reflect.DeepEqual(succ, want) {
		t.Fatalf("Succ = %v, want %v", succ, want)
	}
	// Pred of person 8 includes its tree parent 3 and referencing bidders 16, 17.
	pred := g.Pred([]NodeID{8})
	want = []NodeID{3, 16, 17}
	if !reflect.DeepEqual(pred, want) {
		t.Fatalf("Pred = %v, want %v", pred, want)
	}
	// Pred/Succ of an empty set is empty.
	if got := g.Pred(nil); len(got) != 0 {
		t.Fatalf("Pred(nil) = %v", got)
	}
}

func TestLabelInterning(t *testing.T) {
	g := PaperFigure1()
	id, ok := g.LabelIDOf("person")
	if !ok {
		t.Fatal("person label missing")
	}
	nodes := g.NodesWithLabel(id)
	if !reflect.DeepEqual(nodes, []NodeID{7, 8, 9}) {
		t.Fatalf("persons = %v", nodes)
	}
	counts := g.LabelCounts()
	if counts[id] != 3 {
		t.Fatalf("person count = %d", counts[id])
	}
	if _, ok := g.LabelIDOf("nonexistent"); ok {
		t.Fatal("nonexistent label found")
	}
}

func TestPaperFigures(t *testing.T) {
	for name, g := range map[string]*Graph{
		"fig1": PaperFigure1(), "fig3": PaperFigure3(), "fig4": PaperFigure4(),
		"fig6": PaperFigure6(), "fig7": PaperFigure7(),
	} {
		if g.NumNodes() == 0 {
			t.Errorf("%s: empty", name)
		}
		if g.InDegree(g.Root()) != 0 {
			t.Errorf("%s: root has parents", name)
		}
	}
	if g := PaperFigure1(); g.NumNodes() != 21 || g.NumRefEdges() != 5 {
		t.Fatalf("fig1 shape: nodes=%d refs=%d", g.NumNodes(), g.NumRefEdges())
	}
}

func TestWriteDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := PaperFigure4().WriteDOT(&buf, "fig4"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph \"fig4\"", "n0 [label=\"0:r\"]", "n1 -> n2", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	var refBuf bytes.Buffer
	if err := PaperFigure7().WriteDOT(&refBuf, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(refBuf.String(), "style=dashed") {
		t.Error("reference edge not dashed")
	}
}

func TestDedupe(t *testing.T) {
	in := []NodeID{5, 3, 5, 1, 3, 3}
	out := dedupe(in)
	if !reflect.DeepEqual(out, []NodeID{1, 3, 5}) {
		t.Fatalf("dedupe = %v", out)
	}
	if got := dedupe([]NodeID{7}); !reflect.DeepEqual(got, []NodeID{7}) {
		t.Fatalf("singleton = %v", got)
	}
	if got := dedupe(nil); len(got) != 0 {
		t.Fatalf("nil = %v", got)
	}
}
