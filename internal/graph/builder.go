package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Builder accumulates nodes and edges and produces a compact Graph.
// The zero value is not usable; call NewBuilder.
type Builder struct {
	labels   []string
	labelIDs map[string]LabelID
	nodeLbl  []LabelID
	edges    []Edge
	frozen   bool
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{labelIDs: make(map[string]LabelID)}
}

// Label interns a label and returns its ID.
func (b *Builder) Label(name string) LabelID {
	if id, ok := b.labelIDs[name]; ok {
		return id
	}
	id := LabelID(len(b.labels))
	b.labels = append(b.labels, name)
	b.labelIDs[name] = id
	return id
}

// AddNode creates a node with the given label and returns its ID.
// The first node added becomes the root.
func (b *Builder) AddNode(label string) NodeID {
	id := NodeID(len(b.nodeLbl))
	b.nodeLbl = append(b.nodeLbl, b.Label(label))
	return id
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.nodeLbl) }

// AddEdge adds a directed edge from parent to child.
func (b *Builder) AddEdge(from, to NodeID, kind EdgeKind) {
	b.edges = append(b.edges, Edge{From: from, To: to, Kind: kind})
}

// Freeze validates the accumulated structure and returns the compact Graph.
// It fails if the graph is empty, an edge endpoint is out of range, or an
// edge points at the root (node 0 must have in-degree 0 so it is the unique
// entry point for rooted path expressions).
func (b *Builder) Freeze() (*Graph, error) {
	if b.frozen {
		return nil, errors.New("graph: builder already frozen")
	}
	n := len(b.nodeLbl)
	if n == 0 {
		return nil, errors.New("graph: empty graph")
	}
	for _, e := range b.edges {
		if e.From < 0 || int(e.From) >= n || e.To < 0 || int(e.To) >= n {
			return nil, fmt.Errorf("graph: edge %d->%d out of range (n=%d)", e.From, e.To, n)
		}
		if e.To == 0 {
			return nil, fmt.Errorf("graph: edge %d->0 targets the root", e.From)
		}
		if e.From == e.To {
			return nil, fmt.Errorf("graph: self-loop on node %d", e.From)
		}
	}
	b.frozen = true

	// Sort edges by (From, To) for deterministic CSR layout; keep duplicates
	// out (parallel edges add nothing to bisimilarity or path semantics).
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].From != b.edges[j].From {
			return b.edges[i].From < b.edges[j].From
		}
		if b.edges[i].To != b.edges[j].To {
			return b.edges[i].To < b.edges[j].To
		}
		return b.edges[i].Kind < b.edges[j].Kind
	})
	edges := b.edges[:0]
	for i, e := range b.edges {
		if i > 0 && e.From == b.edges[i-1].From && e.To == b.edges[i-1].To {
			continue
		}
		edges = append(edges, e)
	}

	g := &Graph{
		labels:    b.labels,
		labelIDs:  b.labelIDs,
		nodeLabel: b.nodeLbl,
		numEdges:  len(edges),
	}

	g.childStart = make([]int32, n+1)
	g.parentStart = make([]int32, n+1)
	for _, e := range edges {
		g.childStart[e.From+1]++
		g.parentStart[e.To+1]++
		if e.Kind == RefEdge {
			g.numRef++
		}
	}
	for i := 0; i < n; i++ {
		g.childStart[i+1] += g.childStart[i]
		g.parentStart[i+1] += g.parentStart[i]
	}
	g.children = make([]NodeID, len(edges))
	g.childKind = make([]EdgeKind, len(edges))
	g.parents = make([]NodeID, len(edges))
	cpos := make([]int32, n)
	ppos := make([]int32, n)
	for _, e := range edges {
		ci := g.childStart[e.From] + cpos[e.From]
		g.children[ci] = e.To
		g.childKind[ci] = e.Kind
		cpos[e.From]++
		pi := g.parentStart[e.To] + ppos[e.To]
		g.parents[pi] = e.From
		ppos[e.To]++
	}
	return g, nil
}
