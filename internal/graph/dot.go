package graph

import (
	"fmt"
	"io"
)

// WriteDOT renders the graph in Graphviz DOT format. Tree edges are solid,
// reference edges dashed, mirroring the figures in the paper.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	if name == "" {
		name = "datagraph"
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n", name); err != nil {
		return err
	}
	for v := 0; v < g.NumNodes(); v++ {
		if _, err := fmt.Fprintf(w, "  n%d [label=\"%d:%s\"];\n", v, v, g.NodeLabelName(NodeID(v))); err != nil {
			return err
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		kids := g.Children(NodeID(v))
		kinds := g.ChildKinds(NodeID(v))
		for i, c := range kids {
			style := ""
			if kinds[i] == RefEdge {
				style = " [style=dashed]"
			}
			if _, err := fmt.Fprintf(w, "  n%d -> n%d%s;\n", v, c, style); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
