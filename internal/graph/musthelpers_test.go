package graph

// mustFreeze freezes a builder whose contents the test controls.
func mustFreeze(b *Builder) *Graph {
	g, err := b.Freeze()
	if err != nil {
		panic(err)
	}
	return g
}
