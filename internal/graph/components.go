package graph

import (
	"fmt"
	"sort"
)

// WeakComponents returns the weakly-connected components of g: the node
// sets connected by edges of either direction and either kind. Components
// are ordered by their smallest member and each component's nodes are
// sorted ascending, so the result is deterministic for a given graph.
//
// XML corpora loaded as one graph (several documents side by side, each a
// tree plus reference edges) decompose into one component per document;
// path-expression semantics never cross a component boundary — traversal
// follows child edges and validation follows parent edges, both of which
// stay inside the component — which makes components the natural unit of
// sharding (package shard).
func (g *Graph) WeakComponents() [][]NodeID {
	n := g.NumNodes()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		parent[rb] = ra // smaller root wins: component keyed by min member
	}
	for v := 0; v < n; v++ {
		for _, c := range g.Children(NodeID(v)) {
			union(int32(v), int32(c))
		}
	}
	// Bucket nodes by root; iterating v ascending keeps each component
	// sorted and first-seen order keyed by the component's smallest member.
	slot := make(map[int32]int)
	var out [][]NodeID
	for v := 0; v < n; v++ {
		r := find(int32(v))
		i, ok := slot[r]
		if !ok {
			i = len(out)
			slot[r] = i
			out = append(out, nil)
		}
		out[i] = append(out[i], NodeID(v))
	}
	return out
}

// Induce builds the node-induced subgraph of g on nodes, which must be
// sorted ascending without duplicates and closed under g's edges (no edge
// may cross the boundary of the set — true for any union of weak
// components). Local node i of the result is nodes[i]; the label table is
// shared with g, so LabelIDs are interchangeable between the two graphs.
//
// Unlike Builder.Freeze, Induce does not require local node 0 to have
// in-degree 0: a non-root component has no distinguished entry point, and
// rooted path expressions are only ever evaluated on the subgraph that
// actually contains g's root.
func (g *Graph) Induce(nodes []NodeID) (*Graph, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("graph: induce: empty node set")
	}
	local := make([]int32, g.NumNodes())
	for i := range local {
		local[i] = -1
	}
	for i, v := range nodes {
		if v < 0 || int(v) >= g.NumNodes() {
			return nil, fmt.Errorf("graph: induce: node %d out of range (n=%d)", v, g.NumNodes())
		}
		if i > 0 && nodes[i-1] >= v {
			return nil, fmt.Errorf("graph: induce: nodes not sorted/unique at %d: %d after %d", i, v, nodes[i-1])
		}
		local[v] = int32(i)
	}

	n := len(nodes)
	sub := &Graph{
		labels:    g.labels,
		labelIDs:  g.labelIDs,
		nodeLabel: make([]LabelID, n),
	}
	sub.childStart = make([]int32, n+1)
	sub.parentStart = make([]int32, n+1)
	for i, v := range nodes {
		sub.nodeLabel[i] = g.nodeLabel[v]
		for _, c := range g.Children(v) {
			if local[c] < 0 {
				return nil, fmt.Errorf("graph: induce: edge %d->%d leaves the node set", v, c)
			}
			sub.childStart[i+1]++
			sub.parentStart[local[c]+1]++
		}
	}
	for i := 0; i < n; i++ {
		sub.childStart[i+1] += sub.childStart[i]
		sub.parentStart[i+1] += sub.parentStart[i]
	}
	sub.numEdges = int(sub.childStart[n])
	sub.children = make([]NodeID, sub.numEdges)
	sub.childKind = make([]EdgeKind, sub.numEdges)
	sub.parents = make([]NodeID, sub.numEdges)
	cpos := make([]int32, n)
	ppos := make([]int32, n)
	for i, v := range nodes {
		kinds := g.ChildKinds(v)
		for j, c := range g.Children(v) {
			lc := local[c]
			ci := sub.childStart[i] + cpos[i]
			sub.children[ci] = NodeID(lc)
			sub.childKind[ci] = kinds[j]
			cpos[i]++
			if kinds[j] == RefEdge {
				sub.numRef++
			}
			pi := sub.parentStart[lc] + ppos[lc]
			sub.parents[pi] = NodeID(i)
			ppos[lc]++
		}
	}
	// Parent adjacency in g is sorted by source; rebuilding it from the
	// child lists of an arbitrary node subset can perturb that order, so
	// restore it per node for deterministic traversal.
	for i := 0; i < n; i++ {
		seg := sub.parents[sub.parentStart[i]:sub.parentStart[i+1]]
		sort.Slice(seg, func(a, b int) bool { return seg[a] < seg[b] })
	}
	return sub, nil
}
