package graph

// BuildSimple constructs a graph from parallel slices: labels[i] is the label
// of node i (node 0 is the root), and each pair {from, to} in tree/ref is an
// edge. It is a convenience for tests, examples and documentation; real
// documents come from packages xmlload and datagen.
func BuildSimple(labels []string, tree, ref [][2]int) (*Graph, error) {
	b := NewBuilder()
	for _, l := range labels {
		b.AddNode(l)
	}
	for _, e := range tree {
		b.AddEdge(NodeID(e[0]), NodeID(e[1]), TreeEdge)
	}
	for _, e := range ref {
		b.AddEdge(NodeID(e[0]), NodeID(e[1]), RefEdge)
	}
	return b.Freeze()
}

// mustFigure builds one of the hard-coded paper figures. The edge tables are
// package constants checked by TestPaperFigures, so a build error here is a
// corrupted source file, not a runtime condition.
func mustFigure(labels []string, tree, ref [][2]int) *Graph {
	g, err := BuildSimple(labels, tree, ref)
	if err != nil {
		//mrlint:allow nopanic static figure tables are valid by construction
		panic(err)
	}
	return g
}

// PaperFigure1 returns the example data graph of Figure 1 in the paper: an
// auction site with regions, people and auctions, including reference edges
// from sellers/bidders to persons and from auctions to items.
func PaperFigure1() *Graph {
	labels := []string{
		0: "root", 1: "site", 2: "regions", 3: "people", 4: "auctions",
		5: "africa", 6: "asia", 7: "person", 8: "person", 9: "person",
		10: "auction", 11: "auction", 12: "item", 13: "item", 14: "item",
		15: "seller", 16: "bidder", 17: "bidder", 18: "seller", 19: "item", 20: "item",
	}
	tree := [][2]int{
		{0, 1}, {1, 2}, {1, 3}, {1, 4},
		{2, 5}, {2, 6}, {3, 7}, {3, 8}, {3, 9}, {4, 10}, {4, 11},
		{5, 12}, {5, 13}, {6, 14},
		{10, 15}, {10, 16}, {11, 17}, {11, 18}, {11, 19}, {10, 20},
	}
	ref := [][2]int{
		{15, 7}, {16, 8}, {17, 8}, {18, 9}, {19, 14},
	}
	return mustFigure(labels, tree, ref)
}

// PaperFigure3 returns the data graph of Figure 3(a): the running example for
// comparing D(k)- and M(k)-index refinement on the FUP r/a/b.
func PaperFigure3() *Graph {
	labels := []string{0: "r", 1: "a", 2: "c", 3: "d", 4: "b", 5: "b", 6: "b", 7: "b", 8: "b", 9: "b"}
	tree := [][2]int{
		{0, 1}, {0, 2}, {0, 3},
		{1, 4}, {2, 5}, {2, 6}, {3, 7}, {3, 8}, {3, 9},
	}
	return mustFigure(labels, tree, nil)
}

// PaperFigure4 returns the data graph of Figure 4(a): the overqualified-parent
// example, where nodes 4 and 5 (label c) are 1-bisimilar but D(k)'s PROMOTE
// splits them apart.
func PaperFigure4() *Graph {
	labels := []string{0: "r", 1: "a", 2: "b", 3: "b", 4: "c", 5: "c"}
	tree := [][2]int{
		{0, 1}, {1, 2}, {1, 3}, {2, 4}, {3, 5},
	}
	return mustFigure(labels, tree, nil)
}

// PaperFigure6 returns a data graph reconstructed from Figure 6(a) (the
// figure's exact edge list is not fully recoverable from the text, but this
// topology reproduces the refined index of Figure 6(c) node for node when the
// FUP r/a/b/c is supported: a{1} k=1, a{5} k=0, b{4} k=2, b{3,8} k=0,
// c{7} k=3, c{6} k=0).
func PaperFigure6() *Graph {
	labels := []string{0: "r", 1: "a", 2: "d", 3: "b", 4: "b", 5: "a", 6: "c", 7: "c", 8: "b"}
	tree := [][2]int{
		{0, 1}, {0, 2},
		{2, 5}, {2, 3}, {1, 4}, {5, 8},
		{4, 7}, {8, 6},
	}
	return mustFigure(labels, tree, nil)
}

// PaperFigure7 returns the data graph of Figure 7(a): the example used to
// illustrate the M*(k)-index component hierarchy for the FUP //b/a/c.
// Node 5 has two parents (1 and 2); the 2->5 edge is a reference edge.
// Supporting //b/a/c yields exactly the component indexes drawn in
// Figure 7(b): I1 splits a{1,2} into a{1},a{2} (both k=1) and c{4,5,6,7}
// into c{4,5} (k=1) and c{6,7} (k=0); I2 further splits c{4,5} into c{5}
// (k=2) and c{4} (k=1).
func PaperFigure7() *Graph {
	labels := []string{0: "r", 1: "a", 2: "a", 3: "b", 4: "c", 5: "c", 6: "c", 7: "c"}
	tree := [][2]int{
		{0, 1}, {0, 3}, {0, 6}, {0, 7},
		{3, 2}, {1, 4}, {1, 5},
	}
	ref := [][2]int{{2, 5}}
	return mustFigure(labels, tree, ref)
}
