package graph

import "testing"

// buildForest makes two components: a root tree {0,1,2} and a parentless
// pair {3,4} joined by a ref cycle.
func buildForest(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	b.AddNode("root") // 0
	b.AddNode("a")    // 1
	b.AddNode("b")    // 2
	b.AddNode("a")    // 3
	b.AddNode("b")    // 4
	b.AddEdge(0, 1, TreeEdge)
	b.AddEdge(1, 2, TreeEdge)
	b.AddEdge(3, 4, TreeEdge)
	b.AddEdge(4, 3, RefEdge)
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestWeakComponents(t *testing.T) {
	g := buildForest(t)
	comps := g.WeakComponents()
	want := [][]NodeID{{0, 1, 2}, {3, 4}}
	if len(comps) != len(want) {
		t.Fatalf("components = %v, want %v", comps, want)
	}
	for i := range want {
		if len(comps[i]) != len(want[i]) {
			t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
		}
		for j := range want[i] {
			if comps[i][j] != want[i][j] {
				t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
			}
		}
	}
}

func TestInduce(t *testing.T) {
	g := buildForest(t)
	sub, err := g.Induce([]NodeID{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 2 || sub.NumEdges() != 2 || sub.NumRefEdges() != 1 {
		t.Fatalf("induced: %d nodes, %d edges, %d refs", sub.NumNodes(), sub.NumEdges(), sub.NumRefEdges())
	}
	if sub.NodeLabelName(0) != "a" || sub.NodeLabelName(1) != "b" {
		t.Fatalf("labels %q %q", sub.NodeLabelName(0), sub.NodeLabelName(1))
	}
	// The label table is shared: IDs agree with the parent graph.
	la, _ := g.LabelIDOf("a")
	if sub.Label(0) != la {
		t.Fatalf("label id %d, want shared %d", sub.Label(0), la)
	}
	if cs := sub.Children(0); len(cs) != 1 || cs[0] != 1 {
		t.Fatalf("children(0) = %v", cs)
	}
	if ps := sub.Parents(0); len(ps) != 1 || ps[0] != 1 {
		t.Fatalf("parents(0) = %v (ref back edge)", ps)
	}
}

func TestInduceRejectsBadSets(t *testing.T) {
	g := buildForest(t)
	if _, err := g.Induce(nil); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := g.Induce([]NodeID{4, 3}); err == nil {
		t.Error("unsorted set accepted")
	}
	if _, err := g.Induce([]NodeID{3, 99}); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := g.Induce([]NodeID{0, 1}); err == nil {
		t.Error("boundary-crossing set accepted (edge 1->2 leaves it)")
	}
}

// Induce on the full node set must reproduce the graph exactly.
func TestInduceIdentity(t *testing.T) {
	g := buildForest(t)
	all := make([]NodeID, g.NumNodes())
	for i := range all {
		all[i] = NodeID(i)
	}
	sub, err := g.Induce(all)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != g.NumNodes() || sub.NumEdges() != g.NumEdges() {
		t.Fatalf("identity induce: %d/%d nodes, %d/%d edges",
			sub.NumNodes(), g.NumNodes(), sub.NumEdges(), g.NumEdges())
	}
	for v := 0; v < g.NumNodes(); v++ {
		gc, sc := g.Children(NodeID(v)), sub.Children(NodeID(v))
		if len(gc) != len(sc) {
			t.Fatalf("node %d: children %v vs %v", v, gc, sc)
		}
		for i := range gc {
			if gc[i] != sc[i] {
				t.Fatalf("node %d: children %v vs %v", v, gc, sc)
			}
		}
	}
}
