package graph

// Intersect returns the intersection of two sorted node sets as a new slice.
func Intersect(a, b []NodeID) []NodeID {
	var out []NodeID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Subtract returns a \ b for sorted node sets as a new slice.
func Subtract(a, b []NodeID) []NodeID {
	var out []NodeID
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

// Intersects reports whether two sorted node sets share an element.
func Intersects(a, b []NodeID) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// Union returns the union of two sorted node sets as a new slice.
func Union(a, b []NodeID) []NodeID {
	out := make([]NodeID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Contains reports whether sorted set a contains x.
func Contains(a []NodeID, x NodeID) bool {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(a) && a[lo] == x
}

// IsSubset reports whether sorted set a is a subset of sorted set b.
func IsSubset(a, b []NodeID) bool {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}
