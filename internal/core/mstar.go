package core

import (
	"mrx/internal/graph"
	"mrx/internal/index"
	"mrx/internal/partition"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

// MStar is the M*(k)-index (§4): a sequence of component indexes
// I0, I1, …, Ik at successively finer resolutions. Component Ii is an
// M(k)-index whose maximum local similarity is i, and Ii+1 refines Ii.
// The hierarchy lets refinement split nodes using "perfectly qualified"
// parents from the coarser component — eliminating over-refinement due to
// overqualified parents — and lets queries run in the coarsest component
// that can answer them.
//
// Components are created lazily: supporting a FUP of length k materializes
// components up to Ik by copying the finest existing one.
//
// Supernode/subnode links are derived rather than stored: component extents
// are nested partitions, so the supernode of v in a coarser component is the
// node owning any member of v's extent. Size metrics apply the paper's
// deduplicated accounting (DedupNodes/DedupEdges).
type MStar struct {
	data  *graph.Graph
	comps []*index.Graph
	opts  MStarOptions
	// fups records every FUP the index has been refined for, keyed by
	// canonical form. Retire rebuilds from this registry; Clone copies it
	// (expressions are immutable and shared). Indexes loaded from a store
	// have an empty registry — their refinement history is not persisted —
	// so Retire is a no-op on them.
	fups map[string]*pathexpr.Expr
}

// NewMStar initializes the M*(k)-index of g with the single component I0,
// an A(0)-index.
func NewMStar(g *graph.Graph) *MStar {
	p := partition.ByLabel(g)
	i0 := index.FromPartition(g, p, func(partition.BlockID) int { return 0 })
	return &MStar{data: g, comps: []*index.Graph{i0}}
}

// Data returns the underlying data graph.
func (ms *MStar) Data() *graph.Graph { return ms.data }

// NumComponents returns the number of materialized component indexes.
func (ms *MStar) NumComponents() int { return len(ms.comps) }

// Component returns component index Ii.
func (ms *MStar) Component(i int) *index.Graph { return ms.comps[i] }

// Finest returns the finest materialized component.
func (ms *MStar) Finest() *index.Graph { return ms.comps[len(ms.comps)-1] }

// Supernode returns the node of component Ilevel whose extent contains the
// extent of v (a node of any finer component).
func (ms *MStar) Supernode(v *index.Node, level int) *index.Node {
	return ms.comps[level].NodeOf(v.Extent()[0])
}

// Subnodes returns the nodes of component Ilevel whose extents partition the
// extent of v (a node of any coarser component), in ID order.
func (ms *MStar) Subnodes(v *index.Node, level int) []*index.Node {
	fine := ms.comps[level]
	seen := make(map[index.NodeID]bool)
	var out []*index.Node
	for _, o := range v.Extent() {
		n := fine.NodeOf(o)
		if !seen[n.ID()] {
			seen[n.ID()] = true
			out = append(out, n)
		}
	}
	sortNodes(out)
	return out
}

func sortNodes(ns []*index.Node) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j-1].ID() > ns[j].ID(); j-- {
			ns[j-1], ns[j] = ns[j], ns[j-1]
		}
	}
}

// extendTo materializes components up to Ik by copying the finest one.
func (ms *MStar) extendTo(k int) {
	for len(ms.comps) <= k {
		ms.comps = append(ms.comps, ms.Finest().Clone())
	}
}

// Support refines the index so that the FUP e is answered precisely:
// it evaluates e (top-down) to obtain the validated data-graph target set,
// then runs REFINE*.
func (ms *MStar) Support(e *pathexpr.Expr) {
	res := ms.Query(e)
	ms.Refine(e, res.Answer)
}

// Refine is the paper's REFINE*(l, S, T): materialize components up to
// length(l), refine the finest-component nodes containing target-set
// members via REFINENODE*, then break surviving under-refined instances of
// l with PROMOTE*. When the index was built with MaxK > 0, the required
// resolution is clamped to MaxK: the FUP is then supported at the capped
// resolution only (queries keep validating the remainder).
func (ms *MStar) Refine(e *pathexpr.Expr, t []graph.NodeID) {
	if e.HasDescendantStep() {
		return // unbounded path lengths: no finite resolution supports them
	}
	k := e.RequiredK()
	if ms.opts.MaxK > 0 && k > ms.opts.MaxK {
		k = ms.opts.MaxK
	}
	if k == 0 {
		return // I0 answers single labels precisely by construction
	}
	ms.recordFUP(e)
	ms.extendTo(k)
	fine := ms.comps[k]
	for _, grp := range groupByNode(fine, t) {
		ms.refineNodeStar(k, grp.node, grp.members)
	}
	for {
		v := underRefined(fine, e, k)
		if v == nil {
			return
		}
		ms.promoteStar(k, v, func() bool { return underRefined(fine, e, k) == nil })
	}
}

type nodeGroup struct {
	node    *index.Node
	members []graph.NodeID
}

func groupByNode(ig *index.Graph, nodes []graph.NodeID) []nodeGroup {
	idx := make(map[index.NodeID]int)
	var out []nodeGroup
	for _, o := range nodes {
		n := ig.NodeOf(o)
		i, ok := idx[n.ID()]
		if !ok {
			i = len(out)
			idx[n.ID()] = i
			out = append(out, nodeGroup{node: n})
		}
		out[i].members = append(out[i].members, o)
	}
	return out
}

func underRefined(ig *index.Graph, e *pathexpr.Expr, k int) *index.Node {
	for _, v := range query.TargetNodes(ig, e) {
		if v.K() < k {
			return v
		}
	}
	return nil
}

// refineNodeStar is REFINENODE*(v, level, relevantData) with v in component
// Ilevel: recursively refine the qualified parents of v's supernode in
// Ilevel−1, then split v's ancestor supernodes level by level starting from
// the first component where the supernode's local similarity is below the
// component's resolution, propagating each split to finer components.
func (ms *MStar) refineNodeStar(level int, v *index.Node, relevant []graph.NodeID) {
	if v.Dead() {
		for _, grp := range groupByNode(ms.comps[level], relevant) {
			ms.refineNodeStar(level, grp.node, grp.members)
		}
		return
	}
	if v.K() >= level || level == 0 {
		return
	}
	predAll := ms.data.Pred(relevant)

	// Lines 2-7: refine qualified parents of supernode(v) in Ilevel-1.
	// Refining a parent can propagate down and split v itself; when that
	// happens the relevant set may span several nodes, so regroup and
	// restart (mirroring the M(k) implementation).
	coarse := ms.comps[level-1]
	for {
		if v.Dead() {
			for _, grp := range groupByNode(ms.comps[level], relevant) {
				ms.refineNodeStar(level, grp.node, grp.members)
			}
			return
		}
		super := coarse.NodeOf(relevant[0])
		var u *index.Node
		var predData []graph.NodeID
		for _, p := range coarse.Parents(super) {
			if p.K() >= level-1 {
				continue
			}
			if pd := graph.Intersect(p.Extent(), predAll); len(pd) > 0 {
				u, predData = p, pd
				break
			}
		}
		if u == nil {
			break
		}
		ms.refineNodeStar(level-1, u, predData)
	}

	// Lines 9-13: split v's ancestor supernodes from istart up to level,
	// propagating changes to all finer components after each split.
	istart := level
	for i := 1; i <= level; i++ {
		if ms.comps[i].NodeOf(relevant[0]).K() < i {
			istart = i
			break
		}
	}
	for i := istart; i <= level; i++ {
		for _, grp := range groupByNode(ms.comps[i], relevant) {
			if grp.node.K() >= i {
				continue
			}
			ms.splitNodeStar(i, grp.node, grp.members)
		}
	}
}

// splitNodeStar is SPLITNODE*(v, i, relevantData): split v (a node of
// component Ii) using the parents of its supernode in Ii−1, which are
// "perfectly qualified" — their local similarity cannot exceed i−1 because
// Ii−1 caps it — so the split is never finer than i-bisimilarity requires.
// Pieces without relevant data merge into a remainder that keeps the old
// local similarity; riders (members with parents in unqualified Ii−1 nodes)
// are evicted into the remainder to preserve Property 1, mirroring the
// M(k) implementation. The split is then propagated to finer components so
// they remain refinements.
func (ms *MStar) splitNodeStar(level int, v *index.Node, relevant []graph.NodeID) {
	if v.Dead() || v.K() >= level {
		return
	}
	fine := ms.comps[level]
	coarse := ms.comps[level-1]
	predAll := ms.data.Pred(relevant)
	super := coarse.NodeOf(relevant[0])

	kold := v.K()
	qualified := make(map[index.NodeID]bool)
	pieces := [][]graph.NodeID{v.Extent()}
	for _, u := range coarse.Parents(super) {
		if !graph.Intersects(u.Extent(), predAll) {
			continue
		}
		qualified[u.ID()] = true
		succ := ms.data.Succ(u.Extent())
		next := pieces[:0:0]
		for _, w := range pieces {
			if in := graph.Intersect(w, succ); len(in) > 0 {
				next = append(next, in)
			}
			if out := graph.Subtract(w, succ); len(out) > 0 {
				next = append(next, out)
			}
		}
		pieces = next
	}

	var kept [][]graph.NodeID
	var ks []int
	var rest []graph.NodeID
	for _, w := range pieces {
		if !graph.Intersects(w, relevant) {
			rest = graph.Union(rest, w)
			continue
		}
		var keep, evict []graph.NodeID
		for _, o := range w {
			if hasUnqualifiedParentIn(ms.data, coarse, o, qualified) {
				evict = append(evict, o)
			} else {
				keep = append(keep, o)
			}
		}
		if len(evict) > 0 {
			rest = graph.Union(rest, evict)
			w = keep
		}
		kept = append(kept, w)
		ks = append(ks, level)
	}
	if len(rest) > 0 {
		kept = append(kept, rest)
		ks = append(ks, kold)
	}
	newNodes := fine.Split(v, kept, ks)

	// Line 13: propagate the change to all subsequent component indexes.
	affected := make([][]graph.NodeID, len(newNodes))
	for i, n := range newNodes {
		affected[i] = n.Extent()
	}
	ms.propagate(level, affected)
}

func hasUnqualifiedParentIn(g *graph.Graph, coarse *index.Graph, o graph.NodeID, qualified map[index.NodeID]bool) bool {
	for _, p := range g.Parents(o) {
		if !qualified[coarse.NodeOf(p).ID()] {
			return true
		}
	}
	return false
}

// propagate re-aligns components finer than the given level after a split:
// any finer-component node that now straddles multiple coarser nodes is
// split along the coarser partition, and local similarities are raised to
// the supernode's (a subset of a k-bisimilar extent is k-bisimilar), keeping
// Properties 3-5 of the M*(k)-index.
func (ms *MStar) propagate(level int, affected [][]graph.NodeID) {
	for j := level + 1; j < len(ms.comps); j++ {
		coarse, fine := ms.comps[j-1], ms.comps[j]
		var next [][]graph.NodeID
		for _, grp := range groupExtents(fine, affected) {
			w := grp.node
			// Partition w's extent by the coarser component's nodes.
			sub := groupByNode(coarse, w.Extent())
			if len(sub) == 1 {
				superK := sub[0].node.K()
				if superK > w.K() {
					fine.SetK(w, superK)
					next = append(next, w.Extent())
				}
				continue
			}
			pieces := make([][]graph.NodeID, len(sub))
			ks := make([]int, len(sub))
			for i, sg := range sub {
				pieces[i] = sg.members
				ks[i] = w.K()
				if sk := sg.node.K(); sk > ks[i] {
					ks[i] = sk
				}
			}
			for _, n := range fine.Split(w, pieces, ks) {
				next = append(next, n.Extent())
			}
		}
		if len(next) == 0 {
			return
		}
		affected = next
	}
}

// groupExtents returns the distinct live nodes of ig owning members of the
// given extents.
func groupExtents(ig *index.Graph, extents [][]graph.NodeID) []nodeGroup {
	seen := make(map[index.NodeID]bool)
	var out []nodeGroup
	for _, ext := range extents {
		for _, o := range ext {
			n := ig.NodeOf(o)
			if !seen[n.ID()] {
				seen[n.ID()] = true
				out = append(out, nodeGroup{node: n, members: n.Extent()})
			}
		}
	}
	return out
}

// promoteStar is PROMOTE*(v, level): REFINENODE* without relevant-data
// selectivity (all data nodes of v count as relevant), used by REFINE* to
// break false instances of the FUP. stop is checked repeatedly; once it
// reports the instance is gone, the recursion unwinds ("long jump").
// It returns true when the stop condition fired.
func (ms *MStar) promoteStar(level int, v *index.Node, stop func() bool) bool {
	if stop() {
		return true
	}
	if v.Dead() || v.K() >= level || level == 0 {
		return false
	}
	coarse := ms.comps[level-1]
	rep := v.Extent()[0]
	predAll := ms.data.Pred(v.Extent())
	for {
		if v.Dead() {
			return false
		}
		super := coarse.NodeOf(rep)
		var u *index.Node
		for _, p := range coarse.Parents(super) {
			if p.K() < level-1 && graph.Intersects(p.Extent(), predAll) {
				u = p
				break
			}
		}
		if u == nil {
			break
		}
		if ms.promoteStar(level-1, u, stop) {
			return true
		}
	}
	if v.Dead() {
		return false
	}
	// Split v's ancestor supernodes from istart upward, all data relevant.
	istart := level
	for i := 1; i <= level; i++ {
		if ms.comps[i].NodeOf(rep).K() < i {
			istart = i
			break
		}
	}
	for i := istart; i <= level; i++ {
		for _, grp := range groupByNode(ms.comps[i], v.Extent()) {
			if grp.node.K() >= i {
				continue
			}
			ms.splitNodeStar(i, grp.node, grp.members)
			if stop() {
				return true
			}
		}
	}
	return stop()
}
