package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"mrx/internal/baseline"
	"mrx/internal/graph"
	"mrx/internal/gtest"
	"mrx/internal/index"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

func TestMKStartsAsA0(t *testing.T) {
	g := graph.PaperFigure1()
	mk := NewMK(g)
	if err := mk.Index().Validate(true); err != nil {
		t.Fatal(err)
	}
	if mk.Index().NumNodes() != g.NumLabels() {
		t.Fatalf("initial nodes = %d, want %d", mk.Index().NumNodes(), g.NumLabels())
	}
	mk.Index().ForEachNode(func(n *index.Node) {
		if n.K() != 0 {
			t.Errorf("initial k = %d", n.K())
		}
	})
}

func TestMKFigure3NoOverRefinement(t *testing.T) {
	// Figure 3(d): supporting r/a/b refines only the relevant b node {4};
	// all irrelevant b's stay together in one k=0 node.
	g := graph.PaperFigure3()
	mk := NewMK(g)
	mk.Support(mustParse("r/a/b"))
	ig := mk.Index()
	if err := ig.Validate(true); err != nil {
		t.Fatal(err)
	}
	bLabel, _ := g.LabelIDOf("b")
	bNodes := ig.NodesWithLabel(bLabel)
	if len(bNodes) != 2 {
		t.Fatalf("M(k) should produce exactly 2 b nodes, got %d", len(bNodes))
	}
	byK := map[int][]graph.NodeID{}
	for _, n := range bNodes {
		byK[n.K()] = n.Extent()
	}
	if !reflect.DeepEqual(byK[2], []graph.NodeID{4}) {
		t.Errorf("relevant piece = %v, want [4] at k=2", byK[2])
	}
	if !reflect.DeepEqual(byK[0], []graph.NodeID{5, 6, 7, 8, 9}) {
		t.Errorf("remainder = %v, want [5..9] at k=0", byK[0])
	}
	// 6 index nodes total (figure 3(d)): r, a, c, d, b{4}, b{5..9}.
	if ig.NumNodes() != 6 {
		t.Errorf("nodes = %d, want 6", ig.NumNodes())
	}
	// Contrast with D(k)-promote on the same FUP: strictly more nodes.
	dk := baseline.NewDKPromote(g)
	dk.Support(mustParse("r/a/b"))
	if dk.Index().NumNodes() <= ig.NumNodes() {
		t.Errorf("D(k)-promote (%d nodes) should exceed M(k) (%d nodes)",
			dk.Index().NumNodes(), ig.NumNodes())
	}
}

func TestMKFigure6RefinedExtents(t *testing.T) {
	// Our reconstruction of figure 6: supporting r/a/b/c yields the index of
	// figure 6(c): a{1} k=1, a{5} k=0, b{4} k=2, b{3,8} k=0, c{7} k=3,
	// c{6} k=0, plus r and d.
	g := graph.PaperFigure6()
	mk := NewMK(g)
	mk.Support(mustParse("r/a/b/c"))
	ig := mk.Index()
	if err := ig.Validate(true); err != nil {
		t.Fatal(err)
	}
	type nk struct {
		ext string
		k   int
	}
	var got []nk
	ig.ForEachNode(func(n *index.Node) {
		got = append(got, nk{extString(n.Extent()), n.K()})
	})
	want := map[nk]bool{
		{"0", 0}: true, {"2", 0}: true,
		{"1", 1}: true, {"5", 0}: true,
		{"4", 2}: true, {"3,8", 0}: true,
		{"7", 3}: true, {"6", 0}: true,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d nodes %v, want %d", len(got), got, len(want))
	}
	for _, n := range got {
		if !want[n] {
			t.Errorf("unexpected node %v", n)
		}
	}
}

func extString(ext []graph.NodeID) string {
	s := ""
	for i, o := range ext {
		if i > 0 {
			s += ","
		}
		s += string(rune('0' + int(o)))
	}
	return s
}

func TestMKFigure4SuffersOverqualifiedParents(t *testing.T) {
	// The paper notes M(k) still over-refines under overqualified parents.
	// Start from figure 4(b)'s pre-split state and refine c to k=1 with both
	// data nodes relevant: the overqualified b parents split c{4,5} apart
	// even though 4 and 5 are 1-bisimilar.
	g := graph.PaperFigure4()
	mk := NewMK(g)
	ig := mk.Index()
	bLabel, _ := g.LabelIDOf("b")
	ig.Split(ig.NodesWithLabel(bLabel)[0], [][]graph.NodeID{{2}, {3}}, []int{2, 2})
	aLabel, _ := g.LabelIDOf("a")
	ig.SetK(ig.NodesWithLabel(aLabel)[0], 1)
	ig.SetK(ig.Root(), 1)

	e := mustParse("//b/c")
	res := query.EvalIndex(ig, e)
	mk.Refine(e, res.Targets, res.Answer)
	if err := ig.Validate(true); err != nil {
		t.Fatal(err)
	}
	cLabel, _ := g.LabelIDOf("c")
	if got := len(ig.NodesWithLabel(cLabel)); got != 2 {
		t.Fatalf("M(k) with overqualified parents should split c into 2 nodes, got %d", got)
	}
}

func TestMKSupportsWorkloadPrecisely(t *testing.T) {
	g := gtest.Random(9, 250, 5, 0.25)
	d := query.NewDataIndex(g)
	mk := NewMK(g)
	fups := []*pathexpr.Expr{
		mustParse("//l0/l1"),
		mustParse("//l2/l3/l4"),
		mustParse("//l1/l1"),
		mustParse("//l4/l0/l2"),
		mustParse("//l3"),
	}
	for _, e := range fups {
		mk.Support(e)
		if err := mk.Index().Validate(true); err != nil {
			t.Fatalf("after %s: %v", e, err)
		}
	}
	for _, e := range fups {
		res := mk.Query(e)
		if !res.Precise {
			t.Errorf("%s not precise after refinement", e)
		}
		if want := d.Eval(e); !reflect.DeepEqual(res.Answer, want) {
			t.Errorf("%s: answer %v want %v", e, res.Answer, want)
		}
	}
}

func TestMKNeverLargerThanDKPromote(t *testing.T) {
	// The M(k)-index avoids over-refinement for irrelevant data nodes, so on
	// identical FUP sequences it should not exceed D(k)-promote in size.
	for seed := int64(0); seed < 5; seed++ {
		g := gtest.Random(seed, 150, 5, 0.3)
		fups := []*pathexpr.Expr{
			mustParse("//l0/l1/l2"),
			mustParse("//l2/l0"),
			mustParse("//l3/l4/l0"),
		}
		mk := NewMK(g)
		dk := baseline.NewDKPromote(g)
		for _, e := range fups {
			mk.Support(e)
			dk.Support(e)
		}
		if mk.Index().NumNodes() > dk.Index().NumNodes() {
			t.Errorf("seed %d: M(k) %d nodes > D(k)-promote %d nodes",
				seed, mk.Index().NumNodes(), dk.Index().NumNodes())
		}
	}
}

// Property: after supporting random FUP sequences on random graphs, the
// M(k)-index keeps all invariants (including P1 k-bisimilarity) and answers
// every supported FUP precisely and correctly.
func TestPropertyMKRefinement(t *testing.T) {
	exprs := []string{"//l0/l1", "//l1/l2/l0", "//l2", "//l0/l0", "//l3/l1", "//l1/l0/l2/l1"}
	check := func(seed int64) bool {
		g := gtest.Random(seed, 70, 4, 0.3)
		d := query.NewDataIndex(g)
		mk := NewMK(g)
		for _, s := range exprs {
			e := mustParse(s)
			mk.Support(e)
			if err := mk.Index().Validate(true); err != nil {
				t.Logf("seed %d after %s: %v", seed, s, err)
				return false
			}
		}
		for _, s := range exprs {
			e := mustParse(s)
			res := mk.Query(e)
			if !res.Precise {
				t.Logf("seed %d: %s imprecise", seed, s)
				return false
			}
			if !reflect.DeepEqual(res.Answer, d.Eval(e)) {
				t.Logf("seed %d: %s wrong answer", seed, s)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
