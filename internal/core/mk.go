// Package core implements the paper's contributions: the M(k)-index
// (workload-adaptive, never over-refined for irrelevant index or data nodes)
// and the M*(k)-index (a multiresolution hierarchy of M(k)-indexes that also
// eliminates over-refinement due to overqualified parents).
//
// Both indexes start as an A(0)-index and are refined incrementally for each
// frequently-used path expression (FUP) extracted from the query workload,
// following the operational loop of Figure 5 in the paper: answer queries on
// the index (validating when imprecise), extract FUPs, refine, repeat.
package core

import (
	"sync/atomic"

	"mrx/internal/graph"
	"mrx/internal/index"
	"mrx/internal/partition"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

// MK is the M(k)-index: a single-resolution-per-node adaptive structural
// index refined with the target-set-aware REFINE procedure of §3.2.
type MK struct {
	ig *index.Graph

	// Literal selects the paper-literal REFINENODE split, which can violate
	// Property 1: a data node that matches the relevant nodes' membership
	// pattern across the qualified parents, but also has a parent in an
	// unqualified index node, rides into a kept piece without being
	// k-bisimilar to it. The default (false) evicts such riders into the
	// remainder node, which restores P1 at negligible cost and never evicts
	// relevant data nodes (all their parents are in qualified nodes by
	// definition of Pred(relevantData)). See DESIGN.md §"Deviations".
	Literal bool
}

// NewMK initializes the M(k)-index of g as an A(0)-index (step 1 of the
// paper's operational overview).
func NewMK(g *graph.Graph) *MK {
	p := partition.ByLabel(g)
	return &MK{ig: index.FromPartition(g, p, func(partition.BlockID) int { return 0 })}
}

// Index exposes the underlying index graph for querying and metrics.
func (m *MK) Index() *index.Graph { return m.ig }

// Query evaluates e on the current index, validating under-refined answers
// against the data graph, and returns the paper's cost breakdown.
func (m *MK) Query(e *pathexpr.Expr) query.Result { return query.EvalIndex(m.ig, e) }

// Support refines the index so that the FUP e is answered precisely. It
// first evaluates e to obtain S (the target set in the index graph) and T
// (the validated target set in the data graph) and then runs REFINE(e, S, T).
func (m *MK) Support(e *pathexpr.Expr) {
	res := query.EvalIndex(m.ig, e)
	m.Refine(e, res.Targets, res.Answer)
}

// Refine is the paper's REFINE(l, S, T): for each index node in the target
// set S, raise its local similarity to length(l) while passing down only the
// relevant data nodes (those in T), then break any remaining instance of l
// that leads to under-refined nodes using PROMOTE'.
func (m *MK) Refine(e *pathexpr.Expr, s []*index.Node, t []graph.NodeID) {
	if e.HasDescendantStep() {
		return // unbounded path lengths: no finite resolution supports them
	}
	k := e.RequiredK()
	// Capture each target's relevant data up front: refining one target can
	// split another before we reach it, and refineNode regroups by the
	// current owner of each relevant data node when that happens.
	relevants := make([][]graph.NodeID, len(s))
	for i, v := range s {
		relevants[i] = graph.Intersect(v.Extent(), t)
	}
	for i, v := range s {
		if len(relevants[i]) == 0 {
			continue
		}
		m.refineNode(v, k, relevants[i])
	}
	// Lines 3-4 of REFINE: break surviving instances of l that lead to
	// false positives.
	for {
		v := m.underRefinedTarget(e, k)
		if v == nil {
			return
		}
		m.promotePrime(v, k, func() bool { return m.underRefinedTarget(e, k) == nil })
	}
}

// underRefinedTarget returns some index node that has e as an incoming path
// and local similarity below k, or nil.
func (m *MK) underRefinedTarget(e *pathexpr.Expr, k int) *index.Node {
	for _, v := range query.TargetNodes(m.ig, e) {
		if v.K() < k {
			return v
		}
	}
	return nil
}

// refineRegrouped re-dispatches refinement for relevant data nodes whose
// index node was retired mid-refinement (possible on cyclic graphs): group
// them by their current index node and refine each group.
func (m *MK) refineRegrouped(k int, relevant []graph.NodeID) {
	groups := make(map[index.NodeID][]graph.NodeID)
	var order []index.NodeID
	for _, o := range relevant {
		n := m.ig.NodeOf(o)
		if _, ok := groups[n.ID()]; !ok {
			order = append(order, n.ID())
		}
		groups[n.ID()] = append(groups[n.ID()], o)
	}
	for _, id := range order {
		m.refineNode(m.ig.Node(id), k, groups[id])
	}
}

// refineNode is the paper's REFINENODE(v, k, relevantData): recursively
// refine the parents that can reach the relevant data, then split v by the
// successors of those parents only, and merge all pieces containing no
// relevant data back into a single remainder node that keeps the old local
// similarity. This is what makes the M(k)-index immune to over-refinement
// for irrelevant index and data nodes.
func (m *MK) refineNode(v *index.Node, k int, relevant []graph.NodeID) {
	if v.Dead() {
		m.refineRegrouped(k, relevant)
		return
	}
	if v.K() >= k {
		return
	}
	data := m.ig.Data()
	predAll := data.Pred(relevant)

	// Lines 2-7: recursively refine qualified parents (those whose extent
	// contains a parent of a relevant data node) to k-1. Splits during the
	// recursion can change v's parent set, so rescan until stable.
	for {
		if v.Dead() {
			m.refineRegrouped(k, relevant)
			return
		}
		var u *index.Node
		var predData []graph.NodeID
		for _, p := range m.ig.Parents(v) {
			if p.K() >= k-1 {
				continue
			}
			if pd := graph.Intersect(p.Extent(), predAll); len(pd) > 0 {
				u, predData = p, pd
				break
			}
		}
		if u == nil {
			break
		}
		m.refineNode(u, k-1, predData)
	}

	// Lines 9-17: split v by Succ of each qualified parent.
	kold := v.K()
	qualified := make(map[index.NodeID]bool)
	pieces := [][]graph.NodeID{v.Extent()}
	for _, u := range m.ig.Parents(v) {
		if !graph.Intersects(u.Extent(), predAll) {
			continue
		}
		qualified[u.ID()] = true
		succ := data.Succ(u.Extent())
		next := pieces[:0:0]
		for _, w := range pieces {
			if in := graph.Intersect(w, succ); len(in) > 0 {
				next = append(next, in)
			}
			if out := graph.Subtract(w, succ); len(out) > 0 {
				next = append(next, out)
			}
		}
		pieces = next
	}

	// Lines 19-26: merge pieces without relevant data into one remainder
	// node that keeps the old local similarity. Unless running in Literal
	// mode, additionally evict riders — members with a parent in an
	// unqualified index node — from kept pieces into the remainder, since
	// they are not guaranteed k-bisimilar to the relevant members.
	var kept [][]graph.NodeID
	var ks []int
	var rest []graph.NodeID
	for _, w := range pieces {
		if !graph.Intersects(w, relevant) {
			rest = graph.Union(rest, w)
			continue
		}
		if !m.Literal {
			var keep, evict []graph.NodeID
			for _, o := range w {
				if m.hasUnqualifiedParent(o, qualified) {
					evict = append(evict, o)
				} else {
					keep = append(keep, o)
				}
			}
			if len(evict) > 0 {
				rest = graph.Union(rest, evict)
				w = keep
			}
		}
		kept = append(kept, w)
		ks = append(ks, k)
	}
	if len(rest) > 0 {
		kept = append(kept, rest)
		ks = append(ks, kold)
	}
	m.ig.Split(v, kept, ks)
}

// hasUnqualifiedParent reports whether data node o has a parent whose index
// node is not in the qualified set.
func (m *MK) hasUnqualifiedParent(o graph.NodeID, qualified map[index.NodeID]bool) bool {
	for _, p := range m.ig.Data().Parents(o) {
		if !qualified[m.ig.NodeOf(p).ID()] {
			return true
		}
	}
	return false
}

// promotePrime is PROMOTE' (§3.2): the D(k) PROMOTE procedure augmented with
// an early-exit check. Its purpose is not refinement per se but breaking a
// false instance of the FUP; as soon as stop() reports that no instance
// leads to an under-refined node, the whole recursion unwinds. It returns
// true when the stop condition fired.
func (m *MK) promotePrime(v *index.Node, kv int, stop func() bool) bool {
	PromotePrimeCalls.Add(1)
	if stop() {
		return true
	}
	if v.Dead() || v.K() >= kv {
		return false
	}
	// Promote parents to kv-1, checking the exit condition as we go.
	for {
		if v.Dead() {
			return false
		}
		var u *index.Node
		for _, p := range m.ig.Parents(v) {
			if p.K() < kv-1 {
				u = p
				break
			}
		}
		if u == nil {
			break
		}
		if m.promotePrime(u, kv-1, stop) {
			return true
		}
	}
	// Split v by the successors of each parent; all pieces get kv.
	pieces := [][]graph.NodeID{v.Extent()}
	for _, u := range m.ig.Parents(v) {
		succ := m.ig.Data().Succ(u.Extent())
		next := pieces[:0:0]
		for _, w := range pieces {
			if in := graph.Intersect(w, succ); len(in) > 0 {
				next = append(next, in)
			}
			if out := graph.Subtract(w, succ); len(out) > 0 {
				next = append(next, out)
			}
		}
		pieces = next
	}
	ks := make([]int, len(pieces))
	for i := range ks {
		ks[i] = kv
	}
	m.ig.Split(v, pieces, ks)
	return stop()
}

// PromotePrimeCalls counts PROMOTE' invocations for diagnostics and tests.
// It is atomic so refiners on distinct indexes may run concurrently.
var PromotePrimeCalls atomic.Int64
