package core

import (
	"mrx/internal/index"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

// QueryBottomUp implements the bottom-up strategy discussed in §4.1:
// evaluate progressively longer suffixes of the expression in progressively
// finer components, walking parent edges upward. Indexes based on
// k-bisimilarity guarantee nothing about outgoing paths, so every move to a
// finer component re-checks downward that the suffix still exists below the
// candidate — the overhead that makes bottom-up generally lose to top-down,
// which this implementation exists to demonstrate (see the strategies
// ablation). Rooted expressions fall back to naive evaluation.
func (ms *MStar) QueryBottomUp(e *pathexpr.Expr) query.Result {
	return ms.queryBottomUp(e, ms.validateOpts())
}

func (ms *MStar) queryBottomUp(e *pathexpr.Expr, opt query.ValidateOpts) query.Result {
	if e.Rooted || e.HasDescendantStep() {
		return ms.queryNaive(e, opt)
	}
	var res query.Result
	res.Precise = true
	j := e.Length()
	maxLvl := len(ms.comps) - 1

	// Suffix holders at suffix length 0: nodes carrying the last label, I0.
	var frontier []*index.Node
	last := e.Steps[j]
	if last.Wildcard {
		ms.comps[0].ForEachNode(func(n *index.Node) { frontier = append(frontier, n) })
	} else if l, ok := ms.data.LabelIDOf(last.Label); ok {
		frontier = ms.comps[0].NodesWithLabel(l)
	}
	res.Cost.IndexNodes += len(frontier)

	prev := 0
	for i := 1; i <= j && len(frontier) > 0; i++ {
		lvl := i
		if lvl > maxLvl {
			lvl = maxLvl
		}
		if lvl != prev {
			frontier = ms.descend(frontier, lvl)
			res.Cost.IndexNodes += len(frontier)
			prev = lvl
		}
		comp := ms.comps[lvl]
		step := e.Steps[j-i]
		suffix := e.Steps[j-i:]
		check := newSuffixChecker(ms, comp, &res.Cost)
		seen := make(map[index.NodeID]bool)
		var next []*index.Node
		for _, c := range frontier {
			for _, p := range comp.Parents(c) {
				res.Cost.IndexNodes++
				if seen[p.ID()] || !step.Matches(ms.data.LabelName(p.Label())) {
					continue
				}
				seen[p.ID()] = true
				// Downward check: the suffix must exist below p in this
				// (finer) component, since subnodes may have fewer outgoing
				// paths than their supernodes.
				if check.has(p, suffix) {
					next = append(next, p)
				}
			}
		}
		frontier = next
	}

	// frontier now holds verified path *starters* (position 0). Collect the
	// path *ends* (the target set) with a forward pass in the finest needed
	// component, restricted to the verified starters.
	lvl := j
	if lvl > maxLvl {
		lvl = maxLvl
	}
	if lvl != prev {
		frontier = ms.descend(frontier, lvl)
		res.Cost.IndexNodes += len(frontier)
	}
	comp := ms.comps[lvl]
	for i := 1; i <= j && len(frontier) > 0; i++ {
		seen := make(map[index.NodeID]bool)
		var next []*index.Node
		for _, u := range frontier {
			for _, c := range comp.Children(u) {
				res.Cost.IndexNodes++
				if !seen[c.ID()] && e.Steps[i].Matches(ms.data.LabelName(c.Label())) {
					seen[c.ID()] = true
					next = append(next, c)
				}
			}
		}
		frontier = next
	}
	sortNodes(frontier)
	res.Targets = frontier
	ms.finish(&res, e, opt)
	return res
}

// suffixChecker memoizes "does an outgoing instance of steps[i:] start at
// node v" within one component, counting node visits.
type suffixChecker struct {
	ms   *MStar
	comp *index.Graph
	cost *query.Cost
	memo map[suffixState]bool
}

type suffixState struct {
	id   index.NodeID
	step int
}

func newSuffixChecker(ms *MStar, comp *index.Graph, cost *query.Cost) *suffixChecker {
	return &suffixChecker{ms: ms, comp: comp, cost: cost, memo: make(map[suffixState]bool)}
}

// has reports whether an outgoing path matching steps starts at v (whose
// label must match steps[0]).
func (sc *suffixChecker) has(v *index.Node, steps []pathexpr.Step) bool {
	if !steps[0].Matches(sc.ms.data.LabelName(v.Label())) {
		return false
	}
	if len(steps) == 1 {
		return true
	}
	key := suffixState{v.ID(), len(steps)}
	if r, ok := sc.memo[key]; ok {
		return r
	}
	sc.memo[key] = false // cut cycles along reference edges
	ok := false
	for _, c := range sc.comp.Children(v) {
		sc.cost.IndexNodes++
		if sc.has(c, steps[1:]) {
			ok = true
			break
		}
	}
	sc.memo[key] = ok
	return ok
}
