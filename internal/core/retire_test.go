package core

import (
	"testing"

	"mrx/internal/datagen"
	"mrx/internal/gtest"
)

func TestRetireRebuildsWithoutFUP(t *testing.T) {
	g := datagen.XMarkGraph(0.005, 11)
	long := mustParse("//open_auction/bidder/personref/person/name")
	short := mustParse("//person/name")

	ms := NewMStar(g)
	ms.Support(long)
	ms.Support(short)
	if got := len(ms.SupportedFUPs()); got != 2 {
		t.Fatalf("registry size = %d, want 2", got)
	}
	if !ms.HasFUP(long) || !ms.HasFUP(short) {
		t.Fatal("registry missing a supported FUP")
	}
	compsBefore := ms.NumComponents()

	next, ok := ms.Retire(long)
	if !ok {
		t.Fatal("Retire of a supported FUP reported no-op")
	}
	// The receiver is untouched.
	if ms.NumComponents() != compsBefore || !ms.HasFUP(long) {
		t.Fatal("Retire mutated its receiver")
	}
	// The rebuilt index supports exactly the remaining FUP...
	if next.HasFUP(long) || !next.HasFUP(short) {
		t.Fatalf("rebuilt registry wrong: %v", next.SupportedFUPs())
	}
	if res := next.Query(short); !res.Precise {
		t.Error("surviving FUP imprecise after Retire")
	}
	// ...at reclaimed resolution: the retired FUP was the only one needing
	// deep components, so the rebuild must shrink the hierarchy.
	if next.NumComponents() >= compsBefore {
		t.Errorf("components = %d, want < %d (retired FUP reclaimed)",
			next.NumComponents(), compsBefore)
	}
	if next.NumComponents()-1 != short.RequiredK() {
		t.Errorf("components = %d, want resolution %d", next.NumComponents(), short.RequiredK())
	}
	// All M*(k) invariants hold on the rebuild.
	if err := next.Validate(false); err != nil {
		t.Fatalf("invariants after Retire: %v", err)
	}
	// Answers unchanged for both expressions.
	for _, e := range []string{"//open_auction/bidder/personref/person/name", "//person/name"} {
		q := mustParse(e)
		got := next.Query(q).Answer
		want := ms.Query(q).Answer
		if len(got) != len(want) {
			t.Fatalf("%s: %d answers after Retire, want %d", e, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: answer diverged after Retire", e)
			}
		}
	}

	// Retiring the last FUP yields a fresh I0-only index.
	final, ok := next.Retire(short)
	if !ok {
		t.Fatal("Retire of remaining FUP reported no-op")
	}
	if final.NumComponents() != 1 || len(final.SupportedFUPs()) != 0 {
		t.Fatalf("final index: %d components, %d FUPs; want 1, 0",
			final.NumComponents(), len(final.SupportedFUPs()))
	}
}

func TestRetireUnknownFUPIsNoop(t *testing.T) {
	g := gtest.Random(3, 200, 5, 0.1)
	ms := NewMStar(g)
	if _, ok := ms.Retire(mustParse("//l1/l2")); ok {
		t.Fatal("Retire on an empty registry should report false")
	}
	ms.Support(mustParse("//l1/l2"))
	if _, ok := ms.Retire(mustParse("//l2/l3")); ok {
		t.Fatal("Retire of an unregistered FUP should report false")
	}
}

// TestCloneCopiesRegistry: refining a clone must not leak FUPs into the
// original's registry (the engine publishes clones as immutable snapshots).
func TestCloneCopiesRegistry(t *testing.T) {
	g := gtest.Random(4, 300, 5, 0.1)
	ms := NewMStar(g)
	ms.Support(mustParse("//l1/l2"))

	cl := ms.Clone()
	cl.Support(mustParse("//l2/l3"))
	if ms.HasFUP(mustParse("//l2/l3")) {
		t.Fatal("clone refinement mutated the original registry")
	}
	if !cl.HasFUP(mustParse("//l1/l2")) || !cl.HasFUP(mustParse("//l2/l3")) {
		t.Fatal("clone registry incomplete")
	}
}
