package core

import (
	"mrx/internal/graph"
	"mrx/internal/pathexpr"
)

// mustParse parses a fixed test query literal.
func mustParse(s string) *pathexpr.Expr {
	e, err := pathexpr.Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}

// mustBuildSimple builds a hand-written test graph.
func mustBuildSimple(labels []string, tree, ref [][2]int) *graph.Graph {
	g, err := graph.BuildSimple(labels, tree, ref)
	if err != nil {
		panic(err)
	}
	return g
}
