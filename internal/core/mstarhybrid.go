package core

import (
	"mrx/internal/index"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

// QueryHybrid combines top-down and bottom-up evaluation as §4.1 sketches:
// the prefix up to a meeting point is evaluated top-down through the
// component hierarchy, the candidates are verified in the fine component,
// and the remaining suffix is expanded forward with bottom-up style
// pruning — children that cannot complete the suffix (checked downward with
// memoization) are never expanded. meet is the 0-based step position where
// the two directions meet; out-of-range values are clamped to the middle.
// Rooted expressions fall back to naive evaluation.
func (ms *MStar) QueryHybrid(e *pathexpr.Expr, meet int) query.Result {
	return ms.queryHybrid(e, meet, ms.validateOpts())
}

func (ms *MStar) queryHybrid(e *pathexpr.Expr, meet int, opt query.ValidateOpts) query.Result {
	if e.Rooted || e.HasDescendantStep() {
		return ms.queryNaive(e, opt)
	}
	j := e.Length()
	if meet < 0 || meet > j {
		meet = j / 2
	}
	var res query.Result
	res.Precise = true
	maxLvl := len(ms.comps) - 1

	// Top-down over the prefix e[0..meet].
	var frontier []*index.Node
	if e.Steps[0].Wildcard {
		ms.comps[0].ForEachNode(func(n *index.Node) { frontier = append(frontier, n) })
	} else if l, ok := ms.data.LabelIDOf(e.Steps[0].Label); ok {
		frontier = ms.comps[0].NodesWithLabel(l)
	}
	res.Cost.IndexNodes += len(frontier)
	prev := 0
	for i := 1; i <= meet && len(frontier) > 0; i++ {
		lvl := i
		if lvl > maxLvl {
			lvl = maxLvl
		}
		if lvl != prev {
			frontier = ms.descend(frontier, lvl)
			res.Cost.IndexNodes += len(frontier)
			prev = lvl
		}
		comp := ms.comps[lvl]
		seen := make(map[index.NodeID]bool)
		var next []*index.Node
		for _, u := range frontier {
			for _, c := range comp.Children(u) {
				res.Cost.IndexNodes++
				if !seen[c.ID()] && e.Steps[i].Matches(ms.data.LabelName(c.Label())) {
					seen[c.ID()] = true
					next = append(next, c)
				}
			}
		}
		frontier = next
	}

	// Meet in the fine component: re-establish genuine prefix instances
	// there, then expand the suffix with downward pruning.
	lvl := e.RequiredK()
	if lvl > maxLvl {
		lvl = maxLvl
	}
	if lvl != prev {
		frontier = ms.descend(frontier, lvl)
		res.Cost.IndexNodes += len(frontier)
	}
	comp := ms.comps[lvl]
	if meet > 0 {
		memo := make(map[prefixState]bool)
		var kept []*index.Node
		for _, c := range frontier {
			if ms.hasPrefixInto(comp, c, e.Steps[:meet+1], memo, &res.Cost) {
				kept = append(kept, c)
			}
		}
		frontier = kept
	}
	check := newSuffixChecker(ms, comp, &res.Cost)
	for i := meet + 1; i <= j && len(frontier) > 0; i++ {
		seen := make(map[index.NodeID]bool)
		var next []*index.Node
		for _, u := range frontier {
			for _, c := range comp.Children(u) {
				res.Cost.IndexNodes++
				if seen[c.ID()] || !e.Steps[i].Matches(ms.data.LabelName(c.Label())) {
					continue
				}
				seen[c.ID()] = true
				// Bottom-up style pruning: only expand children below which
				// the remaining suffix can still complete.
				if check.has(c, e.Steps[i:]) {
					next = append(next, c)
				}
			}
		}
		frontier = next
	}
	sortNodes(frontier)
	res.Targets = frontier
	ms.finish(&res, e, opt)
	return res
}
