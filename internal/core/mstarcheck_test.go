package core

import (
	"strings"
	"testing"

	"mrx/internal/graph"
	"mrx/internal/index"
)

// The M*(k) validator is the oracle for every property test, so check the
// oracle itself: each deliberately broken hierarchy must be caught with the
// right property name.
func TestMStarValidatorCatchesViolations(t *testing.T) {
	g := graph.PaperFigure7()

	build := func() *MStar {
		ms := NewMStar(g)
		ms.Support(mustParse("//b/a/c"))
		return ms
	}

	// P2: a component whose node claims k above the component's resolution.
	// The root node has no parents, so raising its k trips P2 rather than
	// the in-component parent constraint.
	ms := build()
	ms.Component(1).SetK(ms.Component(1).Root(), 2)
	if err := ms.Validate(false); err == nil || !strings.Contains(err.Error(), "P2") {
		t.Errorf("P2 violation not caught: %v", err)
	}

	// P3: a finer component that is not a refinement. Splitting a coarse
	// node without propagating leaves the finer components straddling.
	ms = build()
	i0 := ms.Component(0)
	cLabel, _ := g.LabelIDOf("c")
	cNode := i0.NodesWithLabel(cLabel)[0]
	i0.Split(cNode, [][]graph.NodeID{{4, 6}, {5, 7}}, []int{0, 0})
	if err := ms.Validate(false); err == nil || !strings.Contains(err.Error(), "P3") {
		t.Errorf("P3 violation not caught: %v", err)
	}

	// P4: subnode k more than one above its supernode's.
	ms = build()
	var c5 *index.Node
	ms.Component(2).ForEachNode(func(n *index.Node) {
		if n.Size() == 1 && n.Extent()[0] == 5 {
			c5 = n
		}
	})
	// c5 has k=2; its I1 supernode c[4 5] has k=1. Dropping the supernode to
	// k=0 makes the gap 2.
	super := ms.Supernode(c5, 1)
	ms.Component(1).SetK(super, 0)
	if err := ms.Validate(false); err == nil || !strings.Contains(err.Error(), "P") {
		t.Errorf("P4/P5 violation not caught: %v", err)
	}

	// A valid index still validates.
	if err := build().Validate(true); err != nil {
		t.Errorf("valid index rejected: %v", err)
	}
}

func TestMStarFromComponentsErrors(t *testing.T) {
	g := graph.PaperFigure7()
	ms := NewMStar(g)
	ms.Support(mustParse("//b/a/c"))

	if _, err := MStarFromComponents(g, nil); err == nil {
		t.Error("empty component list accepted")
	}

	other := graph.PaperFigure1()
	otherMS := NewMStar(other)
	if _, err := MStarFromComponents(g, []*index.Graph{otherMS.Component(0)}); err == nil {
		t.Error("component over different graph accepted")
	}

	// Components out of order violate the refinement property.
	bad := []*index.Graph{ms.Component(2).Clone(), ms.Component(0).Clone()}
	if _, err := MStarFromComponents(g, bad); err == nil {
		t.Error("non-nested components accepted")
	}

	// The legitimate component list round-trips.
	comps := make([]*index.Graph, ms.NumComponents())
	for i := range comps {
		comps[i] = ms.Component(i).Clone()
	}
	got, err := MStarFromComponents(g, comps)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sizes() != ms.Sizes() {
		t.Error("rebuilt index sizes differ")
	}
}
