package core

import (
	"reflect"
	"testing"

	"mrx/internal/datagen"
	"mrx/internal/query"
)

// MaxK bounds the component hierarchy: a FUP requiring k=4 on an index
// capped at 2 materializes components only up to I2 and stays imprecise.
func TestMStarOptsMaxKCap(t *testing.T) {
	g := datagen.XMarkGraph(0.01, 1)
	e := mustParse("//open_auction/bidder/personref/person/name")
	want := query.NewDataIndex(g).Eval(e)

	capped := NewMStarOpts(g, MStarOptions{MaxK: 2})
	capped.Support(e)
	if n := capped.NumComponents(); n != 3 {
		t.Errorf("capped components = %d, want 3 (I0..I2)", n)
	}
	res := capped.Query(e)
	if res.Precise {
		t.Error("k=4 FUP precise despite MaxK=2")
	}
	if !reflect.DeepEqual(res.Answer, want) {
		t.Error("capped index returned wrong answer")
	}

	free := NewMStar(g)
	free.Support(e)
	if n := free.NumComponents(); n <= 3 {
		t.Errorf("uncapped components = %d, want > 3", n)
	}
	if !free.Query(e).Precise {
		t.Error("uncapped index should be precise after Support")
	}
}

// The Strategy option routes Query through each evaluation strategy; all
// strategies must agree with ground truth, and the zero value must match
// QueryTopDown exactly.
func TestMStarOptsStrategyDispatch(t *testing.T) {
	g := datagen.XMarkGraph(0.01, 2)
	e := mustParse("//person/watches/watch")
	want := query.NewDataIndex(g).Eval(e)

	for _, s := range []Strategy{"", StrategyNaive, StrategyTopDown, StrategyBottomUp,
		StrategyHybrid, StrategySubpath, StrategyAuto} {
		ms := NewMStarOpts(g, MStarOptions{Strategy: s})
		ms.Support(mustParse("//person/watches")) // partial refinement
		if got := ms.Query(e); !reflect.DeepEqual(got.Answer, want) {
			t.Errorf("strategy %q: wrong answer (%d nodes, want %d)", s, len(got.Answer), len(want))
		}
	}

	zero := NewMStar(g)
	if got, td := zero.Query(e), zero.QueryTopDown(e); !reflect.DeepEqual(got, td) {
		t.Error("zero-value strategy should be exactly top-down")
	}
}

// Parallelism changes only the validation schedule, never the answer.
func TestMStarOptsParallelismEquivalence(t *testing.T) {
	g := datagen.XMarkGraph(0.02, 3)
	queries := []string{"//open_auction/bidder", "//item/name", "//person/watches/watch"}
	seq := NewMStar(g)
	par := NewMStarOpts(g, MStarOptions{Parallelism: 4})
	for _, s := range queries {
		e := mustParse(s)
		a, b := seq.Query(e), par.Query(e)
		if !reflect.DeepEqual(a.Answer, b.Answer) || a.Precise != b.Precise {
			t.Errorf("%s: parallel validation diverged", s)
		}
		if a.Cost.IndexNodes != b.Cost.IndexNodes {
			t.Errorf("%s: index traversal cost changed: %d vs %d", s, a.Cost.IndexNodes, b.Cost.IndexNodes)
		}
	}
}

// Clone yields an independently refinable copy: refining the clone must not
// change what the original serves, and vice versa.
func TestMStarCloneIndependence(t *testing.T) {
	g := datagen.XMarkGraph(0.01, 4)
	e := mustParse("//open_auction/bidder/personref")
	ms := NewMStar(g)
	before := ms.Query(e)

	cl := ms.Clone()
	cl.Support(e)
	if !cl.Query(e).Precise {
		t.Fatal("clone not precise after Support")
	}
	if ms.NumComponents() != 1 {
		t.Error("refining the clone grew the original's hierarchy")
	}
	after := ms.Query(e)
	if !reflect.DeepEqual(before, after) {
		t.Error("refining the clone changed the original's result")
	}

	ms.Support(mustParse("//item/name"))
	if got := cl.Query(e); !got.Precise {
		t.Error("refining the original disturbed the clone")
	}
	if err := cl.Validate(false); err != nil {
		t.Errorf("clone invariants: %v", err)
	}
	if err := ms.Validate(false); err != nil {
		t.Errorf("original invariants: %v", err)
	}
}
