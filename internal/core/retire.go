package core

import (
	"sort"

	"mrx/internal/pathexpr"
)

// recordFUP registers e in the supported-FUP registry; Refine calls it for
// every FUP it materializes resolution for (including MaxK-capped ones,
// which are supported at the capped resolution).
func (ms *MStar) recordFUP(e *pathexpr.Expr) {
	if ms.fups == nil {
		ms.fups = make(map[string]*pathexpr.Expr)
	}
	ms.fups[pathexpr.Canonical(e)] = e
}

// HasFUP reports whether the index has been refined for e (by canonical
// form). Refinement is monotone — splits are never undone except by Retire —
// so a registered FUP stays supported at its (possibly MaxK-capped)
// resolution until it is retired. The engine uses this as a cheap
// already-supported probe before cloning a snapshot.
func (ms *MStar) HasFUP(e *pathexpr.Expr) bool {
	_, ok := ms.fups[pathexpr.Canonical(e)]
	return ok
}

// SupportedFUPs returns the FUPs the index has been refined for, sorted by
// canonical form. The slice is fresh; the expressions are shared (they are
// immutable).
func (ms *MStar) SupportedFUPs() []*pathexpr.Expr {
	if len(ms.fups) == 0 {
		return nil
	}
	keys := make([]string, 0, len(ms.fups))
	for k := range ms.fups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*pathexpr.Expr, len(keys))
	for i, k := range keys {
		out[i] = ms.fups[k]
	}
	return out
}

// Retire removes support for a previously refined FUP by rebuilding: it
// constructs a fresh M*(k)-index over the same data graph and options and
// re-supports every other registered FUP, so the affected components are
// recomputed without the retired expression. It returns the rebuilt index
// and true, or (nil, false) when e is not in the registry (including any
// index loaded from a store, whose refinement history is not persisted).
// The receiver is never mutated — callers publishing snapshots swap in the
// returned index.
//
// Retire is rebuild-based by design: the paper defines PROMOTE′ (refinement
// only) and has no DEMOTE. Merging split nodes in place cannot work
// locally — a node split is shared evidence for every FUP whose instances
// pass through it, and un-splitting would have to prove no other supported
// FUP (nor Properties 1–5 of the component hierarchy) still needs the
// boundary. Rebuilding from the registry sidesteps that entirely: the result
// is, by construction, a valid M*(k)-index supporting exactly the remaining
// FUPs, with every invariant P1–P5 intact (mstarcheck verifies this in the
// differential tests). The cost is a full re-refinement pass, which is why
// the adaptive tuner retires FUPs rarely and with hysteresis.
func (ms *MStar) Retire(e *pathexpr.Expr) (*MStar, bool) {
	key := pathexpr.Canonical(e)
	if _, ok := ms.fups[key]; !ok {
		return nil, false
	}
	next := NewMStarOpts(ms.data, ms.opts)
	for _, fup := range ms.SupportedFUPs() {
		if pathexpr.Canonical(fup) == key {
			continue
		}
		next.Support(fup)
	}
	return next, true
}
