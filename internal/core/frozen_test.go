package core

import (
	"testing"

	"mrx/internal/graph"
	"mrx/internal/gtest"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

// Every frozen evaluation strategy must return the answers of its mutable
// counterpart, across refinement rounds that grow the component hierarchy.
// Bottom-up and hybrid are not ported to the frozen read path; their frozen
// dispatch serves top-down, which must still produce identical answers (the
// strategies differ only in traversal cost).
func TestFrozenStrategiesMatchMutable(t *testing.T) {
	strategies := []Strategy{
		StrategyNaive, StrategyTopDown, StrategySubpath,
		StrategyBottomUp, StrategyHybrid, StrategyAuto,
	}
	for seed := int64(0); seed < 4; seed++ {
		g := gtest.Random(seed, 100, 6, 0.3)
		ws := gtest.RandomWorkload(seed+50, g, gtest.WorkloadOptions{
			Size: 24, MaxLen: 4, Adversarial: 0.2, Rooted: 0.15, Wildcard: 0.1, DescAxis: 0.1,
		})
		exprs := make([]*pathexpr.Expr, len(ws))
		for i, w := range ws {
			e, err := pathexpr.Parse(w)
			if err != nil {
				t.Fatalf("parse %q: %v", w, err)
			}
			exprs[i] = e
		}
		for _, strat := range strategies {
			ms := NewMStarOpts(g, MStarOptions{Strategy: strat})
			fz := ms.Freeze()
			for round := 0; round < 3; round++ {
				for _, e := range exprs {
					want, _ := ms.QueryOpts(e, query.ValidateOpts{})
					got, _ := fz.QueryOpts(e, query.ValidateOpts{})
					if !sameAnswer(got.Answer, want.Answer) {
						t.Fatalf("seed %d strategy %s round %d %q: frozen %v, mutable %v",
							seed, strat, round, e, got.Answer, want.Answer)
					}
				}
				// Refine with a supportable expression, then re-freeze
				// incrementally and re-verify the flattening.
				for _, e := range exprs {
					if e.HasWildcard() || e.RequiredK() == pathexpr.Unbounded || e.RequiredK() <= round {
						continue
					}
					res, _ := fz.QueryOpts(e, query.ValidateOpts{})
					next := ms.Clone()
					next.Refine(e, res.Answer)
					fz = next.FreezeReusing(ms, fz)
					ms = next
					break
				}
				if err := fz.CheckAgainst(ms); err != nil {
					t.Fatalf("seed %d strategy %s round %d: %v", seed, strat, round, err)
				}
			}
		}
	}
}

// FreezeReusing must share untouched components with the base snapshot and
// re-freeze only dirtied ones.
func TestFreezeReusingShares(t *testing.T) {
	g := gtest.RandomShallow(7, 150, 5)
	ms := NewMStar(g)
	ws := gtest.RandomWorkload(8, g, gtest.WorkloadOptions{Size: 20, MaxLen: 3})
	fz := ms.Freeze()
	for _, w := range ws {
		e, err := pathexpr.Parse(w)
		if err != nil {
			t.Fatal(err)
		}
		if e.HasWildcard() || e.RequiredK() == pathexpr.Unbounded {
			continue
		}
		res, _ := fz.QueryOpts(e, query.ValidateOpts{})
		next := ms.Clone()
		next.Refine(e, res.Answer)
		nfz := next.FreezeReusing(ms, fz)
		for i := 0; i < nfz.NumComponents() && i < fz.NumComponents(); i++ {
			same := nfz.Component(i) == fz.Component(i)
			unchanged := next.Component(i).Version() == ms.Component(i).Version()
			if same != unchanged {
				t.Fatalf("%q component %d: shared=%v but version-unchanged=%v", w, i, same, unchanged)
			}
		}
		if err := nfz.CheckAgainst(next); err != nil {
			t.Fatalf("%q: %v", w, err)
		}
		ms, fz = next, nfz
	}
	if ms.NumComponents() < 2 {
		t.Fatal("workload never grew the hierarchy; test is vacuous")
	}
}

func TestUnchangedSince(t *testing.T) {
	g := gtest.RandomShallow(3, 120, 4)
	ms := NewMStar(g)
	clone := ms.Clone()
	if !clone.UnchangedSince(ms) {
		t.Error("fresh clone reported changed")
	}

	var fup *pathexpr.Expr
	for _, w := range gtest.RandomWorkload(4, g, gtest.WorkloadOptions{Size: 20, MaxLen: 3}) {
		e, err := pathexpr.Parse(w)
		if err != nil {
			t.Fatal(err)
		}
		if !e.HasWildcard() && e.RequiredK() >= 1 && e.RequiredK() != pathexpr.Unbounded {
			res := ms.Query(e)
			if !res.Precise {
				fup = e
				break
			}
		}
	}
	if fup == nil {
		t.Skip("no imprecise FUP in workload")
	}
	clone.Support(fup)
	if clone.UnchangedSince(ms) {
		t.Error("refinement left version vector unchanged")
	}
}

func TestFrozenAccessors(t *testing.T) {
	g := graph.PaperFigure1()
	ms := NewMStarOpts(g, MStarOptions{Strategy: StrategyAuto})
	fm := ms.Freeze()
	if fm.Data() != g {
		t.Error("Data diverges")
	}
	if fm.NumComponents() != ms.NumComponents() {
		t.Error("component count diverges")
	}
	if fm.Options().Strategy != StrategyAuto {
		t.Error("options not carried over")
	}
	if err := fm.Component(0).CheckAgainst(ms.Component(0)); err != nil {
		t.Error(err)
	}
}

func sameAnswer(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
