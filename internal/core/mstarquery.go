package core

import (
	"mrx/internal/graph"
	"mrx/internal/index"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

// Query evaluates e with the configured strategy (default top-down, §4.1),
// validating under-refined answers against the data graph.
func (ms *MStar) Query(e *pathexpr.Expr) query.Result {
	res, _ := ms.QueryOpts(e, ms.validateOpts())
	return res
}

// QueryNaive evaluates e entirely in component I_min(length, finest): the
// "naive evaluation" strategy of §4.1.
func (ms *MStar) QueryNaive(e *pathexpr.Expr) query.Result {
	return ms.queryNaive(e, ms.validateOpts())
}

func (ms *MStar) queryNaive(e *pathexpr.Expr, opt query.ValidateOpts) query.Result {
	lvl := e.RequiredK()
	if lvl >= len(ms.comps) {
		lvl = len(ms.comps) - 1
	}
	return query.EvalIndexOpts(ms.comps[lvl], e, opt)
}

// QueryTopDown is the paper's QUERYTOPDOWN: evaluate each prefix of e in the
// coarsest component that can support it, descending through the partition
// hierarchy via subnode links. Rooted expressions fall back to naive
// evaluation (the paper's workloads are descendant-anchored).
func (ms *MStar) QueryTopDown(e *pathexpr.Expr) query.Result {
	return ms.queryTopDown(e, ms.validateOpts())
}

func (ms *MStar) queryTopDown(e *pathexpr.Expr, opt query.ValidateOpts) query.Result {
	if e.Rooted || e.HasDescendantStep() {
		return ms.queryNaive(e, opt)
	}
	var res query.Result
	res.Precise = true
	maxLvl := len(ms.comps) - 1

	// Line 1: initial frontier in I0.
	var frontier []*index.Node
	if e.Steps[0].Wildcard {
		ms.comps[0].ForEachNode(func(n *index.Node) { frontier = append(frontier, n) })
	} else if l, ok := ms.data.LabelIDOf(e.Steps[0].Label); ok {
		frontier = ms.comps[0].NodesWithLabel(l)
	}
	res.Cost.IndexNodes += len(frontier)

	// Lines 2-4: at step i, descend to component I_min(i, finest) and follow
	// index edges there.
	prev := 0
	for i := 1; i < len(e.Steps) && len(frontier) > 0; i++ {
		lvl := i
		if lvl > maxLvl {
			lvl = maxLvl
		}
		if lvl != prev {
			frontier = ms.descend(frontier, lvl)
			res.Cost.IndexNodes += len(frontier)
			prev = lvl
		}
		comp := ms.comps[lvl]
		seen := make(map[index.NodeID]bool)
		var next []*index.Node
		for _, u := range frontier {
			for _, c := range comp.Children(u) {
				res.Cost.IndexNodes++
				if !seen[c.ID()] && e.Steps[i].Matches(ms.data.LabelName(c.Label())) {
					seen[c.ID()] = true
					next = append(next, c)
				}
			}
		}
		frontier = next
	}
	sortNodes(frontier)
	res.Targets = frontier

	// Lines 5-11: collect extents, validating under-refined nodes.
	ms.finish(&res, e, opt)
	return res
}

// finish collects the answer from res.Targets, validating the extents of
// under-refined nodes per opt; it fills Answer, the DataNodes cost and the
// Precise flag. Every query strategy ends with this step.
func (ms *MStar) finish(res *query.Result, e *pathexpr.Expr, opt query.ValidateOpts) {
	res.Answer, res.Cost.DataNodes, res.Precise, _ = query.CollectAnswers(ms.data, e, res.Targets, opt)
}

// descend maps a frontier of coarse-component nodes to their subnodes in
// component Ilevel.
func (ms *MStar) descend(frontier []*index.Node, level int) []*index.Node {
	fine := ms.comps[level]
	seen := make(map[index.NodeID]bool)
	var out []*index.Node
	for _, u := range frontier {
		for _, o := range u.Extent() {
			n := fine.NodeOf(o)
			if !seen[n.ID()] {
				seen[n.ID()] = true
				out = append(out, n)
			}
		}
	}
	sortNodes(out)
	return out
}

// QuerySubpath implements the subpath pre-filtering strategy of §4.1:
// evaluate the subpath e[start..end] (0-based step indexes, inclusive) in
// the coarse component I_(end-start), descend the matching nodes to the
// finest component needed by e, then verify the prefix backwards and
// evaluate the suffix forwards there, validating the final answers as usual.
func (ms *MStar) QuerySubpath(e *pathexpr.Expr, start, end int) query.Result {
	return ms.querySubpath(e, start, end, ms.validateOpts())
}

func (ms *MStar) querySubpath(e *pathexpr.Expr, start, end int, opt query.ValidateOpts) query.Result {
	if e.Rooted || e.HasDescendantStep() || start < 0 || end >= len(e.Steps) || start > end {
		return ms.queryNaive(e, opt)
	}
	var res query.Result
	res.Precise = true

	sub := &pathexpr.Expr{Steps: e.Steps[start : end+1]}
	subLvl := sub.Length()
	if subLvl > len(ms.comps)-1 {
		subLvl = len(ms.comps) - 1
	}
	var subCost query.Cost
	coarseHits := traverseComponent(ms.comps[subLvl], ms.data, sub, &subCost)
	res.Cost.Add(subCost)

	lvl := e.RequiredK()
	if lvl > len(ms.comps)-1 {
		lvl = len(ms.comps) - 1
	}
	comp := ms.comps[lvl]
	candidates := ms.descend(coarseHits, lvl)
	res.Cost.IndexNodes += len(candidates)

	// Verify the full prefix e[0..end] backwards from the candidates (which
	// sit at step position end). The coarse subpath match already filtered
	// most nodes; this pass establishes a genuine index instance in the fine
	// component, without which extents of high-k nodes could leak false
	// positives. The memo is shared across candidates, so overlapping
	// ancestor cones are walked once.
	if end > 0 {
		memo := make(map[prefixState]bool)
		var kept []*index.Node
		for _, c := range candidates {
			if ms.hasPrefixInto(comp, c, e.Steps[:end+1], memo, &res.Cost) {
				kept = append(kept, c)
			}
		}
		candidates = kept
	}

	// Evaluate the suffix e[end..] forwards from the candidates.
	frontier := candidates
	for i := end + 1; i < len(e.Steps) && len(frontier) > 0; i++ {
		seen := make(map[index.NodeID]bool)
		var next []*index.Node
		for _, u := range frontier {
			for _, c := range comp.Children(u) {
				res.Cost.IndexNodes++
				if !seen[c.ID()] && e.Steps[i].Matches(ms.data.LabelName(c.Label())) {
					seen[c.ID()] = true
					next = append(next, c)
				}
			}
		}
		frontier = next
	}
	sortNodes(frontier)
	res.Targets = frontier
	ms.finish(&res, e, opt)
	return res
}

// prefixState memoizes backward prefix checks per (node, step).
type prefixState struct {
	id   index.NodeID
	step int
}

// hasPrefixInto reports whether some label path matching steps (a prefix
// pattern ending at node v's step) leads into v in the component, walking
// parent edges backwards; each node examined is counted in cost. The memo
// is supplied by the caller so repeated checks share work.
func (ms *MStar) hasPrefixInto(comp *index.Graph, v *index.Node, steps []pathexpr.Step, memo map[prefixState]bool, cost *query.Cost) bool {
	var walk func(n *index.Node, step int) bool
	walk = func(n *index.Node, step int) bool {
		if !steps[step].Matches(ms.data.LabelName(n.Label())) {
			return false
		}
		if step == 0 {
			return true
		}
		key := prefixState{n.ID(), step}
		if r, ok := memo[key]; ok {
			return r
		}
		memo[key] = false
		ok := false
		for _, p := range comp.Parents(n) {
			cost.IndexNodes++
			if walk(p, step-1) {
				ok = true
				break
			}
		}
		memo[key] = ok
		return ok
	}
	return walk(v, len(steps)-1)
}

// traverseComponent evaluates a descendant expression over one component and
// returns the matched nodes, accumulating traversal cost.
func traverseComponent(comp *index.Graph, data *graph.Graph, e *pathexpr.Expr, cost *query.Cost) []*index.Node {
	var frontier []*index.Node
	if e.Steps[0].Wildcard {
		comp.ForEachNode(func(n *index.Node) { frontier = append(frontier, n) })
	} else if l, ok := data.LabelIDOf(e.Steps[0].Label); ok {
		frontier = comp.NodesWithLabel(l)
	}
	cost.IndexNodes += len(frontier)
	for i := 1; i < len(e.Steps) && len(frontier) > 0; i++ {
		seen := make(map[index.NodeID]bool)
		var next []*index.Node
		for _, u := range frontier {
			for _, c := range comp.Children(u) {
				cost.IndexNodes++
				if !seen[c.ID()] && e.Steps[i].Matches(data.LabelName(c.Label())) {
					seen[c.ID()] = true
					next = append(next, c)
				}
			}
		}
		frontier = next
	}
	sortNodes(frontier)
	return frontier
}
