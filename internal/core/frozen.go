package core

import (
	"fmt"

	"mrx/internal/graph"
	"mrx/internal/index"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

// FrozenMStar is the immutable, CSR-flattened read-path view of an
// M*(k)-index: one index.Frozen per component. The engine serves every
// query from a FrozenMStar while refinement keeps mutating the MStar it was
// frozen from; at publish time only the components whose Version changed
// are re-frozen (FreezeReusing), so an incremental refinement republishes
// mostly shared arrays.
//
// Query evaluation mirrors the mutable strategies but performs zero map
// operations: frontier bookkeeping uses stamp arrays over dense FrozenIDs
// and label lookups are array slices, which also makes traversal order
// deterministic. The demonstration strategies bottom-up and hybrid are not
// ported to the frozen read path; a FrozenMStar configured with them serves
// top-down instead (identical answers — the strategies differ only in cost
// profile — and QueryOpts reports the strategy that actually ran).
type FrozenMStar struct {
	data  *graph.Graph
	comps []*index.Frozen
	opts  MStarOptions
}

// Freeze flattens every component into an immutable snapshot.
func (ms *MStar) Freeze() *FrozenMStar {
	return ms.FreezeReusing(nil, nil)
}

// FreezeReusing is Freeze with cross-generation structural sharing: any
// component whose Version still equals the corresponding component of base
// is reused from baseFz instead of being re-frozen. base must be the MStar
// that ms was cloned from (the previously published generation) and baseFz
// a frozen view of base; pass nil, nil to freeze everything.
func (ms *MStar) FreezeReusing(base *MStar, baseFz *FrozenMStar) *FrozenMStar {
	comps := make([]*index.Frozen, len(ms.comps))
	for i, c := range ms.comps {
		if base != nil && baseFz != nil && i < len(base.comps) && i < len(baseFz.comps) &&
			c.Version() == base.comps[i].Version() {
			comps[i] = baseFz.comps[i]
			continue
		}
		comps[i] = c.Freeze()
	}
	return &FrozenMStar{data: ms.data, comps: comps, opts: ms.opts}
}

// UnchangedSince reports whether ms has the same component count and
// per-component versions as base. Versions only advance on observable
// mutations and Clone preserves them, so for a clone refined from base an
// unchanged version vector means the refinement was a no-op — the engine
// uses this to skip publishing identical snapshots without walking the
// graphs.
func (ms *MStar) UnchangedSince(base *MStar) bool {
	if len(ms.comps) != len(base.comps) {
		return false
	}
	for i := range ms.comps {
		if ms.comps[i].Version() != base.comps[i].Version() {
			return false
		}
	}
	return true
}

// Data returns the underlying data graph.
func (fm *FrozenMStar) Data() *graph.Graph { return fm.data }

// NumComponents returns the number of frozen component snapshots.
func (fm *FrozenMStar) NumComponents() int { return len(fm.comps) }

// Component returns frozen component Ii.
func (fm *FrozenMStar) Component(i int) *index.Frozen { return fm.comps[i] }

// Options returns the options of the index this view was frozen from.
func (fm *FrozenMStar) Options() MStarOptions { return fm.opts }

// CheckAgainst verifies that every frozen component is an exact flattening
// of the corresponding component of ms — the frozen ≡ mutable oracle the
// differential tests run after each refine-and-refreeze cycle.
func (fm *FrozenMStar) CheckAgainst(ms *MStar) error {
	if fm.NumComponents() != ms.NumComponents() {
		return fmt.Errorf("frozen M*(k): %d components, mutable has %d",
			fm.NumComponents(), ms.NumComponents())
	}
	for i, fz := range fm.comps {
		if err := fz.CheckAgainst(ms.comps[i]); err != nil {
			return fmt.Errorf("component I%d: %w", i, err)
		}
	}
	return nil
}

// Query evaluates e with the configured strategy and validation options.
func (fm *FrozenMStar) Query(e *pathexpr.Expr) query.Result {
	res, _ := fm.QueryOpts(e, query.ValidateOpts{Workers: fm.opts.Parallelism})
	return res
}

// QueryOpts evaluates e with the configured strategy under explicit
// validation options, reporting which strategy ran. This is the engine's
// read path: it touches only frozen arrays.
//
//mrx:hotpath root of every frozen query strategy (naive, top-down, subpath, auto)
func (fm *FrozenMStar) QueryOpts(e *pathexpr.Expr, opt query.ValidateOpts) (query.Result, Strategy) {
	switch fm.opts.Strategy {
	case StrategyNaive:
		return fm.queryNaive(e, opt), StrategyNaive
	case StrategyAuto:
		return fm.queryAuto(e, opt)
	case StrategySubpath:
		if e.Rooted || e.HasDescendantStep() {
			return fm.queryNaive(e, opt), StrategyNaive
		}
		_, start, end := fm.planner().estimateBestSubpath(e)
		return fm.querySubpath(e, start, end, opt), StrategySubpath
	default:
		// Top-down, including the unported bottom-up and hybrid
		// demonstration strategies (see the type comment).
		return fm.queryTopDown(e, opt), StrategyTopDown
	}
}

func (fm *FrozenMStar) planner() planner {
	return planner{levels: len(fm.comps), count: fm.countAt}
}

func (fm *FrozenMStar) countAt(level int, s pathexpr.Step) int {
	comp := fm.comps[level]
	if s.Wildcard {
		return comp.NumNodes()
	}
	l, ok := fm.data.LabelIDOf(s.Label)
	if !ok {
		return 0
	}
	return comp.CountLabel(l)
}

func (fm *FrozenMStar) queryAuto(e *pathexpr.Expr, opt query.ValidateOpts) (query.Result, Strategy) {
	if e.Rooted || e.HasDescendantStep() {
		return fm.queryNaive(e, opt), StrategyNaive
	}
	p := fm.planner()
	naive := p.estimateNaive(e)
	top := p.estimateTopDown(e)
	sub, start, end := p.estimateBestSubpath(e)
	switch {
	case sub < naive && sub < top:
		return fm.querySubpath(e, start, end, opt), StrategySubpath
	case top <= naive:
		return fm.queryTopDown(e, opt), StrategyTopDown
	default:
		return fm.queryNaive(e, opt), StrategyNaive
	}
}

// queryNaive evaluates e entirely in component I_min(length, finest).
func (fm *FrozenMStar) queryNaive(e *pathexpr.Expr, opt query.ValidateOpts) query.Result {
	lvl := fm.planner().clampLevel(e.RequiredK())
	return query.EvalFrozenOpts(fm.comps[lvl], e, opt)
}

// finish collects the answer from the frozen targets, mirroring
// MStar.finish.
func (fm *FrozenMStar) finish(res *query.Result, comp *index.Frozen, e *pathexpr.Expr, opt query.ValidateOpts) {
	res.Answer, res.Cost.DataNodes, res.Precise, _ = query.CollectAnswersFrozen(comp, e, res.FrozenTargets, opt)
}

// queryTopDown is QUERYTOPDOWN over frozen components: evaluate each prefix
// of e in the coarsest component that can support it, descending through
// the partition hierarchy. Rooted expressions fall back to naive
// evaluation, exactly like the mutable implementation.
func (fm *FrozenMStar) queryTopDown(e *pathexpr.Expr, opt query.ValidateOpts) query.Result {
	if e.Rooted || e.HasDescendantStep() {
		return fm.queryNaive(e, opt)
	}
	var res query.Result
	res.Precise = true
	maxLvl := len(fm.comps) - 1

	frontier := fm.initialFrontier(fm.comps[0], e.Steps[0], &res.Cost)
	prev := 0
	comp := fm.comps[0]
	for i := 1; i < len(e.Steps) && len(frontier) > 0; i++ {
		lvl := i
		if lvl > maxLvl {
			lvl = maxLvl
		}
		if lvl != prev {
			frontier = fm.descend(frontier, fm.comps[prev], fm.comps[lvl])
			res.Cost.IndexNodes += len(frontier)
			prev = lvl
		}
		comp = fm.comps[lvl]
		frontier = expandStep(comp, fm.data, frontier, e.Steps[i], &res.Cost)
	}
	sortFrozenIDs(frontier)
	res.FrozenTargets = frontier
	fm.finish(&res, comp, e, opt)
	return res
}

// initialFrontier materializes the step-0 frontier in a component.
func (fm *FrozenMStar) initialFrontier(comp *index.Frozen, s pathexpr.Step, cost *query.Cost) []index.FrozenID {
	var frontier []index.FrozenID
	if s.Wildcard {
		frontier = make([]index.FrozenID, comp.NumNodes())
		for i := range frontier {
			frontier[i] = index.FrozenID(i)
		}
	} else if l, ok := fm.data.LabelIDOf(s.Label); ok {
		frontier = append(frontier, comp.NodesWithLabel(l)...)
	}
	cost.IndexNodes += len(frontier)
	return frontier
}

// expandStep follows child edges from the frontier, keeping label matches,
// deduplicated through a stamp array.
func expandStep(comp *index.Frozen, data *graph.Graph, frontier []index.FrozenID, s pathexpr.Step, cost *query.Cost) []index.FrozenID {
	seen := query.NewMark(comp.NumNodes())
	seen.Next()
	next := make([]index.FrozenID, 0, len(frontier))
	for _, u := range frontier {
		for _, c := range comp.Children(u) {
			cost.IndexNodes++
			if !seen.Seen(c) && s.Matches(data.LabelName(comp.Label(c))) {
				seen.Set(c)
				next = append(next, c)
			}
		}
	}
	return next
}

// descend maps a frontier of coarse-component nodes to their subnodes in the
// fine component, via extent membership (supernode/subnode links are
// derived, not stored — same as the mutable index).
func (fm *FrozenMStar) descend(frontier []index.FrozenID, coarse, fine *index.Frozen) []index.FrozenID {
	seen := query.NewMark(fine.NumNodes())
	seen.Next()
	out := make([]index.FrozenID, 0, len(frontier))
	for _, u := range frontier {
		for _, o := range coarse.Extent(u) {
			n := fine.NodeOf(o)
			if !seen.Seen(n) {
				seen.Set(n)
				out = append(out, n)
			}
		}
	}
	sortFrozenIDs(out)
	return out
}

// querySubpath implements the subpath pre-filtering strategy over frozen
// components: evaluate e[start..end] in the coarse component I_(end-start),
// descend the matches to the finest component needed by e, verify the full
// prefix backwards there, then expand the suffix forwards.
func (fm *FrozenMStar) querySubpath(e *pathexpr.Expr, start, end int, opt query.ValidateOpts) query.Result {
	if e.Rooted || e.HasDescendantStep() || start < 0 || end >= len(e.Steps) || start > end {
		return fm.queryNaive(e, opt)
	}
	var res query.Result
	res.Precise = true

	sub := &pathexpr.Expr{Steps: e.Steps[start : end+1]}
	subLvl := fm.planner().clampLevel(sub.Length())
	coarseHits := fm.traverseComponent(fm.comps[subLvl], sub, &res.Cost)

	lvl := fm.planner().clampLevel(e.RequiredK())
	comp := fm.comps[lvl]
	candidates := fm.descend(coarseHits, fm.comps[subLvl], comp)
	res.Cost.IndexNodes += len(candidates)

	// Verify the full prefix e[0..end] backwards from the candidates; the
	// memo is a flat (node, step) table shared across candidates, so
	// overlapping ancestor cones are walked once.
	if end > 0 {
		memo := newPrefixMemo(comp.NumNodes(), end+1)
		kept := make([]index.FrozenID, 0, len(candidates))
		for _, c := range candidates {
			if fm.hasPrefixInto(comp, c, e.Steps[:end+1], memo, &res.Cost) {
				kept = append(kept, c)
			}
		}
		candidates = kept
	}

	frontier := candidates
	for i := end + 1; i < len(e.Steps) && len(frontier) > 0; i++ {
		frontier = expandStep(comp, fm.data, frontier, e.Steps[i], &res.Cost)
	}
	sortFrozenIDs(frontier)
	res.FrozenTargets = frontier
	fm.finish(&res, comp, e, opt)
	return res
}

// prefixMemo memoizes backward prefix checks per (node, step) in a flat
// table: 0 unknown, 1 true, 2 false.
type prefixMemo struct {
	state []uint8
	steps int
}

func newPrefixMemo(nodes, steps int) *prefixMemo {
	return &prefixMemo{state: make([]uint8, nodes*steps), steps: steps}
}

func (m *prefixMemo) at(v index.FrozenID, step int) uint8 { return m.state[int(v)*m.steps+step] }
func (m *prefixMemo) set(v index.FrozenID, step int, ok bool) {
	s := uint8(2)
	if ok {
		s = 1
	}
	m.state[int(v)*m.steps+step] = s
}

// hasPrefixInto reports whether some label path matching steps leads into
// frozen node v, walking parent edges backwards; each node examined is
// counted in cost.
func (fm *FrozenMStar) hasPrefixInto(comp *index.Frozen, v index.FrozenID, steps []pathexpr.Step, memo *prefixMemo, cost *query.Cost) bool {
	var walk func(n index.FrozenID, step int) bool
	walk = func(n index.FrozenID, step int) bool {
		if !steps[step].Matches(fm.data.LabelName(comp.Label(n))) {
			return false
		}
		if step == 0 {
			return true
		}
		if s := memo.at(n, step); s != 0 {
			return s == 1
		}
		memo.set(n, step, false)
		ok := false
		for _, p := range comp.Parents(n) {
			cost.IndexNodes++
			if walk(p, step-1) {
				ok = true
				break
			}
		}
		memo.set(n, step, ok)
		return ok
	}
	return walk(v, len(steps)-1)
}

// traverseComponent evaluates a descendant-free expression over one frozen
// component and returns the matched nodes, accumulating traversal cost.
func (fm *FrozenMStar) traverseComponent(comp *index.Frozen, e *pathexpr.Expr, cost *query.Cost) []index.FrozenID {
	frontier := fm.initialFrontier(comp, e.Steps[0], cost)
	for i := 1; i < len(e.Steps) && len(frontier) > 0; i++ {
		frontier = expandStep(comp, fm.data, frontier, e.Steps[i], cost)
	}
	sortFrozenIDs(frontier)
	return frontier
}

func sortFrozenIDs(ids []index.FrozenID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
}
