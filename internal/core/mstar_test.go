package core

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"mrx/internal/graph"
	"mrx/internal/gtest"
	"mrx/internal/index"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

func TestMStarInitial(t *testing.T) {
	g := graph.PaperFigure1()
	ms := NewMStar(g)
	if ms.NumComponents() != 1 {
		t.Fatalf("components = %d", ms.NumComponents())
	}
	if err := ms.Validate(true); err != nil {
		t.Fatal(err)
	}
	s := ms.Sizes()
	if s.Nodes != g.NumLabels() || s.CrossLinks != 0 {
		t.Fatalf("sizes = %+v", s)
	}
}

// TestMStarFigure7 reproduces the paper's Figure 7 exactly: supporting
// //b/a/c on the example graph yields three components with the drawn
// partitions and local similarities.
func TestMStarFigure7(t *testing.T) {
	g := graph.PaperFigure7()
	ms := NewMStar(g)
	e := mustParse("//b/a/c")

	// Ground truth first: the target set must be {5}.
	d := query.NewDataIndex(g)
	if want := d.Eval(e); !reflect.DeepEqual(want, []graph.NodeID{5}) {
		t.Fatalf("ground truth = %v, want [5]", want)
	}

	ms.Support(e)
	if err := ms.Validate(true); err != nil {
		t.Fatal(err)
	}
	if ms.NumComponents() != 3 {
		t.Fatalf("components = %d, want 3", ms.NumComponents())
	}

	describe := func(comp *index.Graph) map[string]int {
		out := map[string]int{}
		comp.ForEachNode(func(n *index.Node) {
			out[fmt.Sprintf("%s%v", g.LabelName(n.Label()), n.Extent())] = n.K()
		})
		return out
	}

	i0 := describe(ms.Component(0))
	want0 := map[string]int{"r[0]": 0, "a[1 2]": 0, "b[3]": 0, "c[4 5 6 7]": 0}
	if !reflect.DeepEqual(i0, want0) {
		t.Errorf("I0 = %v, want %v", i0, want0)
	}
	i1 := describe(ms.Component(1))
	want1 := map[string]int{"r[0]": 0, "a[1]": 1, "a[2]": 1, "b[3]": 0, "c[4 5]": 1, "c[6 7]": 0}
	if !reflect.DeepEqual(i1, want1) {
		t.Errorf("I1 = %v, want %v", i1, want1)
	}
	i2 := describe(ms.Component(2))
	want2 := map[string]int{"r[0]": 0, "a[1]": 1, "a[2]": 1, "b[3]": 0, "c[5]": 2, "c[4]": 1, "c[6 7]": 0}
	if !reflect.DeepEqual(i2, want2) {
		t.Errorf("I2 = %v, want %v", i2, want2)
	}

	// Top-down evaluation of //b/a/c now answers precisely from the index.
	res := ms.QueryTopDown(e)
	if !res.Precise || !reflect.DeepEqual(res.Answer, []graph.NodeID{5}) {
		t.Errorf("top-down: precise=%v answer=%v", res.Precise, res.Answer)
	}
}

func TestMStarFigure7DedupSizes(t *testing.T) {
	g := graph.PaperFigure7()
	ms := NewMStar(g)
	ms.Support(mustParse("//b/a/c"))
	s := ms.Sizes()
	// Deduplicated node count per the paper's accounting: I0 has 4 nodes;
	// I1 adds a[1], a[2], c[4 5], c[6 7] (r and b are single-subnode
	// duplicates); I2 adds c[5] and c[4]. Total 10.
	if s.Nodes != 10 {
		t.Errorf("dedup nodes = %d, want 10 (stats %+v)", s.Nodes, s)
	}
	if s.LogicalNodes != 4+6+7 {
		t.Errorf("logical nodes = %d, want 17", s.LogicalNodes)
	}
	if s.CrossLinks != 6 {
		t.Errorf("cross links = %d, want 6", s.CrossLinks)
	}
	if s.Components != 3 {
		t.Errorf("components = %d", s.Components)
	}
	if s.Edges <= s.CrossLinks {
		t.Errorf("edges = %d suspiciously small", s.Edges)
	}
}

func TestMStarFigure4NoOverqualifiedOverRefinement(t *testing.T) {
	// The M*(k)-index avoids the figure-4 over-refinement: even when the
	// fine component has b split at high k, splitting c for k=1 uses the
	// coarse component's b node, which is "perfectly qualified", so c{4,5}
	// stays together.
	g := graph.PaperFigure4()
	ms := NewMStar(g)
	// First support a FUP that distinguishes nothing for c but deepens b:
	// //r/a/b has length 2, so components I1, I2 are built.
	ms.Support(mustParse("//r/a/b"))
	if err := ms.Validate(true); err != nil {
		t.Fatal(err)
	}
	// Now support //b/c (c at k=1).
	ms.Support(mustParse("//b/c"))
	if err := ms.Validate(true); err != nil {
		t.Fatal(err)
	}
	cLabel, _ := g.LabelIDOf("c")
	for i := 0; i < ms.NumComponents(); i++ {
		cNodes := ms.Component(i).NodesWithLabel(cLabel)
		if len(cNodes) != 1 {
			t.Errorf("component I%d: c split into %d nodes; 4 and 5 are 1-bisimilar and must stay together", i, len(cNodes))
		}
	}
	// And the M(k)-index, set up the same way via D(k)-style pre-splitting,
	// would split them (shown in TestMKFigure4SuffersOverqualifiedParents).
}

func TestMStarSupportsWorkload(t *testing.T) {
	g := gtest.Random(13, 250, 5, 0.25)
	d := query.NewDataIndex(g)
	ms := NewMStar(g)
	fups := []*pathexpr.Expr{
		mustParse("//l0/l1"),
		mustParse("//l2/l3/l4"),
		mustParse("//l1/l1"),
		mustParse("//l4/l0/l2"),
		mustParse("//l3"),
	}
	for _, e := range fups {
		ms.Support(e)
		if err := ms.Validate(true); err != nil {
			t.Fatalf("after %s: %v", e, err)
		}
	}
	for _, e := range fups {
		res := ms.QueryTopDown(e)
		if !res.Precise {
			t.Errorf("%s not precise after refinement", e)
		}
		if want := d.Eval(e); !reflect.DeepEqual(res.Answer, want) {
			t.Errorf("%s: answer %v want %v", e, res.Answer, want)
		}
	}
}

func TestMStarStrategiesAgree(t *testing.T) {
	g := gtest.Random(17, 200, 4, 0.3)
	d := query.NewDataIndex(g)
	ms := NewMStar(g)
	for _, s := range []string{"//l0/l1", "//l1/l2/l3", "//l2/l0"} {
		ms.Support(mustParse(s))
	}
	queries := []string{"//l0", "//l0/l1", "//l1/l2/l3", "//l3/l2", "//l0/l1/l2/l3", "//l2/*/l1"}
	for _, s := range queries {
		e := mustParse(s)
		want := d.Eval(e)
		naive := ms.QueryNaive(e)
		top := ms.QueryTopDown(e)
		if !reflect.DeepEqual(naive.Answer, want) {
			t.Errorf("%s: naive answer %v want %v", s, naive.Answer, want)
		}
		if !reflect.DeepEqual(top.Answer, want) {
			t.Errorf("%s: top-down answer %v want %v", s, top.Answer, want)
		}
		if !e.HasWildcard() {
			for start := 0; start <= e.Length(); start++ {
				for end := start; end <= e.Length(); end++ {
					sp := ms.QuerySubpath(e, start, end)
					if !reflect.DeepEqual(sp.Answer, want) {
						t.Errorf("%s: subpath[%d..%d] answer %v want %v", s, start, end, sp.Answer, want)
					}
				}
			}
		}
	}
}

func TestMStarRootedQueriesFallBack(t *testing.T) {
	g := graph.PaperFigure1()
	d := query.NewDataIndex(g)
	ms := NewMStar(g)
	ms.Support(mustParse("//site/people/person"))
	e := mustParse("/site/people/person")
	res := ms.Query(e)
	if want := d.Eval(e); !reflect.DeepEqual(res.Answer, want) {
		t.Errorf("rooted query answer %v want %v", res.Answer, want)
	}
}

func TestMStarSupernodeSubnodes(t *testing.T) {
	g := graph.PaperFigure7()
	ms := NewMStar(g)
	ms.Support(mustParse("//b/a/c"))
	cLabel, _ := g.LabelIDOf("c")
	// c[4 5] in I1 has two subnodes in I2 and one supernode in I0.
	var c45 *index.Node
	for _, n := range ms.Component(1).NodesWithLabel(cLabel) {
		if n.Size() == 2 && n.Extent()[0] == 4 {
			c45 = n
		}
	}
	if c45 == nil {
		t.Fatal("c[4 5] not found in I1")
	}
	super := ms.Supernode(c45, 0)
	if super.Size() != 4 {
		t.Errorf("supernode extent %v", super.Extent())
	}
	subs := ms.Subnodes(c45, 2)
	if len(subs) != 2 {
		t.Fatalf("subnodes = %d", len(subs))
	}
	var sizes []int
	for _, s := range subs {
		sizes = append(sizes, s.Size())
	}
	sort.Ints(sizes)
	if !reflect.DeepEqual(sizes, []int{1, 1}) {
		t.Errorf("subnode sizes %v", sizes)
	}
}

// Property: random FUP sequences on random graphs keep all M*(k) invariants
// and answer supported FUPs precisely; all strategies agree with ground
// truth on arbitrary queries.
func TestPropertyMStar(t *testing.T) {
	exprs := []string{"//l0/l1", "//l1/l2/l0", "//l2", "//l0/l0", "//l3/l1", "//l1/l0/l2/l1"}
	check := func(seed int64) bool {
		g := gtest.Random(seed, 60, 4, 0.3)
		d := query.NewDataIndex(g)
		ms := NewMStar(g)
		for _, s := range exprs {
			e := mustParse(s)
			ms.Support(e)
			if err := ms.Validate(true); err != nil {
				t.Logf("seed %d after %s: %v", seed, s, err)
				return false
			}
		}
		for _, s := range exprs {
			e := mustParse(s)
			res := ms.QueryTopDown(e)
			if !res.Precise {
				t.Logf("seed %d: %s imprecise", seed, s)
				return false
			}
			want := d.Eval(e)
			if !reflect.DeepEqual(res.Answer, want) {
				t.Logf("seed %d: %s wrong answer", seed, s)
				return false
			}
			if nv := ms.QueryNaive(e); !reflect.DeepEqual(nv.Answer, want) {
				t.Logf("seed %d: %s naive mismatch", seed, s)
				return false
			}
			if bu := ms.QueryBottomUp(e); !reflect.DeepEqual(bu.Answer, want) {
				t.Logf("seed %d: %s bottom-up mismatch", seed, s)
				return false
			}
			if e.Length() >= 1 {
				if sp := ms.QuerySubpath(e, 1, e.Length()); !reflect.DeepEqual(sp.Answer, want) {
					t.Logf("seed %d: %s subpath mismatch", seed, s)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestMStarBottomUpAgrees(t *testing.T) {
	g := gtest.Random(23, 180, 4, 0.3)
	d := query.NewDataIndex(g)
	ms := NewMStar(g)
	for _, s := range []string{"//l0/l1", "//l1/l2/l3", "//l2/l0"} {
		ms.Support(mustParse(s))
	}
	for _, s := range []string{"//l0", "//l0/l1", "//l1/l2/l3", "//l3/l2", "//l0/l1/l2/l3", "//l2/*/l1", "/l0/l1"} {
		e := mustParse(s)
		want := d.Eval(e)
		got := ms.QueryBottomUp(e)
		if !reflect.DeepEqual(got.Answer, want) {
			t.Errorf("%s: bottom-up answer %v want %v", s, got.Answer, want)
		}
		if got.Cost.Total() <= 0 && len(want) > 0 {
			t.Errorf("%s: no cost recorded", s)
		}
	}
}

func TestQueryAutoCorrectAndNamed(t *testing.T) {
	g := gtest.Random(37, 200, 4, 0.3)
	d := query.NewDataIndex(g)
	ms := NewMStar(g)
	for _, s := range []string{"//l0/l1", "//l1/l2/l3", "//l2/l0"} {
		ms.Support(mustParse(s))
	}
	valid := map[string]bool{StrategyNaive: true, StrategyTopDown: true, StrategySubpath: true}
	for _, s := range []string{"//l0", "//l0/l1", "//l1/l2/l3", "//l3/l2/l1/l0", "/l0/l1"} {
		e := mustParse(s)
		res, chosen := ms.QueryAuto(e)
		if !valid[chosen] {
			t.Fatalf("%s: unknown strategy %q", s, chosen)
		}
		if want := d.Eval(e); !reflect.DeepEqual(res.Answer, want) {
			t.Errorf("%s via %s: answer %v want %v", s, chosen, res.Answer, want)
		}
	}
	// A single-label query should never pick subpath (there is no window).
	if _, chosen := ms.QueryAuto(mustParse("//l1")); chosen == StrategySubpath {
		t.Error("single label routed to subpath")
	}
}

func TestMStarHybridAgrees(t *testing.T) {
	g := gtest.Random(41, 180, 4, 0.3)
	d := query.NewDataIndex(g)
	ms := NewMStar(g)
	for _, s := range []string{"//l0/l1", "//l1/l2/l3", "//l2/l0"} {
		ms.Support(mustParse(s))
	}
	for _, s := range []string{"//l0", "//l0/l1", "//l1/l2/l3", "//l3/l2", "//l0/l1/l2/l3", "//l2/*/l1", "/l0/l1"} {
		e := mustParse(s)
		want := d.Eval(e)
		for meet := -1; meet <= e.Length()+1; meet++ {
			got := ms.QueryHybrid(e, meet)
			if !reflect.DeepEqual(got.Answer, want) {
				t.Errorf("%s meet=%d: hybrid answer %v want %v", s, meet, got.Answer, want)
			}
		}
	}
}
