package core

import (
	"fmt"

	"mrx/internal/index"
)

// Validate checks every invariant of the M*(k)-index (§4, Properties 1-5):
//
//	P1*: each component is a valid index graph (index.Graph.Validate,
//	     including k-bisimilar extents when checkBisim is set);
//	P2*: the maximum local similarity in component Ii is i;
//	P3*: Ii+1 refines Ii — every node's extent is contained in exactly one
//	     supernode extent (nested partitions make the disjoint-union
//	     requirement equivalent to subset containment);
//	P4*: supernode.k ≤ subnode.k ≤ supernode.k + 1;
//	P5*: if a node's k is below its component's resolution, all its subnodes
//	     have the same k.
func (ms *MStar) Validate(checkBisim bool) error {
	for i, comp := range ms.comps {
		if err := comp.Validate(checkBisim); err != nil {
			return fmt.Errorf("component I%d: %w", i, err)
		}
		maxK := 0
		comp.ForEachNode(func(n *index.Node) {
			if n.K() > maxK {
				maxK = n.K()
			}
		})
		if maxK > i {
			return fmt.Errorf("component I%d: max local similarity %d exceeds resolution (P2)", i, maxK)
		}
		if i == 0 {
			continue
		}
		coarse := ms.comps[i-1]
		var err error
		comp.ForEachNode(func(n *index.Node) {
			if err != nil {
				return
			}
			super := coarse.NodeOf(n.Extent()[0])
			for _, o := range n.Extent() {
				if coarse.NodeOf(o) != super {
					err = fmt.Errorf("component I%d node %d straddles I%d nodes (P3)", i, n.ID(), i-1)
					return
				}
			}
			if n.K() < super.K() || n.K() > super.K()+1 {
				err = fmt.Errorf("component I%d node %d: k=%d but supernode k=%d (P4)", i, n.ID(), n.K(), super.K())
				return
			}
			if super.K() < i-1 && n.K() != super.K() {
				err = fmt.Errorf("component I%d node %d: k=%d differs from non-saturated supernode k=%d (P5)",
					i, n.ID(), n.K(), super.K())
				return
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}
