package core

import (
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

// QueryAuto addresses the query-optimization question §4.1 leaves open:
// which evaluation strategy to use for a given expression. It estimates the
// index-node visits of each strategy from per-component label cardinalities
// (no traversal, no data access), runs the cheapest, and reports which one
// it chose. The estimator is intentionally simple — frontier sizes are
// approximated by label counts — but it is enough to route single-label
// queries to the coarse components and selective long queries to subpath
// pre-filtering.
func (ms *MStar) QueryAuto(e *pathexpr.Expr) (query.Result, string) {
	return ms.queryAuto(e, ms.validateOpts())
}

func (ms *MStar) queryAuto(e *pathexpr.Expr, opt query.ValidateOpts) (query.Result, Strategy) {
	if e.Rooted || e.HasDescendantStep() {
		return ms.queryNaive(e, opt), StrategyNaive
	}
	naive := ms.planner().estimateNaive(e)
	top := ms.planner().estimateTopDown(e)
	sub, start, end := ms.planner().estimateBestSubpath(e)

	switch {
	case sub < naive && sub < top:
		return ms.querySubpath(e, start, end, opt), StrategySubpath
	case top <= naive:
		return ms.queryTopDown(e, opt), StrategyTopDown
	default:
		return ms.queryNaive(e, opt), StrategyNaive
	}
}

// planner estimates strategy costs from per-component label cardinalities.
// The mutable and frozen M*(k) representations both feed it (through their
// respective countAt), so auto-routing decisions cannot drift between the
// write and read sides of the index.
type planner struct {
	levels int // number of materialized components
	count  func(level int, s pathexpr.Step) int
}

func (ms *MStar) planner() planner {
	return planner{levels: len(ms.comps), count: ms.countAt}
}

// countAt estimates the number of index nodes matching one step in a
// component.
func (ms *MStar) countAt(level int, s pathexpr.Step) int {
	comp := ms.comps[level]
	if s.Wildcard {
		return comp.NumNodes()
	}
	l, ok := ms.data.LabelIDOf(s.Label)
	if !ok {
		return 0
	}
	return comp.CountLabel(l)
}

func (p planner) clampLevel(i int) int {
	if i > p.levels-1 {
		return p.levels - 1
	}
	return i
}

func (ms *MStar) clampLevel(i int) int { return ms.planner().clampLevel(i) }

// estimateNaive approximates the traversal cost of evaluating e entirely in
// the finest needed component: the sum of per-step label cardinalities there.
func (p planner) estimateNaive(e *pathexpr.Expr) int {
	lvl := p.clampLevel(e.RequiredK())
	total := 0
	for _, s := range e.Steps {
		total += p.count(lvl, s)
	}
	return total
}

// estimateTopDown approximates the top-down cost: each step is matched in
// the coarsest component that supports the prefix, so step i contributes its
// cardinality in component min(i, finest).
func (p planner) estimateTopDown(e *pathexpr.Expr) int {
	total := 0
	for i, s := range e.Steps {
		total += p.count(p.clampLevel(i), s)
	}
	return total
}

// estimateBestSubpath scans all windows of length up to 2 and returns the
// estimated cost of the best one: the window's cardinality in its coarse
// component, plus the backward prefix verification (bounded by the fine
// cardinalities of all steps up to the window end, since the shared memo
// visits each (node, step) state at most once), plus the forward suffix.
func (p planner) estimateBestSubpath(e *pathexpr.Expr) (best, bestStart, bestEnd int) {
	lvl := p.clampLevel(e.RequiredK())
	best = int(^uint(0) >> 1)
	for w := 1; w <= 2 && w <= e.Length(); w++ {
		for start := 0; start+w < len(e.Steps); start++ {
			end := start + w
			cost := p.count(p.clampLevel(w), e.Steps[end])
			for i, s := range e.Steps {
				if i <= end && end > 0 {
					cost += p.count(lvl, s) // prefix verification bound
				} else if i > end {
					cost += p.count(lvl, s) // forward suffix
				}
			}
			if cost < best {
				best, bestStart, bestEnd = cost, start, end
			}
		}
	}
	return best, bestStart, bestEnd
}

func (ms *MStar) estimateBestSubpath(e *pathexpr.Expr) (best, start, end int) {
	return ms.planner().estimateBestSubpath(e)
}
