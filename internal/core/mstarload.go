package core

import (
	"errors"

	"mrx/internal/graph"
	"mrx/internal/index"
)

// MStarFromComponents reassembles an M*(k)-index from pre-built component
// index graphs (for example, ones loaded selectively from disk by package
// store). The components must share the data graph and satisfy the M*(k)
// invariants, which are verified structurally (refinement nesting, k caps
// and the P4/P5 relations); pass the result to Validate(true) to also check
// extent bisimilarity.
func MStarFromComponents(g *graph.Graph, comps []*index.Graph) (*MStar, error) {
	if len(comps) == 0 {
		return nil, errors.New("mstar: no components")
	}
	for _, c := range comps {
		if c.Data() != g {
			return nil, errors.New("mstar: component built over a different data graph")
		}
	}
	ms := &MStar{data: g, comps: comps}
	if err := ms.Validate(false); err != nil {
		return nil, err
	}
	return ms, nil
}
