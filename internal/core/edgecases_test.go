package core

import (
	"reflect"
	"testing"

	"mrx/internal/graph"
	"mrx/internal/gtest"
	"mrx/internal/query"
)

// Supporting a FUP with an empty data-graph target set must still leave the
// index sound: any index instance of the FUP is a false instance and the
// PROMOTE'/PROMOTE* pass must break or refine it.
func TestSupportEmptyTargetFUP(t *testing.T) {
	// r -> a -> b and r -> c -> b': //a/c has no instance but both labels
	// exist, and //c/b has instances only under c.
	g := mustBuildSimple(
		[]string{"r", "a", "c", "b", "b"},
		[][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 4}},
		nil)
	for _, s := range []string{"//a/c", "//a/c/b"} {
		e := mustParse(s)

		mk := NewMK(g)
		mk.Support(e)
		if err := mk.Index().Validate(true); err != nil {
			t.Fatalf("M(k) %s: %v", s, err)
		}
		if res := mk.Query(e); len(res.Answer) != 0 {
			t.Errorf("M(k) %s: non-empty answer %v", s, res.Answer)
		}

		ms := NewMStar(g)
		ms.Support(e)
		if err := ms.Validate(true); err != nil {
			t.Fatalf("M*(k) %s: %v", s, err)
		}
		if res := ms.Query(e); len(res.Answer) != 0 {
			t.Errorf("M*(k) %s: non-empty answer %v", s, res.Answer)
		}
	}
}

func TestSupportWildcardFUP(t *testing.T) {
	g := gtest.Random(31, 120, 4, 0.25)
	d := query.NewDataIndex(g)
	e := mustParse("//l0/*/l2")

	mk := NewMK(g)
	mk.Support(e)
	if err := mk.Index().Validate(true); err != nil {
		t.Fatal(err)
	}
	if res := mk.Query(e); !reflect.DeepEqual(res.Answer, d.Eval(e)) {
		t.Error("M(k) wildcard FUP wrong answer")
	}

	ms := NewMStar(g)
	ms.Support(e)
	if err := ms.Validate(true); err != nil {
		t.Fatal(err)
	}
	if res := ms.Query(e); !reflect.DeepEqual(res.Answer, d.Eval(e)) {
		t.Error("M*(k) wildcard FUP wrong answer")
	}
}

func TestSupportRootedFUP(t *testing.T) {
	g := graph.PaperFigure1()
	d := query.NewDataIndex(g)
	e := mustParse("/site/people/person")

	mk := NewMK(g)
	mk.Support(e)
	if err := mk.Index().Validate(true); err != nil {
		t.Fatal(err)
	}
	res := mk.Query(e)
	if !res.Precise {
		t.Error("M(k) rooted FUP not precise after Support")
	}
	if !reflect.DeepEqual(res.Answer, d.Eval(e)) {
		t.Error("M(k) rooted FUP wrong answer")
	}

	ms := NewMStar(g)
	ms.Support(e)
	if err := ms.Validate(true); err != nil {
		t.Fatal(err)
	}
	if got := ms.Query(e); !reflect.DeepEqual(got.Answer, d.Eval(e)) {
		t.Error("M*(k) rooted FUP wrong answer")
	}
}

func TestSupportIdempotent(t *testing.T) {
	g := gtest.Random(17, 120, 4, 0.25)
	e := mustParse("//l0/l1/l2")
	mk := NewMK(g)
	mk.Support(e)
	nodes := mk.Index().NumNodes()
	mk.Support(e) // second refinement for the same FUP must be a no-op
	if mk.Index().NumNodes() != nodes {
		t.Errorf("M(k) re-support changed size: %d -> %d", nodes, mk.Index().NumNodes())
	}

	ms := NewMStar(g)
	ms.Support(e)
	sz := ms.Sizes()
	ms.Support(e)
	if ms.Sizes() != sz {
		t.Errorf("M*(k) re-support changed size: %+v -> %+v", sz, ms.Sizes())
	}
}

func TestSingleNodeGraph(t *testing.T) {
	g := mustBuildSimple([]string{"root"}, nil, nil)
	mk := NewMK(g)
	mk.Support(mustParse("//root"))
	if err := mk.Index().Validate(true); err != nil {
		t.Fatal(err)
	}
	ms := NewMStar(g)
	ms.Support(mustParse("//root"))
	if err := ms.Validate(true); err != nil {
		t.Fatal(err)
	}
	if res := ms.Query(mustParse("//missing")); len(res.Answer) != 0 {
		t.Error("missing label matched")
	}
}

// Cyclic reference chains: refinement must terminate and stay sound when a
// FUP traverses a cycle longer than the graph's simple paths.
func TestCyclicReferences(t *testing.T) {
	g := mustBuildSimple(
		[]string{"root", "a", "b", "a", "b"},
		[][2]int{{0, 1}, {1, 2}, {0, 3}, {3, 4}},
		[][2]int{{2, 3}, {4, 1}}) // a->b->a->b->a cycle
	d := query.NewDataIndex(g)
	e := mustParse("//a/b/a/b/a/b")
	mk := NewMK(g)
	mk.Support(e)
	if err := mk.Index().Validate(true); err != nil {
		t.Fatal(err)
	}
	if res := mk.Query(e); !reflect.DeepEqual(res.Answer, d.Eval(e)) {
		t.Error("M(k) cyclic FUP wrong answer")
	}
	ms := NewMStar(g)
	ms.Support(e)
	if err := ms.Validate(true); err != nil {
		t.Fatal(err)
	}
	if res := ms.Query(e); !reflect.DeepEqual(res.Answer, d.Eval(e)) {
		t.Error("M*(k) cyclic FUP wrong answer")
	}
}

// Regression: the seed that exposed the missing v.Dead() regroup in the
// M*(k) parent-refinement loop (P3 violation in component I2).
func TestMStarRegressionDeadNodeRegroup(t *testing.T) {
	g := gtest.Random(4859765876506540546, 60, 4, 0.3)
	ms := NewMStar(g)
	for _, s := range []string{"//l0/l1", "//l1/l2/l0"} {
		ms.Support(mustParse(s))
		if err := ms.Validate(true); err != nil {
			t.Fatalf("after %s: %v", s, err)
		}
	}
}

// Descendant-axis expressions fall back to naive evaluation on every M*
// strategy and are skipped by refinement, but stay correct end to end.
func TestDescendantAxisOnMStar(t *testing.T) {
	g := gtest.Random(47, 150, 4, 0.3)
	d := query.NewDataIndex(g)
	ms := NewMStar(g)
	ms.Support(mustParse("//l0/l1/l2"))
	mk := NewMK(g)
	mk.Support(mustParse("//l0/l1/l2"))

	for _, s := range []string{"//l0//l2", "//l1//l0/l2", "//l2//*//l1"} {
		e := mustParse(s)
		want := d.Eval(e)
		for name, got := range map[string][]graph.NodeID{
			"topdown":  ms.QueryTopDown(e).Answer,
			"naive":    ms.QueryNaive(e).Answer,
			"bottomup": ms.QueryBottomUp(e).Answer,
			"hybrid":   ms.QueryHybrid(e, -1).Answer,
			"subpath":  ms.QuerySubpath(e, 0, 1).Answer,
			"mk":       mk.Query(e).Answer,
		} {
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s via %s: got %v want %v", s, name, got, want)
			}
		}
		if res, _ := ms.QueryAuto(e); !reflect.DeepEqual(res.Answer, want) {
			t.Errorf("%s via auto: wrong answer", s)
		}

		// Refinement must be a no-op, not a runaway component build.
		before := ms.NumComponents()
		ms.Support(e)
		if ms.NumComponents() != before {
			t.Fatalf("%s: Support materialized components for an unbounded FUP", s)
		}
		mkNodes := mk.Index().NumNodes()
		mk.Support(e)
		if mk.Index().NumNodes() != mkNodes {
			t.Fatalf("%s: M(k) refined for an unbounded FUP", s)
		}
	}
}
