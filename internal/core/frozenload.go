package core

import (
	"errors"
	"fmt"

	"mrx/internal/graph"
	"mrx/internal/index"
)

// FrozenMStarFromComponents reassembles a frozen M*(k) view from pre-built
// component snapshots — the zero-copy load path: package mmapstore wires
// each component directly over a mapped file and binds them here. The
// components must share the data graph; VerifyNesting (cheap, O(total
// extent size)) checks the multiresolution structure that relates them.
// Per-component structural invariants are index.Frozen.Verify's job —
// loaders of untrusted bytes run both, trusted reopens run neither.
func FrozenMStarFromComponents(g *graph.Graph, comps []*index.Frozen, opts MStarOptions) (*FrozenMStar, error) {
	if len(comps) == 0 {
		return nil, errors.New("mstar: no frozen components")
	}
	for i, c := range comps {
		if c.Data() != g {
			return nil, fmt.Errorf("mstar: frozen component I%d built over a different data graph", i)
		}
	}
	return &FrozenMStar{data: g, comps: comps, opts: opts}, nil
}

// VerifyNesting checks the refinement relation between consecutive
// components: every extent of the finer component I(i) must lie entirely
// inside one extent of the coarser I(i-1) — equivalently, all data nodes
// owned by one fine node share a coarse owner. Together with each
// component's own Verify this is the structural half of P4/P5 that a loader
// can check without materializing mutable graphs.
func (fm *FrozenMStar) VerifyNesting() error {
	for i := 1; i < len(fm.comps); i++ {
		coarse, fine := fm.comps[i-1], fm.comps[i]
		for v := 0; v < fine.NumNodes(); v++ {
			ext := fine.Extent(index.FrozenID(v))
			if len(ext) == 0 {
				return fmt.Errorf("mstar: component I%d node %d has empty extent", i, v)
			}
			owner := coarse.NodeOf(ext[0])
			for _, o := range ext[1:] {
				if coarse.NodeOf(o) != owner {
					return fmt.Errorf("mstar: component I%d node %d spans two I%d extents", i, v, i-1)
				}
			}
		}
	}
	return nil
}
