package core

import (
	"mrx/internal/graph"
	"mrx/internal/index"
	"mrx/internal/partition"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

// Strategy names an M*(k) query-evaluation strategy. The zero value selects
// the default (top-down, §4.1).
type Strategy = string

// Strategies. The first three are also the names QueryAuto reports.
const (
	StrategyNaive    Strategy = "naive"
	StrategyTopDown  Strategy = "top-down"
	StrategySubpath  Strategy = "subpath"
	StrategyBottomUp Strategy = "bottom-up"
	StrategyHybrid   Strategy = "hybrid"
	StrategyAuto     Strategy = "auto"
)

// MStarOptions configures an M*(k)-index built with NewMStarOpts.
type MStarOptions struct {
	// MaxK caps the resolution of materialized components: Refine clamps a
	// FUP's required local similarity to MaxK, bounding index memory at the
	// price of leaving longer FUPs imprecise (their answers keep being
	// validated). 0 means unlimited.
	MaxK int

	// Strategy selects the evaluation strategy used by Query and QueryOpts.
	// The zero value is StrategyTopDown, the paper's default.
	Strategy Strategy

	// Parallelism bounds the validation worker pool used by the query
	// strategies: extents of under-refined target nodes are partitioned
	// across up to this many goroutines. Values <= 1 validate sequentially
	// with the paper's exact cost accounting.
	Parallelism int
}

// NewMStarOpts initializes an M*(k)-index of g with the single component I0
// and the given options. NewMStar(g) is NewMStarOpts(g, MStarOptions{}).
func NewMStarOpts(g *graph.Graph, opts MStarOptions) *MStar {
	p := partition.ByLabel(g)
	i0 := index.FromPartition(g, p, func(partition.BlockID) int { return 0 })
	return &MStar{data: g, comps: []*index.Graph{i0}, opts: opts}
}

// Options returns the options the index was built with.
func (ms *MStar) Options() MStarOptions { return ms.opts }

// WithParallelism returns a copy of o whose Parallelism is p when o leaves
// it zero ("inherit the engine's"); a set value wins. Engines use it to
// push their worker-pool default down into the index options they build
// with, without mutating an options value they do not own.
func (o MStarOptions) WithParallelism(p int) MStarOptions {
	if o.Parallelism == 0 {
		o.Parallelism = p
	}
	return o
}

// validateOpts derives the default validation options from the index
// configuration.
func (ms *MStar) validateOpts() query.ValidateOpts {
	return query.ValidateOpts{Workers: ms.opts.Parallelism}
}

// Clone returns a deep copy of the index sharing only the immutable data
// graph and extent slices: every component index graph is cloned, so the
// copy can be refined independently while the original keeps serving reads.
// Engine uses this for its copy-on-write snapshot scheme.
func (ms *MStar) Clone() *MStar {
	comps := make([]*index.Graph, len(ms.comps))
	for i, c := range ms.comps {
		comps[i] = c.Clone()
	}
	var fups map[string]*pathexpr.Expr
	if len(ms.fups) > 0 {
		fups = make(map[string]*pathexpr.Expr, len(ms.fups))
		for k, e := range ms.fups {
			fups[k] = e // expressions are immutable; share them
		}
	}
	return &MStar{data: ms.data, comps: comps, opts: ms.opts, fups: fups}
}

// QueryOpts evaluates e with the configured strategy under explicit
// validation options (worker pool size, cancellation), reporting which
// strategy ran. Engine calls this on immutable snapshots; with the zero
// options of NewMStar it behaves exactly like Query.
func (ms *MStar) QueryOpts(e *pathexpr.Expr, opt query.ValidateOpts) (query.Result, Strategy) {
	switch ms.opts.Strategy {
	case StrategyNaive:
		return ms.queryNaive(e, opt), StrategyNaive
	case StrategyBottomUp:
		return ms.queryBottomUp(e, opt), StrategyBottomUp
	case StrategyHybrid:
		return ms.queryHybrid(e, -1, opt), StrategyHybrid
	case StrategyAuto:
		return ms.queryAuto(e, opt)
	case StrategySubpath:
		if e.Rooted || e.HasDescendantStep() {
			return ms.queryNaive(e, opt), StrategyNaive
		}
		_, start, end := ms.estimateBestSubpath(e)
		return ms.querySubpath(e, start, end, opt), StrategySubpath
	default:
		return ms.queryTopDown(e, opt), StrategyTopDown
	}
}
