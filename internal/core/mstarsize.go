package core

import (
	"mrx/internal/index"
)

// SizeStats reports the M*(k)-index sizes under both accountings used in the
// paper's experiments (§5, "Cost metrics").
type SizeStats struct {
	// Nodes counts index nodes across all components, skipping duplicates:
	// a node in Ii (i ≥ 1) whose supernode has only one subnode is a copy of
	// that supernode and does not need to be stored.
	Nodes int
	// Edges counts index edges across all components, skipping edges whose
	// two endpoints are both duplicates (such an edge is a copy of the
	// corresponding coarser edge), plus the cross-component links from each
	// supernode to its non-duplicate subnodes.
	Edges int
	// CrossLinks is the cross-component link portion of Edges.
	CrossLinks int
	// LogicalNodes and LogicalEdges count everything without deduplication,
	// i.e. the cost of the naive "logical representation".
	LogicalNodes int
	LogicalEdges int
	// Components is the number of materialized component indexes.
	Components int
}

// Sizes computes the deduplicated and logical sizes of the index.
func (ms *MStar) Sizes() SizeStats {
	s := SizeStats{Components: len(ms.comps)}
	for i, comp := range ms.comps {
		s.LogicalNodes += comp.NumNodes()
		s.LogicalEdges += comp.NumEdges()
		if i == 0 {
			s.Nodes += comp.NumNodes()
			s.Edges += comp.NumEdges()
			continue
		}
		coarse := ms.comps[i-1]
		// A node is "new" iff its extent differs from its supernode's, which
		// for nested partitions is simply a size difference.
		isNew := func(n *index.Node) bool {
			return n.Size() != coarse.NodeOf(n.Extent()[0]).Size()
		}
		comp.ForEachNode(func(n *index.Node) {
			if isNew(n) {
				s.Nodes++
				s.CrossLinks++ // link from the supernode to this subnode
			}
			for _, c := range comp.Children(n) {
				if isNew(n) || isNew(c) {
					s.Edges++
				}
			}
		})
	}
	s.Edges += s.CrossLinks
	return s
}
