package core

import (
	"testing"

	"mrx/internal/gtest"
)

// TestLiteralModeCanViolateP1 documents the deviation described in DESIGN.md:
// the paper-literal REFINENODE merge can place riders (members with parents
// in unqualified index nodes) into kept pieces, breaking Property 1. The
// default rider-eviction mode repairs this; this test pins down a seed where
// the literal variant is provably unsound while the default stays valid.
func TestLiteralModeCanViolateP1(t *testing.T) {
	exprs := []string{"//l0/l1", "//l1/l2/l0", "//l2", "//l0/l0", "//l3/l1", "//l1/l0/l2/l1"}
	violated := false
	for seed := int64(0); seed < 40 && !violated; seed++ {
		g := gtest.Random(seed, 70, 4, 0.3)
		lit := NewMK(g)
		lit.Literal = true
		def := NewMK(g)
		for _, s := range exprs {
			e := mustParse(s)
			lit.Support(e)
			def.Support(e)
			if err := def.Index().Validate(true); err != nil {
				t.Fatalf("seed %d: default mode violated invariants after %s: %v", seed, s, err)
			}
			if err := lit.Index().Validate(true); err != nil {
				violated = true
				break
			}
		}
	}
	if !violated {
		t.Error("expected at least one P1 violation from the paper-literal variant across 40 seeds; " +
			"if refinement changed, re-check whether Literal mode is still meaningfully different")
	}
}
