package baseline

import (
	"mrx/internal/graph"
	"mrx/internal/index"
	"mrx/internal/partition"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

// UD is the UD(k,l)-index of Wu et al. (WAIM 2003), which He & Yang discuss
// in §2 and §4.1: it generalizes the A(k)-index by partitioning on both
// k-up-bisimilarity (shared incoming label paths up to length k) and
// l-down-bisimilarity (shared outgoing label paths up to length l). The
// downward guarantee is what simple up-only indexes lack; it makes the
// index precise for branching path expressions //p[q] — nodes reached by an
// incoming path p that also start an outgoing path q — whenever
// length(p) ≤ k and length(q) ≤ l.
type UD struct {
	ig   *index.Graph
	k, l int
}

// NewUD builds the UD(k,l)-index of g: the common refinement of the
// k-bisimilarity and l-down-bisimilarity partitions.
func NewUD(g *graph.Graph, k, l int) *UD {
	up := partition.KBisim(g, k)
	down := partition.LBisimDown(g, l)
	p := partition.Intersect(up, down)
	ig := index.FromPartition(g, p, func(partition.BlockID) int { return k })
	return &UD{ig: ig, k: k, l: l}
}

// Index exposes the underlying index graph.
func (ud *UD) Index() *index.Graph { return ud.ig }

// UpK returns the upward resolution k.
func (ud *UD) UpK() int { return ud.k }

// DownL returns the downward resolution l.
func (ud *UD) DownL() int { return ud.l }

// Query evaluates a simple path expression, exactly like any up-bisimilar
// index (precise for lengths up to k).
func (ud *UD) Query(e *pathexpr.Expr) query.Result { return query.EvalIndex(ud.ig, e) }

// QueryBranching evaluates //p[q]: the incoming part like any index, the
// outgoing predicate from the index graph alone when length(q) ≤ l (the
// down-bisimilarity guarantee), with data-graph validation beyond that.
func (ud *UD) QueryBranching(in, out *pathexpr.Expr) query.BranchingResult {
	return query.EvalBranching(ud.ig, in, out, ud.l)
}

// EvalBranchingData computes the ground truth of //p[q] on the data graph.
// Deprecated: use query.EvalBranchingData; kept for API compatibility.
func EvalBranchingData(g *graph.Graph, in, out *pathexpr.Expr) []graph.NodeID {
	return query.EvalBranchingData(g, in, out)
}
