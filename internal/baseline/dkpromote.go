package baseline

import (
	"mrx/internal/graph"
	"mrx/internal/index"
	"mrx/internal/partition"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

// DKPromote is the incrementally-refined D(k)-index: it starts as an
// A(0)-index and is refined with the PROMOTE procedure (§2 of He & Yang,
// from Chen et al.) for each new FUP.
type DKPromote struct {
	ig *index.Graph
}

// NewDKPromote initializes the adaptive index as an A(0)-index of g.
func NewDKPromote(g *graph.Graph) *DKPromote {
	p := partition.ByLabel(g)
	return &DKPromote{ig: index.FromPartition(g, p, func(partition.BlockID) int { return 0 })}
}

// Index exposes the underlying index graph (for querying and metrics).
func (d *DKPromote) Index() *index.Graph { return d.ig }

// Query evaluates e on the current index, validating under-refined answers
// against the data graph; it makes DKPromote a query.Querier like the other
// adaptive indexes.
func (d *DKPromote) Query(e *pathexpr.Expr) query.Result { return query.EvalIndex(d.ig, e) }

// Support refines the index so that the FUP e is answered precisely:
// while some index node reachable by e has insufficient local similarity,
// PROMOTE it. Unlike the M(k)-index refinement, PROMOTE ignores which data
// nodes are actually relevant, so it over-refines.
func (d *DKPromote) Support(e *pathexpr.Expr) {
	if e.HasDescendantStep() {
		return // unbounded path lengths cannot be promoted for
	}
	kreq := e.RequiredK()
	for {
		var v *index.Node
		for _, t := range query.TargetNodes(d.ig, e) {
			if t.K() < kreq {
				v = t
				break
			}
		}
		if v == nil {
			return
		}
		d.Promote(v, kreq)
	}
}

// Promote is the paper's PROMOTE(v, kv, IG): recursively promote all parents
// of v to kv−1, then split v.extent by Succ(u.extent) for each parent u,
// assigning local similarity kv to every resulting piece. It is exported so
// tests and ablation benchmarks can drive single promotions; normal use goes
// through Support.
func (d *DKPromote) Promote(v *index.Node, kv int) {
	if v.Dead() || v.K() >= kv {
		return
	}
	// Lines 3-4: promote parents until all have local similarity >= kv-1.
	// Splits during recursion may change the parent set (or retire v), so
	// iterate until stable.
	for {
		if v.Dead() {
			// v was split while promoting an ancestor on a cycle; the
			// driver loop in Support re-finds under-refined targets.
			return
		}
		promoted := false
		for _, u := range d.ig.Parents(v) {
			if u.K() < kv-1 {
				d.Promote(u, kv-1)
				promoted = true
				break
			}
		}
		if !promoted {
			break
		}
	}
	// Lines 5-6: split v.extent by the successors of each parent's extent.
	pieces := [][]graph.NodeID{v.Extent()}
	for _, u := range d.ig.Parents(v) {
		succ := d.ig.Data().Succ(u.Extent())
		next := pieces[:0:0]
		for _, w := range pieces {
			if in := graph.Intersect(w, succ); len(in) > 0 {
				next = append(next, in)
			}
			if out := graph.Subtract(w, succ); len(out) > 0 {
				next = append(next, out)
			}
		}
		pieces = next
	}
	ks := make([]int, len(pieces))
	for i := range ks {
		ks[i] = kv
	}
	d.ig.Split(v, pieces, ks)
}
