package baseline

import (
	"reflect"
	"testing"
	"testing/quick"

	"mrx/internal/graph"
	"mrx/internal/gtest"
	"mrx/internal/index"
	"mrx/internal/query"
)

func TestUDRefinesAK(t *testing.T) {
	g := gtest.Random(7, 200, 5, 0.25)
	for _, kl := range [][2]int{{0, 1}, {1, 1}, {2, 2}, {3, 1}} {
		ud := NewUD(g, kl[0], kl[1])
		if err := ud.Index().Validate(true); err != nil {
			t.Fatalf("UD(%d,%d): %v", kl[0], kl[1], err)
		}
		ak := AK(g, kl[0])
		if ud.Index().NumNodes() < ak.NumNodes() {
			t.Errorf("UD(%d,%d) coarser than A(%d)", kl[0], kl[1], kl[0])
		}
		if ud.UpK() != kl[0] || ud.DownL() != kl[1] {
			t.Error("resolution accessors wrong")
		}
	}
	// UD(k,0) equals A(k).
	if ud, ak := NewUD(g, 2, 0), AK(g, 2); ud.Index().NumNodes() != ak.NumNodes() {
		t.Errorf("UD(2,0) %d nodes != A(2) %d nodes", ud.Index().NumNodes(), ak.NumNodes())
	}
}

// Down-bisimilar nodes share all outgoing label paths up to length l.
func TestPropertyDownBisimOutgoingPaths(t *testing.T) {
	check := func(seed int64) bool {
		g := gtest.Random(seed, 50, 3, 0.3)
		const l = 2
		ud := NewUD(g, 0, l)
		ok := true
		ud.Index().ForEachNode(func(n *index.Node) {
			ext := n.Extent()
			if len(ext) < 2 || !ok {
				return
			}
			want := outgoingPaths(g, ext[0], l)
			for _, v := range ext[1:] {
				got := outgoingPaths(g, v, l)
				if len(got) != len(want) {
					ok = false
					return
				}
				for s := range want {
					if !got[s] {
						ok = false
						return
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func outgoingPaths(g *graph.Graph, v graph.NodeID, l int) map[string]bool {
	out := map[string]bool{}
	var walk func(v graph.NodeID, prefix string, depth int)
	walk = func(v graph.NodeID, prefix string, depth int) {
		p := prefix + g.NodeLabelName(v)
		out[p] = true
		if depth == 0 {
			return
		}
		for _, c := range g.Children(v) {
			walk(c, p+"/", depth-1)
		}
	}
	walk(v, "", l)
	return out
}

func TestQueryBranchingGroundTruth(t *testing.T) {
	g := graph.PaperFigure1()
	in := mustParse("//auctions/auction")
	out := mustParse("//auction/bidder/person")
	want := EvalBranchingData(g, in, out)
	// Auctions that have a bidder referencing a person: only auction 10, 11?
	// 10 has bidder 16 -> person 8; 11 has bidder 17 -> person 8.
	if !reflect.DeepEqual(want, []graph.NodeID{10, 11}) {
		t.Fatalf("ground truth = %v", want)
	}
	ud := NewUD(g, 1, 2)
	res := ud.QueryBranching(in, out)
	if !reflect.DeepEqual(res.Answer, want) {
		t.Errorf("UD answer = %v, want %v", res.Answer, want)
	}
	if !res.Precise {
		t.Error("UD(1,2) should answer //auctions/auction[bidder/person] precisely")
	}
	if res.Cost.DataNodes != 0 {
		t.Error("precise branching query paid validation")
	}
}

func TestQueryBranchingValidatesBeyondL(t *testing.T) {
	g := gtest.Random(19, 150, 4, 0.3)
	in := mustParse("//l0")
	out := mustParse("//l0/l1/l2/l3")
	want := EvalBranchingData(g, in, out)
	ud := NewUD(g, 0, 1) // l too small: must validate the out part
	res := ud.QueryBranching(in, out)
	if !reflect.DeepEqual(res.Answer, want) {
		t.Errorf("answer %v want %v", res.Answer, want)
	}
	if len(want) > 0 && res.Precise {
		t.Error("UD(0,1) cannot be precise for an outgoing path of length 3")
	}
}

// Property: branching queries agree with ground truth for all (k, l).
func TestPropertyBranchingAgrees(t *testing.T) {
	pairs := [][2]string{
		{"//l0", "//l0/l1"},
		{"//l1/l2", "//l2/l0"},
		{"//l2", "//l2/l1/l0"},
		{"//l0/l1", "//l1/l1"},
	}
	check := func(seed int64) bool {
		g := gtest.Random(seed, 70, 4, 0.3)
		for _, kl := range [][2]int{{0, 0}, {1, 1}, {2, 2}, {1, 3}} {
			ud := NewUD(g, kl[0], kl[1])
			for _, pq := range pairs {
				in, out := mustParse(pq[0]), mustParse(pq[1])
				want := EvalBranchingData(g, in, out)
				got := ud.QueryBranching(in, out)
				if len(want) == 0 && len(got.Answer) == 0 {
					continue
				}
				if !reflect.DeepEqual(got.Answer, want) {
					t.Logf("seed %d UD(%d,%d) %s[%s]: got %v want %v",
						seed, kl[0], kl[1], pq[0], pq[1], got.Answer, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// The UD paper's headline: for branching expressions within (k, l), the
// UD index answers without validation while the A(k) route must validate
// the outgoing part against the data graph.
func TestUDBeatsAKOnBranching(t *testing.T) {
	g := gtest.Random(3, 400, 5, 0.25)
	in := mustParse("//l0/l1")
	out := mustParse("//l1/l2")
	ud := NewUD(g, 1, 1)
	res := ud.QueryBranching(in, out)
	if !res.Precise {
		t.Fatal("UD(1,1) should be precise here")
	}
	// Same query via A(1) + data-graph filtering of the out-part.
	ak := AK(g, 1)
	inRes := query.EvalIndex(ak, in)
	dv := query.NewDownValidator(g, out)
	var answer []graph.NodeID
	for _, o := range inRes.Answer {
		if dv.Matches(o) {
			answer = append(answer, o)
		}
	}
	if !reflect.DeepEqual(answer, res.Answer) {
		t.Fatalf("A(1)+validation answer %v != UD answer %v", answer, res.Answer)
	}
	if dv.Visited() == 0 {
		t.Fatal("A(k) route should have paid data-graph validation")
	}
	if res.Cost.DataNodes != 0 {
		t.Fatal("UD route should not touch the data graph")
	}
}

func TestAPEXCacheBehaviour(t *testing.T) {
	g := graph.PaperFigure1()
	d := query.NewDataIndex(g)
	ax := NewAPEX(g)
	fup := mustParse("//auctions/auction/bidder")
	other := mustParse("//auctions/auction/seller")

	// Before support: both fall back to the coarse summary with validation.
	if res := ax.Query(fup); res.Precise {
		t.Error("uncached length-2 query cannot be precise on A(0)")
	}
	ax.Support(fup)
	if ax.CachedFUPs() != 1 {
		t.Fatalf("cache size = %d", ax.CachedFUPs())
	}

	hit := ax.Query(fup)
	if !hit.Precise || hit.Cost.IndexNodes != 1 || hit.Cost.DataNodes != 0 {
		t.Errorf("cache hit: %+v", hit.Cost)
	}
	if !reflect.DeepEqual(hit.Answer, d.Eval(fup)) {
		t.Error("cached answer wrong")
	}

	// The paper's criticism: a different expression over the same data gets
	// no help from the cache.
	miss := ax.Query(other)
	if miss.Cost.DataNodes == 0 {
		t.Error("cache miss should pay validation")
	}
	if !reflect.DeepEqual(miss.Answer, d.Eval(other)) {
		t.Error("fallback answer wrong")
	}
}
