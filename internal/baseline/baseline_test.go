package baseline

import (
	"reflect"
	"testing"
	"testing/quick"

	"mrx/internal/graph"
	"mrx/internal/gtest"
	"mrx/internal/index"
	"mrx/internal/partition"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

func TestAKSizesMonotone(t *testing.T) {
	g := gtest.Random(3, 300, 6, 0.2)
	prev := 0
	for k := 0; k <= 5; k++ {
		ig := AK(g, k)
		if err := ig.Validate(true); err != nil {
			t.Fatalf("A(%d): %v", k, err)
		}
		if ig.NumNodes() < prev {
			t.Fatalf("A(%d) smaller than A(%d)", k, k-1)
		}
		prev = ig.NumNodes()
	}
}

func TestAKPrecision(t *testing.T) {
	g := graph.PaperFigure1()
	d := query.NewDataIndex(g)
	e := mustParse("//auctions/auction/bidder/person")
	for k := 0; k <= 4; k++ {
		ig := AK(g, k)
		res := query.EvalIndex(ig, e)
		if want := d.Eval(e); !reflect.DeepEqual(res.Answer, want) {
			t.Fatalf("A(%d): answer %v want %v", k, res.Answer, want)
		}
		if k >= e.RequiredK() && !res.Precise {
			t.Errorf("A(%d) should be precise for length-%d path", k, e.Length())
		}
	}
}

func TestOneIndex(t *testing.T) {
	g := gtest.Random(11, 200, 5, 0.25)
	ig, depth := OneIndex(g)
	if err := ig.Validate(true); err != nil {
		t.Fatal(err)
	}
	if depth <= 0 {
		t.Fatalf("depth = %d", depth)
	}
	// 1-index answers any expression precisely.
	d := query.NewDataIndex(g)
	for _, s := range []string{"//l0/l1/l2/l3/l0", "//l4", "/l0/l1"} {
		e := mustParse(s)
		res := query.EvalIndex(ig, e)
		if !res.Precise {
			t.Errorf("%s: 1-index not precise", s)
		}
		if want := d.Eval(e); !reflect.DeepEqual(res.Answer, want) {
			t.Errorf("%s: wrong answer", s)
		}
	}
	// The 1-index is at least as large as every A(k).
	if a5 := AK(g, 5); a5.NumNodes() > ig.NumNodes() {
		t.Error("A(5) larger than 1-index")
	}
}

func TestLabelRequirements(t *testing.T) {
	g := graph.PaperFigure1()
	fups := []*pathexpr.Expr{mustParse("//site/people/person")}
	req, err := LabelRequirements(g, fups)
	if err != nil {
		t.Fatal(err)
	}
	lbl := func(s string) graph.LabelID {
		l, ok := g.LabelIDOf(s)
		if !ok {
			t.Fatalf("label %s missing", s)
		}
		return l
	}
	if req[lbl("person")] != 2 || req[lbl("people")] != 1 || req[lbl("site")] != 0 {
		t.Fatalf("req = %v", req)
	}
	// Propagation: person also appears as child of bidder/seller via
	// reference edges, so bidder and seller need >= 1.
	if req[lbl("bidder")] < 1 || req[lbl("seller")] < 1 {
		t.Fatalf("parent constraint not propagated: %v", req)
	}
	if _, err := LabelRequirements(g, []*pathexpr.Expr{mustParse("//a/*/b")}); err == nil {
		t.Error("wildcard FUP should be rejected")
	}
}

func TestDKConstructSupportsFUPs(t *testing.T) {
	g := gtest.Random(21, 250, 5, 0.2)
	d := query.NewDataIndex(g)
	fups := []*pathexpr.Expr{
		mustParse("//l0/l1/l2"),
		mustParse("//l3/l4"),
		mustParse("//l2"),
	}
	ig, err := DKConstruct(g, fups)
	if err != nil {
		t.Fatal(err)
	}
	if err := ig.Validate(true); err != nil {
		t.Fatal(err)
	}
	for _, e := range fups {
		res := query.EvalIndex(ig, e)
		if !res.Precise {
			t.Errorf("%s not precise on D(k)-construct", e)
		}
		if want := d.Eval(e); !reflect.DeepEqual(res.Answer, want) {
			t.Errorf("%s wrong answer", e)
		}
	}
}

func TestDKPromoteFigure3OverRefinesIrrelevantData(t *testing.T) {
	// The paper's Figure 3 contrast: D(k)-promote refines all b nodes to
	// k=2 for the FUP r/a/b even though only data node 4 is in its target
	// set, splitting the irrelevant b's apart; the M(k)-index (tested in
	// internal/core) keeps them in a single k=0 node.
	g := graph.PaperFigure3()
	dk := NewDKPromote(g)
	e := mustParse("r/a/b")
	dk.Support(e)
	ig := dk.Index()
	if err := ig.Validate(true); err != nil {
		t.Fatal(err)
	}
	bLabel, _ := g.LabelIDOf("b")
	bNodes := ig.NodesWithLabel(bLabel)
	if len(bNodes) < 3 {
		t.Fatalf("D(k)-promote should split the b node by parent, got %d pieces", len(bNodes))
	}
	for _, n := range bNodes {
		if n.K() != 2 {
			t.Errorf("b node extent=%v k=%d: PROMOTE must raise ALL pieces to 2 (over-refinement)", n.Extent(), n.K())
		}
	}
}

func TestDKPromoteFigure4OverqualifiedParents(t *testing.T) {
	// Figure 4: the index starts with the b nodes already split into k=2
	// singletons (by earlier workload refinement, as in figure 4(b)).
	// Promoting c to k=1 then uses the overqualified parents' 2-bisimilarity
	// information and splits c{4,5} apart, even though data nodes 4 and 5
	// are 1-bisimilar and should have stayed together (figure 4(d)).
	g := graph.PaperFigure4()
	dk := NewDKPromote(g)
	ig := dk.Index()
	bLabel, _ := g.LabelIDOf("b")
	bNode := ig.NodesWithLabel(bLabel)[0]
	ig.Split(bNode, [][]graph.NodeID{{2}, {3}}, []int{2, 2})
	aLabel, _ := g.LabelIDOf("a")
	ig.SetK(ig.NodesWithLabel(aLabel)[0], 1)
	ig.SetK(ig.Root(), 1)
	if err := ig.Validate(true); err != nil {
		t.Fatalf("figure 4(b) setup: %v", err)
	}

	cLabel, _ := g.LabelIDOf("c")
	dk.Promote(ig.NodesWithLabel(cLabel)[0], 1)
	if err := ig.Validate(true); err != nil {
		t.Fatal(err)
	}
	cNodes := ig.NodesWithLabel(cLabel)
	if len(cNodes) != 2 {
		t.Fatalf("overqualified parents should split c into 2 nodes, got %d", len(cNodes))
	}
	// The ground truth: 4 and 5 are 1-bisimilar, so this split is pure
	// over-refinement.
	if !partition.KBisim(g, 1).SameBlock(4, 5) {
		t.Fatal("sanity: 4 and 5 should be 1-bisimilar")
	}
}

func TestDKPromoteSupportsWorkload(t *testing.T) {
	g := gtest.Random(5, 200, 5, 0.25)
	d := query.NewDataIndex(g)
	dk := NewDKPromote(g)
	fups := []*pathexpr.Expr{
		mustParse("//l0/l1"),
		mustParse("//l2/l3/l4"),
		mustParse("//l1/l1"),
		mustParse("//l4/l0/l2"),
	}
	for _, e := range fups {
		dk.Support(e)
		if err := dk.Index().Validate(true); err != nil {
			t.Fatalf("after %s: %v", e, err)
		}
	}
	for _, e := range fups {
		res := query.EvalIndex(dk.Index(), e)
		if !res.Precise {
			t.Errorf("%s not precise after promotion", e)
		}
		if want := d.Eval(e); !reflect.DeepEqual(res.Answer, want) {
			t.Errorf("%s wrong answer", e)
		}
	}
}

// Property: D(k)-promote preserves all index invariants and precision for
// random FUPs over random graphs.
func TestPropertyDKPromote(t *testing.T) {
	exprs := []string{"//l0/l1", "//l1/l2/l0", "//l2", "//l0/l0", "//l3/l1"}
	check := func(seed int64) bool {
		g := gtest.Random(seed, 70, 4, 0.3)
		d := query.NewDataIndex(g)
		dk := NewDKPromote(g)
		for _, s := range exprs {
			e := mustParse(s)
			dk.Support(e)
			if err := dk.Index().Validate(true); err != nil {
				t.Logf("seed %d after %s: %v", seed, s, err)
				return false
			}
			res := query.EvalIndex(dk.Index(), e)
			if !reflect.DeepEqual(res.Answer, d.Eval(e)) {
				t.Logf("seed %d: %s wrong answer", seed, s)
				return false
			}
			if !res.Precise {
				t.Logf("seed %d: %s imprecise", seed, s)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestKInfinityIsLarge(t *testing.T) {
	if KInfinity < 1<<16 {
		t.Fatal("KInfinity suspiciously small")
	}
	var _ *index.Graph // keep the import meaningful if tests shrink
}

func TestDKConstructRootedFUP(t *testing.T) {
	g := graph.PaperFigure1()
	d := query.NewDataIndex(g)
	e := mustParse("/site/people/person")
	req, err := LabelRequirements(g, []*pathexpr.Expr{e})
	if err != nil {
		t.Fatal(err)
	}
	person, _ := g.LabelIDOf("person")
	// Rooted: the incoming path includes the root label, so person needs 3.
	if req[person] != 3 {
		t.Fatalf("rooted person requirement = %d, want 3", req[person])
	}
	ig, err := DKConstruct(g, []*pathexpr.Expr{e})
	if err != nil {
		t.Fatal(err)
	}
	res := query.EvalIndex(ig, e)
	if !res.Precise {
		t.Error("rooted FUP not precise on D(k)-construct")
	}
	if !reflect.DeepEqual(res.Answer, d.Eval(e)) {
		t.Error("rooted FUP wrong answer")
	}
}

func TestOneIndexMatchesAKAtDepth(t *testing.T) {
	g := gtest.Random(29, 150, 5, 0.2)
	ig, depth := OneIndex(g)
	ak := AK(g, depth)
	if ig.NumNodes() != ak.NumNodes() {
		t.Fatalf("1-index %d nodes, A(depth=%d) %d nodes", ig.NumNodes(), depth, ak.NumNodes())
	}
}
