// Package baseline implements the pre-existing structural indexes the paper
// compares against: the 1-index (Milo & Suciu), the A(k)-index (Kaushik et
// al.) and the D(k)-index (Chen, Lim & Ong), the latter in both of its
// forms, construction from a workload and incremental promotion.
//
// The D(k)-promote implementation is deliberately faithful to the PROMOTE
// pseudocode reproduced in §2 of He & Yang, including its over-refinement
// behaviours (irrelevant data nodes, overqualified parents), since those are
// exactly what the paper's experiments quantify.
package baseline

import (
	"mrx/internal/graph"
	"mrx/internal/index"
	"mrx/internal/partition"
)

// KInfinity is the local-similarity value assigned to 1-index nodes: their
// extents are fully bisimilar, so they are precise for path expressions of
// any length.
const KInfinity = 1 << 20

// AK builds the A(k)-index of g: nodes are the blocks of the k-bisimilarity
// partition, every node has local similarity k.
func AK(g *graph.Graph, k int) *index.Graph {
	p := partition.KBisim(g, k)
	return index.FromPartition(g, p, func(partition.BlockID) int { return k })
}

// OneIndex builds the 1-index of g: nodes are full-bisimulation classes.
// It returns the index and the graph's bisimulation depth (the number of
// refinement rounds needed to stabilize). Index nodes carry KInfinity since
// they are precise for any simple path expression.
func OneIndex(g *graph.Graph) (*index.Graph, int) {
	p, depth := partition.Bisim(g)
	return index.FromPartition(g, p, func(partition.BlockID) int { return KInfinity }), depth
}
