package baseline

import (
	"fmt"

	"mrx/internal/graph"
	"mrx/internal/index"
	"mrx/internal/partition"
	"mrx/internal/pathexpr"
)

// LabelRequirements computes the per-label local-similarity requirements the
// D(k)-index construction derives from a FUP set: for a FUP l0/…/lm, label
// li requires similarity ≥ i (≥ i+1 for rooted FUPs), maximized over FUPs,
// then propagated so that for every (parent, child) label pair occurring in
// the data graph, req(parent) ≥ req(child) − 1.
//
// FUPs must be wildcard-free; this matches the paper, whose workloads are
// simple label paths.
func LabelRequirements(g *graph.Graph, fups []*pathexpr.Expr) (map[graph.LabelID]int, error) {
	req := make(map[graph.LabelID]int)
	for _, e := range fups {
		if e.HasWildcard() {
			return nil, fmt.Errorf("baseline: wildcard FUP %s not supported by D(k) construction", e)
		}
		if e.HasDescendantStep() {
			return nil, fmt.Errorf("baseline: descendant-axis FUP %s has unbounded length", e)
		}
		base := 0
		if e.Rooted {
			base = 1
		}
		for i, s := range e.Steps {
			l, ok := g.LabelIDOf(s.Label)
			if !ok {
				continue // label absent from the data: nothing to refine
			}
			if need := base + i; need > req[l] {
				req[l] = need
			}
		}
	}
	// Propagate the parent constraint to a fixpoint over the label-pair
	// adjacency of the data graph.
	type lpair struct{ parent, child graph.LabelID }
	pairs := make(map[lpair]struct{})
	for v := 0; v < g.NumNodes(); v++ {
		pl := g.Label(graph.NodeID(v))
		for _, c := range g.Children(graph.NodeID(v)) {
			pairs[lpair{pl, g.Label(c)}] = struct{}{}
		}
	}
	for changed := true; changed; {
		changed = false
		for p := range pairs {
			if need := req[p.child] - 1; need > req[p.parent] {
				req[p.parent] = need
				changed = true
			}
		}
	}
	return req, nil
}

// DKConstruct builds a D(k)-index from scratch supporting the given FUPs,
// using the construction procedure of Chen et al.: every index node with
// label l has local similarity req(l); partition refinement freezes blocks
// whose label requirement has been reached. This exhibits the
// "over-refinement of irrelevant index nodes" the paper criticizes, because
// the requirement applies to all nodes with a label, not just those reachable
// by the FUPs.
func DKConstruct(g *graph.Graph, fups []*pathexpr.Expr) (*index.Graph, error) {
	req, err := LabelRequirements(g, fups)
	if err != nil {
		return nil, err
	}
	maxK := 0
	for _, k := range req {
		if k > maxK {
			maxK = k
		}
	}
	p := partition.ByLabel(g)
	blockLabel := blockLabels(g, p)
	for round := 1; round <= maxK; round++ {
		frozen := func(b partition.BlockID) bool { return req[blockLabel[b]] < round }
		next, changed := partition.RefineOnce(g, p, frozen)
		p = next
		blockLabel = blockLabels(g, p)
		if !changed {
			// The freeze set only grows with the round number, so a no-op
			// round makes every later round a no-op too.
			break
		}
	}
	final := blockLabel
	return index.FromPartition(g, p, func(b partition.BlockID) int { return req[final[b]] }), nil
}

func blockLabels(g *graph.Graph, p *partition.Partition) []graph.LabelID {
	out := make([]graph.LabelID, p.NumBlocks())
	seen := make([]bool, p.NumBlocks())
	for v := 0; v < g.NumNodes(); v++ {
		b := p.BlockOf(graph.NodeID(v))
		if !seen[b] {
			seen[b] = true
			out[b] = g.Label(graph.NodeID(v))
		}
	}
	return out
}
