package baseline

import (
	"mrx/internal/graph"
	"mrx/internal/index"
	"mrx/internal/partition"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

// APEX is a deliberately simplified stand-in for the APEX index (Chung, Min
// & Shim, SIGMOD 2002), which He & Yang characterize in §2 as "more like an
// efficiently organized cache of answers to FUPs": it keeps a coarse
// structural summary (here an A(0)-index) plus a hash table from supported
// FUPs to their materialized target sets. A query that hits the cache is
// answered in O(1) index work; anything else falls back to the coarse
// summary and pays validation — exactly the limitation the paper points
// out ("except for the FUPs with entries in the hash tree, APEX cannot
// directly answer other path expressions of length more than one").
//
// The ablation in internal/experiments quantifies that trade-off against
// the M*(k)-index, which generalizes from refined structure instead of
// caching answers.
type APEX struct {
	ig    *index.Graph
	cache map[string][]graph.NodeID
}

// NewAPEX initializes the cache over an A(0) structural summary of g.
func NewAPEX(g *graph.Graph) *APEX {
	p := partition.ByLabel(g)
	return &APEX{
		ig:    index.FromPartition(g, p, func(partition.BlockID) int { return 0 }),
		cache: make(map[string][]graph.NodeID),
	}
}

// Summary exposes the structural summary.
func (a *APEX) Summary() *index.Graph { return a.ig }

// CachedFUPs returns the number of materialized FUP entries.
func (a *APEX) CachedFUPs() int { return len(a.cache) }

// Support materializes the FUP's answer in the hash table, keyed by the
// expression's canonical form so syntactic duplicates share one entry.
func (a *APEX) Support(e *pathexpr.Expr) {
	res := query.EvalIndex(a.ig, e)
	a.cache[pathexpr.Canonical(e)] = res.Answer
}

// Query answers from the cache when the expression is a supported FUP
// (one index "visit" for the hash lookup) and falls back to the coarse
// summary with validation otherwise.
func (a *APEX) Query(e *pathexpr.Expr) query.Result {
	if ans, ok := a.cache[pathexpr.Canonical(e)]; ok {
		return query.Result{
			Answer:  ans,
			Precise: true,
			Cost:    query.Cost{IndexNodes: 1},
		}
	}
	return query.EvalIndex(a.ig, e)
}
