// Package query evaluates simple path expressions over data graphs (ground
// truth) and over structural index graphs (with validation), using the cost
// model of the paper: the cost of a query is the number of index nodes
// visited while traversing the index graph plus the number of data nodes
// visited while validating candidate answers against the data graph.
// Data nodes inside the extents of matched index nodes are not counted
// unless validation actually visits them.
package query

import (
	"sort"
	"sync"

	"mrx/internal/graph"
	"mrx/internal/index"
	"mrx/internal/pathexpr"
)

// Cost is the paper's two-part query cost.
type Cost struct {
	IndexNodes int // index nodes visited during index-graph traversal
	DataNodes  int // data nodes visited during validation
}

// Total returns the combined cost.
func (c Cost) Total() int { return c.IndexNodes + c.DataNodes }

// Add accumulates another cost.
func (c *Cost) Add(o Cost) {
	c.IndexNodes += o.IndexNodes
	c.DataNodes += o.DataNodes
}

// DataIndex caches per-label node buckets of a data graph so that ground-
// truth evaluation does not rescan the node table for every query. A
// DataIndex is safe for concurrent use once built; Engine shares one across
// all serving goroutines.
type DataIndex struct {
	g       *graph.Graph
	byLabel [][]graph.NodeID
	allOnce sync.Once
	all     []graph.NodeID
}

// NewDataIndex builds the label buckets for g.
func NewDataIndex(g *graph.Graph) *DataIndex {
	d := &DataIndex{g: g, byLabel: make([][]graph.NodeID, g.NumLabels())}
	for v := 0; v < g.NumNodes(); v++ {
		l := g.Label(graph.NodeID(v))
		d.byLabel[l] = append(d.byLabel[l], graph.NodeID(v))
	}
	return d
}

// Graph returns the underlying data graph.
func (d *DataIndex) Graph() *graph.Graph { return d.g }

func (d *DataIndex) nodesMatching(s pathexpr.Step) []graph.NodeID {
	if s.Wildcard {
		d.allOnce.Do(func() {
			d.all = make([]graph.NodeID, d.g.NumNodes())
			for v := range d.all {
				d.all[v] = graph.NodeID(v)
			}
		})
		return d.all
	}
	l, ok := d.g.LabelIDOf(s.Label)
	if !ok {
		return nil
	}
	return d.byLabel[l]
}

// Eval computes the exact target set of e on the data graph: every data node
// that terminates a node-path instance of e. The result is sorted.
func (d *DataIndex) Eval(e *pathexpr.Expr) []graph.NodeID {
	g := d.g
	var frontier []graph.NodeID
	if e.Rooted {
		for _, c := range g.Children(g.Root()) {
			if e.Steps[0].Matches(g.NodeLabelName(c)) {
				frontier = append(frontier, c)
			}
		}
		frontier = dedupeIDs(frontier)
	} else {
		frontier = append([]graph.NodeID(nil), d.nodesMatching(e.Steps[0])...)
	}
	seen := make(map[graph.NodeID]bool)
	for i := 1; i < len(e.Steps); i++ {
		clear(seen)
		var next []graph.NodeID
		if e.Steps[i].Descendant {
			// Descendant axis: all nodes reachable through one or more
			// edges, filtered by label.
			visited := make(map[graph.NodeID]bool)
			queue := append([]graph.NodeID(nil), frontier...)
			for len(queue) > 0 {
				v := queue[0]
				queue = queue[1:]
				for _, c := range g.Children(v) {
					if visited[c] {
						continue
					}
					visited[c] = true
					queue = append(queue, c)
					if e.Steps[i].Matches(g.NodeLabelName(c)) {
						next = append(next, c)
					}
				}
			}
			frontier = dedupeIDs(next)
			if len(frontier) == 0 {
				break
			}
			continue
		}
		for _, v := range frontier {
			for _, c := range g.Children(v) {
				if !seen[c] && e.Steps[i].Matches(g.NodeLabelName(c)) {
					seen[c] = true
					next = append(next, c)
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
	return frontier
}

func dedupeIDs(s []graph.NodeID) []graph.NodeID {
	if len(s) < 2 {
		return s
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

// Validator performs backward validation of candidate answers for one
// expression: Matches(o) decides whether some node-path instance of the
// expression ends at o, by walking parent edges backward with memoization.
// Visited() reports the number of data-node visits performed, the paper's
// validation cost (a visit is the first evaluation of a (node, step) state;
// memoized re-checks are free).
type Validator struct {
	g       *graph.Graph
	e       *pathexpr.Expr
	memo    map[validState]bool
	visited int
}

type validState struct {
	node graph.NodeID
	step int32
}

// reach reports whether some ancestor of v (one or more edges up) matches
// steps[0..step]; used for descendant-axis steps. Each call walks the
// ancestor cone breadth-first with its own visited set (cycles through
// reference edges terminate), memoized per (node, step).
func (va *Validator) reach(v graph.NodeID, step int) bool {
	key := validState{v, int32(step)<<1 | 1<<30}
	if r, ok := va.memo[key]; ok {
		return r
	}
	// v itself is deliberately not pre-marked visited: when a cycle leads
	// back to it, v is its own strict ancestor and must be match-tested like
	// any other node the BFS reaches.
	visited := make(map[graph.NodeID]bool)
	queue := []graph.NodeID{v}
	res := false
	for len(queue) > 0 && !res {
		u := queue[0]
		queue = queue[1:]
		for _, p := range va.g.Parents(u) {
			if visited[p] {
				continue
			}
			visited[p] = true
			va.visited++
			if va.match(p, step) {
				res = true
				break
			}
			queue = append(queue, p)
		}
	}
	va.memo[key] = res
	return res
}

// NewValidator prepares a validator for e over g.
func NewValidator(g *graph.Graph, e *pathexpr.Expr) *Validator {
	return &Validator{g: g, e: e, memo: make(map[validState]bool)}
}

// Matches reports whether the expression has an instance ending at o.
func (va *Validator) Matches(o graph.NodeID) bool {
	return va.match(o, len(va.e.Steps)-1)
}

// Visited returns the cumulative number of data nodes visited.
func (va *Validator) Visited() int { return va.visited }

func (va *Validator) match(v graph.NodeID, step int) bool {
	key := validState{v, int32(step)}
	if r, ok := va.memo[key]; ok {
		return r
	}
	va.visited++
	res := false
	if va.e.Steps[step].Matches(va.g.NodeLabelName(v)) {
		if step == 0 {
			if va.e.Rooted {
				for _, p := range va.g.Parents(v) {
					if p == va.g.Root() {
						res = true
						break
					}
				}
			} else {
				res = true
			}
		} else if va.e.Steps[step].Descendant {
			res = va.reach(v, step-1)
		} else {
			for _, p := range va.g.Parents(v) {
				if va.match(p, step-1) {
					res = true
					break
				}
			}
		}
	}
	va.memo[key] = res
	return res
}

// Result is the outcome of evaluating an expression on an index graph.
type Result struct {
	// Targets are the index nodes matched by the expression, in ID order.
	// Nil when the query was served from a frozen snapshot (see
	// FrozenTargets).
	Targets []*index.Node
	// FrozenTargets are the frozen nodes matched by the expression, in
	// ascending order; set instead of Targets when the query was evaluated
	// over an index.Frozen.
	FrozenTargets []index.FrozenID
	// Answer is the validated data-node answer, sorted.
	Answer []graph.NodeID
	// Cost is the query cost under the paper's metric.
	Cost Cost
	// Precise is true when every matched index node had sufficient local
	// similarity, so no validation was needed.
	Precise bool
}

// EvalIndex evaluates e on the index graph ig: it traverses the index graph
// to find the target index nodes, then returns extents directly for nodes
// with k ≥ RequiredK(e) and validates the extents of under-refined nodes
// against the data graph, counting costs per the paper's metric. Validation
// is sequential; use EvalIndexOpts for a bounded worker pool or
// cancellation.
func EvalIndex(ig *index.Graph, e *pathexpr.Expr) Result {
	return EvalIndexOpts(ig, e, ValidateOpts{})
}

// TargetNodes evaluates only the index-graph traversal and returns the
// matched index nodes without validating or counting costs. Refinement
// algorithms use it to locate nodes reachable by a FUP.
func TargetNodes(ig *index.Graph, e *pathexpr.Expr) []*index.Node {
	var c Cost
	return traverseIndex(ig, e, &c)
}

func traverseIndex(ig *index.Graph, e *pathexpr.Expr, cost *Cost) []*index.Node {
	var frontier []*index.Node
	if e.Rooted {
		root := ig.Root()
		cost.IndexNodes++
		for _, c := range ig.Children(root) {
			cost.IndexNodes++
			if e.Steps[0].Matches(ig.Data().LabelName(c.Label())) {
				frontier = append(frontier, c)
			}
		}
	} else if e.Steps[0].Wildcard {
		ig.ForEachNode(func(n *index.Node) { frontier = append(frontier, n) })
		cost.IndexNodes += len(frontier)
	} else {
		if l, ok := ig.Data().LabelIDOf(e.Steps[0].Label); ok {
			frontier = ig.NodesWithLabel(l)
		}
		cost.IndexNodes += len(frontier)
	}
	for i := 1; i < len(e.Steps); i++ {
		seen := make(map[index.NodeID]bool)
		var next []*index.Node
		if e.Steps[i].Descendant {
			// Descendant axis: closure over index edges, filtered by label.
			visited := make(map[index.NodeID]bool)
			queue := append([]*index.Node(nil), frontier...)
			for len(queue) > 0 {
				v := queue[0]
				queue = queue[1:]
				for _, c := range ig.Children(v) {
					if visited[c.ID()] {
						continue
					}
					visited[c.ID()] = true
					cost.IndexNodes++
					queue = append(queue, c)
					if e.Steps[i].Matches(ig.Data().LabelName(c.Label())) {
						next = append(next, c)
					}
				}
			}
			frontier = next
			if len(frontier) == 0 {
				break
			}
			continue
		}
		for _, v := range frontier {
			for _, c := range ig.Children(v) {
				cost.IndexNodes++
				if !seen[c.ID()] && e.Steps[i].Matches(ig.Data().LabelName(c.Label())) {
					seen[c.ID()] = true
					next = append(next, c)
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i].ID() < frontier[j].ID() })
	return frontier
}
