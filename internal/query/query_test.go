package query

import (
	"reflect"
	"testing"
	"testing/quick"

	"mrx/internal/graph"
	"mrx/internal/gtest"
	"mrx/internal/index"
	"mrx/internal/partition"
)

func ids(xs ...int) []graph.NodeID {
	out := make([]graph.NodeID, len(xs))
	for i, x := range xs {
		out[i] = graph.NodeID(x)
	}
	return out
}

func TestEvalDataPaperExamples(t *testing.T) {
	g := graph.PaperFigure1()
	d := NewDataIndex(g)
	// The two examples from §2 of the paper.
	if got := d.Eval(mustParse("/site/people/person")); !reflect.DeepEqual(got, ids(7, 8, 9)) {
		t.Errorf("/site/people/person = %v", got)
	}
	if got := d.Eval(mustParse("/site/regions/*/item")); !reflect.DeepEqual(got, ids(12, 13, 14)) {
		t.Errorf("/site/regions/*/item = %v", got)
	}
	// Descendant queries traverse reference edges too: bidder->person.
	if got := d.Eval(mustParse("//bidder/person")); !reflect.DeepEqual(got, ids(8)) {
		t.Errorf("//bidder/person = %v", got)
	}
	// //item includes referenced and auction-local items.
	if got := d.Eval(mustParse("//item")); !reflect.DeepEqual(got, ids(12, 13, 14, 19, 20)) {
		t.Errorf("//item = %v", got)
	}
	if got := d.Eval(mustParse("//nonexistent")); len(got) != 0 {
		t.Errorf("//nonexistent = %v", got)
	}
	if got := d.Eval(mustParse("/person")); len(got) != 0 {
		t.Errorf("/person rooted = %v (persons are not root children)", got)
	}
}

func TestValidatorAgreesWithEval(t *testing.T) {
	g := graph.PaperFigure1()
	d := NewDataIndex(g)
	for _, s := range []string{"/site/people/person", "//bidder/person", "//item", "/site/regions/*/item", "//auction/seller/person"} {
		e := mustParse(s)
		want := map[graph.NodeID]bool{}
		for _, v := range d.Eval(e) {
			want[v] = true
		}
		va := NewValidator(g, e)
		for v := 0; v < g.NumNodes(); v++ {
			if va.Matches(graph.NodeID(v)) != want[graph.NodeID(v)] {
				t.Errorf("%s: validator disagrees on node %d", s, v)
			}
		}
		if va.Visited() == 0 {
			t.Errorf("%s: validator visited nothing", s)
		}
	}
}

func buildAk(g *graph.Graph, k int) *index.Graph {
	return index.FromPartition(g, partition.KBisim(g, k), func(partition.BlockID) int { return k })
}

func TestEvalIndexPreciseOnHighK(t *testing.T) {
	g := graph.PaperFigure1()
	d := NewDataIndex(g)
	ig := buildAk(g, 3)
	for _, s := range []string{"//person", "//site/people/person", "//auction/bidder", "/site/regions"} {
		e := mustParse(s)
		res := EvalIndex(ig, e)
		if !res.Precise {
			t.Errorf("%s: expected precise on A(3)", s)
		}
		if res.Cost.DataNodes != 0 {
			t.Errorf("%s: precise query paid validation", s)
		}
		if want := d.Eval(e); !reflect.DeepEqual(res.Answer, want) {
			t.Errorf("%s: answer %v, want %v", s, res.Answer, want)
		}
	}
}

func TestEvalIndexValidatesOnLowK(t *testing.T) {
	g := graph.PaperFigure1()
	d := NewDataIndex(g)
	ig := buildAk(g, 0) // A(0): label partition, precise only for length 0
	e := mustParse("//auction/seller/person")
	res := EvalIndex(ig, e)
	if res.Precise {
		t.Error("A(0) cannot be precise for length-2 path")
	}
	if res.Cost.DataNodes == 0 {
		t.Error("validation should visit data nodes")
	}
	if want := d.Eval(e); !reflect.DeepEqual(res.Answer, want) {
		t.Errorf("answer %v, want %v", res.Answer, want)
	}
}

// Safety and correctness property: for random graphs, random k, and random
// expressions, EvalIndex equals ground truth (safety = no false negatives;
// after validation also no false positives).
func TestPropertyIndexEvalMatchesGroundTruth(t *testing.T) {
	check := func(seed int64) bool {
		g := gtest.Random(seed, 80, 4, 0.3)
		d := NewDataIndex(g)
		for k := 0; k <= 3; k++ {
			ig := buildAk(g, k)
			for _, s := range []string{"//l0", "//l1/l2", "//l0/l1/l2", "//l2/*/l1", "/l0/l1"} {
				e := mustParse(s)
				res := EvalIndex(ig, e)
				want := d.Eval(e)
				if !reflect.DeepEqual(res.Answer, want) {
					t.Logf("seed=%d k=%d expr=%s: got %v want %v", seed, k, s, res.Answer, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// The raw index target set must be safe: it always contains the true answer
// (Property: safety, §3).
func TestPropertySafety(t *testing.T) {
	check := func(seed int64) bool {
		g := gtest.Random(seed, 60, 3, 0.25)
		d := NewDataIndex(g)
		ig := buildAk(g, 1)
		for _, s := range []string{"//l0/l1/l2", "//l1/l0"} {
			e := mustParse(s)
			targets := TargetNodes(ig, e)
			inTargets := map[graph.NodeID]bool{}
			for _, n := range targets {
				for _, o := range n.Extent() {
					inTargets[o] = true
				}
			}
			for _, o := range d.Eval(e) {
				if !inTargets[o] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCostAccounting(t *testing.T) {
	g := graph.PaperFigure1()
	ig := buildAk(g, 0)
	e := mustParse("//person")
	res := EvalIndex(ig, e)
	if res.Cost.IndexNodes != 1 {
		t.Errorf("//person on A(0) should visit exactly the person node, got %d", res.Cost.IndexNodes)
	}
	if res.Cost.Total() != res.Cost.IndexNodes+res.Cost.DataNodes {
		t.Error("Total mismatch")
	}
	var c Cost
	c.Add(Cost{IndexNodes: 2, DataNodes: 3})
	c.Add(Cost{IndexNodes: 1, DataNodes: 1})
	if c.IndexNodes != 3 || c.DataNodes != 4 {
		t.Errorf("Add = %+v", c)
	}
}

func TestEvalIndexWildcardStart(t *testing.T) {
	g := graph.PaperFigure1()
	d := NewDataIndex(g)
	ig := buildAk(g, 2)
	e := mustParse("//*/person")
	if want := d.Eval(e); !reflect.DeepEqual(EvalIndex(ig, e).Answer, want) {
		t.Errorf("wildcard start mismatch")
	}
}

func TestRootedTraversalCostsCountRoot(t *testing.T) {
	g := graph.PaperFigure1()
	ig := buildAk(g, 2)
	res := EvalIndex(ig, mustParse("/site"))
	// Visits: the root node plus its children examined.
	if res.Cost.IndexNodes < 2 {
		t.Errorf("rooted traversal cost = %d", res.Cost.IndexNodes)
	}
	if len(res.Answer) != 1 {
		t.Errorf("answer = %v", res.Answer)
	}
}

func TestValidatorRootedAnchoring(t *testing.T) {
	g := graph.PaperFigure1()
	// /person must match nothing: persons are not children of the root.
	va := NewValidator(g, mustParse("/person"))
	for v := 0; v < g.NumNodes(); v++ {
		if va.Matches(graph.NodeID(v)) {
			t.Fatalf("node %d matched rooted /person", v)
		}
	}
	// /site matches exactly the site element.
	va = NewValidator(g, mustParse("/site"))
	matches := 0
	for v := 0; v < g.NumNodes(); v++ {
		if va.Matches(graph.NodeID(v)) {
			matches++
		}
	}
	if matches != 1 {
		t.Fatalf("rooted /site matched %d nodes", matches)
	}
}

func TestEvalIndexEmptyWorkloadSafety(t *testing.T) {
	g := graph.PaperFigure1()
	ig := buildAk(g, 1)
	res := EvalIndex(ig, mustParse("//person/item/person"))
	if len(res.Answer) != 0 {
		t.Errorf("impossible path matched %v", res.Answer)
	}
}
