package query

import (
	"reflect"
	"testing"
	"testing/quick"

	"mrx/internal/graph"
	"mrx/internal/gtest"
	"mrx/internal/pathexpr"
)

func TestEvalDataDescendantAxis(t *testing.T) {
	g := graph.PaperFigure1()
	d := NewDataIndex(g)
	// //site//item: every item, however deep (including via references).
	got := d.Eval(mustParse("//site//item"))
	want := d.Eval(mustParse("//item"))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("//site//item = %v, want all items %v", got, want)
	}
	// //regions//item: only region items, not auction-referenced ones...
	// except item 14, which is also referenced from auction item 19.
	got = d.Eval(mustParse("//regions//item"))
	if !reflect.DeepEqual(got, ids(12, 13, 14)) {
		t.Errorf("//regions//item = %v", got)
	}
	// Rooted with descendant axis.
	got = d.Eval(mustParse("/site//person"))
	if !reflect.DeepEqual(got, ids(7, 8, 9)) {
		t.Errorf("/site//person = %v", got)
	}
	// //auctions//person: persons reached through the auction subtree's
	// reference edges.
	got = d.Eval(mustParse("//auctions//person"))
	if !reflect.DeepEqual(got, ids(7, 8, 9)) {
		t.Errorf("//auctions//person = %v", got)
	}
}

// bruteForceEval enumerates node paths directly (exponential; tiny graphs
// only) as an independent reference for descendant-axis semantics.
func bruteForceEval(g *graph.Graph, e *pathexpr.Expr) []graph.NodeID {
	matched := make(map[graph.NodeID]bool)
	var walk func(v graph.NodeID, step int, hops int, onPath map[graph.NodeID]bool)
	walk = func(v graph.NodeID, step int, hops int, onPath map[graph.NodeID]bool) {
		// At (v, step): v must eventually match steps[step] after `hops`
		// prior hops when the step is a descendant one.
		if e.Steps[step].Matches(g.NodeLabelName(v)) {
			if step == len(e.Steps)-1 {
				matched[v] = true
			} else {
				for _, c := range g.Children(v) {
					walk(c, step+1, 0, map[graph.NodeID]bool{})
				}
			}
		}
		// Descendant steps may also consume extra hops before matching.
		if e.Steps[step].Descendant && hops < g.NumNodes() && !onPath[v] {
			onPath[v] = true
			for _, c := range g.Children(v) {
				walk(c, step, hops+1, onPath)
			}
			delete(onPath, v)
		}
	}
	if e.Rooted {
		for _, c := range g.Children(g.Root()) {
			walk(c, 0, 0, map[graph.NodeID]bool{})
		}
	} else {
		for v := 0; v < g.NumNodes(); v++ {
			walk(graph.NodeID(v), 0, 0, map[graph.NodeID]bool{})
		}
	}
	var out []graph.NodeID
	for v := 0; v < g.NumNodes(); v++ {
		if matched[graph.NodeID(v)] {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

func TestPropertyDescendantAgainstBruteForce(t *testing.T) {
	exprs := []string{"//l0//l1", "//l1//l2/l0", "//l0/l1//l2", "//l0//*//l1", "/l0//l2"}
	check := func(seed int64) bool {
		g := gtest.Random(seed, 30, 3, 0.3)
		d := NewDataIndex(g)
		for _, s := range exprs {
			e := mustParse(s)
			got := d.Eval(e)
			want := bruteForceEval(g, e)
			if len(got) != len(want) {
				t.Logf("seed %d %s: got %v want %v", seed, s, got, want)
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					t.Logf("seed %d %s: got %v want %v", seed, s, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Index evaluation with descendant axes must agree with ground truth on any
// A(k)-index: traversal is a safe over-approximation and validation (always
// required, since RequiredK is Unbounded) removes the false positives.
func TestPropertyDescendantIndexEval(t *testing.T) {
	exprs := []string{"//l0//l1", "//l1//l2/l0", "//l0/l1//l2"}
	check := func(seed int64) bool {
		g := gtest.Random(seed, 60, 4, 0.3)
		d := NewDataIndex(g)
		for k := 0; k <= 2; k++ {
			ig := buildAk(g, k)
			for _, s := range exprs {
				e := mustParse(s)
				res := EvalIndex(ig, e)
				if res.Precise && len(res.Targets) > 0 {
					t.Logf("seed %d: %s claimed precise with matches", seed, s)
					return false
				}
				if !reflect.DeepEqual(res.Answer, d.Eval(e)) {
					t.Logf("seed %d k=%d: %s wrong answer", seed, k, s)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestValidatorDescendantAgrees(t *testing.T) {
	g := gtest.Random(33, 80, 4, 0.3)
	d := NewDataIndex(g)
	for _, s := range []string{"//l0//l1", "//l2//l0//l1", "/l0//l3"} {
		e := mustParse(s)
		want := map[graph.NodeID]bool{}
		for _, v := range d.Eval(e) {
			want[v] = true
		}
		va := NewValidator(g, e)
		for v := 0; v < g.NumNodes(); v++ {
			if va.Matches(graph.NodeID(v)) != want[graph.NodeID(v)] {
				t.Errorf("%s: validator disagrees on node %d", s, v)
			}
		}
	}
}

// Branching over arbitrary indexes: property-check EvalBranching against
// ground truth for plain A(k) indexes (downGuarantee 0) including
// descendant-axis predicates.
func TestPropertyBranchingOnPlainIndexes(t *testing.T) {
	pairs := [][2]string{
		{"//l0", "//l0/l1"},
		{"//l1/l2", "//l2//l0"},
		{"//l2", "//l2/l1/l0"},
		{"//l0//l1", "//l1/l1"},
	}
	check := func(seed int64) bool {
		g := gtest.Random(seed, 60, 4, 0.3)
		for k := 0; k <= 2; k++ {
			ig := buildAk(g, k)
			for _, pq := range pairs {
				in, out := mustParse(pq[0]), mustParse(pq[1])
				want := EvalBranchingData(g, in, out)
				got := EvalBranching(ig, in, out, 0)
				if len(want) != len(got.Answer) {
					t.Logf("seed %d A(%d) %s[%s]: got %v want %v", seed, k, pq[0], pq[1], got.Answer, want)
					return false
				}
				for i := range want {
					if want[i] != got.Answer[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestDownValidatorDescendant(t *testing.T) {
	g := graph.PaperFigure1()
	dv := NewDownValidator(g, mustParse("//site//person"))
	if !dv.Matches(1) {
		t.Error("site should reach persons via //")
	}
	if dv.Matches(7) {
		t.Error("a person is not a site")
	}
	dv2 := NewDownValidator(g, mustParse("//auction/bidder/person"))
	if !dv2.Matches(10) || dv2.Matches(12) {
		t.Error("down validation wrong")
	}
	if dv2.Visited() == 0 {
		t.Error("no visits recorded")
	}
}

// A node on a cycle is its own strict ancestor, so it can both anchor a
// descendant-axis expression and terminate it. Regression for Validator.reach
// pre-marking the candidate visited, which made it skip the cycle back to
// itself: on a -> b -> a with a under the root, /*//a must include a.
func TestValidatorDescendantCycleToSelf(t *testing.T) {
	b := graph.NewBuilder()
	b.AddNode("root")
	b.AddNode("a")
	b.AddNode("b")
	b.AddEdge(0, 1, graph.TreeEdge)
	b.AddEdge(1, 2, graph.TreeEdge)
	b.AddEdge(2, 1, graph.RefEdge)
	g := mustFreeze(b)

	for _, tc := range []struct {
		expr string
		node graph.NodeID
		want bool
	}{
		{"/*//a", 1, true},  // a is a descendant of itself via b
		{"//a//a", 1, true}, // same cycle, unrooted
		{"/*//b", 2, true},
		{"//b//b", 2, true},
		{"/a//a", 1, true},
		{"/b//b", 2, false}, // b is not a child of the root
	} {
		e := mustParse(tc.expr)
		if got := NewValidator(g, e).Matches(tc.node); got != tc.want {
			t.Errorf("%s on node %d: got %v, want %v", tc.expr, tc.node, got, tc.want)
		}
		want := map[graph.NodeID]bool{}
		for _, v := range NewDataIndex(g).Eval(e) {
			want[v] = true
		}
		if want[tc.node] != tc.want {
			t.Errorf("%s: DataIndex.Eval disagrees on node %d", tc.expr, tc.node)
		}
	}
}
