package query

import (
	"sort"

	"mrx/internal/graph"
	"mrx/internal/index"
	"mrx/internal/pathexpr"
)

// BranchingResult is the outcome of a branching query //p[q]: data nodes
// that terminate an instance of the incoming path p and start an instance
// of the outgoing path q.
type BranchingResult struct {
	Answer  []graph.NodeID
	Cost    Cost
	Precise bool
}

// EvalBranching evaluates //p[q] over an index graph. The incoming part is
// evaluated like any simple path expression (validating under-refined
// nodes). The outgoing predicate is first checked on the index graph —
// safe for any index, since every data edge has an index edge — and then
// validated against the data graph unless the index guarantees outgoing
// paths up to length downGuarantee (the l of a UD(k,l)-index; pass 0 for
// up-only indexes such as 1-index, A(k), D(k) and M(k)).
func EvalBranching(ig *index.Graph, in, out *pathexpr.Expr, downGuarantee int) BranchingResult {
	var res BranchingResult
	inRes := EvalIndex(ig, in)
	res.Cost = inRes.Cost
	res.Precise = inRes.Precise

	checker := newOutChecker(ig)
	var dv *DownValidator
	for _, o := range inRes.Answer {
		if !checker.has(ig.NodeOf(o), out.Steps, &res.Cost) {
			continue // safe: no outgoing index path, no outgoing data path
		}
		if !out.HasDescendantStep() && out.Length() <= downGuarantee {
			res.Answer = append(res.Answer, o)
			continue
		}
		res.Precise = false
		if dv == nil {
			dv = NewDownValidator(ig.Data(), out)
		}
		if dv.Matches(o) {
			res.Answer = append(res.Answer, o)
		}
	}
	if dv != nil {
		res.Cost.DataNodes += dv.Visited()
	}
	sort.Slice(res.Answer, func(i, j int) bool { return res.Answer[i] < res.Answer[j] })
	return res
}

// EvalBranchingData computes the ground truth of //p[q] on the data graph.
func EvalBranchingData(g *graph.Graph, in, out *pathexpr.Expr) []graph.NodeID {
	d := NewDataIndex(g)
	dv := NewDownValidator(g, out)
	var answer []graph.NodeID
	for _, o := range d.Eval(in) {
		if dv.Matches(o) {
			answer = append(answer, o)
		}
	}
	return answer
}

// outChecker decides "does an outgoing index path matching steps start at
// node n", memoized per (node, remaining steps), with descendant-axis
// support (closure over index children).
type outChecker struct {
	ig   *index.Graph
	memo map[outState]bool
}

type outState struct {
	id   index.NodeID
	rest int
}

func newOutChecker(ig *index.Graph) *outChecker {
	return &outChecker{ig: ig, memo: make(map[outState]bool)}
}

func (oc *outChecker) has(n *index.Node, steps []pathexpr.Step, cost *Cost) bool {
	if !steps[0].Matches(oc.ig.Data().LabelName(n.Label())) {
		return false
	}
	if len(steps) == 1 {
		return true
	}
	key := outState{n.ID(), len(steps)}
	if r, ok := oc.memo[key]; ok {
		return r
	}
	oc.memo[key] = false // cut cycles through reference edges
	ok := false
	if steps[1].Descendant {
		// Descendant hop: any strict descendant may carry the rest.
		visited := map[index.NodeID]bool{}
		queue := []*index.Node{n}
		for len(queue) > 0 && !ok {
			v := queue[0]
			queue = queue[1:]
			for _, c := range oc.ig.Children(v) {
				if visited[c.ID()] {
					continue
				}
				visited[c.ID()] = true
				cost.IndexNodes++
				if oc.has(c, steps[1:], cost) {
					ok = true
					break
				}
				queue = append(queue, c)
			}
		}
	} else {
		for _, c := range oc.ig.Children(n) {
			cost.IndexNodes++
			if oc.has(c, steps[1:], cost) {
				ok = true
				break
			}
		}
	}
	oc.memo[key] = ok
	return ok
}

// DownValidator checks outgoing data paths — the downward dual of Validator
// — counting first visits of (node, remaining-steps) states.
type DownValidator struct {
	g       *graph.Graph
	e       *pathexpr.Expr
	memo    map[downValState]bool
	visited int
}

type downValState struct {
	node graph.NodeID
	rest int
}

// NewDownValidator prepares a downward validator for e over g.
func NewDownValidator(g *graph.Graph, e *pathexpr.Expr) *DownValidator {
	return &DownValidator{g: g, e: e, memo: make(map[downValState]bool)}
}

// Matches reports whether an instance of the expression starts at o.
func (dv *DownValidator) Matches(o graph.NodeID) bool { return dv.match(o, dv.e.Steps) }

// Visited returns the cumulative number of data nodes visited.
func (dv *DownValidator) Visited() int { return dv.visited }

func (dv *DownValidator) match(v graph.NodeID, steps []pathexpr.Step) bool {
	if !steps[0].Matches(dv.g.NodeLabelName(v)) {
		return false
	}
	if len(steps) == 1 {
		return true
	}
	key := downValState{v, len(steps)}
	if r, ok := dv.memo[key]; ok {
		return r
	}
	dv.memo[key] = false // cut cycles through reference edges
	dv.visited++
	ok := false
	if steps[1].Descendant {
		visited := map[graph.NodeID]bool{}
		queue := []graph.NodeID{v}
		for len(queue) > 0 && !ok {
			u := queue[0]
			queue = queue[1:]
			for _, c := range dv.g.Children(u) {
				if visited[c] {
					continue
				}
				visited[c] = true
				dv.visited++
				if dv.match(c, steps[1:]) {
					ok = true
					break
				}
				queue = append(queue, c)
			}
		}
	} else {
		for _, c := range dv.g.Children(v) {
			if dv.match(c, steps[1:]) {
				ok = true
				break
			}
		}
	}
	dv.memo[key] = ok
	return ok
}
