package query

import (
	"sort"

	"mrx/internal/graph"
	"mrx/internal/index"
	"mrx/internal/pathexpr"
)

// EvalFrozen evaluates e over a frozen index snapshot with sequential
// validation — the frozen counterpart of EvalIndex. The traversal performs
// zero map operations: visited-set bookkeeping uses flat stamp arrays over
// the dense FrozenID space, and per-label lookups are array slices.
func EvalFrozen(fz *index.Frozen, e *pathexpr.Expr) Result {
	return EvalFrozenOpts(fz, e, ValidateOpts{})
}

// EvalFrozenOpts is EvalFrozen with explicit validation options.
func EvalFrozenOpts(fz *index.Frozen, e *pathexpr.Expr, opt ValidateOpts) Result {
	var res Result
	res.FrozenTargets = TraverseFrozen(fz, e, &res.Cost)
	res.Answer, res.Cost.DataNodes, res.Precise, _ = CollectAnswersFrozen(fz, e, res.FrozenTargets, opt)
	return res
}

// FrozenQuerier adapts a frozen index snapshot to the Querier interface,
// with EvalFrozen semantics (sequential validation, the paper's cost
// accounting).
type FrozenQuerier struct {
	fz *index.Frozen
}

// AsFrozenQuerier wraps a frozen index snapshot as a Querier.
func AsFrozenQuerier(fz *index.Frozen) FrozenQuerier { return FrozenQuerier{fz: fz} }

// Frozen returns the wrapped snapshot.
func (q FrozenQuerier) Frozen() *index.Frozen { return q.fz }

// Query evaluates e over the wrapped snapshot.
func (q FrozenQuerier) Query(e *pathexpr.Expr) Result { return EvalFrozen(q.fz, e) }

// CollectAnswersFrozen is CollectAnswers over frozen targets: extents of
// nodes with sufficient local similarity pass through unvalidated, the rest
// are validated against the data graph per opt. Both variants share the
// candidate validation machinery, so frozen and mutable serving cannot
// diverge in validation semantics.
//
//mrx:hotpath frozen answer collection; validation beyond it is the deliberate expensive term
func CollectAnswersFrozen(fz *index.Frozen, e *pathexpr.Expr, targets []index.FrozenID, opt ValidateOpts) (answer []graph.NodeID, visited int, precise, stopped bool) {
	precise = true
	req := e.RequiredK()
	candidates := make([]graph.NodeID, 0, len(targets))
	for _, v := range targets {
		if fz.K(v) >= req {
			answer = append(answer, fz.Extent(v)...)
			continue
		}
		precise = false
		candidates = append(candidates, fz.Extent(v)...)
	}
	if len(candidates) > 0 {
		var matched []graph.NodeID
		matched, visited, stopped = validateCandidates(fz.Data(), e, candidates, opt)
		answer = append(answer, matched...)
	}
	return dedupeIDs(answer), visited, precise, stopped
}

// Mark is a reusable visited set over dense FrozenIDs with O(1) reset:
// instead of clearing (or reallocating) a map per traversal step, Next bumps
// a round stamp. The frozen read path uses it everywhere a mutable-graph
// traversal would allocate a map.
type Mark struct {
	stamp []int32
	round int32
}

// NewMark returns a mark over n dense IDs.
func NewMark(n int) *Mark { return &Mark{stamp: make([]int32, n)} }

// Next starts a new round, invalidating all previous Set calls.
func (m *Mark) Next() { m.round++ }

// Seen reports whether v was Set in the current round.
func (m *Mark) Seen(v index.FrozenID) bool { return m.stamp[v] == m.round }

// Set marks v in the current round.
func (m *Mark) Set(v index.FrozenID) { m.stamp[v] = m.round }

// TraverseFrozen evaluates only the index traversal of e over a frozen
// snapshot and returns the matched frozen nodes in ascending order,
// accumulating the index-node cost — the frozen counterpart of TargetNodes.
//
//mrx:hotpath frozen index traversal: stamp arrays, CSR windows, no maps (DESIGN.md §12)
func TraverseFrozen(fz *index.Frozen, e *pathexpr.Expr, cost *Cost) []index.FrozenID {
	data := fz.Data()
	frontier := frozenStepZero(fz, data, e, cost)
	if len(e.Steps) == 1 {
		return frontier
	}
	seen := NewMark(fz.NumNodes())
	for i := 1; i < len(e.Steps); i++ {
		seen.Next()
		next := make([]index.FrozenID, 0, len(frontier))
		if e.Steps[i].Descendant {
			// Descendant axis: closure over index edges, filtered by label.
			queue := append([]index.FrozenID(nil), frontier...)
			for len(queue) > 0 {
				v := queue[0]
				queue = queue[1:]
				for _, c := range fz.Children(v) {
					if seen.Seen(c) {
						continue
					}
					seen.Set(c)
					cost.IndexNodes++
					queue = append(queue, c)
					if e.Steps[i].Matches(data.LabelName(fz.Label(c))) {
						next = append(next, c)
					}
				}
			}
			frontier = next
			if len(frontier) == 0 {
				break
			}
			continue
		}
		for _, v := range frontier {
			for _, c := range fz.Children(v) {
				cost.IndexNodes++
				if !seen.Seen(c) && e.Steps[i].Matches(data.LabelName(fz.Label(c))) {
					seen.Set(c)
					next = append(next, c)
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
	return frontier
}

// frozenStepZero materializes the step-0 frontier, preallocated to its known
// bound in every branch. The label-bucket case copies the CSR window: the
// caller sorts the frontier in place, and the snapshot's arrays are immutable.
func frozenStepZero(fz *index.Frozen, data *graph.Graph, e *pathexpr.Expr, cost *Cost) []index.FrozenID {
	if e.Rooted {
		root := fz.Root()
		cost.IndexNodes++
		children := fz.Children(root)
		frontier := make([]index.FrozenID, 0, len(children))
		for _, c := range children {
			cost.IndexNodes++
			if e.Steps[0].Matches(data.LabelName(fz.Label(c))) {
				frontier = append(frontier, c)
			}
		}
		return frontier
	}
	if e.Steps[0].Wildcard {
		frontier := make([]index.FrozenID, fz.NumNodes())
		for i := range frontier {
			frontier[i] = index.FrozenID(i)
		}
		cost.IndexNodes += len(frontier)
		return frontier
	}
	if l, ok := data.LabelIDOf(e.Steps[0].Label); ok {
		frontier := append([]index.FrozenID(nil), fz.NodesWithLabel(l)...)
		cost.IndexNodes += len(frontier)
		return frontier
	}
	return nil
}
