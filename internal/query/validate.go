package query

import (
	"sync"

	"mrx/internal/graph"
	"mrx/internal/index"
	"mrx/internal/pathexpr"
)

// ValidateOpts configures how the extents of under-refined index nodes are
// validated against the data graph.
type ValidateOpts struct {
	// Workers bounds the validation worker pool. Values <= 1 validate
	// sequentially with a single shared memo, reproducing the paper's cost
	// accounting exactly. Higher values partition the candidate data nodes
	// across up to that many goroutines, each with a private memo; the
	// answer is identical, but the reported DataNodes cost can exceed the
	// sequential count because memoization is not shared across workers.
	Workers int
	// Stop, when non-nil, is polled between candidates; once it returns
	// true, validation aborts and the collected answer is partial. Engine
	// uses it to plumb context cancellation into long validations. With
	// Workers > 1 it is called from every worker goroutine concurrently, so
	// it must be safe for concurrent use.
	Stop func() bool
}

// parallelThreshold is the minimum number of candidate data nodes before
// validation fans out to a worker pool; below it, goroutine startup costs
// more than the validation itself.
const parallelThreshold = 64

// minPerWorker caps the pool size so each worker gets a meaningful chunk.
const minPerWorker = 32

// CollectAnswers assembles the answer of e from its matched target index
// nodes: extents of nodes with sufficient local similarity (k >= RequiredK)
// pass through unvalidated, the rest are validated against the data graph g
// per opt. It returns the sorted, deduplicated answer, the number of data
// nodes visited (the paper's validation cost), whether every target was
// precise, and whether opt.Stop aborted the work early.
func CollectAnswers(g *graph.Graph, e *pathexpr.Expr, targets []*index.Node, opt ValidateOpts) (answer []graph.NodeID, visited int, precise, stopped bool) {
	precise = true
	var candidates []graph.NodeID
	for _, v := range targets {
		if v.K() >= e.RequiredK() {
			answer = append(answer, v.Extent()...)
			continue
		}
		precise = false
		candidates = append(candidates, v.Extent()...)
	}
	if len(candidates) > 0 {
		var matched []graph.NodeID
		matched, visited, stopped = validateCandidates(g, e, candidates, opt)
		answer = append(answer, matched...)
	}
	return dedupeIDs(answer), visited, precise, stopped
}

// validateCandidates checks which candidate data nodes terminate an instance
// of e, sequentially or across a bounded worker pool.
//
//mrx:coldpath validation fan-out is the paper's deliberate expensive term: memo maps, per-worker validators and pool spin-up are the cost being measured, not incidental allocation
func validateCandidates(g *graph.Graph, e *pathexpr.Expr, candidates []graph.NodeID, opt ValidateOpts) (matched []graph.NodeID, visited int, stopped bool) {
	workers := opt.Workers
	if max := len(candidates) / minPerWorker; workers > max {
		workers = max
	}
	if workers <= 1 || len(candidates) < parallelThreshold {
		va := NewValidator(g, e)
		for _, o := range candidates {
			if opt.Stop != nil && opt.Stop() {
				return matched, va.Visited(), true
			}
			if va.Matches(o) {
				matched = append(matched, o)
			}
		}
		return matched, va.Visited(), false
	}

	type part struct {
		matched []graph.NodeID
		visited int
		stopped bool
	}
	parts := make([]part, workers)
	chunk := (len(candidates) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(candidates) {
			hi = len(candidates)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(p *part, cand []graph.NodeID) {
			defer wg.Done()
			va := NewValidator(g, e)
			for _, o := range cand {
				if opt.Stop != nil && opt.Stop() {
					p.stopped = true
					break
				}
				if va.Matches(o) {
					p.matched = append(p.matched, o)
				}
			}
			p.visited = va.Visited()
		}(&parts[w], candidates[lo:hi])
	}
	wg.Wait()
	for i := range parts {
		matched = append(matched, parts[i].matched...)
		visited += parts[i].visited
		stopped = stopped || parts[i].stopped
	}
	return matched, visited, stopped
}

// EvalIndexOpts is EvalIndex with explicit validation options: the index
// traversal is unchanged, while validation of under-refined extents honors
// opt.Workers and opt.Stop. With a zero ValidateOpts it is exactly
// EvalIndex.
func EvalIndexOpts(ig *index.Graph, e *pathexpr.Expr, opt ValidateOpts) Result {
	var res Result
	res.Targets = traverseIndex(ig, e, &res.Cost)
	res.Answer, res.Cost.DataNodes, res.Precise, _ = CollectAnswers(ig.Data(), e, res.Targets, opt)
	return res
}
