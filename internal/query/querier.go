package query

import (
	"context"

	"mrx/internal/index"
	"mrx/internal/pathexpr"
)

// Querier is the uniform query interface implemented by every index in the
// repository: the single-graph indexes (1-index, A(k), D(k)-construct) via
// AsQuerier, the adaptive indexes (D(k)-promote, M(k), M*(k), UD(k,l), APEX)
// directly, and the concurrent serving engine. A Querier evaluates a simple
// path expression and returns the validated answer together with the paper's
// cost metric.
type Querier interface {
	Query(e *pathexpr.Expr) Result
}

// ContextQuerier is the context-aware counterpart of Querier: evaluation
// observes ctx and aborts early — returning ctx's error — once it is
// canceled or past its deadline, so a serving layer can stop validation
// work the moment a client disconnects. The concurrent engine implements it
// natively (its QueryCtx polls ctx between validation candidates); wrap any
// plain Querier with AsContextQuerier to serve it through an interface that
// only consumes ContextQuerier, such as the network serving layer.
type ContextQuerier interface {
	QueryCtx(ctx context.Context, e *pathexpr.Expr) (Result, error)
}

// AsContextQuerier adapts q to the ContextQuerier interface. If q already
// implements it (the engine does), it is returned unchanged; otherwise the
// adapter checks ctx before and after the (uninterruptible) Query call, so
// an expired context is still honored at call boundaries even though the
// wrapped index cannot abort mid-validation.
func AsContextQuerier(q Querier) ContextQuerier {
	if cq, ok := q.(ContextQuerier); ok {
		return cq
	}
	return ctxAdapter{q: q}
}

type ctxAdapter struct{ q Querier }

func (a ctxAdapter) QueryCtx(ctx context.Context, e *pathexpr.Expr) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	res := a.q.Query(e)
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return res, nil
}

// QuerierFunc adapts a plain function to the Querier interface, for serving
// paths whose backing index is swapped between queries (e.g. the frozen
// differential path republishing snapshots after each refinement).
type QuerierFunc func(e *pathexpr.Expr) Result

// Query evaluates e by calling the function.
func (f QuerierFunc) Query(e *pathexpr.Expr) Result { return f(e) }

// IndexQuerier adapts a bare structural index graph to the Querier
// interface; it evaluates with EvalIndex semantics (sequential validation,
// the paper's cost accounting).
type IndexQuerier struct {
	ig *index.Graph
}

// AsQuerier wraps a single-graph structural index as a Querier.
func AsQuerier(ig *index.Graph) IndexQuerier { return IndexQuerier{ig: ig} }

// Index returns the wrapped index graph.
func (q IndexQuerier) Index() *index.Graph { return q.ig }

// Query evaluates e over the wrapped index.
func (q IndexQuerier) Query(e *pathexpr.Expr) Result { return EvalIndex(q.ig, e) }
