package query

import (
	"testing"

	"mrx/internal/graph"
	"mrx/internal/gtest"
	"mrx/internal/index"
	"mrx/internal/partition"
	"mrx/internal/pathexpr"
)

// EvalFrozen must agree with EvalIndex — answers, precision, and the
// index-traversal part of the cost metric — across random graphs and
// workloads exercising rooted anchors, wildcards, and the descendant axis.
func TestEvalFrozenMatchesEvalIndex(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := gtest.Random(seed, 110, 6, 0.3)
		for _, k := range []int{0, 2} {
			ig := index.FromPartition(g, partition.KBisim(g, k), func(partition.BlockID) int { return k })
			fz := ig.Freeze()
			ws := gtest.RandomWorkload(seed+100, g, gtest.WorkloadOptions{
				Size: 30, MaxLen: 4, Adversarial: 0.2, Rooted: 0.2, Wildcard: 0.15, DescAxis: 0.15,
			})
			for _, w := range ws {
				e, err := pathexpr.Parse(w)
				if err != nil {
					t.Fatalf("parse %q: %v", w, err)
				}
				want := EvalIndex(ig, e)
				got := EvalFrozen(fz, e)
				if !equalGraphIDs(got.Answer, want.Answer) {
					t.Fatalf("seed %d k=%d %q: frozen answer %v, mutable %v",
						seed, k, w, got.Answer, want.Answer)
				}
				if got.Precise != want.Precise {
					t.Fatalf("seed %d k=%d %q: precise %v vs %v", seed, k, w, got.Precise, want.Precise)
				}
				if got.Cost.IndexNodes != want.Cost.IndexNodes {
					t.Fatalf("seed %d k=%d %q: index cost %d vs %d",
						seed, k, w, got.Cost.IndexNodes, want.Cost.IndexNodes)
				}
				if len(got.FrozenTargets) != len(want.Targets) {
					t.Fatalf("seed %d k=%d %q: %d frozen targets vs %d mutable",
						seed, k, w, len(got.FrozenTargets), len(want.Targets))
				}
				for i, v := range got.FrozenTargets {
					if fz.Retired(v) != want.Targets[i].ID() {
						t.Fatalf("seed %d k=%d %q: target %d diverges", seed, k, w, i)
					}
				}
			}
		}
	}
}

func TestFrozenQuerier(t *testing.T) {
	g := graph.PaperFigure1()
	ig := index.FromPartition(g, partition.ByLabel(g), func(partition.BlockID) int { return 0 })
	q := AsFrozenQuerier(ig.Freeze())
	e, err := pathexpr.Parse("//open_auction/bidder")
	if err != nil {
		t.Fatal(err)
	}
	want := EvalIndex(ig, e)
	got := q.Query(e)
	if !equalGraphIDs(got.Answer, want.Answer) {
		t.Fatalf("querier answer %v, want %v", got.Answer, want.Answer)
	}
	if q.Frozen().NumNodes() != ig.NumNodes() {
		t.Error("Frozen() accessor returns wrong snapshot")
	}
}

func TestMark(t *testing.T) {
	m := NewMark(4)
	m.Next()
	if m.Seen(2) {
		t.Error("fresh round reports seen")
	}
	m.Set(2)
	if !m.Seen(2) || m.Seen(1) {
		t.Error("Set/Seen wrong within a round")
	}
	m.Next()
	if m.Seen(2) {
		t.Error("Next did not invalidate previous round")
	}
}

func equalGraphIDs(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
