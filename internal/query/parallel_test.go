package query

import (
	"reflect"
	"sync/atomic"
	"testing"

	"mrx/internal/gtest"
)

// Parallel validation must return exactly the sequential answer for every
// worker-pool size, including sizes far above the candidate count.
func TestEvalIndexOptsWorkerEquivalence(t *testing.T) {
	g := gtest.Random(7, 4000, 4, 0.25)
	ig := buildAk(g, 1)
	for _, s := range []string{"//l0/l1/l2", "//l1/l2", "//l2/*/l1", "/l0/l1"} {
		e := mustParse(s)
		want := EvalIndex(ig, e)
		for _, workers := range []int{1, 2, 4, 8, 1000} {
			got := EvalIndexOpts(ig, e, ValidateOpts{Workers: workers})
			if !reflect.DeepEqual(got.Answer, want.Answer) {
				t.Errorf("%s workers=%d: answer diverged (%d vs %d nodes)",
					s, workers, len(got.Answer), len(want.Answer))
			}
			if got.Precise != want.Precise {
				t.Errorf("%s workers=%d: precise %v, want %v", s, workers, got.Precise, want.Precise)
			}
			if got.Cost.IndexNodes != want.Cost.IndexNodes {
				t.Errorf("%s workers=%d: index cost %d, want %d",
					s, workers, got.Cost.IndexNodes, want.Cost.IndexNodes)
			}
		}
	}
}

// A zero ValidateOpts must reproduce EvalIndex exactly, including the
// paper's data-node accounting (shared memo).
func TestEvalIndexOptsZeroValueIsEvalIndex(t *testing.T) {
	g := gtest.Random(11, 500, 4, 0.3)
	ig := buildAk(g, 1)
	e := mustParse("//l0/l1/l2")
	a := EvalIndex(ig, e)
	b := EvalIndexOpts(ig, e, ValidateOpts{})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("zero opts diverged: %+v vs %+v", a.Cost, b.Cost)
	}
}

// Stop aborts validation early: the result is flagged stopped and the
// answer may be partial, but never contains a false positive.
func TestCollectAnswersStop(t *testing.T) {
	g := gtest.Random(3, 2000, 4, 0.25)
	ig := buildAk(g, 0)
	e := mustParse("//l0/l1/l2")
	targets := TargetNodes(ig, e)

	full, _, _, stopped := CollectAnswers(g, e, targets, ValidateOpts{})
	if stopped {
		t.Fatal("unstopped run reported stopped")
	}

	// Stop immediately: nothing validated.
	_, _, _, stopped = CollectAnswers(g, e, targets, ValidateOpts{Stop: func() bool { return true }})
	if !stopped {
		t.Error("immediate stop not reported")
	}

	// Stop after a few candidates, sequentially and in parallel: the partial
	// answer must be a subset of the full one.
	for _, workers := range []int{0, 4} {
		var n atomic.Int64
		partial, _, _, stopped := CollectAnswers(g, e, targets, ValidateOpts{
			Workers: workers,
			Stop:    func() bool { return n.Add(1) > 5 },
		})
		if !stopped {
			t.Errorf("workers=%d: late stop not reported", workers)
		}
		inFull := map[int64]bool{}
		for _, o := range full {
			inFull[int64(o)] = true
		}
		for _, o := range partial {
			if !inFull[int64(o)] {
				t.Errorf("workers=%d: partial answer has false positive %d", workers, o)
			}
		}
	}
}

// Concurrent EvalIndex calls over one shared index graph must be safe (the
// DataIndex wildcard bucket and validator memos are the hazards); run under
// -race this is the reader side of the engine's contract.
func TestEvalIndexConcurrent(t *testing.T) {
	g := gtest.Random(19, 1500, 4, 0.25)
	ig := buildAk(g, 1)
	e := mustParse("//l0/l1")
	want := EvalIndex(ig, e)
	done := make(chan bool)
	for r := 0; r < 8; r++ {
		go func() {
			ok := true
			for i := 0; i < 20; i++ {
				res := EvalIndexOpts(ig, e, ValidateOpts{Workers: 4})
				ok = ok && reflect.DeepEqual(res.Answer, want.Answer)
			}
			done <- ok
		}()
	}
	for r := 0; r < 8; r++ {
		if !<-done {
			t.Fatal("concurrent evaluation diverged")
		}
	}
}
