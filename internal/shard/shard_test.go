package shard

import (
	"testing"

	"mrx/internal/core"
	"mrx/internal/datagen"
	"mrx/internal/graph"
	"mrx/internal/gtest"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

func mustParse(t *testing.T, s string) *pathexpr.Expr {
	t.Helper()
	e, err := pathexpr.Parse(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return e
}

func mustPartition(t *testing.T, g *graph.Graph, n int) []*Shard {
	t.Helper()
	shards, err := Partition(g, n)
	if err != nil {
		t.Fatalf("Partition(%d): %v", n, err)
	}
	return shards
}

// Partition must cover every node exactly once, keep shard-local node sets
// sorted, preserve labels through the shared table, and put the root at
// (shard 0, local node 0).
func TestPartitionCoversExactly(t *testing.T) {
	g := gtest.New(7, gtest.Options{Nodes: 400, Labels: 8, RefProb: 0.1, Components: 9})
	for _, n := range []int{1, 2, 4, 8, 100} {
		shards := mustPartition(t, g, n)
		if len(shards) < 1 {
			t.Fatalf("n=%d: no shards", n)
		}
		if n <= 9 && len(shards) > n {
			t.Fatalf("n=%d: %d shards", n, len(shards))
		}
		seen := make([]bool, g.NumNodes())
		total := 0
		for si, sh := range shards {
			if sh.ID() != si {
				t.Fatalf("shard %d reports ID %d", si, sh.ID())
			}
			ids := sh.GlobalIDs()
			if len(ids) != sh.NumNodes() || sh.NumNodes() != sh.Local().NumNodes() {
				t.Fatalf("shard %d: inconsistent sizes", si)
			}
			for i, v := range ids {
				if i > 0 && ids[i-1] >= v {
					t.Fatalf("shard %d: global IDs not ascending", si)
				}
				if seen[v] {
					t.Fatalf("node %d owned twice", v)
				}
				seen[v] = true
				if sh.ToGlobal(graph.NodeID(i)) != v {
					t.Fatalf("shard %d: ToGlobal(%d) != %d", si, i, v)
				}
				if sh.Local().NodeLabelName(graph.NodeID(i)) != g.NodeLabelName(v) {
					t.Fatalf("shard %d node %d: label mismatch", si, i)
				}
			}
			total += len(ids)
		}
		if total != g.NumNodes() {
			t.Fatalf("n=%d: covered %d of %d nodes", n, total, g.NumNodes())
		}
		if !shards[0].HasRoot() || shards[0].ToGlobal(0) != 0 {
			t.Fatalf("n=%d: root not at (shard 0, local 0)", n)
		}
		for _, sh := range shards[1:] {
			if sh.HasRoot() {
				t.Fatalf("n=%d: two shards claim the root", n)
			}
		}
	}
}

// The same (graph, n) must partition identically every time.
func TestPartitionDeterministic(t *testing.T) {
	g, err := datagen.CorpusGraph(0.05, 3, 6)
	if err != nil {
		t.Fatalf("CorpusGraph: %v", err)
	}
	a := mustPartition(t, g, 4)
	b := mustPartition(t, g, 4)
	if len(a) != len(b) {
		t.Fatalf("shard counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		ga, gb := a[i].GlobalIDs(), b[i].GlobalIDs()
		if len(ga) != len(gb) {
			t.Fatalf("shard %d sizes differ", i)
		}
		for j := range ga {
			if ga[j] != gb[j] {
				t.Fatalf("shard %d node sets differ at %d", i, j)
			}
		}
	}
}

// A component at least as large as the average shard is placed by load, so
// one dominating component cannot drag small ones onto its shard when
// emptier shards exist.
func TestPartitionSpreadsLargeComponents(t *testing.T) {
	// Two large components (60 nodes each) and two small ones, 4 shards:
	// each large component must be alone on its shard.
	b := graph.NewBuilder()
	addChain := func(n int) graph.NodeID {
		first := graph.NodeID(b.NumNodes())
		b.AddNode("h")
		for i := 1; i < n; i++ {
			b.AddNode("c")
			b.AddEdge(first+graph.NodeID(i-1), first+graph.NodeID(i), graph.TreeEdge)
		}
		return first
	}
	addChain(60)
	addChain(60)
	addChain(4)
	addChain(4)
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	shards := mustPartition(t, g, 4)
	large := 0
	for _, sh := range shards {
		if sh.NumNodes() == 60 {
			if sh.Components() != 1 {
				t.Fatalf("large component shares a shard (%d components)", sh.Components())
			}
			large++
		}
	}
	if large != 2 {
		t.Fatalf("want 2 single-large shards, got %d (sizes: %v)", large, shardSizes(shards))
	}
}

func shardSizes(shards []*Shard) []int {
	out := make([]int, len(shards))
	for i, sh := range shards {
		out[i] = sh.NumNodes()
	}
	return out
}

func TestCovers(t *testing.T) {
	// Component 0: root -> a -> b. Component 1: x -> y.
	b := graph.NewBuilder()
	b.AddNode("root")
	b.AddNode("a")
	b.AddNode("b")
	b.AddNode("x")
	b.AddNode("y")
	b.AddEdge(0, 1, graph.TreeEdge)
	b.AddEdge(1, 2, graph.TreeEdge)
	b.AddEdge(3, 4, graph.TreeEdge)
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	shards := mustPartition(t, g, 2)
	if len(shards) != 2 {
		t.Fatalf("want 2 shards, got %d", len(shards))
	}
	rootSh, otherSh := shards[0], shards[1]
	cases := []struct {
		expr        string
		root, other bool
	}{
		{"/a/b", true, false},  // rooted: root shard only
		{"a/b", true, false},   // other shard lacks both labels
		{"x/y", false, true},   // root shard lacks x
		{"*/y", false, true},   // wildcard step constrains nothing
		{"a/y", false, false},  // labels split across shards: nobody covers
		{"zz", false, false},   // unknown label: nobody covers
		{"*", true, true},      // pure wildcard: everybody
	}
	for _, c := range cases {
		e := mustParse(t, c.expr)
		if got := rootSh.Covers(e); got != c.root {
			t.Errorf("root shard Covers(%q) = %v, want %v", c.expr, got, c.root)
		}
		if got := otherSh.Covers(e); got != c.other {
			t.Errorf("other shard Covers(%q) = %v, want %v", c.expr, got, c.other)
		}
	}
}

// State lifecycle: unfrozen construction, generation-0 publish, refinement
// publishing generation 1 with a now-precise answer, no-op re-refinement,
// and retirement rebuilding as generation 2.
func TestStateLifecycle(t *testing.T) {
	g := gtest.New(11, gtest.Options{Nodes: 300, Labels: 5, RefProb: 0.15, Components: 3})
	shards := mustPartition(t, g, 3)
	sh := shards[0]
	st := NewState(sh, core.MStarOptions{})
	if st.Snapshot().FZ != nil {
		t.Fatal("frozen snapshot before FreezeInitial")
	}
	st.FreezeInitial()
	snap := st.Snapshot()
	if snap.FZ == nil || snap.Gen != 0 {
		t.Fatalf("after FreezeInitial: gen %d, fz %v", snap.Gen, snap.FZ != nil)
	}
	if n, _, _ := st.FreezeStats(); n != 1 {
		t.Fatalf("freeze count %d, want 1", n)
	}

	// Find a FUP whose answer is imprecise on this shard so Refine has work.
	var fup *pathexpr.Expr
	for _, w := range gtest.RandomWorkload(12, g, gtest.WorkloadOptions{Size: 40, MaxLen: 4}) {
		e := mustParse(t, w)
		if !sh.Covers(e) {
			continue
		}
		if res, _ := snap.FZ.QueryOpts(e, query.ValidateOpts{}); !res.Precise && len(res.Answer) > 0 {
			fup = e
			break
		}
	}
	if fup == nil {
		t.Skip("workload produced no imprecise expression on shard 0")
	}
	if !st.Refine(fup, query.ValidateOpts{}) {
		t.Fatal("Refine reported no-op for an imprecise FUP")
	}
	snap2 := st.Snapshot()
	if snap2.Gen != 1 {
		t.Fatalf("generation %d after refine, want 1", snap2.Gen)
	}
	if res, _ := snap2.FZ.QueryOpts(fup, query.ValidateOpts{}); !res.Precise {
		t.Fatal("refined FUP still imprecise")
	}
	if err := snap2.MS.Validate(false); err != nil {
		t.Fatalf("refined shard index invalid: %v", err)
	}
	if st.Refine(fup, query.ValidateOpts{}) {
		t.Fatal("re-refining a supported FUP published a snapshot")
	}
	if st.Generation() != 1 {
		t.Fatalf("no-op refine bumped generation to %d", st.Generation())
	}

	if !st.Retire(fup) {
		t.Fatal("Retire reported no-op for a supported FUP")
	}
	if st.Generation() != 2 {
		t.Fatalf("generation %d after retire, want 2", st.Generation())
	}
	if st.Snapshot().MS.HasFUP(fup) {
		t.Fatal("retired FUP still registered")
	}
	if st.Retire(fup) {
		t.Fatal("retiring an unsupported FUP published a snapshot")
	}
}
