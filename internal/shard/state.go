package shard

import (
	"sync"
	"sync/atomic"
	"time"

	"mrx/internal/core"
	"mrx/internal/mmapstore"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

// Snap is one immutable generation of a shard's served index: the mutable
// M*(k) refinement state (never mutated once published — the next writer
// clones it) and the frozen CSR view every query reads. Node IDs inside
// both are shard-local; the owner maps answers through Shard.ToGlobal.
type Snap struct {
	Gen uint64
	MS  *core.MStar
	FZ  *core.FrozenMStar

	// Serve is the view queries should read: the trusted zero-copy
	// remapping of FZ's atomic on-disk publish when EnablePersist routed
	// this generation to disk, FZ itself otherwise (including when a
	// republish failed — readers are never left behind the write side).
	// Writers keep chaining off FZ: probes and FreezeReusing share heap
	// arrays, never mapped bytes, so a superseded generation's mapping can
	// be unmapped without invalidating anything its successor shares.
	Serve *core.FrozenMStar
}

// Serving returns the frozen view queries should evaluate against: Serve
// when set, FZ otherwise (pre-persist snapshots constructed by older code
// paths leave Serve nil).
func (s *Snap) Serving() *core.FrozenMStar {
	if s.Serve != nil {
		return s.Serve
	}
	return s.FZ
}

// State owns one shard's snapshot lifecycle: a write lock serializing
// refinement and retirement on this shard only, an atomic pointer readers
// load without blocking, and freeze telemetry. Writers on different shards
// never contend — that independence is the point of the partition.
//
// A State is constructed unfrozen (NewState builds the mutable index only)
// and must not serve queries until FreezeInitial publishes generation 0;
// the sharded engine freezes all shards through a bounded worker pool
// before it returns from construction.
type State struct {
	shard *Shard
	opts  core.MStarOptions // serving options, reused for trusted reopens

	mu   sync.Mutex // serializes writers on this shard
	snap atomic.Pointer[Snap]

	// persistPath, when non-empty, routes every published generation
	// through an atomic on-disk republish (mmapstore.Publish) followed by a
	// trusted zero-copy reopen; set by EnablePersist before FreezeInitial.
	persistPath string
	persistWO   mmapstore.WriteOptions
	persistErrs atomic.Uint64
	persistErr  error // first republish failure; guarded by mu

	freezes       atomic.Uint64
	lastFreezeNs  atomic.Int64
	totalFreezeNs atomic.Int64

	// RefineHook, when non-nil, runs inside Refine while the shard's write
	// lock is held, between evaluation and publish. Tests use it to prove
	// that refinements on different shards overlap in time; it must not
	// call back into the same State.
	RefineHook func()
}

// NewState builds the shard's mutable M*(k)-index at component I0. Call
// FreezeInitial before serving.
func NewState(sh *Shard, opts core.MStarOptions) *State {
	st := &State{shard: sh, opts: opts}
	ms := core.NewMStarOpts(sh.local, opts)
	st.snap.Store(&Snap{MS: ms}) // FZ nil until FreezeInitial
	return st
}

// EnablePersist makes this shard disk-resident: every generation published
// from FreezeInitial on is atomically republished to path as an mmapstore
// snapshot (bound to the shard-local graph) and served from its trusted
// zero-copy remapping. Call it before FreezeInitial; it is not safe to call
// concurrently with writers. A republish failure degrades that generation
// to heap serving, bumps PersistErrors, and records the first error for
// PersistErr.
func (st *State) EnablePersist(path string, compact bool) {
	st.persistPath = path
	st.persistWO = mmapstore.WriteOptions{CompactExtents: compact}
}

// PersistErrors reports how many published generations failed to reach
// disk (each was served from the heap instead).
func (st *State) PersistErrors() uint64 { return st.persistErrs.Load() }

// PersistErr returns the first republish failure, or nil. The sharded
// engine uses it to fail construction when the initial freeze could not be
// persisted.
func (st *State) PersistErr() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.persistErr
}

// publishLocked publishes next as the shard's current generation, routing
// it through the persist target first when one is configured. Callers hold
// st.mu.
func (st *State) publishLocked(next *Snap) {
	next.Serve = next.FZ
	if st.persistPath != "" {
		if serve, err := st.republish(next.FZ); err != nil {
			st.persistErrs.Add(1)
			if st.persistErr == nil {
				st.persistErr = err
			}
		} else {
			next.Serve = serve
		}
	}
	st.snap.Store(next)
}

// republish atomically replaces the shard's on-disk snapshot with fz and
// reopens it as a trusted zero-copy mapping. Trusted is sound: the bytes
// were written by this process one atomic rename ago.
func (st *State) republish(fz *core.FrozenMStar) (*core.FrozenMStar, error) {
	if err := mmapstore.Publish(st.persistPath, fz, st.persistWO); err != nil {
		return nil, err
	}
	snap, err := mmapstore.Open(st.persistPath, st.shard.local, mmapstore.Options{Trusted: true, MStar: st.opts})
	if err != nil {
		return nil, err
	}
	return snap.FrozenMStar(), nil
}

// Shard returns the immutable shard this state serves.
func (st *State) Shard() *Shard { return st.shard }

// Snapshot returns the current generation. The result is immutable.
func (st *State) Snapshot() *Snap { return st.snap.Load() }

// Generation reports how many snapshots this shard has published since
// FreezeInitial.
func (st *State) Generation() uint64 { return st.snap.Load().Gen }

// FreezeInitial freezes the shard's index and publishes generation 0. It
// is idempotent only in the sense that re-freezing an unrefined index
// produces an identical snapshot; the engine calls it exactly once per
// shard, from its freeze worker pool.
func (st *State) FreezeInitial() {
	st.mu.Lock()
	defer st.mu.Unlock()
	cur := st.snap.Load()
	fz := st.timedFreeze(func() *core.FrozenMStar { return cur.MS.Freeze() })
	st.publishLocked(&Snap{Gen: cur.Gen, MS: cur.MS, FZ: fz})
}

// timedFreeze runs one freeze under the shard's freeze telemetry. Callers
// hold st.mu.
func (st *State) timedFreeze(freeze func() *core.FrozenMStar) *core.FrozenMStar {
	start := time.Now()
	fz := freeze()
	ns := time.Since(start).Nanoseconds()
	st.freezes.Add(1)
	st.lastFreezeNs.Store(ns)
	st.totalFreezeNs.Add(ns)
	return fz
}

// FreezeStats reports the number of freezes this shard has run and the
// last / cumulative freeze wall-clock.
func (st *State) FreezeStats() (count uint64, last, total time.Duration) {
	return st.freezes.Load(),
		time.Duration(st.lastFreezeNs.Load()),
		time.Duration(st.totalFreezeNs.Load())
}

// Refine supports the FUP e on this shard: evaluate against the current
// frozen snapshot, REFINE* a private clone, re-freeze only the components
// the refinement dirtied (FreezeReusing), and publish the next generation.
// It locks only this shard, reports whether a snapshot was published, and
// mirrors the monolithic engine's no-op detection: a FUP already in the
// registry, an already-precise answer, or an unchanged version vector
// publishes nothing.
func (st *State) Refine(e *pathexpr.Expr, opt query.ValidateOpts) bool {
	st.mu.Lock()
	defer st.mu.Unlock()

	cur := st.snap.Load()
	if cur.MS.HasFUP(e) {
		return false
	}
	res, _ := cur.FZ.QueryOpts(e, opt)
	if res.Precise {
		return false
	}
	clone := cur.MS.Clone()
	clone.Refine(e, res.Answer)
	if clone.UnchangedSince(cur.MS) {
		return false
	}
	if st.RefineHook != nil {
		st.RefineHook()
	}
	fz := st.timedFreeze(func() *core.FrozenMStar { return clone.FreezeReusing(cur.MS, cur.FZ) })
	st.publishLocked(&Snap{Gen: cur.Gen + 1, MS: clone, FZ: fz})
	return true
}

// Retire withdraws support for e on this shard by rebuilding from the
// surviving FUP registry (core.Retire) and publishing the rebuild as a new
// generation. Retiring an expression this shard never refined is a no-op.
func (st *State) Retire(e *pathexpr.Expr) bool {
	st.mu.Lock()
	defer st.mu.Unlock()

	cur := st.snap.Load()
	rebuilt, ok := cur.MS.Retire(e)
	if !ok {
		return false
	}
	// The rebuild starts from a fresh I0; nothing of the outgoing frozen
	// view survives to reuse.
	fz := st.timedFreeze(rebuilt.Freeze)
	st.publishLocked(&Snap{Gen: cur.Gen + 1, MS: rebuilt, FZ: fz})
	return true
}
