// Package shard partitions a data graph into shard-local subgraphs along
// weakly-connected component boundaries and owns the shard-local M*(k)
// snapshot lifecycle the sharded engine serves from.
//
// The seam is semantic, not heuristic: simple path expressions traverse
// child edges and validate along parent edges, so no instance of an
// expression ever crosses a weak component. Partitioning components across
// shards therefore preserves answers exactly — a query evaluates on each
// shard's private M*(k)-index and the shard answers union (disjointly) to
// the monolithic answer. What changes is the unit of concurrency: each
// shard has its own mutable index, its own frozen CSR snapshot, its own
// write lock and its own generation counter, so refinements on different
// shards proceed in parallel, freezes fan out across a bounded worker
// pool, and a publish swaps one shard's atomic pointer without touching
// the others.
//
// Assignment policy (Partition): components at least as large as the
// average shard would be get a shard chosen by current load (big
// components dominate whatever shard they land on, so spreading them by
// load is what balances the fleet); smaller components are packed by a
// hashed label-path signature, which keeps structurally similar documents
// together deterministically without measuring them.
package shard

import (
	"fmt"
	"sort"

	"mrx/internal/graph"
	"mrx/internal/pathexpr"
)

// Shard is one partition of the data graph: a union of weakly-connected
// components, materialized as an induced subgraph with dense local node
// IDs. Local node i corresponds to global node ToGlobal(i); the mapping is
// ascending, so a locally sorted answer maps to a globally sorted one.
// Shards are immutable after Partition.
type Shard struct {
	id         int
	local      *graph.Graph
	toGlobal   []graph.NodeID
	hasRoot    bool
	components int
	labelHas   []bool // indexed by the shared (global) LabelID space
}

// ID returns the shard's index in the partition, 0..NumShards-1.
func (s *Shard) ID() int { return s.id }

// Local returns the shard's induced subgraph. Its label table is shared
// with the parent graph, so LabelIDs are interchangeable.
func (s *Shard) Local() *graph.Graph { return s.local }

// NumNodes returns the number of data nodes owned by the shard.
func (s *Shard) NumNodes() int { return len(s.toGlobal) }

// Components returns how many weak components were packed into the shard.
func (s *Shard) Components() int { return s.components }

// HasRoot reports whether the shard owns the parent graph's root (global
// node 0). Exactly one shard does; rooted expressions route only to it,
// and there the global root is local node 0, preserving rooted semantics.
func (s *Shard) HasRoot() bool { return s.hasRoot }

// ToGlobal maps a local node ID back to the parent graph's ID.
func (s *Shard) ToGlobal(v graph.NodeID) graph.NodeID { return s.toGlobal[v] }

// GlobalIDs returns the shard's global node set, ascending. The slice
// aliases internal storage and must not be modified.
func (s *Shard) GlobalIDs() []graph.NodeID { return s.toGlobal }

// Covers reports whether e can possibly match inside the shard: a rooted
// expression needs the shard that owns the root, and every non-wildcard
// step label must label at least one of the shard's nodes (each step of an
// instance matches one node, so one absent label empties the answer). The
// scatter planner prunes shards that fail this test without evaluating
// them.
func (s *Shard) Covers(e *pathexpr.Expr) bool {
	if e.Rooted && !s.hasRoot {
		return false
	}
	for _, st := range e.Steps {
		if st.Wildcard {
			continue
		}
		l, ok := s.local.LabelIDOf(st.Label)
		if !ok || !s.labelHas[l] {
			return false
		}
	}
	return true
}

// Partition splits g into at most n shards along weak component
// boundaries. The shard count is clamped to the component count (a
// component is indivisible here), so the result may be shorter than n;
// it always has at least one shard. Shard 0's first component is the one
// owning global node 0, keeping the root at local node 0 of its shard.
func Partition(g *graph.Graph, n int) ([]*Shard, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: partition into %d shards", n)
	}
	comps := g.WeakComponents()
	if n > len(comps) {
		n = len(comps)
	}

	// Deterministic assignment order: big components first (load placement
	// depends on what was placed before), ties by smallest member.
	order := make([]int, len(comps))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := comps[order[a]], comps[order[b]]
		if len(ca) != len(cb) {
			return len(ca) > len(cb)
		}
		return ca[0] < cb[0]
	})

	threshold := (g.NumNodes() + n - 1) / n
	load := make([]int, n)
	assigned := make([][]int, n) // shard -> component indexes
	for oi, ci := range order {
		c := comps[ci]
		var s int
		switch {
		case n == len(comps):
			// As many shards as components: one each, no packing needed.
			s = oi
		case len(c) >= threshold:
			// Large: place by load, lowest shard index on ties.
			for i := 1; i < n; i++ {
				if load[i] < load[s] {
					s = i
				}
			}
		default:
			// Small: pack by hashed label-path signature.
			s = int(signature(g, c) % uint64(n))
		}
		load[s] += len(c)
		assigned[s] = append(assigned[s], ci)
	}

	// The shard that owns global node 0 becomes shard 0, so the root lives
	// at (shard 0, local 0) — the convention rooted evaluation relies on.
	rootShard := 0
	for s := range assigned {
		for _, ci := range assigned[s] {
			if comps[ci][0] == 0 {
				rootShard = s
			}
		}
	}
	assigned[0], assigned[rootShard] = assigned[rootShard], assigned[0]

	out := make([]*Shard, 0, n)
	for s, cis := range assigned {
		if len(cis) == 0 {
			continue // a hash bucket nothing landed in
		}
		var nodes []graph.NodeID
		for _, ci := range cis {
			nodes = append(nodes, comps[ci]...)
		}
		sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
		local, err := g.Induce(nodes)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		sh := &Shard{
			id:         len(out),
			local:      local,
			toGlobal:   nodes,
			hasRoot:    nodes[0] == 0,
			components: len(cis),
			labelHas:   make([]bool, g.NumLabels()),
		}
		for v := 0; v < local.NumNodes(); v++ {
			sh.labelHas[local.Label(graph.NodeID(v))] = true
		}
		out = append(out, sh)
	}
	return out, nil
}

// signature hashes a component's length-one label paths (the multiset of
// distinct parent-label -> child-label edge pairs, plus its entry labels)
// with FNV-1a. Structurally similar documents — same schema, different
// content — collide deliberately, landing in the same shard.
func signature(g *graph.Graph, comp []graph.NodeID) uint64 {
	pairs := make([]uint64, 0, len(comp))
	for _, v := range comp {
		lv := uint64(g.Label(v))
		if len(g.Parents(v)) == 0 {
			pairs = append(pairs, lv) // entry label, no parent side
		}
		for _, c := range g.Children(v) {
			pairs = append(pairs, (lv+1)<<32|uint64(g.Label(c)))
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a] < pairs[b] })
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	var prev uint64
	for i, p := range pairs {
		if i > 0 && p == prev {
			continue // multiset -> set: content volume must not move documents
		}
		prev = p
		for b := 0; b < 8; b++ {
			h ^= (p >> (8 * b)) & 0xff
			h *= prime64
		}
	}
	return h
}
