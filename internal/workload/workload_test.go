package workload

import (
	"strings"
	"testing"

	"mrx/internal/datagen"
	"mrx/internal/graph"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

func TestEnumerateLabelPathsFigure1(t *testing.T) {
	g := graph.PaperFigure1()
	paths := EnumerateLabelPaths(g, 2)
	asStrings := make(map[string]bool)
	for _, p := range paths {
		asStrings[strings.Join(p, "/")] = true
	}
	for _, want := range []string{
		"site",
		"site/people",
		"site/people/person",
		"site/regions/africa",
		"site/auctions/auction",
	} {
		if !asStrings[want] {
			t.Errorf("missing path %s (have %d paths)", want, len(paths))
		}
	}
	if asStrings["site/people/person/name"] {
		t.Error("path longer than limit enumerated")
	}
	if asStrings["people"] {
		t.Error("non-root-anchored path enumerated")
	}
	// Every enumerated path must be realizable in the data graph.
	d := query.NewDataIndex(g)
	for _, p := range paths {
		e := "/" + strings.Join(p, "/")
		pe, err := pathexpr.Parse(e)
		if err != nil {
			t.Fatalf("parse %s: %v", e, err)
		}
		if len(d.Eval(pe)) == 0 {
			t.Errorf("enumerated path %s has no instance", e)
		}
	}
}

func TestEnumerateCycleBounded(t *testing.T) {
	// A reference cycle a->b->a must not loop forever.
	g := mustBuildSimple([]string{"root", "a", "b"},
		[][2]int{{0, 1}, {1, 2}}, [][2]int{{2, 1}})
	paths := EnumerateLabelPaths(g, 5)
	maxLen := 0
	for _, p := range paths {
		if len(p)-1 > maxLen {
			maxLen = len(p) - 1
		}
	}
	if maxLen != 5 {
		t.Errorf("max enumerated length = %d, want 5", maxLen)
	}
}

func TestGenerateDeterministicAndBounded(t *testing.T) {
	g := datagen.XMarkGraph(0.02, 1)
	opts := Options{NumQueries: 200, MaxPathLen: 9, MaxQueryLen: 4, Seed: 5}
	q1 := Generate(g, opts)
	q2 := Generate(g, opts)
	if len(q1) != 200 {
		t.Fatalf("got %d queries", len(q1))
	}
	for i := range q1 {
		if !q1[i].Equal(q2[i]) {
			t.Fatal("same seed produced different workloads")
		}
		if q1[i].Length() > 4 {
			t.Fatalf("query %s exceeds MaxQueryLen", q1[i])
		}
		if q1[i].Rooted {
			t.Fatalf("query %s should be descendant-anchored", q1[i])
		}
	}
}

// TestLengthDistribution reproduces the shape of Figures 8 and 9: the
// fraction of length-0 queries is around 0.3 and frequencies decrease
// with length.
func TestLengthDistribution(t *testing.T) {
	g := datagen.NASAGraph(0.05, 2)
	for _, maxQ := range []int{9, 4} {
		opts := Options{NumQueries: 4000, MaxPathLen: 9, MaxQueryLen: maxQ, Seed: 11}
		hist := LengthHistogram(Generate(g, opts))
		if len(hist) != maxQ+1 {
			t.Fatalf("maxQ=%d: hist has %d buckets: %v", maxQ, len(hist), hist)
		}
		if hist[0] < 0.2 || hist[0] > 0.45 {
			t.Errorf("maxQ=%d: P(len=0) = %.3f, want ~0.3", maxQ, hist[0])
		}
		// Broadly decreasing: each bucket at most slightly above its
		// predecessor (sampling noise tolerance).
		for i := 1; i < len(hist); i++ {
			if hist[i] > hist[i-1]+0.03 {
				t.Errorf("maxQ=%d: histogram not decreasing at %d: %v", maxQ, i, hist)
			}
		}
	}
}

func TestQueriesHaveInstances(t *testing.T) {
	g := datagen.XMarkGraph(0.02, 3)
	d := query.NewDataIndex(g)
	qs := Generate(g, Options{NumQueries: 100, MaxPathLen: 6, MaxQueryLen: 6, Seed: 9})
	for _, q := range qs {
		if len(d.Eval(q)) == 0 {
			t.Errorf("workload query %s has empty target set", q)
		}
	}
}

func TestFromPathsEmpty(t *testing.T) {
	if qs := FromPaths(nil, Options{NumQueries: 10, MaxQueryLen: 4, Seed: 1}); len(qs) != 0 {
		t.Fatalf("expected no queries from empty path set, got %d", len(qs))
	}
	// A root-only graph generates an empty workload rather than panicking.
	g := mustBuildSimple([]string{"root"}, nil, nil)
	if qs := Generate(g, Options{NumQueries: 5, MaxPathLen: 4, MaxQueryLen: 4, Seed: 1}); len(qs) != 0 {
		t.Fatalf("root-only graph produced %d queries", len(qs))
	}
}
