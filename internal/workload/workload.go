// Package workload generates the synthetic query workloads of the paper's
// experiments (§5): enumerate all label paths of length up to a limit in
// the data graph, then form each query by extracting a subsequence of a
// randomly chosen path, with random start position and length, prefixed by
// the self-or-descendant axis (//).
//
// Because the start position is uniform, short queries are more likely than
// long ones, reproducing the decreasing length distributions of Figures 8
// and 9 (about 30% of queries have length 0).
package workload

import (
	"math/rand"
	"sort"

	"mrx/internal/baseline"
	"mrx/internal/graph"
	"mrx/internal/index"
	"mrx/internal/pathexpr"
)

// EnumerateLabelPaths returns every distinct label path of length up to
// maxLen (edge count) that starts at a child of the root, in deterministic
// order. Paths are enumerated over the 1-index rather than the data graph —
// bisimulation preserves the label-path language exactly, and the 1-index
// is far smaller. The length limit prevents paths along reference-edge
// cycles from being generated forever, as in the paper.
func EnumerateLabelPaths(g *graph.Graph, maxLen int) [][]string {
	ig, _ := baseline.OneIndex(g)
	root := ig.Root()

	// Initial frontier: children of the root grouped by label.
	var out [][]string
	var dfs func(prefix []string, frontier []*index.Node)
	dfs = func(prefix []string, frontier []*index.Node) {
		path := append([]string(nil), prefix...)
		out = append(out, path)
		if len(prefix) > maxLen { // length = len(prefix)-1 edges
			return
		}
		byLabel := make(map[string][]*index.Node)
		for _, n := range frontier {
			for _, c := range ig.Children(n) {
				l := g.LabelName(c.Label())
				byLabel[l] = append(byLabel[l], c)
			}
		}
		labels := make([]string, 0, len(byLabel))
		for l := range byLabel {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			dfs(append(prefix, l), dedupeNodes(byLabel[l]))
		}
	}

	byLabel := make(map[string][]*index.Node)
	for _, c := range ig.Children(root) {
		l := g.LabelName(c.Label())
		byLabel[l] = append(byLabel[l], c)
	}
	labels := make([]string, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		dfs([]string{l}, dedupeNodes(byLabel[l]))
	}
	return out
}

func dedupeNodes(ns []*index.Node) []*index.Node {
	seen := make(map[index.NodeID]bool, len(ns))
	out := ns[:0]
	for _, n := range ns {
		if !seen[n.ID()] {
			seen[n.ID()] = true
			out = append(out, n)
		}
	}
	return out
}

// Options configures workload generation.
type Options struct {
	// NumQueries is the number of queries to generate (paper: 500).
	NumQueries int
	// MaxPathLen bounds enumerated label-path length (paper: 9).
	MaxPathLen int
	// MaxQueryLen bounds the extracted subsequence length (paper: 9 or 4).
	MaxQueryLen int
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultOptions mirrors the paper's primary workload: 500 queries over
// paths of length up to 9, query length up to 9.
func DefaultOptions(seed int64) Options {
	return Options{NumQueries: 500, MaxPathLen: 9, MaxQueryLen: 9, Seed: seed}
}

// Generate produces a query workload for g.
func Generate(g *graph.Graph, opts Options) []*pathexpr.Expr {
	paths := EnumerateLabelPaths(g, opts.MaxPathLen)
	return FromPaths(paths, opts)
}

// FromPaths samples queries from a pre-enumerated path set: pick a path
// uniformly at random, then a start position uniformly, then a length
// uniformly in [0, min(MaxQueryLen, remaining)], and prefix with //.
func FromPaths(paths [][]string, opts Options) []*pathexpr.Expr {
	if len(paths) == 0 {
		return nil // a root-only graph has no label paths to sample from
	}
	r := rand.New(rand.NewSource(opts.Seed))
	out := make([]*pathexpr.Expr, 0, opts.NumQueries)
	for len(out) < opts.NumQueries {
		p := paths[r.Intn(len(paths))]
		start := r.Intn(len(p))
		maxLen := len(p) - 1 - start
		if maxLen > opts.MaxQueryLen {
			maxLen = opts.MaxQueryLen
		}
		qlen := 0
		if maxLen > 0 {
			qlen = r.Intn(maxLen + 1)
		}
		out = append(out, pathexpr.FromLabels(p[start:start+qlen+1]))
	}
	return out
}

// LengthHistogram returns the fraction of queries at each length,
// indexed by length (the data behind Figures 8 and 9).
func LengthHistogram(queries []*pathexpr.Expr) []float64 {
	maxLen := 0
	for _, q := range queries {
		if q.Length() > maxLen {
			maxLen = q.Length()
		}
	}
	hist := make([]float64, maxLen+1)
	for _, q := range queries {
		hist[q.Length()]++
	}
	for i := range hist {
		hist[i] /= float64(len(queries))
	}
	return hist
}
