package latstat

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 900 fast samples, 95 slow, 5 very slow: p50 must land in the fast
	// band, p99 in the slow band, p999 at the outliers' bucket.
	for i := 0; i < 900; i++ {
		h.Record(3 * time.Microsecond)
	}
	for i := 0; i < 95; i++ {
		h.Record(900 * time.Microsecond)
	}
	for i := 0; i < 5; i++ {
		h.Record(80 * time.Millisecond)
	}

	s := h.Summary()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.P50 > 8*time.Microsecond {
		t.Errorf("p50 = %v, want within the fast band", s.P50)
	}
	if s.P99 < 512*time.Microsecond || s.P99 > 2*time.Millisecond {
		t.Errorf("p99 = %v, want within a factor of two of 900µs", s.P99)
	}
	if s.P999 < 64*time.Millisecond {
		t.Errorf("p999 = %v, want to reflect the 80ms outlier", s.P999)
	}
	if s.Max != 80*time.Millisecond {
		t.Errorf("max = %v, want 80ms", s.Max)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if s := h.Summary(); s != (Summary{}) {
		t.Errorf("empty histogram summary = %+v, want zero", s)
	}
	if q := h.Quantile(0.99); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(i%7) * 100 * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Errorf("count = %d, want %d", got, goroutines*per)
	}
}

func TestWindowRotation(t *testing.T) {
	w := NewWindow(time.Second)
	t0 := time.Unix(1000, 0)

	// A latency spike fills the first window.
	for i := 0; i < 100; i++ {
		w.Record(t0, 50*time.Millisecond)
	}
	if p := w.Quantile(t0, 0.99); p < 32*time.Millisecond {
		t.Fatalf("p99 during spike = %v, want >= 32ms", p)
	}

	// Half a window later the spike still dominates (merged slots).
	t1 := t0.Add(1500 * time.Millisecond)
	for i := 0; i < 100; i++ {
		w.Record(t1, time.Millisecond)
	}
	if p := w.Quantile(t1, 0.99); p < 32*time.Millisecond {
		t.Errorf("p99 one rotation after spike = %v, want spike still visible", p)
	}

	// More than two widths later the spike has aged out entirely.
	t2 := t1.Add(2500 * time.Millisecond)
	for i := 0; i < 100; i++ {
		w.Record(t2, time.Millisecond)
	}
	if p := w.Quantile(t2, 0.99); p > 4*time.Millisecond {
		t.Errorf("p99 after spike aged out = %v, want back to ~1ms", p)
	}
}

func TestWindowEmpty(t *testing.T) {
	w := NewWindow(time.Second)
	if p := w.Quantile(time.Unix(5, 0), 0.99); p != 0 {
		t.Errorf("empty window p99 = %v, want 0", p)
	}
	if s := w.Summary(time.Unix(6, 0)); s.Count != 0 {
		t.Errorf("empty window count = %d, want 0", s.Count)
	}
}
