// Package latstat provides the lock-free latency statistics shared by the
// serving stack: a power-of-two bucketed histogram every goroutine can
// record into without coordination, quantile summaries, and a rotating
// time-window view used for load-shedding decisions.
//
// The histogram started life inside internal/engine's stats block; it moved
// here so the network serving layer (internal/serve) can observe its own
// end-to-end latencies — including queueing delay, which the engine never
// sees — with the same machinery and the same bucket boundaries.
package latstat

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Buckets is the number of power-of-two microsecond buckets in a Histogram:
// bucket i counts samples in [2^(i-1), 2^i) µs (bucket 0 counts <1µs), so
// the range spans sub-microsecond up to ~2s before the last bucket
// overflows.
const Buckets = 21

// Histogram is a lock-free power-of-two latency histogram. The zero value
// is ready to use; all methods are safe for concurrent use.
type Histogram struct {
	buckets  [Buckets]atomic.Uint64
	count    atomic.Uint64
	sumMicro atomic.Uint64
	maxMicro atomic.Uint64
}

// Record adds one sample.
//
//mrx:hotpath per-request latency recording: atomics only
func (h *Histogram) Record(d time.Duration) {
	us := uint64(d.Microseconds())
	b := bits.Len64(us) // 0 for <1µs, i for [2^(i-1), 2^i)
	if b >= Buckets {
		b = Buckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sumMicro.Add(us)
	for {
		cur := h.maxMicro.Load()
		if us <= cur || h.maxMicro.CompareAndSwap(cur, us) {
			break
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile returns the upper bound of the bucket containing the q-quantile
// sample (0 < q <= 1), as a duration. It is an approximation within a
// factor of two, which is what a serving dashboard (or a load shedder with
// a hysteresis band) needs.
func (h *Histogram) Quantile(q float64) time.Duration {
	return h.counts().quantile(q)
}

// Summary condenses the histogram into fixed quantiles.
func (h *Histogram) Summary() Summary { return h.counts().summary() }

// counts is a plain (non-atomic) snapshot of a histogram, used to compute
// quantiles over one or several histograms consistently.
type counts struct {
	buckets  [Buckets]uint64
	count    uint64
	sumMicro uint64
	maxMicro uint64
}

func (h *Histogram) counts() counts {
	var c counts
	for i := range h.buckets {
		c.buckets[i] = h.buckets[i].Load()
	}
	c.count = h.count.Load()
	c.sumMicro = h.sumMicro.Load()
	c.maxMicro = h.maxMicro.Load()
	return c
}

func (c counts) merge(o counts) counts {
	for i := range c.buckets {
		c.buckets[i] += o.buckets[i]
	}
	c.count += o.count
	c.sumMicro += o.sumMicro
	if o.maxMicro > c.maxMicro {
		c.maxMicro = o.maxMicro
	}
	return c
}

func (c counts) quantile(q float64) time.Duration {
	if c.count == 0 {
		return 0
	}
	rank := uint64(q * float64(c.count))
	if rank >= c.count {
		rank = c.count - 1
	}
	var seen uint64
	for i := 0; i < Buckets; i++ {
		seen += c.buckets[i]
		if seen > rank {
			return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(c.maxMicro) * time.Microsecond
}

func (c counts) summary() Summary {
	s := Summary{Count: c.count}
	if c.count == 0 {
		return s
	}
	s.Mean = time.Duration(c.sumMicro/c.count) * time.Microsecond
	s.P50 = c.quantile(0.50)
	s.P90 = c.quantile(0.90)
	s.P99 = c.quantile(0.99)
	s.P999 = c.quantile(0.999)
	s.Max = time.Duration(c.maxMicro) * time.Microsecond
	return s
}

// Summary condenses one histogram (or window) into fixed quantiles.
type Summary struct {
	Count                          uint64
	Mean, P50, P90, P99, P999, Max time.Duration
}

// Window is a rotating two-slot histogram: samples land in the current
// slot, and reads merge the current slot with the previous one, so every
// observation covers between one and two window widths of traffic and old
// load spikes age out. Rotation is lazy (driven by the timestamps callers
// pass in), so a Window needs no background goroutine.
//
// The serving layer's admission controller reads P99 from a Window on
// every request; both Record and the quantile reads are lock-free.
type Window struct {
	width int64 // nanoseconds
	slot  atomic.Pointer[windowSlot]
}

type windowSlot struct {
	start int64 // unix nanoseconds
	cur   *Histogram
	prev  *Histogram // nil when the previous slot is older than one width
}

// NewWindow returns a window of the given width (which must be positive).
func NewWindow(width time.Duration) *Window {
	w := &Window{width: int64(width)}
	w.slot.Store(&windowSlot{cur: &Histogram{}})
	return w
}

// advance rotates the slot so that it covers now, and returns it.
func (w *Window) advance(now time.Time) *windowSlot {
	ns := now.UnixNano()
	for {
		s := w.slot.Load()
		if s.start == 0 {
			// First sample fixes the window origin.
			fresh := &windowSlot{start: ns, cur: s.cur}
			if w.slot.CompareAndSwap(s, fresh) {
				return fresh
			}
			continue
		}
		age := ns - s.start
		if age < w.width {
			return s
		}
		next := &windowSlot{start: ns, cur: &Histogram{}}
		if age < 2*w.width {
			next.prev = s.cur
		}
		if w.slot.CompareAndSwap(s, next) {
			return next
		}
	}
}

// Record adds one sample observed at now.
func (w *Window) Record(now time.Time, d time.Duration) {
	w.advance(now).cur.Record(d)
}

// Quantile returns the q-quantile over the last one-to-two window widths as
// of now.
func (w *Window) Quantile(now time.Time, q float64) time.Duration {
	return w.windowCounts(now).quantile(q)
}

// Summary condenses the window's recent samples.
func (w *Window) Summary(now time.Time) Summary {
	return w.windowCounts(now).summary()
}

func (w *Window) windowCounts(now time.Time) counts {
	s := w.advance(now)
	c := s.cur.counts()
	if s.prev != nil {
		c = c.merge(s.prev.counts())
	}
	return c
}
