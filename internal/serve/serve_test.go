package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mrx/internal/graph"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

// stubQuerier is a controllable ContextQuerier: it counts calls, optionally
// blocks until released (or its context is canceled), and returns a fixed
// answer.
type stubQuerier struct {
	calls   atomic.Int64
	started chan struct{} // receives one token per call that begins
	release chan struct{} // calls block until this closes (nil: no blocking)
}

func (s *stubQuerier) QueryCtx(ctx context.Context, e *pathexpr.Expr) (query.Result, error) {
	s.calls.Add(1)
	if s.started != nil {
		s.started <- struct{}{}
	}
	if s.release != nil {
		select {
		case <-s.release:
		case <-ctx.Done():
			return query.Result{}, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		return query.Result{}, err
	}
	return query.Result{Answer: []graph.NodeID{1, 2, 3}, Precise: true}, nil
}

func mustServer(t *testing.T, q query.ContextQuerier, cfg Config) *Server {
	t.Helper()
	s, err := New(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// waitersFor polls until the coalescer has n waiters registered for key
// (or the deadline passes), making the concurrent tests deterministic.
func waitersFor(t *testing.T, c *coalescer, key string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		f := c.flights[key]
		got := 0
		if f != nil {
			got = f.waiters
		}
		c.mu.Unlock()
		if got == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("never saw %d waiters for %q", n, key)
}

// N concurrent requests for the same canonical expression must collapse
// into one evaluation whose result every waiter receives.
func TestCoalescerCollapsesIdenticalQueries(t *testing.T) {
	const n = 20
	var calls atomic.Int64
	release := make(chan struct{})
	co := newCoalescer()
	exec := func(ctx context.Context) (query.Result, error) {
		calls.Add(1)
		<-release
		return query.Result{Answer: []graph.NodeID{7}, Precise: true}, nil
	}

	var wg sync.WaitGroup
	results := make([]query.Result, n)
	shareds := make([]bool, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], shareds[i], errs[i] = co.do(context.Background(), "k", exec)
		}(i)
	}
	waitersFor(t, co, "k", n)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("exec ran %d times, want 1", got)
	}
	nshared := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if len(results[i].Answer) != 1 || results[i].Answer[0] != 7 {
			t.Fatalf("waiter %d got %v", i, results[i].Answer)
		}
		if shareds[i] {
			nshared++
		}
	}
	if nshared != n-1 {
		t.Fatalf("shared for %d waiters, want %d (all but the leader)", nshared, n-1)
	}
	// The finished flight must be unpublished: a later call starts fresh.
	if _, ok := co.flights["k"]; ok {
		t.Fatal("finished flight still published")
	}
}

// Distinct canonical expressions must never coalesce.
func TestCoalescerKeepsDistinctQueriesApart(t *testing.T) {
	var calls atomic.Int64
	co := newCoalescer()
	exec := func(ctx context.Context) (query.Result, error) {
		calls.Add(1)
		return query.Result{}, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, shared, err := co.do(context.Background(), fmt.Sprintf("k%d", i), exec); err != nil || shared {
				t.Errorf("key k%d: shared=%v err=%v", i, shared, err)
			}
		}(i)
	}
	wg.Wait()
	if got := calls.Load(); got != 8 {
		t.Fatalf("exec ran %d times, want 8", got)
	}
}

// When every waiter detaches, the evaluation's context must be canceled;
// while any waiter remains, it must not be.
func TestCoalescerCancelsWhenAllWaitersLeave(t *testing.T) {
	co := newCoalescer()
	execCanceled := make(chan struct{})
	exec := func(ctx context.Context) (query.Result, error) {
		<-ctx.Done()
		close(execCanceled)
		return query.Result{}, ctx.Err()
	}

	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); _, _, errs[0] = co.do(ctx1, "k", exec) }()
	go func() { defer wg.Done(); _, _, errs[1] = co.do(ctx2, "k", exec) }()
	waitersFor(t, co, "k", 2)

	cancel1() // one waiter leaves; the other still wants the result
	select {
	case <-execCanceled:
		t.Fatal("evaluation canceled while a waiter remained")
	case <-time.After(50 * time.Millisecond):
	}
	cancel2() // last waiter leaves: now the evaluation must stop
	select {
	case <-execCanceled:
	case <-time.After(5 * time.Second):
		t.Fatal("evaluation not canceled after the last waiter left")
	}
	wg.Wait()
	if !errors.Is(errs[0], context.Canceled) || !errors.Is(errs[1], context.Canceled) {
		t.Fatalf("waiter errors = %v, %v; want context.Canceled", errs[0], errs[1])
	}
}

// With all slots held and the wait queue full, further arrivals must shed
// immediately; a queued request must shed after QueueTimeout.
func TestAdmissionSheds(t *testing.T) {
	cfg := Config{MaxConcurrent: 1, QueueDepth: 1, QueueTimeout: 30 * time.Millisecond,
		Window: time.Second, RetryAfter: time.Second}
	a := newAdmission(cfg.withDefaults())
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Fill the one queue position with a request that will time out.
	queued := make(chan error, 1)
	go func() { queued <- a.acquire(context.Background()) }()
	deadline := time.Now().Add(5 * time.Second)
	for a.depth() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a.depth() != 1 {
		t.Fatal("second acquire never queued")
	}
	// Queue full: the third arrival is shed without waiting.
	if err := a.acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("overflow acquire: %v, want ErrShed", err)
	}
	// The queued request sheds once QueueTimeout passes.
	if err := <-queued; !errors.Is(err, ErrShed) {
		t.Fatalf("queued acquire: %v, want ErrShed after timeout", err)
	}
	a.release()
	if err := a.acquire(context.Background()); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	a.release()
}

// With the latency breaker enabled and the observed p99 over the bound,
// arrivals that would queue are shed before consuming queue capacity.
func TestAdmissionP99Breaker(t *testing.T) {
	cfg := Config{MaxConcurrent: 1, QueueDepth: 16, QueueTimeout: time.Second,
		ShedP99: time.Millisecond, Window: time.Minute, RetryAfter: time.Second}
	a := newAdmission(cfg.withDefaults())
	for i := 0; i < 100; i++ {
		a.observe(50 * time.Millisecond) // way over the 1ms bound
	}
	if err := a.acquire(context.Background()); err != nil {
		t.Fatalf("fast path must stay open below saturation: %v", err)
	}
	err := a.acquire(context.Background())
	if !errors.Is(err, ErrShed) {
		t.Fatalf("acquire with hot p99: %v, want ErrShed", err)
	}
	if a.depth() != 0 {
		t.Fatalf("breaker shed consumed queue capacity (depth %d)", a.depth())
	}
	a.release()
}

// End to end over HTTP: parse errors, health, stats and a served query.
func TestServerHTTP(t *testing.T) {
	st := &stubQuerier{}
	s := mustServer(t, st, DefaultConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/query?q=//a/b&answers=1")
	if err != nil {
		t.Fatal(err)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || qr.Answers != 3 || len(qr.Answer) != 3 || !qr.Precise {
		t.Fatalf("query: status %d, %+v", resp.StatusCode, qr)
	}
	if qr.Canonical == "" || qr.Coalesced {
		t.Fatalf("query metadata: %+v", qr)
	}

	resp, err = http.Get(ts.URL + "/query?q=//a//b//")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("parse error: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sr.Counters.Served != 1 || sr.Counters.Flights != 1 || sr.Counters.Shed != 0 {
		t.Fatalf("stats counters: %+v", sr.Counters)
	}
}

// Saturating the queue over HTTP must produce 429 with a Retry-After
// header while the in-flight request still completes.
func TestServerShedsOverHTTP(t *testing.T) {
	st := &stubQuerier{started: make(chan struct{}, 8), release: make(chan struct{})}
	s := mustServer(t, st, Config{MaxConcurrent: 1, QueueDepth: 1,
		QueueTimeout: 5 * time.Second, Window: time.Second, RetryAfter: 3 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(q string, out chan<- *http.Response) {
		resp, err := http.Get(ts.URL + "/query?q=" + q)
		if err != nil {
			t.Error(err)
			out <- nil
			return
		}
		resp.Body.Close()
		out <- resp
	}

	first := make(chan *http.Response, 1)
	go get("//a/b", first)
	<-st.started // the slot is now held

	second := make(chan *http.Response, 1)
	go get("//c/d", second)
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.depth() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.adm.depth() != 1 {
		t.Fatal("second query never queued")
	}

	// Queue full: the third distinct query is shed immediately.
	resp, err := http.Get(ts.URL + "/query?q=//e/f")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow query: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}

	close(st.release) // let the in-flight and queued queries finish
	for _, ch := range []chan *http.Response{first, second} {
		if resp := <-ch; resp == nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("blocked query finished with %v", resp)
		}
	}
	c := s.Counters()
	if c.Served != 2 || c.Shed != 1 || c.Flights != 2 {
		t.Fatalf("counters: %+v", c)
	}
}

// Concurrent identical queries over HTTP collapse into one backend call.
func TestServerCoalescesOverHTTP(t *testing.T) {
	const n = 10
	st := &stubQuerier{started: make(chan struct{}, 1), release: make(chan struct{})}
	s := mustServer(t, st, DefaultConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	out := make(chan int, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := http.Get(ts.URL + "/query?q=//a/b")
			if err != nil {
				out <- 0
				return
			}
			resp.Body.Close()
			out <- resp.StatusCode
		}()
	}
	<-st.started
	// //a/b and /descendant::a/b spellings share one canonical key.
	waitersFor(t, s.co, pathexpr.Canonical(mustParse(t, "//a/b")), n)
	close(st.release)
	for i := 0; i < n; i++ {
		if code := <-out; code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	if got := st.calls.Load(); got != 1 {
		t.Fatalf("backend called %d times, want 1", got)
	}
	c := s.Counters()
	if c.Served != n || c.Coalesced != n-1 || c.Flights != 1 {
		t.Fatalf("counters: %+v", c)
	}
}

// A canceled request context must cancel the backend evaluation (when it
// is the only waiter) and be accounted as canceled.
func TestServerCancelPropagates(t *testing.T) {
	st := &stubQuerier{started: make(chan struct{}, 1), release: make(chan struct{})}
	defer close(st.release)
	s := mustServer(t, st, DefaultConfig())

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/query?q=//a/b", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		s.Handler().ServeHTTP(rec, req)
		close(done)
	}()
	<-st.started
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not return after cancel")
	}
	if rec.Code != http.StatusRequestTimeout {
		t.Fatalf("status %d, want 408", rec.Code)
	}
	if c := s.Counters(); c.Canceled != 1 || c.Served != 0 {
		t.Fatalf("counters: %+v", c)
	}
}

// New must reject invalid configurations and a nil backend: every
// validated Config field is exercised once, and every failure wraps the
// errors.Is-able sentinel.
func TestConfigValidation(t *testing.T) {
	st := &stubQuerier{}
	bad := []struct {
		name string
		cfg  Config
	}{
		{"negative max concurrent", Config{MaxConcurrent: -1, QueueDepth: 1}},
		{"zero queue depth", Config{QueueDepth: 0}},
		{"negative queue depth", Config{QueueDepth: -3}},
		{"negative queue timeout", Config{QueueDepth: 1, QueueTimeout: -time.Second}},
		{"negative shed p99", Config{QueueDepth: 1, ShedP99: -1}},
		{"negative window", Config{QueueDepth: 1, Window: -time.Minute}},
		{"negative retry after", Config{QueueDepth: 1, RetryAfter: -time.Second}},
		{"negative read header timeout", Config{QueueDepth: 1, ReadHeaderTimeout: -time.Second}},
		{"negative read timeout", Config{QueueDepth: 1, ReadTimeout: -1}},
		{"negative write timeout", Config{QueueDepth: 1, WriteTimeout: -time.Minute}},
		{"negative idle timeout", Config{QueueDepth: 1, IdleTimeout: -time.Hour}},
	}
	for _, tc := range bad {
		s, err := New(st, tc.cfg)
		if err == nil {
			t.Errorf("%s: New accepted %+v", tc.name, tc.cfg)
			continue
		}
		if !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("%s: error %v does not wrap ErrInvalidConfig", tc.name, err)
		}
		if s != nil {
			t.Errorf("%s: New returned both a server and an error", tc.name)
		}
	}
	if _, err := New(nil, DefaultConfig()); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("New(nil querier): %v, want ErrInvalidConfig", err)
	}
	if _, err := New(st, DefaultConfig()); err != nil {
		t.Errorf("New rejected DefaultConfig: %v", err)
	}
}

// HTTPServer must carry the configured timeouts onto the http.Server and
// resolve zero fields to the documented defaults.
func TestConfigHTTPServer(t *testing.T) {
	cfg := Config{QueueDepth: 1, ReadHeaderTimeout: 123 * time.Millisecond,
		WriteTimeout: 456 * time.Millisecond}
	hs := cfg.HTTPServer(http.NotFoundHandler())
	if hs.ReadHeaderTimeout != 123*time.Millisecond || hs.WriteTimeout != 456*time.Millisecond {
		t.Fatalf("explicit timeouts not applied: %+v", hs)
	}
	if hs.ReadTimeout != 30*time.Second || hs.IdleTimeout != 2*time.Minute {
		t.Fatalf("zero timeouts not defaulted: read %v idle %v", hs.ReadTimeout, hs.IdleTimeout)
	}
	if hs.Handler == nil {
		t.Fatal("handler not installed")
	}
}

// A request canceled while waiting in the admission queue must release its
// queue slot immediately — not at QueueTimeout — so the capacity is
// available to the next arrival.
func TestAdmissionQueueSlotReclaimedOnPreAdmissionCancel(t *testing.T) {
	cfg := Config{MaxConcurrent: 1, QueueDepth: 1, QueueTimeout: time.Minute,
		Window: time.Second, RetryAfter: time.Second}
	a := newAdmission(cfg.withDefaults())
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err) // hold the only slot
	}

	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan error, 1)
	go func() { queued <- a.acquire(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for a.depth() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a.depth() != 1 {
		t.Fatal("waiter never queued")
	}

	cancel()
	if err := <-queued; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter got %v, want context.Canceled", err)
	}
	// The slot must be back immediately — with QueueTimeout at a minute, a
	// leak would keep depth at 1 far beyond this poll.
	deadline = time.Now().Add(5 * time.Second)
	for a.depth() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := a.depth(); got != 0 {
		t.Fatalf("queue depth %d after cancel, want 0 (slot leaked)", got)
	}

	// Reclaimed capacity: a fresh arrival queues (is not shed) and gets
	// the slot once the holder releases.
	again := make(chan error, 1)
	go func() { again <- a.acquire(context.Background()) }()
	deadline = time.Now().Add(5 * time.Second)
	for a.depth() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a.depth() != 1 {
		t.Fatal("post-cancel arrival did not reuse the reclaimed queue slot")
	}
	a.release()
	if err := <-again; err != nil {
		t.Fatalf("post-cancel arrival failed: %v", err)
	}
	a.release()
}

func mustParse(t *testing.T, s string) *pathexpr.Expr {
	t.Helper()
	e, err := pathexpr.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
