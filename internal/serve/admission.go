package serve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"mrx/internal/latstat"
)

// ErrShed is wrapped by every admission failure that should surface as
// 429 Too Many Requests.
var ErrShed = errors.New("serve: overloaded")

// admission is the server's load-shedding gate: a fixed pool of execution
// slots, a bounded wait queue in front of it, and a latency breaker over
// the observed service times. A request acquires a slot before evaluating
// and releases it after; when all slots are busy it may wait, but only if
// the queue is below QueueDepth, only for at most QueueTimeout, and only
// while the windowed p99 is under ShedP99 (if the breaker is enabled).
// Everything else is shed immediately — under overload the server's answer
// degrades to a fast 429, never to an unbounded queue.
type admission struct {
	cfg    Config
	slots  chan struct{} // buffered; a held token is an execution slot
	queued atomic.Int64  // requests currently waiting for a slot
	window *latstat.Window
}

func newAdmission(cfg Config) *admission {
	return &admission{
		cfg:    cfg,
		slots:  make(chan struct{}, cfg.MaxConcurrent),
		window: latstat.NewWindow(cfg.Window),
	}
}

// acquire blocks until an execution slot is free, the request is shed, or
// ctx is done. A nil error means the caller holds a slot and must release.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	// All slots busy: this request would queue. Shed instead if the
	// observed p99 says the backlog is already too slow to be worth
	// joining, or if the queue itself is full.
	if a.cfg.ShedP99 > 0 {
		if p99 := a.window.Quantile(time.Now(), 0.99); p99 > a.cfg.ShedP99 {
			return fmt.Errorf("%w: observed p99 %v above bound %v", ErrShed, p99, a.cfg.ShedP99)
		}
	}
	if n := a.queued.Add(1); n > int64(a.cfg.QueueDepth) {
		a.queued.Add(-1)
		return fmt.Errorf("%w: wait queue full (%d waiting, depth %d)", ErrShed, n-1, a.cfg.QueueDepth)
	}
	defer a.queued.Add(-1)

	timer := time.NewTimer(a.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-timer.C:
		return fmt.Errorf("%w: queued longer than %v", ErrShed, a.cfg.QueueTimeout)
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns the slot acquired by a successful acquire.
func (a *admission) release() { <-a.slots }

// observe feeds one service latency into the shedding window.
func (a *admission) observe(d time.Duration) { a.window.Record(time.Now(), d) }

// depth is the current wait-queue length (a gauge for /stats).
func (a *admission) depth() int64 { return a.queued.Load() }

// inFlight is the number of execution slots currently held.
func (a *admission) inFlight() int { return len(a.slots) }

// latency summarizes the shedding window (for /stats).
func (a *admission) latency() latstat.Summary { return a.window.Summary(time.Now()) }
