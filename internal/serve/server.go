package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"mrx/internal/graph"
	"mrx/internal/latstat"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

// Server serves path-expression queries over HTTP from any
// query.ContextQuerier. It owns the request lifecycle — parse, coalesce,
// admit, evaluate under the request's context, account — but is agnostic
// about what answers the query: the engine, a frozen index behind
// AsContextQuerier, or a test stub all serve identically.
type Server struct {
	// ExtraStats, when non-nil, is invoked per /stats request and its
	// result embedded under "backend" in the response — the hook through
	// which cmd/mrserve exposes engine stats and the AutoTune plan without
	// this package importing the engine.
	ExtraStats func() any

	q     query.ContextQuerier
	cfg   Config
	adm   *admission
	co    *coalescer
	ctr   counters
	start time.Time
}

// New validates cfg and constructs a Server over q.
func New(q query.ContextQuerier, cfg Config) (*Server, error) {
	if q == nil {
		return nil, fmt.Errorf("%w: nil querier", ErrInvalidConfig)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Server{
		q:     q,
		cfg:   cfg,
		adm:   newAdmission(cfg),
		co:    newCoalescer(),
		start: time.Now(),
	}, nil
}

// Handler returns the server's routing table:
//
//	GET /query?q=//a/b[&answers=1]  evaluate one path expression
//	GET /stats                      serving counters, latency window, backend stats
//	GET /healthz                    liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// Counters returns a snapshot of the serving counters (exported for tests
// and for cmd/mrserve's exit summary).
func (s *Server) Counters() CountersSnapshot { return s.ctr.snapshot() }

// QueryResponse is the JSON body of a successful /query evaluation.
type QueryResponse struct {
	Query     string         `json:"query"`
	Canonical string         `json:"canonical"`
	Answers   int            `json:"answers"`
	Answer    []graph.NodeID `json:"answer,omitempty"`
	IndexCost int            `json:"index_cost"`
	DataCost  int            `json:"data_cost"`
	Precise   bool           `json:"precise"`
	Coalesced bool           `json:"coalesced"`
	Micros    int64          `json:"micros"`
}

// StatsResponse is the JSON body of /stats.
type StatsResponse struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Config        Config           `json:"config"`
	Counters      CountersSnapshot `json:"counters"`
	QueueDepth    int64            `json:"queue_depth"`
	InFlight      int              `json:"in_flight"`
	Latency       latstat.Summary  `json:"latency"`
	Backend       any              `json:"backend,omitempty"`
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET only"})
		return
	}
	raw := r.URL.Query().Get("q")
	if raw == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing q parameter"})
		return
	}
	e, err := pathexpr.Parse(raw)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	s.ctr.Received.Add(1)

	key := pathexpr.Canonical(e)
	start := time.Now()
	res, shared, err := s.co.do(r.Context(), key, func(execCtx context.Context) (query.Result, error) {
		// Admission runs inside the flight: coalesced followers never
		// consume queue capacity, only distinct expressions compete.
		if err := s.adm.acquire(execCtx); err != nil {
			return query.Result{}, err
		}
		defer s.adm.release()
		s.ctr.Flights.Add(1)
		t0 := time.Now()
		r, err := s.q.QueryCtx(execCtx, e)
		if err == nil {
			s.adm.observe(time.Since(t0))
		}
		return r, err
	})
	switch {
	case err == nil:
		s.ctr.Served.Add(1)
		if shared {
			s.ctr.Coalesced.Add(1)
		}
		resp := QueryResponse{
			Query:     raw,
			Canonical: key,
			Answers:   len(res.Answer),
			IndexCost: res.Cost.IndexNodes,
			DataCost:  res.Cost.DataNodes,
			Precise:   res.Precise,
			Coalesced: shared,
			Micros:    time.Since(start).Microseconds(),
		}
		if r.URL.Query().Get("answers") == "1" {
			resp.Answer = res.Answer
		}
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, ErrShed):
		s.ctr.Shed.Add(1)
		secs := int64((s.cfg.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The waiting client went away (or timed out): usually the write
		// below goes nowhere, but a deadline racing completion still gets
		// a well-formed response.
		s.ctr.Canceled.Add(1)
		writeJSON(w, http.StatusRequestTimeout, errorResponse{Error: err.Error()})
	default:
		s.ctr.Errored.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Config:        s.cfg,
		Counters:      s.ctr.snapshot(),
		QueueDepth:    s.adm.depth(),
		InFlight:      s.adm.inFlight(),
		Latency:       s.adm.latency(),
	}
	if s.ExtraStats != nil {
		resp.Backend = s.ExtraStats()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	// Encoding a response struct cannot fail structurally; a mid-body
	// network error is the client's loss, not ours to handle.
	_ = enc.Encode(v)
}
