package serve

// Chaos suite: the serving layer over a real TCP socket with netem-impaired
// clients. Each scenario proves one robustness property the clean-loopback
// tests cannot see:
//
//   - admission slots and queue capacity are reclaimed when impaired
//     clients disconnect while waiting in the queue;
//   - the coalescer cancels an evaluation only when the LAST impaired
//     waiter detaches;
//   - wire impairment (latency + jitter) lands on the client's round trip,
//     never on the service-side latency the shed breaker observes;
//   - a slow-loris client trickling header bytes is cut off by
//     ReadHeaderTimeout before it ever reaches a handler;
//   - a client that stops reading its response (half-open reader) is cut
//     off by WriteTimeout instead of pinning the connection forever.

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mrx/internal/graph"
	"mrx/internal/netem"
	"mrx/internal/pathexpr"
	"mrx/internal/query"
)

// chaosQuerier is a controllable backend for the chaos scenarios: it
// signals call starts, blocks until released or canceled, and reports
// whether its evaluation context was canceled.
type chaosQuerier struct {
	answer    []graph.NodeID
	started   chan struct{}
	release   chan struct{} // nil: answer immediately
	calls     atomic.Int64
	canceled  atomic.Int64
	gotCancel chan struct{} // closed on the first canceled evaluation
	once      sync.Once
}

func (q *chaosQuerier) QueryCtx(ctx context.Context, e *pathexpr.Expr) (query.Result, error) {
	q.calls.Add(1)
	if q.started != nil {
		q.started <- struct{}{}
	}
	if q.release != nil {
		select {
		case <-q.release:
		case <-ctx.Done():
			q.canceled.Add(1)
			if q.gotCancel != nil {
				q.once.Do(func() { close(q.gotCancel) })
			}
			return query.Result{}, ctx.Err()
		}
	}
	ans := q.answer
	if ans == nil {
		ans = []graph.NodeID{1}
	}
	return query.Result{Answer: ans, Precise: true}, nil
}

// startChaosServer serves s over a real TCP listener with cfg's HTTP
// timeouts applied, so client-connection behavior (disconnects, trickle
// reads, slow headers) reaches the handler the way production traffic
// would. ln lets callers shrink socket buffers first; pass nil for a
// default loopback listener.
func startChaosServer(t *testing.T, s *Server, cfg Config, ln net.Listener) (addr string, hs *http.Server) {
	t.Helper()
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
	}
	hs = cfg.HTTPServer(s.Handler())
	go func(hs *http.Server, ln net.Listener) {
		_ = hs.Serve(ln)
	}(hs, ln)
	t.Cleanup(func() { _ = hs.Close() })
	return ln.Addr().String(), hs
}

// rawGet writes one GET request for q through an (optionally impaired)
// connection and returns the connection without reading the response.
func rawGet(t *testing.T, conn net.Conn, q string) error {
	t.Helper()
	_, err := fmt.Fprintf(conn, "GET /query?q=%s HTTP/1.1\r\nHost: chaos\r\n\r\n", q)
	return err
}

// dialImpaired opens a netem-wrapped connection to addr.
func dialImpaired(t *testing.T, addr string, prof netem.Profile, seed int64) *netem.Conn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return netem.WrapConn(c, prof, seed, nil)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("never observed: %s", what)
}

// Impaired clients that disconnect while waiting in the admission queue
// must hand their queue capacity back immediately, and their requests must
// be accounted as canceled — not served, not pinned until QueueTimeout.
func TestChaosDisconnectMidQueueReclaimsSlots(t *testing.T) {
	q := &chaosQuerier{started: make(chan struct{}, 8), release: make(chan struct{})}
	cfg := Config{MaxConcurrent: 1, QueueDepth: 2, QueueTimeout: time.Minute,
		Window: time.Second, RetryAfter: time.Second}
	s := mustServer(t, q, cfg)
	addr, _ := startChaosServer(t, s, cfg, nil)

	// Leader: a healthy client whose evaluation holds the only slot.
	leader := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/query?q=//lead")
		if err != nil {
			leader <- nil
			return
		}
		resp.Body.Close()
		leader <- resp
	}()
	<-q.started

	// Two impaired clients with distinct expressions join the wait queue,
	// then vanish mid-queue (an abrupt close, as a flaky mobile link
	// would).
	prof := netem.Profile{Latency: 2 * time.Millisecond, Jitter: time.Millisecond}
	var impaired []*netem.Conn
	for i := 0; i < 2; i++ {
		c := dialImpaired(t, addr, prof, int64(100+i))
		if err := rawGet(t, c, fmt.Sprintf("//q%d", i)); err != nil {
			t.Fatal(err)
		}
		impaired = append(impaired, c)
	}
	waitFor(t, "both impaired requests queued", func() bool { return s.adm.depth() == 2 })

	for _, c := range impaired {
		c.Close()
	}
	// The queue must drain NOW — QueueTimeout is a minute, so any residual
	// depth would mean the slot leaked until then.
	waitFor(t, "queue capacity reclaimed after disconnect", func() bool { return s.adm.depth() == 0 })
	waitFor(t, "both disconnects accounted as canceled", func() bool {
		return s.Counters().Canceled == 2
	})

	// The reclaimed capacity serves the next client.
	close(q.release)
	if resp := <-leader; resp == nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("leader finished with %+v", resp)
	}
	resp, err := http.Get("http://" + addr + "/query?q=//after")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-chaos request: status %d, want 200", resp.StatusCode)
	}
	if c := s.Counters(); c.Served != 2 || c.Canceled != 2 || c.Shed != 0 {
		t.Fatalf("counters: %+v", c)
	}
}

// With several impaired waiters coalesced onto one flight, the evaluation
// must keep running until the LAST waiter's connection dies — one flaky
// client cannot kill a result the others still want.
func TestChaosCoalescerCancelsOnlyAfterLastWaiterDetaches(t *testing.T) {
	q := &chaosQuerier{started: make(chan struct{}, 1), release: make(chan struct{}),
		gotCancel: make(chan struct{})}
	defer close(q.release)
	cfg := DefaultConfig()
	s := mustServer(t, q, cfg)
	addr, _ := startChaosServer(t, s, cfg, nil)

	prof := netem.Profile{Latency: time.Millisecond, Jitter: time.Millisecond}
	const n = 3
	conns := make([]*netem.Conn, n)
	for i := range conns {
		conns[i] = dialImpaired(t, addr, prof, int64(200+i))
		if err := rawGet(t, conns[i], "//a/b"); err != nil {
			t.Fatal(err)
		}
	}
	key := pathexpr.Canonical(mustParse(t, "//a/b"))
	waitersFor(t, s.co, key, n)
	if got := q.calls.Load(); got != 1 {
		t.Fatalf("backend called %d times for one coalesced key, want 1", got)
	}

	// Kill all but the last waiter: the flight must survive.
	for i := 0; i < n-1; i++ {
		conns[i].Close()
		waitersFor(t, s.co, key, n-1-i)
	}
	select {
	case <-q.gotCancel:
		t.Fatal("evaluation canceled while a waiter's connection was alive")
	case <-time.After(100 * time.Millisecond):
	}

	// Kill the last one: now nobody wants the result, the exec context
	// must be canceled.
	conns[n-1].Close()
	select {
	case <-q.gotCancel:
	case <-time.After(10 * time.Second):
		t.Fatal("evaluation not canceled after the last waiter detached")
	}
}

// Wire impairment must land on impaired clients' round trips, not on the
// service-side latency window the shed breaker observes: jittery clients
// make themselves slow, not the server.
func TestChaosServedP99HoldsUnderJitter(t *testing.T) {
	q := &chaosQuerier{}
	cfg := Config{MaxConcurrent: 4, QueueDepth: 16, QueueTimeout: time.Second,
		Window: time.Minute, RetryAfter: time.Second}
	s := mustServer(t, q, cfg)
	addr, _ := startChaosServer(t, s, cfg, nil)

	const (
		latency = 20 * time.Millisecond
		jitter  = 10 * time.Millisecond
		clients = 4
		perConn = 5
	)
	var wg sync.WaitGroup
	var slowest atomic.Int64 // fastest observed RTT per client, max'd below
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d := &netem.Dialer{Profile: netem.Profile{Latency: latency, Jitter: jitter},
				Seed: int64(300 + i)}
			client := &http.Client{Transport: &http.Transport{DialContext: d.DialContext},
				Timeout: 30 * time.Second}
			for j := 0; j < perConn; j++ {
				t0 := time.Now()
				resp, err := client.Get("http://" + addr + "/query?q=//a/b" + fmt.Sprint(i))
				if err != nil {
					errs <- err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
				rtt := time.Since(t0)
				for {
					cur := slowest.Load()
					if int64(rtt) <= cur || slowest.CompareAndSwap(cur, int64(rtt)) {
						break
					}
				}
			}
			errs <- nil
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	// The impairment floor is real: a round trip crosses the impaired leg
	// at least twice (request out, response back).
	if got := time.Duration(slowest.Load()); got < 2*(latency-jitter) {
		t.Fatalf("slowest impaired RTT %v under the impairment floor %v", got, 2*(latency-jitter))
	}
	// But the service-side window — what -shed-p99 governs — never saw
	// any of it: the backend answers in microseconds and the wire delay
	// happens outside the slot.
	if p99 := s.adm.latency().P99; p99 > 10*time.Millisecond {
		t.Fatalf("service-side p99 %v absorbed wire impairment (want ≤10ms)", p99)
	}
	if served := s.Counters().Served; served != clients*perConn {
		t.Fatalf("served %d, want %d", served, clients*perConn)
	}
}

// A slow-loris client trickling header bytes one at a time must be cut off
// by ReadHeaderTimeout before its request ever reaches a handler.
func TestChaosSlowLorisCutOffByReadHeaderTimeout(t *testing.T) {
	q := &chaosQuerier{}
	cfg := Config{QueueDepth: 8, ReadHeaderTimeout: 150 * time.Millisecond,
		WriteTimeout: 5 * time.Second, ReadTimeout: 5 * time.Second, IdleTimeout: 5 * time.Second}
	s := mustServer(t, q, cfg)
	addr, _ := startChaosServer(t, s, cfg, nil)

	// One header byte every 30ms: the full request would take >1s, far
	// past the 150ms header budget.
	c := dialImpaired(t, addr, netem.Profile{ChunkBytes: 1, Latency: 30 * time.Millisecond}, 400)
	defer c.Close()

	start := time.Now()
	err := rawGet(t, c, "//a/b")
	if err == nil {
		// The write survived local buffering; the server must still have
		// closed the connection on us.
		buf := make([]byte, 1)
		_ = c.SetReadDeadline(time.Now().Add(10 * time.Second))
		_, err = c.Read(buf)
	}
	if err == nil {
		t.Fatal("slow-loris connection was never cut off")
	}
	if elapsed := time.Since(start); elapsed > 8*time.Second {
		t.Fatalf("cutoff took %v, want roughly ReadHeaderTimeout", elapsed)
	}
	if got := q.calls.Load(); got != 0 {
		t.Fatalf("slow-loris request reached the backend %d times", got)
	}
	if c := s.Counters(); c.Received != 0 {
		t.Fatalf("slow-loris request was parsed and counted: %+v", c)
	}
}

// A client that requests a large answer and then stops reading (a trickle
// reader gone half-open) must be cut off by WriteTimeout: the connection
// closes, the handler goroutine finishes, and — crucially — the admission
// slot was released before the write ever started, so the stalled client
// pinned no serving capacity.
func TestChaosTrickleReaderCannotPinConnection(t *testing.T) {
	// A ~3MB answer, so the response cannot hide in socket buffers.
	answer := make([]graph.NodeID, 1<<19)
	for i := range answer {
		answer[i] = graph.NodeID(i)
	}
	q := &chaosQuerier{answer: answer}
	cfg := Config{QueueDepth: 8, MaxConcurrent: 2,
		ReadHeaderTimeout: 2 * time.Second, ReadTimeout: 5 * time.Second,
		WriteTimeout: 300 * time.Millisecond, IdleTimeout: time.Minute}
	s := mustServer(t, q, cfg)

	// Shrink the server-side socket buffer so the blocked client
	// back-pressures the handler's write quickly.
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	var closeOnce sync.Once
	hs := cfg.HTTPServer(s.Handler())
	hs.ConnState = func(c net.Conn, st http.ConnState) {
		if st == http.StateClosed {
			closeOnce.Do(func() { close(closed) })
		}
	}
	ln := smallWriteBufListener{raw}
	go func(hs *http.Server, ln net.Listener) { _ = hs.Serve(ln) }(hs, ln)
	t.Cleanup(func() { _ = hs.Close() })
	addr := raw.Addr().String()

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(4 << 10) // tiny receive window: reads matter
	}
	if err := rawGet(t, c, "//a/b&answers=1"); err != nil {
		t.Fatal(err)
	}
	// Read a token amount, then never again: the half-open-reader shape.
	buf := make([]byte, 1)
	_ = c.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := c.Read(buf); err != nil {
		t.Fatalf("first response byte: %v", err)
	}

	select {
	case <-closed:
	case <-time.After(15 * time.Second):
		t.Fatal("trickle-reading client pinned the connection past WriteTimeout")
	}
	// The query itself was served — the slot came back before the write
	// stalled, which is exactly why slow readers cannot exhaust serving
	// capacity.
	if c := s.Counters(); c.Served != 1 {
		t.Fatalf("counters: %+v (the evaluation should have completed)", c)
	}
}

// smallWriteBufListener shrinks accepted conns' kernel send buffer so
// write back-pressure appears at small response sizes.
type smallWriteBufListener struct{ net.Listener }

func (l smallWriteBufListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetWriteBuffer(4 << 10)
	}
	return c, nil
}
